// Sinusoidal positional encoding (Vaswani et al., Eq. 5): added to the
// scaled token embeddings.  Precomputed once for a maximum length.
#pragma once

#include "core/tensor.h"

namespace qdnn::models {

class PositionalEncoding {
 public:
  PositionalEncoding(index_t max_len, index_t d_model);

  // Adds PE[0..t) to a flattened [N·T, D] activation.
  void add_to(Tensor& flat, index_t n, index_t t) const;

  const Tensor& table() const { return table_; }

 private:
  index_t max_len_, d_model_;
  Tensor table_;  // [max_len, d_model]
};

}  // namespace qdnn::models
