// Tests for the synthetic datasets, augmentation, vocab and batching.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "data/augment.h"
#include "data/synthetic_images.h"
#include "data/translation.h"

namespace qdnn::data {
namespace {

// ------------------------- synthetic images -------------------------------

TEST(SyntheticImages, ShapesAndBalance) {
  SyntheticImageConfig config;
  config.num_classes = 5;
  config.image_size = 12;
  const ImageDataset ds = make_synthetic_images(config, 100, 1);
  EXPECT_EQ(ds.images.shape(), Shape({100, 3, 12, 12}));
  EXPECT_EQ(ds.size(), 100);
  std::vector<int> counts(5, 0);
  for (index_t label : ds.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 5);
    ++counts[static_cast<std::size_t>(label)];
  }
  for (int c : counts) EXPECT_EQ(c, 20);  // balanced
}

TEST(SyntheticImages, DeterministicForSeed) {
  SyntheticImageConfig config;
  const ImageDataset a = make_synthetic_images(config, 10, 42);
  const ImageDataset b = make_synthetic_images(config, 10, 42);
  EXPECT_EQ(max_abs_diff(a.images, b.images), 0.0f);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(SyntheticImages, DifferentSeedsDiffer) {
  SyntheticImageConfig config;
  const ImageDataset a = make_synthetic_images(config, 10, 1);
  const ImageDataset b = make_synthetic_images(config, 10, 2);
  EXPECT_GT(max_abs_diff(a.images, b.images), 0.1f);
}

TEST(SyntheticImages, TextureIsSecondOrder) {
  // Averaging many samples of one class must wash out the grating
  // (random phase ⇒ zero mean) while per-sample texture energy stays
  // high: the class cue is second-order, which is the property that makes
  // quadratic neurons the right tool.
  SyntheticImageConfig config;
  config.num_classes = 2;
  config.noise_std = 0.0f;
  config.shape_amp = 0.0f;  // isolate the texture component
  const index_t count = 200;
  const ImageDataset ds = make_synthetic_images(config, count, 3);
  const index_t plane = 3 * config.image_size * config.image_size;

  Tensor mean{Shape{plane}};
  double mean_energy = 0.0;
  index_t n_class0 = 0;
  for (index_t s = 0; s < count; ++s) {
    if (ds.labels[static_cast<std::size_t>(s)] != 0) continue;
    ++n_class0;
    double energy = 0.0;
    for (index_t j = 0; j < plane; ++j) {
      const float v = ds.images[s * plane + j];
      mean[j] += v;
      energy += static_cast<double>(v) * v;
    }
    mean_energy += energy / plane;
  }
  mean *= 1.0f / static_cast<float>(n_class0);
  mean_energy /= n_class0;
  double mean_sq = 0.0;
  for (index_t j = 0; j < plane; ++j)
    mean_sq += static_cast<double>(mean[j]) * mean[j];
  mean_sq /= plane;
  // Mean image carries far less energy than individual samples.
  EXPECT_LT(mean_sq, 0.15 * mean_energy);
  EXPECT_GT(mean_energy, 0.05);
}

TEST(SyntheticImages, ClassesAreSeparableByEnergyProfile) {
  // Nearest-centroid on per-row energy profiles must beat chance by a
  // wide margin — evidence the generator encodes class structure.
  SyntheticImageConfig config;
  config.num_classes = 4;
  config.noise_std = 0.15f;
  const ImageDataset train = make_synthetic_images(config, 200, 4);
  const ImageDataset test = make_synthetic_images(config, 100, 5);
  const index_t hw = config.image_size;
  const index_t plane = 3 * hw * hw;

  auto profile = [&](const Tensor& images, index_t s) {
    std::vector<double> p(static_cast<std::size_t>(hw), 0.0);
    for (index_t j = 0; j < plane; ++j) {
      const float v = images[s * plane + j];
      p[static_cast<std::size_t>((j / hw) % hw)] +=
          static_cast<double>(v) * v;
    }
    return p;
  };
  std::vector<std::vector<double>> centroids(
      4, std::vector<double>(static_cast<std::size_t>(hw), 0.0));
  std::vector<int> counts(4, 0);
  for (index_t s = 0; s < train.size(); ++s) {
    const auto p = profile(train.images, s);
    const auto label = static_cast<std::size_t>(train.labels[s]);
    ++counts[label];
    for (std::size_t j = 0; j < p.size(); ++j) centroids[label][j] += p[j];
  }
  for (std::size_t c = 0; c < 4; ++c)
    for (double& v : centroids[c]) v /= counts[c];

  int correct = 0;
  for (index_t s = 0; s < test.size(); ++s) {
    const auto p = profile(test.images, s);
    double best = 1e18;
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < 4; ++c) {
      double d = 0.0;
      for (std::size_t j = 0; j < p.size(); ++j) {
        const double diff = p[j] - centroids[c][j];
        d += diff * diff;
      }
      if (d < best) {
        best = d;
        best_c = c;
      }
    }
    if (static_cast<index_t>(best_c) == test.labels[s]) ++correct;
  }
  EXPECT_GT(correct, 40);  // chance would be 25
}

TEST(SyntheticImages, PrototypeIsCleanAndDeterministic) {
  SyntheticImageConfig config;
  const Tensor a = render_class_prototype(config, 3, 9);
  const Tensor b = render_class_prototype(config, 3, 9);
  EXPECT_EQ(max_abs_diff(a, b), 0.0f);
  EXPECT_EQ(a.shape(), Shape({3, 20, 20}));
}

// ------------------------------ augment -----------------------------------

TEST(Augment, PadCropIdentityAtCenter) {
  Rng rng(1);
  Tensor img{Shape{2, 4, 4}};
  rng.fill_uniform(img, -1.0f, 1.0f);
  const Tensor out = pad_crop(img, 2, 2, 2);  // centered crop = identity
  EXPECT_EQ(max_abs_diff(out, img), 0.0f);
}

TEST(Augment, PadCropShiftsContent) {
  Tensor img{Shape{1, 3, 3}};
  img.at(0, 1, 1) = 5.0f;
  // Crop offset (0,0) shifts content down-right by pad.
  const Tensor out = pad_crop(img, 1, 0, 0);
  EXPECT_FLOAT_EQ(out.at(0, 2, 2), 5.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 0.0f);  // padding zeros enter
}

TEST(Augment, PadCropRejectsBadOffsets) {
  Tensor img{Shape{1, 3, 3}};
  EXPECT_THROW(pad_crop(img, 1, 3, 0), std::runtime_error);
}

TEST(Augment, HflipIsInvolution) {
  Rng rng(2);
  Tensor img{Shape{3, 5, 7}};
  rng.fill_uniform(img, -1.0f, 1.0f);
  EXPECT_EQ(max_abs_diff(hflip(hflip(img)), img), 0.0f);
}

TEST(Augment, HflipMirrorsColumns) {
  Tensor img{Shape{1, 1, 3}};
  img[0] = 1.0f;
  img[2] = 3.0f;
  const Tensor out = hflip(img);
  EXPECT_FLOAT_EQ(out[0], 3.0f);
  EXPECT_FLOAT_EQ(out[2], 1.0f);
}

TEST(Augment, BatchPreservesShapeAndIsSeeded) {
  Rng rng_data(3);
  Tensor batch{Shape{4, 3, 8, 8}};
  rng_data.fill_uniform(batch, -1.0f, 1.0f);
  Rng rng_a(7), rng_b(7);
  const Tensor a = augment_batch(batch, 2, rng_a);
  const Tensor b = augment_batch(batch, 2, rng_b);
  EXPECT_EQ(a.shape(), batch.shape());
  EXPECT_EQ(max_abs_diff(a, b), 0.0f);
}

// ------------------------------- vocab ------------------------------------

TEST(Vocab, SpecialTokensFixed) {
  Vocab v;
  EXPECT_EQ(v.id("<pad>"), Vocab::kPad);
  EXPECT_EQ(v.id("<bos>"), Vocab::kBos);
  EXPECT_EQ(v.id("<eos>"), Vocab::kEos);
  EXPECT_EQ(v.id("<unk>"), Vocab::kUnk);
  EXPECT_EQ(v.size(), 4);
}

TEST(Vocab, AddIsIdempotent) {
  Vocab v;
  const index_t a = v.add("hello");
  EXPECT_EQ(v.add("hello"), a);
  EXPECT_EQ(v.size(), 5);
  EXPECT_EQ(v.word(a), "hello");
}

TEST(Vocab, UnknownMapsToUnk) {
  Vocab v;
  EXPECT_EQ(v.id("missing"), Vocab::kUnk);
}

TEST(Vocab, EncodeDecodeRoundTrip) {
  Vocab v;
  v.add("a");
  v.add("b");
  const auto ids = v.encode({"a", "b", "a"});
  EXPECT_EQ(v.decode(ids), (std::vector<std::string>{"a", "b", "a"}));
}

// ----------------------------- translation --------------------------------

TranslationConfig small_corpus_config() {
  TranslationConfig config;
  config.train_sentences = 50;
  config.test_sentences = 10;
  return config;
}

TEST(Translation, CorpusSizesAndDeterminism) {
  const TranslationCorpus a = make_translation_corpus(small_corpus_config());
  const TranslationCorpus b = make_translation_corpus(small_corpus_config());
  EXPECT_EQ(a.train.size(), 50u);
  EXPECT_EQ(a.test.size(), 10u);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].src_ids, b.train[i].src_ids);
    EXPECT_EQ(a.train[i].tgt_surface, b.train[i].tgt_surface);
  }
}

TEST(Translation, VerbIsSourceFinalTargetSecond) {
  const TranslationCorpus corpus =
      make_translation_corpus(small_corpus_config());
  for (const auto& ex : corpus.train) {
    // Source: [content..., verb, punct]; the verb's surface starts with
    // "machen", target position 1 starts with "make".
    const std::string& src_verb =
        corpus.src_vocab.word(ex.src_ids[ex.src_ids.size() - 2]);
    EXPECT_EQ(src_verb.rfind("machen", 0), 0u) << src_verb;
    const std::string& tgt_second = corpus.tgt_vocab.word(ex.tgt_ids[1]);
    EXPECT_EQ(tgt_second.rfind("make", 0), 0u) << tgt_second;
  }
}

TEST(Translation, SurfaceCapitalizedAndPunctuated) {
  const TranslationCorpus corpus =
      make_translation_corpus(small_corpus_config());
  for (const auto& ex : corpus.test) {
    ASSERT_FALSE(ex.tgt_surface.empty());
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(
        ex.tgt_surface[0])))
        << ex.tgt_surface;
    const char last = ex.tgt_surface.back();
    EXPECT_TRUE(last == '.' || last == '!' || last == '?');
    // Punctuation attached (no space before it).
    EXPECT_NE(ex.tgt_surface[ex.tgt_surface.size() - 2], ' ');
  }
}

TEST(Translation, BatchPaddingAndTargets) {
  const TranslationCorpus corpus =
      make_translation_corpus(small_corpus_config());
  const Seq2SeqBatch batch = make_batch(corpus.train, 0, 4);
  EXPECT_EQ(batch.src.dim(0), 4);
  EXPECT_EQ(batch.tgt_in.dim(0), 4);
  EXPECT_EQ(batch.src_lengths.size(), 4u);
  // tgt_in starts with <bos> for every sample.
  for (index_t i = 0; i < 4; ++i)
    EXPECT_EQ(static_cast<index_t>(batch.tgt_in.at(i, 0)), Vocab::kBos);
  // Each sample's targets end with <eos> followed by pads.
  const index_t tt = batch.tgt_in.dim(1);
  for (index_t i = 0; i < 4; ++i) {
    const auto& ex = corpus.train[static_cast<std::size_t>(i)];
    const index_t len = static_cast<index_t>(ex.tgt_ids.size());
    EXPECT_EQ(batch.tgt_out[static_cast<std::size_t>(i * tt + len)],
              Vocab::kEos);
    for (index_t j = len + 1; j < tt; ++j)
      EXPECT_EQ(batch.tgt_out[static_cast<std::size_t>(i * tt + j)],
                Vocab::kPad);
  }
}

TEST(Translation, BatchRangeValidated) {
  const TranslationCorpus corpus =
      make_translation_corpus(small_corpus_config());
  EXPECT_THROW(make_batch(corpus.train, 48, 10), std::runtime_error);
  EXPECT_THROW(make_batch(corpus.train, 0, 0), std::runtime_error);
}

TEST(Translation, SurfaceFromIdsRendersHypotheses) {
  const TranslationCorpus corpus =
      make_translation_corpus(small_corpus_config());
  const auto& ex = corpus.test[0];
  EXPECT_EQ(surface_from_ids(corpus.tgt_vocab, ex.tgt_ids),
            ex.tgt_surface);
}

}  // namespace
}  // namespace qdnn::data
