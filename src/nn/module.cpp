#include "nn/module.h"

// Module is header-only today; this TU anchors the vtable so the library
// has a single translation unit emitting Module's RTTI.
namespace qdnn::nn {}
