// Small metric helpers shared by the trainers and benches.
#pragma once

#include <vector>

#include "core/tensor.h"

namespace qdnn::train {

// Top-1 accuracy of logits [N, C] against labels.
double accuracy(const Tensor& logits, const std::vector<index_t>& labels);

// Running average.
class Mean {
 public:
  void add(double v, double weight = 1.0) {
    sum_ += v * weight;
    weight_ += weight;
  }
  double value() const { return weight_ > 0.0 ? sum_ / weight_ : 0.0; }
  void reset() { sum_ = weight_ = 0.0; }

 private:
  double sum_ = 0.0;
  double weight_ = 0.0;
};

// Epoch record used by the Fig. 4/5/6 benches to emit curves.
struct EpochStats {
  index_t epoch = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double test_loss = 0.0;
  double test_accuracy = 0.0;
  // Non-finite loss/activations observed.  train_diverged aborts the run;
  // eval_diverged alone is usually a transient of quadratic networks
  // whose BatchNorm running stats have not settled (see trainer.cpp).
  bool train_diverged = false;
  bool eval_diverged = false;
  bool diverged = false;  // train_diverged || eval_diverged
};

}  // namespace qdnn::train
