// Ablation: the decomposition rank k — the design knob DESIGN.md calls
// out.  The paper fixes k = 9 for CNNs and argues (Table I) that, unlike
// [18], the cost of the proposed neuron is nearly flat in k, so
// expressivity can be raised almost for free.
//
// This bench sweeps k and reports, per value:
//   * analytic per-output parameter/MAC cost (ours vs [18] at equal k),
//   * Eckart–Young truncation quality on random quadratic forms
//     (energy kept by the top-k eigenvalues),
//   * accuracy of a small quadratic CNN on the synthetic dataset.
#include <cstdio>

#include "bench_util.h"
#include "linalg/lowrank.h"
#include "models/resnet.h"
#include "quadratic/complexity.h"
#include "train/trainer.h"

using namespace qdnn;
using namespace qdnn::models;
using quadratic::NeuronKind;
using qdnn::bench::bench_scale;
using qdnn::bench::fmt;
using qdnn::bench::print_header;
using qdnn::bench::print_row;
using qdnn::bench::print_rule;

int main() {
  const int scale = bench_scale();
  print_header("Ablation: decomposition rank k (paper fixes k = 9)");

  // Part 1: cost flatness in k.
  const index_t n = 144;  // 16 channels x 3x3
  print_row({"k", "ours prm/out", "ours mac/out", "[18] prm/neuron"});
  print_rule();
  CsvWriter cost_csv(qdnn::bench::results_dir() + "/ablation_k_cost.csv",
                     {"k", "ours_params_per_output", "ours_macs_per_output",
                      "jiang_params"});
  for (index_t k : {1, 2, 4, 9, 16, 32}) {
    const double pp =
        quadratic::params_per_output(quadratic::NeuronSpec::proposed(k), n);
    const double mp =
        quadratic::macs_per_output(quadratic::NeuronSpec::proposed(k), n);
    const auto jiang = quadratic::neuron_cost(
        quadratic::NeuronSpec::of(NeuronKind::kLowRank, k), n);
    print_row({std::to_string(k), fmt(pp, 2), fmt(mp, 2),
               std::to_string(jiang.params)});
    cost_csv.write_row(std::vector<std::string>{
        std::to_string(k), fmt(pp, 4), fmt(mp, 4),
        std::to_string(jiang.params)});
  }

  // Part 2: spectral energy kept by top-k truncation of random symmetric
  // quadratic forms (what initializing/converting at rank k preserves).
  print_header("Energy kept by top-k truncation (random symmetric M, n=48)");
  Rng rng(1);
  Tensor m{Shape{48, 48}};
  rng.fill_normal(m, 0.0f, 1.0f);
  m = linalg::symmetrize(m);
  const linalg::EigResult eig = linalg::eigh(m);
  double total = 0.0;
  for (index_t i = 0; i < 48; ++i)
    total += static_cast<double>(eig.eigenvalues[i]) * eig.eigenvalues[i];
  double kept = 0.0;
  index_t next_k = 1;
  for (index_t i = 0; i < 48; ++i) {
    kept += static_cast<double>(eig.eigenvalues[i]) * eig.eigenvalues[i];
    if (i + 1 == next_k) {
      std::printf("  k=%-3lld energy kept %.1f%%\n",
                  static_cast<long long>(next_k), 100.0 * kept / total);
      next_k *= 2;
    }
  }

  // Part 3: accuracy vs k on the synthetic task.
  print_header("Accuracy vs k (small quadratic CNN, synthetic CIFAR-10)");
  data::SyntheticImageConfig data_config;
  data_config.num_classes = 6;
  data_config.image_size = 14;
  data_config.noise_std = 0.2f;
  const auto train_set =
      data::make_synthetic_images(data_config, 360 * scale, 81);
  const auto test_set =
      data::make_synthetic_images(data_config, 180 * scale, 82);

  CsvWriter acc_csv(qdnn::bench::results_dir() + "/ablation_k_accuracy.csv",
                    {"k", "params", "test_accuracy"});
  print_row({"k", "params/k", "test acc"});
  print_rule();
  for (index_t k : {1, 3, 9}) {
    ResNetConfig config;
    config.depth = 8;
    config.num_classes = 6;
    config.image_size = 14;
    config.base_width = 2 * (k + 1);  // keep channel counts comparable
    config.spec = NeuronSpec::proposed(k);
    config.seed = 31;
    auto net = make_cifar_resnet(config);
    train::TrainerConfig tc;
    tc.epochs = 5 * scale;
    tc.batch_size = 32;
    tc.lr = 0.05f;
    tc.clip_norm = 5.0f;
    tc.augment_pad = 1;
    train::Trainer trainer(*net, tc);
    const auto history = trainer.fit(train_set, test_set);
    const double acc = history.back().test_accuracy;
    print_row({std::to_string(k), fmt(net->num_parameters() / 1e3, 1),
               fmt(100 * acc, 2)});
    acc_csv.write_row(std::vector<std::string>{
        std::to_string(k), std::to_string(net->num_parameters()),
        fmt(acc, 4)});
  }
  std::printf(
      "\nTakeaway: per-output cost is flat in k (unlike [18], linear in\n"
      "k), so rank — and with it expressivity — is nearly free to raise;\n"
      "the top-k spectrum captures most quadratic energy at small k.\n");
  return 0;
}
