#include "nn/linear.h"

#include <gtest/gtest.h>

#include "gradcheck_util.h"

namespace qdnn::nn {
namespace {

using qdnn::testing::gradcheck_module;
using qdnn::testing::random_tensor;

TEST(Linear, OutputShape) {
  Rng rng(1);
  Linear layer(5, 3, rng);
  const Tensor out = layer.forward(random_tensor(Shape{4, 5}, 2));
  EXPECT_EQ(out.shape(), Shape({4, 3}));
}

TEST(Linear, MatchesManualComputation) {
  Rng rng(3);
  Linear layer(2, 2, rng);
  // Overwrite weights with known values: W = [[1,2],[3,4]], b = [10, 20].
  layer.weight().value = Tensor{Shape{2, 2}, std::vector<float>{1, 2, 3, 4}};
  layer.bias().value = Tensor{Shape{2}, std::vector<float>{10, 20}};
  const Tensor x{Shape{1, 2}, std::vector<float>{5, 6}};
  const Tensor y = layer.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1 * 5 + 2 * 6 + 10);
  EXPECT_FLOAT_EQ(y.at(0, 1), 3 * 5 + 4 * 6 + 20);
}

TEST(Linear, NoBiasOption) {
  Rng rng(4);
  Linear layer(3, 2, rng, /*bias=*/false);
  EXPECT_EQ(layer.parameters().size(), 1u);
  const Tensor zero{Shape{1, 3}};
  const Tensor y = layer.forward(zero);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
}

TEST(Linear, Gradcheck) {
  Rng rng(5);
  Linear layer(6, 4, rng);
  EXPECT_TRUE(gradcheck_module(layer, random_tensor(Shape{3, 6}, 6)));
}

TEST(Linear, GradcheckNoBias) {
  Rng rng(7);
  Linear layer(4, 5, rng, /*bias=*/false);
  EXPECT_TRUE(gradcheck_module(layer, random_tensor(Shape{2, 4}, 8)));
}

TEST(Linear, GradAccumulatesAcrossCalls) {
  Rng rng(9);
  Linear layer(2, 2, rng);
  const Tensor x = random_tensor(Shape{1, 2}, 10);
  const Tensor g = random_tensor(Shape{1, 2}, 11);
  layer.forward(x);
  layer.backward(g);
  const Tensor once = layer.weight().grad;
  layer.forward(x);
  layer.backward(g);
  EXPECT_LT(max_abs_diff(layer.weight().grad, once * 2.0f), 1e-5f);
  layer.zero_grad();
  EXPECT_FLOAT_EQ(layer.weight().grad.abs_max(), 0.0f);
}

TEST(Linear, BackwardBeforeForwardThrows) {
  Rng rng(12);
  Linear layer(2, 2, rng);
  EXPECT_THROW(layer.backward(random_tensor(Shape{1, 2}, 13)),
               std::runtime_error);
}

TEST(Linear, WrongInputWidthThrows) {
  Rng rng(14);
  Linear layer(3, 2, rng);
  EXPECT_THROW(layer.forward(random_tensor(Shape{1, 4}, 15)),
               std::runtime_error);
}

TEST(Linear, BiasExcludedFromDecay) {
  Rng rng(16);
  Linear layer(2, 2, rng);
  EXPECT_TRUE(layer.weight().decay);
  EXPECT_FALSE(layer.parameters()[1]->decay);
}

}  // namespace
}  // namespace qdnn::nn
