// im2col / col2im: patch extraction for convolution-as-GEMM.
//
// For an image [C, H, W] and a K×K kernel with stride S and zero padding P,
// im2col produces a [C·K·K, OH·OW] matrix whose column j is the flattened
// receptive field of output pixel j.  This is exactly the "neuron input
// vector x ∈ Rⁿ with n = C·K²" in the paper's complexity analysis, so all
// quadratic conv layers share this path: the quadratic form is evaluated
// per column.
#pragma once

#include "core/tensor.h"

namespace qdnn::nn {

struct ConvGeometry {
  index_t in_channels = 0;
  index_t kernel = 0;   // square kernels only (matches the paper's CNNs)
  index_t stride = 1;
  index_t padding = 0;

  index_t patch_size() const { return in_channels * kernel * kernel; }
  index_t out_extent(index_t in_extent) const {
    return (in_extent + 2 * padding - kernel) / stride + 1;
  }
};

// image: pointer to one sample's [C, H, W] data; cols: [C·K·K, OH·OW],
// written densely.
void im2col(const float* image, index_t height, index_t width,
            const ConvGeometry& g, float* cols);

// Scatter-add the columns back to an image gradient: the adjoint of
// im2col.  `image_grad` must be pre-zeroed by the caller (conv backward
// accumulates across batch samples).
void col2im(const float* cols, index_t height, index_t width,
            const ConvGeometry& g, float* image_grad);

}  // namespace qdnn::nn
