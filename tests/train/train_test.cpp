// Optimizer, scheduler and end-to-end training tests.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "gradcheck_util.h"
#include "models/resnet.h"
#include "nn/linear.h"
#include "train/adam.h"
#include "train/trainer.h"

namespace qdnn::train {
namespace {

using qdnn::testing::random_tensor;

// ------------------------------- SGD --------------------------------------

TEST(Sgd, PlainStep) {
  nn::Parameter p("p", Tensor{Shape{2}, std::vector<float>{1.0f, 2.0f}});
  p.grad[0] = 0.5f;
  p.grad[1] = -0.5f;
  Sgd opt({&p}, {/*lr=*/0.1f, /*momentum=*/0.0f, /*weight_decay=*/0.0f});
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0f - 0.05f);
  EXPECT_FLOAT_EQ(p.value[1], 2.0f + 0.05f);
}

TEST(Sgd, MomentumAccumulates) {
  nn::Parameter p("p", Tensor{Shape{1}});
  Sgd opt({&p}, {0.1f, 0.9f, 0.0f});
  p.grad[0] = 1.0f;
  opt.step();  // v=1, p=-0.1
  EXPECT_NEAR(p.value[0], -0.1f, 1e-6f);
  opt.step();  // v=1.9, p=-0.29
  EXPECT_NEAR(p.value[0], -0.29f, 1e-6f);
}

TEST(Sgd, WeightDecayOnlyWhereTagged) {
  nn::Parameter decayed("w", Tensor{Shape{1}, 2.0f});
  nn::Parameter exempt("b", Tensor{Shape{1}, 2.0f});
  exempt.decay = false;
  Sgd opt({&decayed, &exempt}, {0.1f, 0.0f, 0.5f});
  opt.step();  // grad 0, decay pulls decayed toward 0
  EXPECT_LT(decayed.value[0], 2.0f);
  EXPECT_FLOAT_EQ(exempt.value[0], 2.0f);
}

TEST(Sgd, LrScaleAppliesPerParameter) {
  nn::Parameter fast("fast", Tensor{Shape{1}});
  nn::Parameter slow("lambda", Tensor{Shape{1}});
  slow.lr_scale = 1e-3f;
  fast.grad[0] = slow.grad[0] = 1.0f;
  Sgd opt({&fast, &slow}, {0.1f, 0.0f, 0.0f});
  opt.step();
  EXPECT_NEAR(fast.value[0], -0.1f, 1e-7f);
  EXPECT_NEAR(slow.value[0], -1e-4f, 1e-9f);
}

TEST(Sgd, GradNormAndClipping) {
  nn::Parameter p("p", Tensor{Shape{2}});
  p.grad[0] = 3.0f;
  p.grad[1] = 4.0f;
  Sgd opt({&p}, {1.0f, 0.0f, 0.0f, /*clip_norm=*/1.0f});
  EXPECT_NEAR(opt.grad_norm(), 5.0, 1e-6);
  opt.step();
  // Clipped to unit norm: update = (0.6, 0.8).
  EXPECT_NEAR(p.value[0], -0.6f, 1e-5f);
  EXPECT_NEAR(p.value[1], -0.8f, 1e-5f);
}

TEST(Sgd, ZeroGradClears) {
  nn::Parameter p("p", Tensor{Shape{2}});
  p.grad.fill(1.0f);
  Sgd opt({&p}, {});
  opt.zero_grad();
  EXPECT_FLOAT_EQ(p.grad.abs_max(), 0.0f);
}


// ------------------------------- Adam -------------------------------------

TEST(Adam, FirstStepIsSignedLr) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  nn::Parameter p("p", Tensor{Shape{2}});
  p.grad[0] = 0.3f;
  p.grad[1] = -7.0f;
  Adam opt({&p}, {/*lr=*/0.01f});
  opt.step();
  EXPECT_NEAR(p.value[0], -0.01f, 1e-4f);
  EXPECT_NEAR(p.value[1], 0.01f, 1e-4f);
}

TEST(Adam, LrScaleApplies) {
  nn::Parameter fast("fast", Tensor{Shape{1}});
  nn::Parameter slow("lambda", Tensor{Shape{1}});
  slow.lr_scale = 0.1f;
  fast.grad[0] = slow.grad[0] = 1.0f;
  Adam opt({&fast, &slow}, {0.01f});
  opt.step();
  EXPECT_NEAR(fast.value[0], -0.01f, 1e-4f);
  EXPECT_NEAR(slow.value[0], -0.001f, 1e-5f);
}

TEST(Adam, DecoupledWeightDecay) {
  nn::Parameter decayed("w", Tensor{Shape{1}, 1.0f});
  nn::Parameter exempt("b", Tensor{Shape{1}, 1.0f});
  exempt.decay = false;
  AdamConfig config;
  config.lr = 0.1f;
  config.weight_decay = 0.5f;
  Adam opt({&decayed, &exempt}, config);
  opt.step();  // zero grads: only decay acts
  EXPECT_LT(decayed.value[0], 1.0f);
  EXPECT_FLOAT_EQ(exempt.value[0], 1.0f);
}

TEST(Adam, SkipsNonFiniteGradientsWhenClipping) {
  nn::Parameter p("p", Tensor{Shape{1}, 2.0f});
  p.grad[0] = std::numeric_limits<float>::infinity();
  AdamConfig config;
  config.clip_norm = 1.0f;
  Adam opt({&p}, config);
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 2.0f);  // untouched
}

TEST(Adam, ConvergesOnQuadraticBowl) {
  // Minimize f(w) = 0.5*||w - target||^2.
  nn::Parameter w("w", Tensor{Shape{4}});
  const Tensor target{Shape{4}, std::vector<float>{1, -2, 3, -4}};
  Adam opt({&w}, {/*lr=*/0.05f});
  for (int i = 0; i < 500; ++i) {
    opt.zero_grad();
    for (index_t j = 0; j < 4; ++j)
      w.grad[j] = w.value[j] - target[j];
    opt.step();
  }
  EXPECT_LT(max_abs_diff(w.value, target), 0.05f);
}

// ----------------------------- schedulers ---------------------------------

TEST(MultiStepLr, DecaysAtMilestones) {
  nn::Parameter p("p", Tensor{Shape{1}});
  Sgd opt({&p}, {0.1f, 0.0f, 0.0f});
  MultiStepLr sched(opt, 0.1f, {90, 135});
  EXPECT_NEAR(sched.lr_at(0), 0.1f, 1e-7f);
  EXPECT_NEAR(sched.lr_at(89), 0.1f, 1e-7f);
  EXPECT_NEAR(sched.lr_at(90), 0.01f, 1e-7f);
  EXPECT_NEAR(sched.lr_at(135), 0.001f, 1e-8f);
  sched.set_epoch(100);
  EXPECT_NEAR(opt.lr(), 0.01f, 1e-7f);
}

TEST(WarmupInvSqrt, RampsUpThenDecays) {
  nn::Parameter p("p", Tensor{Shape{1}});
  Sgd opt({&p}, {0.0f, 0.0f, 0.0f});
  WarmupInvSqrt sched(opt, 1.0f, 100);
  EXPECT_LT(sched.lr_at(1), sched.lr_at(50));
  EXPECT_LT(sched.lr_at(50), sched.lr_at(100) + 1e-9f);
  EXPECT_GT(sched.lr_at(100), sched.lr_at(400));
  // Peak reached exactly at warmup.
  EXPECT_NEAR(sched.lr_at(100), 1.0f, 1e-6f);
}

// ------------------------------ metrics -----------------------------------

TEST(Metrics, Accuracy) {
  Tensor logits{Shape{3, 2}};
  logits.at(0, 1) = 1.0f;  // predicts 1
  logits.at(1, 0) = 1.0f;  // predicts 0
  logits.at(2, 1) = 1.0f;  // predicts 1
  EXPECT_NEAR(accuracy(logits, {1, 0, 0}), 2.0 / 3.0, 1e-9);
}

TEST(Metrics, MeanAggregates) {
  Mean m;
  m.add(1.0, 1.0);
  m.add(3.0, 3.0);
  EXPECT_NEAR(m.value(), (1.0 + 9.0) / 4.0, 1e-12);
  m.reset();
  EXPECT_EQ(m.value(), 0.0);
}

// ----------------------- end-to-end classification ------------------------

TEST(Trainer, LearnsSyntheticTask) {
  data::SyntheticImageConfig data_config;
  data_config.num_classes = 2;
  data_config.image_size = 10;
  data_config.noise_std = 0.15f;
  const auto train_set = data::make_synthetic_images(data_config, 160, 1);
  const auto test_set = data::make_synthetic_images(data_config, 64, 2);

  models::ResNetConfig net_config;
  net_config.depth = 8;
  net_config.num_classes = 2;
  net_config.image_size = 10;
  net_config.base_width = 6;
  net_config.spec = models::NeuronSpec::proposed(2);
  auto net = models::make_cifar_resnet(net_config);

  TrainerConfig tc;
  tc.epochs = 8;
  tc.batch_size = 16;
  tc.lr = 0.05f;
  tc.augment_pad = 1;
  Trainer trainer(*net, tc);
  const auto history = trainer.fit(train_set, test_set);
  ASSERT_FALSE(history.empty());
  EXPECT_FALSE(history.back().diverged);
  EXPECT_GT(history.back().test_accuracy, 0.75)
      << "final loss " << history.back().train_loss;
}

TEST(Trainer, DetectsDivergence) {
  // A kervolution stack with a hot learning rate and no clipping must
  // trip the divergence detector rather than crash.
  data::SyntheticImageConfig data_config;
  data_config.num_classes = 2;
  data_config.image_size = 8;
  const auto train_set = data::make_synthetic_images(data_config, 64, 3);
  const auto test_set = data::make_synthetic_images(data_config, 32, 4);

  models::ResNetConfig net_config;
  net_config.depth = 14;
  net_config.num_classes = 2;
  net_config.image_size = 8;
  net_config.base_width = 8;
  net_config.spec =
      models::NeuronSpec::of(quadratic::NeuronKind::kKervolution);
  net_config.spec.kerv_degree = 3;
  net_config.spec.kerv_c = 1.5f;
  auto net = models::make_cifar_resnet(net_config);

  TrainerConfig tc;
  tc.epochs = 6;
  tc.batch_size = 16;
  tc.lr = 10.0f;  // deliberately hot
  tc.augment_pad = 0;
  Trainer trainer(*net, tc);
  const auto history = trainer.fit(train_set, test_set);
  // The hot LR on a degree-3 kernel reliably blows up somewhere — either
  // the training pass (which aborts the run) or an eval pass (recorded on
  // that epoch); the run must never crash.
  ASSERT_FALSE(history.empty());
  bool any_diverged = false;
  for (const auto& e : history) any_diverged = any_diverged || e.diverged;
  EXPECT_TRUE(any_diverged);
}

TEST(Trainer, TargetAccuracyStopsEarly) {
  data::SyntheticImageConfig data_config;
  data_config.num_classes = 2;
  data_config.image_size = 8;
  const auto train_set = data::make_synthetic_images(data_config, 64, 5);
  const auto test_set = data::make_synthetic_images(data_config, 32, 6);
  models::ResNetConfig net_config;
  net_config.depth = 8;
  net_config.num_classes = 2;
  net_config.image_size = 8;
  net_config.base_width = 4;
  auto net = models::make_cifar_resnet(net_config);
  TrainerConfig tc;
  tc.epochs = 50;
  tc.batch_size = 16;
  tc.lr = 0.05f;
  tc.target_accuracy = 0.51;  // trivially reachable
  Trainer trainer(*net, tc);
  const auto history = trainer.fit(train_set, test_set);
  EXPECT_LT(history.size(), 50u);
}

}  // namespace
}  // namespace qdnn::train
