// InferenceSession contract tests: bit-identity with the legacy
// Module::forward path (quadratic MLP and ResNet), determinism across
// calls, batch sharding across threads, and the headline property — zero
// heap allocations in steady state, asserted with a counting global
// allocator.
#include "runtime/inference_session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>

#include "decode_test_util.h"
#include "linalg/gemm_backend.h"
#include "models/resnet.h"
#include "obs/trace.h"
#include "models/transformer/transformer.h"
#include "runtime/decode_session.h"
#include "serve/scheduler.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "nn/softmax.h"
#include "quadratic/quad_conv.h"
#include "quadratic/quad_dense.h"

// ---------------------------------------------------------------------------
// Counting allocator: every operator new in the process bumps a counter.
// ---------------------------------------------------------------------------
namespace {
std::atomic<long long> g_live_allocs{0};
}  // namespace

// GCC flags malloc-backed replacement allocators as mismatched pairs even
// though replacing all eight signatures together is well-defined.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  void* p = std::malloc(size ? size : 1);
  if (!p) throw std::bad_alloc();
  g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
// C++17 aligned forms too, so over-aligned allocations (e.g. future
// SIMD-aligned packs) cannot slip past the zero-allocation assertion.
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               (size + static_cast<std::size_t>(align) - 1) /
                                   static_cast<std::size_t>(align) *
                                   static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc();
  g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#pragma GCC diagnostic pop

namespace qdnn::runtime {
namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t{std::move(shape)};
  rng.fill_uniform(t, -1.0f, 1.0f);
  return t;
}

// A quadratic MLP whose every layer has a native forward_into.
std::unique_ptr<nn::Sequential> make_quad_mlp(std::uint64_t seed) {
  Rng rng(seed);
  auto net = std::make_unique<nn::Sequential>("quad_mlp");
  net->emplace<quadratic::ProposedQuadraticDense>(/*in=*/12, /*units=*/4,
                                                  /*rank=*/3, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Linear>(16, 10, rng, true, "head");
  net->emplace<nn::Softmax>();
  return net;
}

SessionConfig dense_config(index_t in, index_t max_batch, int threads = 1) {
  SessionConfig config;
  config.sample_shape = Shape{in};
  config.max_batch = max_batch;
  config.num_threads = threads;
  return config;
}

TEST(InferenceSession, BitIdenticalToLegacyForwardOnQuadMlp) {
  auto net = make_quad_mlp(7);
  net->set_training(false);
  const Tensor x = random_tensor(Shape{5, 12}, 1);
  const Tensor ref = net->forward(x);

  InferenceSession session(std::move(net), dense_config(12, 8));
  EXPECT_TRUE(session.fully_native());
  EXPECT_EQ(session.num_stages(), 4);
  const ConstTensorView& out = session.run(x);
  ASSERT_EQ(out.shape(), ref.shape());
  EXPECT_EQ(view_max_abs_diff(out, ConstTensorView(ref)), 0.0f);
}

TEST(InferenceSession, BitIdenticalToLegacyForwardOnResNet) {
  models::ResNetConfig rc;
  rc.depth = 8;
  rc.num_classes = 4;
  rc.image_size = 8;
  rc.base_width = 4;
  rc.spec = models::NeuronSpec::proposed(3);
  rc.seed = 3;
  auto net = models::make_cifar_resnet(rc);
  net->set_training(false);
  const Tensor x = random_tensor(Shape{3, 3, 8, 8}, 2);
  const Tensor ref = net->forward(x);

  SessionConfig config;
  config.sample_shape = Shape{3, 8, 8};
  config.max_batch = 4;
  InferenceSession session(std::move(net), config);
  // ResNet flattens into a native stage pipeline (stem, blocks with
  // residual-add stages, GAP, fc) instead of one legacy-adapted stage.
  EXPECT_GT(session.num_stages(), 10);
  EXPECT_TRUE(session.fully_native());
  const ConstTensorView& out = session.run(x);
  ASSERT_EQ(out.shape(), ref.shape());
  EXPECT_EQ(view_max_abs_diff(out, ConstTensorView(ref)), 0.0f);
}

TEST(InferenceSession, BitIdenticalAcrossEveryNativeLayerKind) {
  // One pipeline through every module with a native forward_into, so a
  // serving kernel that drifts from its forward() twin fails here.
  Rng rng(37);
  auto net = std::make_unique<nn::Sequential>("zoo");
  net->emplace<nn::Conv2d>(3, 6, 3, 1, 1, rng);
  net->emplace<nn::BatchNorm2d>(6);
  net->emplace<nn::GELU>();
  net->emplace<quadratic::ProposedQuadConv2d>(6, 2, 3, 1, 1, 3, rng);
  net->emplace<nn::GlobalAvgPool2d>();  // [N, 2·(3+1)] = [N, 8]
  net->emplace<nn::LayerNorm>(8);
  net->emplace<quadratic::LowRankQuadraticDense>(8, 6, 2, rng);
  net->emplace<nn::Tanh>();
  net->emplace<quadratic::FactoredQuadraticDense>(
      6, 6, quadratic::NeuronKind::kQuad1, rng);
  net->emplace<nn::Sigmoid>();
  net->emplace<quadratic::GeneralQuadraticDense>(6, 5, rng);
  net->emplace<nn::Dropout>(0.5f, rng);
  net->emplace<nn::Softmax>();
  net->set_training(false);

  const Tensor x = random_tensor(Shape{3, 3, 8, 8}, 8);
  const Tensor ref = net->forward(x);

  SessionConfig config;
  config.sample_shape = Shape{3, 8, 8};
  config.max_batch = 4;
  InferenceSession session(std::move(net), config);
  EXPECT_TRUE(session.fully_native());
  const ConstTensorView& out = session.run(x);
  ASSERT_EQ(out.shape(), ref.shape());
  EXPECT_EQ(view_max_abs_diff(out, ConstTensorView(ref)), 0.0f);
}

TEST(InferenceSession, NestedSequentialFlattensToNativeStages) {
  // A nested Sequential flattens recursively: the session serves the
  // inner chain's children as first-class native stages.
  auto build = [] {
    Rng rng(41);
    auto inner = std::make_unique<nn::Sequential>("inner");
    inner->emplace<nn::Linear>(8, 12, rng, true, "a");
    inner->emplace<nn::ReLU>();
    inner->emplace<nn::Linear>(12, 6, rng, true, "b");
    auto outer = std::make_unique<nn::Sequential>("outer");
    outer->append(std::move(inner));
    outer->emplace<nn::Linear>(6, 4, rng, true, "head");
    return outer;
  };
  auto ref_net = build();
  ref_net->set_training(false);
  const Tensor x = random_tensor(Shape{3, 8}, 9);
  const Tensor ref = ref_net->forward(x);

  InferenceSession session(build(), dense_config(8, 4));
  EXPECT_EQ(session.num_stages(), 4);
  EXPECT_TRUE(session.fully_native());
  const ConstTensorView& out = session.run(x);
  ASSERT_EQ(out.shape(), ref.shape());
  EXPECT_EQ(view_max_abs_diff(out, ConstTensorView(ref)), 0.0f);
}

TEST(InferenceSession, DeterministicAcrossRepeatedRuns) {
  auto net = make_quad_mlp(11);
  InferenceSession session(std::move(net), dense_config(12, 8));
  const Tensor x = random_tensor(Shape{8, 12}, 3);
  const Tensor first = session.run(x).to_tensor();
  for (int i = 0; i < 5; ++i) {
    const ConstTensorView& again = session.run(x);
    EXPECT_EQ(view_max_abs_diff(again, ConstTensorView(first)), 0.0f);
  }
}

TEST(InferenceSession, ThreadShardingIsBitIdentical) {
  const Tensor x = random_tensor(Shape{8, 12}, 4);
  InferenceSession single(make_quad_mlp(13), dense_config(12, 8, 1));
  InferenceSession sharded(make_quad_mlp(13), dense_config(12, 8, 3));
  EXPECT_EQ(sharded.num_threads(), 3);
  const Tensor ref = single.run(x).to_tensor();
  const ConstTensorView& out = sharded.run(x);
  EXPECT_EQ(view_max_abs_diff(out, ConstTensorView(ref)), 0.0f);
}

TEST(InferenceSession, RejectsShardingOverLegacyAdaptedStages) {
  // MaxPool2d has no native forward_into; its legacy adapter mutates
  // shared caches and must not run concurrently.
  auto net = std::make_unique<nn::Sequential>("pool_net");
  net->emplace<nn::MaxPool2d>(2, 2);
  SessionConfig config;
  config.sample_shape = Shape{1, 4, 4};
  config.max_batch = 4;
  config.num_threads = 2;
  EXPECT_THROW(InferenceSession(std::move(net), config),
               std::runtime_error);

  // The same model is fine single-threaded.
  auto net2 = std::make_unique<nn::Sequential>("pool_net");
  net2->emplace<nn::MaxPool2d>(2, 2);
  config.num_threads = 1;
  InferenceSession session(std::move(net2), config);
  EXPECT_FALSE(session.fully_native());
  const Tensor x = random_tensor(Shape{2, 1, 4, 4}, 60);
  EXPECT_EQ(session.run(x).shape(), Shape({2, 1, 2, 2}));
}

TEST(InferenceSession, ServesVariableBatchSizesUpToMax) {
  auto net = make_quad_mlp(17);
  InferenceSession session(std::move(net), dense_config(12, 8));
  for (index_t n : {1, 3, 8, 2}) {
    const Tensor x = random_tensor(Shape{n, 12}, 40 + n);
    const ConstTensorView& out = session.run(x);
    EXPECT_EQ(out.shape(), Shape({n, 10}));
  }
  EXPECT_EQ(session.output_shape(5), Shape({5, 10}));
  const Tensor too_big = random_tensor(Shape{9, 12}, 50);
  EXPECT_THROW(session.run(too_big), std::runtime_error);
}

TEST(InferenceSession, SlicedBatchMatchesFullBatchRows) {
  // Serving rows in two requests must give the same bits as one batch —
  // the property the thread sharding relies on.
  auto net = make_quad_mlp(19);
  InferenceSession session(std::move(net), dense_config(12, 8));
  const Tensor x = random_tensor(Shape{6, 12}, 5);
  const Tensor full = session.run(x).to_tensor();
  Tensor head{Shape{2, 12}};
  std::memcpy(head.data(), x.data(), 2 * 12 * sizeof(float));
  const ConstTensorView& out = session.run(head);
  for (index_t i = 0; i < out.numel(); ++i)
    EXPECT_EQ(out[i], full[i]) << "row-slice mismatch at " << i;
}

TEST(InferenceSession, RejectsInputAliasingItsOutputBuffer) {
  // Feeding the returned view straight back in would make stage 0 read
  // the bytes it is overwriting; the session must reject the feedback.
  Rng rng(43);
  auto net = std::make_unique<nn::Sequential>("sq");
  net->emplace<nn::Linear>(8, 8, rng, true, "fc");
  InferenceSession session(std::move(net), dense_config(8, 4));
  const Tensor x = random_tensor(Shape{2, 8}, 10);
  const ConstTensorView& y = session.run(x);
  EXPECT_THROW(session.run(y), std::runtime_error);
  // A copied result is fine.
  const Tensor y_copy = session.run(x).to_tensor();
  EXPECT_NO_THROW(session.run(y_copy));
}

TEST(InferenceSession, ZeroHeapAllocationsInSteadyState) {
  auto net = make_quad_mlp(23);
  InferenceSession session(std::move(net), dense_config(12, 8));
  ASSERT_TRUE(session.fully_native());
  const Tensor x = random_tensor(Shape{8, 12}, 6);

  // Settle: first run after construction is already warm (constructor
  // warm-up ran at max_batch), but run twice to be safe.
  session.run(x);
  session.run(x);

  const long long before = g_live_allocs.load();
  const long long packs_before = linalg::gemm_heap_pack_calls();
  for (int i = 0; i < 10; ++i) session.run(x);
  const long long after = g_live_allocs.load();
  EXPECT_EQ(after - before, 0)
      << "steady-state run() performed " << (after - before)
      << " heap allocations";
  // No steady-state path may fall back to the scratch-allocating gemm
  // convenience overload.
  EXPECT_EQ(linalg::gemm_heap_pack_calls(), packs_before);
}

TEST(InferenceSession, WorkspaceWatermarkIsStableAcrossRuns) {
  auto net = make_quad_mlp(29);
  InferenceSession session(std::move(net), dense_config(12, 8));
  const Tensor x = random_tensor(Shape{8, 12}, 7);
  session.run(x);
  const index_t ws = session.workspace_floats();
  EXPECT_GT(ws, 0);
  for (int i = 0; i < 5; ++i) session.run(x);
  EXPECT_EQ(session.workspace_floats(), ws);
  EXPECT_GT(session.activation_floats(), 0);
}

// ---------------------------------------------------------------------------
// Freeze / prepack regressions.
// ---------------------------------------------------------------------------

TEST(InferenceSession, FreezeShrinksWorkspaceWatermarkBitIdentically) {
  // The same model served frozen (default) and unfrozen: identical bits,
  // but the frozen session's workspace watermark must have dropped the
  // per-request gemm trans_b packing scratch.
  const Tensor x = random_tensor(Shape{8, 12}, 11);

  SessionConfig frozen_cfg = dense_config(12, 8);
  InferenceSession frozen(make_quad_mlp(31), frozen_cfg);
  EXPECT_TRUE(frozen.frozen());
  EXPECT_TRUE(frozen.model().frozen());

  SessionConfig unfrozen_cfg = dense_config(12, 8);
  unfrozen_cfg.freeze = false;
  InferenceSession unfrozen(make_quad_mlp(31), unfrozen_cfg);
  EXPECT_FALSE(unfrozen.frozen());
  EXPECT_FALSE(unfrozen.model().frozen());

  const Tensor ref = unfrozen.run(x).to_tensor();
  const ConstTensorView& out = frozen.run(x);
  ASSERT_EQ(out.shape(), ref.shape());
  EXPECT_EQ(view_max_abs_diff(out, ConstTensorView(ref)), 0.0f);

  EXPECT_LT(frozen.workspace_floats(), unfrozen.workspace_floats())
      << "frozen watermark " << frozen.workspace_floats()
      << " should exclude packing scratch (unfrozen "
      << unfrozen.workspace_floats() << ")";
}

TEST(InferenceSession, FrozenSessionZeroHeapAllocationsInSteadyState) {
  // The headline regression of the freeze subsystem: a frozen session —
  // prepacked weights, flattened pipeline — performs no steady-state heap
  // allocations at all, counted by the global allocator.
  auto net = make_quad_mlp(33);
  InferenceSession session(std::move(net), dense_config(12, 8));
  ASSERT_TRUE(session.frozen());
  ASSERT_TRUE(session.fully_native());
  const Tensor x = random_tensor(Shape{8, 12}, 12);
  session.run(x);
  session.run(x);

  const long long before = g_live_allocs.load();
  for (int i = 0; i < 10; ++i) session.run(x);
  const long long after = g_live_allocs.load();
  EXPECT_EQ(after - before, 0)
      << "frozen steady-state run() performed " << (after - before)
      << " heap allocations";
}

TEST(InferenceSession, FrozenResNetPipelineZeroAllocAndShardable) {
  // ResNet now serves as an all-native flattened pipeline (residual-add
  // stages included), so it must run allocation-free and shard across
  // threads bit-identically.
  models::ResNetConfig rc;
  rc.depth = 8;
  rc.num_classes = 4;
  rc.image_size = 8;
  rc.base_width = 4;
  rc.spec = models::NeuronSpec::proposed(3);
  rc.seed = 13;
  SessionConfig config;
  config.sample_shape = Shape{3, 8, 8};
  config.max_batch = 4;

  InferenceSession session(models::make_cifar_resnet(rc), config);
  ASSERT_TRUE(session.fully_native());
  const Tensor x = random_tensor(Shape{4, 3, 8, 8}, 14);
  session.run(x);
  session.run(x);
  const long long before = g_live_allocs.load();
  for (int i = 0; i < 5; ++i) session.run(x);
  const long long after = g_live_allocs.load();
  EXPECT_EQ(after - before, 0)
      << "frozen ResNet run() performed " << (after - before)
      << " heap allocations";

  config.num_threads = 2;
  InferenceSession sharded(models::make_cifar_resnet(rc), config);
  EXPECT_EQ(sharded.num_threads(), 2);
  const Tensor ref = session.run(x).to_tensor();
  const ConstTensorView& out = sharded.run(x);
  EXPECT_EQ(view_max_abs_diff(out, ConstTensorView(ref)), 0.0f);
}

// ---------------------------------------------------------------------------
// KV-cached decode regressions.
// ---------------------------------------------------------------------------

using qdnn::testing::random_src_ids;
using qdnn::testing::tiny_transformer_config;

TEST(DecodeSession, FrozenStepZeroHeapAllocationsInSteadyState) {
  // The headline decode regression: after warm-up and prime, every
  // step() — embed, all KV-cached decoder stages, output projection,
  // argmax — performs no heap allocation at all, counted by the global
  // allocator.
  models::Transformer model(tiny_transformer_config());
  model.set_training(false);
  DecodeSessionConfig sc;
  sc.max_batch = 4;
  sc.max_steps = 12;
  DecodeSession session(model, sc);
  ASSERT_TRUE(session.frozen());
  ASSERT_TRUE(session.fully_native());

  const Tensor src = random_src_ids(4, 6, 20, 51);
  session.prime(src, {});
  std::vector<index_t> feed(4, 1);
  // Settle: two steps after prime (the constructor warm-up already ran at
  // the deepest ring position, so the watermark is final).
  session.step(feed);
  feed = session.step(feed);

  const long long before = g_live_allocs.load();
  const long long packs_before = linalg::gemm_heap_pack_calls();
  for (int i = 0; i < 8; ++i) feed = session.step(feed);
  const long long after = g_live_allocs.load();
  EXPECT_EQ(after - before, 0)
      << "steady-state step() performed " << (after - before)
      << " heap allocations";
  // Decode steps must route every gemm through prepacked weights or
  // caller-provided scratch — never the allocating overload.
  EXPECT_EQ(linalg::gemm_heap_pack_calls(), packs_before);
}

// Restores the process-wide tracing flag on scope exit, so these tests
// behave identically whether CI exported QDNN_TRACE or not.
struct TraceFlagGuard {
  bool saved = obs::trace_enabled();
  ~TraceFlagGuard() { obs::set_trace_enabled(saved); }
};

TEST(DecodeSession, StepZeroHeapAllocationsWithTracingEnabled) {
  // The observability contract: tracing ON must not cost allocations
  // either — stage timing writes into bind-time buffers and trace/metric
  // recording into preallocated instruments.
  TraceFlagGuard guard;
  obs::set_trace_enabled(true);
  models::Transformer model(tiny_transformer_config());
  model.set_training(false);
  DecodeSessionConfig sc;
  sc.max_batch = 4;
  sc.max_steps = 12;
  DecodeSession session(model, sc);

  const Tensor src = random_src_ids(4, 6, 20, 51);
  session.prime(src, {});
  std::vector<index_t> feed(4, 1);
  session.step(feed);
  feed = session.step(feed);

  const long long before = g_live_allocs.load();
  for (int i = 0; i < 8; ++i) feed = session.step(feed);
  const long long after = g_live_allocs.load();
  EXPECT_EQ(after - before, 0)
      << "traced steady-state step() performed " << (after - before)
      << " heap allocations";
  // The profile must actually have accumulated: embed + stages + argmax,
  // every slot stepped once per step().
  const auto profile = session.stage_profile();
  ASSERT_EQ(static_cast<index_t>(profile.size()),
            session.num_stages() + 2);
  EXPECT_EQ(profile.front().name, "embed");
  EXPECT_EQ(profile.back().name, "argmax");
  for (const obs::StageTiming& st : profile) {
    EXPECT_GE(st.calls, 10) << st.name;
    EXPECT_GT(st.total_ns, 0) << st.name;
  }
}

TEST(DecodeSession, TracingOffRecordsNoStageProfile) {
  TraceFlagGuard guard;
  obs::set_trace_enabled(false);
  models::Transformer model(tiny_transformer_config());
  model.set_training(false);
  DecodeSessionConfig sc;
  sc.max_batch = 2;
  sc.max_steps = 8;
  DecodeSession session(model, sc);
  session.prime(random_src_ids(2, 4, 20, 61), {});
  session.generate(1, 2);
  for (const obs::StageTiming& st : session.stage_profile()) {
    EXPECT_EQ(st.calls, 0) << st.name;
    EXPECT_EQ(st.total_ns, 0) << st.name;
  }
}

TEST(DecodeSession, FreezeShrinksDecodeWatermarkBitIdentically) {
  // Frozen vs unfrozen decode sessions: identical token sequences, but
  // the frozen watermark must have dropped the per-step gemm trans_b
  // packing scratch of the Q/K/V/output projections.
  const Tensor src = random_src_ids(3, 5, 20, 52);

  models::Transformer frozen_model(tiny_transformer_config());
  frozen_model.set_training(false);
  DecodeSessionConfig sc;
  sc.max_batch = 3;
  sc.max_steps = 10;
  DecodeSession frozen(frozen_model, sc);
  frozen.prime(src, {});
  const auto frozen_out = frozen.generate(1, 2);

  models::Transformer unfrozen_model(tiny_transformer_config());
  unfrozen_model.set_training(false);
  sc.freeze = false;
  DecodeSession unfrozen(unfrozen_model, sc);
  unfrozen.prime(src, {});
  const auto unfrozen_out = unfrozen.generate(1, 2);

  for (std::size_t r = 0; r < frozen_out.size(); ++r)
    EXPECT_EQ(frozen_out[r], unfrozen_out[r]) << "row " << r;
  EXPECT_LT(frozen.workspace_floats(), unfrozen.workspace_floats())
      << "frozen decode watermark " << frozen.workspace_floats()
      << " should exclude packing scratch (unfrozen "
      << unfrozen.workspace_floats() << ")";
}

TEST(DecodeSession, WatermarkStableAcrossPrimesAndSteps) {
  models::Transformer model(tiny_transformer_config());
  model.set_training(false);
  DecodeSessionConfig sc;
  sc.max_batch = 3;
  sc.max_steps = 12;
  DecodeSession session(model, sc);

  session.prime(random_src_ids(3, 6, 20, 53), {});
  session.generate(1, 2);
  const index_t ws = session.workspace_floats();
  EXPECT_GT(ws, 0);
  for (std::uint64_t seed : {54u, 55u}) {
    session.prime(random_src_ids(2, 4, 20, seed), {});
    session.generate(1, 2);
    EXPECT_EQ(session.workspace_floats(), ws);
  }
  EXPECT_GT(session.kv_cache_floats(), 0);
}

TEST(BatchScheduler, SteadyStateTickZeroHeapAllocations) {
  // The continuous-batching zero-alloc regression: with every batch row
  // live and the queue empty, a scheduler tick — park/feed bookkeeping,
  // the full per-row batch step, per-row sampling, token pushes into the
  // preallocated slot buffers — performs no heap allocation at all.
  // (Admission allocates by contract: it runs the encoder.)
  models::Transformer model(qdnn::testing::tiny_transformer_config());
  model.set_training(false);
  serve::BatchSchedulerConfig config;
  config.session.max_batch = 3;
  config.session.max_steps = 16;
  serve::BatchScheduler scheduler(model, config);
  ASSERT_TRUE(scheduler.session().frozen());
  ASSERT_TRUE(scheduler.session().fully_native());

  for (index_t i = 0; i < 3; ++i) {
    serve::Request req;
    req.src_ids = random_src_ids(1, 5, 20, 120 + i);
    req.max_new_tokens = 16;
    // Mix the heads so the sampling scratch paths are audited too.
    if (i == 1)
      req.sampling = serve::SamplingConfig::with_temperature(1.1f, 5);
    if (i == 2)
      req.sampling = serve::SamplingConfig::with_top_k(4, 0.9f, 6);
    scheduler.submit(std::move(req));
  }
  // First tick admits (allocates: encoder prime); one more to settle.
  scheduler.step();
  scheduler.step();
  ASSERT_EQ(scheduler.live_rows(), 3)
      << "rows retired early — pick different request seeds";

  const long long before = g_live_allocs.load();
  for (int i = 0; i < 8; ++i) scheduler.step();
  const long long after = g_live_allocs.load();
  EXPECT_EQ(after - before, 0)
      << "steady-state scheduler tick performed " << (after - before)
      << " heap allocations";
  scheduler.run();
  EXPECT_EQ(scheduler.take_results().size(), 3u);
}

TEST(BatchScheduler, SteadyStateTickZeroHeapAllocationsWithTracing) {
  // Same window as SteadyStateTickZeroHeapAllocations, but with the
  // telemetry fully live: per-token trace records, first-token stamps,
  // histogram observes and stage timing all land in preallocated storage.
  TraceFlagGuard guard;
  obs::set_trace_enabled(true);
  models::Transformer model(qdnn::testing::tiny_transformer_config());
  model.set_training(false);
  serve::BatchSchedulerConfig config;
  config.session.max_batch = 3;
  config.session.max_steps = 16;
  serve::BatchScheduler scheduler(model, config);

  for (index_t i = 0; i < 3; ++i) {
    serve::Request req;
    req.src_ids = random_src_ids(1, 5, 20, 120 + i);
    req.max_new_tokens = 16;
    scheduler.submit(std::move(req));
  }
  scheduler.step();
  scheduler.step();
  ASSERT_EQ(scheduler.live_rows(), 3);

  const long long traced_before = scheduler.trace().recorded();
  const long long before = g_live_allocs.load();
  for (int i = 0; i < 8; ++i) scheduler.step();
  const long long after = g_live_allocs.load();
  EXPECT_EQ(after - before, 0)
      << "traced steady-state scheduler tick performed "
      << (after - before) << " heap allocations";
  // The measured ticks DID trace: 3 rows × 8 ticks of step events.
  EXPECT_GE(scheduler.trace().recorded() - traced_before, 24);
  scheduler.run();
  EXPECT_EQ(scheduler.take_results().size(), 3u);
}

TEST(BatchScheduler, SteadyStateZeroAllocWithPagingPrefixCacheAndSampling) {
  // PR 10 composition: small pages (so the measured ticks ACQUIRE self
  // pages mid-decode), a live prefix cache holding pinned entries, and
  // trace sampling (every 2nd request records its lifecycle).  The
  // steady-state tick must still perform zero heap allocations — page
  // acquisition works the pool's preallocated free list, the sampling
  // decision is a counter compare, and sampled records land in the
  // preallocated trace ring.
  TraceFlagGuard guard;
  obs::set_trace_enabled(true);
  obs::set_trace_sample(2);
  models::Transformer model(qdnn::testing::tiny_transformer_config());
  model.set_training(false);
  serve::BatchSchedulerConfig config;
  config.session.max_batch = 3;
  config.session.max_steps = 16;
  config.session.page_tokens = 4;  // page boundary every 4 steps
  serve::BatchScheduler scheduler(model, config);

  // Warm the prefix cache: one request to completion publishes its
  // committed cross pages under the source hash.
  {
    serve::Request req;
    req.src_ids = random_src_ids(1, 5, 20, 120);
    req.max_new_tokens = 16;
    scheduler.submit(std::move(req));
    scheduler.run();
    scheduler.take_results();
  }
  ASSERT_GT(scheduler.session().prefix_cache().live_entries(), 0);

  for (index_t i = 0; i < 3; ++i) {
    serve::Request req;
    // Row 0 re-uses the cached source (admission takes the cache hit
    // path); the others prime cold.
    req.src_ids = random_src_ids(1, 5, 20, 120 + i);
    req.max_new_tokens = 16;
    scheduler.submit(std::move(req));
  }
  scheduler.step();
  scheduler.step();
  ASSERT_EQ(scheduler.live_rows(), 3);
  ASSERT_GT(scheduler.session().prefix_cache().hits(), 0);

  const long long before = g_live_allocs.load();
  for (int i = 0; i < 8; ++i) scheduler.step();
  const long long after = g_live_allocs.load();
  EXPECT_EQ(after - before, 0)
      << "paged+cached+sampled steady-state tick performed "
      << (after - before) << " heap allocations";
  scheduler.run();
  EXPECT_EQ(scheduler.take_results().size(), 3u);
  obs::set_trace_sample(1);
}

TEST(BatchScheduler, AsyncRetireAdmitCycleZeroHeapAllocations) {
  // The prefill/decode-split headline regression: with prefills computed
  // ahead by the pool, a scheduler tick that ADMITS (commit_row: a pure
  // K/V copy plus slot bookkeeping over the request's own warm token
  // buffer) and a tick that RETIRES (hand the buffer off, park the row)
  // perform no heap allocation at all — the full retire→admit slot cycle
  // included.  (Synchronous admission allocates by contract: it runs the
  // encoder on the serving thread.)
  models::Transformer model(qdnn::testing::tiny_transformer_config());
  model.set_training(false);
  serve::BatchSchedulerConfig config;
  config.session.max_batch = 2;
  config.session.max_steps = 8;
  config.prefill_workers = 1;
  serve::BatchScheduler scheduler(model, config);

  auto submit_wave = [&](std::uint64_t seed) {
    for (index_t i = 0; i < 2; ++i) {
      serve::Request req;
      req.src_ids = random_src_ids(1, 4, 20, seed + i);
      req.max_new_tokens = 2;  // retires on length at the second tick
      scheduler.submit(std::move(req));
    }
    // Wait for the pool so the measured ticks admit without computing
    // (and no worker thread allocates inside the measured window).
    while (scheduler.prefill_pool()->ready() < 2)
      std::this_thread::yield();
  };

  // Wave 1 occupies both rows and retires them — the slots have cycled
  // once before the measurement, covering the moved-from buffer states.
  submit_wave(200);
  scheduler.step();
  scheduler.step();
  ASSERT_EQ(scheduler.take_results().size(), 2u);

  // Wave 2 is fully prefilled before the window opens.
  submit_wave(210);
  const long long before = g_live_allocs.load();
  scheduler.step();  // admits both rows: commit_row + warm-buffer swap
  scheduler.step();  // decodes to budget and retires both: park + hand-off
  scheduler.step();  // idle tick over parked rows
  const long long after = g_live_allocs.load();
  EXPECT_EQ(after - before, 0)
      << "async retire→admit cycle performed " << (after - before)
      << " heap allocations";
  EXPECT_EQ(scheduler.take_results().size(), 2u);
  EXPECT_TRUE(scheduler.idle());
}

TEST(BatchScheduler, SessionWatermarkStableAcrossAdmissions) {
  // Mid-flight admissions re-run prime projections and rebind nothing:
  // the consolidated workspace watermark must not move once warmed up.
  models::Transformer model(qdnn::testing::tiny_transformer_config());
  model.set_training(false);
  serve::BatchSchedulerConfig config;
  config.session.max_batch = 2;
  config.session.max_steps = 12;
  serve::BatchScheduler scheduler(model, config);
  const index_t ws = scheduler.session().workspace_floats();
  EXPECT_GT(ws, 0);

  for (index_t i = 0; i < 6; ++i) {
    serve::Request req;
    req.src_ids = random_src_ids(1, 3 + i % 4, 20, 140 + i);
    req.max_new_tokens = 2 + i % 7;
    scheduler.submit(std::move(req));
  }
  scheduler.run();
  EXPECT_EQ(scheduler.take_results().size(), 6u);
  EXPECT_EQ(scheduler.session().workspace_floats(), ws)
      << "admission/retirement churn grew the workspace";
  EXPECT_GT(scheduler.mean_occupancy(), 1.0);
}

TEST(InferenceSession, UnfreezeAfterWeightUpdateRestoresCorrectness) {
  // Mutating weights after freeze leaves the packs stale by contract;
  // re-freezing re-packs.  The serving results must track the re-pack.
  Rng rng(47);
  auto net = std::make_unique<nn::Sequential>("sq");
  auto* fc = net->emplace<nn::Linear>(6, 3, rng, true, "fc");
  net->set_training(false);

  net->freeze();
  const Tensor x = random_tensor(Shape{2, 6}, 15);
  Workspace ws;
  Tensor before{Shape{2, 3}};
  net->forward_into(ConstTensorView(x), TensorView(before), ws);

  // Perturb the weights; the frozen pack must still serve the OLD bits
  // (stale by contract), and freeze() again must pick up the new ones.
  fc->weight().value *= 2.0f;
  ws.reset();
  Tensor stale{Shape{2, 3}};
  net->forward_into(ConstTensorView(x), TensorView(stale), ws);
  EXPECT_EQ(max_abs_diff(stale, before), 0.0f);

  net->freeze();
  ws.reset();
  Tensor fresh{Shape{2, 3}};
  net->forward_into(ConstTensorView(x), TensorView(fresh), ws);
  const Tensor ref = fc->forward(x);
  EXPECT_EQ(max_abs_diff(fresh, ref), 0.0f);
  EXPECT_GT(max_abs_diff(fresh, before), 0.0f);

  // unfreeze() drops the packs entirely: serving reads live weights.
  net->unfreeze();
  EXPECT_FALSE(net->frozen());
  ws.reset();
  Tensor live{Shape{2, 3}};
  net->forward_into(ConstTensorView(x), TensorView(live), ws);
  EXPECT_EQ(max_abs_diff(live, ref), 0.0f);
}

}  // namespace
}  // namespace qdnn::runtime
