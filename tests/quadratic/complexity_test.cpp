// Verifies the Table I complexity formulas against the actual parameter
// counts of instantiated layers — the formulas are the paper's central
// efficiency claim, so they must match the code exactly.
#include "quadratic/complexity.h"

#include <gtest/gtest.h>

#include "quadratic/quad_conv.h"
#include "quadratic/quad_dense.h"

namespace qdnn::quadratic {
namespace {

// Counts a layer's parameters excluding biases (Table I ignores biases).
index_t weight_params(nn::Module& layer) {
  index_t total = 0;
  for (const nn::Parameter* p : layer.parameters()) {
    // Bias-like vectors are tagged decay=false AND 1-D in this library;
    // Table I ignores them.  Λ is 2-D [units, rank] and counted.
    const bool bias_like =
        !p->decay && p->value.rank() == 1 &&
        p->group == "linear";
    if (!bias_like) total += p->numel();
  }
  return total;
}

TEST(TableI, LinearNeuron) {
  const NeuronSpec spec = NeuronSpec::linear();
  const NeuronCost c = neuron_cost(spec, 100);
  EXPECT_EQ(c.params, 100);
  EXPECT_EQ(c.macs, 100);
  EXPECT_EQ(c.outputs, 1);
}

TEST(TableI, GeneralNeuronMatchesLayer) {
  const index_t n = 7;
  const NeuronSpec spec = NeuronSpec::of(NeuronKind::kGeneral);
  const NeuronCost c = neuron_cost(spec, n);
  EXPECT_EQ(c.params, n * n + n);
  Rng rng(1);
  GeneralQuadraticDense layer(n, 1, rng, true);
  EXPECT_EQ(weight_params(layer), c.params);
}

TEST(TableI, PureNeuronMatchesLayer) {
  const index_t n = 6;
  const NeuronSpec spec = NeuronSpec::of(NeuronKind::kPure);
  EXPECT_EQ(neuron_cost(spec, n).params, n * n);
  Rng rng(2);
  GeneralQuadraticDense layer(n, 1, rng, false);
  EXPECT_EQ(weight_params(layer), n * n);
}

TEST(TableI, LowRankNeuronMatchesLayer) {
  const index_t n = 8, k = 3;
  const NeuronSpec spec = NeuronSpec::of(NeuronKind::kLowRank, k);
  EXPECT_EQ(neuron_cost(spec, n).params, 2 * k * n + n);
  Rng rng(3);
  LowRankQuadraticDense layer(n, 1, k, rng);
  EXPECT_EQ(weight_params(layer), 2 * k * n + n);
}

TEST(TableI, Quad1NeuronMatchesLayer) {
  const index_t n = 9;
  EXPECT_EQ(neuron_cost(NeuronSpec::of(NeuronKind::kQuad1), n).params,
            3 * n);
  Rng rng(4);
  FactoredQuadraticDense layer(n, 1, NeuronKind::kQuad1, rng);
  EXPECT_EQ(weight_params(layer), 3 * n);
}

TEST(TableI, Quad2NeuronMatchesLayer) {
  const index_t n = 9;
  EXPECT_EQ(neuron_cost(NeuronSpec::of(NeuronKind::kQuad2), n).params,
            3 * n);
  EXPECT_EQ(neuron_cost(NeuronSpec::of(NeuronKind::kQuad2), n).macs, 3 * n);
  Rng rng(5);
  FactoredQuadraticDense layer(n, 1, NeuronKind::kQuad2, rng);
  EXPECT_EQ(weight_params(layer), 3 * n);
}

TEST(TableI, BuKarpatneMatchesLayer) {
  const index_t n = 5;
  EXPECT_EQ(neuron_cost(NeuronSpec::of(NeuronKind::kBuKarpatne), n).params,
            2 * n);
  Rng rng(6);
  FactoredQuadraticDense layer(n, 1, NeuronKind::kBuKarpatne, rng);
  EXPECT_EQ(weight_params(layer), 2 * n);
}

TEST(TableI, KervolutionHasLinearCost) {
  const index_t n = 11;
  const NeuronCost c =
      neuron_cost(NeuronSpec::of(NeuronKind::kKervolution), n);
  EXPECT_EQ(c.params, n);
}

// Eq. (9) and Eq. (10) of the paper.
TEST(TableI, ProposedNeuronEq9Eq10) {
  const index_t n = 12, k = 9;
  const NeuronSpec spec = NeuronSpec::proposed(k);
  const NeuronCost c = neuron_cost(spec, n);
  EXPECT_EQ(c.params, (k + 1) * n + k);
  EXPECT_EQ(c.macs, (k + 1) * n + 2 * k);
  EXPECT_EQ(c.outputs, k + 1);
  Rng rng(7);
  ProposedQuadraticDense layer(n, 1, k, rng);
  EXPECT_EQ(weight_params(layer), (k + 1) * n + k);
}

// Sec. III-C: averaged per-output complexity approaches the linear
// neuron's n as n grows — the "negligible overhead" claim.
TEST(TableI, ProposedPerOutputApproachesLinear) {
  const NeuronSpec spec = NeuronSpec::proposed(9);
  for (index_t n : {16, 64, 256, 1024, 4096}) {
    const double pp = params_per_output(spec, n);
    const double mp = macs_per_output(spec, n);
    EXPECT_NEAR(pp, n + 9.0 / 10.0, 1e-9);
    EXPECT_NEAR(mp, n + 18.0 / 10.0, 1e-9);
    // Overhead relative to the linear neuron shrinks like 1/n.
    EXPECT_LT((pp - n) / n, 0.06);
  }
}

TEST(TableI, ProposedBeatsLowRankForEqualRank) {
  // Same k: the proposed neuron halves the factor cost ((k+1)n vs 2kn for
  // k > 1) thanks to the symmetric decomposition.
  for (index_t k : {2, 3, 5, 9}) {
    const index_t n = 128;
    const NeuronCost ours =
        neuron_cost(NeuronSpec::proposed(k), n);
    const NeuronCost jiang =
        neuron_cost(NeuronSpec::of(NeuronKind::kLowRank, k), n);
    EXPECT_LT(ours.params, jiang.params) << "k=" << k;
  }
}

TEST(TableI, ProposedCostDoesNotScaleLinearlyWithK) {
  // Per-output cost is nearly flat in k (the paper's flexibility claim),
  // while [18]'s grows linearly.
  const index_t n = 256;
  const double ours_k2 = params_per_output(NeuronSpec::proposed(2), n);
  const double ours_k16 = params_per_output(NeuronSpec::proposed(16), n);
  EXPECT_LT(ours_k16 - ours_k2, 1.0);  // sub-parameter growth per output
  const double jiang_k2 =
      params_per_output(NeuronSpec::of(NeuronKind::kLowRank, 2), n);
  const double jiang_k16 =
      params_per_output(NeuronSpec::of(NeuronKind::kLowRank, 16), n);
  EXPECT_GT(jiang_k16 - jiang_k2, 2.0 * 13 * n * 0.9);
}

TEST(LayerCost, ConvAccounting) {
  const NeuronSpec spec = NeuronSpec::proposed(9);
  // 16 input channels, 3×3 kernel, 2 filters, 8×8 output positions.
  const LayerCost cost = conv_layer_cost(spec, 16, 3, 2, 64);
  const index_t n = 16 * 9;
  EXPECT_EQ(cost.params, 2 * ((9 + 1) * n + 9));
  EXPECT_EQ(cost.macs, 2 * ((9 + 1) * n + 2 * 9) * 64);
  EXPECT_EQ(cost.out_channels, 20);
}

TEST(Formulas, AreNonEmptyForAllFamilies) {
  for (NeuronKind kind :
       {NeuronKind::kLinear, NeuronKind::kGeneral, NeuronKind::kPure,
        NeuronKind::kBuKarpatne, NeuronKind::kLowRank, NeuronKind::kQuad1,
        NeuronKind::kQuad2, NeuronKind::kKervolution,
        NeuronKind::kProposed}) {
    const NeuronSpec spec = NeuronSpec::of(kind);
    EXPECT_FALSE(params_formula(spec).empty());
    EXPECT_FALSE(macs_formula(spec).empty());
    EXPECT_FALSE(spec.kind_name().empty());
  }
}

TEST(NeuronCost, RejectsNonPositiveFanIn) {
  EXPECT_THROW(neuron_cost(NeuronSpec::linear(), 0), std::runtime_error);
}

}  // namespace
}  // namespace qdnn::quadratic
