// Evaluation tokenizers for BLEU, mirroring the two schemes of the
// paper's Table II ("13a" and "International" rows of sacreBLEU):
//
//  * 13a-style:   splits terminal/clause punctuation (. , ! ? ; :) off
//                 words but keeps intra-word hyphens joined.
//  * intl-style:  additionally splits on every non-alphanumeric symbol,
//                 so hyphenated compounds become three tokens.
//
// Each can run cased or lowercased, giving Table II's four evaluation
// settings.
#pragma once

#include <string>
#include <vector>

namespace qdnn::data {

enum class TokenizerKind { k13a, kInternational };

std::vector<std::string> tokenize(const std::string& text,
                                  TokenizerKind kind, bool cased);

std::string lowercase(const std::string& s);

}  // namespace qdnn::data
