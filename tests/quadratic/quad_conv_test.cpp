#include "quadratic/quad_conv.h"

#include <gtest/gtest.h>

#include "gradcheck_util.h"
#include "quadratic/quad_dense.h"

namespace qdnn::quadratic {
namespace {

using qdnn::testing::gradcheck_module;
using qdnn::testing::random_tensor;

// A conv layer with a 1×1 kernel on a 1×1 image is exactly a dense layer:
// every conv family must agree with its dense counterpart there.
TEST(ProposedConv, EquivalentToDenseAt1x1) {
  Rng rng_conv(1), rng_dense(1);  // identical init streams
  const index_t c_in = 5, k = 3;
  ProposedQuadConv2d conv(c_in, 2, 1, 1, 0, k, rng_conv);
  ProposedQuadraticDense dense(c_in, 2, k, rng_dense);

  const Tensor x = random_tensor(Shape{3, c_in, 1, 1}, 2);
  const Tensor y_conv = conv.forward(x);
  const Tensor y_dense =
      dense.forward(x.reshaped(Shape{3, c_in}));
  EXPECT_EQ(y_conv.dim(1), y_dense.dim(1));
  for (index_t s = 0; s < 3; ++s)
    for (index_t ch = 0; ch < y_dense.dim(1); ++ch)
      EXPECT_NEAR(y_conv.at(s, ch, 0, 0), y_dense.at(s, ch), 1e-5f)
          << "s=" << s << " ch=" << ch;
}

TEST(ProposedConv, ChannelLayout) {
  Rng rng(3);
  const index_t k = 2;
  ProposedQuadConv2d conv(1, 2, 3, 1, 1, k, rng);
  EXPECT_EQ(conv.out_channels(), 6);  // 2 filters × (k+1)
  const Tensor x = random_tensor(Shape{1, 1, 4, 4}, 4);
  const Tensor y = conv.forward(x);
  // Channel f*(k+1) must equal linear + Σλf² recomputed from the emitted
  // f channels.
  for (index_t f = 0; f < 2; ++f)
    for (index_t pos = 0; pos < 16; ++pos) {
      float quad = 0.0f;
      for (index_t i = 0; i < k; ++i) {
        const float fv = y.data()[(f * (k + 1) + 1 + i) * 16 + pos];
        quad += conv.lambda().value[f * k + i] * fv * fv;
      }
      // Cannot recover linear directly without the weights, but y − quad
      // must equal w·patch + b, which is linear in the input: verify via
      // the zero-Λ trick below instead.  Here just check finiteness.
      EXPECT_TRUE(std::isfinite(y.data()[(f * (k + 1)) * 16 + pos]));
      (void)quad;
    }
}

TEST(ProposedConv, YChannelDecomposition) {
  // With Λ zeroed, the y channel must drop exactly the quadratic part.
  Rng rng(5);
  const index_t k = 3;
  ProposedQuadConv2d conv(2, 1, 3, 1, 1, k, rng);
  const Tensor x = random_tensor(Shape{1, 2, 4, 4}, 6);
  const Tensor y_full = conv.forward(x);
  Tensor lambda_backup = conv.lambda().value;
  conv.lambda().value.zero();
  const Tensor y_lin = conv.forward(x);
  for (index_t pos = 0; pos < 16; ++pos) {
    float quad = 0.0f;
    for (index_t i = 0; i < k; ++i) {
      const float fv = y_full.data()[(1 + i) * 16 + pos];
      quad += lambda_backup[i] * fv * fv;
    }
    EXPECT_NEAR(y_full.data()[pos], y_lin.data()[pos] + quad, 1e-4f);
    // f channels are unaffected by Λ.
    for (index_t i = 0; i < k; ++i)
      EXPECT_FLOAT_EQ(y_full.data()[(1 + i) * 16 + pos],
                      y_lin.data()[(1 + i) * 16 + pos]);
  }
}

TEST(ProposedConv, Gradcheck) {
  Rng rng(7);
  ProposedQuadConv2d conv(2, 2, 3, 1, 1, 2, rng);
  EXPECT_TRUE(gradcheck_module(conv, random_tensor(Shape{2, 2, 4, 4}, 8)));
}

TEST(ProposedConv, GradcheckStride2) {
  Rng rng(9);
  ProposedQuadConv2d conv(2, 1, 3, 2, 1, 3, rng);
  EXPECT_TRUE(gradcheck_module(conv, random_tensor(Shape{1, 2, 6, 6}, 10)));
}

TEST(FactoredConv, EquivalentToDenseAt1x1) {
  for (NeuronKind mode : {NeuronKind::kQuad1, NeuronKind::kQuad2,
                          NeuronKind::kBuKarpatne}) {
    Rng rng_conv(11), rng_dense(11);
    FactoredQuadConv2d conv(4, 3, 1, 1, 0, mode, rng_conv);
    FactoredQuadraticDense dense(4, 3, mode, rng_dense);
    const Tensor x = random_tensor(Shape{2, 4, 1, 1}, 12);
    const Tensor y_conv = conv.forward(x);
    const Tensor y_dense = dense.forward(x.reshaped(Shape{2, 4}));
    for (index_t s = 0; s < 2; ++s)
      for (index_t ch = 0; ch < 3; ++ch)
        EXPECT_NEAR(y_conv.at(s, ch, 0, 0), y_dense.at(s, ch), 1e-5f)
            << "mode " << static_cast<int>(mode);
  }
}

TEST(FactoredConv, GradcheckAllModes) {
  for (NeuronKind mode : {NeuronKind::kQuad1, NeuronKind::kQuad2,
                          NeuronKind::kBuKarpatne}) {
    Rng rng(13);
    FactoredQuadConv2d conv(2, 2, 3, 1, 1, mode, rng);
    EXPECT_TRUE(
        gradcheck_module(conv, random_tensor(Shape{1, 2, 4, 4}, 14)))
        << "mode " << static_cast<int>(mode);
  }
}

TEST(LowRankConv, EquivalentToDenseAt1x1) {
  Rng rng_conv(15), rng_dense(15);
  LowRankQuadConv2d conv(4, 2, 1, 1, 0, 3, rng_conv);
  LowRankQuadraticDense dense(4, 2, 3, rng_dense);
  const Tensor x = random_tensor(Shape{2, 4, 1, 1}, 16);
  const Tensor y_conv = conv.forward(x);
  const Tensor y_dense = dense.forward(x.reshaped(Shape{2, 4}));
  for (index_t s = 0; s < 2; ++s)
    for (index_t ch = 0; ch < 2; ++ch)
      EXPECT_NEAR(y_conv.at(s, ch, 0, 0), y_dense.at(s, ch), 1e-5f);
}

TEST(LowRankConv, Gradcheck) {
  Rng rng(17);
  LowRankQuadConv2d conv(2, 2, 3, 1, 1, 2, rng);
  EXPECT_TRUE(gradcheck_module(conv, random_tensor(Shape{1, 2, 4, 4}, 18)));
}

TEST(GeneralConv, EquivalentToDenseAt1x1) {
  Rng rng_conv(19), rng_dense(19);
  GeneralQuadConv2d conv(3, 2, 1, 1, 0, true, rng_conv);
  GeneralQuadraticDense dense(3, 2, rng_dense, true);
  const Tensor x = random_tensor(Shape{2, 3, 1, 1}, 20);
  const Tensor y_conv = conv.forward(x);
  const Tensor y_dense = dense.forward(x.reshaped(Shape{2, 3}));
  for (index_t s = 0; s < 2; ++s)
    for (index_t ch = 0; ch < 2; ++ch)
      EXPECT_NEAR(y_conv.at(s, ch, 0, 0), y_dense.at(s, ch), 1e-4f);
}

TEST(GeneralConv, Gradcheck) {
  Rng rng(21);
  GeneralQuadConv2d conv(1, 2, 3, 1, 1, true, rng);
  EXPECT_TRUE(gradcheck_module(conv, random_tensor(Shape{1, 1, 4, 4}, 22)));
}

TEST(GeneralConv, GradcheckPure) {
  Rng rng(23);
  GeneralQuadConv2d conv(2, 1, 2, 1, 0, false, rng);
  EXPECT_TRUE(gradcheck_module(conv, random_tensor(Shape{1, 2, 3, 3}, 24)));
}

// ------------------------------ factory -----------------------------------

TEST(ConvFactory, OutChannelRounding) {
  const NeuronSpec p9 = NeuronSpec::proposed(9);
  EXPECT_EQ(conv_out_channels(p9, 16), 20);  // nearest(1.6) = 2 filters
  EXPECT_EQ(conv_out_channels(p9, 20), 20);
  EXPECT_EQ(conv_out_channels(p9, 64), 60);  // nearest(6.4) = 6 filters
  EXPECT_EQ(conv_out_channels(p9, 32), 30);  // nearest(3.2) = 3 filters
  EXPECT_EQ(conv_out_channels(p9, 4), 10);   // at least 1 filter
  EXPECT_EQ(conv_out_channels(NeuronSpec::linear(), 16), 16);
  EXPECT_EQ(conv_out_channels(NeuronSpec::of(NeuronKind::kQuad2), 16), 16);
}

TEST(ConvFactory, BuildsEveryFamilyWithCorrectChannels) {
  for (NeuronKind kind :
       {NeuronKind::kLinear, NeuronKind::kGeneral, NeuronKind::kPure,
        NeuronKind::kBuKarpatne, NeuronKind::kLowRank, NeuronKind::kQuad1,
        NeuronKind::kQuad2, NeuronKind::kKervolution,
        NeuronKind::kProposed}) {
    Rng rng(25);
    const NeuronSpec spec = NeuronSpec::of(kind, 3);
    auto layer = make_conv_neuron(spec, 2, 8, 3, 1, 1, rng, "factory");
    const Tensor y = layer->forward(random_tensor(Shape{1, 2, 5, 5}, 26));
    EXPECT_EQ(y.dim(1), conv_out_channels(spec, 8)) << spec.kind_name();
    EXPECT_EQ(y.dim(2), 5);
  }
}

}  // namespace
}  // namespace qdnn::quadratic
