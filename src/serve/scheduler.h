// BatchScheduler: continuous batching over one bound DecodeSession.
//
// PR 3's DecodeSession serves one fixed batch per prime: every request
// must start together and the batch occupies its KV rings until the
// slowest row finishes.  The scheduler removes that coupling — it owns a
// request queue plus one session bound at full max_batch width, and each
// tick it:
//
//   1. admits queued requests into free batch rows (per-row prime: the
//      request's source is encoded and cross-projected into just its
//      row's caches while the other rows keep decoding mid-flight),
//   2. steps the WHOLE batch once — one gemm-backed pass over all rows,
//      every live row at its own ring position (per-row cache lengths in
//      the attention step kernels),
//   3. samples one token per live row through its request's head
//      (greedy / temperature / top-k, per-request seeded Rng),
//   4. retires rows that emitted eos or exhausted their budget, so the
//      freed slot is refilled at the very next tick.
//
// Throughput therefore tracks occupancy instead of the slowest request
// (bench/serve_bench.cpp measures continuous vs static batching under
// Poisson arrivals).
//
// Contracts:
//   * Equivalence — a greedy request's tokens are bit-identical to a solo
//     DecodeSession::generate / greedy_decode_reference of that request,
//     for ANY admission/retirement interleaving (per-row masked attention
//     is exact; fuzzed in tests/serve/scheduler_test.cpp).
//   * Determinism — stochastic requests draw from their own seeded Rng,
//     so results are reproducible regardless of admission order.
//   * Zero-alloc steady state — all per-row bookkeeping (slots, token
//     buffers, sampling scratch) is preallocated at bind; a tick that
//     neither admits nor retires performs no heap allocation (asserted
//     in tests/runtime/session_test.cpp).  Admission allocates — it runs
//     the encoder — and retirement hands the finished token buffer off.
//
// Synchronous and single-threaded, like the session it drives: callers
// pump step() (or run()) and drain take_results().
#pragma once

#include <deque>
#include <vector>

#include "runtime/decode_session.h"
#include "serve/request.h"

namespace qdnn::serve {

struct BatchSchedulerConfig {
  // Ring geometry and freeze/warm-up policy for the owned session.
  // max_batch is the continuous-batch width; max_steps bounds every
  // request's budget.
  runtime::DecodeSessionConfig session;
  index_t bos = 1;
  index_t eos = 2;
};

class BatchScheduler {
 public:
  // Binds the model (exclusively, like any DecodeSession) and
  // preallocates every slot.  Validates bos/eos against the target
  // vocabulary; the session constructor validates the ring geometry.
  BatchScheduler(models::Transformer& model, BatchSchedulerConfig config);

  // Enqueues a request, validating it at the edge (source length vs
  // max_src, budget vs max_steps, sampling parameters) so a malformed
  // request fails here with a clear message, not steps later inside a
  // kernel.  Returns the request id.  Allocates (queue growth).
  index_t submit(Request request);

  // One tick: admit → batch-step → sample → retire (see file comment).
  // Returns the number of live rows that were stepped (0 = nothing to
  // do; the tick still counts, so arrival traces keyed on ticks work).
  index_t step();

  // Ticks until every submitted request has retired.
  void run();

  bool idle() const { return live_rows_ == 0 && queue_.empty(); }
  // Moves out the results finished since the last call (retirement
  // order).
  std::vector<RequestResult> take_results();

  index_t queued() const { return static_cast<index_t>(queue_.size()); }
  index_t live_rows() const { return live_rows_; }
  index_t ticks() const { return ticks_; }
  index_t total_tokens() const { return total_tokens_; }
  // Mean live rows per stepped tick — the occupancy continuous batching
  // keeps high and static batching lets decay.
  double mean_occupancy() const;
  const runtime::DecodeSession& session() const { return session_; }

 private:
  struct Slot {
    bool live = false;
    index_t id = -1;
    index_t budget = 0;
    SamplingConfig sampling;
    Rng rng{0};
    std::vector<index_t> tokens;  // capacity reserved at construction
    index_t submit_tick = 0;
    index_t admit_tick = 0;
  };
  struct Pending {
    index_t id;
    index_t submit_tick;
    Request request;
  };

  void admit_into(index_t row);
  void retire(index_t row, FinishReason reason);

  BatchSchedulerConfig config_;
  index_t vocab_ = 0;
  runtime::DecodeSession session_;

  std::deque<Pending> queue_;
  std::vector<Slot> slots_;
  std::vector<index_t> feed_;       // next input token per row
  std::vector<index_t> free_rows_;  // stack; lowest row admitted first
  std::vector<RequestResult> completed_;
  Tensor prob_scratch_;                // [vocab], sampling CDF scratch
  std::vector<index_t> idx_scratch_;  // [vocab], top-k selection scratch

  index_t next_id_ = 0;
  index_t ticks_ = 0;
  index_t live_rows_ = 0;
  index_t total_tokens_ = 0;
  index_t stepped_ticks_ = 0;
  index_t occupancy_sum_ = 0;
};

}  // namespace qdnn::serve
