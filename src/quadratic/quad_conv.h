// Convolutional quadratic layers.
//
// A conv filter of family X is one X-neuron with fan-in n = C_in·K² swept
// over the image: every layer here evaluates its quadratic form on the
// im2col patch matrix, so the per-neuron math matches quad_dense exactly
// (property tests assert this equivalence).
//
// ProposedQuadConv2d realises the paper's Fig. 3 deployment: each filter
// emits 1 + k channels (its quadratic output y followed by the k
// intermediate features fᵏ), placed along the channel dimension, so a
// layer that must produce C channels needs only ≈C/(k+1) filters
// (nearest rounding — see proposed_filters below).
#pragma once

#include "nn/im2col.h"
#include "nn/init.h"
#include "nn/module.h"
#include "quadratic/neuron_spec.h"

namespace qdnn::quadratic {

// ---------------------------------------------------------------------------
// Proposed neuron, conv form.  out_channels = filters · (rank+1); channel
// layout per filter f: [y_f, f_1, …, f_k].
// ---------------------------------------------------------------------------
class ProposedQuadConv2d : public nn::Module {
 public:
  // emit_features = false turns off the vectorized output (Sec. III-B):
  // fᵏ is still computed and squared into y, but not emitted as channels —
  // the "sum-only" ablation of bench/ablation_feature_reuse.
  ProposedQuadConv2d(index_t in_channels, index_t filters, index_t kernel,
                     index_t stride, index_t padding, index_t rank,
                     Rng& rng, float lambda_lr_scale = 1e-3f,
                     std::string name = "proposed_conv",
                     bool emit_features = true);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  // v2: im2col patches, linear responses and fᵏ all live in the
  // workspace — the serving path of the paper's Fig. 3 deployment.
  Shape output_shape(const Shape& input_shape) const override;
  bool supports_forward_into() const override { return true; }
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;

  // W and Q are consumed untransposed by the im2col GEMMs (already the
  // packed operand layout), so freeze only drops the training caches.
  void freeze() override;

  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return name_; }

  index_t filters() const { return filters_; }
  index_t rank() const { return rank_; }
  bool emit_features() const { return emit_features_; }
  index_t out_channels() const {
    return filters_ * (emit_features_ ? rank_ + 1 : 1);
  }
  const nn::ConvGeometry& geometry() const { return geometry_; }

  nn::Parameter& w() { return w_; }
  nn::Parameter& q() { return q_; }
  nn::Parameter& lambda() { return lambda_; }
  nn::Parameter& bias() { return b_; }

 private:
  nn::ConvGeometry geometry_;
  index_t filters_, rank_;
  bool emit_features_;
  std::string name_;
  nn::Parameter w_;       // [filters, patch]
  nn::Parameter q_;       // [filters*rank, patch]
  nn::Parameter lambda_;  // [filters, rank]
  nn::Parameter b_;       // [filters]
  Tensor cached_input_;
  Tensor cached_f_;       // [N, filters*rank, OH*OW]
};

// ---------------------------------------------------------------------------
// Rank-1 factored families [19]/[21]/[23], conv form.
// ---------------------------------------------------------------------------
class FactoredQuadConv2d : public nn::Module {
 public:
  FactoredQuadConv2d(index_t in_channels, index_t out_channels,
                     index_t kernel, index_t stride, index_t padding,
                     NeuronKind mode, Rng& rng,
                     std::string name = "factored_conv");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return name_; }

  NeuronKind mode() const { return mode_; }
  index_t out_channels() const { return filters_; }

 private:
  bool has_w3() const { return mode_ != NeuronKind::kBuKarpatne; }
  bool squares_input() const { return mode_ == NeuronKind::kQuad1; }

  nn::ConvGeometry geometry_;
  index_t filters_;
  NeuronKind mode_;
  std::string name_;
  nn::Parameter w1_, w2_, w3_;  // [filters, patch] each
  nn::Parameter c_;             // [filters] output bias
  Tensor cached_input_;
  Tensor cached_a_;  // [N, filters, OH*OW]
  Tensor cached_b_;
};

// ---------------------------------------------------------------------------
// Low-rank family [18], conv form: y = colᵀQ₁Q₂ᵀcol + wᵀcol + b.
// ---------------------------------------------------------------------------
class LowRankQuadConv2d : public nn::Module {
 public:
  LowRankQuadConv2d(index_t in_channels, index_t out_channels,
                    index_t kernel, index_t stride, index_t padding,
                    index_t rank, Rng& rng,
                    std::string name = "lowrank_conv");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return name_; }

  index_t rank() const { return rank_; }

 private:
  nn::ConvGeometry geometry_;
  index_t filters_, rank_;
  std::string name_;
  nn::Parameter q1_, q2_;  // [filters*rank, patch]
  nn::Parameter w_;        // [filters, patch]
  nn::Parameter b_;        // [filters]
  Tensor cached_input_;
  Tensor cached_a_;        // [N, filters*rank, OH*OW]
  Tensor cached_c_;
};

// ---------------------------------------------------------------------------
// General quadratic neuron [17]/[16], conv form.  O(n²) parameters per
// filter — intended for small geometries (first-layer deployments as in
// [17], unit tests, and conversion experiments).
// ---------------------------------------------------------------------------
class GeneralQuadConv2d : public nn::Module {
 public:
  GeneralQuadConv2d(index_t in_channels, index_t out_channels,
                    index_t kernel, index_t stride, index_t padding,
                    bool include_linear, Rng& rng,
                    std::string name = "general_conv");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return name_; }

  nn::Parameter& m() { return m_; }
  nn::Parameter& w() { return w_; }

 private:
  nn::ConvGeometry geometry_;
  index_t filters_;
  bool include_linear_;
  std::string name_;
  nn::Parameter m_;  // [filters, patch, patch]
  nn::Parameter w_;  // [filters, patch]
  nn::Parameter b_;  // [filters]
  Tensor cached_input_;
};

// ---------------------------------------------------------------------------
// Factory used by the model builders.
// ---------------------------------------------------------------------------

// Number of proposed-neuron filters used to approximate `target_channels`
// output channels: nearest(target/(k+1)), at least 1.
index_t proposed_filters(const NeuronSpec& spec, index_t target_channels);

// Actual channel count a conv layer of this family produces when asked
// for `target_channels`: proposed_filters·(k+1) for the proposed neuron
// (nearest rounding keeps widths comparable to the linear baseline);
// identical to target for everyone else.
index_t conv_out_channels(const NeuronSpec& spec, index_t target_channels);

// Builds a conv layer producing conv_out_channels(spec, target_channels)
// channels.
nn::ModulePtr make_conv_neuron(const NeuronSpec& spec, index_t in_channels,
                               index_t target_channels, index_t kernel,
                               index_t stride, index_t padding, Rng& rng,
                               std::string name);

}  // namespace qdnn::quadratic
