#include "serve/scheduler.h"

#include <algorithm>

namespace qdnn::serve {

BatchScheduler::BatchScheduler(models::Transformer& model,
                               BatchSchedulerConfig config)
    : config_(config),
      vocab_(model.config().tgt_vocab),
      session_(model, config.session) {
  QDNN_CHECK(config_.bos >= 0 && config_.bos < vocab_,
             "BatchScheduler: bos " << config_.bos << " outside vocab "
                                    << vocab_);
  QDNN_CHECK(config_.eos >= 0 && config_.eos < vocab_,
             "BatchScheduler: eos " << config_.eos << " outside vocab "
                                    << vocab_);

  const index_t rows = session_.max_batch();
  slots_.resize(static_cast<std::size_t>(rows));
  for (Slot& slot : slots_)
    slot.tokens.reserve(static_cast<std::size_t>(session_.max_steps()));
  feed_.assign(static_cast<std::size_t>(rows), config_.bos);
  // Stack of free rows, highest first, so back() hands out row 0 first.
  free_rows_.reserve(static_cast<std::size_t>(rows));
  for (index_t r = rows - 1; r >= 0; --r) free_rows_.push_back(r);
  prob_scratch_ = Tensor{Shape{vocab_}};
  idx_scratch_.resize(static_cast<std::size_t>(vocab_));
}

index_t BatchScheduler::submit(Request request) {
  QDNN_CHECK(request.src_ids.rank() == 1 ||
                 (request.src_ids.rank() == 2 &&
                  request.src_ids.dim(0) == 1),
             "BatchScheduler: src_ids must be [Ts] or [1, Ts], got "
                 << request.src_ids.shape());
  const index_t ts = request.src_ids.dim(request.src_ids.rank() - 1);
  QDNN_CHECK(ts >= 1 && ts <= session_.max_src(),
             "BatchScheduler: source length " << ts << " outside [1, "
                                              << session_.max_src()
                                              << "] (max_src)");
  QDNN_CHECK(request.src_length >= 0 && request.src_length <= ts,
             "BatchScheduler: src_length " << request.src_length
                                           << " outside [0, " << ts
                                           << "] (0 = all valid)");
  QDNN_CHECK(request.max_new_tokens >= 0 &&
                 request.max_new_tokens <= session_.max_steps(),
             "BatchScheduler: max_new_tokens "
                 << request.max_new_tokens << " outside [0, "
                 << session_.max_steps() << "] (max_steps)");
  validate(request.sampling, vocab_);

  const index_t id = next_id_++;
  queue_.push_back(Pending{id, ticks_, std::move(request)});
  return id;
}

void BatchScheduler::admit_into(index_t row) {
  Pending pending = std::move(queue_.front());
  queue_.pop_front();
  const Request& req = pending.request;

  // Per-row prime: encode this request's source into row `row` only —
  // the rows mid-decode are untouched.
  session_.prime_row(row, req.src_ids, req.src_length);

  Slot& slot = slots_[static_cast<std::size_t>(row)];
  slot.live = true;
  slot.id = pending.id;
  slot.budget = req.max_new_tokens > 0 ? req.max_new_tokens
                                       : session_.max_steps();
  slot.sampling = req.sampling;
  slot.rng.reseed(req.sampling.seed);
  slot.tokens.clear();
  slot.tokens.reserve(static_cast<std::size_t>(slot.budget));
  slot.submit_tick = pending.submit_tick;
  slot.admit_tick = ticks_;
  feed_[static_cast<std::size_t>(row)] = config_.bos;
  ++live_rows_;
}

void BatchScheduler::retire(index_t row, FinishReason reason) {
  Slot& slot = slots_[static_cast<std::size_t>(row)];
  RequestResult result;
  result.id = slot.id;
  result.tokens = std::move(slot.tokens);
  result.reason = reason;
  result.decode_steps = session_.row_steps(row);
  result.submit_tick = slot.submit_tick;
  result.admit_tick = slot.admit_tick;
  result.finish_tick = ticks_;
  completed_.push_back(std::move(result));

  slot.live = false;
  slot.id = -1;
  slot.tokens = std::vector<index_t>();  // moved-from; re-reserved at admit
  free_rows_.push_back(row);
  --live_rows_;
}

index_t BatchScheduler::step() {
  // Admission first, so a row freed on the previous tick never idles: a
  // retirement's slot is serving the next queued request one tick later.
  while (!queue_.empty() && !free_rows_.empty()) {
    const index_t row = free_rows_.back();
    free_rows_.pop_back();
    admit_into(row);
  }

  if (live_rows_ == 0) {
    ++ticks_;  // idle tick: time passes for arrival traces
    return 0;
  }

  // Park free rows at ring position 0 with a bos feed: they ride the
  // batch gemm (output ignored) and their ring can never exhaust.
  for (const index_t row : free_rows_) {
    session_.reset_row(row);
    feed_[static_cast<std::size_t>(row)] = config_.bos;
  }

  const index_t stepped = live_rows_;
  const std::vector<index_t>& greedy = session_.step(feed_);
  const ConstTensorView& logits = session_.logits();
  ++ticks_;
  ++stepped_ticks_;
  occupancy_sum_ += stepped;

  for (index_t row = 0;
       row < static_cast<index_t>(slots_.size()); ++row) {
    Slot& slot = slots_[static_cast<std::size_t>(row)];
    if (!slot.live) continue;
    // Greedy rides the session's built-in argmax (identical first-max
    // tie-breaking); stochastic heads sample from the row's logits with
    // the request's own stream.
    const index_t token =
        slot.sampling.kind == SamplingConfig::Kind::kGreedy
            ? greedy[static_cast<std::size_t>(row)]
            : sample_token(slot.sampling, logits.data() + row * vocab_,
                           vocab_, slot.rng, prob_scratch_.data(),
                           idx_scratch_.data());
    if (token == config_.eos) {
      retire(row, FinishReason::kEos);
      continue;
    }
    slot.tokens.push_back(token);
    ++total_tokens_;
    feed_[static_cast<std::size_t>(row)] = token;
    if (static_cast<index_t>(slot.tokens.size()) >= slot.budget)
      retire(row, FinishReason::kLength);
  }
  return stepped;
}

void BatchScheduler::run() {
  while (!idle()) step();
}

std::vector<RequestResult> BatchScheduler::take_results() {
  std::vector<RequestResult> out = std::move(completed_);
  completed_.clear();
  return out;
}

double BatchScheduler::mean_occupancy() const {
  return stepped_ticks_ == 0
             ? 0.0
             : static_cast<double>(occupancy_sum_) /
                   static_cast<double>(stepped_ticks_);
}

}  // namespace qdnn::serve
