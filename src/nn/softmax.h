// Row-wise softmax: free functions used by attention, plus a Module
// wrapper.  Numerically stabilized by max-subtraction.
#pragma once

#include "nn/module.h"

namespace qdnn::nn {

// In-place softmax over each row of a [rows, cols] buffer.
void softmax_rows(float* data, index_t rows, index_t cols);

// Given y = softmax(x) row-wise and g = dL/dy, writes dL/dx in place into
// g:  dx = y ⊙ (g − (g·y)).
void softmax_backward_rows(const float* y, float* g, index_t rows,
                           index_t cols);

class Softmax : public Module {
 public:
  explicit Softmax(std::string name = "softmax") : name_(std::move(name)) {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  bool supports_forward_into() const override { return true; }
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;
  void freeze() override {
    cached_output_ = Tensor{};
    Module::freeze();
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Tensor cached_output_;
};

}  // namespace qdnn::nn
