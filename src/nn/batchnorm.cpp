#include "nn/batchnorm.h"

#include <cmath>

namespace qdnn::nn {

namespace {

// Eval-mode kernel shared by forward() and forward_into(): a fixed
// per-channel affine map of the running statistics.  xhat/invstd_out are
// optional caches (null on the inference path).
void bn_eval_affine(const float* in, index_t n, index_t channels,
                    index_t plane, const float* running_mean,
                    const float* running_var, float eps, const float* gamma,
                    const float* beta, float* out, float* xhat,
                    float* invstd_out) {
  for (index_t c = 0; c < channels; ++c) {
    const float invstd = 1.0f / std::sqrt(running_var[c] + eps);
    if (invstd_out) invstd_out[c] = invstd;
    const float g = gamma[c], b = beta[c];
    const float mean = running_mean[c];
    for (index_t s = 0; s < n; ++s) {
      const float* p = in + (s * channels + c) * plane;
      float* o = out + (s * channels + c) * plane;
      if (xhat) {
        float* xh = xhat + (s * channels + c) * plane;
        for (index_t j = 0; j < plane; ++j) {
          xh[j] = (p[j] - mean) * invstd;
          o[j] = g * xh[j] + b;
        }
      } else {
        for (index_t j = 0; j < plane; ++j)
          o[j] = g * ((p[j] - mean) * invstd) + b;
      }
    }
  }
}

}  // namespace

BatchNorm2d::BatchNorm2d(index_t channels, float momentum, float eps,
                         std::string name)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      name_(std::move(name)),
      gamma_(name_ + ".gamma", Tensor{Shape{channels}, 1.0f}),
      beta_(name_ + ".beta", Tensor{Shape{channels}}),
      running_mean_{Shape{channels}},
      running_var_{Shape{channels}, 1.0f} {
  QDNN_CHECK(channels > 0, "BatchNorm2d: channels must be positive");
  gamma_.decay = false;
  beta_.decay = false;
}

Tensor BatchNorm2d::forward(const Tensor& input) {
  QDNN_CHECK_EQ(input.rank(), 4, name_ << ": expected [N,C,H,W]");
  QDNN_CHECK_EQ(input.dim(1), channels_, name_ << ": channels");
  const index_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const index_t plane = h * w;
  const index_t count = n * plane;

  Tensor out{input.shape()};
  cached_training_ = training_;
  if (training_) {
    cached_xhat_ = Tensor{input.shape()};
    cached_invstd_ = Tensor{Shape{channels_}};
    cached_count_ = count;
    for (index_t c = 0; c < channels_; ++c) {
      double mean = 0.0;
      for (index_t s = 0; s < n; ++s) {
        const float* p = input.data() + (s * channels_ + c) * plane;
        for (index_t j = 0; j < plane; ++j) mean += p[j];
      }
      mean /= count;
      double var = 0.0;
      for (index_t s = 0; s < n; ++s) {
        const float* p = input.data() + (s * channels_ + c) * plane;
        for (index_t j = 0; j < plane; ++j) {
          const double d = p[j] - mean;
          var += d * d;
        }
      }
      var /= count;
      const float invstd = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      cached_invstd_[c] = invstd;
      running_mean_[c] = (1.0f - momentum_) * running_mean_[c] +
                         momentum_ * static_cast<float>(mean);
      running_var_[c] = (1.0f - momentum_) * running_var_[c] +
                        momentum_ * static_cast<float>(var);
      const float g = gamma_.value[c], b = beta_.value[c];
      const float fmean = static_cast<float>(mean);
      for (index_t s = 0; s < n; ++s) {
        const float* p = input.data() + (s * channels_ + c) * plane;
        float* xh = cached_xhat_.data() + (s * channels_ + c) * plane;
        float* o = out.data() + (s * channels_ + c) * plane;
        for (index_t j = 0; j < plane; ++j) {
          xh[j] = (p[j] - fmean) * invstd;
          o[j] = g * xh[j] + b;
        }
      }
    }
  } else {
    cached_xhat_ = Tensor{input.shape()};
    cached_invstd_ = Tensor{Shape{channels_}};
    cached_count_ = count;
    bn_eval_affine(input.data(), n, channels_, plane, running_mean_.data(),
                   running_var_.data(), eps_, gamma_.value.data(),
                   beta_.value.data(), out.data(), cached_xhat_.data(),
                   cached_invstd_.data());
  }
  return out;
}

void BatchNorm2d::forward_into(const ConstTensorView& input, const TensorView& output,
                               Workspace&) {
  QDNN_CHECK(!training_,
             name_ << ": forward_into is an inference entry point — call "
                      "set_training(false) first");
  QDNN_CHECK_EQ(input.rank(), 4, name_ << ": expected [N,C,H,W]");
  QDNN_CHECK_EQ(input.dim(1), channels_, name_ << ": channels");
  QDNN_CHECK(input.shape() == output.shape(),
             name_ << ": forward_into shape mismatch " << input.shape()
                   << " vs " << output.shape());
  bn_eval_affine(input.data(), input.dim(0), channels_,
                 input.dim(2) * input.dim(3), running_mean_.data(),
                 running_var_.data(), eps_, gamma_.value.data(),
                 beta_.value.data(), output.data(), nullptr, nullptr);
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  QDNN_CHECK(!cached_xhat_.empty(), name_ << ": backward before forward");
  QDNN_CHECK(grad_output.shape() == cached_xhat_.shape(),
             name_ << ": grad shape");
  const index_t n = grad_output.dim(0), h = grad_output.dim(2),
                w = grad_output.dim(3);
  const index_t plane = h * w;
  const double count = static_cast<double>(cached_count_);

  Tensor grad_input{grad_output.shape()};
  if (!cached_training_) {
    // Eval mode: y = γ·x̂(running) + β is element-wise affine in x.
    for (index_t c = 0; c < channels_; ++c) {
      const float scale = gamma_.value[c] * cached_invstd_[c];
      double sum_g = 0.0, sum_gx = 0.0;
      for (index_t s = 0; s < n; ++s) {
        const float* g = grad_output.data() + (s * channels_ + c) * plane;
        const float* xh = cached_xhat_.data() + (s * channels_ + c) * plane;
        float* gi = grad_input.data() + (s * channels_ + c) * plane;
        for (index_t j = 0; j < plane; ++j) {
          sum_g += g[j];
          sum_gx += static_cast<double>(g[j]) * xh[j];
          gi[j] = scale * g[j];
        }
      }
      gamma_.grad[c] += static_cast<float>(sum_gx);
      beta_.grad[c] += static_cast<float>(sum_g);
    }
    return grad_input;
  }
  for (index_t c = 0; c < channels_; ++c) {
    // Accumulate dγ = Σ g·x̂ and dβ = Σ g.
    double sum_g = 0.0, sum_gx = 0.0;
    for (index_t s = 0; s < n; ++s) {
      const float* g = grad_output.data() + (s * channels_ + c) * plane;
      const float* xh = cached_xhat_.data() + (s * channels_ + c) * plane;
      for (index_t j = 0; j < plane; ++j) {
        sum_g += g[j];
        sum_gx += static_cast<double>(g[j]) * xh[j];
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_gx);
    beta_.grad[c] += static_cast<float>(sum_g);

    // dx = (γ·invstd / m) * (m·g − Σg − x̂·Σ(g·x̂))
    const float scale = gamma_.value[c] * cached_invstd_[c];
    const float mean_g = static_cast<float>(sum_g / count);
    const float mean_gx = static_cast<float>(sum_gx / count);
    for (index_t s = 0; s < n; ++s) {
      const float* g = grad_output.data() + (s * channels_ + c) * plane;
      const float* xh = cached_xhat_.data() + (s * channels_ + c) * plane;
      float* gi = grad_input.data() + (s * channels_ + c) * plane;
      for (index_t j = 0; j < plane; ++j)
        gi[j] = scale * (g[j] - mean_g - xh[j] * mean_gx);
    }
  }
  return grad_input;
}

std::vector<Parameter*> BatchNorm2d::parameters() {
  return {&gamma_, &beta_};
}

}  // namespace qdnn::nn
