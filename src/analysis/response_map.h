// Neuron-response extraction — the Fig. 8 experiment.
//
// For a ProposedQuadConv2d layer and one input image, the paper shows the
// linear part's response (wᵀx + b) next to the quadratic part's response
// (y₂ᵏ = (fᵏ)ᵀΛᵏfᵏ) and observes that the quadratic response follows the
// whole object / low-frequency structure while the linear part reacts to
// edges.  split_responses computes both maps; frequency_energy_split
// quantifies the low-vs-high-frequency content so the bench can assert
// the paper's qualitative claim numerically.
#pragma once

#include "quadratic/quad_conv.h"

namespace qdnn::analysis {

struct ResponsePair {
  Tensor linear;     // [filters, OH, OW]  — wᵀx + b
  Tensor quadratic;  // [filters, OH, OW]  — (fᵏ)ᵀ Λᵏ fᵏ
};

// Runs one [C, H, W] image through the layer and splits the responses.
ResponsePair split_responses(quadratic::ProposedQuadConv2d& layer,
                             const Tensor& image);

struct EnergySplit {
  double low = 0.0;   // energy in the low-frequency half (local means)
  double high = 0.0;  // energy in the residual (local differences)
  double low_fraction() const {
    const double total = low + high;
    return total > 0.0 ? low / total : 0.0;
  }
};

// Haar-style decomposition of a [H, W] map: energy of the 2×2 block means
// vs the within-block residuals.
EnergySplit frequency_energy_split(const Tensor& map2d);

}  // namespace qdnn::analysis
