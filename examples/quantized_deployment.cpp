// Example: deploying a trained quadratic model with int8 weights.
//
// The paper's pitch is storage/computation efficiency on constrained
// devices; deployed models on such devices ship integer weights.  This
// example takes the proposed neuron through the full deployment flow:
//
//  1. Train a float model whose hidden layer is the proposed quadratic
//     neuron on a task with second-order class structure.
//  2. Calibrate activation grids on a sample batch and build the true
//     int8 inference modules (int8×int8→int32 GEMM + fp32 epilogue).
//  3. Compare float vs int8 accuracy and weight bytes, and show the
//     combined saving over a LINEAR fp32 baseline of equal width — the
//     paper's parameter reduction and int8's 4x multiply.
//
// Run: ./build/examples/quantized_deployment
#include <cstdio>

#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "quantize/quantized_modules.h"
#include "train/sgd.h"

using namespace qdnn;

namespace {

constexpr index_t kDim = 16;
constexpr index_t kClasses = 4;

// Classes defined by which of two random quadratic forms dominates —
// pure second-order evidence, the proposed neuron's home turf.
void make_data(index_t count, std::uint64_t seed, Tensor* x,
               std::vector<index_t>* y) {
  Rng rng(seed);
  Rng form_rng(42);  // shared across splits
  Tensor v{Shape{4, kDim}};
  form_rng.fill_normal(v, 0.0f, 0.5f);
  *x = Tensor{Shape{count, kDim}};
  y->resize(static_cast<std::size_t>(count));
  for (index_t i = 0; i < count; ++i) {
    float dots[4] = {};
    for (index_t j = 0; j < kDim; ++j) {
      const float val = static_cast<float>(rng.normal());
      x->at(i, j) = val;
      for (index_t r = 0; r < 4; ++r) dots[r] += v.at(r, j) * val;
    }
    index_t best = 0;
    for (index_t r = 1; r < 4; ++r)
      if (dots[r] * dots[r] > dots[best] * dots[best]) best = r;
    (*y)[static_cast<std::size_t>(i)] = best % kClasses;
  }
}

double accuracy(nn::Module& hidden, nn::Module& act, nn::Module& head,
                const Tensor& x, const std::vector<index_t>& y) {
  const Tensor logits = head.forward(act.forward(hidden.forward(x)));
  nn::CrossEntropyLoss loss;
  const nn::LossResult res = loss(logits, y);
  return static_cast<double>(res.correct) / y.size();
}

}  // namespace

int main() {
  Tensor train_x, test_x;
  std::vector<index_t> train_y, test_y;
  make_data(1200, 1, &train_x, &train_y);
  make_data(600, 2, &test_x, &test_y);

  // --- 1. Train the float model ------------------------------------------
  Rng rng(5);
  const index_t units = 6, rank = 4;
  quadratic::ProposedQuadraticDense hidden(kDim, units, rank, rng, 1e-2f,
                                           "hidden");
  nn::ReLU relu;
  nn::Linear head(hidden.out_features(), kClasses, rng, true, "head");

  std::vector<nn::Parameter*> params = hidden.parameters();
  for (nn::Parameter* p : head.parameters()) params.push_back(p);
  train::SgdConfig sgd;
  sgd.lr = 0.05f;
  sgd.weight_decay = 1e-4f;
  train::Sgd opt(params, sgd);
  nn::CrossEntropyLoss loss;
  for (int epoch = 0; epoch < 150; ++epoch) {
    opt.zero_grad();
    const Tensor logits =
        head.forward(relu.forward(hidden.forward(train_x)));
    const nn::LossResult res = loss(logits, train_y);
    hidden.backward(relu.backward(head.backward(res.grad_logits)));
    opt.step();
  }
  hidden.set_training(false);
  head.set_training(false);
  const double float_acc = accuracy(hidden, relu, head, test_x, test_y);

  // --- 2. Calibrate + build the int8 pipeline ----------------------------
  // Calibration batch: the first 128 training samples (inputs for the
  // hidden layer, hidden activations for the head).
  Tensor calib_in{Shape{128, kDim}};
  for (index_t i = 0; i < 128 * kDim; ++i) calib_in[i] = train_x[i];
  quantize::QuantizedProposedDense q_hidden(hidden, calib_in, 8);
  const Tensor calib_mid = relu.forward(hidden.forward(calib_in));
  quantize::QuantizedLinear q_head(head, calib_mid, 8);

  const double int8_acc = accuracy(q_hidden, relu, q_head, test_x, test_y);

  // --- 3. Storage accounting ---------------------------------------------
  const index_t float_bytes =
      (hidden.num_parameters() + head.num_parameters()) * 4;
  const index_t int8_bytes =
      q_hidden.weight_storage_bytes() + q_head.weight_storage_bytes();
  // Linear fp32 baseline with the same feature width (what the paper's
  // per-output analysis compares against).
  const index_t linear_fp32_bytes =
      (kDim * hidden.out_features() + hidden.out_features() +
       hidden.out_features() * kClasses + kClasses) * 4;

  std::printf("float  proposed model: acc %.1f%%, weights %lld B\n",
              100 * float_acc, static_cast<long long>(float_bytes));
  std::printf("int8   proposed model: acc %.1f%%, weights %lld B (%.1fx)\n",
              100 * int8_acc, static_cast<long long>(int8_bytes),
              static_cast<double>(float_bytes) / int8_bytes);
  std::printf("fp32 linear baseline (equal width): weights %lld B\n",
              static_cast<long long>(linear_fp32_bytes));
  std::printf("combined saving int8-proposed vs fp32-linear: %.1fx\n",
              static_cast<double>(linear_fp32_bytes) / int8_bytes);
  std::printf(
      "\nThe int8 path reuses the proposed neuron's single fused GEMM —\n"
      "the squaring happens after dequantization, so the quadratic model\n"
      "quantizes as cleanly as a linear one (accuracy within noise of\n"
      "float) while keeping the paper's per-output parameter advantage.\n");
  return int8_acc > 0.5 ? 0 : 1;
}
