// ResNet model family with pluggable neuron types.
//
// Two constructions from the paper's experiments:
//  * CIFAR ResNets (He et al.): depth = 6n+2 ∈ {20, 32, 44, 56, 110},
//    three stages of widths {w, 2w, 4w}, used for Figs. 4, 5, 7 and 8.
//  * ResNet-18 (ImageNet-style stem, four stages of two basic blocks),
//    used for the Fig. 6 training-stability study.
//
// The builder threads a NeuronSpec through every convolutional layer.  For
// the proposed neuron each conv sizes itself to ⌈target/(k+1)⌉ filters
// (the paper's "fewer neurons for the same feature map", Sec. III-C);
// BatchNorm/downstream layers adapt to the actual channel count.  Shortcut
// 1×1 projections stay linear (they are dimension adapters, not feature
// extractors).  A `quad_layer_limit` restricts the non-linear family to
// the first n conv layers — the "KNN-n" configurations of Fig. 6.
#pragma once

#include <memory>
#include <vector>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/activations.h"
#include "quadratic/quad_conv.h"

namespace qdnn::models {

using quadratic::NeuronSpec;

struct ResNetConfig {
  index_t depth = 20;          // CIFAR family: 6n+2
  index_t num_classes = 10;
  index_t in_channels = 3;
  index_t image_size = 32;     // square inputs
  index_t base_width = 16;     // width of the first stage
  NeuronSpec spec;             // neuron family for conv layers
  // Deploy `spec` only in the first `quad_layer_limit` conv layers
  // (counting the stem), linear elsewhere.  -1 = all layers.
  index_t quad_layer_limit = -1;
  std::uint64_t seed = 1;
};

// One pre-activation-free basic block: conv-bn-relu-conv-bn (+ skip) -relu.
//
// flatten_into exposes the block as primitive serving stages with an
// explicit residual-add stage (the shortcut branch reads the block-input
// boundary), so a flattened ResNet pipeline serves every layer with its
// native forward_into instead of one legacy adapter.
class BasicBlock : public nn::Module {
 public:
  BasicBlock(index_t in_channels, index_t target_width, index_t stride,
             const NeuronSpec& spec1, const NeuronSpec& spec2, Rng& rng,
             std::string name);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override;
  void flatten_into(std::vector<nn::PipelineStage>& stages) override;
  void freeze() override;
  void unfreeze() override;
  std::vector<nn::Parameter*> parameters() override;
  std::vector<nn::NamedBuffer> buffers() override;
  std::string name() const override { return name_; }
  void set_training(bool training) override;

  index_t out_channels() const { return out_channels_; }

 private:
  std::string name_;
  index_t out_channels_;
  index_t stride_ = 1;
  nn::ModulePtr conv1_;
  std::unique_ptr<nn::BatchNorm2d> bn1_;
  nn::ReLU relu1_;
  nn::ModulePtr conv2_;
  std::unique_ptr<nn::BatchNorm2d> bn2_;
  nn::ReLU relu2_;
  // Projection shortcut when stride != 1 or channel mismatch.
  std::unique_ptr<nn::Conv2d> short_conv_;
  std::unique_ptr<nn::BatchNorm2d> short_bn_;
  bool identity_shortcut_ = true;
};

// One stage of the network: `blocks` BasicBlocks at width
// base_width·width_mult, the first with the given stride.
struct StageSpec {
  index_t blocks = 1;
  index_t width_mult = 1;
  index_t stride = 1;
};

class ResNet : public nn::Module {
 public:
  ResNet(const ResNetConfig& config, const std::vector<StageSpec>& stages,
         std::string name);

  // input: [N, C, H, W] images; output: [N, num_classes] logits.
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override;
  // Serving: stem → blocks (each with a residual-add stage) → GAP → fc,
  // every stage native; freeze prepacks all conv/fc weights.
  void flatten_into(std::vector<nn::PipelineStage>& stages) override;
  void freeze() override;
  void unfreeze() override;
  std::vector<nn::Parameter*> parameters() override;
  std::vector<nn::NamedBuffer> buffers() override;
  std::string name() const override { return name_; }
  void set_training(bool training) override;

  const ResNetConfig& config() const { return config_; }
  // Analytic multiply-accumulate count for one image (accumulated from
  // the conv/fc geometry at build time) — the paper's "FLOPs/MMacs" axis.
  index_t macs_per_image() const { return macs_per_image_; }
  // Conv layers in creation order with their layer names — used by the
  // Fig 7/8 analyses.
  const std::vector<nn::Module*>& conv_layers() const { return conv_layers_; }

 private:
  friend class ResNetBuilderAccess;
  ResNetConfig config_;
  std::string name_;
  nn::ModulePtr stem_;
  std::unique_ptr<nn::BatchNorm2d> stem_bn_;
  nn::ReLU stem_relu_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
  nn::GlobalAvgPool2d gap_;
  std::unique_ptr<nn::Linear> fc_;
  index_t macs_per_image_ = 0;
  std::vector<nn::Module*> conv_layers_;
};

// CIFAR-style ResNet (depth = 6n+2).
std::unique_ptr<ResNet> make_cifar_resnet(const ResNetConfig& config);

// ResNet-18-style network for the Fig. 6 stability experiment: four
// stages of two blocks, widths {w, 2w, 4w, 8w}; stem is a 3×3 conv (the
// 7×7 ImageNet stem is scaled down with the input resolution).
std::unique_ptr<ResNet> make_resnet18(const ResNetConfig& config);

}  // namespace qdnn::models
