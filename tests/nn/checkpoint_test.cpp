#include "nn/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "gradcheck_util.h"
#include "models/resnet.h"
#include "nn/linear.h"
#include "nn/sequential.h"

namespace qdnn::nn {
namespace {

using qdnn::testing::random_tensor;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("qdnn_ckpt_" + name))
      .string();
}

TEST(Checkpoint, RoundTripsSequential) {
  Rng rng(1);
  Sequential net;
  net.emplace<Linear>(4, 8, rng, true, "l1");
  net.emplace<Linear>(8, 2, rng, true, "l2");
  const Tensor x = random_tensor(Shape{3, 4}, 2);
  const Tensor y_before = net.forward(x);

  const std::string path = temp_path("seq.bin");
  save_checkpoint(net, path);

  // Scramble weights, then restore.
  for (Parameter* p : net.parameters()) p->value.fill(0.123f);
  EXPECT_GT(max_abs_diff(net.forward(x), y_before), 0.01f);
  load_checkpoint(net, path);
  EXPECT_EQ(max_abs_diff(net.forward(x), y_before), 0.0f);
  std::remove(path.c_str());
}

TEST(Checkpoint, RoundTripsQuadraticResNet) {
  models::ResNetConfig config;
  config.depth = 8;
  config.num_classes = 3;
  config.image_size = 8;
  config.base_width = 4;
  config.spec = models::NeuronSpec::proposed(3);
  auto net = models::make_cifar_resnet(config);
  net->set_training(false);
  const Tensor x = random_tensor(Shape{2, 3, 8, 8}, 3);
  // Warm BN running stats so eval is meaningful, then snapshot.
  net->set_training(true);
  (void)net->forward(x);
  net->set_training(false);
  const Tensor y_before = net->forward(x);

  const std::string path = temp_path("resnet.bin");
  save_checkpoint(*net, path);
  for (Parameter* p : net->parameters()) p->value *= 0.5f;
  load_checkpoint(*net, path);
  EXPECT_EQ(max_abs_diff(net->forward(x), y_before), 0.0f);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsArchitectureMismatch) {
  Rng rng(4);
  Sequential small;
  small.emplace<Linear>(4, 2, rng, true, "l1");
  const std::string path = temp_path("mismatch.bin");
  save_checkpoint(small, path);

  Sequential renamed;
  renamed.emplace<Linear>(4, 2, rng, true, "other_name");
  EXPECT_THROW(load_checkpoint(renamed, path), std::runtime_error);

  Sequential wrong_shape;
  wrong_shape.emplace<Linear>(5, 2, rng, true, "l1");
  EXPECT_THROW(load_checkpoint(wrong_shape, path), std::runtime_error);

  Sequential extra;
  extra.emplace<Linear>(4, 2, rng, true, "l1");
  extra.emplace<Linear>(2, 2, rng, true, "l2");
  EXPECT_THROW(load_checkpoint(extra, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  Rng rng(5);
  Sequential net;
  net.emplace<Linear>(2, 2, rng, true, "l1");
  EXPECT_THROW(load_checkpoint(net, temp_path("nope.bin")),
               std::runtime_error);
}

TEST(Checkpoint, PersistsBatchNormRunningStats) {
  // Restoring into a FRESH model (default running stats) must reproduce
  // the saved model's eval output — this is the BN-buffer regression the
  // quantization bench originally exposed.
  models::ResNetConfig config;
  config.depth = 8;
  config.num_classes = 3;
  config.image_size = 8;
  config.base_width = 4;
  config.seed = 77;
  auto net = models::make_cifar_resnet(config);
  const Tensor x = random_tensor(Shape{4, 3, 8, 8}, 6);
  // Drive the running statistics away from their init.
  net->set_training(true);
  for (int i = 0; i < 5; ++i) (void)net->forward(x);
  net->set_training(false);
  const Tensor y_before = net->forward(x);

  const std::string path = temp_path("bnstats.bin");
  save_checkpoint(*net, path);

  auto fresh = models::make_cifar_resnet(config);  // same seed, fresh stats
  load_checkpoint(*fresh, path);
  fresh->set_training(false);
  EXPECT_EQ(max_abs_diff(fresh->forward(x), y_before), 0.0f);
  std::remove(path.c_str());
}

TEST(Checkpoint, BuffersEnumerateBatchNormStats) {
  models::ResNetConfig config;
  config.depth = 8;
  config.num_classes = 3;
  config.image_size = 8;
  config.base_width = 4;
  auto net = models::make_cifar_resnet(config);
  const auto bufs = net->buffers();
  // Depth-8 CIFAR ResNet: stem BN + 2 BNs per basic block (3 blocks) +
  // projection-shortcut BNs in stages 2 and 3 = 9 BN layers, each
  // contributing running_mean + running_var.
  EXPECT_EQ(bufs.size(), 18u);
  for (const auto& b : bufs) {
    ASSERT_NE(b.tensor, nullptr);
    EXPECT_TRUE(b.name.find("running_") != std::string::npos) << b.name;
  }
}

TEST(CopyState, ClonesParametersAndBuffers) {
  models::ResNetConfig config;
  config.depth = 8;
  config.num_classes = 3;
  config.image_size = 8;
  config.base_width = 4;
  config.seed = 11;
  auto a = models::make_cifar_resnet(config);
  const Tensor x = random_tensor(Shape{3, 3, 8, 8}, 7);
  a->set_training(true);
  for (int i = 0; i < 3; ++i) (void)a->forward(x);
  a->set_training(false);
  const Tensor y_a = a->forward(x);

  config.seed = 12;  // different init — copy_state must overwrite it all
  auto b = models::make_cifar_resnet(config);
  copy_state(*a, *b);
  b->set_training(false);
  EXPECT_EQ(max_abs_diff(b->forward(x), y_a), 0.0f);
}

TEST(CopyState, RejectsDifferentArchitectures) {
  Rng rng(8);
  Sequential a;
  a.emplace<Linear>(4, 2, rng, true, "l1");
  Sequential b;
  b.emplace<Linear>(4, 3, rng, true, "l1");
  EXPECT_THROW(copy_state(a, b), std::runtime_error);
}

}  // namespace
}  // namespace qdnn::nn
