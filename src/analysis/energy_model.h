// First-order inference energy model for deployed networks.
//
// The paper (a DATE publication) motivates quadratic neurons by the
// compute/storage cost of DNNs on constrained devices; this module turns
// the library's exact MAC and parameter counts into energy estimates so
// the neuron families can be compared in deployment units (µJ/inference)
// rather than raw op counts.
//
// Model: E = #MAC · E_mac(precision) + #weight_bytes · E_mem(level).
// Per-op energies default to the widely used 45 nm measurements from
// Horowitz, "Computing's energy problem (and what we can do about it)",
// ISSCC 2014 — the same constants used by the Eyeriss/SqueezeNet line of
// work.  They are parameters, not truths: override EnergyParams for a
// different node.
//
// This is a *first-order* model: it ignores activation traffic, dataflow
// reuse, and control overhead, which affect every neuron family alike.
// Its purpose is relative comparison (ours vs linear vs prior quadratic
// neurons at fp32/int8), where those shared terms cancel to first order.
#pragma once

#include "nn/module.h"

namespace qdnn::analysis {

enum class Precision { kFp32, kInt8 };

struct EnergyParams {
  // Energy per multiply-accumulate, picojoules (Horowitz ISSCC'14, 45 nm:
  // fp32 mult 3.7 + fp32 add 0.9; int8 mult 0.2 + int32 add 0.1).
  double fp32_mac_pj = 4.6;
  double int8_mac_pj = 0.3;
  // Energy per byte fetched for weights.  On-chip SRAM (32 KiB bank read
  // 5 pJ / 8 B ≈ 0.6 pJ/B) vs off-chip DRAM (1.3 nJ / 8 B ≈ 160 pJ/B).
  double sram_pj_per_byte = 0.6;
  double dram_pj_per_byte = 160.0;

  double mac_pj(Precision p) const {
    return p == Precision::kFp32 ? fp32_mac_pj : int8_mac_pj;
  }
  double bytes_per_weight(Precision p) const {
    return p == Precision::kFp32 ? 4.0 : 1.0;
  }
};

struct EnergyEstimate {
  double compute_pj = 0.0;       // #MAC · E_mac
  double weight_sram_pj = 0.0;   // weights streamed from on-chip SRAM
  double weight_dram_pj = 0.0;   // one full weight fetch from DRAM
  // Weights-resident-on-chip total (the steady-state inference cost).
  double on_chip_total_pj() const { return compute_pj + weight_sram_pj; }
  // Cold-start total (weights fetched from DRAM once per inference —
  // the worst case for models too large for on-chip memory).
  double off_chip_total_pj() const { return compute_pj + weight_dram_pj; }
};

// Energy of one inference given exact MAC and parameter counts (the
// library computes both: ResNet::macs_per_image and num_parameters).
EnergyEstimate estimate_inference(index_t macs, index_t parameters,
                                  Precision precision,
                                  const EnergyParams& params = {});

// Convenience: µJ formatting for bench tables.
std::string format_microjoules(double pj, int decimals = 2);

}  // namespace qdnn::analysis
