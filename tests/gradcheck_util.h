// Central-finite-difference gradient checking for Module backward
// implementations.
//
// Strategy: fix a random projection r and define L = Σ r ⊙ forward(x).
// Then dL/dx and dL/dθ from backward(r) must match the central difference
// (L(x+εe) − L(x−εe)) / 2ε.  Float32 forward passes limit achievable
// agreement, so comparisons use a mixed absolute/relative tolerance, and
// large parameter tensors are spot-checked on a deterministic subset.
#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "nn/module.h"

namespace qdnn::testing {

struct GradcheckOptions {
  double eps = 1e-2;
  double rel_tol = 6e-2;
  double abs_tol = 6e-3;
  index_t max_checks_per_tensor = 64;  // subsample big tensors
  std::uint64_t seed = 1234;
  // On mismatch, retry with eps/5 (repeatedly, up to this many times).
  // A perturbation that crosses a ReLU/max kink gives a wrong central
  // difference at large eps but converges to the analytic value as
  // eps → 0; a genuine backward bug does not converge.
  int kink_retries = 2;
};

inline ::testing::AssertionResult check_close(double analytic, double fd,
                                              const GradcheckOptions& opt,
                                              const std::string& what) {
  const double diff = std::fabs(analytic - fd);
  const double scale = std::max(std::fabs(analytic), std::fabs(fd));
  if (diff <= opt.abs_tol || diff <= opt.rel_tol * scale)
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << what << ": analytic=" << analytic << " fd=" << fd
         << " diff=" << diff;
}

// Checks dL/d(input) and dL/d(params).  The module must be stateless
// across calls apart from its caches (set_training(false) first if it has
// stochastic parts).
inline ::testing::AssertionResult gradcheck_module(
    nn::Module& module, const Tensor& input,
    const GradcheckOptions& opt = {}) {
  Rng rng(opt.seed);

  // Projection r over the output.
  Tensor y0 = module.forward(input);
  Tensor r{y0.shape()};
  rng.fill_uniform(r, -1.0f, 1.0f);

  auto loss_at = [&](const Tensor& x) -> double {
    const Tensor y = module.forward(x);
    double acc = 0.0;
    for (index_t i = 0; i < y.numel(); ++i)
      acc += static_cast<double>(y[i]) * r[i];
    return acc;
  };

  // Analytic gradients.
  module.zero_grad();
  (void)module.forward(input);
  const Tensor grad_input = module.backward(r);

  // Checks one coordinate: `slot` is the element being perturbed,
  // `eval_loss` recomputes the projected loss, `analytic` is the value
  // under test.  Retries with shrinking eps to dismiss kink crossings.
  auto check_coordinate = [&](float& slot,
                              const std::function<double()>& eval_loss,
                              double analytic, const std::string& what)
      -> ::testing::AssertionResult {
    double eps = opt.eps;
    ::testing::AssertionResult last = ::testing::AssertionFailure();
    for (int attempt = 0; attempt <= opt.kink_retries; ++attempt) {
      const float saved = slot;
      slot = saved + static_cast<float>(eps);
      const double lp = eval_loss();
      slot = saved - static_cast<float>(eps);
      const double lm = eval_loss();
      slot = saved;
      const double fd = (lp - lm) / (2.0 * eps);
      last = check_close(analytic, fd, opt, what);
      if (last) return last;
      eps /= 5.0;
    }
    return last;
  };

  // Input gradient check (subsampled).
  {
    Tensor x = input;
    const index_t n = x.numel();
    const index_t checks = std::min(n, opt.max_checks_per_tensor);
    for (index_t c = 0; c < checks; ++c) {
      const index_t i = (checks == n) ? c : rng.uniform_int(n);
      auto result =
          check_coordinate(x[i], [&] { return loss_at(x); },
                           grad_input[i], "input[" + std::to_string(i) + "]");
      if (!result) return result;
    }
  }

  // Parameter gradient checks (subsampled per tensor).
  for (nn::Parameter* p : module.parameters()) {
    const index_t n = p->value.numel();
    const index_t checks = std::min(n, opt.max_checks_per_tensor);
    for (index_t c = 0; c < checks; ++c) {
      const index_t i = (checks == n) ? c : rng.uniform_int(n);
      auto result = check_coordinate(
          p->value[i], [&] { return loss_at(input); }, p->grad[i],
          p->name + "[" + std::to_string(i) + "]");
      if (!result) return result;
    }
  }
  return ::testing::AssertionSuccess();
}

// Random input helper.
inline Tensor random_tensor(Shape shape, std::uint64_t seed,
                            float lo = -1.0f, float hi = 1.0f) {
  Rng rng(seed);
  Tensor t{std::move(shape)};
  rng.fill_uniform(t, lo, hi);
  return t;
}

}  // namespace qdnn::testing
