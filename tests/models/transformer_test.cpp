#include "models/transformer/transformer.h"

#include <gtest/gtest.h>

#include "decode_test_util.h"
#include "gradcheck_util.h"

namespace qdnn::models {
namespace {

using qdnn::testing::random_tensor;

TransformerConfig tiny_config(quadratic::NeuronSpec spec =
                                  quadratic::NeuronSpec::linear()) {
  return qdnn::testing::tiny_transformer_config(spec);
}

Tensor ids(std::vector<std::vector<index_t>> rows) {
  const index_t n = static_cast<index_t>(rows.size());
  const index_t t = static_cast<index_t>(rows[0].size());
  Tensor out{Shape{n, t}};
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < t; ++j)
      out.at(i, j) = static_cast<float>(rows[static_cast<std::size_t>(i)]
                                            [static_cast<std::size_t>(j)]);
  return out;
}

TEST(Transformer, ForwardShape) {
  Transformer model(tiny_config());
  const Tensor src = ids({{4, 5, 6, 2}, {7, 8, 2, 0}});
  const Tensor tgt = ids({{1, 9, 10}, {1, 11, 12}});
  const Tensor logits = model.forward_train(src, tgt, {4, 3});
  EXPECT_EQ(logits.shape(), Shape({2 * 3, 24}));
  EXPECT_TRUE(logits.all_finite());
}

TEST(Transformer, QuadraticProjectionsRun) {
  TransformerConfig config = tiny_config(quadratic::NeuronSpec::proposed(3));
  config.proj_dim = 16;  // divisible by rank+1=4 and heads=2
  Transformer model(config);
  const Tensor src = ids({{4, 5, 2}});
  const Tensor tgt = ids({{1, 6}});
  const Tensor logits = model.forward_train(src, tgt, {3});
  EXPECT_EQ(logits.shape(), Shape({2, 24}));
  EXPECT_TRUE(logits.all_finite());
}

// Causal mask: logits at position t must not depend on target tokens
// after t.
TEST(Transformer, CausalMaskBlocksFuture) {
  Transformer model(tiny_config());
  model.set_training(false);
  const Tensor src = ids({{4, 5, 6, 2}});
  const Tensor tgt_a = ids({{1, 7, 8, 9}});
  const Tensor tgt_b = ids({{1, 7, 8, 15}});  // differs only at position 3
  const Tensor la = model.forward_train(src, tgt_a, {4});
  const Tensor lb = model.forward_train(src, tgt_b, {4});
  // Positions 0..2 identical; position 3 may differ.
  for (index_t t = 0; t < 3; ++t)
    for (index_t v = 0; v < 24; ++v)
      EXPECT_NEAR(la.at(t, v), lb.at(t, v), 1e-5f) << "t=" << t;
}

// Padding mask: changing a source token beyond the declared length must
// not change the output.
TEST(Transformer, PaddingMaskIgnoresPadPositions) {
  Transformer model(tiny_config());
  model.set_training(false);
  const Tensor src_a = ids({{4, 5, 0, 0}});
  const Tensor src_b = ids({{4, 5, 9, 13}});  // garbage in padded slots
  const Tensor tgt = ids({{1, 7}});
  const Tensor la = model.forward_train(src_a, tgt, {2});
  const Tensor lb = model.forward_train(src_b, tgt, {2});
  EXPECT_LT(max_abs_diff(la, lb), 1e-5f);
}

TEST(Transformer, BackwardProducesFiniteGrads) {
  Transformer model(tiny_config());
  const Tensor src = ids({{4, 5, 6, 2}});
  const Tensor tgt = ids({{1, 7, 8}});
  const Tensor logits = model.forward_train(src, tgt, {4});
  model.backward(random_tensor(logits.shape(), 1, -0.1f, 0.1f));
  for (nn::Parameter* p : model.parameters())
    EXPECT_TRUE(p->grad.all_finite()) << p->name;
}

TEST(Transformer, GradcheckSelectedParameters) {
  // Finite-difference spot check through the full encoder–decoder: uses
  // the projection-loss trick on logits.
  Transformer model(tiny_config());
  model.set_training(false);
  const Tensor src = ids({{4, 5, 2}});
  const Tensor tgt = ids({{1, 6}});
  const std::vector<index_t> lens{3};

  Rng rng(2);
  Tensor logits = model.forward_train(src, tgt, lens);
  Tensor r{logits.shape()};
  rng.fill_uniform(r, -1.0f, 1.0f);
  auto loss = [&] {
    const Tensor y = model.forward_train(src, tgt, lens);
    double acc = 0.0;
    for (index_t i = 0; i < y.numel(); ++i)
      acc += static_cast<double>(y[i]) * r[i];
    return acc;
  };
  for (nn::Parameter* p : model.parameters()) p->zero_grad();
  (void)model.forward_train(src, tgt, lens);
  model.backward(r);

  // Check a few entries of several parameter tensors.
  int checked = 0;
  for (nn::Parameter* p : model.parameters()) {
    if (p->numel() < 4) continue;
    for (index_t trial = 0; trial < 3; ++trial) {
      const index_t i = rng.uniform_int(p->numel());
      const float saved = p->value[i];
      const double eps = 1e-2;
      p->value[i] = saved + static_cast<float>(eps);
      const double lp = loss();
      p->value[i] = saved - static_cast<float>(eps);
      const double lm = loss();
      p->value[i] = saved;
      const double fd = (lp - lm) / (2 * eps);
      const double analytic = p->grad[i];
      const double diff = std::fabs(analytic - fd);
      EXPECT_LE(diff,
                0.02 + 0.08 * std::max(std::fabs(analytic), std::fabs(fd)))
          << p->name << "[" << i << "] analytic=" << analytic
          << " fd=" << fd;
      ++checked;
    }
    if (checked > 60) break;
  }
  EXPECT_GT(checked, 20);
}

TEST(Transformer, GreedyDecodeShapeAndDeterminism) {
  Transformer model(tiny_config());
  const Tensor src = ids({{4, 5, 6, 2}, {7, 8, 2, 0}});
  const auto out1 = model.greedy_decode(src, {4, 3}, 1, 2, 8);
  const auto out2 = model.greedy_decode(src, {4, 3}, 1, 2, 8);
  ASSERT_EQ(out1.size(), 2u);
  EXPECT_EQ(out1[0], out2[0]);
  EXPECT_EQ(out1[1], out2[1]);
  for (const auto& seq : out1) EXPECT_LE(seq.size(), 8u);
}

TEST(Transformer, ParameterCountDropsWithReducedProjDim) {
  // The Table II mechanism: the quadratic configuration narrows proj_dim,
  // cutting MHA parameters by >20% while keeping d_model.
  TransformerConfig base = tiny_config();
  Transformer baseline(base);
  TransformerConfig quad = tiny_config(quadratic::NeuronSpec::proposed(3));
  quad.proj_dim = 8;  // reduced width; divisible by 2 heads and rank+1=4
  Transformer quadratic_model(quad);
  EXPECT_LT(quadratic_model.num_parameters(), baseline.num_parameters());
}

TEST(Transformer, RejectsIndivisibleProjDim) {
  TransformerConfig config = tiny_config();
  config.proj_dim = 15;  // not divisible by 2 heads
  EXPECT_THROW(Transformer{config}, std::runtime_error);
}

}  // namespace
}  // namespace qdnn::models
