// Session-vs-training-path equivalence for the two models the paper
// benchmarks, served as flattened native stage pipelines:
//
//  * ResNet — stem, per-block stages with explicit residual-adds, GAP,
//    fc; final logits must be bit-identical to Module::forward.
//  * Transformer encoder — embed, scale+positional, and per-layer
//    attention / residual-add / LayerNorm / FFN stages; final hidden
//    states must be bit-identical to Transformer::encode.
//
// Per-stage output shapes are validated against the pipeline plan so a
// flatten_into regression (wrong boundary wiring) fails loudly here.
#include <gtest/gtest.h>

#include "models/resnet.h"
#include "models/transformer/transformer.h"
#include "runtime/inference_session.h"

namespace qdnn::models {
namespace {

using runtime::InferenceSession;
using runtime::SessionConfig;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t{std::move(shape)};
  rng.fill_uniform(t, -1.0f, 1.0f);
  return t;
}

Tensor random_ids(index_t n, index_t t, index_t vocab, std::uint64_t seed) {
  Rng rng(seed);
  Tensor ids{Shape{n, t}};
  for (index_t i = 0; i < ids.numel(); ++i)
    ids[i] = static_cast<float>(rng.uniform_int(vocab));
  return ids;
}

// ---------------------------------------------------------------------------
// ResNet
// ---------------------------------------------------------------------------

TEST(ServingPipeline, ResNetStagesAndLogitsMatchTrainingPath) {
  for (bool quadratic : {false, true}) {
    models::ResNetConfig rc;
    rc.depth = 8;
    rc.num_classes = 5;
    rc.image_size = 8;
    rc.base_width = 4;
    rc.spec = quadratic ? NeuronSpec::proposed(3) : NeuronSpec::linear();
    rc.seed = 21;
    auto net = make_cifar_resnet(rc);
    net->set_training(false);
    const Tensor x = random_tensor(Shape{3, 3, 8, 8}, 22);
    const Tensor ref = net->forward(x);

    // The flattened plan mirrors the architecture: 3 stem stages, 3
    // blocks of (5 main + shortcut? + add + relu), GAP, fc.
    SessionConfig config;
    config.sample_shape = Shape{3, 8, 8};
    config.max_batch = 4;
    InferenceSession session(std::move(net), config);
    EXPECT_TRUE(session.fully_native());
    EXPECT_GT(session.num_stages(), 10);

    // Per-stage shapes: every boundary keeps the batch dimension, and
    // residual-add stages preserve their operand shape.
    const auto& plan = session.pipeline();
    index_t adds = 0;
    for (index_t i = 0; i < session.num_stages(); ++i) {
      const Shape s = session.stage_output_shape(i, 3);
      EXPECT_EQ(s[0], 3) << "stage " << i;
      if (plan[static_cast<std::size_t>(i)].is_add()) {
        ++adds;
        const index_t in =
            plan[static_cast<std::size_t>(i)].input;
        EXPECT_EQ(s, session.stage_output_shape(in, 3)) << "stage " << i;
      }
    }
    EXPECT_EQ(adds, 3);  // one residual-add per basic block (depth 8 = 3)
    EXPECT_EQ(session.stage_output_shape(session.num_stages() - 1, 3),
              Shape({3, 5}));

    const ConstTensorView& out = session.run(x);
    ASSERT_EQ(out.shape(), ref.shape());
    EXPECT_EQ(view_max_abs_diff(out, ConstTensorView(ref)), 0.0f)
        << (quadratic ? "proposed" : "linear");
  }
}

TEST(ServingPipeline, ResNetProjectionShortcutStagesMatch) {
  // depth 14 with width multipliers introduces strided blocks whose
  // projection shortcut becomes its own conv+bn stage pair reading the
  // block-input boundary.
  models::ResNetConfig rc;
  rc.depth = 14;
  rc.num_classes = 3;
  rc.image_size = 8;
  rc.base_width = 4;
  rc.spec = NeuronSpec::proposed(3);
  rc.seed = 23;
  auto net = make_cifar_resnet(rc);
  net->set_training(false);
  const Tensor x = random_tensor(Shape{2, 3, 8, 8}, 24);
  const Tensor ref = net->forward(x);

  SessionConfig config;
  config.sample_shape = Shape{3, 8, 8};
  config.max_batch = 2;
  InferenceSession session(std::move(net), config);
  EXPECT_TRUE(session.fully_native());
  const ConstTensorView& out = session.run(x);
  ASSERT_EQ(out.shape(), ref.shape());
  EXPECT_EQ(view_max_abs_diff(out, ConstTensorView(ref)), 0.0f);
}

// ---------------------------------------------------------------------------
// Transformer encoder
// ---------------------------------------------------------------------------

TransformerConfig small_config(const quadratic::NeuronSpec& spec) {
  TransformerConfig config;
  config.src_vocab = 31;
  config.tgt_vocab = 29;
  config.d_model = 16;
  config.n_heads = 2;
  config.n_layers = 2;
  config.d_ff = 24;
  config.proj_dim =
      spec.kind == quadratic::NeuronKind::kProposed ? 8 : 16;
  config.max_len = 12;
  config.dropout = 0.1f;  // exercised off through eval mode
  config.spec = spec;
  config.seed = 5;
  return config;
}

void expect_encoder_pipeline_matches(const quadratic::NeuronSpec& spec,
                                     std::uint64_t seed) {
  Transformer model(small_config(spec));
  model.set_training(false);
  const index_t n = 3, t = 7;
  const Tensor ids = random_ids(n, t, model.config().src_vocab, seed);
  const Tensor ref = model.encode(ids, {}).reshaped(
      Shape{n, t, model.config().d_model});

  SessionConfig config;
  config.sample_shape = Shape{t};
  config.max_batch = 4;
  InferenceSession session(
      std::make_unique<TransformerEncoder>(model), config);
  EXPECT_TRUE(session.fully_native());
  // embed + scale/pos + per layer: attn, add, ln1, fc1, relu, fc2, add,
  // ln2 → 2 + 8·n_layers stages.
  EXPECT_EQ(session.num_stages(), 2 + 8 * model.config().n_layers);

  // Every boundary is [n, T, width] with width = d_model, except the FFN
  // hidden boundaries (fc1 out and its ReLU) at d_ff.
  for (index_t i = 0; i < session.num_stages(); ++i) {
    const Shape s = session.stage_output_shape(i, n);
    ASSERT_EQ(s.rank(), 3) << "stage " << i;
    EXPECT_EQ(s[0], n) << "stage " << i;
    EXPECT_EQ(s[1], t) << "stage " << i;
    EXPECT_TRUE(s[2] == model.config().d_model ||
                s[2] == model.config().d_ff)
        << "stage " << i << " width " << s[2];
  }
  EXPECT_EQ(session.stage_output_shape(session.num_stages() - 1, n),
            Shape({n, t, model.config().d_model}));

  const ConstTensorView& out = session.run(ids);
  ASSERT_EQ(out.shape(), ref.shape());
  EXPECT_EQ(view_max_abs_diff(out, ConstTensorView(ref)), 0.0f);

  // Varying batch sizes re-bind and stay bit-identical per row.
  const Tensor ids_small = random_ids(1, t, model.config().src_vocab,
                                      seed + 1);
  const Tensor ref_small = model.encode(ids_small, {}).reshaped(
      Shape{1, t, model.config().d_model});
  EXPECT_EQ(view_max_abs_diff(session.run(ids_small),
                              ConstTensorView(ref_small)),
            0.0f);
}

TEST(ServingPipeline, TransformerEncoderLinearProjectionsMatch) {
  expect_encoder_pipeline_matches(NeuronSpec::linear(), 31);
}

TEST(ServingPipeline, TransformerEncoderProposedProjectionsMatch) {
  expect_encoder_pipeline_matches(NeuronSpec::proposed(3), 37);
}

TEST(ServingPipeline, MaskedNativeEncoderMatchesTrainingPath) {
  // The serving prefill path (TransformerEncoder::encode_into — the
  // allocation-free masked pipeline DecodeSession::prime_compute runs)
  // must be bit-identical to Transformer::encode on the same RAGGED
  // batch, for both projection families: key-padding masks give padded
  // tails exact-zero softmax weights, so raggedness never leaks across
  // samples.
  for (const bool quadratic : {false, true}) {
    Transformer model(small_config(quadratic ? NeuronSpec::proposed(3)
                                             : NeuronSpec::linear()));
    model.set_training(false);
    const index_t n = 3, t = 7, d = model.config().d_model;
    const Tensor ids = random_ids(n, t, model.config().src_vocab,
                                  quadratic ? 53 : 47);
    const std::vector<index_t> lengths{t, 3, 1};  // full, ragged, minimal
    const Tensor ref =
        model.encode(ids, lengths).reshaped(Shape{n, t, d});

    TransformerEncoder encoder(model);
    ASSERT_TRUE(encoder.supports_forward_into());
    Workspace ws;
    Tensor out{Shape{n, t, d}};
    encoder.encode_into(ConstTensorView(ids), TensorView(out),
                        lengths.data(), ws);
    EXPECT_EQ(view_max_abs_diff(ConstTensorView(out), ConstTensorView(ref)),
              0.0f)
        << (quadratic ? "proposed" : "linear");

    // Warm-then-steady contract: after one pass at this shape (and a
    // reset + consolidate), a second pass grows the arena by nothing and
    // reproduces the same bytes.
    ws.reset();
    ws.consolidate();
    const index_t warm_capacity = ws.capacity();
    Tensor again{Shape{n, t, d}};
    encoder.encode_into(ConstTensorView(ids), TensorView(again),
                        lengths.data(), ws);
    EXPECT_EQ(ws.capacity(), warm_capacity)
        << "steady-state encode_into allocated";
    EXPECT_EQ(view_max_abs_diff(ConstTensorView(again), ConstTensorView(ref)),
              0.0f);

    // A null lengths pointer means every position is valid — the dense
    // case must match the training path with no lengths too.
    const Tensor dense_ref = model.encode(ids, {}).reshaped(Shape{n, t, d});
    ws.reset();
    Tensor dense{Shape{n, t, d}};
    encoder.encode_into(ConstTensorView(ids), TensorView(dense), nullptr,
                        ws);
    EXPECT_EQ(
        view_max_abs_diff(ConstTensorView(dense), ConstTensorView(dense_ref)),
        0.0f);
  }
}

TEST(ServingPipeline, TransformerEncoderShardsBitIdentically) {
  Transformer model(small_config(NeuronSpec::linear()));
  model.set_training(false);
  const index_t t = 6;
  const Tensor ids = random_ids(4, t, model.config().src_vocab, 41);

  SessionConfig config;
  config.sample_shape = Shape{t};
  config.max_batch = 4;
  InferenceSession single(std::make_unique<TransformerEncoder>(model),
                          config);
  config.num_threads = 2;
  InferenceSession sharded(std::make_unique<TransformerEncoder>(model),
                           config);
  const Tensor ref = single.run(ids).to_tensor();
  EXPECT_EQ(view_max_abs_diff(sharded.run(ids), ConstTensorView(ref)),
            0.0f);
}

}  // namespace
}  // namespace qdnn::models
