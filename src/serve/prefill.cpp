#include "serve/prefill.h"

#include "linalg/gemm_backend.h"

namespace qdnn::serve {

PrefillPool::PrefillPool(runtime::DecodeSession& session, index_t workers,
                         index_t slots, obs::TraceRing* trace)
    : session_(&session), trace_(trace) {
  QDNN_CHECK(workers >= 1,
             "PrefillPool: workers must be >= 1, got " << workers);
  QDNN_CHECK(slots >= 1, "PrefillPool: slots must be >= 1, got " << slots);
  staging_.resize(static_cast<std::size_t>(slots));
  for (runtime::PrefillStaging& s : staging_) session_->init_staging(s);
  free_slots_.reserve(static_cast<std::size_t>(slots));
  for (index_t s = slots - 1; s >= 0; --s) free_slots_.push_back(s);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (index_t w = 0; w < workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

PrefillPool::~PrefillPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void PrefillPool::worker_loop() {
  // Prefill workers are the parallelism at this layer — keep the
  // row-sharded gemm pool out of their inner gemms (oversubscription
  // plus the async-vs-sync bit-identity contract).
  linalg::GemmSerialScope serial_gemm;
  for (;;) {
    PrefillJob job;
    index_t slot = -1;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] {
        return stop_ || (!queue_.empty() && !free_slots_.empty());
      });
      if (stop_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      slot = free_slots_.back();
      free_slots_.pop_back();
    }
    Finished fin;
    fin.slot = slot;
    // The sampling decision was made at submit: a sampled job stamps its
    // whole prefill window and ring events, the rest skip every record
    // site.  Timestamps and ring writes are all-or-nothing per job.
    // Recording is wait-free and allocation-free.
    const bool tracing = job.sampled;
    if (tracing) {
      job.prefill_start_ns = obs::now_ns();
      if (trace_ != nullptr)
        trace_->record_always(job.id, obs::TraceEvent::kPrefillStart);
    }
    try {
      // Prefix-cache probe first: a hit acquires the shared cross-K/V
      // pages into this worker's slot (from_cache) and skips the whole
      // encoder + projection.  The cache and page pool serialize the
      // lookup internally, so any number of workers probe concurrently
      // with each other and with the serving thread's publish/evict.
      runtime::PrefillStaging& st =
          staging_[static_cast<std::size_t>(slot)];
      if (!session_->prefix_lookup_into(
              job.request.src_ids, job.request.src_length, st)) {
        // The expensive half, off the serving thread: encoder pass (pool
        // workers serialize it inside prime_compute) + cross-K/V
        // projections into this worker's claimed staging slot.
        session_->prime_compute(job.request.src_ids,
                                job.request.src_length, st);
      }
    } catch (...) {
      fin.error = std::current_exception();
    }
    if (tracing) {
      job.prefill_end_ns = obs::now_ns();
      if (trace_ != nullptr)
        trace_->record_always(job.id, obs::TraceEvent::kPrefillEnd);
    }
    fin.job = std::move(job);
    {
      std::lock_guard<std::mutex> lk(mu_);
      finished_.push_back(std::move(fin));
    }
    done_cv_.notify_all();
  }
}

void PrefillPool::submit(PrefillJob job) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(job));
    ++pending_;
  }
  work_cv_.notify_one();
}

bool PrefillPool::try_take(Finished& out) {
  std::lock_guard<std::mutex> lk(mu_);
  if (finished_.empty()) return false;
  out = std::move(finished_.front());
  finished_.pop_front();
  --pending_;
  return true;
}

void PrefillPool::wait_ready() const {
  std::unique_lock<std::mutex> lk(mu_);
  // pending_ == 0 guards a caller that races a take on another thread;
  // the single-consumer scheduler only waits while something is queued.
  done_cv_.wait(lk, [&] { return !finished_.empty() || pending_ == 0; });
}

const runtime::PrefillStaging& PrefillPool::staging(index_t slot) const {
  QDNN_CHECK(slot >= 0 && slot < slots(),
             "PrefillPool: slot " << slot << " outside [0, " << slots()
                                  << ")");
  return staging_[static_cast<std::size_t>(slot)];
}

runtime::PrefillStaging& PrefillPool::staging_mut(index_t slot) {
  QDNN_CHECK(slot >= 0 && slot < slots(),
             "PrefillPool: slot " << slot << " outside [0, " << slots()
                                  << ")");
  return staging_[static_cast<std::size_t>(slot)];
}

void PrefillPool::release(index_t slot) {
  QDNN_CHECK(slot >= 0 && slot < slots(),
             "PrefillPool: slot " << slot << " outside [0, " << slots()
                                  << ")");
  {
    std::lock_guard<std::mutex> lk(mu_);
    free_slots_.push_back(slot);
  }
  work_cv_.notify_one();
}

index_t PrefillPool::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_;
}

index_t PrefillPool::ready() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<index_t>(finished_.size());
}

}  // namespace qdnn::serve
