#include "linalg/packed_weights.h"

namespace qdnn::linalg {

void PackedWeights::pack(bool trans, index_t k, index_t n, const float* src,
                         index_t ld) {
  QDNN_CHECK(k >= 0 && n >= 0, "PackedWeights::pack: negative dims");
  QDNN_CHECK(ld >= (trans ? k : n),
             "PackedWeights::pack: leading dimension " << ld
                                                       << " too small");
  k_ = k;
  n_ = n;
  data_.resize(static_cast<std::size_t>(k * n));
  if (trans) {
    // Same element order as gemm()'s per-call trans_b pack, so prepacked
    // results are bit-identical to the packing path they replace.
    for (index_t j = 0; j < n; ++j)
      for (index_t p = 0; p < k; ++p)
        data_[static_cast<std::size_t>(p * n + j)] = src[j * ld + p];
  } else {
    for (index_t p = 0; p < k; ++p)
      for (index_t j = 0; j < n; ++j)
        data_[static_cast<std::size_t>(p * n + j)] = src[p * ld + j];
  }
  packed_ = true;
}

void PackedWeights::clear() {
  k_ = 0;
  n_ = 0;
  packed_ = false;
  data_.clear();
  data_.shrink_to_fit();
}

}  // namespace qdnn::linalg
