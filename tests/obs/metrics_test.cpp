// Observability subsystem unit tests: registry get-or-create semantics,
// exporter formats, histogram bucketing, exact totals under concurrent
// hammering (the wait-free recording contract, TSan-audited in CI), the
// trace ring's seqlock snapshot under wrap and concurrency, and the
// disabled-path overhead bound.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace qdnn::obs {
namespace {

struct TraceFlagGuard {
  bool saved = trace_enabled();
  ~TraceFlagGuard() { set_trace_enabled(saved); }
};

TEST(MetricsRegistry, GetOrCreateReturnsStableHandles) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("serve.tokens");
  Counter& c2 = reg.counter("serve.tokens");
  EXPECT_EQ(&c1, &c2);
  c1.inc();
  c2.add(4);
  EXPECT_EQ(c1.value(), 5);

  Gauge& g = reg.gauge("serve.live_rows");
  g.set(3.5);
  EXPECT_EQ(&g, &reg.gauge("serve.live_rows"));
  EXPECT_DOUBLE_EQ(reg.gauge("serve.live_rows").value(), 3.5);

  Histogram& h = reg.histogram("serve.wait", {1, 2, 4});
  EXPECT_EQ(&h, &reg.histogram("serve.wait", {1, 2, 4}));
}

TEST(MetricsRegistry, RejectsKindCollisionsAndBadNames) {
  MetricsRegistry reg;
  reg.counter("a.b");
  EXPECT_THROW(reg.gauge("a.b"), std::runtime_error);
  EXPECT_THROW(reg.histogram("a.b", {1}), std::runtime_error);
  reg.histogram("a.h", {1, 2});
  EXPECT_THROW(reg.histogram("a.h", {1, 3}), std::runtime_error);
  EXPECT_THROW(reg.histogram("a.empty", {}), std::runtime_error);
  EXPECT_THROW(reg.counter(""), std::runtime_error);
  EXPECT_THROW(reg.counter(".x"), std::runtime_error);
  EXPECT_THROW(reg.counter("x."), std::runtime_error);
  EXPECT_THROW(reg.counter("x..y"), std::runtime_error);
  EXPECT_THROW(reg.counter("1x"), std::runtime_error);
  EXPECT_THROW(reg.counter("x-y"), std::runtime_error);
  EXPECT_NO_THROW(reg.counter("_ok.x_1"));
}

TEST(Histogram, BucketsFollowInclusiveUpperBounds) {
  Histogram h({1, 2, 4});
  EXPECT_THROW(Histogram({2, 2}), std::runtime_error);
  EXPECT_THROW(Histogram({3, 1}), std::runtime_error);
  for (long long v : {0, 1, 2, 3, 4, 5, 100}) h.observe(v);
  EXPECT_EQ(h.bucket_count(0), 2);  // 0, 1
  EXPECT_EQ(h.bucket_count(1), 1);  // 2
  EXPECT_EQ(h.bucket_count(2), 2);  // 3, 4
  EXPECT_EQ(h.bucket_count(3), 2);  // 5, 100 → +Inf
  EXPECT_EQ(h.count(), 7);
  EXPECT_EQ(h.sum(), 0 + 1 + 2 + 3 + 4 + 5 + 100);
}

TEST(MetricsRegistry, SnapshotAndExporters) {
  MetricsRegistry reg;
  reg.counter("s.tokens").add(42);
  reg.gauge("s.depth").set(2.0);
  Histogram& h = reg.histogram("s.wait", {1, 4});
  h.observe(1);
  h.observe(3);
  h.observe(9);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "s.tokens");
  EXPECT_EQ(snap.counters[0].value, 42);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 2.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].buckets,
            (std::vector<long long>{1, 1, 1}));
  EXPECT_EQ(snap.histograms[0].sum, 13);
  EXPECT_EQ(snap.histograms[0].count, 3);

  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("# TYPE s_tokens counter"), std::string::npos);
  EXPECT_NE(prom.find("s_tokens 42"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE s_depth gauge"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE s_wait histogram"), std::string::npos);
  // Cumulative buckets: le="1" → 1, le="4" → 2, +Inf → 3.
  EXPECT_NE(prom.find("s_wait_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("s_wait_bucket{le=\"4\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("s_wait_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("s_wait_sum 13"), std::string::npos);
  EXPECT_NE(prom.find("s_wait_count 3"), std::string::npos);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"s.tokens\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 13"), std::string::npos);
}

TEST(MetricsRegistry, ConcurrentRecordingIsExact) {
  // 4 threads × 50k increments each, with concurrent snapshots — totals
  // must be exact once the writers join (no lost updates).
  MetricsRegistry reg;
  Counter& c = reg.counter("hammer.count");
  Histogram& h = reg.histogram("hammer.hist", {10, 100, 1000});
  constexpr int kThreads = 4;
  constexpr long long kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (long long i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe((i + t) % 2000);
      }
    });
  }
  // Concurrent read-side: snapshots must be safe (values torn in time but
  // never corrupt) while writers run.
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snap = reg.snapshot();
    for (const auto& cv : snap.counters) EXPECT_GE(cv.value, 0);
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  long long buckets = 0;
  for (std::size_t i = 0; i < 4; ++i) buckets += h.bucket_count(i);
  EXPECT_EQ(buckets, kThreads * kPerThread);
}

// -------------------------------------------------------------------
// TraceRing.
// -------------------------------------------------------------------

TEST(TraceRing, RecordsInOrderAndNamesEvents) {
  TraceFlagGuard guard;
  set_trace_enabled(true);
  TraceRing ring(16);
  EXPECT_THROW(TraceRing(0), std::runtime_error);
  EXPECT_THROW(TraceRing(-3), std::runtime_error);
  ring.record(7, TraceEvent::kSubmit, 1);
  ring.record(7, TraceEvent::kCommit, 2);
  ring.record(7, TraceEvent::kRetire);
  const auto records = ring.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].event, TraceEvent::kSubmit);
  EXPECT_EQ(records[0].arg, 1);
  EXPECT_EQ(records[1].event, TraceEvent::kCommit);
  EXPECT_EQ(records[2].event, TraceEvent::kRetire);
  EXPECT_LE(records[0].t_ns, records[1].t_ns);
  EXPECT_LE(records[1].t_ns, records[2].t_ns);
  for (const TraceRecord& r : records) EXPECT_EQ(r.id, 7);
  EXPECT_STREQ(trace_event_name(TraceEvent::kSubmit), "submit");
  EXPECT_STREQ(trace_event_name(TraceEvent::kFirstToken), "first_token");
  EXPECT_STREQ(trace_event_name(TraceEvent::kShed), "shed");
}

TEST(TraceRing, DisabledRecordIsANoOp) {
  TraceFlagGuard guard;
  set_trace_enabled(false);
  TraceRing ring(8);
  for (int i = 0; i < 100; ++i) ring.record(i, TraceEvent::kStep);
  EXPECT_EQ(ring.recorded(), 0);
  EXPECT_TRUE(ring.snapshot().empty());
  // record_always bypasses the gate (for hoisted-check call sites).
  ring.record_always(1, TraceEvent::kStep);
  EXPECT_EQ(ring.recorded(), 1);
}

TEST(TraceRing, WrapKeepsTheNewestRecords) {
  TraceFlagGuard guard;
  set_trace_enabled(true);
  TraceRing ring(8);
  for (index_t i = 0; i < 20; ++i)
    ring.record(i, TraceEvent::kStep, i);
  EXPECT_EQ(ring.recorded(), 20);
  const auto records = ring.snapshot();
  ASSERT_EQ(records.size(), 8u);
  // Oldest-first: exactly the last capacity() records survive the wrap.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, static_cast<long long>(12 + i));
    EXPECT_EQ(records[i].id, static_cast<index_t>(12 + i));
  }
}

TEST(TraceRing, ConcurrentRecordingLosesNothingBeforeWrap) {
  TraceFlagGuard guard;
  set_trace_enabled(true);
  constexpr int kThreads = 4;
  constexpr index_t kPerThread = 500;
  TraceRing ring(kThreads * kPerThread);  // no wrap: all records live
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (index_t i = 0; i < kPerThread; ++i)
        ring.record(t * kPerThread + i, TraceEvent::kStep, t);
    });
  }
  // Concurrent snapshots: torn slots are skipped, never corrupt.
  for (int i = 0; i < 20; ++i) {
    for (const TraceRecord& r : ring.snapshot()) {
      EXPECT_GE(r.arg, 0);
      EXPECT_LT(r.arg, kThreads);
    }
  }
  for (std::thread& t : threads) t.join();
  const auto records = ring.snapshot();
  ASSERT_EQ(records.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  std::set<index_t> ids;
  for (const TraceRecord& r : records) ids.insert(r.id);
  EXPECT_EQ(ids.size(), records.size()) << "duplicate or lost ids";
  for (std::size_t i = 1; i < records.size(); ++i)
    EXPECT_LT(records[i - 1].seq, records[i].seq);
}

TEST(TraceRing, DisabledPathOverheadIsNegligible) {
  // The gate is one relaxed load + branch.  Measure a hot loop of
  // disabled record() calls against the same loop doing trivial work;
  // the bound is deliberately generous (CI runners are noisy) — this
  // catches a disabled path that started taking locks or timestamps,
  // not nanosecond drift.
  TraceFlagGuard guard;
  set_trace_enabled(false);
  TraceRing ring(64);
  constexpr int kIters = 2000000;
  volatile long long sink = 0;

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) sink = sink + 1;
  const auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    ring.record(i, TraceEvent::kStep);
    sink = sink + 1;
  }
  const auto t2 = std::chrono::steady_clock::now();

  const double base = std::chrono::duration<double>(t1 - t0).count();
  const double gated = std::chrono::duration<double>(t2 - t1).count();
  EXPECT_EQ(ring.recorded(), 0);
  // Disabled record() must stay within ~20x of an empty loop iteration
  // (in practice ~1-2x; a lock or clock read in the gate blows far past).
  EXPECT_LT(gated, base * 20.0 + 0.05)
      << "disabled trace path too slow: " << gated << "s vs " << base
      << "s baseline";
}

}  // namespace
}  // namespace qdnn::obs
