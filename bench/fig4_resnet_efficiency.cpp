// Fig. 4 reproduction: accuracy vs parameters and vs FLOPs for the CIFAR
// ResNet family with linear vs proposed quadratic neurons.
//
// Two parts:
//  (A) *Exact architecture arithmetic* at paper scale (32×32 input, width
//      16, k = 9): parameters and MACs for ResNet-20/32/44/56/110 in both
//      neuron families, and the paper's headline deltas —
//      ResNet-32(ours) vs ResNet-44(base):  −29.3% params / −28.3% MACs,
//      ResNet-56(ours) vs ResNet-110(base): ≈−50% both.
//  (B) *Scaled training runs* on the synthetic CIFAR-10 substitute
//      (single CPU core), demonstrating the accuracy ordering the figure
//      rests on: a quadratic ResNet matches/beats a deeper linear one.
#include <chrono>
#include <cstdio>

#include "analysis/counters.h"
#include "bench_util.h"
#include "models/resnet.h"
#include "runtime/inference_session.h"
#include "train/trainer.h"

using namespace qdnn;
using namespace qdnn::models;
using qdnn::bench::bench_scale;
using qdnn::bench::fmt;
using qdnn::bench::fmt_pct;
using qdnn::bench::print_header;
using qdnn::bench::print_row;
using qdnn::bench::print_rule;

namespace {

struct ArchPoint {
  index_t depth;
  bool quadratic;
  index_t params;
  index_t macs;
};

ArchPoint paper_scale_point(index_t depth, bool quadratic) {
  ResNetConfig config;
  config.depth = depth;
  config.num_classes = 10;
  config.image_size = 32;
  config.base_width = 16;
  config.spec = quadratic ? NeuronSpec::proposed(9) : NeuronSpec::linear();
  auto net = make_cifar_resnet(config);
  return {depth, quadratic, net->num_parameters(), net->macs_per_image()};
}

}  // namespace

int main() {
  // ---------------- Part A: paper-scale architecture arithmetic ----------
  print_header(
      "Fig 4 (A): ResNet family, 32x32/width-16/k=9 — params & MACs");
  print_row({"network", "neurons", "params/M", "MACs/MMac"});
  print_rule();

  CsvWriter csv(qdnn::bench::results_dir() + "/fig4_architectures.csv",
                {"depth", "neuron", "params", "macs"});
  std::vector<ArchPoint> base, ours;
  for (index_t depth : {20, 32, 44, 56, 110}) {
    for (bool quad : {false, true}) {
      const ArchPoint p = paper_scale_point(depth, quad);
      (quad ? ours : base).push_back(p);
      print_row({"ResNet-" + std::to_string(depth),
                 quad ? "ours(k=9)" : "linear",
                 fmt(p.params / 1e6, 3), fmt(p.macs / 1e6, 1)});
      csv.write_row(std::vector<std::string>{
          std::to_string(depth), quad ? "proposed" : "linear",
          std::to_string(p.params), std::to_string(p.macs)});
    }
  }

  auto find = [](const std::vector<ArchPoint>& v, index_t depth) {
    for (const auto& p : v)
      if (p.depth == depth) return p;
    return v.front();
  };
  const auto compare = [&](index_t depth_ours, index_t depth_base,
                           double paper_params_pct, double paper_macs_pct) {
    const ArchPoint o = find(ours, depth_ours);
    const ArchPoint b = find(base, depth_base);
    const double dp = 100.0 * (static_cast<double>(o.params) - b.params) /
                      b.params;
    const double dm =
        100.0 * (static_cast<double>(o.macs) - b.macs) / b.macs;
    std::printf(
        "ResNet-%lld(ours) vs ResNet-%lld(base):  params %s (paper %s),  "
        "MACs %s (paper %s)\n",
        static_cast<long long>(depth_ours),
        static_cast<long long>(depth_base), fmt_pct(dp).c_str(),
        fmt_pct(paper_params_pct).c_str(), fmt_pct(dm).c_str(),
        fmt_pct(paper_macs_pct).c_str());
  };
  std::printf("\nHeadline deltas (paper values in parentheses):\n");
  compare(32, 44, -29.3, -28.3);
  compare(56, 110, -49.8, -50.5);

  // ---------------- Part B: scaled training runs -------------------------
  const int scale = bench_scale();
  print_header("Fig 4 (B): scaled training on synthetic CIFAR-10");
  std::printf(
      "substitute dataset (see DESIGN.md), %d train / %d test, 16x16, "
      "width 8, k=9\n\n",
      600 * scale, 300 * scale);

  data::SyntheticImageConfig data_config;
  data_config.num_classes = 10;
  data_config.image_size = 16;
  data_config.noise_std = 0.7f;   // hard enough that depth matters
  data_config.shape_amp = 0.25f;  // weak first-order cue
  const auto train_set =
      data::make_synthetic_images(data_config, 600 * scale, 11);
  const auto test_set =
      data::make_synthetic_images(data_config, 300 * scale, 12);

  CsvWriter curve(qdnn::bench::results_dir() + "/fig4_accuracy.csv",
                  {"depth", "neuron", "params", "macs", "test_accuracy"});
  print_row({"network", "neurons", "params/k", "MACs/M", "test acc"});
  print_rule();

  struct Result {
    index_t depth;
    bool quad;
    double acc;
    index_t params;
  };
  std::vector<Result> results;
  for (index_t depth : {8, 14, 20}) {
    for (bool quad : {false, true}) {
      ResNetConfig config;
      config.depth = depth;
      config.num_classes = 10;
      config.image_size = 16;
      config.base_width = 8;
      config.spec =
          quad ? NeuronSpec::proposed(9) : NeuronSpec::linear();
      config.seed = 3 + depth;
      auto net = make_cifar_resnet(config);

      train::TrainerConfig tc;
      tc.epochs = 8 * scale;
      tc.batch_size = 32;
      tc.lr = 0.05f;
      tc.clip_norm = 5.0f;
      tc.lr_milestones = {index_t(5 * scale), index_t(7 * scale)};
      tc.augment_pad = 2;
      tc.seed = 100 + depth + (quad ? 1 : 0);
      train::Trainer trainer(*net, tc);
      const auto history = trainer.fit(train_set, test_set);
      const double acc =
          history.empty() ? 0.0 : history.back().test_accuracy;
      results.push_back({depth, quad, acc, net->num_parameters()});
      print_row({"ResNet-" + std::to_string(depth),
                 quad ? "ours(k=9)" : "linear",
                 fmt(net->num_parameters() / 1e3, 1),
                 fmt(net->macs_per_image() / 1e6, 2), fmt(100 * acc, 2)});
      curve.write_row(std::vector<std::string>{
          std::to_string(depth), quad ? "proposed" : "linear",
          std::to_string(net->num_parameters()),
          std::to_string(net->macs_per_image()), fmt(acc, 4)});
    }
  }

  // Shape assertion mirrored from the paper: the quadratic network at
  // depth d should match or beat the linear network at depth d (and
  // typically the deeper linear one).
  std::printf("\nOrdering check (quadratic >= linear at equal depth):\n");
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const Result& lin = results[i];
    const Result& quad = results[i + 1];
    std::printf("  depth %-3lld linear %.2f%%  ours %.2f%%  -> %s\n",
                static_cast<long long>(lin.depth), 100 * lin.acc,
                100 * quad.acc,
                quad.acc + 1e-9 >= lin.acc ? "ours wins/ties" : "linear wins");
  }

  // The paper's headline form of the claim: a SHALLOWER quadratic network
  // matches/beats a DEEPER linear one at substantially fewer parameters
  // (e.g. quadratic ResNet-32 vs linear ResNet-44).
  std::printf("\nCross-depth check (shallow ours vs deeper linear):\n");
  for (std::size_t i = 0; i + 2 < results.size(); i += 2) {
    const Result& quad = results[i + 1];          // ours at depth d
    const Result& deeper_lin = results[i + 2];    // linear at next depth
    const double dp = 100.0 *
                      (static_cast<double>(quad.params) -
                       static_cast<double>(deeper_lin.params)) /
                      static_cast<double>(deeper_lin.params);
    std::printf(
        "  ours@%-3lld %.2f%% (%+.1f%% params) vs linear@%-3lld %.2f%%  -> "
        "%s\n",
        static_cast<long long>(quad.depth), 100 * quad.acc, dp,
        static_cast<long long>(deeper_lin.depth), 100 * deeper_lin.acc,
        quad.acc + 1e-9 >= deeper_lin.acc ? "ours wins/ties"
                                          : "linear wins");
  }

  // ---------------- Part C: serving before/after weight prepack ----------
  // The same quadratic ResNet served through an InferenceSession with the
  // freeze-time weight prepack off ("before") and on ("after"): the
  // flattened stage pipeline is identical, only the per-request gemm
  // packing work and its workspace scratch differ.
  print_header("Fig 4 (C): ResNet-20 serving, before/after freeze prepack");
  print_row({"config", "us/request", "workspace/KB", "stages"});
  print_rule();
  CsvWriter serve_csv(qdnn::bench::results_dir() + "/fig4_serving.csv",
                      {"config", "us_per_request", "workspace_floats"});
  {
    ResNetConfig config;
    config.depth = 20;
    config.num_classes = 10;
    config.image_size = 32;
    config.base_width = 16;
    config.spec = NeuronSpec::proposed(9);
    config.seed = 7;
    const index_t batch = 8;
    Rng in_rng(9);
    Tensor x{Shape{batch, 3, 32, 32}};
    in_rng.fill_uniform(x, -1.0f, 1.0f);
    const int reps = 10 * scale;

    for (bool freeze : {false, true}) {
      runtime::SessionConfig sc;
      sc.sample_shape = Shape{3, 32, 32};
      sc.max_batch = batch;
      sc.freeze = freeze;
      runtime::InferenceSession session(make_cifar_resnet(config), sc);
      session.run(x);  // settle
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < reps; ++r) session.run(x);
      const auto t1 = std::chrono::steady_clock::now();
      const double us =
          std::chrono::duration<double, std::micro>(t1 - t0).count() /
          reps;
      print_row({freeze ? "frozen (prepacked)" : "unfrozen",
                 fmt(us, 1),
                 fmt(session.workspace_floats() * 4.0 / 1024.0, 1),
                 std::to_string(session.num_stages())});
      serve_csv.write_row(std::vector<std::string>{
          freeze ? "frozen" : "unfrozen", fmt(us, 2),
          std::to_string(session.workspace_floats())});
    }
  }
  return 0;
}
