#include "core/rng.h"

#include <cmath>
#include <numbers>

namespace qdnn {

namespace {
// SplitMix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 kept away from 0 so log() is finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

index_t Rng::uniform_int(index_t n) {
  QDNN_CHECK(n > 0, "uniform_int: n must be positive");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t un = static_cast<std::uint64_t>(n);
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return static_cast<index_t>(v % un);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(next_u64() ^ 0xA0761D6478BD642Full); }

std::vector<index_t> Rng::permutation(index_t n) {
  std::vector<index_t> idx(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  for (index_t i = n - 1; i > 0; --i)
    std::swap(idx[static_cast<std::size_t>(i)],
              idx[static_cast<std::size_t>(uniform_int(i + 1))]);
  return idx;
}

void Rng::fill_uniform(Tensor& t, float lo, float hi) {
  for (index_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(uniform(lo, hi));
}

void Rng::fill_normal(Tensor& t, float mean, float stddev) {
  for (index_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(normal(mean, stddev));
}

}  // namespace qdnn
