// TensorView / ConstTensorView: non-owning views over dense row-major
// float buffers — the currency of the allocation-free execution API.
//
// A view is (Shape, pointer).  It never allocates for the data it refers
// to and never frees anything; the underlying storage (a Tensor, a
// Workspace block, or an InferenceSession activation buffer) must outlive
// it.  Views carry the same `at()` accessors as Tensor so layer kernels
// are written once against either type.
//
// Shape uses fixed inline storage, so constructing or copying a view is
// heap-free — per-call views on serving hot paths (native attention,
// Sequential chaining) are fine.  Steady-state drivers still build views
// once per (model, batch-size) binding and re-point them at fresh data
// with rebind() to skip even the copy — see runtime/inference_session.cpp
// for the pattern.
#pragma once

#include "core/shape.h"
#include "core/tensor.h"

namespace qdnn {

class TensorView {
 public:
  TensorView() = default;
  TensorView(Shape shape, float* data)
      : shape_(std::move(shape)), data_(data) {
    QDNN_CHECK(data_ != nullptr || shape_.numel() == 0,
               "TensorView: null data for shape " << shape_);
  }
  // Intentionally implicit: lets Tensor-owning call sites pass straight
  // into forward_into().
  TensorView(Tensor& t) : shape_(t.shape()), data_(t.data()) {}

  const Shape& shape() const { return shape_; }
  index_t numel() const { return shape_.numel(); }
  index_t rank() const { return shape_.rank(); }
  index_t dim(index_t i) const { return shape_[i]; }
  bool empty() const { return numel() == 0; }

  float* data() const { return data_; }

  // Re-point the view at a new buffer of the same shape without touching
  // the Shape (and thus without allocating).
  void rebind(float* data) {
    QDNN_CHECK(data != nullptr || shape_.numel() == 0,
               "TensorView::rebind: null data");
    data_ = data;
  }

  float& operator[](index_t i) const {
    QDNN_DCHECK(i >= 0 && i < numel(),
                "view index " << i << " out of " << numel());
    return data_[i];
  }
  float& at(index_t i, index_t j) const {
    detail::dcheck_at(shape_, i, j);
    return data_[i * shape_[1] + j];
  }
  float& at(index_t i, index_t j, index_t k) const {
    detail::dcheck_at(shape_, i, j, k);
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float& at(index_t i, index_t j, index_t k, index_t l) const {
    detail::dcheck_at(shape_, i, j, k, l);
    return data_[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
  }

  void fill(float v) const {
    const index_t n = numel();
    for (index_t i = 0; i < n; ++i) data_[i] = v;
  }
  void zero() const { fill(0.0f); }

  // Materialize an owning copy.
  Tensor to_tensor() const {
    Tensor out{shape_};
    std::memcpy(out.data(), data_,
                static_cast<std::size_t>(numel()) * sizeof(float));
    return out;
  }

 private:
  Shape shape_;
  float* data_ = nullptr;
};

class ConstTensorView {
 public:
  ConstTensorView() = default;
  ConstTensorView(Shape shape, const float* data)
      : shape_(std::move(shape)), data_(data) {
    QDNN_CHECK(data_ != nullptr || shape_.numel() == 0,
               "ConstTensorView: null data for shape " << shape_);
  }
  ConstTensorView(const Tensor& t) : shape_(t.shape()), data_(t.data()) {}
  ConstTensorView(const TensorView& v) : shape_(v.shape()), data_(v.data()) {}

  const Shape& shape() const { return shape_; }
  index_t numel() const { return shape_.numel(); }
  index_t rank() const { return shape_.rank(); }
  index_t dim(index_t i) const { return shape_[i]; }
  bool empty() const { return numel() == 0; }

  const float* data() const { return data_; }

  void rebind(const float* data) {
    QDNN_CHECK(data != nullptr || shape_.numel() == 0,
               "ConstTensorView::rebind: null data");
    data_ = data;
  }

  float operator[](index_t i) const {
    QDNN_DCHECK(i >= 0 && i < numel(),
                "view index " << i << " out of " << numel());
    return data_[i];
  }
  float at(index_t i, index_t j) const {
    detail::dcheck_at(shape_, i, j);
    return data_[i * shape_[1] + j];
  }
  float at(index_t i, index_t j, index_t k) const {
    detail::dcheck_at(shape_, i, j, k);
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float at(index_t i, index_t j, index_t k, index_t l) const {
    detail::dcheck_at(shape_, i, j, k, l);
    return data_[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
  }

  Tensor to_tensor() const {
    Tensor out{shape_};
    std::memcpy(out.data(), data_,
                static_cast<std::size_t>(numel()) * sizeof(float));
    return out;
  }

 private:
  Shape shape_;
  const float* data_ = nullptr;
};

// Copies src into dst; shapes must match exactly.
inline void copy_into(const ConstTensorView& src, const TensorView& dst) {
  QDNN_CHECK(src.shape() == dst.shape(), "copy_into: shape mismatch "
                                             << src.shape() << " vs "
                                             << dst.shape());
  std::memcpy(dst.data(), src.data(),
              static_cast<std::size_t>(src.numel()) * sizeof(float));
}

// max |a - b| over all elements; shapes must match.  NaN differences are
// sticky (the result is NaN), so a corrupted buffer can never compare
// equal to a clean one.
inline float view_max_abs_diff(const ConstTensorView& a,
                               const ConstTensorView& b) {
  QDNN_CHECK(a.shape() == b.shape(), "view_max_abs_diff: shape mismatch");
  float m = 0.0f;
  for (index_t i = 0; i < a.numel(); ++i) {
    const float d = a[i] - b[i];
    const float mag = d < 0.0f ? -d : d;  // NaN passes through
    // Second clause promotes m to NaN; once NaN, neither fires again.
    if (mag > m || mag != mag) m = mag;
  }
  return m;
}

}  // namespace qdnn
