// Paged KV memory: a refcounted pool of fixed-size pages plus the
// bounded content-hashed prefix cache built on top of it.
//
// Dense per-row KV rings size every row for the worst case
// (max_steps / max_src), so KV memory — the resource that caps how many
// concurrent users a shard holds — is mostly spent on tails no short
// request ever touches, and two requests with the same source each carry
// a full private copy of the same cross-K/V.  KvPagePool restructures
// that storage into uniform pages of `page_tokens` token rows; a row maps
// pages through a per-row page table (runtime::DecodeSession owns the
// tables, models::PagedKvView carries them into the attention step
// kernels), acquiring pages as its decode deepens and releasing them at
// retirement.  Pages are refcounted, so the SAME physical page can back
// the cross-K/V of every live row decoding from one cached prefix — the
// sharing that makes the prefix cache and (ROADMAP) copy-on-write beam
// forking possible — and the scheduler can oversubscribe max_batch
// against actual free pages instead of the dense worst case.
//
// Page layout: one page holds every decoder layer's K and V rows for
// `page_tokens` consecutive token positions —
//   [L0·K: page_tokens × P][L0·V: page_tokens × P][L1·K]…
// so page_floats = layers × 2 × page_tokens × proj_dim and ONE table
// entry per (row, token-block) serves all layers (the per-layer slice
// offsets are static).  page_tokens must be a power of two: the step
// kernels resolve position j with a shift/mask, never a divide.
//
// Page id 0 is the reserved SENTINEL page: every unmapped table entry
// points at it, so parked/warming rows read (and harmlessly write)
// defined memory without per-row branching in the kernels.  It is never
// on the free list and never refcounted.
//
// Thread-safety: acquire/add_ref/release/refcount serialize on an
// internal mutex (O(1) under the lock); free_pages() is a relaxed atomic
// read so gauges and admission heuristics never take the lock.  The
// PrefixCache has its own mutex (PrefillPool workers look up prefixes
// concurrently with the serving thread's publish/evict); whenever both
// locks are needed the order is ALWAYS cache → pool, so the two can
// never deadlock.  Everything is preallocated at init: steady-state
// acquire/release/lookup/publish perform no heap allocation.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/tensor.h"

namespace qdnn::runtime {

class KvPagePool {
 public:
  // Unmapped table entries point here; never allocated, never freed.
  static constexpr index_t kSentinelPage = 0;

  KvPagePool() = default;
  KvPagePool(const KvPagePool&) = delete;
  KvPagePool& operator=(const KvPagePool&) = delete;

  // Allocates storage for `pages` usable pages (plus the sentinel) of
  // `page_floats` floats each, zero-filled.  Callable once.
  void init(index_t pages, index_t page_floats);

  // Pops a free page with refcount 1, or returns -1 when the pool is
  // exhausted (callers reclaim prefix-cache pages and retry, or preempt).
  index_t acquire();
  // Takes one more reference on a live page (prefix sharing).
  void add_ref(index_t page);
  // Drops one reference; the page returns to the free list at zero.
  void release(index_t page);
  index_t refcount(index_t page) const;

  float* page_data(index_t page) {
    return storage_.data() + page * page_floats_;
  }
  const float* page_data(index_t page) const {
    return storage_.data() + page * page_floats_;
  }
  float* data() { return storage_.data(); }
  const float* data() const { return storage_.data(); }

  index_t page_floats() const { return page_floats_; }
  // Usable pages (the sentinel excluded).
  index_t pages() const { return pages_; }
  // Lock-free: safe from gauges/heuristics on any thread.
  index_t free_pages() const {
    return free_count_.load(std::memory_order_relaxed);
  }

 private:
  Tensor storage_;              // (pages + 1) × page_floats, page 0 = sentinel
  std::vector<index_t> free_;   // stack of free page ids
  std::vector<index_t> refs_;   // per-page refcount (sentinel unused)
  std::atomic<index_t> free_count_{0};
  index_t pages_ = 0;
  index_t page_floats_ = 0;
  mutable std::mutex mu_;
};

// FNV-1a over the token ids plus the valid length — the prefix-cache
// key.  Exposed (rather than buried in the cache) so the cache API takes
// the precomputed hash: the session computes it once per admission, and
// tests can force collisions to exercise the full-token compare.
std::uint64_t prefix_hash(const index_t* tokens, index_t ts, index_t len);

// Bounded content-hashed cache of committed cross-K/V prefixes.
//
// Contract (see DecodeSession for the integration):
//   * publish() records {hash, full token sequence, len, the page ids}
//     and takes one pool reference per page — the cache's own pin, so an
//     entry survives the publishing row's retirement.
//   * lookup_acquire() matches hash AND the full token sequence AND len
//     (hash collisions can never alias two different sources), takes one
//     reference per page for the caller, bumps the entry's LRU stamp and
//     appends the page ids to `out_pages`.  Safe concurrently from
//     prefill workers.
//   * evict_one() drops the least-recently-used entry and its pool
//     references — cached pages whose only holder is the cache are
//     RECLAIMABLE: page acquisition evicts entries on pool pressure, so
//     the cache can never starve admission; only live rows can.
//   * A full cache evicts LRU on publish; re-publishing an existing
//     source refreshes its stamp instead of duplicating it.
//
// All entry storage (token buffers, page lists) is reserved at init, so
// steady-state publish/lookup/evict never heap-allocate.  Counters are
// relaxed atomics, readable from any thread without the lock.
class PrefixCache {
 public:
  PrefixCache() = default;
  PrefixCache(const PrefixCache&) = delete;
  PrefixCache& operator=(const PrefixCache&) = delete;

  // `entries` = 0 disables the cache (publish/lookup become no-ops).
  // max_tokens/max_pages bound one entry's token and page lists (the
  // session's max_src and cross pages-per-row).
  void init(index_t entries, index_t max_tokens, index_t max_pages);

  bool enabled() const { return !entries_.empty(); }

  bool lookup_acquire(std::uint64_t hash, const index_t* tokens, index_t ts,
                      index_t len, KvPagePool& pool,
                      std::vector<index_t>& out_pages);
  void publish(std::uint64_t hash, const index_t* tokens, index_t ts,
               index_t len, const index_t* pages, index_t n_pages,
               KvPagePool& pool);
  // Drops the LRU entry (releasing its pool references); false when the
  // cache is empty or disabled.
  bool evict_one(KvPagePool& pool);
  // Pages whose ONLY reference is this cache — what eviction could hand
  // back to the pool right now.  Takes both locks (cache → pool order).
  index_t reclaimable_pages(const KvPagePool& pool) const;
  index_t live_entries() const;

  long long hits() const { return hits_.load(std::memory_order_relaxed); }
  long long misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  long long insertions() const {
    return insertions_.load(std::memory_order_relaxed);
  }
  long long evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    bool valid = false;
    std::uint64_t hash = 0;
    index_t ts = 0;
    index_t len = 0;
    long long stamp = 0;  // LRU clock value of the last publish/hit
    std::vector<index_t> tokens;  // reserved max_tokens at init
    std::vector<index_t> pages;   // reserved max_pages at init
  };

  // Under mu_.  Returns the matching valid entry or nullptr.
  Entry* find_locked(std::uint64_t hash, const index_t* tokens, index_t ts,
                     index_t len);
  void drop_locked(Entry& e, KvPagePool& pool);

  std::vector<Entry> entries_;
  long long clock_ = 0;
  std::atomic<long long> hits_{0};
  std::atomic<long long> misses_{0};
  std::atomic<long long> insertions_{0};
  std::atomic<long long> evictions_{0};
  mutable std::mutex mu_;
};

}  // namespace qdnn::runtime
