// Small I/O helpers used by benches and examples: CSV emission for the
// table/figure harnesses and binary PGM images for the Fig. 8 response
// visualizations.  Tensor (de)serialization gives a simple checkpoint
// format for the examples.
#pragma once

#include <string>
#include <vector>

#include "core/tensor.h"

namespace qdnn {

// Writes rows as CSV; the header is emitted first if non-empty.  Creates
// parent directories as needed.
class CsvWriter {
 public:
  explicit CsvWriter(std::string path, std::vector<std::string> header = {});
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const std::vector<std::string>& cells);
  void write_row(const std::vector<double>& cells);
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string buffer_;
};

// Writes a single-channel tensor [H, W] as a binary PGM (P5), min-max
// normalized to 0..255.  Used for Fig. 8 response maps.
void write_pgm(const std::string& path, const Tensor& image);

// Simple binary tensor checkpoint: magic, rank, dims, float payload.
void save_tensor(const std::string& path, const Tensor& t);
Tensor load_tensor(const std::string& path);

// mkdir -p for the given directory path.
void ensure_directory(const std::string& dir);

}  // namespace qdnn
