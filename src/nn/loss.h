// Losses.  CrossEntropyLoss fuses log-softmax with NLL for numerical
// stability; label smoothing (0.1 for the Transformer, 0 for the CNNs)
// and an ignore_index for padded target positions are supported, matching
// the training recipes of the paper's two experiment families.
#pragma once

#include <vector>

#include "core/tensor.h"

namespace qdnn::nn {

struct LossResult {
  float loss = 0.0f;        // mean over contributing samples
  Tensor grad_logits;       // dL/d(logits), same shape as logits
  index_t count = 0;        // number of non-ignored samples
  index_t correct = 0;      // top-1 correct predictions (for accuracy)
};

class CrossEntropyLoss {
 public:
  explicit CrossEntropyLoss(float label_smoothing = 0.0f,
                            index_t ignore_index = -1)
      : label_smoothing_(label_smoothing), ignore_index_(ignore_index) {
    QDNN_CHECK(label_smoothing >= 0.0f && label_smoothing < 1.0f,
               "label smoothing in [0,1)");
  }

  // logits: [N, C]; targets: N class indices.
  LossResult operator()(const Tensor& logits,
                        const std::vector<index_t>& targets) const;

 private:
  float label_smoothing_;
  index_t ignore_index_;
};

// Mean squared error (used by regression-style property tests and the
// quickstart example): returns 0.5/N * Σ (pred − target)².
LossResult mse_loss(const Tensor& pred, const Tensor& target);

}  // namespace qdnn::nn
