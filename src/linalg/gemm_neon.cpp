// NEON backend (aarch64): 4x16 register-tiled microkernel — the ARM
// twin of gemm_avx2.cpp.  Per k step: four 4-lane B loads across the
// 16-column panel, one broadcast per A row, 16 FMAs into a 4x4 block
// of q-register accumulators.  Ragged n has no masked loads on NEON;
// tail lanes are assembled into a zero-padded stack vector instead,
// which keeps the FMA stream lane-identical to a zero-padded
// tile-panel pack (the prepacked-vs-unpacked bit-identity contract).
#include "linalg/gemm_kernels.h"

#if defined(QDNN_SIMD_NEON)

#include <arm_neon.h>

namespace qdnn::linalg::detail {

namespace {

constexpr int kVec = 4;  // lanes per q register

// Loads `valid` (0..4) leading lanes from p, zeroes the rest.
inline float32x4_t load_padded(const float* p, index_t valid) {
  if (valid >= kVec) return vld1q_f32(p);
  float tmp[kVec] = {0.0f, 0.0f, 0.0f, 0.0f};
  for (index_t j = 0; j < valid; ++j) tmp[j] = p[j];
  return vld1q_f32(tmp);
}

// Stores the `valid` (0..4) leading lanes of v to p.
inline void store_valid(float* p, float32x4_t v, index_t valid) {
  if (valid >= kVec) {
    vst1q_f32(p, v);
    return;
  }
  float tmp[kVec];
  vst1q_f32(tmp, v);
  for (index_t j = 0; j < valid; ++j) p[j] = tmp[j];
}

// One MR x 16 tile over columns [0, nr) of the panel at (bbase,
// bstride).  TAIL pads B tail lanes with zeros and stores only valid C
// lanes.
template <int MR, bool TAIL>
inline void tile(const float* a, index_t lda, const float* bbase,
                 index_t bstride, index_t k, float alpha, float* c,
                 index_t ldc, index_t nr) {
  float32x4_t acc[MR][4];
  for (int i = 0; i < MR; ++i)
    for (int q = 0; q < 4; ++q) acc[i][q] = vdupq_n_f32(0.0f);
  index_t valid[4];
  for (int q = 0; q < 4; ++q) {
    const index_t v = nr - q * kVec;
    valid[q] = v < 0 ? 0 : (v > kVec ? kVec : v);
  }
  for (index_t p = 0; p < k; ++p) {
    const float* bp = bbase + p * bstride;
    float32x4_t b[4];
    for (int q = 0; q < 4; ++q)
      b[q] = TAIL ? load_padded(bp + q * kVec, valid[q])
                  : vld1q_f32(bp + q * kVec);
    for (int i = 0; i < MR; ++i) {
      const float32x4_t av = vdupq_n_f32(a[i * lda + p]);
      for (int q = 0; q < 4; ++q)
        acc[i][q] = vfmaq_f32(acc[i][q], av, b[q]);
    }
  }
  const float32x4_t va = vdupq_n_f32(alpha);
  for (int i = 0; i < MR; ++i) {
    float* cp = c + i * ldc;
    for (int q = 0; q < 4; ++q) {
      if (!TAIL) {
        vst1q_f32(cp + q * kVec,
                  vfmaq_f32(vld1q_f32(cp + q * kVec), va, acc[i][q]));
      } else if (valid[q] > 0) {
        const float32x4_t cv = load_padded(cp + q * kVec, valid[q]);
        store_valid(cp + q * kVec, vfmaq_f32(cv, va, acc[i][q]),
                    valid[q]);
      }
    }
  }
}

template <bool TAIL>
inline void tile_rows(int mr, const float* a, index_t lda,
                      const float* bbase, index_t bstride, index_t k,
                      float alpha, float* c, index_t ldc, index_t nr) {
  switch (mr) {
    case 4: tile<4, TAIL>(a, lda, bbase, bstride, k, alpha, c, ldc, nr); break;
    case 3: tile<3, TAIL>(a, lda, bbase, bstride, k, alpha, c, ldc, nr); break;
    case 2: tile<2, TAIL>(a, lda, bbase, bstride, k, alpha, c, ldc, nr); break;
    case 1: tile<1, TAIL>(a, lda, bbase, bstride, k, alpha, c, ldc, nr); break;
    default: break;
  }
}

}  // namespace

void gemm_kernel_neon(index_t m, index_t n, index_t k, float alpha,
                      const float* a, index_t lda, const BDesc& b,
                      float* c, index_t ldc) {
  constexpr int kMr = 4;
  for (index_t j0 = 0; j0 < n; j0 += kPanelWidth) {
    const index_t nr = std::min(kPanelWidth, n - j0);
    const bool tail = nr < kPanelWidth;
    const float* bbase =
        b.panel ? b.data + (j0 / kPanelWidth) * k * kPanelWidth
                : b.data + j0;
    const index_t bstride = b.panel ? kPanelWidth : b.ld;
    index_t i = 0;
    for (; i + kMr <= m; i += kMr) {
      if (tail)
        tile<4, true>(a + i * lda, lda, bbase, bstride, k, alpha,
                      c + i * ldc + j0, ldc, nr);
      else
        tile<4, false>(a + i * lda, lda, bbase, bstride, k, alpha,
                       c + i * ldc + j0, ldc, nr);
    }
    if (i < m) {
      const int mr = static_cast<int>(m - i);
      if (tail)
        tile_rows<true>(mr, a + i * lda, lda, bbase, bstride, k, alpha,
                        c + i * ldc + j0, ldc, nr);
      else
        tile_rows<false>(mr, a + i * lda, lda, bbase, bstride, k, alpha,
                         c + i * ldc + j0, ldc, nr);
    }
  }
}

float dot_neon(const float* a, const float* b, index_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.0f), acc1 = vdupq_n_f32(0.0f);
  float32x4_t acc2 = vdupq_n_f32(0.0f), acc3 = vdupq_n_f32(0.0f);
  index_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
    acc2 = vfmaq_f32(acc2, vld1q_f32(a + i + 8), vld1q_f32(b + i + 8));
    acc3 = vfmaq_f32(acc3, vld1q_f32(a + i + 12), vld1q_f32(b + i + 12));
  }
  for (; i + 4 <= n; i += 4)
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
  const float32x4_t s =
      vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3));
  float32x2_t t = vadd_f32(vget_low_f32(s), vget_high_f32(s));
  t = vpadd_f32(t, t);
  float sum = vget_lane_f32(t, 0);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

void axpy_neon(index_t n, float alpha, const float* x, float* y) {
  const float32x4_t va = vdupq_n_f32(alpha);
  index_t i = 0;
  for (; i + 4 <= n; i += 4)
    vst1q_f32(y + i, vfmaq_f32(vld1q_f32(y + i), va, vld1q_f32(x + i)));
  for (; i < n; ++i) y[i] += alpha * x[i];
}

}  // namespace qdnn::linalg::detail

#endif  // QDNN_SIMD_NEON
