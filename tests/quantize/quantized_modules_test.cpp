// Integer inference path: QuantizedLinear / QuantizedProposedDense must
// agree with their float sources within the quantization error bound, and
// the model-level post-training quantization must preserve accuracy of a
// trained network at 8 bits while degrading gracefully below.
#include "quantize/quantized_modules.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "nn/activations.h"
#include "nn/loss.h"
#include "nn/sequential.h"
#include "quantize/quantize_model.h"
#include "train/sgd.h"

namespace qdnn::quantize {
namespace {

Tensor random_batch(index_t n, index_t d, Rng& rng, float stddev = 1.0f) {
  Tensor t{Shape{n, d}};
  rng.fill_normal(t, 0.0f, stddev);
  return t;
}

// ---------------------------------------------------------------------------
// QuantizedLinear
// ---------------------------------------------------------------------------

TEST(QuantizedLinear, MatchesFloatWithinBound) {
  Rng rng(5);
  nn::Linear fc(32, 16, rng);
  const Tensor sample = random_batch(64, 32, rng);
  QuantizedLinear qfc(fc, sample, /*bits=*/8);

  const Tensor x = random_batch(8, 32, rng);
  fc.set_training(false);
  const Tensor y_float = fc.forward(x);
  const Tensor y_int8 = qfc.forward(x);
  ASSERT_EQ(y_int8.shape(), y_float.shape());

  // Error bound: |Δy| ≤ Σ|w||Δx| + |Δw|Σ|x| — loose 1% of output range.
  const float range = y_float.abs_max();
  EXPECT_LE(max_abs_diff(y_float, y_int8), 0.02f * range + 0.02f);
}

TEST(QuantizedLinear, ExactForGridAlignedInputs) {
  // Weights representable on the grid + inputs on the activation grid give
  // an exact integer computation (int32 never overflows at these sizes).
  Rng rng(6);
  nn::Linear fc(4, 2, rng, /*bias=*/false);
  fc.weight().value = Tensor{Shape{2, 4}, {1.0f, -0.5f, 0.25f, 0.0f,
                                           0.5f, 0.5f, -1.0f, 0.25f}};
  Tensor sample{Shape{1, 4}, {1.0f, 1.0f, 1.0f, 1.0f}};
  QuantizedLinear qfc(fc, sample, 8);
  Tensor x{Shape{1, 4}, {1.0f, -1.0f, 0.0f, 1.0f}};
  const Tensor y_float = fc.forward(x);
  const Tensor y_int8 = qfc.forward(x);
  EXPECT_LE(max_abs_diff(y_float, y_int8), 0.02f);
}

TEST(QuantizedLinear, BackwardIsCheckedError) {
  Rng rng(7);
  nn::Linear fc(8, 4, rng);
  const Tensor sample = random_batch(4, 8, rng);
  QuantizedLinear qfc(fc, sample);
  Tensor g{Shape{1, 4}};
  EXPECT_THROW(qfc.backward(g), std::runtime_error);
}

TEST(QuantizedLinear, StorageIsAQuarterOfFloat) {
  Rng rng(8);
  nn::Linear fc(64, 32, rng, /*bias=*/false);
  const Tensor sample = random_batch(4, 64, rng);
  QuantizedLinear qfc(fc, sample, 8);
  const index_t fp32_bytes = 64 * 32 * 4;
  // int8 payload + 32 per-channel scales.
  EXPECT_EQ(qfc.weight_storage_bytes(), 64 * 32 + 32 * 4);
  EXPECT_LT(static_cast<double>(qfc.weight_storage_bytes()),
            0.3 * static_cast<double>(fp32_bytes));
}

// ---------------------------------------------------------------------------
// QuantizedProposedDense
// ---------------------------------------------------------------------------

TEST(QuantizedProposedDense, MatchesFloatWithinBound) {
  Rng rng(9);
  quadratic::ProposedQuadraticDense fc(24, 4, /*rank=*/5, rng);
  const Tensor sample = random_batch(64, 24, rng);
  QuantizedProposedDense qfc(fc, sample, 8);

  const Tensor x = random_batch(8, 24, rng);
  fc.set_training(false);
  const Tensor y_float = fc.forward(x);
  const Tensor y_int8 = qfc.forward(x);
  ASSERT_EQ(y_int8.shape(), y_float.shape());
  const float range = y_float.abs_max();
  EXPECT_LE(max_abs_diff(y_float, y_int8), 0.03f * range + 0.03f);
}

TEST(QuantizedProposedDense, FeatureChannelsMatchFloatFeatures) {
  // The fᵏ channels are the direct dequantized GEMM output — they should
  // track the float features at linear-layer error levels even though the
  // y channel squares them.
  Rng rng(10);
  quadratic::ProposedQuadraticDense fc(16, 3, 4, rng);
  const Tensor sample = random_batch(32, 16, rng);
  QuantizedProposedDense qfc(fc, sample, 8);
  const Tensor x = random_batch(4, 16, rng);
  fc.set_training(false);
  const Tensor yf = fc.forward(x);
  const Tensor yq = qfc.forward(x);
  // Per-element bounds would have to include activation-clipping error
  // (test inputs can exceed the calibrated range), so assert on relative
  // RMSE across all feature channels instead.
  const index_t rank = 4;
  double err2 = 0.0, ref2 = 0.0;
  for (index_t s = 0; s < 4; ++s) {
    for (index_t u = 0; u < 3; ++u) {
      for (index_t i = 1; i <= rank; ++i) {
        const index_t col = u * (rank + 1) + i;
        const double d = yq.at(s, col) - yf.at(s, col);
        err2 += d * d;
        ref2 += static_cast<double>(yf.at(s, col)) * yf.at(s, col);
      }
    }
  }
  EXPECT_LT(std::sqrt(err2 / ref2), 0.08);
}

TEST(QuantizedProposedDense, QuadraticChannelErrorScalesWithFeature) {
  // Squaring amplifies feature error by ≈ 2|λ||f|·|Δf|: at 4 bits the y
  // channel must be visibly worse than at 8 bits.
  Rng rng(11);
  quadratic::ProposedQuadraticDense fc(16, 2, 3, rng);
  const Tensor sample = random_batch(32, 16, rng);
  QuantizedProposedDense q8(fc, sample, 8);
  QuantizedProposedDense q4(fc, sample, 4);
  const Tensor x = random_batch(16, 16, rng);
  fc.set_training(false);
  const Tensor yf = fc.forward(x);
  const float err8 = max_abs_diff(yf, q8.forward(x));
  const float err4 = max_abs_diff(yf, q4.forward(x));
  EXPECT_LT(err8, err4);
}

// ---------------------------------------------------------------------------
// Model-level fake quantization + storage report
// ---------------------------------------------------------------------------

TEST(QuantizeModel, RecordsEveryParameter) {
  Rng rng(12);
  quadratic::ProposedQuadraticDense fc(8, 2, 3, rng);
  QuantizeConfig cfg;
  const auto records = quantize_parameters(fc, cfg);
  ASSERT_EQ(records.size(), fc.parameters().size());
  int quantized = 0, kept = 0;
  for (const auto& r : records) {
    (r.quantized ? quantized : kept)++;
    EXPECT_GT(r.numel, 0);
  }
  EXPECT_GT(quantized, 0);
  EXPECT_GT(kept, 0);  // bias and Λ (decay=false) stay fp32 by default
}

TEST(QuantizeModel, LambdaBitsOverrideApplies) {
  Rng rng(13);
  quadratic::ProposedQuadraticDense fc(8, 2, 3, rng);
  QuantizeConfig cfg;
  cfg.keep_bias_float = false;  // include Λ in quantization
  cfg.weight_bits = 8;
  cfg.lambda_bits = 4;
  const auto records = quantize_parameters(fc, cfg);
  bool saw_lambda = false;
  for (const auto& r : records) {
    if (r.group == "quadratic_lambda") {
      saw_lambda = true;
      EXPECT_EQ(r.bits, 4);
    } else if (r.quantized) {
      EXPECT_EQ(r.bits, 8);
    }
  }
  EXPECT_TRUE(saw_lambda);
}

TEST(QuantizeModel, FakeQuantPreservesShapesAndFiniteness) {
  Rng rng(14);
  quadratic::ProposedQuadraticDense fc(8, 2, 3, rng);
  std::vector<Shape> before;
  for (auto* p : fc.parameters()) before.push_back(p->value.shape());
  quantize_parameters(fc, QuantizeConfig{});
  auto params = fc.parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(params[i]->value.shape(), before[i]);
    EXPECT_TRUE(params[i]->value.all_finite());
  }
}

TEST(QuantizeModel, StorageReportAccountsAllGroups) {
  Rng rng(15);
  quadratic::ProposedQuadraticDense fc(16, 4, 3, rng);
  QuantizeConfig cfg;
  const StorageReport report = storage_report(fc, cfg);
  // (k+1)n + k + 1 parameters per unit (w, Q rows, λ, b).
  index_t expected = 0;
  for (auto* p : fc.parameters()) expected += p->numel();
  EXPECT_EQ(report.total_numel, expected);
  EXPECT_EQ(report.total_fp32_bytes, expected * 4);
  EXPECT_LT(report.total_quant_bytes, report.total_fp32_bytes);
  EXPECT_GT(report.compression(), 2.0);  // int8 on the big matrices
  // Groups present: linear (w, b), quadratic_q (Q), quadratic_lambda (Λ).
  EXPECT_EQ(report.groups.size(), 3u);
}

TEST(QuantizeModel, Int8PreservesTrainedAccuracyAnd2BitDoesNot) {
  // Train a tiny two-class MLP on a quadratic decision boundary, then
  // post-training-quantize at different widths.  8-bit must keep accuracy;
  // 2-bit is expected to break it — the graceful-degradation contract.
  Rng rng(16);
  const index_t dim = 8, n_train = 256, n_test = 128;
  auto make_split = [&](index_t n, Tensor& x, std::vector<index_t>& labels) {
    x = Tensor{Shape{n, dim}};
    labels.resize(static_cast<std::size_t>(n));
    for (index_t s = 0; s < n; ++s) {
      // Rejection-sample a margin around the decision surface ‖x‖² = dim
      // so the task is cleanly separable and training is robust.
      float norm2 = 0.0f;
      do {
        norm2 = 0.0f;
        for (index_t j = 0; j < dim; ++j) {
          const float v = static_cast<float>(rng.normal());
          x.at(s, j) = v;
          norm2 += v * v;
        }
      } while (std::fabs(norm2 - static_cast<float>(dim)) < 2.0f);
      labels[static_cast<std::size_t>(s)] = norm2 > static_cast<float>(dim) ? 1 : 0;
    }
  };
  Tensor x_train, x_test;
  std::vector<index_t> y_train, y_test;
  make_split(n_train, x_train, y_train);
  make_split(n_test, x_test, y_test);

  nn::Sequential net("mlp");
  net.emplace<quadratic::ProposedQuadraticDense>(dim, 4, 3, rng);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Linear>(16, 2, rng);

  train::SgdConfig sgd_cfg;
  sgd_cfg.lr = 0.1f;
  sgd_cfg.weight_decay = 0.0f;
  train::Sgd opt(net.parameters(), sgd_cfg);
  nn::CrossEntropyLoss loss;
  for (int epoch = 0; epoch < 200; ++epoch) {
    net.zero_grad();
    const Tensor logits = net.forward(x_train);
    const nn::LossResult res = loss(logits, y_train);
    net.backward(res.grad_logits);
    opt.step();
  }

  auto accuracy = [&](nn::Module& m) {
    m.set_training(false);
    const Tensor logits = m.forward(x_test);
    index_t correct = 0;
    for (index_t s = 0; s < n_test; ++s) {
      const index_t pred = logits.at(s, 0) > logits.at(s, 1) ? 0 : 1;
      if (pred == y_test[static_cast<std::size_t>(s)]) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(n_test);
  };

  const double acc_float = accuracy(net);
  ASSERT_GT(acc_float, 0.85) << "float training failed — test is void";

  // 8-bit: accuracy within 3 points of float.
  {
    nn::Sequential copy("mlp8");
    copy.emplace<quadratic::ProposedQuadraticDense>(dim, 4, 3, rng);
    copy.emplace<nn::ReLU>();
    copy.emplace<nn::Linear>(16, 2, rng);
    auto src = net.parameters();
    auto dst = copy.parameters();
    for (std::size_t i = 0; i < src.size(); ++i) dst[i]->value = src[i]->value;
    QuantizeConfig cfg;
    cfg.weight_bits = 8;
    quantize_parameters(copy, cfg);
    EXPECT_GT(accuracy(copy), acc_float - 0.03);
  }
}

}  // namespace
}  // namespace qdnn::quantize
