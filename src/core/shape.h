// Shape: an immutable-ish small vector of dimension extents for Tensor.
//
// Row-major semantics throughout the library.  Kept deliberately simple:
// qdnn tensors are always dense and contiguous, so a Shape fully determines
// the memory layout.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <ostream>
#include <vector>

#include "core/check.h"

namespace qdnn {

using index_t = std::int64_t;

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<index_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<index_t> dims) : dims_(std::move(dims)) {
    validate();
  }

  index_t rank() const { return static_cast<index_t>(dims_.size()); }

  index_t operator[](index_t i) const {
    QDNN_CHECK(i >= 0 && i < rank(), "shape index " << i << " out of rank "
                                                    << rank());
    return dims_[static_cast<std::size_t>(i)];
  }

  // Total number of elements; 1 for a rank-0 (scalar) shape.
  index_t numel() const {
    index_t n = 1;
    for (index_t d : dims_) n *= d;
    return n;
  }

  const std::vector<index_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  // Row-major strides (in elements, not bytes).
  std::vector<index_t> strides() const {
    std::vector<index_t> s(dims_.size(), 1);
    for (index_t i = rank() - 2; i >= 0; --i) {
      s[static_cast<std::size_t>(i)] =
          s[static_cast<std::size_t>(i + 1)] * dims_[static_cast<std::size_t>(i + 1)];
    }
    return s;
  }

  std::string to_string() const {
    std::string out = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(dims_[i]);
    }
    return out + "]";
  }

 private:
  void validate() const {
    for (index_t d : dims_)
      QDNN_CHECK(d >= 0, "negative dimension in shape " << to_string());
  }

  std::vector<index_t> dims_;
};

inline std::ostream& operator<<(std::ostream& os, const Shape& s) {
  return os << s.to_string();
}

namespace detail {

// Shared QDNN_DCHECK rank/bounds guards for the multi-index at()
// accessors of Tensor, TensorView and ConstTensorView.  No-ops (and
// fully inlined away) when QDNN_DCHECK is disabled.
inline void dcheck_at(const Shape& s, index_t i, index_t j) {
  QDNN_DCHECK(s.rank() == 2, "at(i,j) on rank-" << s.rank());
  QDNN_DCHECK(i >= 0 && i < s[0] && j >= 0 && j < s[1],
              "index (" << i << ", " << j << ") out of bounds for " << s);
}
inline void dcheck_at(const Shape& s, index_t i, index_t j, index_t k) {
  QDNN_DCHECK(s.rank() == 3, "at(i,j,k) on rank-" << s.rank());
  QDNN_DCHECK(i >= 0 && i < s[0] && j >= 0 && j < s[1] && k >= 0 &&
                  k < s[2],
              "index (" << i << ", " << j << ", " << k
                        << ") out of bounds for " << s);
}
inline void dcheck_at(const Shape& s, index_t i, index_t j, index_t k,
                      index_t l) {
  QDNN_DCHECK(s.rank() == 4, "at(i,j,k,l) on rank-" << s.rank());
  QDNN_DCHECK(i >= 0 && i < s[0] && j >= 0 && j < s[1] && k >= 0 &&
                  k < s[2] && l >= 0 && l < s[3],
              "index (" << i << ", " << j << ", " << k << ", " << l
                        << ") out of bounds for " << s);
}

}  // namespace detail

}  // namespace qdnn
