#include "quadratic/kervolution.h"

#include <cmath>

#include "linalg/gemm.h"

namespace qdnn::quadratic {

namespace {
// v^d for small integer d; avoids std::pow in the hot loop.
inline float int_pow(float v, int d) {
  float r = 1.0f;
  for (int i = 0; i < d; ++i) r *= v;
  return r;
}
}  // namespace

KervolutionDense::KervolutionDense(index_t in_features, index_t out_features,
                                   int degree, float c, Rng& rng,
                                   std::string name)
    : in_(in_features),
      out_(out_features),
      degree_(degree),
      c_(c),
      name_(std::move(name)),
      w_(name_ + ".weight", Tensor{Shape{out_features, in_features}}) {
  QDNN_CHECK(degree >= 1, name_ << ": degree must be >= 1");
  nn::kaiming_normal(w_.value, in_, rng);
}

Tensor KervolutionDense::forward(const Tensor& input) {
  QDNN_CHECK_EQ(input.rank(), 2, name_ << ": expected [N, in]");
  QDNN_CHECK_EQ(input.dim(1), in_, name_ << ": in_features");
  cached_input_ = input;
  const index_t n = input.dim(0);
  cached_pre_ = Tensor{Shape{n, out_}};
  linalg::gemm(false, true, n, out_, in_, 1.0f, input.data(), in_,
               w_.value.data(), in_, 0.0f, cached_pre_.data(), out_);
  Tensor out{Shape{n, out_}};
  for (index_t i = 0; i < out.numel(); ++i) {
    cached_pre_[i] += c_;
    out[i] = int_pow(cached_pre_[i], degree_);
  }
  return out;
}

Tensor KervolutionDense::backward(const Tensor& grad_output) {
  QDNN_CHECK(!cached_pre_.empty(), name_ << ": backward before forward");
  const index_t n = cached_input_.dim(0);
  // d/du u^d = d·u^(d−1) — this factor is what blows up with depth.
  Tensor g_pre = grad_output;
  for (index_t i = 0; i < g_pre.numel(); ++i)
    g_pre[i] *= static_cast<float>(degree_) *
                int_pow(cached_pre_[i], degree_ - 1);
  linalg::gemm(true, false, out_, in_, n, 1.0f, g_pre.data(), out_,
               cached_input_.data(), in_, 1.0f, w_.grad.data(), in_);
  Tensor grad_input{Shape{n, in_}};
  linalg::gemm(false, false, n, in_, out_, 1.0f, g_pre.data(), out_,
               w_.value.data(), in_, 0.0f, grad_input.data(), in_);
  return grad_input;
}

std::vector<nn::Parameter*> KervolutionDense::parameters() { return {&w_}; }

KervolutionConv2d::KervolutionConv2d(index_t in_channels,
                                     index_t out_channels, index_t kernel,
                                     index_t stride, index_t padding,
                                     int degree, float c, Rng& rng,
                                     std::string name)
    : conv_(in_channels, out_channels, kernel, stride, padding, rng,
            /*bias=*/false, name + ".conv"),
      degree_(degree),
      c_(c),
      name_(std::move(name)) {
  QDNN_CHECK(degree >= 1, name_ << ": degree must be >= 1");
}

Tensor KervolutionConv2d::forward(const Tensor& input) {
  cached_pre_ = conv_.forward(input);
  Tensor out{cached_pre_.shape()};
  for (index_t i = 0; i < out.numel(); ++i) {
    cached_pre_[i] += c_;
    out[i] = int_pow(cached_pre_[i], degree_);
  }
  return out;
}

Tensor KervolutionConv2d::backward(const Tensor& grad_output) {
  QDNN_CHECK(!cached_pre_.empty(), name_ << ": backward before forward");
  Tensor g_pre = grad_output;
  for (index_t i = 0; i < g_pre.numel(); ++i)
    g_pre[i] *= static_cast<float>(degree_) *
                int_pow(cached_pre_[i], degree_ - 1);
  return conv_.backward(g_pre);
}

std::vector<nn::Parameter*> KervolutionConv2d::parameters() {
  return conv_.parameters();
}

}  // namespace qdnn::quadratic
