// Request/result types for the continuous-batching serving layer.
//
// A Request is one decode job: a source row plus decode policy (step
// budget, sampling head, priority class, optional deadline and streaming
// callback).  The scheduler assigns ids at submit() — or validates a
// caller-chosen id for uniqueness among in-flight requests — and returns
// RequestResults after retirement; tick counters let callers derive
// queueing delay (admit − submit), time-to-first-token (first_token −
// submit), decode time (finish − admit) and end-to-end latency (finish −
// submit) in batch-step units.
//
// Lifecycle: submit → route (serve::Server: join-shortest-queue across
// shards) → [queue, aging upward across priority classes / shed when the
// bounded queue is full] → prefill (encoder pass + cross-K/V projection;
// on the serving thread in synchronous mode, on a PrefillPool worker in
// async mode) → commit into a free batch row → step until
// eos/budget/cancel/deadline, streaming each token as it is sampled →
// retire.  The result's token buffer is reserved at submit and travels
// with the request through admission, so the scheduler's admit/retire
// ticks never heap-allocate (see serve/prefill.h and serve/scheduler.h).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/tensor.h"
#include "serve/sampling.h"

namespace qdnn::serve {

// Admission priority class: among queued requests, lower classes admit
// first.  Waiting requests age upward one class every
// BatchSchedulerConfig::age_ticks ticks, so a steady high-priority
// stream cannot starve low priority; within one effective class,
// admission is FIFO by submit order.
enum class Priority : index_t { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr index_t kPriorityClasses = 3;

// One streamed token, delivered to Request::on_token as it is sampled
// (not at retirement).  `index` is the 0-based position inside the
// request's output; `tick` is the scheduler tick that produced it.
struct StreamEvent {
  index_t id = -1;
  index_t token = -1;
  index_t index = 0;
  index_t tick = 0;
};

struct Request {
  // Source token ids, [Ts] or [1, Ts]; Ts must fit the session's
  // configured max_src.
  Tensor src_ids;
  // Valid (non-pad) source positions; 0 = all Ts valid.
  index_t src_length = 0;
  // Most tokens to emit; 0 = the scheduler's max_steps.  Must not exceed
  // max_steps (the self-attention ring capacity).
  index_t max_new_tokens = 0;
  // Per-request sampling head; greedy by default.
  SamplingConfig sampling;
  // Explicit request id, or -1 (default) to have the scheduler assign
  // one.  An explicit id must be unique among in-flight (unresolved)
  // requests — a duplicate is rejected at submit with a field-named
  // error; ids may be reused once their result has been produced.
  // serve::Server always assigns ids itself (globally unique, encoding
  // the shard), so callers routing through a Server leave this at -1.
  index_t id = -1;
  // Admission priority class (see Priority above).  Affects only WHEN
  // the request is admitted, never its tokens.
  Priority priority = Priority::kNormal;
  // Absolute scheduler tick by which the request must have retired; 0 =
  // no deadline.  At the start of any tick where ticks() >=
  // deadline_tick, the request resolves with FinishReason::kDeadline —
  // removed from the queue if still waiting, or retired mid-flight with
  // the tokens decoded so far, freeing its KV row for the next admit.
  index_t deadline_tick = 0;
  // Per-token streaming: invoked on the serving thread as each token is
  // sampled (eos is never delivered — it is not part of the output).
  // Keep it fast and non-blocking; under serve::Server it runs on the
  // shard's worker thread with the shard lock held, so it must not call
  // back into the Server.  Empty = no streaming.
  std::function<void(const StreamEvent&)> on_token;
};

enum class FinishReason {
  kEos,        // the model emitted eos
  kLength,     // the step budget ran out
  kError,      // prefill failed — tokens empty, error holds the cause
  kCancelled,  // cancel(id) resolved it (queued, prefilling, or mid-decode)
  kDeadline,   // deadline_tick passed before the request finished
  kShed,       // the bounded admission queue was full at submit
};

// Wall-clock phase breakdown of one request's lifecycle, derived from
// the scheduler's trace timestamps (steady-clock nanoseconds).  All
// fields are 0 when tracing (obs::trace_enabled()) was off when the
// request was submitted — the tick counters on RequestResult remain the
// always-on accounting.  For requests that never held a batch row
// (shed/error/cancelled-while-queued) only total_ns is populated.
struct RequestPhases {
  long long queue_ns = 0;        // submit → admission into a batch row
  long long prefill_ns = 0;      // the prime_compute window
  long long first_token_ns = 0;  // submit → first sampled token (0 = none)
  long long decode_ns = 0;       // admission → retirement
  long long total_ns = 0;        // submit → retirement
};

struct RequestResult {
  index_t id = -1;
  // Emitted token ids, bos/eos excluded — for a greedy request that ran
  // to eos/budget, exactly Transformer::greedy_decode of that source
  // alone.  A kCancelled/kDeadline result holds the tokens decoded so
  // far (a prefix of that solo decode for greedy requests).
  std::vector<index_t> tokens;
  FinishReason reason = FinishReason::kLength;
  // Failure description for kError/kShed (empty otherwise): a submitted
  // id is ALWAYS resolved by exactly one result — shed at submit, failed
  // on a pool worker, cancelled, expired, or decoded to completion.
  std::string error;
  Priority priority = Priority::kNormal;
  // Batch ticks this request spent decoding (== steps consumed).
  index_t decode_steps = 0;
  index_t submit_tick = 0;  // scheduler tick count at submit()
  // Tick at admission into a batch row, or -1 if the request never held
  // one (shed at submit, prefill error, cancelled or expired while
  // queued / in the pool) — mirrors first_token_tick, so queue wait
  // (admit_tick - submit_tick) is only computed for admitted requests.
  index_t admit_tick = -1;
  index_t finish_tick = 0;  // tick at retirement
  // Tick that sampled the request's first token, or -1 if none was
  // (error/shed/eos-first/cancelled-before-decode).  Time-to-first-token
  // in batch-step units is first_token_tick - submit_tick.
  index_t first_token_tick = -1;
  // Wall-clock phase durations (all zero unless tracing was enabled).
  RequestPhases phases;
};

}  // namespace qdnn::serve
