#include "train/scheduler.h"

#include <cmath>

namespace qdnn::train {

MultiStepLr::MultiStepLr(Sgd& optimizer, float base_lr,
                         std::vector<index_t> milestones, float gamma)
    : optimizer_(&optimizer),
      base_lr_(base_lr),
      milestones_(std::move(milestones)),
      gamma_(gamma) {}

float MultiStepLr::lr_at(index_t epoch) const {
  float lr = base_lr_;
  for (index_t m : milestones_)
    if (epoch >= m) lr *= gamma_;
  return lr;
}

void MultiStepLr::set_epoch(index_t epoch) {
  optimizer_->set_lr(lr_at(epoch));
}

WarmupInvSqrt::WarmupInvSqrt(Sgd& optimizer, float peak_lr,
                             index_t warmup_steps)
    : set_lr_([&optimizer](float lr) { optimizer.set_lr(lr); }),
      peak_lr_(peak_lr),
      warmup_steps_(warmup_steps) {
  QDNN_CHECK(warmup_steps > 0, "WarmupInvSqrt: warmup_steps positive");
}

WarmupInvSqrt::WarmupInvSqrt(Adam& optimizer, float peak_lr,
                             index_t warmup_steps)
    : set_lr_([&optimizer](float lr) { optimizer.set_lr(lr); }),
      peak_lr_(peak_lr),
      warmup_steps_(warmup_steps) {
  QDNN_CHECK(warmup_steps > 0, "WarmupInvSqrt: warmup_steps positive");
}

float WarmupInvSqrt::lr_at(index_t step) const {
  if (step < 1) step = 1;
  const double warm = static_cast<double>(warmup_steps_);
  const double s = static_cast<double>(step);
  const double factor =
      std::min(s / warm, std::sqrt(warm) / std::sqrt(s));
  return static_cast<float>(peak_lr_ * factor);
}

void WarmupInvSqrt::step() {
  ++step_count_;
  set_lr_(lr_at(step_count_));
}

}  // namespace qdnn::train
