// Dense (fully-connected) quadratic layers — one class per family of the
// paper's Table I, all mapping [N, in] -> [N, out].
//
// A layer hosts `units` independent neurons of its family.  For the
// proposed neuron each unit emits rank+1 values (its quadratic output y
// followed by the intermediate features fᵏ = (Qᵏ)ᵀx, Sec. III-B), so the
// layer output width is units·(rank+1); all other families emit one value
// per unit.
//
// Output channel layout of ProposedQuadraticDense (unit u, rank k):
//   column u·(k+1)      : y_u = w_uᵀx + b_u + (fᵏ_u)ᵀ Λᵏ_u fᵏ_u
//   column u·(k+1)+1+i  : (fᵏ_u)_i,  i = 0…k−1
#pragma once

#include "linalg/packed_weights.h"
#include "nn/init.h"
#include "nn/module.h"
#include "quadratic/neuron_spec.h"

namespace qdnn::quadratic {

// ---------------------------------------------------------------------------
// Proposed neuron (this paper): {xᵀQᵏΛᵏ(Qᵏ)ᵀx + wᵀx + b, (Qᵏ)ᵀx}.
// ---------------------------------------------------------------------------
class ProposedQuadraticDense : public nn::Module {
 public:
  // emit_features = false disables the vectorized output (sum-only
  // ablation): the layer emits one y per unit and fᵏ stays internal.
  ProposedQuadraticDense(index_t in_features, index_t units, index_t rank,
                         Rng& rng, float lambda_lr_scale = 1e-3f,
                         std::string name = "proposed_fc",
                         bool emit_features = true);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  // v2: both GEMMs and the {y, fᵏ} interleave run on borrowed memory.
  Shape output_shape(const Shape& input_shape) const override;
  bool supports_forward_into() const override { return true; }
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;

  // Freeze caches Wᵀ and Qᵀ as PackedWeights — no per-call trans_b pack.
  void freeze() override;
  void unfreeze() override;

  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return name_; }

  index_t in_features() const { return in_; }
  index_t units() const { return units_; }
  index_t rank() const { return rank_; }
  bool emit_features() const { return emit_features_; }
  index_t out_features() const {
    return units_ * (emit_features_ ? rank_ + 1 : 1);
  }

  nn::Parameter& w() { return w_; }
  nn::Parameter& q() { return q_; }
  nn::Parameter& lambda() { return lambda_; }
  nn::Parameter& bias() { return b_; }

 private:
  index_t in_, units_, rank_;
  bool emit_features_;
  std::string name_;
  nn::Parameter w_;       // [units, in]            linear part
  nn::Parameter q_;       // [units*rank, in]       (Qᵏ)ᵀ rows, unit-major
  nn::Parameter lambda_;  // [units, rank]          diagonal of Λᵏ per unit
  nn::Parameter b_;       // [units]
  Tensor cached_input_;   // [N, in]
  Tensor cached_f_;       // [N, units*rank]
  linalg::PackedWeights packed_w_;  // Wᵀ, cached by freeze()
  linalg::PackedWeights packed_q_;  // Qᵀ, cached by freeze()
};

// ---------------------------------------------------------------------------
// General quadratic neuron [17] (include_linear) / pure quadratic [16].
//   y = xᵀ M x (+ wᵀx + b)
// Dense parameterization — O(n²) per unit; used at small n for tests,
// complexity benches and as the source of proposed-layer conversion.
// ---------------------------------------------------------------------------
class GeneralQuadraticDense : public nn::Module {
 public:
  GeneralQuadraticDense(index_t in_features, index_t units, Rng& rng,
                        bool include_linear = true,
                        std::string name = "general_fc");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  Shape output_shape(const Shape& input_shape) const override;
  bool supports_forward_into() const override { return true; }
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;

  // The dense-M forward is gemv-driven (no per-call weight pack), so
  // freeze only releases training caches.
  void freeze() override;

  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return name_; }

  index_t in_features() const { return in_; }
  index_t units() const { return units_; }
  bool include_linear() const { return include_linear_; }

  nn::Parameter& m() { return m_; }
  nn::Parameter& w() { return w_; }
  nn::Parameter& bias() { return b_; }

 private:
  index_t in_, units_;
  bool include_linear_;
  std::string name_;
  nn::Parameter m_;  // [units, in, in]
  nn::Parameter w_;  // [units, in]   (empty when !include_linear)
  nn::Parameter b_;  // [units]       (empty when !include_linear)
  Tensor cached_input_;
};

// ---------------------------------------------------------------------------
// Low-rank quadratic neuron [18]: y = xᵀ Q₁ Q₂ᵀ x + wᵀx + b.
// ---------------------------------------------------------------------------
class LowRankQuadraticDense : public nn::Module {
 public:
  LowRankQuadraticDense(index_t in_features, index_t units, index_t rank,
                        Rng& rng, std::string name = "lowrank_fc");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  Shape output_shape(const Shape& input_shape) const override;
  bool supports_forward_into() const override { return true; }
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;

  // Freeze caches Q₁ᵀ, Q₂ᵀ and Wᵀ as PackedWeights.
  void freeze() override;
  void unfreeze() override;

  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return name_; }

  index_t rank() const { return rank_; }

 private:
  index_t in_, units_, rank_;
  std::string name_;
  nn::Parameter q1_;  // [units*rank, in]
  nn::Parameter q2_;  // [units*rank, in]
  nn::Parameter w_;   // [units, in]
  nn::Parameter b_;   // [units]
  Tensor cached_input_;
  Tensor cached_a_;   // Q₁ᵀx per unit: [N, units*rank]
  Tensor cached_c_;   // Q₂ᵀx per unit: [N, units*rank]
  linalg::PackedWeights packed_q1_, packed_q2_, packed_w_;
};

// ---------------------------------------------------------------------------
// Rank-1 factored families.
//   kQuad1 [19]: y = (w₁ᵀx + b₁)(w₂ᵀx + b₂) + w₃ᵀ(x⊙x) + c
//   kQuad2 [21]: y = (w₁ᵀx)(w₂ᵀx) + w₃ᵀx + c
//   kBuKarpatne [23]: y = (w₁ᵀx)(w₂ᵀx) + w₁ᵀx + c
// ---------------------------------------------------------------------------
class FactoredQuadraticDense : public nn::Module {
 public:
  FactoredQuadraticDense(index_t in_features, index_t units, NeuronKind mode,
                         Rng& rng, std::string name = "factored_fc");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  Shape output_shape(const Shape& input_shape) const override;
  bool supports_forward_into() const override { return true; }
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;

  // Freeze caches W₁ᵀ, W₂ᵀ (and W₃ᵀ when present) as PackedWeights.
  void freeze() override;
  void unfreeze() override;

  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return name_; }

  NeuronKind mode() const { return mode_; }

 private:
  bool has_w3() const { return mode_ != NeuronKind::kBuKarpatne; }
  bool squares_input() const { return mode_ == NeuronKind::kQuad1; }
  bool has_inner_bias() const { return mode_ == NeuronKind::kQuad1; }

  index_t in_, units_;
  NeuronKind mode_;
  std::string name_;
  nn::Parameter w1_, w2_, w3_;  // [units, in] each (w3 empty for Bu)
  nn::Parameter b1_, b2_, c_;   // [units] (b1/b2 only for kQuad1)
  Tensor cached_input_;
  Tensor cached_a_;  // w₁ᵀx (+b₁): [N, units]
  Tensor cached_b_;  // w₂ᵀx (+b₂): [N, units]
  linalg::PackedWeights packed_w1_, packed_w2_, packed_w3_;
};

// Factory: builds a dense layer of `spec.kind` producing exactly
// `out_features` outputs.  For the proposed neuron, out_features must be a
// multiple of (rank+1) — the model layers size themselves accordingly.
nn::ModulePtr make_dense_neuron(const NeuronSpec& spec, index_t in_features,
                                index_t out_features, Rng& rng,
                                std::string name);

}  // namespace qdnn::quadratic
