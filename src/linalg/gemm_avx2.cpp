// AVX2/FMA backend: 6x16 register-tiled microkernel.
//
// This translation unit is the only one compiled with -mavx2 -mfma
// (CMake sets per-source flags), so the rest of the library keeps the
// baseline ISA and the runtime CPUID check in gemm_dispatch.cpp decides
// whether these kernels may run.
//
// Tile shape: 6 rows of A x one 16-column B panel, accumulated in 12
// ymm registers.  Per k step: 2 B loads (or masked loads on the ragged
// tail panel), 6 A broadcasts, 12 FMAs — FMA-throughput-bound on any
// AVX2 core.  Ragged m runs 1..5-row variants of the same tile; every
// variant issues the identical per-row FMA sequence over p, which is
// what keeps results independent of batch position and of row sharding
// (the bit-identity contracts upstream rely on exactly this).
#include "linalg/gemm_kernels.h"

#if defined(QDNN_SIMD_AVX2)

#include <immintrin.h>

namespace qdnn::linalg::detail {

namespace {

// All-ones prefix mask for the first `lanes` (0..8) of a ymm vector.
inline __m256i prefix_mask(index_t lanes) {
  alignas(32) static constexpr int kMask[16] = {-1, -1, -1, -1, -1, -1,
                                                -1, -1, 0,  0,  0,  0,
                                                0,  0,  0,  0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMask + 8 - lanes));
}

// One MR x 16 tile: C[0..MR) rows x columns [0, nr) of the panel at
// (bbase, bstride).  TAIL masks the B loads and C stores to nr valid
// columns; masked B lanes read as 0.0f, so the FMA stream over the tail
// panel is lane-for-lane identical to a zero-padded tile-panel pack.
template <int MR, bool TAIL>
inline void tile(const float* a, index_t lda, const float* bbase,
                 index_t bstride, index_t k, float alpha, float* c,
                 index_t ldc, index_t nr) {
  __m256 acc[MR][2];
  for (int i = 0; i < MR; ++i) {
    acc[i][0] = _mm256_setzero_ps();
    acc[i][1] = _mm256_setzero_ps();
  }
  __m256i m0, m1;
  if (TAIL) {
    m0 = prefix_mask(nr < 8 ? nr : 8);
    m1 = prefix_mask(nr > 8 ? nr - 8 : 0);
  }
  for (index_t p = 0; p < k; ++p) {
    const float* bp = bbase + p * bstride;
    const __m256 b0 =
        TAIL ? _mm256_maskload_ps(bp, m0) : _mm256_loadu_ps(bp);
    const __m256 b1 =
        TAIL ? _mm256_maskload_ps(bp + 8, m1) : _mm256_loadu_ps(bp + 8);
    for (int i = 0; i < MR; ++i) {
      const __m256 av = _mm256_broadcast_ss(a + i * lda + p);
      acc[i][0] = _mm256_fmadd_ps(av, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(av, b1, acc[i][1]);
    }
  }
  const __m256 va = _mm256_set1_ps(alpha);
  for (int i = 0; i < MR; ++i) {
    float* cp = c + i * ldc;
    if (!TAIL) {
      _mm256_storeu_ps(
          cp, _mm256_fmadd_ps(va, acc[i][0], _mm256_loadu_ps(cp)));
      _mm256_storeu_ps(
          cp + 8, _mm256_fmadd_ps(va, acc[i][1], _mm256_loadu_ps(cp + 8)));
    } else {
      _mm256_maskstore_ps(
          cp, m0,
          _mm256_fmadd_ps(va, acc[i][0], _mm256_maskload_ps(cp, m0)));
      if (nr > 8)
        _mm256_maskstore_ps(
            cp + 8, m1,
            _mm256_fmadd_ps(va, acc[i][1],
                            _mm256_maskload_ps(cp + 8, m1)));
    }
  }
}

template <bool TAIL>
inline void tile_rows(int mr, const float* a, index_t lda,
                      const float* bbase, index_t bstride, index_t k,
                      float alpha, float* c, index_t ldc, index_t nr) {
  switch (mr) {
    case 6: tile<6, TAIL>(a, lda, bbase, bstride, k, alpha, c, ldc, nr); break;
    case 5: tile<5, TAIL>(a, lda, bbase, bstride, k, alpha, c, ldc, nr); break;
    case 4: tile<4, TAIL>(a, lda, bbase, bstride, k, alpha, c, ldc, nr); break;
    case 3: tile<3, TAIL>(a, lda, bbase, bstride, k, alpha, c, ldc, nr); break;
    case 2: tile<2, TAIL>(a, lda, bbase, bstride, k, alpha, c, ldc, nr); break;
    case 1: tile<1, TAIL>(a, lda, bbase, bstride, k, alpha, c, ldc, nr); break;
    default: break;
  }
}

}  // namespace

void gemm_kernel_avx2(index_t m, index_t n, index_t k, float alpha,
                      const float* a, index_t lda, const BDesc& b,
                      float* c, index_t ldc) {
  constexpr int kMr = 6;
  for (index_t j0 = 0; j0 < n; j0 += kPanelWidth) {
    const index_t nr = std::min(kPanelWidth, n - j0);
    const bool tail = nr < kPanelWidth;
    // Both B layouts collapse to (base, stride) per panel: row-major
    // strides by ld, a tile-panel pack strides by the panel width.
    const float* bbase =
        b.panel ? b.data + (j0 / kPanelWidth) * k * kPanelWidth
                : b.data + j0;
    const index_t bstride = b.panel ? kPanelWidth : b.ld;
    index_t i = 0;
    for (; i + kMr <= m; i += kMr) {
      if (tail)
        tile<6, true>(a + i * lda, lda, bbase, bstride, k, alpha,
                      c + i * ldc + j0, ldc, nr);
      else
        tile<6, false>(a + i * lda, lda, bbase, bstride, k, alpha,
                       c + i * ldc + j0, ldc, nr);
    }
    if (i < m) {
      const int mr = static_cast<int>(m - i);
      if (tail)
        tile_rows<true>(mr, a + i * lda, lda, bbase, bstride, k, alpha,
                        c + i * ldc + j0, ldc, nr);
      else
        tile_rows<false>(mr, a + i * lda, lda, bbase, bstride, k, alpha,
                         c + i * ldc + j0, ldc, nr);
    }
  }
}

float dot_avx2(const float* a, const float* b, index_t n) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
  index_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           _mm256_loadu_ps(b + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8)
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  const __m256 s = _mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                 _mm256_add_ps(acc2, acc3));
  __m128 lo = _mm256_castps256_ps128(s);
  const __m128 hi = _mm256_extractf128_ps(s, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  float sum = _mm_cvtss_f32(lo);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

void axpy_avx2(index_t n, float alpha, const float* x, float* y) {
  const __m256 va = _mm256_set1_ps(alpha);
  index_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
  for (; i < n; ++i) y[i] += alpha * x[i];
}

}  // namespace qdnn::linalg::detail

#endif  // QDNN_SIMD_AVX2
