// Synthetic class-conditional image generator — the repository's offline
// substitute for CIFAR-10/100 and the ImageNet subset (see DESIGN.md).
//
// Each class is defined by (a) a low-frequency *shape* (parametric mask:
// disc, ring, box, bars, cross, …) and (b) an oriented *texture grating*
// whose frequency/orientation are class-specific but whose PHASE is random
// per sample.  Random phase makes the texture cue second-order: its mean
// is ~0 everywhere, so a linear filter cannot detect it reliably, while a
// quadratic neuron can respond to its energy.  This preserves the paper's
// central qualitative property (quadratic neurons reach the same accuracy
// with fewer parameters) and its Fig. 8 observation (the quadratic
// response tracks whole-object/low-frequency structure).
#pragma once

#include <vector>

#include "core/rng.h"
#include "core/tensor.h"

namespace qdnn::data {

struct SyntheticImageConfig {
  index_t num_classes = 10;
  index_t image_size = 20;   // square images
  index_t channels = 3;
  float noise_std = 0.3f;    // i.i.d. pixel noise
  float texture_amp = 0.9f;  // amplitude of the class grating
  float shape_amp = 0.6f;    // amplitude of the shape mask
};

struct ImageDataset {
  Tensor images;                 // [N, C, H, W]
  std::vector<index_t> labels;   // N class indices
  index_t num_classes = 0;

  index_t size() const { return images.empty() ? 0 : images.dim(0); }
};

// Generates `count` samples with balanced class frequencies (round-robin
// assignment, order shuffled).
ImageDataset make_synthetic_images(const SyntheticImageConfig& config,
                                   index_t count, std::uint64_t seed);

// Renders one clean (noise-free) class prototype — used by the Fig. 8
// response-visualization bench, where the paper feeds single images.
Tensor render_class_prototype(const SyntheticImageConfig& config,
                              index_t label, std::uint64_t seed);

}  // namespace qdnn::data
