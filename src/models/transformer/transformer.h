// Encoder–decoder Transformer ("Attention Is All You Need" topology) with
// pluggable attention projections — the Table II experiment vehicle.
//
// The baseline uses linear projections of width d_model.  The quadratic
// configuration replaces all MHA projections with the proposed neuron and
// narrows the projection width (`proj_dim`), which is how the paper's
// quadratic Transformer reaches −20.3% parameters at equal/better BLEU:
// each quadratic neuron emits k+1 values, so fewer (and more expressive)
// neurons produce the attention features.
#pragma once

#include <memory>

#include "models/transformer/attention.h"
#include "models/transformer/feedforward.h"
#include "models/transformer/positional.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/layernorm.h"

namespace qdnn::models {

struct TransformerConfig {
  index_t src_vocab = 512;
  index_t tgt_vocab = 512;
  index_t d_model = 64;
  index_t n_heads = 4;
  index_t n_layers = 2;
  index_t d_ff = 128;
  // Width of the Q/K/V projections; d_model for the standard model,
  // reduced for the quadratic configuration.  Must divide by n_heads (and
  // by rank+1 when spec is the proposed neuron).
  index_t proj_dim = 64;
  index_t max_len = 64;
  float dropout = 0.1f;
  quadratic::NeuronSpec spec;  // family for the MHA projections
  std::uint64_t seed = 1;
};

// One pre-norm-free encoder block: self-attn (+res, LN), FFN (+res, LN).
//
// Also a Module: the single-Tensor overrides run the block on [N, T, D]
// with full-length (unpadded) attention — the serving layout — and
// flatten_into exposes the block as primitive stages (attention,
// residual-add, LayerNorm, FFN sublayers) so runtime::InferenceSession
// serves the encoder layer-by-layer with native kernels.  Dropout is
// skipped in the flattened pipeline: it is exactly identity in eval mode.
class EncoderLayer : public nn::Module {
 public:
  EncoderLayer(const TransformerConfig& config, Rng& rng, std::string name);

  // Training entry: flattened [N·T, D] activations with padding lengths.
  Tensor forward(const Tensor& x, index_t n, index_t t,
                 const std::vector<index_t>& lengths);

  // Module API.  forward accepts [N, T, D] (serving) or the gradient
  // layout matching the last forward for backward.
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad) override;
  Shape output_shape(const Shape& input_shape) const override;
  bool supports_forward_into() const override;
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;

  // Key-padding-masked native block on [N, T, D] — the monolithic twin of
  // the flatten_into stage plan plus per-sample masking: masked self-attn
  // (+res, LN), FFN (+res, LN), same operation order as the training
  // forward (dropout is identity in eval mode), bit-identical to it on
  // the same ragged batch.  lengths[s] ∈ [1, T] counts sample s's valid
  // source positions (null: all T valid).  All scratch comes from `ws`
  // and no member state is written, so concurrent calls are safe.
  void forward_masked_into(const ConstTensorView& input,
                           const TensorView& output, const index_t* lengths,
                           Workspace& ws);

  void flatten_into(std::vector<nn::PipelineStage>& stages) override;
  void freeze() override;
  void unfreeze() override;
  std::vector<nn::Parameter*> parameters() override;
  void set_training(bool training) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  index_t d_model_;
  MultiHeadAttention self_attn_;
  nn::Dropout drop1_;
  nn::LayerNorm ln1_;
  FeedForward ffn_;
  nn::Dropout drop2_;
  nn::LayerNorm ln2_;
};

// One decoder block: causal self-attn (+res, LN), cross-attn over the
// encoder output (+res, LN), FFN (+res, LN).
//
// Also a Module — the serving face of the block is the *decode step*:
// forward_into maps the new token's activations [N, D] through the whole
// block against session-bound KV caches (causal masking is implicit in
// the self-attention cache length), and flatten_into exposes the step as
// primitive stages (attention steps, residual-adds, LayerNorms, FFN
// sublayers) so runtime::DecodeSession drives it with the PR 2 stage
// kernels.  The single-Tensor forward is a checked error (the block needs
// the encoder context); training flows through the multi-arg overloads.
class DecoderLayer : public nn::Module {
 public:
  DecoderLayer(const TransformerConfig& config, Rng& rng, std::string name);

  // Training entry: flattened [N·Tt, D] activations.
  Tensor forward(const Tensor& y, const Tensor& enc_out, index_t n,
                 index_t tt, index_t ts,
                 const std::vector<index_t>& src_lengths);
  // Returns {grad_y, grad_enc_out}.  (Named distinctly from the Module
  // backward override, which differs only in return type.)
  std::pair<Tensor, Tensor> backward_dual(const Tensor& grad);

  // Module API.  forward/backward are checked errors (two-input layer);
  // forward_into runs one KV-cached decode step on [N, D] and requires
  // the attention steps to be bound by a DecodeSession.
  Tensor forward(const Tensor&) override;
  Tensor backward(const Tensor&) override;
  Shape output_shape(const Shape& input_shape) const override;
  bool supports_forward_into() const override;
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;
  void flatten_into(std::vector<nn::PipelineStage>& stages) override;
  void freeze() override;
  void unfreeze() override;
  std::vector<nn::Parameter*> parameters() override;
  void set_training(bool training) override;
  std::string name() const override { return name_; }

  // Session bind points.
  MultiHeadAttention& self_attention() { return self_attn_; }
  MultiHeadAttention& cross_attention() { return cross_attn_; }
  SelfAttentionStep& self_step() { return self_step_; }
  CrossAttentionStep& cross_step() { return cross_step_; }

 private:
  std::string name_;
  index_t d_model_;
  MultiHeadAttention self_attn_;
  nn::Dropout drop1_;
  nn::LayerNorm ln1_;
  MultiHeadAttention cross_attn_;
  nn::Dropout drop2_;
  nn::LayerNorm ln2_;
  FeedForward ffn_;
  nn::Dropout drop3_;
  nn::LayerNorm ln3_;
  SelfAttentionStep self_step_;
  CrossAttentionStep cross_step_;
};

class Transformer {
 public:
  explicit Transformer(const TransformerConfig& config);

  // Teacher-forced training pass.
  // src_ids: [N, Ts]; tgt_in_ids: [N, Tt] (shifted-right target).
  // Returns logits [N·Tt, tgt_vocab].
  Tensor forward_train(const Tensor& src_ids, const Tensor& tgt_in_ids,
                       const std::vector<index_t>& src_lengths);

  // Backward from dL/d(logits); accumulates all parameter gradients.
  void backward(const Tensor& grad_logits);

  // Greedy autoregressive decoding (inference).  Returns one id sequence
  // per sample, each ending at eos or max_steps.  Served through a
  // KV-cached runtime::DecodeSession (O(T) per emitted token) and
  // bit-identical to greedy_decode_reference; switches the model to eval
  // mode (decoding through train-mode dropout was never meaningful).
  // max_steps counts emitted tokens: the implicit bos occupies position 0
  // and step s embeds position s, so max_steps may equal max_len exactly;
  // max_steps == 0 returns empty sequences without touching the model.
  std::vector<std::vector<index_t>> greedy_decode(
      const Tensor& src_ids, const std::vector<index_t>& src_lengths,
      index_t bos, index_t eos, index_t max_steps);

  // The legacy teacher-forced decoder: re-runs every decoder layer over
  // the growing prefix each step (O(T²) per sequence) — kept as the
  // regression oracle for the KV-cached path and as the uncached side of
  // bench/table2_transformer.  Rows that emitted eos are compacted out of
  // the batch instead of being re-decoded.
  std::vector<std::vector<index_t>> greedy_decode_reference(
      const Tensor& src_ids, const std::vector<index_t>& src_lengths,
      index_t bos, index_t eos, index_t max_steps);

  std::vector<nn::Parameter*> parameters();
  void set_training(bool training);
  // Serving bind/unbind over the whole model (both embeddings, encoder
  // and decoder stacks, output projection): prepack constant GEMM
  // operands and drop training caches.  Mutating parameters afterwards
  // leaves the packs stale — unfreeze() (or freeze() again) after any
  // weight update.
  void freeze();
  void unfreeze();
  index_t num_parameters();

  const TransformerConfig& config() const { return config_; }

  // Encoder forward on token ids — public so the serving facade
  // (TransformerEncoder) and equivalence tests share the training path.
  // Returns flattened [N·Ts, D].
  Tensor encode(const Tensor& src_ids,
                const std::vector<index_t>& src_lengths);

  // Serving access for TransformerEncoder.
  nn::Embedding& src_embedding() { return *src_embed_; }
  const PositionalEncoding& positional() const { return pos_; }
  index_t num_encoder_layers() const {
    return static_cast<index_t>(encoder_.size());
  }
  EncoderLayer& encoder_layer(index_t i) {
    return *encoder_[static_cast<std::size_t>(i)];
  }

  // Serving access for runtime::DecodeSession.
  nn::Embedding& tgt_embedding() { return *tgt_embed_; }
  index_t num_decoder_layers() const {
    return static_cast<index_t>(decoder_.size());
  }
  DecoderLayer& decoder_layer(index_t i) {
    return *decoder_[static_cast<std::size_t>(i)];
  }
  nn::Linear& output_projection() { return *out_proj_; }

 private:
  Tensor decode(const Tensor& tgt_in_ids, const Tensor& enc_out, index_t ts,
                const std::vector<index_t>& src_lengths);

  TransformerConfig config_;
  Rng rng_;
  std::unique_ptr<nn::Embedding> src_embed_;
  std::unique_ptr<nn::Embedding> tgt_embed_;
  PositionalEncoding pos_;
  std::vector<std::unique_ptr<EncoderLayer>> encoder_;
  std::vector<std::unique_ptr<DecoderLayer>> decoder_;
  std::unique_ptr<nn::Linear> out_proj_;
  // Forward caches for backward.
  index_t n_ = 0, ts_ = 0, tt_ = 0;
  std::vector<index_t> src_lengths_;
};

// Serving facade over the encoder stack of a Transformer: one Module
// mapping src ids [N, T] → encoder output [N, T, D], whose flatten_into
// yields the native stage pipeline
//   embed → scale+positional → (attention, +res, LN, FFN, +res, LN)ᴸ
// so an InferenceSession serves the encoder layer-by-layer,
// allocation-free, bit-identical to Transformer::encode with full-length
// (unpadded) sequences.  Non-owning: the Transformer must outlive the
// facade and any session holding it.
class TransformerEncoder : public nn::Module {
 public:
  explicit TransformerEncoder(Transformer& model);

  Tensor forward(const Tensor& src_ids) override;  // [N, T] → [N, T, D]
  Tensor backward(const Tensor& grad_output) override;  // checked error
  Shape output_shape(const Shape& input_shape) const override;
  bool supports_forward_into() const override;
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;

  // Masked native encoder pass: src ids [N, T] → encoder output
  // [N, T, D], entirely through forward_into stages (embed →
  // scale+positional → masked block per layer) against the caller's
  // workspace — no Tensor allocations, no module caches, no shared
  // mutable state, so concurrent calls against one Transformer are safe
  // (each caller brings its own `ws`).  src_lengths[s] ∈ [1, T] counts
  // sample s's valid source positions (null: all T valid); masked key
  // tails get exact-zero softmax weights, making the result bit-identical
  // to Transformer::encode on the same ragged batch.  Never resets `ws`
  // (the caller owns reset points), so the whole pass stacks in one
  // workspace frame — warm the workspace once at the maximum shape and
  // every later call is zero-alloc.
  void encode_into(const ConstTensorView& src_ids, const TensorView& output,
                   const index_t* src_lengths, Workspace& ws);

  void flatten_into(std::vector<nn::PipelineStage>& stages) override;
  void freeze() override;
  void unfreeze() override;
  std::vector<nn::Parameter*> parameters() override;
  void set_training(bool training) override;
  std::string name() const override { return "transformer_encoder"; }

 private:
  Transformer* model_;
  PositionalScale scale_pos_;
};

}  // namespace qdnn::models
