#include "core/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace qdnn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  const int n = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalWithParams) {
  Rng rng(10);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng rng(11);
  std::set<index_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const index_t v = rng.uniform_int(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit in 1000 draws
  EXPECT_THROW(rng.uniform_int(0), std::runtime_error);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(12);
  const auto perm = rng.permutation(100);
  std::set<index_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0);
  EXPECT_EQ(*unique.rbegin(), 99);
}

TEST(Rng, PermutationShuffles) {
  Rng rng(13);
  const auto perm = rng.permutation(100);
  index_t fixed = 0;
  for (index_t i = 0; i < 100; ++i)
    if (perm[static_cast<std::size_t>(i)] == i) ++fixed;
  EXPECT_LT(fixed, 10);  // expected ~1 fixed point
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(14);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng rng(15);
  Rng child = rng.split();
  // The child stream should differ from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (rng.next_u64() == child.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, FillHelpers) {
  Rng rng(16);
  Tensor u{Shape{1000}};
  rng.fill_uniform(u, -2.0f, 2.0f);
  EXPECT_GE(u.min(), -2.0f);
  EXPECT_LT(u.max(), 2.0f);
  Tensor g{Shape{10000}};
  rng.fill_normal(g, 1.0f, 0.5f);
  EXPECT_NEAR(g.mean(), 1.0f, 0.05f);
}

TEST(Rng, ReseedResets) {
  Rng rng(17);
  const auto a = rng.next_u64();
  rng.reseed(17);
  EXPECT_EQ(rng.next_u64(), a);
}

}  // namespace
}  // namespace qdnn
