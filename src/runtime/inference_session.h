// InferenceSession: the serving facade over a trained model.
//
// A session takes ownership of a built Module and prepares everything a
// hot serving loop needs exactly once — the build → bind/freeze → run
// lifecycle:
//
//   * the model is switched to eval mode and flattened into per-layer
//     stages via Module::flatten_into.  Composite modules (Sequential,
//     ResNet, the Transformer encoder) expand into primitive native
//     stages, including explicit residual-add stages that reference
//     earlier activation boundaries; any other module runs as a single
//     stage through its forward_into (native or legacy-adapted);
//   * unless config.freeze is off, Module::freeze runs once: constant
//     weight matrices are prepacked (linalg::PackedWeights), so requests
//     perform no per-call gemm packing and the packing scratch drops out
//     of the workspace watermark (asserted by
//     tests/runtime/session_test.cpp);
//   * per-stage output shapes are precomputed via Module::output_shape,
//     and boundary buffers are planned by liveness — a pure chain gets the
//     classic two ping-pong buffers, residual pipelines hold a boundary
//     alive exactly until its last reader;
//   * each shard owns private boundary buffers for its row range (shards
//     run the pipeline without a stage barrier, so intermediates must not
//     be shared), while every final-stage output lands in one shared
//     output buffer at the shard's disjoint row slice;
//   * each shard owns a Workspace whose watermark is discovered by a
//     warm-up pass and then consolidated into one contiguous block.
//
// After warm-up, run() on a fixed batch size performs ZERO heap
// allocations through every stage with a native forward_into (asserted by
// tests/runtime/session_test.cpp with a counting global allocator).
// Changing the batch size re-binds the internal views (a handful of small
// allocations), then the new size is again allocation-free.
//
// num_threads > 1 shards the batch rows across a small persistent thread
// pool.  This requires every module stage to have a native forward_into
// (the legacy adapter mutates per-module caches shared by all shards, so
// the constructor rejects sharded sessions over unmigrated modules) and
// relies on stages being per-sample independent at inference, which
// holds for all qdnn layers in eval mode (BatchNorm uses running stats).
// Results are bit-identical to the single-threaded path.
//
// Thread-safety: run() is synchronous and not reentrant; drive one
// session per serving thread or serialize callers.
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "core/workspace.h"
#include "nn/module.h"
#include "obs/profile.h"

namespace qdnn::runtime {

struct SessionConfig {
  // Per-sample input shape, without the batch dimension — e.g. {in} for
  // dense models, {C, H, W} for image models, {T} for token-id models.
  Shape sample_shape;
  // Largest batch run() will be asked to serve (activation buffers are
  // sized for it).
  index_t max_batch = 1;
  // 1 runs inline; >1 shards batch rows across a persistent pool.
  int num_threads = 1;
  // Run one dummy pass at construction so the workspace watermark is
  // discovered (and consolidated) before the first real request.
  bool warmup = true;
  // Invoke Module::freeze at bind time: prepack constant weights and drop
  // training caches.  Off only for A/B measurement (bench/micro_ops) —
  // results are bit-identical either way.
  bool freeze = true;
};

class InferenceSession {
 public:
  InferenceSession(nn::ModulePtr model, SessionConfig config);
  ~InferenceSession();

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  // Serves one batch [n, sample_shape...], n in [1, max_batch].  The
  // returned view aliases an internal activation buffer and is valid
  // until the next run() call (copy it out with to_tensor() to keep it).
  // Views pass and return by reference so the steady-state path never
  // copies a Shape.
  const ConstTensorView& run(const Tensor& batch);
  const ConstTensorView& run(const ConstTensorView& batch);

  // Logits shape for a given batch size.
  Shape output_shape(index_t batch_size) const;

  index_t max_batch() const { return config_.max_batch; }
  int num_threads() const { return static_cast<int>(shards_.size()); }
  index_t num_stages() const { return static_cast<index_t>(stages_.size()); }
  // The flattened stage plan (residual-add stages have a null module).
  const std::vector<nn::PipelineStage>& pipeline() const { return stages_; }
  // Output shape of one stage's boundary for a given batch size.
  Shape stage_output_shape(index_t stage, index_t batch_size) const;
  // True when every module stage has a native (allocation-free)
  // forward_into (residual-add stages are native by construction).
  bool fully_native() const;
  // True when the model was frozen at bind time.
  bool frozen() const { return config_.freeze; }
  // Footprint introspection, in floats.
  index_t activation_floats() const;
  index_t workspace_floats() const;

  // Per-stage wall-time accumulated by run() while tracing is enabled
  // (obs::trace_enabled()): one entry per pipeline stage, shard
  // accumulators summed (each shard times its own row range — no shared
  // writes).  Two clock reads per stage per shard pass while tracing,
  // nothing when off.  Allocates only the returned vector.  Not
  // thread-safe with a concurrent run() — read between requests.
  std::vector<obs::StageTiming> stage_profile() const;

  const nn::Module& model() const { return *model_; }

 private:
  // One contiguous row-range of the batch, processed end-to-end by one
  // thread.  Intermediate boundaries live in the shard's private
  // liveness-planned buffers (shards are not stage-synchronized, so
  // sharing them would race); only the final stage writes the shared
  // output buffer, at this shard's disjoint row slice.  Views over the
  // pipeline input are re-pointed at the caller's data every run.
  struct Shard {
    index_t row_begin = 0;
    index_t rows = 0;
    std::vector<Tensor> buffers;             // one per planned slot
    std::vector<ConstTensorView> in_views;   // per stage
    std::vector<ConstTensorView> add_views;  // per stage (add stages only)
    std::vector<TensorView> out_views;       // per stage
    Workspace ws;
    // Stage profiling accumulators, one per stage, written only by this
    // shard's thread while tracing is enabled (stage_profile() sums them).
    std::vector<long long> stage_ns;
    std::vector<long long> stage_calls;
  };

  void plan_buffers();
  std::vector<Shape> boundary_shapes(index_t n) const;
  void bind(index_t n);
  void run_shard(Shard& shard, const float* input) const;
  const ConstTensorView& run_impl(const float* data, index_t n);
  void check_input_shape(const Shape& shape) const;
  Shape batch_shape(index_t n) const;
  void worker_loop(int shard_index);
  void shutdown_workers();

  nn::ModulePtr model_;
  SessionConfig config_;
  std::vector<nn::PipelineStage> stages_;
  index_t sample_numel_ = 0;
  // Per-sample numel at each stage's output boundary — constant across
  // batch sizes.
  std::vector<index_t> stage_sample_numel_;
  // Liveness plan: boundary_slot_[i] is the buffer slot of stage i's
  // output (-1 for the final boundary, which lands in output_buffer_);
  // slot_sample_numel_[s] is slot s's per-sample capacity.
  std::vector<index_t> boundary_slot_;
  std::vector<index_t> slot_sample_numel_;
  // Stages whose input (or addend) is the pipeline input and must be
  // re-pointed at the caller's batch every run.
  std::vector<index_t> input_bound_stages_;
  std::vector<index_t> input_bound_addends_;
  Tensor output_buffer_;  // [max_batch · last-stage width], shared
  std::vector<Shard> shards_;
  ConstTensorView output_view_;
  index_t bound_n_ = 0;

  // Persistent worker pool (empty when num_threads == 1).
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_, done_cv_;
  std::uint64_t job_id_ = 0;
  int pending_ = 0;
  bool stop_ = false;
  const float* job_input_ = nullptr;
  std::exception_ptr job_error_;
};

}  // namespace qdnn::runtime
