// BatchScheduler: continuous batching over one bound DecodeSession.
//
// PR 3's DecodeSession serves one fixed batch per prime: every request
// must start together and the batch occupies its KV rings until the
// slowest row finishes.  The scheduler removes that coupling — it owns a
// request queue plus one session bound at full max_batch width, and each
// tick it:
//
//   1. admits queued requests into free batch rows (per-row prime: the
//      request's source is encoded and cross-projected into just its
//      row's caches while the other rows keep decoding mid-flight),
//   2. steps the WHOLE batch once — one gemm-backed pass over all rows,
//      every live row at its own ring position (per-row cache lengths in
//      the attention step kernels),
//   3. samples one token per live row through its request's head
//      (greedy / temperature / top-k, per-request seeded Rng),
//   4. retires rows that emitted eos or exhausted their budget, so the
//      freed slot is refilled at the very next tick.
//
// Throughput therefore tracks occupancy instead of the slowest request
// (bench/serve_bench.cpp measures continuous vs static batching under
// Poisson arrivals).
//
// Admission comes in two modes, selected by config.prefill_workers:
//
//   * synchronous (0, default) — the prefill (encoder pass + cross-K/V
//     projection) runs on the serving thread at admission, exactly the
//     PR 4 behavior: single-threaded, deterministic tick-for-tick.
//   * asynchronous (>= 1) — a serve::PrefillPool runs the prefill on
//     worker threads into preallocated staging buffers; submit hands the
//     job to the pool and each tick drains finished prefills into free
//     rows with DecodeSession::commit_row, so admission costs the tick
//     exactly one O(K/V) copy and a long prefill never stalls the live
//     decode rows.  Both modes run the same compute (prime_row is
//     implemented as prime_compute + commit_row), so per-request outputs
//     are bit-identical across modes and to solo decodes — only the
//     admission *timing* can differ (fuzzed in
//     tests/serve/prefill_test.cpp).
//
// Contracts:
//   * Equivalence — a greedy request's tokens are bit-identical to a solo
//     DecodeSession::generate / greedy_decode_reference of that request,
//     for ANY admission/retirement interleaving and either admission mode
//     (per-row masked attention is exact; fuzzed in
//     tests/serve/scheduler_test.cpp and tests/serve/prefill_test.cpp).
//   * Determinism — stochastic requests draw from their own seeded Rng,
//     so results are reproducible regardless of admission order.
//   * Zero-alloc steady state — all per-row bookkeeping (slots, sampling
//     scratch) is preallocated at bind, and each request carries its own
//     warm token buffer (reserved at submit, swapped into the slot at
//     admission, handed off inside the RequestResult at retirement), so
//     steady-state ticks — including the retire→admit slot cycle, and
//     including async admission itself (an O(K/V) commit copy) — perform
//     no heap allocation (asserted in tests/runtime/session_test.cpp).
//     Synchronous admission allocates — it runs the encoder; submit and
//     take_results allocate (queue growth / result hand-off).
//
// The serving loop stays single-threaded: callers pump step() (or run())
// and drain take_results() from one thread; only the prefill compute
// moves to the pool.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "runtime/decode_session.h"
#include "serve/prefill.h"
#include "serve/request.h"

namespace qdnn::serve {

struct BatchSchedulerConfig {
  // Ring geometry and freeze/warm-up policy for the owned session.
  // max_batch is the continuous-batch width; max_steps bounds every
  // request's budget.
  runtime::DecodeSessionConfig session;
  index_t bos = 1;
  index_t eos = 2;
  // 0 = synchronous admission (prefill on the serving thread — the
  // deterministic single-threaded mode); >= 1 = asynchronous admission
  // through a PrefillPool with this many worker threads.
  index_t prefill_workers = 0;
  // Staging slots for the async pool (finished prefills awaiting a free
  // row); 0 = max_batch.  Ignored in synchronous mode.
  index_t prefill_slots = 0;
};

class BatchScheduler {
 public:
  // Binds the model (exclusively, like any DecodeSession) and
  // preallocates every slot.  Validates bos/eos against the target
  // vocabulary; the session constructor validates the ring geometry.
  BatchScheduler(models::Transformer& model, BatchSchedulerConfig config);

  // Enqueues a request, validating it at the edge (source length vs
  // max_src, budget vs max_steps, sampling parameters) so a malformed
  // request fails here with a clear message, not steps later inside a
  // kernel.  Also reserves the request's warm token buffer here, so the
  // later admit/retire ticks never allocate.  In async mode the job goes
  // straight to the prefill pool.  Returns the request id.  Allocates
  // (queue growth + buffer reserve).
  index_t submit(Request request);

  // One tick: admit → batch-step → sample → retire (see file comment).
  // Returns the number of live rows that were stepped (0 = nothing to
  // do; the tick still counts, so arrival traces keyed on ticks work).
  // Async mode: admission drains finished prefills only — a tick never
  // waits on the pool.
  index_t step();

  // Async tick-driver helper: when the ONLY outstanding work is a
  // prefill still computing (no live rows, nothing admissible), blocks
  // until the pool finishes one and returns true — callers `continue`
  // instead of stepping, so the tick clock never free-runs orders of
  // magnitude faster than real batch steps (which would collapse
  // arrival schedules and inflate tick-denominated latencies) and the
  // serving core is not stolen from the workers.  Returns false (without
  // blocking) whenever a step would do real work; always false in sync
  // mode.  run() uses it; external drivers pumping step() should too.
  bool wait_for_prefill() const;

  // Ticks until every submitted request has retired (in async mode,
  // yielding while prefills are still in flight).
  void run();

  bool idle() const {
    return live_rows_ == 0 && queue_.empty() &&
           (!prefill_ || prefill_->pending() == 0);
  }
  // Moves out the results finished since the last call (retirement
  // order).  Allocates (the moved-out vector is replaced by a freshly
  // reserved one, off the tick path).
  std::vector<RequestResult> take_results();

  // Requests submitted and not yet admitted (sync queue + async pool).
  index_t queued() const {
    return static_cast<index_t>(queue_.size()) +
           (prefill_ ? prefill_->pending() : 0);
  }
  index_t live_rows() const { return live_rows_; }
  index_t ticks() const { return ticks_; }
  index_t total_tokens() const { return total_tokens_; }
  // Mean live rows per stepped tick — the occupancy continuous batching
  // keeps high and static batching lets decay.
  double mean_occupancy() const;
  const runtime::DecodeSession& session() const { return session_; }
  // The async admission pool (null in synchronous mode).
  const PrefillPool* prefill_pool() const { return prefill_.get(); }

 private:
  struct Slot {
    bool live = false;
    index_t id = -1;
    index_t budget = 0;
    SamplingConfig sampling;
    Rng rng{0};
    std::vector<index_t> tokens;  // the request's warm buffer (admission)
    index_t submit_tick = 0;
    index_t admit_tick = 0;
  };

  void admit_sync();
  void admit_async();
  void resolve_failed(PrefillJob&& job, std::exception_ptr error);
  void install(index_t row, PrefillJob&& job);
  void retire(index_t row, FinishReason reason);

  BatchSchedulerConfig config_;
  index_t vocab_ = 0;
  runtime::DecodeSession session_;

  std::deque<PrefillJob> queue_;  // sync mode only
  std::vector<Slot> slots_;
  std::vector<index_t> feed_;       // next input token per row
  std::vector<index_t> free_rows_;  // stack; lowest row admitted first
  std::vector<RequestResult> completed_;  // reserved for max_batch results
  Tensor prob_scratch_;                // [vocab], sampling CDF scratch
  std::vector<index_t> idx_scratch_;  // [vocab], top-k selection scratch

  index_t next_id_ = 0;
  index_t ticks_ = 0;
  index_t live_rows_ = 0;
  index_t total_tokens_ = 0;
  index_t stepped_ticks_ = 0;
  index_t occupancy_sum_ = 0;

  // Declared after session_ so it joins its workers (which touch the
  // session's staging API) before the session unbinds.
  std::unique_ptr<PrefillPool> prefill_;
};

}  // namespace qdnn::serve
