// Ablation: the vectorized output (Sec. III-B) — the paper's second design
// ingredient.  The proposed neuron emits its intermediate features
// fᵏ = (Qᵏ)ᵀx as k extra channels, amortizing the neuron's (k+1)n cost to
// ≈n per output.  The "underutilization of internal features" argument
// (Sec. II-B) predicts a sum-only neuron — the same quadratic form with fᵏ
// kept internal — needs (k+1)× the parameters for the same feature-map
// widths and so loses on efficiency at matched accuracy.
//
// Three small CNNs at identical feature-map widths on the synthetic
// classification task:
//   linear    — the baseline,
//   sum-only  — proposed form, vectorized output disabled,
//   proposed  — the full neuron.
#include <cstdio>

#include "bench_util.h"
#include "models/resnet.h"
#include "quadratic/neuron_spec.h"
#include "train/trainer.h"

using namespace qdnn;
using namespace qdnn::models;
using quadratic::NeuronKind;
using quadratic::NeuronSpec;
using qdnn::bench::bench_scale;
using qdnn::bench::fmt;
using qdnn::bench::fmt_pct;
using qdnn::bench::print_header;
using qdnn::bench::print_row;
using qdnn::bench::print_rule;

int main() {
  const int scale = bench_scale();
  print_header(
      "Ablation: feature reuse (vectorized output) — Sec. III-B removed");

  // Same hard configuration as ablation_layer_placement: 10 classes at
  // noise 0.7 keeps all variants below ceiling so accuracy differences
  // are visible.
  data::SyntheticImageConfig data_config;
  data_config.num_classes = 10;
  data_config.image_size = 16;
  data_config.noise_std = 0.7f;
  const auto train_set =
      data::make_synthetic_images(data_config, 500 * scale, 311);
  const auto test_set =
      data::make_synthetic_images(data_config, 250 * scale, 312);

  struct Variant {
    const char* label;
    NeuronSpec spec;
  };
  const index_t k = 9;
  const Variant variants[] = {
      {"linear", NeuronSpec::linear()},
      {"sum-only(k=9)", NeuronSpec::of(NeuronKind::kProposedSumOnly, k)},
      {"proposed(k=9)", NeuronSpec::proposed(k)},
  };

  CsvWriter csv(qdnn::bench::results_dir() + "/ablation_feature_reuse.csv",
                {"variant", "params", "test_accuracy"});
  print_row({"variant", "params/k", "test acc"});
  print_rule();

  double params[3] = {0, 0, 0}, accuracy[3] = {0, 0, 0};
  for (int v = 0; v < 3; ++v) {
    ResNetConfig config;
    config.depth = 14;
    config.num_classes = 10;
    config.image_size = 16;
    config.base_width = 10;  // multiple of k+1 so widths match exactly
    config.spec = variants[v].spec;
    config.seed = 33;
    auto net = make_cifar_resnet(config);

    train::TrainerConfig tc;
    tc.epochs = 8 * scale;
    tc.batch_size = 32;
    tc.lr = 0.05f;
    tc.clip_norm = 5.0f;
    tc.augment_pad = 1;
    train::Trainer trainer(*net, tc);
    const auto history = trainer.fit(train_set, test_set);

    params[v] = static_cast<double>(net->num_parameters());
    accuracy[v] = history.back().test_accuracy;
    print_row({variants[v].label, fmt(params[v] / 1e3, 1),
               fmt(100 * accuracy[v], 2)});
    csv.write_row(std::vector<std::string>{
        variants[v].label, fmt(params[v], 0), fmt(accuracy[v], 4)});
  }

  print_rule();
  std::printf(
      "sum-only vs proposed at equal widths: params %s, accuracy %+0.2f pts\n"
      "proposed vs linear at equal widths:   params %s, accuracy %+0.2f pts\n",
      fmt_pct(100.0 * (params[1] - params[2]) / params[2]).c_str(),
      100.0 * (accuracy[1] - accuracy[2]),
      fmt_pct(100.0 * (params[2] - params[0]) / params[0]).c_str(),
      100.0 * (accuracy[2] - accuracy[0]));
  std::printf(
      "\nExpected shape: the sum-only variant pays ~(k+1)x the quadratic\n"
      "parameters of the proposed neuron for the same widths without a\n"
      "matching accuracy gain — emitting f^k is what makes the quadratic\n"
      "form affordable (the paper's averaged-complexity argument).\n");
  return 0;
}
