// Stage-level profiling surface shared by the pipeline drivers.
//
// InferenceSession and DecodeSession accumulate per-stage wall time into
// preallocated plain arrays on their step paths (only while
// obs::trace_enabled() — the tracing-off path pays one relaxed load per
// call) and materialize this view on demand.  stage_profile() allocates
// (names) and is meant for bench/export paths, not hot loops.
#pragma once

#include <string>
#include <vector>

namespace qdnn::obs {

struct StageTiming {
  std::string name;     // module name, or "residual_add" / pseudo-stage
  long long calls = 0;  // timed invocations
  long long total_ns = 0;
};

}  // namespace qdnn::obs
