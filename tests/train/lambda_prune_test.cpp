// Λ pruning: effective-rank measurement and prune semantics.
#include "train/lambda_prune.h"

#include <gtest/gtest.h>

#include "nn/sequential.h"
#include "quadratic/quad_dense.h"

namespace qdnn::train {
namespace {

TEST(EffectiveRank, CountsDominantEntries) {
  Tensor lambda{Shape{2, 4}, {1.0f, 0.5f, 0.001f, 0.0f,    // unit 0: 2 live
                              -2.0f, 0.0f, 0.0f, 0.0f}};   // unit 1: 1 live
  EXPECT_DOUBLE_EQ(effective_rank(lambda, 0.01), 1.5);
}

TEST(EffectiveRank, ZeroTensorHasRankZero) {
  Tensor lambda{Shape{3, 5}};
  EXPECT_DOUBLE_EQ(effective_rank(lambda, 0.01), 0.0);
}

TEST(EffectiveRank, ThresholdZeroCountsAllNonZero) {
  Tensor lambda{Shape{1, 3}, {0.5f, -0.0001f, 0.0f}};
  EXPECT_DOUBLE_EQ(effective_rank(lambda, 0.0), 2.0);
}

TEST(EffectiveRank, RejectsBadShapesAndThresholds) {
  Tensor flat{Shape{4}};
  EXPECT_THROW(effective_rank(flat, 0.1), std::runtime_error);
  Tensor ok{Shape{1, 4}};
  EXPECT_THROW(effective_rank(ok, 1.0), std::runtime_error);
  EXPECT_THROW(effective_rank(ok, -0.1), std::runtime_error);
}

TEST(PruneLambdas, ZeroesBelowThresholdAndFreezes) {
  Rng rng(1);
  quadratic::ProposedQuadraticDense layer(6, 2, 3, rng);
  // Plant a known Λ: unit 0 = {1, 0.001, 0.5}, unit 1 = {0.2, 0.0001, -1}.
  layer.lambda().value =
      Tensor{Shape{2, 3}, {1.0f, 0.001f, 0.5f, 0.2f, 0.0001f, -1.0f}};

  const auto stats = prune_lambdas(layer, /*relative_threshold=*/0.01, 6);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].zeroed, 2);  // the 0.001 and 0.0001 entries
  EXPECT_EQ(layer.lambda().value.at(0, 1), 0.0f);
  EXPECT_EQ(layer.lambda().value.at(1, 1), 0.0f);
  EXPECT_EQ(layer.lambda().value.at(0, 0), 1.0f);  // survivors untouched
  EXPECT_EQ(layer.lambda().lr_scale, 0.0f);        // frozen
  EXPECT_DOUBLE_EQ(stats[0].mean_effective_rank, 2.0);
  EXPECT_EQ(stats[0].removable_params, 2 * (1 + 6));
}

TEST(PruneLambdas, IdempotentOnSecondCall) {
  Rng rng(2);
  quadratic::ProposedQuadraticDense layer(4, 2, 3, rng);
  layer.lambda().value =
      Tensor{Shape{2, 3}, {1.0f, 0.001f, 0.5f, 0.2f, 0.0001f, -1.0f}};
  prune_lambdas(layer, 0.01);
  const auto again = prune_lambdas(layer, 0.01);
  EXPECT_EQ(again[0].zeroed, 0);  // already-zero entries are not recounted
}

TEST(PruneLambdas, TouchesOnlyLambdaGroup) {
  Rng rng(3);
  quadratic::ProposedQuadraticDense layer(5, 2, 3, rng);
  const Tensor w_before = layer.w().value;
  const Tensor q_before = layer.q().value;
  prune_lambdas(layer, 0.5);
  EXPECT_EQ(max_abs_diff(layer.w().value, w_before), 0.0f);
  EXPECT_EQ(max_abs_diff(layer.q().value, q_before), 0.0f);
  EXPECT_EQ(layer.w().lr_scale, 1.0f);
}

TEST(PruneLambdas, WalksWholeModel) {
  Rng rng(4);
  nn::Sequential net;
  net.emplace<quadratic::ProposedQuadraticDense>(4, 2, 3, rng, 1e-3f, "a");
  net.emplace<quadratic::ProposedQuadraticDense>(8, 2, 3, rng, 1e-3f, "b");
  const auto stats = prune_lambdas(net, 0.01);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].layer, "a.lambda");
  EXPECT_EQ(stats[1].layer, "b.lambda");
}

TEST(PruneLambdas, PrunedLayerStillComputesConsistently) {
  // Zeroing λ entries must reduce the layer to the same function as a
  // layer built with those λ explicitly zero.
  Rng rng(5);
  quadratic::ProposedQuadraticDense layer(6, 2, 3, rng);
  layer.lambda().value =
      Tensor{Shape{2, 3}, {1.0f, 0.001f, 0.5f, 0.2f, 0.0001f, -1.0f}};
  Tensor x{Shape{3, 6}};
  Rng data_rng(6);
  data_rng.fill_uniform(x, -1.0f, 1.0f);

  prune_lambdas(layer, 0.01);
  const Tensor y_pruned = layer.forward(x);

  Rng rng2(5);  // same init as `layer` — parameters identical
  quadratic::ProposedQuadraticDense ref(6, 2, 3, rng2);
  ref.w().value = layer.w().value;
  ref.q().value = layer.q().value;
  ref.bias().value = layer.bias().value;
  ref.lambda().value =
      Tensor{Shape{2, 3}, {1.0f, 0.0f, 0.5f, 0.2f, 0.0f, -1.0f}};
  EXPECT_EQ(max_abs_diff(ref.forward(x), y_pruned), 0.0f);
}

}  // namespace
}  // namespace qdnn::train
