#include "data/bleu.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/check.h"

namespace qdnn::data {

namespace {

// Counts n-grams of a fixed order as joined strings (tokens cannot
// contain '\x1f', which is used as the joiner).
std::map<std::string, long long> ngram_counts(
    const std::vector<std::string>& tokens, std::size_t n) {
  std::map<std::string, long long> counts;
  if (tokens.size() < n) return counts;
  for (std::size_t i = 0; i + n <= tokens.size(); ++i) {
    std::string key;
    for (std::size_t j = 0; j < n; ++j) {
      if (j) key += '\x1f';
      key += tokens[i + j];
    }
    ++counts[key];
  }
  return counts;
}

}  // namespace

BleuResult corpus_bleu(
    const std::vector<std::vector<std::string>>& hypotheses,
    const std::vector<std::vector<std::string>>& references) {
  QDNN_CHECK_EQ(hypotheses.size(), references.size(),
                "corpus_bleu: hypothesis/reference count");
  BleuResult result;
  long long matches[4] = {0, 0, 0, 0};
  long long totals[4] = {0, 0, 0, 0};

  for (std::size_t s = 0; s < hypotheses.size(); ++s) {
    const auto& hyp = hypotheses[s];
    const auto& ref = references[s];
    result.hyp_length += static_cast<long long>(hyp.size());
    result.ref_length += static_cast<long long>(ref.size());
    for (std::size_t n = 1; n <= 4; ++n) {
      const auto hyp_counts = ngram_counts(hyp, n);
      const auto ref_counts = ngram_counts(ref, n);
      for (const auto& [gram, count] : hyp_counts) {
        totals[n - 1] += count;
        const auto it = ref_counts.find(gram);
        if (it != ref_counts.end())
          matches[n - 1] += std::min(count, it->second);
      }
    }
  }

  double log_precision_sum = 0.0;
  for (int n = 0; n < 4; ++n) {
    if (totals[n] == 0) {
      result.precisions[n] = 0.0;
      return result;  // degenerate corpus (all hyps shorter than n)
    }
    // Epsilon-smoothed precision so a single zero order doesn't collapse
    // the whole score to 0 on tiny eval sets (matches sacreBLEU's
    // floor smoothing spirit).
    const double p =
        std::max(static_cast<double>(matches[n]), 1e-9) / totals[n];
    result.precisions[n] = 100.0 * matches[n] / static_cast<double>(totals[n]);
    log_precision_sum += std::log(p);
  }

  result.brevity_penalty =
      (result.hyp_length >= result.ref_length || result.hyp_length == 0)
          ? 1.0
          : std::exp(1.0 - static_cast<double>(result.ref_length) /
                               result.hyp_length);
  result.bleu =
      100.0 * result.brevity_penalty * std::exp(log_precision_sum / 4.0);
  return result;
}

}  // namespace qdnn::data
