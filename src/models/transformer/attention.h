// Multi-head scaled-dot-product attention with pluggable projections.
//
// The paper's Table II experiment deploys the proposed quadratic neuron in
// "all linear projection operators in the multi-head attention blocks", so
// the four projections (Q, K, V, output) are built through
// quadratic::make_dense_neuron and can be linear or proposed-quadratic.
// The quadratic configuration uses a reduced projection width — the
// quadratic neurons' higher expressivity per output is what lets the model
// shed >20% of its parameters at equal/better BLEU.
//
// Shapes: training activations flow flattened as [N·T, D] with batch/time
// dims passed explicitly; padding is handled with per-sample key lengths
// and `causal` masks future positions (decoder self-attention).
//
// MultiHeadAttention is also a Module: the single-input overrides treat
// [N, T, D] input as full-length non-causal *self*-attention — the
// encoder serving stage.  forward_into is native (projections, scores and
// context all live in the workspace) so a flattened encoder pipeline runs
// allocation-free; the score/softmax/context kernel is shared with the
// training forward so the two paths cannot drift.
#pragma once

#include <memory>

#include "nn/module.h"
#include "quadratic/quad_dense.h"

namespace qdnn::models {

class MultiHeadAttention : public nn::Module {
 public:
  // proj_dim: total width of the Q/K/V projections (split across heads).
  // Must be divisible by n_heads (and by rank+1 for the proposed neuron).
  MultiHeadAttention(index_t d_model, index_t n_heads, index_t proj_dim,
                     const quadratic::NeuronSpec& spec, Rng& rng,
                     std::string name);

  // --- training API ------------------------------------------------------

  // q_input: [N·Tq, D]; kv_input: [N·Tk, D].  kv_lengths[i] = number of
  // valid (non-pad) key positions for sample i (Tk for all if empty).
  Tensor forward(const Tensor& q_input, const Tensor& kv_input, index_t n,
                 index_t tq, index_t tk, bool causal,
                 const std::vector<index_t>& kv_lengths);

  // Returns {grad_q_input, grad_kv_input}.  (Named distinctly from the
  // Module backward override, which differs only in return type.)
  std::pair<Tensor, Tensor> backward_qkv(const Tensor& grad_output);

  // --- Module API (self-attention on [N, T, D]) --------------------------

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override;
  bool supports_forward_into() const override;
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;
  void freeze() override;
  void unfreeze() override;

  std::vector<nn::Parameter*> parameters() override;
  void set_training(bool training) override;
  std::string name() const override { return name_; }

  index_t proj_dim() const { return proj_dim_; }

 private:
  index_t d_model_, n_heads_, proj_dim_, head_dim_;
  std::string name_;
  nn::ModulePtr wq_, wk_, wv_, wo_;
  // Forward caches (training only; forward_into never touches them).
  index_t n_ = 0, tq_ = 0, tk_ = 0;
  Tensor q_, k_, v_;     // [N·T, P]
  Tensor attn_;          // [N, H, Tq, Tk] softmax weights
};

}  // namespace qdnn::models
