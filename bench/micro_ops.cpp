// Engineering micro-benchmarks (google-benchmark): GEMM, im2col conv,
// eigendecomposition, forward/backward throughput of each neuron family
// at equal layer width — the empirical counterpart of Table I's MAC
// counts — and the legacy-forward vs InferenceSession serving comparison
// (the allocation cost the v2 execution API removes).
#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "linalg/eig.h"
#include "linalg/gemm.h"
#include "linalg/gemm_backend.h"
#include "linalg/packed_weights.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/sequential.h"
#include "quadratic/quad_conv.h"
#include "quadratic/quad_dense.h"
#include "quantize/quantized_modules.h"
#include "runtime/inference_session.h"

using namespace qdnn;
using quadratic::NeuronKind;
using quadratic::NeuronSpec;

namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t{std::move(shape)};
  rng.fill_uniform(t, -1.0f, 1.0f);
  return t;
}

void BM_Gemm(benchmark::State& state) {
  const index_t n = state.range(0);
  const Tensor a = random_tensor(Shape{n, n}, 1);
  const Tensor b = random_tensor(Shape{n, n}, 2);
  Tensor c{Shape{n, n}};
  for (auto _ : state) {
    linalg::gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n,
                 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// Gemm backend section: the three serving shapes every decode tick is
// built from, prepacked (the frozen-session path), per dispatch backend.
// Arg0 picks the shape, Arg1 the backend (GemmBackend enum value);
// combinations the build/CPU can't run are skipped.
void BM_GemmBackend(benchmark::State& state) {
  struct ServeShape {
    const char* name;
    index_t m, n, k;
  };
  // decode step [batch x P][P x P]; prefill [N*T x D][D x D]; logit
  // projection [batch x vocab] — dims from bench/serve_bench's model.
  static constexpr ServeShape kShapes[] = {
      {"decode", 8, 48, 48},
      {"prefill", 224, 48, 48},
      {"logits", 8, 256, 48},
  };
  const ServeShape& s = kShapes[state.range(0)];
  const auto backend = static_cast<linalg::GemmBackend>(state.range(1));
  if (!linalg::gemm_backend_supported(backend)) {
    state.SkipWithError("backend not supported on this build/CPU");
    return;
  }
  const linalg::GemmBackend prev = linalg::active_gemm_backend();
  linalg::set_gemm_backend(backend);
  const Tensor a = random_tensor(Shape{s.m, s.k}, 1);
  const Tensor b = random_tensor(Shape{s.k, s.n}, 2);
  linalg::PackedWeights pw;
  pw.pack(false, s.k, s.n, b.data(), s.n);
  Tensor c{Shape{s.m, s.n}};
  for (auto _ : state) {
    linalg::gemm_prepacked(false, s.m, s.n, s.k, 1.0f, a.data(), s.k, pw,
                           0.0f, c.data(), s.n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * s.m * s.n * s.k);
  state.SetLabel(std::string(s.name) + "/" +
                 linalg::gemm_backend_name(backend));
  linalg::set_gemm_backend(prev);
}
BENCHMARK(BM_GemmBackend)->ArgsProduct({{0, 1, 2}, {0, 1, 2}});

void BM_Eigh(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(3);
  Tensor m{Shape{n, n}};
  rng.fill_normal(m, 0.0f, 1.0f);
  m = linalg::symmetrize(m);
  for (auto _ : state) {
    auto result = linalg::eigh(m);
    benchmark::DoNotOptimize(result.eigenvalues.data());
  }
}
BENCHMARK(BM_Eigh)->Arg(16)->Arg(48)->Arg(96);

// Forward pass of one conv layer per neuron family, equal target width.
void conv_forward_bench(benchmark::State& state, const NeuronSpec& spec) {
  Rng rng(4);
  auto layer =
      quadratic::make_conv_neuron(spec, 16, 16, 3, 1, 1, rng, "bench");
  const Tensor x = random_tensor(Shape{4, 16, 16, 16}, 5);
  for (auto _ : state) {
    Tensor y = layer->forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}

void BM_ConvLinear(benchmark::State& state) {
  conv_forward_bench(state, NeuronSpec::linear());
}
void BM_ConvProposed(benchmark::State& state) {
  conv_forward_bench(state, NeuronSpec::proposed(9));
}
void BM_ConvQuad1(benchmark::State& state) {
  conv_forward_bench(state, NeuronSpec::of(NeuronKind::kQuad1));
}
void BM_ConvQuad2(benchmark::State& state) {
  conv_forward_bench(state, NeuronSpec::of(NeuronKind::kQuad2));
}
void BM_ConvLowRank(benchmark::State& state) {
  conv_forward_bench(state, NeuronSpec::of(NeuronKind::kLowRank, 9));
}
void BM_ConvKervolution(benchmark::State& state) {
  conv_forward_bench(state, NeuronSpec::of(NeuronKind::kKervolution));
}
BENCHMARK(BM_ConvLinear);
BENCHMARK(BM_ConvProposed);
BENCHMARK(BM_ConvQuad1);
BENCHMARK(BM_ConvQuad2);
BENCHMARK(BM_ConvLowRank);
BENCHMARK(BM_ConvKervolution);

// Forward+backward of the proposed conv vs linear conv — the end-to-end
// training-cost comparison.
void BM_TrainStepLinear(benchmark::State& state) {
  Rng rng(6);
  nn::Conv2d conv(8, 8, 3, 1, 1, rng);
  const Tensor x = random_tensor(Shape{4, 8, 12, 12}, 7);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    Tensor g = conv.backward(y);
    benchmark::DoNotOptimize(g.data());
  }
}
void BM_TrainStepProposed(benchmark::State& state) {
  Rng rng(8);
  quadratic::ProposedQuadConv2d conv(8, 1, 3, 1, 1, 7, rng);
  const Tensor x = random_tensor(Shape{4, 8, 12, 12}, 9);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    Tensor g = conv.backward(y);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_TrainStepLinear);
BENCHMARK(BM_TrainStepProposed);

// Integer deployment kernels: int8 GEMM vs the fp32 GEMM it replaces,
// and the full quantized proposed-conv forward vs its float source.
void BM_GemmInt8(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(10);
  std::vector<std::int8_t> a(static_cast<std::size_t>(n * n));
  std::vector<std::int8_t> b(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = static_cast<std::int8_t>(rng.uniform_int(255) - 127);
  for (auto& v : b) v = static_cast<std::int8_t>(rng.uniform_int(255) - 127);
  std::vector<std::int32_t> c(static_cast<std::size_t>(n * n));
  for (auto _ : state) {
    quantize::gemm_i8(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmInt8)->Arg(64)->Arg(128)->Arg(256);

void BM_QuantizedProposedConvForward(benchmark::State& state) {
  Rng rng(11);
  quadratic::ProposedQuadConv2d conv(16, 2, 3, 1, 1, 7, rng);
  const Tensor sample = random_tensor(Shape{4, 16, 16, 16}, 12);
  quantize::QuantizedProposedConv2d qconv(conv, sample, 8);
  const Tensor x = random_tensor(Shape{4, 16, 16, 16}, 13);
  for (auto _ : state) {
    Tensor y = qconv.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_QuantizedProposedConvForward);

// ---------------------------------------------------------------------------
// Serving-path comparison: the same MLP through the legacy allocating
// Module::forward chain vs a warmed-up InferenceSession.  At small batch
// sizes the legacy path is dominated by per-layer Tensor allocation and
// copying; the session runs the identical kernels on preallocated
// buffers.
// ---------------------------------------------------------------------------

std::unique_ptr<nn::Sequential> make_linear_mlp(std::uint64_t seed) {
  Rng rng(seed);
  auto net = std::make_unique<nn::Sequential>("linear_mlp");
  for (int i = 0; i < 3; ++i) {
    net->emplace<nn::Linear>(256, 256, rng, true,
                             "fc" + std::to_string(i));
    net->emplace<nn::ReLU>();
  }
  return net;
}

std::unique_ptr<nn::Sequential> make_quad_mlp(std::uint64_t seed) {
  Rng rng(seed);
  auto net = std::make_unique<nn::Sequential>("quad_mlp");
  for (int i = 0; i < 3; ++i) {
    // units·(rank+1) = 64·4 = 256 output channels per layer.
    net->emplace<quadratic::ProposedQuadraticDense>(
        256, 64, 3, rng, 1e-3f, "qfc" + std::to_string(i));
    net->emplace<nn::ReLU>();
  }
  return net;
}

template <typename MakeNet>
void mlp_legacy_bench(benchmark::State& state, MakeNet make_net) {
  const index_t batch = state.range(0);
  auto net = make_net(30);
  net->set_training(false);
  const Tensor x = random_tensor(Shape{batch, 256}, 31);
  for (auto _ : state) {
    Tensor y = net->forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}

template <typename MakeNet>
void mlp_session_bench(benchmark::State& state, MakeNet make_net,
                       bool freeze = true) {
  const index_t batch = state.range(0);
  runtime::SessionConfig config;
  config.sample_shape = Shape{256};
  config.max_batch = batch;
  config.freeze = freeze;
  runtime::InferenceSession session(make_net(30), config);
  const Tensor x = random_tensor(Shape{batch, 256}, 31);
  for (auto _ : state) {
    const ConstTensorView& y = session.run(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}

void BM_LinearMlpLegacyForward(benchmark::State& state) {
  mlp_legacy_bench(state, make_linear_mlp);
}
void BM_LinearMlpSession(benchmark::State& state) {
  mlp_session_bench(state, make_linear_mlp);
}
void BM_ProposedMlpLegacyForward(benchmark::State& state) {
  mlp_legacy_bench(state, make_quad_mlp);
}
void BM_ProposedMlpSession(benchmark::State& state) {
  mlp_session_bench(state, make_quad_mlp);
}
BENCHMARK(BM_LinearMlpLegacyForward)->Arg(1)->Arg(8)->Arg(64);
BENCHMARK(BM_LinearMlpSession)->Arg(1)->Arg(8)->Arg(64);
BENCHMARK(BM_ProposedMlpLegacyForward)->Arg(1)->Arg(8)->Arg(64);
BENCHMARK(BM_ProposedMlpSession)->Arg(1)->Arg(8)->Arg(64);

// ---------------------------------------------------------------------------
// Before the freeze-time weight prepack: the identical session pipeline
// with freeze disabled, so constant weights are re-packed on every call
// from workspace scratch.  The "after" numbers are BM_*MlpSession above
// (sessions freeze at bind by default).
// ---------------------------------------------------------------------------

void BM_LinearMlpSessionUnfrozen(benchmark::State& state) {
  mlp_session_bench(state, make_linear_mlp, /*freeze=*/false);
}
void BM_ProposedMlpSessionUnfrozen(benchmark::State& state) {
  mlp_session_bench(state, make_quad_mlp, /*freeze=*/false);
}
BENCHMARK(BM_LinearMlpSessionUnfrozen)->Arg(1)->Arg(8)->Arg(64);
BENCHMARK(BM_ProposedMlpSessionUnfrozen)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
