#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck_util.h"

namespace qdnn::nn {
namespace {

using qdnn::testing::random_tensor;

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  CrossEntropyLoss loss;
  const Tensor logits{Shape{2, 4}};  // all zeros -> uniform
  const LossResult res = loss(logits, {0, 3});
  EXPECT_NEAR(res.loss, std::log(4.0f), 1e-5f);
  EXPECT_EQ(res.count, 2);
}

TEST(CrossEntropy, PerfectPredictionLowLoss) {
  CrossEntropyLoss loss;
  Tensor logits{Shape{1, 3}};
  logits[1] = 50.0f;
  const LossResult res = loss(logits, {1});
  EXPECT_LT(res.loss, 1e-4f);
  EXPECT_EQ(res.correct, 1);
}

TEST(CrossEntropy, GradientIsSoftmaxMinusOneHot) {
  CrossEntropyLoss loss;
  const Tensor logits{Shape{1, 3}, std::vector<float>{1, 2, 3}};
  const LossResult res = loss(logits, {2});
  // softmax(1,2,3) ≈ (0.0900, 0.2447, 0.6652)
  EXPECT_NEAR(res.grad_logits[0], 0.0900f, 1e-3f);
  EXPECT_NEAR(res.grad_logits[1], 0.2447f, 1e-3f);
  EXPECT_NEAR(res.grad_logits[2], 0.6652f - 1.0f, 1e-3f);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  CrossEntropyLoss loss(0.1f);
  Tensor logits = random_tensor(Shape{3, 5}, 1);
  const std::vector<index_t> targets{0, 2, 4};
  const LossResult res = loss(logits, targets);
  const double eps = 1e-3;
  for (index_t i = 0; i < logits.numel(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + static_cast<float>(eps);
    const double lp = loss(logits, targets).loss;
    logits[i] = saved - static_cast<float>(eps);
    const double lm = loss(logits, targets).loss;
    logits[i] = saved;
    const double fd = (lp - lm) / (2 * eps);
    EXPECT_NEAR(res.grad_logits[i], fd, 1e-3) << "i=" << i;
  }
}

TEST(CrossEntropy, LabelSmoothingRaisesMinimumLoss) {
  CrossEntropyLoss plain(0.0f);
  CrossEntropyLoss smoothed(0.2f);
  Tensor logits{Shape{1, 4}};
  logits[0] = 30.0f;
  EXPECT_GT(smoothed(logits, {0}).loss, plain(logits, {0}).loss + 0.1f);
}

TEST(CrossEntropy, IgnoreIndexSkipsRows) {
  CrossEntropyLoss loss(0.0f, /*ignore_index=*/0);
  Tensor logits{Shape{3, 2}};
  logits.at(1, 1) = 10.0f;  // row 1 predicts class 1
  const LossResult res = loss(logits, {0, 1, 0});  // rows 0, 2 ignored
  EXPECT_EQ(res.count, 1);
  EXPECT_LT(res.loss, 1e-3f);
  // Ignored rows contribute zero gradient.
  EXPECT_FLOAT_EQ(res.grad_logits.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(res.grad_logits.at(2, 0), 0.0f);
}

TEST(CrossEntropy, AllIgnoredYieldsZero) {
  CrossEntropyLoss loss(0.0f, 0);
  const Tensor logits{Shape{2, 2}};
  const LossResult res = loss(logits, {0, 0});
  EXPECT_EQ(res.count, 0);
  EXPECT_FLOAT_EQ(res.loss, 0.0f);
}

TEST(CrossEntropy, OutOfRangeTargetThrows) {
  CrossEntropyLoss loss;
  const Tensor logits{Shape{1, 3}};
  EXPECT_THROW(loss(logits, {5}), std::runtime_error);
}

TEST(CrossEntropy, CountsAccuracy) {
  CrossEntropyLoss loss;
  Tensor logits{Shape{2, 2}};
  logits.at(0, 0) = 1.0f;  // predicts 0
  logits.at(1, 1) = 1.0f;  // predicts 1
  const LossResult res = loss(logits, {0, 0});
  EXPECT_EQ(res.correct, 1);
}

TEST(CrossEntropy, InvalidSmoothingThrows) {
  EXPECT_THROW(CrossEntropyLoss(1.0f), std::runtime_error);
}

TEST(MseLoss, ValueAndGradient) {
  const Tensor pred{Shape{2}, std::vector<float>{1, 3}};
  const Tensor target{Shape{2}, std::vector<float>{0, 0}};
  const LossResult res = mse_loss(pred, target);
  // 0.5*(1 + 9)/2 / 2 — loss = (1/n)·Σ 0.5 d² / n? definition: 0.5/N² —
  // validated against the gradient consistency below instead of a magic
  // constant:
  const double eps = 1e-3;
  Tensor p = pred;
  for (index_t i = 0; i < 2; ++i) {
    const float saved = p[i];
    p[i] = saved + static_cast<float>(eps);
    const double lp = mse_loss(p, target).loss;
    p[i] = saved - static_cast<float>(eps);
    const double lm = mse_loss(p, target).loss;
    p[i] = saved;
    EXPECT_NEAR(res.grad_logits[i], (lp - lm) / (2 * eps), 5e-4);
  }
  EXPECT_GT(res.loss, 0.0f);
}

TEST(MseLoss, ZeroForPerfectPrediction) {
  const Tensor pred{Shape{3}, std::vector<float>{1, 2, 3}};
  const LossResult res = mse_loss(pred, pred);
  EXPECT_FLOAT_EQ(res.loss, 0.0f);
  EXPECT_FLOAT_EQ(res.grad_logits.abs_max(), 0.0f);
}

}  // namespace
}  // namespace qdnn::nn
