#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck_util.h"
#include "nn/batchnorm.h"
#include "nn/layernorm.h"

namespace qdnn::nn {
namespace {

using qdnn::testing::gradcheck_module;
using qdnn::testing::random_tensor;

TEST(BatchNorm2d, NormalizesPerChannel) {
  BatchNorm2d bn(3);
  bn.set_training(true);
  const Tensor x = random_tensor(Shape{4, 3, 5, 5}, 1, -3.0f, 7.0f);
  const Tensor y = bn.forward(x);
  // With γ=1, β=0 each channel of the output has mean≈0, var≈1.
  const index_t plane = 25;
  for (index_t c = 0; c < 3; ++c) {
    double mean = 0.0, var = 0.0;
    for (index_t s = 0; s < 4; ++s)
      for (index_t j = 0; j < plane; ++j)
        mean += y.data()[(s * 3 + c) * plane + j];
    mean /= 4 * plane;
    for (index_t s = 0; s < 4; ++s)
      for (index_t j = 0; j < plane; ++j) {
        const double d = y.data()[(s * 3 + c) * plane + j] - mean;
        var += d * d;
      }
    var /= 4 * plane;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, AffineParametersApplied) {
  BatchNorm2d bn(1);
  bn.parameters()[0]->value.fill(2.0f);  // gamma
  bn.parameters()[1]->value.fill(5.0f);  // beta
  const Tensor x = random_tensor(Shape{2, 1, 4, 4}, 2);
  const Tensor y = bn.forward(x);
  double mean = 0.0;
  for (index_t i = 0; i < y.numel(); ++i) mean += y[i];
  EXPECT_NEAR(mean / y.numel(), 5.0, 1e-4);  // beta shifts the mean
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  BatchNorm2d bn(2);
  const Tensor x = random_tensor(Shape{8, 2, 4, 4}, 3, 1.0f, 3.0f);
  // Several training passes to populate running stats.
  for (int i = 0; i < 20; ++i) bn.forward(x);
  bn.set_training(false);
  const Tensor x0{Shape{1, 2, 4, 4}, 2.0f};  // constant input
  const Tensor y = bn.forward(x0);
  // Output must be deterministic and finite in eval mode even for a
  // constant batch (which would have zero variance in training mode).
  EXPECT_TRUE(y.all_finite());
}

TEST(BatchNorm2d, RunningStatsConverge) {
  BatchNorm2d bn(1, /*momentum=*/0.5f);
  Tensor x{Shape{4, 1, 8, 8}, 3.0f};
  // Add fixed spread so variance is non-zero.
  for (index_t i = 0; i < x.numel(); i += 2) x[i] = 1.0f;
  for (int i = 0; i < 30; ++i) bn.forward(x);
  EXPECT_NEAR(bn.running_mean()[0], 2.0f, 0.05f);
  EXPECT_NEAR(bn.running_var()[0], 1.0f, 0.05f);
}

TEST(BatchNorm2d, Gradcheck) {
  BatchNorm2d bn(2);
  bn.set_training(true);
  EXPECT_TRUE(gradcheck_module(bn, random_tensor(Shape{3, 2, 3, 3}, 4)));
}

TEST(BatchNorm2d, GradcheckNonTrivialAffine) {
  BatchNorm2d bn(2);
  Rng rng(5);
  rng.fill_uniform(bn.parameters()[0]->value, 0.5f, 1.5f);
  rng.fill_uniform(bn.parameters()[1]->value, -0.5f, 0.5f);
  EXPECT_TRUE(gradcheck_module(bn, random_tensor(Shape{2, 2, 4, 4}, 6)));
}

TEST(BatchNorm2d, WrongChannelsThrows) {
  BatchNorm2d bn(3);
  EXPECT_THROW(bn.forward(random_tensor(Shape{1, 2, 2, 2}, 7)),
               std::runtime_error);
}

TEST(LayerNorm, NormalizesPerRow) {
  LayerNorm ln(16);
  const Tensor x = random_tensor(Shape{5, 16}, 8, -4.0f, 10.0f);
  const Tensor y = ln.forward(x);
  for (index_t i = 0; i < 5; ++i) {
    double mean = 0.0, var = 0.0;
    for (index_t j = 0; j < 16; ++j) mean += y.at(i, j);
    mean /= 16;
    for (index_t j = 0; j < 16; ++j) {
      const double d = y.at(i, j) - mean;
      var += d * d;
    }
    var /= 16;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 2e-2);
  }
}

TEST(LayerNorm, Gradcheck) {
  LayerNorm ln(8);
  EXPECT_TRUE(gradcheck_module(ln, random_tensor(Shape{4, 8}, 9)));
}

TEST(LayerNorm, GradcheckWithAffine) {
  LayerNorm ln(6);
  Rng rng(10);
  rng.fill_uniform(ln.parameters()[0]->value, 0.5f, 2.0f);
  rng.fill_uniform(ln.parameters()[1]->value, -1.0f, 1.0f);
  EXPECT_TRUE(gradcheck_module(ln, random_tensor(Shape{3, 6}, 11)));
}

TEST(LayerNorm, InvariantToRowShiftAndScale) {
  LayerNorm ln(8);
  Tensor x = random_tensor(Shape{1, 8}, 12);
  const Tensor y1 = ln.forward(x);
  for (index_t j = 0; j < 8; ++j) x[j] = 3.0f * x[j] + 5.0f;
  const Tensor y2 = ln.forward(x);
  EXPECT_LT(max_abs_diff(y1, y2), 1e-3f);
}

}  // namespace
}  // namespace qdnn::nn
