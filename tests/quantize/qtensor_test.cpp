// Unit and property tests for the quantization grid (quantize/qtensor).
#include "quantize/qtensor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace qdnn::quantize {
namespace {

Tensor random_tensor(Shape shape, Rng& rng, float stddev = 1.0f) {
  Tensor t(std::move(shape));
  rng.fill_normal(t, 0.0f, stddev);
  return t;
}

TEST(QuantParams, QmaxMatchesBitWidth) {
  EXPECT_EQ((QuantParams{1.0f, 8}).qmax(), 127);
  EXPECT_EQ((QuantParams{1.0f, 4}).qmax(), 7);
  EXPECT_EQ((QuantParams{1.0f, 2}).qmax(), 1);
}

TEST(Quantize, ZeroTensorIsExact) {
  Tensor t{Shape{4, 4}};
  const QTensor q = quantize(t, 8);
  for (std::int8_t v : q.data) EXPECT_EQ(v, 0);
  EXPECT_EQ(max_abs_diff(dequantize(q), t), 0.0f);
}

TEST(Quantize, ZeroIsAlwaysOnTheGrid) {
  // Symmetric grids represent 0 exactly regardless of the data range.
  Rng rng(7);
  Tensor t = random_tensor(Shape{64}, rng);
  t[10] = 0.0f;
  const QTensor q = quantize(t, 6);
  EXPECT_EQ(q.data[10], 0);
}

TEST(Quantize, RoundTripErrorBoundedByHalfScale) {
  Rng rng(1);
  const Tensor t = random_tensor(Shape{8, 32}, rng, 0.3f);
  const QTensor q = quantize(t, 8);
  const Tensor back = dequantize(q);
  // Values inside the clip range land within half a step of the original.
  for (index_t i = 0; i < t.numel(); ++i)
    EXPECT_LE(std::fabs(t[i] - back[i]), 0.5f * q.params.scale + 1e-7f)
        << "element " << i;
}

TEST(Quantize, AbsmaxValueIsRepresentedExactlyAtFullScale) {
  Tensor t{Shape{3}, {0.5f, -2.0f, 1.0f}};
  const QTensor q = quantize(t, 8);
  const Tensor back = dequantize(q);
  EXPECT_NEAR(back[1], -2.0f, 1e-6f);  // -absmax maps to -qmax exactly
}

TEST(Quantize, IdempotentOnGridValues) {
  Rng rng(3);
  const Tensor t = random_tensor(Shape{16, 16}, rng);
  const Tensor once = fake_quantize(t, 6);
  const Tensor twice = fake_quantize(once, 6);
  EXPECT_LE(max_abs_diff(once, twice), 1e-6f);
}

TEST(Quantize, PerChannelBeatsPerTensorOnRowScaledMatrix) {
  // Rows with wildly different magnitudes: a shared grid wastes most of
  // its range on the large row.
  Rng rng(11);
  Tensor t{Shape{4, 64}};
  const float row_scale[4] = {100.0f, 1.0f, 0.01f, 0.0001f};
  for (index_t r = 0; r < 4; ++r)
    for (index_t j = 0; j < 64; ++j)
      t.at(r, j) = row_scale[r] * static_cast<float>(rng.normal());

  const Tensor per_tensor = dequantize(quantize(t, 8));
  const Tensor per_channel = dequantize(quantize_per_channel(t, 8));
  // Compare relative error on the small rows.
  double pt_err = 0.0, pc_err = 0.0;
  for (index_t r = 2; r < 4; ++r) {
    for (index_t j = 0; j < 64; ++j) {
      pt_err += std::fabs(per_tensor.at(r, j) - t.at(r, j));
      pc_err += std::fabs(per_channel.at(r, j) - t.at(r, j));
    }
  }
  EXPECT_LT(pc_err, 0.1 * pt_err);
}

TEST(Quantize, PercentileCalibrationClipsOutliers) {
  Rng rng(13);
  Tensor t = random_tensor(Shape{1024}, rng, 0.1f);
  t[0] = 1000.0f;  // single outlier
  const QuantParams robust =
      choose_params_percentile(t.data(), t.numel(), 8, 0.99);
  const QuantParams naive = choose_params_absmax(t.data(), t.numel(), 8);
  // The robust grid should be orders of magnitude finer.
  EXPECT_LT(robust.scale, 0.01f * naive.scale);
}

TEST(Quantize, PercentileOneEqualsAbsmax) {
  Rng rng(17);
  const Tensor t = random_tensor(Shape{128}, rng);
  const QuantParams a = choose_params_percentile(t.data(), t.numel(), 8, 1.0);
  const QuantParams b = choose_params_absmax(t.data(), t.numel(), 8);
  EXPECT_FLOAT_EQ(a.scale, b.scale);
}

TEST(Quantize, StorageBytesArithmetic) {
  Tensor t{Shape{10, 16}};  // 160 elements
  const QTensor q8 = quantize(t, 8);
  EXPECT_EQ(q8.storage_bytes(), 160 + 4);  // int8 payload + one scale
  const QTensor q4 = quantize(t, 4);
  EXPECT_EQ(q4.storage_bytes(), 80 + 4);  // packed nibbles
  const QTensorPerChannel qc = quantize_per_channel(t, 8);
  EXPECT_EQ(qc.storage_bytes(), 160 + 10 * 4);  // one scale per row
}

TEST(Quantize, RejectsBadBitWidths) {
  Tensor t{Shape{4}};
  EXPECT_THROW(quantize(t, 1), std::runtime_error);
  EXPECT_THROW(quantize(t, 9), std::runtime_error);
  EXPECT_THROW(quantize(t, 0), std::runtime_error);
}

TEST(Quantize, PerChannelRequiresMatrix) {
  Tensor t{Shape{8}};
  EXPECT_THROW(quantize_per_channel(t, 8), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Property sweep: error scales down as bits go up, for several magnitudes.
// ---------------------------------------------------------------------------

class QuantErrorSweep : public ::testing::TestWithParam<std::tuple<int, float>> {};

TEST_P(QuantErrorSweep, RmseWithinTheoreticalStep) {
  const auto [bits, stddev] = GetParam();
  Rng rng(static_cast<std::uint64_t>(bits * 1000) +
          static_cast<std::uint64_t>(stddev * 10));
  const Tensor t = [&] {
    Tensor x(Shape{2048});
    rng.fill_normal(x, 0.0f, stddev);
    return x;
  }();
  const QuantError e = quantization_error(t, bits);
  // Uniform-quantization theory: rmse ≈ scale/sqrt(12) ≤ scale/2.
  EXPECT_LE(e.rmse, 0.5f * e.scale);
  EXPECT_LE(e.max_abs, 0.5f * e.scale + 1e-7f);
  EXPECT_GT(e.scale, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    BitsAndScales, QuantErrorSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 6, 8),
                       ::testing::Values(0.01f, 1.0f, 50.0f)));

class QuantMonotoneSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantMonotoneSweep, MoreBitsNeverWorse) {
  const int bits = GetParam();
  Rng rng(42);
  const Tensor t = random_tensor(Shape{4096}, rng);
  const QuantError coarse = quantization_error(t, bits);
  const QuantError fine = quantization_error(t, bits + 1);
  EXPECT_LE(fine.rmse, coarse.rmse);
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantMonotoneSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 7));

}  // namespace
}  // namespace qdnn::quantize
