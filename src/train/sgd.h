// SGD with momentum and decoupled-by-tag weight decay.
//
// Matches the paper's recipe (Sec. IV): base LR 0.1 with momentum for the
// CNNs, and a separately (much lower) learning rate for the proposed
// neuron's Λᵏ parameters — realized here via Parameter::lr_scale, so one
// optimizer instance drives both groups.
#pragma once

#include <vector>

#include "nn/parameter.h"

namespace qdnn::train {

struct SgdConfig {
  float lr = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
  // Gradient-norm clip; <= 0 disables.  The Transformer runs use it, and
  // the Fig. 6 stability bench intentionally disables it to expose
  // kervolution's divergence.
  float clip_norm = 0.0f;
};

class Sgd {
 public:
  Sgd(std::vector<nn::Parameter*> params, SgdConfig config);

  // One update from the accumulated gradients; does not zero them.
  void step();
  void zero_grad();

  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }

  // Global gradient L2 norm (diagnostic + clipping basis).
  double grad_norm() const;

 private:
  std::vector<nn::Parameter*> params_;
  SgdConfig config_;
  std::vector<Tensor> velocity_;
};

}  // namespace qdnn::train
