#include "nn/sequential.h"

#include <algorithm>

namespace qdnn::nn {

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& child : children_) x = child->forward(x);
  return x;
}

Shape Sequential::output_shape(const Shape& input_shape) const {
  Shape cur = input_shape;
  for (const auto& child : children_) cur = child->output_shape(cur);
  return cur;
}

bool Sequential::supports_forward_into() const {
  for (const auto& child : children_)
    if (!child->supports_forward_into()) return false;
  return true;
}

void Sequential::forward_into(const ConstTensorView& input, const TensorView& output,
                              Workspace& ws) {
  const std::size_t count = children_.size();
  if (count == 0) {
    copy_into(input, output);
    return;
  }
  if (count == 1) {
    children_[0]->forward_into(input, output, ws);
    return;
  }

  // Widest internal boundary (outputs of all children but the last, which
  // writes straight into `output`).  The chain is walked twice instead of
  // storing the boundary shapes — Shape construction is heap-free, so this
  // keeps the whole pass allocation-free when the children are native.
  Shape cur = input.shape();
  index_t max_numel = 0;
  for (std::size_t i = 0; i + 1 < count; ++i) {
    cur = children_[i]->output_shape(cur);
    max_numel = std::max(max_numel, cur.numel());
  }

  float* ping = ws.alloc(max_numel);
  // With exactly two children only one internal boundary exists.
  float* pong = count > 2 ? ws.alloc(max_numel) : nullptr;
  ConstTensorView in = input;
  for (std::size_t i = 0; i < count; ++i) {
    if (i + 1 == count) {
      children_[i]->forward_into(in, output, ws);
    } else {
      TensorView out(children_[i]->output_shape(in.shape()),
                     i % 2 == 0 ? ping : pong);
      children_[i]->forward_into(in, out, ws);
      in = ConstTensorView(out);
    }
  }
}

void Sequential::flatten_into(std::vector<PipelineStage>& stages) {
  for (auto& child : children_) child->flatten_into(stages);
}

void Sequential::freeze() {
  for (auto& child : children_) child->freeze();
}

void Sequential::unfreeze() {
  for (auto& child : children_) child->unfreeze();
}

bool Sequential::frozen() const {
  for (const auto& child : children_)
    if (!child->frozen()) return false;
  return !children_.empty();
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& child : children_)
    for (Parameter* p : child->parameters()) params.push_back(p);
  return params;
}

std::vector<NamedBuffer> Sequential::buffers() {
  std::vector<NamedBuffer> bufs;
  for (auto& child : children_)
    for (const NamedBuffer& b : child->buffers()) bufs.push_back(b);
  return bufs;
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& child : children_) child->set_training(training);
}

}  // namespace qdnn::nn
