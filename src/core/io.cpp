#include "core/io.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>

namespace qdnn {

namespace fs = std::filesystem;

void ensure_directory(const std::string& dir) {
  if (dir.empty()) return;
  std::error_code ec;
  fs::create_directories(dir, ec);
  QDNN_CHECK(!ec, "cannot create directory " << dir << ": " << ec.message());
}

namespace {
void ensure_parent(const std::string& path) {
  const fs::path p(path);
  if (p.has_parent_path()) ensure_directory(p.parent_path().string());
}
}  // namespace

CsvWriter::CsvWriter(std::string path, std::vector<std::string> header)
    : path_(std::move(path)) {
  if (!header.empty()) write_row(header);
}

CsvWriter::~CsvWriter() {
  ensure_parent(path_);
  std::ofstream out(path_, std::ios::trunc);
  if (out) out << buffer_;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) buffer_ += ',';
    buffer_ += cells[i];
  }
  buffer_ += '\n';
}

void CsvWriter::write_row(const std::vector<double>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (double c : cells) s.push_back(std::to_string(c));
  write_row(s);
}

void write_pgm(const std::string& path, const Tensor& image) {
  QDNN_CHECK_EQ(image.rank(), 2, "write_pgm expects [H, W]");
  ensure_parent(path);
  const index_t h = image.dim(0), w = image.dim(1);
  const float lo = image.min(), hi = image.max();
  const float scale = (hi > lo) ? 255.0f / (hi - lo) : 0.0f;

  std::ofstream out(path, std::ios::binary);
  QDNN_CHECK(out.good(), "cannot open " << path);
  out << "P5\n" << w << " " << h << "\n255\n";
  std::vector<unsigned char> row(static_cast<std::size_t>(w));
  for (index_t y = 0; y < h; ++y) {
    for (index_t x = 0; x < w; ++x) {
      const float v = (image.at(y, x) - lo) * scale;
      row[static_cast<std::size_t>(x)] =
          static_cast<unsigned char>(std::clamp(v, 0.0f, 255.0f));
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
}

namespace {
constexpr std::uint32_t kMagic = 0x51444E4E;  // "QDNN"
}

void save_tensor(const std::string& path, const Tensor& t) {
  ensure_parent(path);
  std::ofstream out(path, std::ios::binary);
  QDNN_CHECK(out.good(), "cannot open " << path);
  const std::uint32_t magic = kMagic;
  const std::uint32_t rank = static_cast<std::uint32_t>(t.rank());
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&rank), sizeof rank);
  for (index_t i = 0; i < t.rank(); ++i) {
    const std::int64_t d = t.dim(i);
    out.write(reinterpret_cast<const char*>(&d), sizeof d);
  }
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
  QDNN_CHECK(out.good(), "write failed for " << path);
}

Tensor load_tensor(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  QDNN_CHECK(in.good(), "cannot open " << path);
  std::uint32_t magic = 0, rank = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  QDNN_CHECK_EQ(magic, kMagic, "bad magic in " << path);
  in.read(reinterpret_cast<char*>(&rank), sizeof rank);
  std::vector<index_t> dims(rank);
  for (auto& d : dims) {
    std::int64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof v);
    dims[static_cast<std::size_t>(&d - dims.data())] = v;
  }
  Tensor t{Shape(dims)};
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  QDNN_CHECK(in.good(), "truncated tensor file " << path);
  return t;
}

}  // namespace qdnn
