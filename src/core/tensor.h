// Tensor: dense, contiguous, row-major float tensor.
//
// This is the value type the whole library is built on.  It has value
// semantics (copies copy the buffer) — modules that want sharing hold
// Tensor by reference or cache what they need explicitly.  All arithmetic
// helpers here are reference implementations; the performance-critical
// paths (conv, attention) go through linalg::gemm instead.
#pragma once

#include <cstring>
#include <vector>

#include "core/shape.h"

namespace qdnn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.numel()), 0.0f) {}
  Tensor(Shape shape, float fill)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.numel()), fill) {}
  Tensor(Shape shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    QDNN_CHECK_EQ(static_cast<index_t>(data_.size()), shape_.numel(),
                  "data size does not match shape " << shape_);
  }

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  static Tensor scalar(float v) { return Tensor(Shape{}, std::vector<float>{v}); }

  const Shape& shape() const { return shape_; }
  index_t numel() const { return shape_.numel(); }
  index_t rank() const { return shape_.rank(); }
  index_t dim(index_t i) const { return shape_[i]; }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](index_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](index_t i) const { return data_[static_cast<std::size_t>(i)]; }

  // Multi-dimensional accessors for the common ranks.  Rank and bounds are
  // verified by QDNN_DCHECK (debug builds and the default CMake config);
  // fully optimized builds drop the checks so reference loops stay cheap.
  float& at(index_t i, index_t j) {
    detail::dcheck_at(shape_, i, j);
    return data_[static_cast<std::size_t>(i * shape_[1] + j)];
  }
  float at(index_t i, index_t j) const {
    detail::dcheck_at(shape_, i, j);
    return data_[static_cast<std::size_t>(i * shape_[1] + j)];
  }
  float& at(index_t i, index_t j, index_t k) {
    detail::dcheck_at(shape_, i, j, k);
    return data_[static_cast<std::size_t>((i * shape_[1] + j) * shape_[2] + k)];
  }
  float at(index_t i, index_t j, index_t k) const {
    detail::dcheck_at(shape_, i, j, k);
    return data_[static_cast<std::size_t>((i * shape_[1] + j) * shape_[2] + k)];
  }
  float& at(index_t i, index_t j, index_t k, index_t l) {
    detail::dcheck_at(shape_, i, j, k, l);
    return data_[static_cast<std::size_t>(
        ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l)];
  }
  float at(index_t i, index_t j, index_t k, index_t l) const {
    detail::dcheck_at(shape_, i, j, k, l);
    return data_[static_cast<std::size_t>(
        ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l)];
  }

  // Reinterpret as a new shape with the same number of elements.
  Tensor reshaped(Shape new_shape) const {
    QDNN_CHECK_EQ(new_shape.numel(), numel(),
                  "reshape " << shape_ << " -> " << new_shape);
    Tensor out = *this;
    out.shape_ = std::move(new_shape);
    return out;
  }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void zero() { fill(0.0f); }

  // In-place element-wise helpers.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float s);
  Tensor& add_scaled(const Tensor& other, float s);  // this += s * other

  // Reductions.
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  float abs_max() const;
  float squared_norm() const;

  // Element-wise map (returns a new tensor).  A header template so the
  // functor inlines into the loop instead of paying an indirect call per
  // element (activations apply this over whole feature maps).
  template <typename F>
  Tensor map(F&& f) const {
    Tensor out = *this;
    for (float& v : out.data_) v = f(v);
    return out;
  }

  // True iff every element is finite (no NaN/Inf) — used by the trainers'
  // divergence detection (Fig 6 reproduces training blow-ups).
  bool all_finite() const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

// Out-of-place element-wise arithmetic (shapes must match exactly).
Tensor operator+(const Tensor& a, const Tensor& b);
Tensor operator-(const Tensor& a, const Tensor& b);
Tensor operator*(const Tensor& a, float s);
Tensor hadamard(const Tensor& a, const Tensor& b);

// max |a - b| over all elements; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace qdnn
