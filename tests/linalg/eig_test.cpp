#include "linalg/eig.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace qdnn::linalg {
namespace {

Tensor random_symmetric(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Tensor m{Shape{n, n}};
  rng.fill_normal(m, 0.0f, 1.0f);
  return symmetrize(m);
}

Tensor random_matrix(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Tensor m{Shape{n, n}};
  rng.fill_normal(m, 0.0f, 1.0f);
  return m;
}

// Lemma 1 of the paper: xᵀMx is invariant under symmetrization.
TEST(Symmetrize, PreservesQuadraticForm) {
  Rng rng(100);
  for (int trial = 0; trial < 20; ++trial) {
    const index_t n = 2 + rng.uniform_int(10);
    const Tensor m = random_matrix(n, 200 + trial);
    const Tensor sym = symmetrize(m);
    Tensor x{Shape{n}};
    rng.fill_normal(x, 0.0f, 1.0f);
    EXPECT_NEAR(quadratic_form(m, x), quadratic_form(sym, x),
                1e-3 * (1.0 + std::fabs(quadratic_form(m, x))))
        << "n=" << n << " trial=" << trial;
  }
}

TEST(Symmetrize, OutputIsSymmetric) {
  const Tensor sym = symmetrize(random_matrix(8, 5));
  for (index_t i = 0; i < 8; ++i)
    for (index_t j = 0; j < 8; ++j)
      EXPECT_FLOAT_EQ(sym.at(i, j), sym.at(j, i));
}

TEST(Symmetrize, IdempotentOnSymmetric) {
  const Tensor sym = random_symmetric(6, 6);
  EXPECT_LT(max_abs_diff(symmetrize(sym), sym), 1e-6f);
}

TEST(Eigh, DiagonalMatrix) {
  Tensor m{Shape{3, 3}};
  m.at(0, 0) = 1.0f;
  m.at(1, 1) = -5.0f;
  m.at(2, 2) = 3.0f;
  const EigResult eig = eigh(m);
  // Sorted by |λ| descending.
  EXPECT_NEAR(eig.eigenvalues[0], -5.0f, 1e-5f);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0f, 1e-5f);
  EXPECT_NEAR(eig.eigenvalues[2], 1.0f, 1e-5f);
}

TEST(Eigh, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Tensor m{Shape{2, 2}, std::vector<float>{2, 1, 1, 2}};
  const EigResult eig = eigh(m);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0f, 1e-5f);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0f, 1e-5f);
  // Eigenvector for λ=3 is (1,1)/√2 up to sign.
  EXPECT_NEAR(std::fabs(eig.eigenvectors.at(0, 0)), 1.0f / std::sqrt(2.0f),
              1e-5f);
}

TEST(Eigh, RejectsAsymmetric) {
  Tensor m{Shape{2, 2}, std::vector<float>{0, 1, -1, 0}};
  EXPECT_THROW(eigh(m, 1e-6), std::runtime_error);
}

class EighProperty : public ::testing::TestWithParam<int> {};

TEST_P(EighProperty, ReconstructsMatrix) {
  const index_t n = GetParam();
  const Tensor m = random_symmetric(n, 300 + n);
  const EigResult eig = eigh(m);
  const Tensor rebuilt = reconstruct(eig.eigenvectors, eig.eigenvalues);
  EXPECT_LT(max_abs_diff(rebuilt, m), 1e-3f) << "n=" << n;
}

TEST_P(EighProperty, EigenvectorsOrthonormal) {
  const index_t n = GetParam();
  const Tensor m = random_symmetric(n, 400 + n);
  const EigResult eig = eigh(m);
  for (index_t a = 0; a < n; ++a)
    for (index_t b = a; b < n; ++b) {
      double dot = 0.0;
      for (index_t i = 0; i < n; ++i)
        dot += static_cast<double>(eig.eigenvectors.at(i, a)) *
               eig.eigenvectors.at(i, b);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-4)
          << "n=" << n << " pair (" << a << "," << b << ")";
    }
}

TEST_P(EighProperty, SortedByMagnitude) {
  const index_t n = GetParam();
  const Tensor m = random_symmetric(n, 500 + n);
  const EigResult eig = eigh(m);
  for (index_t i = 0; i + 1 < n; ++i)
    EXPECT_GE(std::fabs(eig.eigenvalues[i]) + 1e-6f,
              std::fabs(eig.eigenvalues[i + 1]));
}

TEST_P(EighProperty, SatisfiesEigenEquation) {
  const index_t n = GetParam();
  const Tensor m = random_symmetric(n, 600 + n);
  const EigResult eig = eigh(m);
  // ‖M v − λ v‖ small for each pair.
  for (index_t c = 0; c < n; ++c) {
    double err = 0.0;
    for (index_t i = 0; i < n; ++i) {
      double mv = 0.0;
      for (index_t j = 0; j < n; ++j)
        mv += static_cast<double>(m.at(i, j)) * eig.eigenvectors.at(j, c);
      const double diff = mv - static_cast<double>(eig.eigenvalues[c]) *
                                   eig.eigenvectors.at(i, c);
      err += diff * diff;
    }
    EXPECT_LT(std::sqrt(err), 1e-3) << "n=" << n << " col=" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EighProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 27, 48));

TEST(Eigh, TraceEqualsEigenvalueSum) {
  const index_t n = 12;
  const Tensor m = random_symmetric(n, 700);
  const EigResult eig = eigh(m);
  double trace = 0.0, sum = 0.0;
  for (index_t i = 0; i < n; ++i) {
    trace += m.at(i, i);
    sum += eig.eigenvalues[i];
  }
  EXPECT_NEAR(trace, sum, 1e-3);
}

TEST(Eigh, FrobeniusEqualsEigenvalueNorm) {
  const index_t n = 10;
  const Tensor m = random_symmetric(n, 800);
  const EigResult eig = eigh(m);
  double sum2 = 0.0;
  for (index_t i = 0; i < n; ++i)
    sum2 += static_cast<double>(eig.eigenvalues[i]) * eig.eigenvalues[i];
  EXPECT_NEAR(frobenius_norm(m), std::sqrt(sum2), 1e-3);
}

TEST(QuadraticForm, MatchesManual) {
  Tensor m{Shape{2, 2}, std::vector<float>{1, 2, 3, 4}};
  Tensor x{Shape{2}, std::vector<float>{1, 2}};
  // xᵀMx = 1*1 + 2*2 + 3*2 + 4*4 = 1 + 4 + 6 + 16 = 27
  EXPECT_NEAR(quadratic_form(m, x), 27.0, 1e-6);
}

}  // namespace
}  // namespace qdnn::linalg
