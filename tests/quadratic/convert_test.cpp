#include "quadratic/convert.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck_util.h"
#include "linalg/lowrank.h"

namespace qdnn::quadratic {
namespace {

using qdnn::testing::random_tensor;

Tensor random_square(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Tensor m{Shape{n, n}};
  rng.fill_normal(m, 0.0f, 1.0f);
  return m;
}

TEST(ConvertMatrix, FullRankIsLossless) {
  const index_t n = 6;
  const Tensor m = random_square(n, 1);
  const ConvertedNeuron conv = convert_matrix(m, n);
  EXPECT_LT(conv.error, 1e-3);
  EXPECT_NEAR(conv.energy_kept, 1.0, 1e-6);
}

TEST(ConvertMatrix, HandlesAsymmetricInputViaLemma1) {
  // Asymmetric M: conversion must match the symmetrized matrix's optimal
  // truncation (the quadratic form is what matters).
  const index_t n = 5, k = 2;
  const Tensor m = random_square(n, 2);
  const ConvertedNeuron conv = convert_matrix(m, k);
  const Tensor sym = linalg::symmetrize(m);
  const auto f = linalg::truncate_top_k(sym, k);
  EXPECT_NEAR(conv.error, linalg::truncation_error(sym, f), 1e-4);
}

TEST(ConvertMatrix, EnergyKeptMonotoneInK) {
  const index_t n = 8;
  const Tensor m = random_square(n, 3);
  double prev = 0.0;
  for (index_t k = 1; k <= n; ++k) {
    const ConvertedNeuron conv = convert_matrix(m, k);
    EXPECT_GE(conv.energy_kept + 1e-9, prev) << "k=" << k;
    prev = conv.energy_kept;
  }
  EXPECT_NEAR(prev, 1.0, 1e-6);
}

TEST(ConvertLayer, FullRankPreservesOutputs) {
  Rng rng(4);
  const index_t n = 5;
  GeneralQuadraticDense general(n, 2, rng, true);
  Rng rng2(5);
  auto proposed = convert_layer(general, n, rng2);

  const Tensor x = random_tensor(Shape{3, n}, 6);
  const Tensor y_general = general.forward(x);
  const Tensor y_proposed = proposed->forward(x);
  // The proposed layer's y channels (stride k+1) must match the general
  // layer's outputs.
  for (index_t s = 0; s < 3; ++s)
    for (index_t u = 0; u < 2; ++u)
      EXPECT_NEAR(y_proposed.at(s, u * (n + 1)), y_general.at(s, u), 2e-3f)
          << "s=" << s << " u=" << u;
}

TEST(ConvertLayer, TruncationErrorReported) {
  Rng rng(7);
  GeneralQuadraticDense general(6, 3, rng, true);
  Rng rng2(8);
  std::vector<double> errors;
  auto proposed = convert_layer(general, 2, rng2, &errors);
  ASSERT_EQ(errors.size(), 3u);
  for (double e : errors) EXPECT_GT(e, 0.0);
  EXPECT_EQ(proposed->rank(), 2);
  EXPECT_EQ(proposed->out_features(), 3 * 3);
}

TEST(ConvertLayer, LowRankApproximationDegradesGracefully) {
  // The approximation error of the layer's quadratic response must shrink
  // as k grows.
  Rng rng(9);
  const index_t n = 6;
  GeneralQuadraticDense general(n, 1, rng, true);
  const Tensor x = random_tensor(Shape{16, n}, 10);
  const Tensor y_ref = general.forward(x);

  double prev_err = 1e18;
  for (index_t k : {index_t{1}, index_t{3}, n}) {
    Rng rng2(11);
    auto proposed = convert_layer(general, k, rng2);
    const Tensor y = proposed->forward(x);
    double err = 0.0;
    for (index_t s = 0; s < 16; ++s) {
      const double d = y.at(s, 0) - y_ref.at(s, 0);
      err += d * d;
    }
    EXPECT_LE(err, prev_err + 1e-6) << "k=" << k;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-4);  // full rank ≈ exact
}

TEST(ConvertLayer, RequiresLinearTerm) {
  Rng rng(12);
  GeneralQuadraticDense pure(4, 1, rng, /*include_linear=*/false);
  Rng rng2(13);
  EXPECT_THROW(convert_layer(pure, 2, rng2), std::runtime_error);
}

TEST(RankForEnergy, FindsMinimalRank) {
  // A matrix with one dominant eigenvalue needs k=1 for most energy.
  const index_t n = 6;
  Tensor m{Shape{n, n}};
  m.at(0, 0) = 100.0f;
  for (index_t i = 1; i < n; ++i) m.at(i, i) = 0.1f;
  EXPECT_EQ(rank_for_energy(m, 0.99), 1);
  EXPECT_EQ(rank_for_energy(m, 1.0), n);
}

TEST(RankForEnergy, ValidatesFraction) {
  const Tensor m = random_square(3, 14);
  EXPECT_THROW(rank_for_energy(m, 0.0), std::runtime_error);
  EXPECT_THROW(rank_for_energy(m, 1.5), std::runtime_error);
}

}  // namespace
}  // namespace qdnn::quadratic
