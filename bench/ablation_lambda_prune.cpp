// Ablation: post-training Λ pruning — Fig. 7's observation made
// actionable.
//
// The paper's parameter-distribution analysis shows the trained Λᵏ
// concentrates near zero in several layers; those eigendirections gate no
// meaningful quadratic response.  This bench trains the quadratic CNN,
// prunes λ entries below a relative threshold, and reports:
//   * per-layer mean effective rank before/after,
//   * accuracy before/after pruning (no retraining),
// sweeping the threshold to find how much of the quadratic machinery the
// network actually uses.
#include <cstdio>

#include "bench_util.h"
#include "models/resnet.h"
#include "nn/checkpoint.h"
#include "train/lambda_prune.h"
#include "train/trainer.h"

using namespace qdnn;
using namespace qdnn::models;
using qdnn::bench::bench_scale;
using qdnn::bench::fmt;
using qdnn::bench::print_header;
using qdnn::bench::print_row;
using qdnn::bench::print_rule;

int main() {
  const int scale = bench_scale();
  print_header("Ablation: post-training Λ pruning (Fig. 7 made actionable)");

  data::SyntheticImageConfig data_config;
  data_config.num_classes = 10;
  data_config.image_size = 16;
  data_config.noise_std = 0.7f;
  const auto train_set =
      data::make_synthetic_images(data_config, 500 * scale, 511);
  const auto test_set =
      data::make_synthetic_images(data_config, 250 * scale, 512);

  ResNetConfig config;
  config.depth = 14;
  config.num_classes = 10;
  config.image_size = 16;
  config.base_width = 10;
  // The paper trains this experiment for 180-250 epochs at lambda lr
  // 1e-4 against base 0.1 (scale 1e-3).  Our scaled runs take ~25x
  // fewer steps, so lambda's lr scale is raised to keep the total
  // lambda learning (lr x steps) comparable -- without this the
  // quadratic parameters stay at their init and the analysis reads
  // initialization noise instead of trained structure.
  config.spec = NeuronSpec::proposed(9, /*lambda_lr=*/0.05f);
  config.seed = 37;
  auto net = make_cifar_resnet(config);

  train::TrainerConfig tc;
  tc.epochs = 8 * scale;
  tc.batch_size = 32;
  tc.lr = 0.05f;
  tc.clip_norm = 5.0f;
  tc.augment_pad = 1;
  train::Trainer trainer(*net, tc);
  trainer.fit(train_set, test_set);
  const double acc_float = trainer.evaluate(test_set).test_accuracy;

  // Per-layer effective rank of the trained network (threshold 5%).
  print_header("Per-layer mean effective rank after training (k = 9)");
  CsvWriter rank_csv(
      qdnn::bench::results_dir() + "/ablation_lambda_rank.csv",
      {"layer", "effective_rank"});
  for (nn::Parameter* p : net->parameters()) {
    if (p->group != "quadratic_lambda") continue;
    const double er = train::effective_rank(p->value, 0.05);
    std::printf("  %-28s %.2f\n", p->name.c_str(), er);
    rank_csv.write_row(std::vector<std::string>{p->name, fmt(er, 3)});
  }

  print_header("Accuracy vs pruning threshold (no retraining)");
  CsvWriter csv(qdnn::bench::results_dir() + "/ablation_lambda_prune.csv",
                {"threshold", "zeroed", "test_accuracy"});
  print_row({"threshold", "lambda zeroed", "test acc"});
  print_rule();
  print_row({"none", "0", fmt(100 * acc_float, 2)});
  csv.write_row(std::vector<std::string>{"0", "0", fmt(acc_float, 4)});

  for (double threshold : {0.01, 0.05, 0.20, 0.50}) {
    auto clone = make_cifar_resnet(config);
    nn::copy_state(*net, *clone);
    index_t zeroed = 0;
    for (const auto& s : train::prune_lambdas(*clone, threshold))
      zeroed += s.zeroed;
    train::Trainer eval_trainer(*clone, tc);
    const double acc = eval_trainer.evaluate(test_set).test_accuracy;
    print_row({fmt(threshold, 2), std::to_string(zeroed),
               fmt(100 * acc, 2)});
    csv.write_row(std::vector<std::string>{
        fmt(threshold, 2), std::to_string(zeroed), fmt(acc, 4)});
  }

  std::printf(
      "\nExpected shape: small thresholds zero a sizeable fraction of λ\n"
      "with no accuracy loss (those directions were never used — Fig. 7's\n"
      "near-zero layers), while aggressive thresholds eventually bite.\n"
      "Layers with low effective rank could be exported at reduced k.\n");
  return 0;
}
