#include "runtime/inference_session.h"

#include <algorithm>

#include "linalg/gemm_backend.h"
#include "obs/trace.h"

namespace qdnn::runtime {

InferenceSession::InferenceSession(nn::ModulePtr model, SessionConfig config)
    : model_(std::move(model)), config_(std::move(config)) {
  QDNN_CHECK(model_ != nullptr, "InferenceSession: null model");
  QDNN_CHECK(config_.max_batch > 0,
             "InferenceSession: max_batch must be positive");
  model_->set_training(false);

  // Flatten the model into per-layer stages.  Composite modules expand
  // recursively; leaves become single stages consuming the previous
  // boundary.
  model_->flatten_into(stages_);
  nn::validate_pipeline(stages_, "InferenceSession");
  sample_numel_ = config_.sample_shape.numel();
  QDNN_CHECK(sample_numel_ > 0, "InferenceSession: empty sample_shape");

  // Bind step: prepack constant weights and drop training caches before
  // the warm-up pass, so the workspace watermark never includes packing
  // scratch.
  if (config_.freeze) model_->freeze();

  // Walk the shape pipeline once at max_batch: validates every stage's
  // output_shape and records per-sample boundary sizes.
  const std::vector<Shape> shapes = boundary_shapes(config_.max_batch);
  stage_sample_numel_.reserve(shapes.size());
  for (const Shape& s : shapes)
    stage_sample_numel_.push_back(s.numel() / config_.max_batch);
  output_buffer_ =
      Tensor{Shape{config_.max_batch * stage_sample_numel_.back()}};

  // Liveness-planned boundary buffer slots.
  plan_buffers();

  index_t threads = std::max<index_t>(1, config_.num_threads);
  threads = std::min(threads, config_.max_batch);
  // Sharding runs stages concurrently on disjoint batch rows.  That is
  // only sound for native forward_into implementations; the legacy
  // adapter calls forward(), which mutates per-module caches shared by
  // all shards — a data race.  Reject rather than corrupt.
  QDNN_CHECK(threads == 1 || fully_native(),
             "InferenceSession: num_threads > 1 requires every stage to "
             "support forward_into (a legacy-adapted stage is not "
             "thread-safe); run this model with num_threads = 1");
  shards_.resize(static_cast<std::size_t>(threads));

  // Private boundary buffers, sized for the largest row count a shard can
  // receive (even split of max_batch) times each slot's widest boundary.
  // Shards run stage pipelines without a barrier, so intermediates must
  // never be shared across shards.
  const index_t shard_rows_cap = (config_.max_batch + threads - 1) / threads;
  for (Shard& shard : shards_) {
    shard.buffers.reserve(slot_sample_numel_.size());
    for (index_t slot_numel : slot_sample_numel_)
      shard.buffers.emplace_back(Shape{shard_rows_cap * slot_numel});
    shard.stage_ns.assign(stages_.size(), 0);
    shard.stage_calls.assign(stages_.size(), 0);
  }

  // Validate the view plan before spawning workers so constructor errors
  // cannot leave threads behind.
  bind(config_.max_batch);

  for (index_t r = 1; r < threads; ++r)
    workers_.emplace_back([this, r] { worker_loop(static_cast<int>(r)); });

  if (config_.warmup) {
    try {
      // One dummy pass grows each shard's workspace to its watermark;
      // consolidation then leaves a single contiguous block so real
      // requests never allocate.
      Tensor dummy{batch_shape(config_.max_batch)};
      run_impl(dummy.data(), config_.max_batch);
      for (Shard& shard : shards_) {
        shard.ws.reset();
        shard.ws.consolidate();
      }
    } catch (...) {
      shutdown_workers();
      throw;
    }
  }
}

InferenceSession::~InferenceSession() { shutdown_workers(); }

void InferenceSession::worker_loop(int shard_index) {
  // Shard workers already saturate the batch dimension; nesting the
  // row-sharded gemm pool under them would oversubscribe cores and
  // perturb the N-shard-vs-solo bit-identity ordering guarantees.
  linalg::GemmSerialScope serial_gemm;
  std::uint64_t seen = 0;
  for (;;) {
    const float* input = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || job_id_ != seen; });
      if (stop_) return;
      seen = job_id_;
      input = job_input_;
    }
    try {
      run_shard(shards_[static_cast<std::size_t>(shard_index)], input);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!job_error_) job_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void InferenceSession::shutdown_workers() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

Shape InferenceSession::batch_shape(index_t n) const {
  std::vector<index_t> dims;
  dims.reserve(static_cast<std::size_t>(config_.sample_shape.rank()) + 1);
  dims.push_back(n);
  for (index_t d : config_.sample_shape) dims.push_back(d);
  return Shape(dims);
}

std::vector<Shape> InferenceSession::boundary_shapes(index_t n) const {
  std::vector<Shape> shapes;
  shapes.reserve(stages_.size());
  const Shape input_shape = batch_shape(n);
  auto shape_of = [&](index_t b) -> const Shape& {
    return b < 0 ? input_shape : shapes[static_cast<std::size_t>(b)];
  };
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const nn::PipelineStage& st = stages_[i];
    Shape out;
    if (st.is_add()) {
      QDNN_CHECK(shape_of(st.input) == shape_of(st.addend),
                 "InferenceSession: residual-add stage "
                     << i << " operand shapes " << shape_of(st.input)
                     << " vs " << shape_of(st.addend));
      out = shape_of(st.input);
    } else {
      out = st.module->output_shape(shape_of(st.input));
      QDNN_CHECK(out.rank() >= 1 && out[0] == n,
                 st.module->name()
                     << ": stage output " << out
                     << " does not keep the batch as leading dimension");
    }
    shapes.push_back(std::move(out));
  }
  return shapes;
}

void InferenceSession::plan_buffers() {
  // last_use[b]: last stage reading boundary b; a boundary nobody reads is
  // released right after its producer.  The final boundary lives in the
  // shared output buffer and never takes a slot.
  const auto s_count = static_cast<index_t>(stages_.size());
  std::vector<index_t> last_use(static_cast<std::size_t>(s_count));
  for (index_t b = 0; b < s_count; ++b)
    last_use[static_cast<std::size_t>(b)] = b;
  for (index_t i = 0; i < s_count; ++i) {
    const nn::PipelineStage& st = stages_[static_cast<std::size_t>(i)];
    if (st.input >= 0)
      last_use[static_cast<std::size_t>(st.input)] =
          std::max(last_use[static_cast<std::size_t>(st.input)], i);
    if (st.addend >= 0)
      last_use[static_cast<std::size_t>(st.addend)] =
          std::max(last_use[static_cast<std::size_t>(st.addend)], i);
  }

  // Greedy linear scan: allocate a slot for each boundary while the
  // stage's inputs are still held (forward_into forbids in/out aliasing),
  // then release every boundary whose last reader has run.  A pure chain
  // degenerates to the classic two ping-pong buffers; residual pipelines
  // hold a boundary exactly until its residual-add.
  boundary_slot_.assign(static_cast<std::size_t>(s_count), -1);
  slot_sample_numel_.clear();
  std::vector<bool> slot_free;
  for (index_t i = 0; i < s_count; ++i) {
    if (i + 1 < s_count) {
      index_t slot = -1;
      for (std::size_t s = 0; s < slot_free.size(); ++s)
        if (slot_free[s]) {
          slot = static_cast<index_t>(s);
          break;
        }
      if (slot < 0) {
        slot = static_cast<index_t>(slot_free.size());
        slot_free.push_back(false);
        slot_sample_numel_.push_back(0);
      }
      slot_free[static_cast<std::size_t>(slot)] = false;
      boundary_slot_[static_cast<std::size_t>(i)] = slot;
      slot_sample_numel_[static_cast<std::size_t>(slot)] =
          std::max(slot_sample_numel_[static_cast<std::size_t>(slot)],
                   stage_sample_numel_[static_cast<std::size_t>(i)]);
    }
    for (index_t b = 0; b <= i; ++b) {
      if (last_use[static_cast<std::size_t>(b)] == i &&
          boundary_slot_[static_cast<std::size_t>(b)] >= 0)
        slot_free[static_cast<std::size_t>(
            boundary_slot_[static_cast<std::size_t>(b)])] = true;
    }
  }

  input_bound_stages_.clear();
  input_bound_addends_.clear();
  for (index_t i = 0; i < s_count; ++i) {
    if (stages_[static_cast<std::size_t>(i)].input == -1)
      input_bound_stages_.push_back(i);
    if (stages_[static_cast<std::size_t>(i)].is_add() &&
        stages_[static_cast<std::size_t>(i)].addend == -1)
      input_bound_addends_.push_back(i);
  }
}

Shape InferenceSession::output_shape(index_t batch_size) const {
  return boundary_shapes(batch_size).back();
}

Shape InferenceSession::stage_output_shape(index_t stage,
                                           index_t batch_size) const {
  QDNN_CHECK(stage >= 0 && stage < num_stages(),
             "InferenceSession: stage " << stage << " out of "
                                        << num_stages());
  return boundary_shapes(batch_size)[static_cast<std::size_t>(stage)];
}

bool InferenceSession::fully_native() const {
  for (const nn::PipelineStage& st : stages_)
    if (!st.is_add() && !st.module->supports_forward_into()) return false;
  return true;
}

index_t InferenceSession::activation_floats() const {
  index_t total = output_buffer_.numel();
  for (const Shard& shard : shards_)
    for (const Tensor& buf : shard.buffers) total += buf.numel();
  return total;
}

index_t InferenceSession::workspace_floats() const {
  index_t total = 0;
  for (const Shard& shard : shards_) total += shard.ws.capacity();
  return total;
}

void InferenceSession::bind(index_t n) {
  // Full boundary shapes for this batch size.
  const std::vector<Shape> stage_shapes = boundary_shapes(n);

  // Rows are split as evenly as possible; shard r of T gets one of the
  // n % T remainder rows when r < n % T.
  const auto t = static_cast<index_t>(shards_.size());
  const index_t base = n / t, rem = n % t;
  index_t row = 0;
  for (index_t r = 0; r < t; ++r) {
    Shard& shard = shards_[static_cast<std::size_t>(r)];
    shard.row_begin = row;
    shard.rows = base + (r < rem ? 1 : 0);
    row += shard.rows;
    shard.in_views.clear();
    shard.add_views.clear();
    shard.out_views.clear();
    shard.in_views.reserve(stages_.size());
    shard.add_views.reserve(stages_.size());
    shard.out_views.reserve(stages_.size());

    // The pipeline-input view shape: [rows, sample...].  The data pointer
    // is bound to the caller's batch at every run (rebind — no Shape
    // copies on the hot path); output_buffer_ is a placeholder with
    // enough room for the QDNN_CHECKs in the view constructor.
    std::vector<index_t> in_dims{shard.rows};
    for (index_t d : config_.sample_shape) in_dims.push_back(d);
    const Shape input_shape{in_dims};

    // Boundary data for this shard: slot buffer, or the shared output
    // buffer slice for the final boundary.
    auto boundary_data = [&](index_t b) -> float* {
      if (b + 1 == static_cast<index_t>(stages_.size()))
        return output_buffer_.data() +
               shard.row_begin * stage_sample_numel_.back();
      return shard.buffers[static_cast<std::size_t>(
                               boundary_slot_[static_cast<std::size_t>(b)])]
          .data();
    };
    auto shard_shape = [&](index_t b) {
      std::vector<index_t> dims;
      if (b < 0) return input_shape;
      for (index_t d : stage_shapes[static_cast<std::size_t>(b)])
        dims.push_back(d);
      dims[0] = shard.rows;
      return Shape{dims};
    };

    for (std::size_t i = 0; i < stages_.size(); ++i) {
      const nn::PipelineStage& st = stages_[i];
      const float* in_data = st.input < 0 ? output_buffer_.data()
                                          : boundary_data(st.input);
      shard.in_views.emplace_back(shard_shape(st.input), in_data);
      if (st.is_add()) {
        const float* add_data = st.addend < 0 ? output_buffer_.data()
                                              : boundary_data(st.addend);
        shard.add_views.emplace_back(shard_shape(st.addend), add_data);
      } else {
        shard.add_views.emplace_back();
      }
      shard.out_views.emplace_back(shard_shape(static_cast<index_t>(i)),
                                   boundary_data(static_cast<index_t>(i)));
    }
  }

  output_view_ = ConstTensorView(stage_shapes.back(),
                                 output_buffer_.data());
  bound_n_ = n;
}

void InferenceSession::check_input_shape(const Shape& shape) const {
  QDNN_CHECK(shape.rank() == config_.sample_shape.rank() + 1,
             "InferenceSession: batch rank " << shape.rank()
                                             << " != 1 + sample rank");
  for (index_t i = 0; i < config_.sample_shape.rank(); ++i)
    QDNN_CHECK(shape[i + 1] == config_.sample_shape[i],
               "InferenceSession: batch dim " << i + 1 << " is "
                                              << shape[i + 1] << ", expected "
                                              << config_.sample_shape[i]);
  QDNN_CHECK(shape[0] >= 1 && shape[0] <= config_.max_batch,
             "InferenceSession: batch size " << shape[0]
                                             << " outside [1, "
                                             << config_.max_batch << "]");
}

const ConstTensorView& InferenceSession::run(const Tensor& batch) {
  check_input_shape(batch.shape());
  return run_impl(batch.data(), batch.dim(0));
}

const ConstTensorView& InferenceSession::run(const ConstTensorView& batch) {
  check_input_shape(batch.shape());
  return run_impl(batch.data(), batch.dim(0));
}

const ConstTensorView& InferenceSession::run_impl(const float* data,
                                                  index_t n) {
  // The view run() returns aliases output_buffer_; feeding it straight
  // back in would make stage 0 read the bytes it is overwriting (and
  // race across shards).  Reject instead of silently corrupting.
  const float* out_begin = output_buffer_.data();
  const float* out_end = out_begin + output_buffer_.numel();
  QDNN_CHECK(data + n * sample_numel_ <= out_begin || data >= out_end,
             "InferenceSession: input batch aliases the session's output "
             "buffer — copy the previous result (to_tensor()) before "
             "feeding it back");
  if (n != bound_n_) bind(n);
  if (workers_.empty()) {
    run_shard(shards_[0], data);
  } else {
    {
      std::lock_guard<std::mutex> lk(mu_);
      job_input_ = data;
      pending_ = static_cast<int>(workers_.size());
      ++job_id_;
    }
    work_cv_.notify_all();
    // Whatever happens on the main shard, the workers must drain before
    // this frame unwinds: they hold the caller's batch pointer and the
    // shared pending_/job bookkeeping.
    std::exception_ptr main_error;
    try {
      run_shard(shards_[0], data);
    } catch (...) {
      main_error = std::current_exception();
    }
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return pending_ == 0; });
    std::exception_ptr worker_error = job_error_;
    job_error_ = nullptr;
    lk.unlock();
    if (main_error) std::rethrow_exception(main_error);
    if (worker_error) std::rethrow_exception(worker_error);
  }
  return output_view_;
}

void InferenceSession::run_shard(Shard& shard, const float* input) const {
  if (shard.rows == 0) return;
  const float* shard_input = input + shard.row_begin * sample_numel_;
  for (index_t i : input_bound_stages_)
    shard.in_views[static_cast<std::size_t>(i)].rebind(shard_input);
  for (index_t i : input_bound_addends_)
    shard.add_views[static_cast<std::size_t>(i)].rebind(shard_input);
  // Stage profiling piggybacks on the trace gate: two clock reads per
  // stage while tracing, nothing at all (one relaxed load) when off.
  // Each shard writes only its own accumulators — no cross-thread writes.
  const bool profiling = obs::trace_enabled();
  long long t_prev = profiling ? obs::now_ns() : 0;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const nn::PipelineStage& st = stages_[i];
    if (st.is_add()) {
      // Residual-add stage: out = in + addend, the exact operand order of
      // the training path's `main += shortcut`.
      const float* a = shard.in_views[i].data();
      const float* b = shard.add_views[i].data();
      float* o = shard.out_views[i].data();
      const index_t count = shard.out_views[i].numel();
      for (index_t j = 0; j < count; ++j) o[j] = a[j] + b[j];
    } else {
      // Scratch lives only within a stage; rewinding here caps the
      // workspace at the per-stage maximum instead of the pipeline sum.
      shard.ws.reset();
      st.module->forward_into(shard.in_views[i], shard.out_views[i],
                              shard.ws);
    }
    if (profiling) {
      const long long t_now = obs::now_ns();
      shard.stage_ns[i] += t_now - t_prev;
      ++shard.stage_calls[i];
      t_prev = t_now;
    }
  }
}

std::vector<obs::StageTiming> InferenceSession::stage_profile() const {
  std::vector<obs::StageTiming> out;
  out.reserve(stages_.size());
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const nn::PipelineStage& st = stages_[i];
    obs::StageTiming t;
    t.name = st.is_add() ? "residual_add" : st.module->name();
    for (const Shard& shard : shards_) {
      t.calls += shard.stage_calls[i];
      t.total_ns += shard.stage_ns[i];
    }
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace qdnn::runtime
