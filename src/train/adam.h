// Adam optimizer (Kingma & Ba) with decoupled weight decay (AdamW-style)
// and per-parameter lr_scale — the optimizer of the paper's Transformer
// recipe ("the same settings as [3]", which trains with Adam +
// warmup/inverse-sqrt).  The CNN experiments keep SGD+momentum as in the
// paper; both optimizers share the Parameter/lr_scale machinery so Λᵏ's
// reduced learning rate works under either.
#pragma once

#include <vector>

#include "nn/parameter.h"

namespace qdnn::train {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.98f;  // Vaswani et al. use 0.98
  float eps = 1e-9f;
  float weight_decay = 0.0f;  // decoupled (applied to the weights directly)
  float clip_norm = 0.0f;     // <= 0 disables
};

class Adam {
 public:
  Adam(std::vector<nn::Parameter*> params, AdamConfig config);

  void step();
  void zero_grad();

  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }
  double grad_norm() const;

 private:
  std::vector<nn::Parameter*> params_;
  AdamConfig config_;
  std::vector<Tensor> m_;  // first-moment estimates
  std::vector<Tensor> v_;  // second-moment estimates
  long long step_count_ = 0;
};

}  // namespace qdnn::train
