// PrefillPool: the prefill half of the prefill/decode split.
//
// PR 4's scheduler admitted synchronously — BatchScheduler::admit_into
// ran the whole encoder (prime_row) on the serving thread, so one long
// prefill stalled every live decode row and tick time jittered with
// source length.  The pool moves that work off the serving thread:
//
//   * submit() enqueues a prefill job (the request plus its scheduler
//     bookkeeping, including the warm token buffer reserved at submit).
//     The scheduler feeds the pool in priority/aging order and keeps at
//     most `slots` jobs inside it, so a later high-priority submit can
//     still overtake everything waiting in the scheduler's own queue.
//   * Worker threads — the same persistent mutex/condvar pool idiom as
//     runtime::InferenceSession's batch sharding — pop jobs, claim a
//     preallocated runtime::PrefillStaging slot, and run the expensive
//     half, DecodeSession::prime_compute: the masked native encoder pass
//     plus every layer's cross-K/V projection, all computed from and
//     written into the worker's exclusively-held staging slot.
//     prime_compute touches no session or model mutable state (stateless
//     kernels over frozen weights), so N workers scale the prefill
//     throughput across N cores — no mutex, no serialization — while the
//     serving thread's step()/commit_row runs undisturbed.  Each slot's
//     workspace is warmed at pool construction (init_staging), so
//     steady-state prefill is zero-alloc end to end.
//   * The serving thread drains finished prefills each tick (try_take,
//     completion order), commits the staged K/V into a free batch row
//     (DecodeSession::commit_row — O(K/V copy), zero heap allocations)
//     and releases the slot for the next job.
//
// Admission therefore costs the scheduler tick exactly one K/V copy, and
// tick-time jitter no longer tracks source length (bench/serve_bench.cpp
// measures sync vs async p99 tick latency under a prefill-heavy trace).
//
// Determinism: prefill computes the same bits on any thread (the encoder
// is deterministic and per-request), and per-request decode output is
// independent of admission interleaving (the PR 4 masked-attention
// contract) — so async admission is bit-identical to the synchronous
// scheduler per request, fuzzed in tests/serve/prefill_test.cpp.  A
// worker-thread failure is captured into Finished::error and handed to
// the serving thread at the next try_take, which NEVER throws — the
// scheduler resolves the failed id with a FinishReason::kError result,
// so every submitted request is accounted for.
//
// Thread-safety: submit/try_take/release/pending are safe from the
// serving thread; the pool owns its workers and joins them on
// destruction.  The pool must be destroyed before the session it feeds.
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "runtime/decode_session.h"
#include "serve/request.h"

namespace qdnn::serve {

// One queued admission: the request plus the scheduler bookkeeping that
// must survive until the row retires.  `tokens` is the request's warm
// output buffer, reserved to its step budget at submit() — it is swapped
// into the batch slot at admission and handed off inside the
// RequestResult at retirement, so the retire→admit slot cycle on the
// serving thread never heap-allocates.
struct PrefillJob {
  index_t id = -1;
  index_t submit_tick = 0;
  // Effective step budget (max_new_tokens, or the session's max_steps
  // when unset), resolved ONCE at submit: `tokens` is reserved to
  // exactly this, and the slot decodes to exactly this, so the warm
  // buffer can never fall short of the budget mid-tick.
  index_t budget = 0;
  Request request;
  std::vector<index_t> tokens;  // reserved at submit, empty until decode
  // Observability timestamps (obs::now_ns; 0 = this request was not
  // trace-sampled).  submit_ns is stamped by the scheduler; the prefill
  // window is stamped by whichever thread runs prime_compute — a pool
  // worker in async mode, the serving thread in sync mode.
  long long submit_ns = 0;
  long long prefill_start_ns = 0;
  long long prefill_end_ns = 0;
  // Trace sampling: decided ONCE at submit (every Nth request while
  // tracing — obs::trace_sample()), so a sampled request's lifecycle
  // timeline and phase timestamps are complete and the rest keep the
  // one-relaxed-load fast path at every per-request record site.
  bool sampled = false;
  // Preemption replay (PR 10): set when this job is a row the scheduler
  // evicted under KV-page pressure and requeued.  `tokens` then holds
  // everything decoded so far; at re-admission the scheduler replays
  // them through the session — feeding, never sampling (no Rng draws,
  // no streaming, no appends) — which rebuilds the row's KV state
  // bit-identically, then decoding resumes from `resume_rng` exactly
  // where it stopped.  The carried stamps keep the result's admission /
  // first-token accounting at the ORIGINAL values, so a preempted
  // request's result differs from the unpreempted run only in
  // finish_tick.
  bool resume = false;
  Rng resume_rng{0};
  index_t resume_admit_tick = -1;
  index_t resume_first_token_tick = -1;
  long long resume_admit_ns = 0;
  long long resume_first_token_ns = 0;
  long long resume_prefill_ns = 0;
};

class PrefillPool {
 public:
  // A finished prefill: the job plus the staging slot holding its
  // projected K/V.  `error` is set instead when the worker threw — the
  // job (and its id) is preserved so the caller can resolve it.
  struct Finished {
    PrefillJob job;
    index_t slot = -1;
    std::exception_ptr error;
  };

  // `workers` >= 1 threads compute over `slots` >= 1 preallocated staging
  // slots (a job waits queued until a slot frees).  The session reference
  // must outlive the pool.  `trace` (optional, must outlive the pool) is
  // where workers record prefill_start/prefill_end events; the scheduler
  // passes its own per-shard ring so pool events interleave with the
  // serving thread's timeline.
  PrefillPool(runtime::DecodeSession& session, index_t workers,
              index_t slots, obs::TraceRing* trace = nullptr);
  ~PrefillPool();

  PrefillPool(const PrefillPool&) = delete;
  PrefillPool& operator=(const PrefillPool&) = delete;

  // Enqueues a job (allocates: queue growth — the submit edge allocates
  // by contract, like BatchScheduler::submit).
  void submit(PrefillJob job);

  // Non-blocking: moves the oldest finished prefill into `out` and
  // returns true, or returns false when none is ready.  Never throws;
  // a worker failure arrives in out.error with the job intact.  Performs
  // no heap allocation.  The caller must release(out.slot) once the
  // staging has been committed (or the error handled).
  bool try_take(Finished& out);

  // Non-blocking: takes the oldest ERRORED prefill (any position in the
  // finished queue) or returns false.  Resolving an error needs no batch
  // row, so callers drain these unconditionally before gating successful
  // prefills on free rows — an errored job must never sit on a staging
  // slot waiting for a row it will not use.
  bool try_take_error(Finished& out) {
    return try_take_if(
        [](const Finished& f) { return static_cast<bool>(f.error); }, out);
  }

  // Non-blocking: takes the oldest finished prefill matching `pred` (any
  // position in the finished queue) or returns false.  The scheduler
  // uses this to drain doomed prefills — errored, cancelled mid-compute,
  // or past their deadline — unconditionally: resolving them needs no
  // batch row, so they must not queue behind the free-row gate holding
  // their staging slot hostage.  `pred` runs under the pool lock; keep
  // it trivial and never call back into the pool.
  template <class Pred>
  bool try_take_if(Pred&& pred, Finished& out) {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto it = finished_.begin(); it != finished_.end(); ++it) {
      if (!pred(static_cast<const Finished&>(*it))) continue;
      out = std::move(*it);
      finished_.erase(it);
      --pending_;
      return true;
    }
    return false;
  }

  // Blocks until a finished prefill is ready for try_take (returns
  // immediately when one already is, or when nothing is pending at all).
  // The alternative — spinning ticks or yield loops while the only
  // outstanding work is prefill compute — burns the serving core the
  // workers need.
  void wait_ready() const;

  // Staged K/V of a slot returned by try_take (valid until release).
  const runtime::PrefillStaging& staging(index_t slot) const;
  // Mutable face of the same slot, for DecodeSession::commit_row /
  // release_staged_prefix (which consume the slot's staged prefix-page
  // ownership).  Serving-thread only, between try_take and release.
  runtime::PrefillStaging& staging_mut(index_t slot);

  // Returns a slot to the free list so the next queued job can compute.
  // Performs no heap allocation.
  void release(index_t slot);

  // Jobs submitted and not yet taken (queued + computing + finished):
  // the scheduler's idle() drains this to zero.
  index_t pending() const;
  // Finished prefills awaiting try_take.
  index_t ready() const;
  index_t workers() const { return static_cast<index_t>(workers_.size()); }
  index_t slots() const { return static_cast<index_t>(staging_.size()); }

 private:
  void worker_loop();

  runtime::DecodeSession* session_;
  obs::TraceRing* trace_ = nullptr;  // not owned; may be null
  std::vector<runtime::PrefillStaging> staging_;
  std::vector<index_t> free_slots_;  // stack, capacity = slots
  std::deque<PrefillJob> queue_;
  std::deque<Finished> finished_;
  index_t pending_ = 0;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  mutable std::condition_variable done_cv_;  // signaled per finished job
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace qdnn::serve
