#include "obs/metrics.h"

#include <cctype>
#include <sstream>
#include <tuple>
#include <utility>

#include "core/check.h"

namespace qdnn::obs {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  bool segment_start = true;
  for (char c : name) {
    if (c == '.') {
      if (segment_start) return false;  // empty segment
      segment_start = true;
      continue;
    }
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (segment_start && !alpha && c != '_') return false;
    if (!alpha && !digit && c != '_') return false;
    segment_start = false;
  }
  return !segment_start;  // no trailing dot
}

std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.') c = '_';
  }
  return out;
}

std::string json_escape(const std::string& s) {
  // Metric names are validated identifiers, so this only has to survive
  // the characters valid_metric_name admits — no escapes needed, but keep
  // the seam explicit for future label support.
  return s;
}

}  // namespace

Histogram::Histogram(std::vector<long long> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    QDNN_CHECK(bounds_[i - 1] < bounds_[i],
               "histogram bounds must be strictly increasing: bounds["
                   << (i - 1) << "]=" << bounds_[i - 1] << " vs bounds[" << i
                   << "]=" << bounds_[i]);
  }
}

void MetricsRegistry::claim_name(const std::string& name, Kind kind) {
  QDNN_CHECK(valid_metric_name(name),
             "invalid metric name '"
                 << name
                 << "': want dot-separated [A-Za-z_][A-Za-z0-9_]* segments");
  auto it = kinds_.find(name);
  if (it == kinds_.end()) {
    kinds_.emplace(name, kind);
    return;
  }
  QDNN_CHECK(it->second == kind, "metric '" << name
                                            << "' already registered as a "
                                               "different instrument kind");
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  claim_name(name, Kind::kCounter);
  auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return *it->second;
  // Instruments hold atomics (immovable) — construct in place.
  counters_.emplace_back(std::piecewise_construct,
                         std::forward_as_tuple(name),
                         std::forward_as_tuple());
  Counter* c = &counters_.back().second;
  counter_index_.emplace(name, c);
  return *c;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  claim_name(name, Kind::kGauge);
  auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return *it->second;
  gauges_.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                       std::forward_as_tuple());
  Gauge* g = &gauges_.back().second;
  gauge_index_.emplace(name, g);
  return *g;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<long long>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  claim_name(name, Kind::kHistogram);
  auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) {
    QDNN_CHECK(it->second->bounds() == bounds,
               "histogram '" << name
                             << "' re-registered with different bounds");
    return *it->second;
  }
  QDNN_CHECK(!bounds.empty(),
             "histogram '" << name << "' needs at least one bucket bound");
  histograms_.emplace_back(std::piecewise_construct,
                           std::forward_as_tuple(name),
                           std::forward_as_tuple(bounds));
  Histogram* h = &histograms_.back().second;
  histogram_index_.emplace(name, h);
  return *h;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c.value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g.value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue hv;
    hv.name = name;
    hv.bounds = h.bounds();
    hv.buckets.resize(hv.bounds.size() + 1);
    for (std::size_t i = 0; i < hv.buckets.size(); ++i) {
      hv.buckets[i] = h.bucket_count(i);
    }
    hv.sum = h.sum();
    hv.count = h.count();
    snap.histograms.push_back(std::move(hv));
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::ostringstream os;
  for (const auto& c : counters) {
    const std::string n = prom_name(c.name);
    os << "# TYPE " << n << " counter\n" << n << " " << c.value << "\n";
  }
  for (const auto& g : gauges) {
    const std::string n = prom_name(g.name);
    os << "# TYPE " << n << " gauge\n" << n << " " << g.value << "\n";
  }
  for (const auto& h : histograms) {
    const std::string n = prom_name(h.name);
    os << "# TYPE " << n << " histogram\n";
    long long cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      os << n << "_bucket{le=\"" << h.bounds[i] << "\"} " << cumulative
         << "\n";
    }
    cumulative += h.buckets.back();
    os << n << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    os << n << "_sum " << h.sum << "\n";
    os << n << "_count " << h.count << "\n";
  }
  return os.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i ? ", " : "") << "\"" << json_escape(counters[i].name)
       << "\": " << counters[i].value;
  }
  os << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? ", " : "") << "\"" << json_escape(gauges[i].name)
       << "\": " << gauges[i].value;
  }
  os << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    os << (i ? ",\n    " : "") << "\"" << json_escape(h.name)
       << "\": {\"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      os << (b ? ", " : "") << h.bounds[b];
    }
    os << "], \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      os << (b ? ", " : "") << h.buckets[b];
    }
    os << "], \"sum\": " << h.sum << ", \"count\": " << h.count << "}";
  }
  os << "}\n}\n";
  return os.str();
}

}  // namespace qdnn::obs
