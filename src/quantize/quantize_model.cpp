#include "quantize/quantize_model.h"

#include <algorithm>

namespace qdnn::quantize {

namespace {

bool should_quantize(const nn::Parameter& p, const QuantizeConfig& cfg) {
  if (p.numel() == 0) return false;
  // decay == false marks biases and norm affine parameters throughout qdnn.
  if (cfg.keep_bias_float && !p.decay) return false;
  return true;
}

// Scale storage overhead: one fp32 per row when per-channel applies, one
// fp32 per tensor otherwise.
index_t quant_bytes_for(const nn::Parameter& p, int bits, bool per_channel) {
  const index_t payload = (p.numel() * bits + 7) / 8;
  const index_t scales =
      (per_channel && p.value.rank() >= 2) ? p.value.dim(0) : 1;
  return payload + scales * static_cast<index_t>(sizeof(float));
}

}  // namespace

std::vector<ParamQuantRecord> quantize_parameters(nn::Module& m,
                                                  const QuantizeConfig& cfg) {
  std::vector<ParamQuantRecord> records;
  for (nn::Parameter* p : m.parameters()) {
    ParamQuantRecord rec;
    rec.name = p->name;
    rec.group = p->group;
    rec.numel = p->numel();
    if (!should_quantize(*p, cfg)) {
      rec.bits = 32;
      records.push_back(std::move(rec));
      continue;
    }
    const int bits = cfg.bits_for_group(p->group);
    rec.bits = bits;
    rec.quantized = true;
    rec.error = quantization_error(p->value, bits);
    p->value = (cfg.per_channel && p->value.rank() >= 2)
                   ? fake_quantize_per_channel(p->value, bits)
                   : fake_quantize(p->value, bits);
    records.push_back(std::move(rec));
  }
  return records;
}

StorageReport storage_report(nn::Module& m, const QuantizeConfig& cfg) {
  StorageReport report;
  auto group_of = [&report](const std::string& g) -> GroupStorage& {
    auto it = std::find_if(report.groups.begin(), report.groups.end(),
                           [&g](const GroupStorage& s) { return s.group == g; });
    if (it != report.groups.end()) return *it;
    report.groups.push_back(GroupStorage{g, 0, 0, 0});
    return report.groups.back();
  };

  for (nn::Parameter* p : m.parameters()) {
    GroupStorage& gs = group_of(p->group);
    const index_t fp32 = p->numel() * static_cast<index_t>(sizeof(float));
    gs.numel += p->numel();
    gs.fp32_bytes += fp32;
    if (should_quantize(*p, cfg)) {
      gs.quant_bytes += quant_bytes_for(*p, cfg.bits_for_group(p->group),
                                        cfg.per_channel);
    } else {
      gs.quant_bytes += fp32;  // left in float
    }
  }
  for (const GroupStorage& gs : report.groups) {
    report.total_numel += gs.numel;
    report.total_fp32_bytes += gs.fp32_bytes;
    report.total_quant_bytes += gs.quant_bytes;
  }
  return report;
}

}  // namespace qdnn::quantize
