// Quickstart: the proposed efficient quadratic neuron in ~80 lines.
//
//  1. Build a single ProposedQuadraticDense layer and inspect its output
//     layout {y, fᵏ} (paper Sec. III-B).
//  2. Show the Table I cost model: per-output cost is essentially a
//     linear neuron's.
//  3. Train a tiny quadratic MLP on a task a width-matched *linear* MLP
//     cannot solve: y = sign(x₁·x₂) — a purely second-order function.
//  4. Deploy the trained model behind runtime::InferenceSession — the
//     allocation-free serving path — and check it reproduces the
//     training-API outputs bit for bit.
//
// Build & run:  cmake -B build && cmake --build build -j
//               ./build/example_quickstart
#include <cstdio>

#include "nn/loss.h"
#include "nn/sequential.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "quadratic/complexity.h"
#include "quadratic/quad_dense.h"
#include "runtime/inference_session.h"
#include "train/sgd.h"

using namespace qdnn;
using quadratic::NeuronSpec;

int main() {
  // --- 1. One quadratic neuron -------------------------------------------
  Rng rng(7);
  quadratic::ProposedQuadraticDense neuron(/*in=*/8, /*units=*/1,
                                           /*rank=*/3, rng);
  Tensor x{Shape{1, 8}};
  rng.fill_uniform(x, -1.0f, 1.0f);
  const Tensor out = neuron.forward(x);
  std::printf("one neuron, fan-in 8, rank 3 -> %lld outputs:\n",
              static_cast<long long>(out.dim(1)));
  std::printf("  y  (quadratic output)    = %+.4f\n", out[0]);
  for (index_t i = 0; i < 3; ++i)
    std::printf("  f%lld (intermediate feature) = %+.4f\n",
                static_cast<long long>(i + 1), out[1 + i]);

  // --- 2. Cost model (paper Table I / Eq. 9-10) --------------------------
  const NeuronSpec spec = NeuronSpec::proposed(9);
  for (index_t n : {64, 576}) {
    std::printf(
        "\nfan-in %-4lld: params/output %.2f, MACs/output %.2f "
        "(linear neuron: %lld / %lld)\n",
        static_cast<long long>(n), quadratic::params_per_output(spec, n),
        quadratic::macs_per_output(spec, n), static_cast<long long>(n),
        static_cast<long long>(n));
  }

  // --- 3. A second-order task --------------------------------------------
  // y = [x1*x2 > 0]: no linear classifier separates this, a quadratic
  // neuron does so natively.
  auto make_data = [&](index_t count, std::uint64_t seed) {
    Rng data_rng(seed);
    Tensor inputs{Shape{count, 2}};
    std::vector<index_t> labels(static_cast<std::size_t>(count));
    for (index_t i = 0; i < count; ++i) {
      const float a = static_cast<float>(data_rng.uniform(-1.0, 1.0));
      const float b = static_cast<float>(data_rng.uniform(-1.0, 1.0));
      inputs.at(i, 0) = a;
      inputs.at(i, 1) = b;
      labels[static_cast<std::size_t>(i)] = (a * b > 0) ? 1 : 0;
    }
    return std::pair{inputs, labels};
  };
  const auto [train_x, train_y] = make_data(512, 1);
  const auto [test_x, test_y] = make_data(256, 2);

  auto run = [&](bool use_quadratic) {
    Rng net_rng(11);
    auto net = std::make_unique<nn::Sequential>(use_quadratic ? "quad_mlp"
                                                              : "linear_mlp");
    if (use_quadratic) {
      net->append(quadratic::make_dense_neuron(NeuronSpec::proposed(3), 2,
                                               8, net_rng, "q1"));
      net->emplace<nn::ReLU>();
      net->emplace<nn::Linear>(8, 2, net_rng, true, "head");
    } else {
      net->emplace<nn::Linear>(2, 8, net_rng, true, "l1");
      net->emplace<nn::ReLU>();
      net->emplace<nn::Linear>(8, 2, net_rng, true, "head");
    }
    train::Sgd opt(net->parameters(), {0.1f, 0.9f, 1e-4f});
    nn::CrossEntropyLoss loss;
    for (int epoch = 0; epoch < 60; ++epoch) {
      opt.zero_grad();
      const nn::LossResult res = loss(net->forward(train_x), train_y);
      net->backward(res.grad_logits);
      opt.step();
    }
    net->set_training(false);
    const nn::LossResult res = loss(net->forward(test_x), test_y);
    const double acc = static_cast<double>(res.correct) / test_y.size();
    return std::pair{acc, std::move(net)};
  };
  auto [linear_acc, linear_net] = run(false);
  auto [quad_acc, quad_net] = run(true);
  std::printf(
      "\ntask y = sign(x1*x2):  linear MLP %.1f%%  |  quadratic MLP "
      "%.1f%%\n",
      100 * linear_acc, 100 * quad_acc);
  std::printf("(the quadratic neuron represents x1*x2 exactly; a "
              "width-matched linear-first-layer MLP struggles)\n");

  // --- 4. Serving with InferenceSession --------------------------------
  // The session owns the model, preallocates activations + workspace at
  // construction, and serves run() with zero steady-state allocations.
  const Tensor legacy_logits = quad_net->forward(test_x);
  runtime::SessionConfig session_config;
  session_config.sample_shape = Shape{2};
  session_config.max_batch = test_x.dim(0);
  runtime::InferenceSession session(std::move(quad_net), session_config);
  const ConstTensorView& served_logits = session.run(test_x);
  std::printf(
      "\nInferenceSession: %lld stages (all allocation-free: %s), "
      "%lld activation + %lld workspace floats preallocated\n",
      static_cast<long long>(session.num_stages()),
      session.fully_native() ? "yes" : "no",
      static_cast<long long>(session.activation_floats()),
      static_cast<long long>(session.workspace_floats()));
  std::printf("session logits == training-API logits: %s\n",
              view_max_abs_diff(served_logits,
                                ConstTensorView(legacy_logits)) == 0.0f
                  ? "bit-identical"
                  : "MISMATCH");
  return 0;
}
