// Internal kernel interface behind the backend seam (gemm_backend.h).
// gemm.cpp's entry points normalize operands (beta scaling, transpose
// packing, PackedWeights layout) into one accumulate-only call:
//
//   C(m,n) += alpha * A(m,k,lda) * B
//
// where B is either a plain row-major [k,n] block or a tile-panel pack
// (PackLayout::kTilePanel): ceil(n/16) panels, each k x 16 floats with
// the tail panel zero-padded, so a panel row is one contiguous
// 16-float B slice for the microkernel.  Both layouts collapse to a
// (base, stride) pair per column panel, which is how every kernel
// addresses B — the FMA sequence, and therefore the result bits, are
// identical between the two layouts within a backend.
#pragma once

#include "core/tensor.h"
#include "linalg/gemm_backend.h"

namespace qdnn::linalg::detail {

// Panel width of the tile-panel pack layout, shared by the AVX2 (6x16)
// and NEON (4x16) microkernels.
inline constexpr index_t kPanelWidth = 16;

// B operand descriptor.  panel == false: row-major [k,n] with leading
// dimension ld.  panel == true: tile-panel layout (ld ignored).
struct BDesc {
  const float* data = nullptr;
  index_t ld = 0;
  bool panel = false;
};

// Reference blocked scalar kernel (the seed gemm_nn loop, minus the
// data-dependent av == 0 branch that blocked vectorization — the
// alpha == 0 short-circuit lives at the gemm() entry points).
void gemm_kernel_generic(index_t m, index_t n, index_t k, float alpha,
                         const float* a, index_t lda, const BDesc& b,
                         float* c, index_t ldc);

float dot_generic(const float* a, const float* b, index_t n);
void axpy_generic(index_t n, float alpha, const float* x, float* y);

#if defined(QDNN_SIMD_AVX2)
// 6x16 register-tiled AVX2/FMA microkernel: per k step, one broadcast
// per A row and two 8-lane FMAs per row against a streamed 16-column B
// panel; ragged m via 1..5-row tile variants, ragged n via masked
// loads/stores over the tail panel.
void gemm_kernel_avx2(index_t m, index_t n, index_t k, float alpha,
                      const float* a, index_t lda, const BDesc& b,
                      float* c, index_t ldc);
float dot_avx2(const float* a, const float* b, index_t n);
void axpy_avx2(index_t n, float alpha, const float* x, float* y);
#endif

#if defined(QDNN_SIMD_NEON)
// 4x16 register-tiled NEON kernel: per k step, one lane broadcast per A
// row and four 4-lane FMAs per row against the 16-column B panel.
void gemm_kernel_neon(index_t m, index_t n, index_t k, float alpha,
                      const float* a, index_t lda, const BDesc& b,
                      float* c, index_t ldc);
float dot_neon(const float* a, const float* b, index_t n);
void axpy_neon(index_t n, float alpha, const float* x, float* y);
#endif

// Dispatch used by gemm.cpp: runs `backend`'s kernel over C's rows,
// sharding [0,m) across the persistent pool when the threaded path is
// enabled and 2*m*n*k clears the min-work threshold.  Expects the
// degenerate cases (m/n/k == 0, alpha == 0) to be filtered by the
// caller.
void run_gemm(GemmBackend backend, index_t m, index_t n, index_t k,
              float alpha, const float* a, index_t lda, const BDesc& b,
              float* c, index_t ldc);

// gemm.cpp-internal counter hook for the allocating convenience
// overload.
void note_heap_pack_call();

}  // namespace qdnn::linalg::detail
