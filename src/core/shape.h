// Shape: an immutable-ish small vector of dimension extents for Tensor.
//
// Row-major semantics throughout the library.  Kept deliberately simple:
// qdnn tensors are always dense and contiguous, so a Shape fully determines
// the memory layout.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <ostream>
#include <vector>

#include "core/check.h"

namespace qdnn {

using index_t = std::int64_t;

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<index_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<index_t> dims) : dims_(std::move(dims)) {
    validate();
  }

  index_t rank() const { return static_cast<index_t>(dims_.size()); }

  index_t operator[](index_t i) const {
    QDNN_CHECK(i >= 0 && i < rank(), "shape index " << i << " out of rank "
                                                    << rank());
    return dims_[static_cast<std::size_t>(i)];
  }

  // Total number of elements; 1 for a rank-0 (scalar) shape.
  index_t numel() const {
    index_t n = 1;
    for (index_t d : dims_) n *= d;
    return n;
  }

  const std::vector<index_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  // Row-major strides (in elements, not bytes).
  std::vector<index_t> strides() const {
    std::vector<index_t> s(dims_.size(), 1);
    for (index_t i = rank() - 2; i >= 0; --i) {
      s[static_cast<std::size_t>(i)] =
          s[static_cast<std::size_t>(i + 1)] * dims_[static_cast<std::size_t>(i + 1)];
    }
    return s;
  }

  std::string to_string() const {
    std::string out = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(dims_[i]);
    }
    return out + "]";
  }

 private:
  void validate() const {
    for (index_t d : dims_)
      QDNN_CHECK(d >= 0, "negative dimension in shape " << to_string());
  }

  std::vector<index_t> dims_;
};

inline std::ostream& operator<<(std::ostream& os, const Shape& s) {
  return os << s.to_string();
}

}  // namespace qdnn
