#include "models/transformer/positional.h"

#include <cmath>

namespace qdnn::models {

PositionalEncoding::PositionalEncoding(index_t max_len, index_t d_model)
    : max_len_(max_len), d_model_(d_model), table_{Shape{max_len, d_model}} {
  for (index_t pos = 0; pos < max_len; ++pos) {
    for (index_t i = 0; i < d_model; i += 2) {
      const double angle =
          pos / std::pow(10000.0, static_cast<double>(i) / d_model);
      table_.at(pos, i) = static_cast<float>(std::sin(angle));
      if (i + 1 < d_model)
        table_.at(pos, i + 1) = static_cast<float>(std::cos(angle));
    }
  }
}

void PositionalEncoding::add_to(Tensor& flat, index_t n, index_t t) const {
  QDNN_CHECK(t <= max_len_, "sequence length " << t << " exceeds max_len "
                                               << max_len_);
  QDNN_CHECK_EQ(flat.dim(0), n * t, "positional: rows");
  QDNN_CHECK_EQ(flat.dim(1), d_model_, "positional: d_model");
  for (index_t s = 0; s < n; ++s)
    for (index_t pos = 0; pos < t; ++pos) {
      float* row = flat.data() + (s * t + pos) * d_model_;
      const float* pe = table_.data() + pos * d_model_;
      for (index_t d = 0; d < d_model_; ++d) row[d] += pe[d];
    }
}

}  // namespace qdnn::models
