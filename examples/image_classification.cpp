// Example: image classification with a quadratic ResNet — the paper's
// Sec. IV-A workload end to end on the synthetic CIFAR-10 substitute.
//
// Trains a linear ResNet-14 and a quadratic (proposed, k=9) ResNet-14
// side by side, reporting per-epoch accuracy, final parameter/MAC costs,
// and the per-group parameter breakdown.
//
// Run: ./build/examples/image_classification [epochs]
#include <cstdio>
#include <cstdlib>

#include "analysis/counters.h"
#include "models/resnet.h"
#include "train/trainer.h"

using namespace qdnn;
using namespace qdnn::models;

int main(int argc, char** argv) {
  const index_t epochs = argc > 1 ? std::atoi(argv[1]) : 6;

  data::SyntheticImageConfig data_config;
  data_config.num_classes = 10;
  data_config.image_size = 16;
  data_config.noise_std = 0.6f;
  data_config.shape_amp = 0.3f;
  const auto train_set = data::make_synthetic_images(data_config, 500, 1);
  const auto test_set = data::make_synthetic_images(data_config, 250, 2);
  std::printf("synthetic CIFAR-10 substitute: %lld train / %lld test\n\n",
              static_cast<long long>(train_set.size()),
              static_cast<long long>(test_set.size()));

  for (bool quadratic : {false, true}) {
    ResNetConfig config;
    config.depth = 14;
    config.num_classes = 10;
    config.image_size = 16;
    config.base_width = 8;
    config.spec = quadratic ? NeuronSpec::proposed(9, /*lambda_lr=*/1e-3f)
                            : NeuronSpec::linear();
    config.seed = 5;
    auto net = make_cifar_resnet(config);

    const auto breakdown = analysis::count_parameters(*net);
    std::printf("=== %s ResNet-14: %lld params, %.2f MMACs/image ===\n",
                quadratic ? "quadratic(k=9)" : "linear",
                static_cast<long long>(breakdown.total),
                net->macs_per_image() / 1e6);
    for (const auto& [group, count] : breakdown.by_group)
      std::printf("    %-18s %lld\n", group.c_str(),
                  static_cast<long long>(count));

    train::TrainerConfig tc;
    tc.epochs = epochs;
    tc.batch_size = 32;
    tc.lr = 0.05f;
    tc.clip_norm = 5.0f;
    tc.lr_milestones = {epochs * 2 / 3};
    tc.augment_pad = 2;  // the paper's pad-crop + flip recipe
    train::Trainer trainer(*net, tc);
    trainer.on_epoch = [](const train::EpochStats& e) {
      std::printf("  epoch %2lld  train loss %.4f acc %5.1f%%  test acc "
                  "%5.1f%%%s\n",
                  static_cast<long long>(e.epoch), e.train_loss,
                  100 * e.train_accuracy, 100 * e.test_accuracy,
                  e.diverged ? "  [eval diverged - BN stats settling]" : "");
    };
    trainer.fit(train_set, test_set);
    std::printf("\n");
  }
  std::printf(
      "Expected: the quadratic network reaches equal-or-better accuracy\n"
      "at comparable parameter count (the paper's Fig. 4 in miniature).\n");
  return 0;
}
