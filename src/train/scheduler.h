// Learning-rate schedules.  MultiStepLr reproduces the paper's CIFAR
// recipe (×0.1 at epochs 90 and 135 of 180) and the ImageNet recipe
// (×0.1 at 30/60/90 of 100); WarmupInvSqrt is the Transformer schedule of
// Vaswani et al. used for the Table II runs.
#pragma once

#include <vector>

#include <functional>

#include "core/shape.h"
#include "train/adam.h"
#include "train/sgd.h"

namespace qdnn::train {

class MultiStepLr {
 public:
  MultiStepLr(Sgd& optimizer, float base_lr, std::vector<index_t> milestones,
              float gamma = 0.1f);

  // Call once per epoch, with the 0-based epoch about to start.
  void set_epoch(index_t epoch);
  float lr_at(index_t epoch) const;

 private:
  Sgd* optimizer_;
  float base_lr_;
  std::vector<index_t> milestones_;
  float gamma_;
};

class WarmupInvSqrt {
 public:
  WarmupInvSqrt(Sgd& optimizer, float peak_lr, index_t warmup_steps);
  WarmupInvSqrt(Adam& optimizer, float peak_lr, index_t warmup_steps);

  // Call once per optimization step (1-based internally).
  void step();
  float lr_at(index_t step) const;

 private:
  std::function<void(float)> set_lr_;
  float peak_lr_;
  index_t warmup_steps_;
  index_t step_count_ = 0;
};

}  // namespace qdnn::train
