// Lightweight runtime assertion macros used across qdnn.
//
// QDNN_CHECK is always on (it guards API contracts: shape mismatches,
// invalid hyper-parameters, file errors).  It throws std::runtime_error so
// failures are testable and never abort the process of an embedding
// application.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace qdnn {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "qdnn check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::runtime_error(os.str());
}

}  // namespace qdnn

#define QDNN_CHECK(cond, msg)                                         \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream qdnn_check_os_;                              \
      qdnn_check_os_ << msg;                                          \
      ::qdnn::check_failed(#cond, __FILE__, __LINE__,                 \
                           qdnn_check_os_.str());                     \
    }                                                                 \
  } while (0)

#define QDNN_CHECK_EQ(a, b, msg) \
  QDNN_CHECK((a) == (b), msg << " (" << (a) << " vs " << (b) << ")")
