// Position-wise feed-forward block of the Transformer:
// Linear(d→d_ff) → ReLU → Linear(d_ff→d), applied to flattened [N·T, D].
#pragma once

#include "nn/activations.h"
#include "nn/linear.h"

namespace qdnn::models {

class FeedForward : public nn::Module {
 public:
  FeedForward(index_t d_model, index_t d_ff, Rng& rng, std::string name);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override;
  // v2: runs fc1 → relu → fc2 with the [·, d_ff] intermediates drawn from
  // the workspace — the monolithic twin of the flattened stage plan, used
  // by DecoderLayer::forward_into.
  bool supports_forward_into() const override;
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;
  // The block flattens to fc1 → relu → fc2, all native, so a pipeline
  // driver serves it layer-by-layer.
  void flatten_into(std::vector<nn::PipelineStage>& stages) override;
  void freeze() override;
  void unfreeze() override;
  void set_training(bool training) override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  nn::Linear fc1_;
  nn::ReLU relu_;
  nn::Linear fc2_;
};

}  // namespace qdnn::models
