#include "linalg/packed_weights.h"

#include "linalg/gemm_kernels.h"

namespace qdnn::linalg {

void PackedWeights::pack(bool trans, index_t k, index_t n, const float* src,
                         index_t ld) {
  QDNN_CHECK(k >= 0 && n >= 0, "PackedWeights::pack: negative dims");
  QDNN_CHECK(ld >= (trans ? k : n),
             "PackedWeights::pack: leading dimension " << ld
                                                       << " too small");
  k_ = k;
  n_ = n;
  backend_ = active_gemm_backend();
  layout_ = backend_ == GemmBackend::kGeneric ? PackLayout::kRowMajor
                                              : PackLayout::kTilePanel;
  if (layout_ == PackLayout::kRowMajor) {
    data_.resize(static_cast<std::size_t>(k * n));
    if (trans) {
      // Same element order as gemm()'s per-call trans_b pack, so
      // prepacked results are bit-identical to the packing path they
      // replace.
      for (index_t j = 0; j < n; ++j)
        for (index_t p = 0; p < k; ++p)
          data_[static_cast<std::size_t>(p * n + j)] = src[j * ld + p];
    } else {
      for (index_t p = 0; p < k; ++p)
        for (index_t j = 0; j < n; ++j)
          data_[static_cast<std::size_t>(p * n + j)] = src[p * ld + j];
    }
  } else {
    // Tile-panel: panels of kPanelWidth columns, each k rows deep, the
    // tail panel zero-padded — one contiguous 16-float slice per
    // microkernel k-step.  Padding lanes mirror the masked (zero) B
    // lanes of the unpacked SIMD path, so both paths run the identical
    // FMA stream.
    const index_t w = detail::kPanelWidth;
    const index_t panels = (n + w - 1) / w;
    data_.assign(static_cast<std::size_t>(panels * k * w), 0.0f);
    for (index_t jp = 0; jp < panels; ++jp) {
      float* panel = data_.data() + jp * k * w;
      const index_t nr = std::min(w, n - jp * w);
      for (index_t p = 0; p < k; ++p)
        for (index_t j = 0; j < nr; ++j)
          panel[p * w + j] = trans ? src[(jp * w + j) * ld + p]
                                   : src[p * ld + jp * w + j];
    }
  }
  packed_ = true;
}

void PackedWeights::clear() {
  k_ = 0;
  n_ = 0;
  packed_ = false;
  layout_ = PackLayout::kRowMajor;
  backend_ = GemmBackend::kGeneric;
  data_.clear();
  data_.shrink_to_fit();
}

}  // namespace qdnn::linalg
