// serve::Server — the multi-shard, multi-threaded front end.
//
// The headline contracts: (1) shard-invariance — a request's tokens are
// bit-identical to its solo decode whichever shard JSQ routes it to,
// because every shard serves an identically-constructed replica; (2)
// exactly-once resolution — every submitted id lands in exactly one
// RequestResult, fuzzed with concurrent submitters, a canceller, and a
// drainer racing the shard workers' own retirement drains.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "decode_test_util.h"

namespace qdnn::serve {
namespace {

using models::Transformer;
using qdnn::testing::random_src_ids;
using qdnn::testing::tiny_transformer_config;

constexpr index_t kBos = 1, kEos = 2;

ServerConfig server_config(index_t max_batch, index_t max_steps) {
  ServerConfig config;
  config.shard.session.max_batch = max_batch;
  config.shard.session.max_steps = max_steps;
  config.shard.bos = kBos;
  config.shard.eos = kEos;
  return config;
}

// N identically-constructed replicas: same config (including the init
// seed), so every shard holds the same weights.
std::vector<std::unique_ptr<Transformer>> make_replicas(index_t n) {
  std::vector<std::unique_ptr<Transformer>> replicas;
  for (index_t i = 0; i < n; ++i) {
    auto m = std::make_unique<Transformer>(tiny_transformer_config());
    m->set_training(false);
    replicas.push_back(std::move(m));
  }
  return replicas;
}

std::vector<Transformer*> raw(
    const std::vector<std::unique_ptr<Transformer>>& replicas) {
  std::vector<Transformer*> out;
  for (const auto& m : replicas) out.push_back(m.get());
  return out;
}

struct Case {
  Tensor src;
  index_t budget = 0;
  std::vector<index_t> reference;
};

std::vector<Case> make_cases(Transformer& model, index_t count,
                             index_t max_steps, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Case> cases;
  for (index_t i = 0; i < count; ++i) {
    Case c;
    c.src = random_src_ids(1, 3 + rng.uniform_int(3), 20,
                           seed * 100 + static_cast<std::uint64_t>(i));
    c.budget = 2 + rng.uniform_int(max_steps - 2);
    c.reference = model.greedy_decode_reference(c.src, {}, kBos, kEos,
                                                c.budget)[0];
    cases.push_back(std::move(c));
  }
  return cases;
}

TEST(Server, SingleShardMatchesSoloReferences) {
  auto replicas = make_replicas(1);
  const auto cases = make_cases(*replicas[0], 6, 10, 7);
  Server server(raw(replicas), server_config(2, 10));
  EXPECT_EQ(server.shards(), 1);

  std::map<index_t, std::size_t> id_to_case;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    Request req;
    req.src_ids = cases[i].src;
    req.max_new_tokens = cases[i].budget;
    id_to_case[server.submit(std::move(req))] = i;
  }
  server.wait_idle();
  EXPECT_EQ(server.pending(), 0);

  auto results = server.take_results();
  ASSERT_EQ(results.size(), cases.size());
  for (const RequestResult& r : results)
    EXPECT_EQ(r.tokens, cases[id_to_case.at(r.id)].reference)
        << "id " << r.id;
}

TEST(Server, MultiShardStreamsAreBitIdenticalToSolo) {
  // 4 shards over 4 identically-seeded replicas: whatever shard JSQ
  // picks, every request's tokens match its solo reference — and the
  // globally unique ids actually spread over more than one shard.
  auto replicas = make_replicas(4);
  const auto cases = make_cases(*replicas[0], 12, 10, 9);
  Server server(raw(replicas), server_config(2, 10));
  EXPECT_EQ(server.shards(), 4);

  std::map<index_t, std::size_t> id_to_case;
  std::set<index_t> shards_used;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    Request req;
    req.src_ids = cases[i].src;
    req.max_new_tokens = cases[i].budget;
    const index_t id = server.submit(std::move(req));
    EXPECT_EQ(id_to_case.count(id), 0u) << "ids must be globally unique";
    id_to_case[id] = i;
    shards_used.insert(id % server.shards());
  }
  server.wait_idle();

  auto results = server.take_results();
  ASSERT_EQ(results.size(), cases.size());
  for (const RequestResult& r : results) {
    EXPECT_EQ(r.tokens, cases[id_to_case.at(r.id)].reference)
        << "id " << r.id << " (shard " << r.id % server.shards() << ")";
    EXPECT_TRUE(r.reason == FinishReason::kEos ||
                r.reason == FinishReason::kLength);
  }
  EXPECT_GT(shards_used.size(), 1u)
      << "join-shortest-queue left every request on one shard";

  const ServerStats stats = server.stats();
  ASSERT_EQ(stats.per_shard.size(), 4u);
  index_t submitted = 0;
  for (const auto& cls : stats.totals.per_class) submitted += cls.submitted;
  EXPECT_EQ(submitted, static_cast<index_t>(cases.size()));
}

TEST(Server, OwnsIdAssignment) {
  auto replicas = make_replicas(1);
  Server server(raw(replicas), server_config(2, 8));
  Request req;
  req.src_ids = random_src_ids(1, 4, 20, 501);
  req.id = 5;  // the Server assigns globally unique ids itself
  EXPECT_THROW(server.submit(std::move(req)), std::runtime_error);
  // A rejected submit leaves nothing behind.
  EXPECT_EQ(server.pending(), 0);
  server.wait_idle();
  EXPECT_TRUE(server.take_results().empty());
}

TEST(Server, ConstructorValidatesTheReplicaSet) {
  auto replicas = make_replicas(2);
  const ServerConfig config = server_config(2, 8);

  EXPECT_THROW(Server({}, config), std::runtime_error) << "no replicas";
  {
    std::vector<Transformer*> nulled = raw(replicas);
    nulled[1] = nullptr;
    EXPECT_THROW(Server(nulled, config), std::runtime_error);
  }
  {
    std::vector<Transformer*> dup{replicas[0].get(), replicas[0].get()};
    EXPECT_THROW(Server(dup, config), std::runtime_error)
        << "one replica cannot back two shards (bind exclusivity)";
  }
  {
    ServerConfig mismatched = config;
    mismatched.shards = 3;  // != models.size()
    EXPECT_THROW(Server(raw(replicas), mismatched), std::runtime_error);
  }
  {
    // A replica built from a different init seed has different weights:
    // shard-invariant outputs would silently break, so it is rejected.
    models::TransformerConfig other = tiny_transformer_config();
    other.seed += 1;
    Transformer drifted(other);
    std::vector<Transformer*> mixed{replicas[0].get(), &drifted};
    EXPECT_THROW(Server(mixed, config), std::runtime_error);
  }
  {
    // Post-construction weight drift: identical configs (so the config
    // equality check passes) but one replica's weights were mutated
    // after construction — only the weight CHECKSUM can catch it, and
    // the constructor must reject at the edge rather than let shards
    // route identical requests to different replicas.
    auto drifting = make_replicas(2);
    nn::Parameter* p = drifting[1]->parameters().front();
    const float saved = p->value[0];
    p->value[0] = saved + 0.5f;
    EXPECT_THROW(Server(raw(drifting), config), std::runtime_error)
        << "weight drift with equal configs must fail the checksum gate";
    // Restoring the weight restores admissibility — the gate keys on
    // the bits, nothing else.
    p->value[0] = saved;
    Server healed(raw(drifting), config);
    EXPECT_EQ(healed.weight_checksum(0), healed.weight_checksum(1));
  }
  // After every rejection the replicas are still unbound and serve.
  Server ok(raw(replicas), config);
  Request req;
  req.src_ids = random_src_ids(1, 4, 20, 502);
  req.max_new_tokens = 2;
  ok.submit(std::move(req));
  ok.wait_idle();
  EXPECT_EQ(ok.take_results().size(), 1u);
}

TEST(Server, StreamsTokensFromTheShardWorker) {
  auto replicas = make_replicas(1);
  const auto cases = make_cases(*replicas[0], 1, 8, 11);
  Server server(raw(replicas), server_config(2, 8));

  std::vector<index_t> streamed;
  Request req;
  req.src_ids = cases[0].src;
  req.max_new_tokens = cases[0].budget;
  req.on_token = [&](const StreamEvent& e) { streamed.push_back(e.token); };
  const index_t id = server.submit(std::move(req));
  // wait_idle() synchronizes with the worker's retirement drain, so
  // reading `streamed` here is race-free.
  server.wait_idle();

  auto results = server.take_results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, id);
  EXPECT_EQ(streamed, results[0].tokens);
  EXPECT_EQ(streamed, cases[0].reference);
  if (!results[0].tokens.empty())
    EXPECT_GT(results[0].first_token_tick, results[0].submit_tick);
}

TEST(Server, ShedsAndCancelsResolveExactlyOnce) {
  // A burst into one tightly bounded shard: submits outrun the worker's
  // ticks by orders of magnitude, so most of the burst load-sheds; a few
  // survivors get cancelled.  Every id must still resolve exactly once.
  auto replicas = make_replicas(1);
  ServerConfig config = server_config(1, 8);
  config.shard.max_queue = 1;
  Server server(raw(replicas), config);

  std::vector<index_t> ids;
  for (int i = 0; i < 16; ++i) {
    Request req;
    req.src_ids = random_src_ids(1, 4, 20,
                                 520 + static_cast<std::uint64_t>(i));
    req.max_new_tokens = 6;
    ids.push_back(server.submit(std::move(req)));
  }
  server.cancel(ids[0]);  // whatever state it is in — queued, live, shed
  server.cancel(ids[1]);
  server.wait_idle();

  auto results = server.take_results();
  ASSERT_EQ(results.size(), ids.size());
  std::set<index_t> seen;
  index_t sheds = 0;
  for (const RequestResult& r : results) {
    EXPECT_TRUE(seen.insert(r.id).second)
        << "id " << r.id << " resolved twice";
    if (r.reason == FinishReason::kShed) ++sheds;
  }
  for (const index_t id : ids) EXPECT_EQ(seen.count(id), 1u);
  EXPECT_GT(sheds, 0) << "a 16-submit burst into max_queue=1 must shed";
  EXPECT_FALSE(server.cancel(ids[0])) << "everything already resolved";
}

TEST(Server, CancelLandsMidDecodeOnABusyShard) {
  // Regression: the shard worker must release the shard lock between
  // ticks.  Holding it across the whole busy period made cancel() block
  // until the request resolved on its own (and then return false) and
  // kept arrivals out of the running batch.  Here a long decode is
  // cancelled right after its first streamed token: the cancel must land
  // mid-flight, cutting the stream short with kCancelled.
  auto replicas = make_replicas(1);
  const index_t budget = 12;  // the tiny model's max_len caps max_steps
  // Pick a source whose solo greedy decode runs long (no early eos), so
  // the cancel has many ticks of runway before natural retirement.
  Tensor src;
  std::size_t solo_len = 0;
  for (std::uint64_t seed = 600; seed < 700 && solo_len < 12; ++seed) {
    Tensor candidate = random_src_ids(1, 5, 20, seed);
    const auto ref = replicas[0]->greedy_decode_reference(
        candidate, {}, kBos, kEos, budget)[0];
    if (ref.size() > solo_len) {
      solo_len = ref.size();
      src = std::move(candidate);
    }
  }
  ASSERT_GE(solo_len, 8u) << "no long-running decode found";

  Server server(raw(replicas), server_config(1, budget));
  std::atomic<index_t> tokens_seen{0};
  Request req;
  req.src_ids = std::move(src);
  req.max_new_tokens = static_cast<index_t>(solo_len);
  req.on_token = [&](const StreamEvent&) {
    tokens_seen.fetch_add(1);
    // The tiny model decodes a token in under a microsecond — faster
    // than this thread can wake and call cancel().  Stretch each tick so
    // the cancel provably lands inside the busy period.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  const index_t id = server.submit(std::move(req));
  while (tokens_seen.load() == 0) std::this_thread::yield();
  EXPECT_TRUE(server.cancel(id))
      << "cancel() must interleave with a busy shard, not wait for it";
  server.wait_idle();

  auto results = server.take_results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, id);
  EXPECT_EQ(results[0].reason, FinishReason::kCancelled);
  EXPECT_LT(results[0].tokens.size(), solo_len)
      << "the stream ran to completion — the cancel never interleaved";
}

TEST(Server, MultiThreadedFuzzEveryIdResolvesExactlyOnce) {
  // Satellite (f): two submitter threads, a canceller, and a drainer all
  // race the shard workers.  Afterwards: every id has exactly one
  // result; completed streams are bit-exact against the solo reference;
  // cancelled streams are bit-exact prefixes.
  auto replicas = make_replicas(2);
  const index_t max_steps = 10;
  const auto cases = make_cases(*replicas[0], 8, max_steps, 13);
  ServerConfig config = server_config(2, max_steps);
  config.shard.prefill_workers = 1;  // cover the async pool under threads
  Server server(raw(replicas), config);

  constexpr int kPerSubmitter = 20;
  std::mutex mu;
  std::map<index_t, std::size_t> id_to_case;  // guarded by mu
  std::vector<index_t> ids;                   // guarded by mu
  std::vector<RequestResult> drained;         // guarded by mu
  std::atomic<bool> done{false};

  auto submitter = [&](std::uint64_t seed) {
    Rng rng(seed);
    for (int i = 0; i < kPerSubmitter; ++i) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(static_cast<index_t>(cases.size())));
      Request req;
      req.src_ids = cases[pick].src;
      req.max_new_tokens = cases[pick].budget;
      req.priority = static_cast<Priority>(rng.uniform_int(3));
      const index_t id = server.submit(std::move(req));
      std::lock_guard<std::mutex> lk(mu);
      id_to_case[id] = pick;
      ids.push_back(id);
    }
  };
  std::thread submit_a(submitter, 1001);
  std::thread submit_b(submitter, 2002);
  std::thread canceller([&] {
    Rng rng(3003);
    for (int i = 0; i < 2 * kPerSubmitter; ++i) {
      index_t target = -1;
      {
        std::lock_guard<std::mutex> lk(mu);
        if (!ids.empty())
          target = ids[static_cast<std::size_t>(rng.uniform_int(
              static_cast<index_t>(ids.size())))];
      }
      if (target >= 0) server.cancel(target);  // may already be resolved
      std::this_thread::yield();
    }
  });
  std::thread drainer([&] {
    while (!done.load()) {
      auto batch = server.take_results();
      if (!batch.empty()) {
        std::lock_guard<std::mutex> lk(mu);
        for (RequestResult& r : batch) drained.push_back(std::move(r));
      }
      std::this_thread::yield();
    }
  });

  submit_a.join();
  submit_b.join();
  canceller.join();
  server.wait_idle();
  done.store(true);
  drainer.join();
  for (RequestResult& r : server.take_results())
    drained.push_back(std::move(r));  // whatever the drainer missed

  ASSERT_EQ(drained.size(), static_cast<std::size_t>(2 * kPerSubmitter));
  std::set<index_t> seen;
  for (const RequestResult& r : drained) {
    ASSERT_TRUE(seen.insert(r.id).second)
        << "id " << r.id << " resolved twice";
    const auto& reference = cases[id_to_case.at(r.id)].reference;
    if (r.reason == FinishReason::kEos ||
        r.reason == FinishReason::kLength) {
      EXPECT_EQ(r.tokens, reference)
          << "id " << r.id << ": shard/interleaving changed the stream";
    } else {
      ASSERT_EQ(r.reason, FinishReason::kCancelled) << "id " << r.id;
      ASSERT_LE(r.tokens.size(), reference.size()) << "id " << r.id;
      EXPECT_TRUE(std::equal(r.tokens.begin(), r.tokens.end(),
                             reference.begin()))
          << "id " << r.id << ": not a prefix of the solo decode";
    }
  }
  for (const index_t id : ids) EXPECT_EQ(seen.count(id), 1u);
  EXPECT_EQ(server.pending(), 0);
}

}  // namespace
}  // namespace qdnn::serve
