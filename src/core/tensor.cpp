#include "core/tensor.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qdnn {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  QDNN_CHECK(a.shape() == b.shape(), op << ": shape mismatch " << a.shape()
                                        << " vs " << b.shape());
}
}  // namespace

Tensor& Tensor::operator+=(const Tensor& other) {
  check_same_shape(*this, other, "operator+=");
  const float* src = other.data();
  float* dst = data();
  const index_t n = numel();
  for (index_t i = 0; i < n; ++i) dst[i] += src[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  check_same_shape(*this, other, "operator-=");
  const float* src = other.data();
  float* dst = data();
  const index_t n = numel();
  for (index_t i = 0; i < n; ++i) dst[i] -= src[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

Tensor& Tensor::add_scaled(const Tensor& other, float s) {
  check_same_shape(*this, other, "add_scaled");
  const float* src = other.data();
  float* dst = data();
  const index_t n = numel();
  for (index_t i = 0; i < n; ++i) dst[i] += s * src[i];
  return *this;
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  QDNN_CHECK(numel() > 0, "mean of empty tensor");
  return sum() / static_cast<float>(numel());
}

float Tensor::min() const {
  QDNN_CHECK(numel() > 0, "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  QDNN_CHECK(numel() > 0, "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

float Tensor::squared_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(acc);
}

bool Tensor::all_finite() const {
  for (float v : data_)
    if (!std::isfinite(v)) return false;
  return true;
}

Tensor operator+(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out += b;
  return out;
}

Tensor operator-(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out -= b;
  return out;
}

Tensor operator*(const Tensor& a, float s) {
  Tensor out = a;
  out *= s;
  return out;
}

Tensor hadamard(const Tensor& a, const Tensor& b) {
  QDNN_CHECK(a.shape() == b.shape(), "hadamard: shape mismatch");
  Tensor out = a;
  for (index_t i = 0; i < out.numel(); ++i) out[i] *= b[i];
  return out;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  QDNN_CHECK(a.shape() == b.shape(), "max_abs_diff: shape mismatch");
  float m = 0.0f;
  for (index_t i = 0; i < a.numel(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

}  // namespace qdnn
