// Example: image classification with a quadratic ResNet — the paper's
// Sec. IV-A workload end to end on the synthetic CIFAR-10 substitute.
//
// Trains a linear ResNet-14 and a quadratic (proposed, k=9) ResNet-14
// side by side, reporting per-epoch accuracy, final parameter/MAC costs,
// and the per-group parameter breakdown — then deploys each trained
// network behind runtime::InferenceSession and compares serving
// throughput against the legacy Module::forward path.
//
// Run: ./build/example_image_classification [epochs]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "analysis/counters.h"
#include "models/resnet.h"
#include "runtime/inference_session.h"
#include "train/trainer.h"

using namespace qdnn;
using namespace qdnn::models;

namespace {

// Copies rows [begin, begin+count) of a [N,C,H,W] dataset into `batch`.
void fill_batch(const Tensor& images, index_t begin, index_t count,
                Tensor& batch) {
  const index_t sample = images.numel() / images.dim(0);
  std::memcpy(batch.data(), images.data() + begin * sample,
              static_cast<std::size_t>(count * sample) * sizeof(float));
}

index_t count_correct(const float* logits, index_t rows, index_t classes,
                      const std::vector<index_t>& labels, index_t begin) {
  index_t correct = 0;
  for (index_t i = 0; i < rows; ++i) {
    const float* row = logits + i * classes;
    index_t best = 0;
    for (index_t c = 1; c < classes; ++c)
      if (row[c] > row[best]) best = c;
    if (best == labels[static_cast<std::size_t>(begin + i)]) ++correct;
  }
  return correct;
}

}  // namespace

int main(int argc, char** argv) {
  const index_t epochs = argc > 1 ? std::atoi(argv[1]) : 6;

  data::SyntheticImageConfig data_config;
  data_config.num_classes = 10;
  data_config.image_size = 16;
  data_config.noise_std = 0.6f;
  data_config.shape_amp = 0.3f;
  const auto train_set = data::make_synthetic_images(data_config, 500, 1);
  const auto test_set = data::make_synthetic_images(data_config, 250, 2);
  std::printf("synthetic CIFAR-10 substitute: %lld train / %lld test\n\n",
              static_cast<long long>(train_set.size()),
              static_cast<long long>(test_set.size()));

  for (bool quadratic : {false, true}) {
    ResNetConfig config;
    config.depth = 14;
    config.num_classes = 10;
    config.image_size = 16;
    config.base_width = 8;
    config.spec = quadratic ? NeuronSpec::proposed(9, /*lambda_lr=*/1e-3f)
                            : NeuronSpec::linear();
    config.seed = 5;
    auto net = make_cifar_resnet(config);

    const auto breakdown = analysis::count_parameters(*net);
    std::printf("=== %s ResNet-14: %lld params, %.2f MMACs/image ===\n",
                quadratic ? "quadratic(k=9)" : "linear",
                static_cast<long long>(breakdown.total),
                net->macs_per_image() / 1e6);
    for (const auto& [group, count] : breakdown.by_group)
      std::printf("    %-18s %lld\n", group.c_str(),
                  static_cast<long long>(count));

    train::TrainerConfig tc;
    tc.epochs = epochs;
    tc.batch_size = 32;
    tc.lr = 0.05f;
    tc.clip_norm = 5.0f;
    tc.lr_milestones = {epochs * 2 / 3};
    tc.augment_pad = 2;  // the paper's pad-crop + flip recipe
    train::Trainer trainer(*net, tc);
    trainer.on_epoch = [](const train::EpochStats& e) {
      std::printf("  epoch %2lld  train loss %.4f acc %5.1f%%  test acc "
                  "%5.1f%%%s\n",
                  static_cast<long long>(e.epoch), e.train_loss,
                  100 * e.train_accuracy, 100 * e.test_accuracy,
                  e.diverged ? "  [eval diverged - BN stats settling]" : "");
    };
    trainer.fit(train_set, test_set);

    // --- Deployment: serve the test set through an InferenceSession ----
    const index_t batch = 32;
    const index_t classes = config.num_classes;
    net->set_training(false);

    using clock = std::chrono::steady_clock;
    auto eval_pass = [&](auto&& infer) {
      index_t correct = 0;
      const auto t0 = clock::now();
      for (index_t begin = 0; begin < test_set.size(); begin += batch) {
        const index_t rows = std::min(batch, test_set.size() - begin);
        Tensor b{Shape{rows, 3, 16, 16}};
        fill_batch(test_set.images, begin, rows, b);
        correct += count_correct(infer(b), rows, classes, test_set.labels,
                                 begin);
      }
      const double ms = std::chrono::duration<double, std::milli>(
                            clock::now() - t0)
                            .count();
      return std::pair{static_cast<double>(correct) / test_set.size(), ms};
    };

    Tensor legacy_out;
    const auto [legacy_acc, legacy_ms] = eval_pass([&](const Tensor& b) {
      legacy_out = net->forward(b);
      return legacy_out.data();
    });

    runtime::SessionConfig sc;
    sc.sample_shape = Shape{3, 16, 16};
    sc.max_batch = batch;
    runtime::InferenceSession session(std::move(net), sc);
    const auto [served_acc, served_ms] = eval_pass(
        [&](const Tensor& b) { return session.run(b).data(); });

    // A monolithic ResNet serves as ONE legacy-adapted stage: the session
    // adds copy-in/copy-out overhead and only pins buffers.  Per-layer
    // allocation-free serving (and the speedup micro_ops measures for the
    // dense MLPs) needs the model exposed as a Sequential of migrated
    // layers — the next step for the model zoo.
    std::printf(
        "  deployed: legacy forward %.1f%% in %.1f ms | session %.1f%% in "
        "%.1f ms (%lld stage%s, native: %s)\n\n",
        100 * legacy_acc, legacy_ms, 100 * served_acc, served_ms,
        static_cast<long long>(session.num_stages()),
        session.num_stages() == 1 ? "" : "s",
        session.fully_native() ? "yes" : "no — legacy adapter");
  }
  std::printf(
      "Expected: the quadratic network reaches equal-or-better accuracy\n"
      "at comparable parameter count (the paper's Fig. 4 in miniature).\n");
  return 0;
}
