#include "quantize/int8_ops.h"

#include <algorithm>
#include <cmath>

namespace qdnn::quantize {

void gemm_i8(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
             index_t m, index_t n, index_t k) {
  for (index_t i = 0; i < m; ++i) {
    const std::int8_t* a_row = a + i * k;
    std::int32_t* c_row = c + i * n;
    for (index_t j = 0; j < n; ++j) {
      const std::int8_t* b_row = b + j * k;
      std::int32_t acc = 0;
      for (index_t p = 0; p < k; ++p) {
        acc += static_cast<std::int32_t>(a_row[p]) *
               static_cast<std::int32_t>(b_row[p]);
      }
      c_row[j] = acc;
    }
  }
}

void gemm_i8_nn(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
                index_t m, index_t n, index_t k) {
  for (index_t i = 0; i < m; ++i) {
    const std::int8_t* a_row = a + i * k;
    std::int32_t* c_row = c + i * n;
    for (index_t j = 0; j < n; ++j) c_row[j] = 0;
    for (index_t p = 0; p < k; ++p) {
      const std::int32_t av = a_row[p];
      if (av == 0) continue;
      const std::int8_t* b_row = b + p * n;
      for (index_t j = 0; j < n; ++j)
        c_row[j] += av * static_cast<std::int32_t>(b_row[j]);
    }
  }
}

QTensor quantize_activations(const Tensor& t, const QuantParams& params) {
  return quantize(t, params);
}

void to_codes(const float* x, index_t n, const QuantParams& params,
              std::int8_t* codes) {
  const float qmax = static_cast<float>(params.qmax());
  for (index_t i = 0; i < n; ++i) {
    float q = std::nearbyint(x[i] / params.scale);
    q = std::min(std::max(q, -qmax), qmax);
    codes[i] = static_cast<std::int8_t>(q);
  }
}

}  // namespace qdnn::quantize
