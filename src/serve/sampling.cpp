#include "serve/sampling.h"

#include <cmath>
#include <limits>

#include "core/check.h"

namespace qdnn::serve {

namespace {

// First-maximum argmax — the exact tie-breaking of DecodeSession's greedy
// head and greedy_decode_reference, so a greedy-sampled scheduler row is
// bit-identical to a solo generate() of the same request.
index_t argmax(const float* logits, index_t vocab) {
  index_t best = 0;
  for (index_t v = 1; v < vocab; ++v)
    if (logits[v] > logits[best]) best = v;
  return best;
}

// Inverse-CDF draw over `count` candidates whose unnormalized softmax
// weights sit in probs (sum > 0).  The accumulation order is fixed
// (candidate order), so a given (logits, u) pair always picks the same
// candidate — determinism without normalizing first.
index_t pick(const float* probs, index_t count, double total, double u) {
  double cum = 0.0;
  for (index_t i = 0; i < count; ++i) {
    cum += probs[i];
    if (u * total < cum) return i;
  }
  return count - 1;  // float round-off tail
}

}  // namespace

void validate(const SamplingConfig& config, index_t vocab) {
  QDNN_CHECK(vocab > 0, "sampling: vocab must be positive");
  switch (config.kind) {
    case SamplingConfig::Kind::kGreedy:
      return;
    case SamplingConfig::Kind::kTemperature:
      QDNN_CHECK(config.temperature > 0.0f,
                 "sampling: temperature must be positive, got "
                     << config.temperature);
      return;
    case SamplingConfig::Kind::kTopK:
      QDNN_CHECK(config.temperature > 0.0f,
                 "sampling: temperature must be positive, got "
                     << config.temperature);
      QDNN_CHECK(config.top_k >= 1 && config.top_k <= vocab,
                 "sampling: top_k " << config.top_k << " outside [1, "
                                    << vocab << "] (vocab)");
      return;
  }
  QDNN_CHECK(false, "sampling: unknown head kind");
}

index_t sample_token(const SamplingConfig& config, const float* logits,
                     index_t vocab, Rng& rng, float* prob_scratch,
                     index_t* idx_scratch) {
  switch (config.kind) {
    case SamplingConfig::Kind::kGreedy:
      return argmax(logits, vocab);

    case SamplingConfig::Kind::kTemperature: {
      // softmax(logits / T) via max-shift; one uniform draw per token.
      const index_t best = argmax(logits, vocab);
      const float mx = logits[best];
      double total = 0.0;
      for (index_t v = 0; v < vocab; ++v) {
        prob_scratch[v] =
            std::exp((logits[v] - mx) / config.temperature);
        total += prob_scratch[v];
      }
      // Degenerate distribution (every weight underflowed to zero, or
      // non-finite logits poisoned the sum): pick's round-off tail would
      // return the LAST candidate — the worst vocab id — instead of the
      // mode.  Fall back to the first-max argmax, the greedy head's
      // exact tie-breaking.
      if (!(total > 0.0) || !std::isfinite(total)) return best;
      return pick(prob_scratch, vocab, total, rng.uniform());
    }

    case SamplingConfig::Kind::kTopK: {
      // Deterministic k-largest selection: repeated first-maximum scans
      // over a working copy (ties resolve to the lowest id, independent
      // of any library sort), then a temperature softmax over the
      // candidates.
      const index_t k = config.top_k;
      for (index_t v = 0; v < vocab; ++v) prob_scratch[v] = logits[v];
      for (index_t j = 0; j < k; ++j) {
        const index_t best = argmax(prob_scratch, vocab);
        idx_scratch[j] = best;
        prob_scratch[best] = -std::numeric_limits<float>::infinity();
      }
      const float mx = logits[idx_scratch[0]];  // overall maximum
      double total = 0.0;
      for (index_t j = 0; j < k; ++j) {
        prob_scratch[j] = std::exp(
            (logits[idx_scratch[j]] - mx) / config.temperature);
        total += prob_scratch[j];
      }
      // Degenerate candidate distribution: pick's tail would return the
      // WORST of the k candidates; degrade to the first-max argmax
      // (candidate 0) instead.
      if (!(total > 0.0) || !std::isfinite(total)) return idx_scratch[0];
      return idx_scratch[pick(prob_scratch, k, total, rng.uniform())];
    }
  }
  QDNN_CHECK(false, "sampling: unknown head kind");
  return 0;
}

}  // namespace qdnn::serve
