#include "linalg/gemm.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace qdnn::linalg {
namespace {

// Naive reference used to validate the blocked kernel.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const index_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c{Shape{m, n}};
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (index_t p = 0; p < k; ++p)
        acc += static_cast<double>(a.at(i, p)) * b.at(p, j);
      c.at(i, j) = static_cast<float>(acc);
    }
  return c;
}

Tensor random_matrix(index_t rows, index_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t{Shape{rows, cols}};
  rng.fill_uniform(t, -1.0f, 1.0f);
  return t;
}

TEST(Gemm, MatchesNaiveSmall) {
  const Tensor a = random_matrix(3, 4, 1);
  const Tensor b = random_matrix(4, 5, 2);
  EXPECT_LT(max_abs_diff(matmul(a, b), naive_matmul(a, b)), 1e-5f);
}

class GemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  const Tensor a = random_matrix(m, k, 10 + m);
  const Tensor b = random_matrix(k, n, 20 + n);
  EXPECT_LT(max_abs_diff(matmul(a, b), naive_matmul(a, b)), 1e-4f)
      << "m=" << m << " k=" << k << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GemmSizes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 7, 3},
                      std::tuple{5, 1, 5}, std::tuple{17, 13, 11},
                      std::tuple{64, 64, 64}, std::tuple{65, 70, 3},
                      std::tuple{128, 300, 9}, std::tuple{33, 257, 65}));

TEST(Gemm, TransposedAMatchesExplicit) {
  const Tensor a = random_matrix(6, 4, 3);  // will be used as aᵀ
  const Tensor b = random_matrix(6, 5, 4);
  const Tensor c = matmul_tn(a, b);  // [4, 5]
  Tensor at{Shape{4, 6}};
  for (index_t i = 0; i < 6; ++i)
    for (index_t j = 0; j < 4; ++j) at.at(j, i) = a.at(i, j);
  EXPECT_LT(max_abs_diff(c, naive_matmul(at, b)), 1e-5f);
}

TEST(Gemm, TransposedBMatchesExplicit) {
  const Tensor a = random_matrix(3, 4, 5);
  const Tensor b = random_matrix(6, 4, 6);  // used as bᵀ
  const Tensor c = matmul_nt(a, b);  // [3, 6]
  Tensor bt{Shape{4, 6}};
  for (index_t i = 0; i < 6; ++i)
    for (index_t j = 0; j < 4; ++j) bt.at(j, i) = b.at(i, j);
  EXPECT_LT(max_abs_diff(c, naive_matmul(a, bt)), 1e-5f);
}

TEST(Gemm, DoubleTransposed) {
  const Tensor a = random_matrix(4, 3, 7);   // aᵀ: [3, 4]
  const Tensor b = random_matrix(5, 4, 8);   // bᵀ: [4, 5]
  Tensor c{Shape{3, 5}};
  gemm(true, true, 3, 5, 4, 1.0f, a.data(), 3, b.data(), 4, 0.0f, c.data(),
       5);
  Tensor at{Shape{3, 4}}, bt{Shape{4, 5}};
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 3; ++j) at.at(j, i) = a.at(i, j);
  for (index_t i = 0; i < 5; ++i)
    for (index_t j = 0; j < 4; ++j) bt.at(j, i) = b.at(i, j);
  EXPECT_LT(max_abs_diff(c, naive_matmul(at, bt)), 1e-5f);
}

TEST(Gemm, AlphaBetaSemantics) {
  const Tensor a = random_matrix(2, 3, 9);
  const Tensor b = random_matrix(3, 2, 10);
  Tensor c{Shape{2, 2}, 1.0f};
  // c = 2*a*b + 3*c
  gemm(false, false, 2, 2, 3, 2.0f, a.data(), 3, b.data(), 2, 3.0f,
       c.data(), 2);
  const Tensor ref = naive_matmul(a, b);
  for (index_t i = 0; i < 4; ++i)
    EXPECT_NEAR(c[i], 2.0f * ref[i] + 3.0f, 1e-5f);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  const Tensor a = random_matrix(2, 2, 11);
  const Tensor b = random_matrix(2, 2, 12);
  Tensor c{Shape{2, 2}, std::numeric_limits<float>::quiet_NaN()};
  gemm(false, false, 2, 2, 2, 1.0f, a.data(), 2, b.data(), 2, 0.0f,
       c.data(), 2);
  EXPECT_TRUE(c.all_finite());
}

TEST(Gemm, ShapeMismatchThrows) {
  const Tensor a = random_matrix(2, 3, 13);
  const Tensor b = random_matrix(4, 2, 14);
  EXPECT_THROW(matmul(a, b), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Degenerate and parameter edge cases: k == 0 must act as a pure C-scale
// for every beta, and alpha/beta semantics must hold under all four
// transpose combinations.
// ---------------------------------------------------------------------------

TEST(Gemm, KZeroScalesCByBeta) {
  for (float beta : {0.0f, 1.0f, 0.5f}) {
    Tensor c{Shape{2, 3}, 4.0f};
    // a/b pointers are irrelevant at k == 0 — they must not be read.
    gemm(false, false, 2, 3, 0, 1.0f, nullptr, 1, nullptr, 3, beta,
         c.data(), 3);
    for (index_t i = 0; i < c.numel(); ++i)
      EXPECT_FLOAT_EQ(c[i], 4.0f * beta) << "beta=" << beta;
  }
}

TEST(Gemm, KZeroWithBetaZeroClearsNaNs) {
  Tensor c{Shape{2, 2}, std::numeric_limits<float>::quiet_NaN()};
  gemm(true, true, 2, 2, 0, 1.0f, nullptr, 2, nullptr, 2, 0.0f, c.data(),
       2);
  for (index_t i = 0; i < c.numel(); ++i) EXPECT_FLOAT_EQ(c[i], 0.0f);
}

class GemmTransposeCombos
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(GemmTransposeCombos, AlphaBetaAgainstNaive) {
  const auto [trans_a, trans_b] = GetParam();
  const index_t m = 4, n = 5, k = 3;
  // Stored layouts: op(A) is [m,k], op(B) is [k,n].
  const Tensor a = trans_a ? random_matrix(k, m, 31) : random_matrix(m, k, 31);
  const Tensor b = trans_b ? random_matrix(n, k, 32) : random_matrix(k, n, 32);
  Tensor at{Shape{m, k}}, bt{Shape{k, n}};
  for (index_t i = 0; i < m; ++i)
    for (index_t p = 0; p < k; ++p)
      at.at(i, p) = trans_a ? a.at(p, i) : a.at(i, p);
  for (index_t p = 0; p < k; ++p)
    for (index_t j = 0; j < n; ++j)
      bt.at(p, j) = trans_b ? b.at(j, p) : b.at(p, j);
  const Tensor ref = naive_matmul(at, bt);

  for (float beta : {0.0f, 1.0f, 0.5f}) {
    Tensor c{Shape{m, n}, 2.0f};
    gemm(trans_a, trans_b, m, n, k, 1.5f, a.data(), a.dim(1), b.data(),
         b.dim(1), beta, c.data(), n);
    for (index_t i = 0; i < c.numel(); ++i)
      EXPECT_NEAR(c[i], 1.5f * ref[i] + beta * 2.0f, 1e-5f)
          << "trans_a=" << trans_a << " trans_b=" << trans_b
          << " beta=" << beta;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, GemmTransposeCombos,
    ::testing::Values(std::tuple{false, false}, std::tuple{false, true},
                      std::tuple{true, false}, std::tuple{true, true}));

TEST(Gemm, ScratchOverloadMatchesAllocatingPath) {
  const Tensor a = random_matrix(6, 4, 33);   // used as aᵀ
  const Tensor b = random_matrix(5, 6, 34);   // used as bᵀ
  Tensor c1{Shape{4, 5}}, c2{Shape{4, 5}};
  gemm(true, true, 4, 5, 6, 1.0f, a.data(), 4, b.data(), 6, 0.0f,
       c1.data(), 5);
  std::vector<float> scratch(
      static_cast<std::size_t>(gemm_scratch_floats(true, true, 4, 5, 6)));
  gemm(true, true, 4, 5, 6, 1.0f, a.data(), 4, b.data(), 6, 0.0f,
       c2.data(), 5, scratch.data());
  EXPECT_EQ(max_abs_diff(c1, c2), 0.0f);  // bit-identical by construction
}

TEST(Gemm, ScratchFloatsAccounting) {
  EXPECT_EQ(gemm_scratch_floats(false, false, 7, 8, 9), 0);
  EXPECT_EQ(gemm_scratch_floats(true, false, 7, 8, 9), 63);
  EXPECT_EQ(gemm_scratch_floats(false, true, 7, 8, 9), 72);
  EXPECT_EQ(gemm_scratch_floats(true, true, 7, 8, 9), 135);
}

TEST(Gemv, MatchesMatmul) {
  const Tensor a = random_matrix(5, 7, 15);
  const Tensor x = random_matrix(7, 1, 16);
  Tensor y{Shape{5}};
  gemv(false, 5, 7, 1.0f, a.data(), 7, x.data(), 0.0f, y.data());
  const Tensor ref = naive_matmul(a, x);
  for (index_t i = 0; i < 5; ++i) EXPECT_NEAR(y[i], ref[i], 1e-5f);
}

TEST(Gemv, TransposedMatchesMatmul) {
  const Tensor a = random_matrix(5, 7, 17);
  const Tensor x = random_matrix(5, 1, 18);
  Tensor y{Shape{7}};
  gemv(true, 5, 7, 1.0f, a.data(), 7, x.data(), 0.0f, y.data());
  Tensor at{Shape{7, 5}};
  for (index_t i = 0; i < 5; ++i)
    for (index_t j = 0; j < 7; ++j) at.at(j, i) = a.at(i, j);
  const Tensor ref = naive_matmul(at, x);
  for (index_t i = 0; i < 7; ++i) EXPECT_NEAR(y[i], ref[i], 1e-5f);
}

TEST(Gemv, BetaAccumulates) {
  const Tensor a = random_matrix(2, 2, 19);
  const Tensor x = random_matrix(2, 1, 20);
  Tensor y{Shape{2}, 1.0f};
  gemv(false, 2, 2, 1.0f, a.data(), 2, x.data(), 1.0f, y.data());
  const Tensor ref = naive_matmul(a, x);
  EXPECT_NEAR(y[0], ref[0] + 1.0f, 1e-5f);
}

TEST(Dot, MatchesReference) {
  Rng rng(21);
  Tensor a{Shape{103}}, b{Shape{103}};
  rng.fill_uniform(a, -1.0f, 1.0f);
  rng.fill_uniform(b, -1.0f, 1.0f);
  double ref = 0.0;
  for (index_t i = 0; i < 103; ++i)
    ref += static_cast<double>(a[i]) * b[i];
  EXPECT_NEAR(dot(a.data(), b.data(), 103), ref, 1e-4);
}

TEST(Axpy, Accumulates) {
  Tensor x{Shape{4}, std::vector<float>{1, 2, 3, 4}};
  Tensor y{Shape{4}, std::vector<float>{10, 20, 30, 40}};
  axpy(4, 0.5f, x.data(), y.data());
  EXPECT_FLOAT_EQ(y[3], 42.0f);
}

}  // namespace
}  // namespace qdnn::linalg
