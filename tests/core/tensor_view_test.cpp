#include "core/tensor_view.h"

#include <gtest/gtest.h>

#include "core/workspace.h"

namespace qdnn {
namespace {

TEST(TensorView, ReadsAndWritesThroughToTensor) {
  Tensor t{Shape{2, 3}};
  TensorView v = t;
  EXPECT_EQ(v.shape(), t.shape());
  EXPECT_EQ(v.data(), t.data());
  v.at(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2), 7.0f);
  v[0] = -1.0f;
  EXPECT_FLOAT_EQ(t[0], -1.0f);
}

TEST(TensorView, ConstViewFromTensorAndView) {
  Tensor t{Shape{4}, std::vector<float>{1, 2, 3, 4}};
  ConstTensorView c = t;
  EXPECT_FLOAT_EQ(c[3], 4.0f);
  TensorView v = t;
  ConstTensorView c2 = v;
  EXPECT_EQ(c2.data(), t.data());
  EXPECT_EQ(c2.shape(), t.shape());
}

TEST(TensorView, ToTensorCopies) {
  Tensor t{Shape{3}, std::vector<float>{1, 2, 3}};
  ConstTensorView c = t;
  Tensor copy = c.to_tensor();
  copy[0] = 99.0f;
  EXPECT_FLOAT_EQ(t[0], 1.0f);
  EXPECT_FLOAT_EQ(copy[1], 2.0f);
}

TEST(TensorView, RebindRepointsData) {
  Tensor a{Shape{2}, std::vector<float>{1, 2}};
  Tensor b{Shape{2}, std::vector<float>{3, 4}};
  ConstTensorView v = a;
  v.rebind(b.data());
  EXPECT_FLOAT_EQ(v[0], 3.0f);
  EXPECT_EQ(v.shape(), Shape({2}));
}

TEST(TensorView, CopyIntoChecksShape) {
  Tensor a{Shape{2, 2}, std::vector<float>{1, 2, 3, 4}};
  Tensor b{Shape{2, 2}};
  copy_into(ConstTensorView(a), TensorView(b));
  EXPECT_FLOAT_EQ(b.at(1, 1), 4.0f);
  Tensor c{Shape{3}};
  EXPECT_THROW(copy_into(ConstTensorView(a), TensorView(c)),
               std::runtime_error);
}

#if QDNN_DCHECK_ENABLED
TEST(TensorView, DebugChecksCatchBadIndexing) {
  Tensor t{Shape{2, 3}};
  TensorView v = t;
  EXPECT_THROW(v.at(2, 0), std::runtime_error);     // row out of bounds
  EXPECT_THROW(v.at(0, 0, 0), std::runtime_error);  // wrong rank
  ConstTensorView c = t;
  EXPECT_THROW(c.at(0, 3), std::runtime_error);
}
#endif

TEST(Workspace, BumpAllocAndResetReusesMemory) {
  Workspace ws;
  float* a = ws.alloc(100);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(ws.in_use(), 100);
  ws.reset();
  EXPECT_EQ(ws.in_use(), 0);
  float* b = ws.alloc(50);
  EXPECT_EQ(a, b);  // same block, rewound
  EXPECT_EQ(ws.watermark(), 100);
}

TEST(Workspace, GrowthChainingKeepsEarlierPointersValid) {
  Workspace ws(16);
  float* a = ws.alloc(16);
  a[0] = 42.0f;
  float* b = ws.alloc(100000);  // forces a new block
  ASSERT_NE(b, nullptr);
  b[99999] = 1.0f;
  EXPECT_FLOAT_EQ(a[0], 42.0f);  // old block untouched
  EXPECT_GE(ws.capacity(), 16 + 100000);
}

TEST(Workspace, ConsolidateStopsGrowth) {
  Workspace ws;
  // Discovery pass with a growth-hostile pattern.
  ws.alloc(10);
  ws.alloc(2000);
  ws.alloc(5000);
  ws.reset();
  ws.consolidate();
  const int grown = ws.grow_count();
  for (int pass = 0; pass < 10; ++pass) {
    ws.reset();
    ws.alloc(10);
    ws.alloc(2000);
    ws.alloc(5000);
  }
  EXPECT_EQ(ws.grow_count(), grown);  // steady state: no new blocks
}

TEST(Workspace, TakeReturnsShapedView) {
  Workspace ws;
  TensorView v = ws.take(Shape{3, 4});
  EXPECT_EQ(v.shape(), Shape({3, 4}));
  v.fill(2.0f);
  EXPECT_FLOAT_EQ(v.at(2, 3), 2.0f);
  EXPECT_EQ(ws.in_use(), 12);
}

TEST(Workspace, ZeroSizedAllocIsFine) {
  Workspace ws;
  EXPECT_EQ(ws.alloc(0), nullptr);
  EXPECT_EQ(ws.in_use(), 0);
}

}  // namespace
}  // namespace qdnn
