#include "nn/module.h"

namespace qdnn::nn {

// Fallback adapter: route the v2 entry point through the legacy copying
// forward().  Correct for every module (shape mismatches are caught
// against output_shape), but pays v1 allocation costs — migrated modules
// override this with a native workspace-backed implementation.
void Module::forward_into(const ConstTensorView& input, const TensorView& output,
                          Workspace& /*ws*/) {
  Tensor in = input.to_tensor();
  Tensor out = forward(in);
  QDNN_CHECK(out.shape() == output.shape(),
             name() << ": forward() produced " << out.shape()
                    << " but forward_into output is " << output.shape()
                    << " (override output_shape()?)");
  std::memcpy(output.data(), out.data(),
              static_cast<std::size_t>(out.numel()) * sizeof(float));
}

void validate_pipeline(const std::vector<PipelineStage>& stages,
                       const char* driver) {
  QDNN_CHECK(!stages.empty(), driver << ": empty pipeline");
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const PipelineStage& st = stages[i];
    QDNN_CHECK(st.input >= -1 && st.input < static_cast<index_t>(i),
               driver << ": stage " << i << " reads boundary " << st.input
                      << " which is not yet produced");
    if (st.is_add()) {
      QDNN_CHECK(st.addend >= -1 && st.addend < static_cast<index_t>(i),
                 driver << ": add stage " << i << " reads boundary "
                        << st.addend << " which is not yet produced");
    } else {
      QDNN_CHECK(st.addend == -1,
                 driver << ": module stage " << i << " has an addend");
    }
  }
}

}  // namespace qdnn::nn
