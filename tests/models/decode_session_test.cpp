// KV-cached decode equivalence: runtime::DecodeSession::generate() must be
// bit-identical (exact token sequences) to the teacher-forced O(T²)
// oracle Transformer::greedy_decode_reference across batch sizes, ragged
// source lengths, early-eos rows, frozen/unfrozen serving, and both
// projection families — plus the session lifecycle contracts (bind
// exclusivity, re-prime reuse, max_steps/max_len boundary, freeze
// propagation audit for the decoder stack).
#include "runtime/decode_session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "decode_test_util.h"
#include "models/transformer/transformer.h"

namespace qdnn::models {
namespace {

using qdnn::testing::tiny_transformer_config;
using runtime::DecodeSession;
using runtime::DecodeSessionConfig;

TransformerConfig tiny_config(quadratic::NeuronSpec spec =
                                  quadratic::NeuronSpec::linear()) {
  return tiny_transformer_config(spec);
}

Tensor ids(std::vector<std::vector<index_t>> rows) {
  const index_t n = static_cast<index_t>(rows.size());
  const index_t t = static_cast<index_t>(rows[0].size());
  Tensor out{Shape{n, t}};
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < t; ++j)
      out.at(i, j) = static_cast<float>(rows[static_cast<std::size_t>(i)]
                                            [static_cast<std::size_t>(j)]);
  return out;
}

Tensor random_src(index_t n, index_t t, index_t vocab, std::uint64_t seed) {
  return qdnn::testing::random_src_ids(n, t, vocab, seed);
}

DecodeSessionConfig session_config(index_t max_batch, index_t max_steps,
                                   bool freeze = true) {
  DecodeSessionConfig sc;
  sc.max_batch = max_batch;
  sc.max_steps = max_steps;
  sc.freeze = freeze;
  return sc;
}

TEST(DecodeSession, GenerateBitIdenticalToReferenceAcrossBatchSizes) {
  for (bool freeze : {true, false}) {
    Transformer model(tiny_config());
    model.set_training(false);
    for (index_t n : {1, 2, 4}) {
      const Tensor src = random_src(n, 5, 20, 100 + n);
      const auto ref =
          model.greedy_decode_reference(src, {}, 1, 2, 10);
      DecodeSession session(model, session_config(n, 10, freeze));
      session.prime(src, {});
      const auto out = session.generate(1, 2);
      ASSERT_EQ(out.size(), ref.size()) << "n=" << n;
      for (std::size_t r = 0; r < ref.size(); ++r)
        EXPECT_EQ(out[r], ref[r])
            << "row " << r << " n=" << n << " freeze=" << freeze;
    }
  }
}

TEST(DecodeSession, GenerateMatchesReferenceWithRaggedSources) {
  Transformer model(tiny_config());
  model.set_training(false);
  const Tensor src = ids({{4, 5, 6, 2, 0, 0},
                          {7, 8, 2, 0, 0, 0},
                          {9, 10, 11, 12, 13, 2}});
  const std::vector<index_t> lens{4, 3, 6};
  const auto ref = model.greedy_decode_reference(src, lens, 1, 2, 12);
  DecodeSession session(model, session_config(3, 12));
  session.prime(src, lens);
  const auto out = session.generate(1, 2);
  for (std::size_t r = 0; r < ref.size(); ++r)
    EXPECT_EQ(out[r], ref[r]) << "row " << r;

  // Padding beyond the declared length must not leak into the decode.
  Tensor src_garbage = src;
  src_garbage.at(0, 4) = 17.0f;
  src_garbage.at(0, 5) = 19.0f;
  session.prime(src_garbage, lens);
  const auto out2 = session.generate(1, 2);
  for (std::size_t r = 0; r < out.size(); ++r)
    EXPECT_EQ(out2[r], out[r]) << "row " << r;
}

TEST(DecodeSession, GenerateMatchesReferenceWithQuadraticProjections) {
  TransformerConfig config = tiny_config(quadratic::NeuronSpec::proposed(3));
  config.proj_dim = 16;  // divisible by rank+1=4 and heads=2
  Transformer model(config);
  model.set_training(false);
  const Tensor src = random_src(3, 6, 20, 7);
  const auto ref = model.greedy_decode_reference(src, {}, 1, 2, 12);
  DecodeSession session(model, session_config(3, 12));
  session.prime(src, {});
  const auto out = session.generate(1, 2);
  for (std::size_t r = 0; r < ref.size(); ++r)
    EXPECT_EQ(out[r], ref[r]) << "row " << r;
}

TEST(DecodeSession, EarlyEosRowsStopEmittingWhileOthersContinue) {
  // Force one row to finish at step 0 by making every argmax hit eos for
  // it: with an untrained model we instead pick eos as the argmax target
  // by running long enough that rows finish at different steps, and
  // assert the contract directly: a row whose reference output is shorter
  // than max_steps emitted eos early, and the session must agree exactly.
  Transformer model(tiny_config());
  model.set_training(false);
  const index_t max_steps = 14;
  const Tensor src = random_src(4, 6, 20, 23);
  // Choose eos = the first token the reference emits for row 0, so row 0
  // finishes at step 1 while other rows (almost surely) keep going.
  const auto probe = model.greedy_decode_reference(src, {}, 1, 2, max_steps);
  ASSERT_FALSE(probe[0].empty());
  const index_t eos = probe[0][0];
  const auto ref = model.greedy_decode_reference(src, {}, 1, eos, max_steps);
  EXPECT_TRUE(ref[0].empty()) << "row 0 should finish immediately";
  bool some_row_longer = false;
  for (const auto& row : ref) some_row_longer |= row.size() > 1;
  EXPECT_TRUE(some_row_longer) << "test needs rows finishing at "
                                  "different steps";

  DecodeSession session(model, session_config(4, max_steps));
  session.prime(src, {});
  const auto out = session.generate(1, eos);
  for (std::size_t r = 0; r < ref.size(); ++r)
    EXPECT_EQ(out[r], ref[r]) << "row " << r;
}

TEST(DecodeSession, SessionBackedGreedyDecodeMatchesReference) {
  Transformer model(tiny_config());
  const Tensor src = ids({{4, 5, 6, 2}, {7, 8, 2, 0}});
  const auto ref = model.greedy_decode_reference(src, {4, 3}, 1, 2, 8);
  const auto out = model.greedy_decode(src, {4, 3}, 1, 2, 8);
  ASSERT_EQ(out.size(), ref.size());
  for (std::size_t r = 0; r < ref.size(); ++r)
    EXPECT_EQ(out[r], ref[r]) << "row " << r;
}

TEST(DecodeSession, StepLogitsMatchTeacherForcedLastPosition) {
  // The per-step logits must equal the last-position logits of a
  // teacher-forced pass over the same prefix — the step-level form of the
  // generate() equivalence.
  Transformer model(tiny_config());
  model.set_training(false);
  const Tensor src = ids({{4, 5, 6, 2}, {7, 8, 9, 2}});
  const std::vector<index_t> prefix_row{1, 7, 11};  // bos + two tokens

  DecodeSession session(model, session_config(2, 8));
  session.prime(src, {});
  Tensor cached_logits;
  std::vector<index_t> feed(2);
  for (index_t s = 0; s < 3; ++s) {
    feed[0] = feed[1] = prefix_row[static_cast<std::size_t>(s)];
    session.step(feed);
    cached_logits = session.logits().to_tensor();
  }

  // Teacher-forced: decode the full 3-token prefix in one pass (the
  // frozen packs are bypassed by the training path, so this reads the
  // live weights — identical by the freeze contract).
  const Tensor tgt = ids({{1, 7, 11}, {1, 7, 11}});
  const Tensor full = model.forward_train(src, tgt, {});
  for (index_t r = 0; r < 2; ++r)
    for (index_t v = 0; v < 24; ++v)
      EXPECT_EQ(cached_logits.at(r, v), full.at(r * 3 + 2, v))
          << "row " << r << " vocab " << v;
}

TEST(DecodeSession, RePrimeServesNewSourcesBitIdentically) {
  Transformer model(tiny_config());
  model.set_training(false);
  const Tensor src_a = random_src(2, 5, 20, 31);
  const Tensor src_b = random_src(2, 4, 20, 32);

  DecodeSession session(model, session_config(2, 10));
  session.prime(src_a, {});
  const auto out_a = session.generate(1, 2);
  session.prime(src_b, {});  // different source length re-binds views
  const auto out_b = session.generate(1, 2);
  session.prime(src_a, {});
  const auto out_a2 = session.generate(1, 2);

  const auto ref_a = model.greedy_decode_reference(src_a, {}, 1, 2, 10);
  const auto ref_b = model.greedy_decode_reference(src_b, {}, 1, 2, 10);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(out_a[r], ref_a[r]);
    EXPECT_EQ(out_b[r], ref_b[r]);
    EXPECT_EQ(out_a2[r], ref_a[r]) << "stale state after re-prime";
  }
}

TEST(DecodeSession, MaxStepsBoundaryMatchesMaxLen) {
  // The implicit bos occupies position 0 and step s embeds position s, so
  // max_steps == max_len is exactly representable and max_len + 1 is not.
  Transformer model(tiny_config());
  model.set_training(false);
  const Tensor src = ids({{4, 5, 2}});
  EXPECT_NO_THROW({
    DecodeSession session(model, session_config(1, 16));  // == max_len
    session.prime(src, {});
    session.generate(1, 2);
  });
  EXPECT_THROW(DecodeSession(model, session_config(1, 17)),
               std::runtime_error);
  EXPECT_THROW(model.greedy_decode_reference(src, {}, 1, 2, 17),
               std::runtime_error);
  EXPECT_THROW(model.greedy_decode(src, {}, 1, 2, 17), std::runtime_error);
  EXPECT_NO_THROW(model.greedy_decode_reference(src, {}, 1, 2, 16));

  // A zero step budget is degenerate, not an error: n empty sequences.
  const auto none = model.greedy_decode(src, {}, 1, 2, 0);
  ASSERT_EQ(none.size(), 1u);
  EXPECT_TRUE(none[0].empty());
  const auto none_ref = model.greedy_decode_reference(src, {}, 1, 2, 0);
  ASSERT_EQ(none_ref.size(), 1u);
  EXPECT_TRUE(none_ref[0].empty());
}

TEST(DecodeSession, OneSessionMayBindADecoderAtATime) {
  Transformer model(tiny_config());
  model.set_training(false);
  DecodeSession first(model, session_config(2, 8));
  EXPECT_THROW(DecodeSession(model, session_config(2, 8)),
               std::runtime_error);
  // greedy_decode binds a temporary session internally, so it must also
  // be rejected while another session holds the decoder...
  const Tensor src = ids({{4, 5, 2}});
  EXPECT_THROW(model.greedy_decode(src, {}, 1, 2, 8), std::runtime_error);
  // ...and the reference path, which never binds, keeps working.
  EXPECT_NO_THROW(model.greedy_decode_reference(src, {}, 1, 2, 8));
}

TEST(DecodeSession, RebindAfterDestructionWorks) {
  Transformer model(tiny_config());
  model.set_training(false);
  const Tensor src = ids({{4, 5, 6, 2}});
  const auto ref = model.greedy_decode_reference(src, {}, 1, 2, 8);
  {
    DecodeSession session(model, session_config(1, 8));
    session.prime(src, {});
    EXPECT_EQ(session.generate(1, 2)[0], ref[0]);
  }
  DecodeSession session2(model, session_config(1, 8));
  session2.prime(src, {});
  EXPECT_EQ(session2.generate(1, 2)[0], ref[0]);
}

// ---------------------------------------------------------------------------
// Freeze propagation audit for the decoder stack (the PR 2 stale-scratch
// audit, mirrored onto the decode-side modules).
// ---------------------------------------------------------------------------

TEST(DecodeSession, FreezePropagatesThroughDecodeSideModules) {
  Transformer model(tiny_config());
  model.set_training(false);

  {
    DecodeSession session(model, session_config(2, 8));
    EXPECT_TRUE(session.frozen());
    EXPECT_TRUE(model.tgt_embedding().frozen());
    EXPECT_TRUE(model.output_projection().frozen());
    for (index_t l = 0; l < model.num_decoder_layers(); ++l) {
      EXPECT_TRUE(model.decoder_layer(l).frozen()) << "layer " << l;
      EXPECT_TRUE(model.decoder_layer(l).self_attention().frozen());
      EXPECT_TRUE(model.decoder_layer(l).cross_attention().frozen());
    }
  }

  // Whole-model unfreeze restores the trainable state.
  model.unfreeze();
  EXPECT_FALSE(model.tgt_embedding().frozen());
  EXPECT_FALSE(model.output_projection().frozen());
  for (index_t l = 0; l < model.num_decoder_layers(); ++l)
    EXPECT_FALSE(model.decoder_layer(l).frozen()) << "layer " << l;

  // An unfrozen session leaves the model untouched.
  DecodeSession session(model, session_config(2, 8, /*freeze=*/false));
  EXPECT_FALSE(session.frozen());
  EXPECT_FALSE(model.tgt_embedding().frozen());
  for (index_t l = 0; l < model.num_decoder_layers(); ++l)
    EXPECT_FALSE(model.decoder_layer(l).frozen()) << "layer " << l;
}

TEST(DecodeSession, UnfreezeRefreezeTracksWeightUpdates) {
  // The freeze contract on the decode path: packs are stale after a
  // weight update until unfreeze()/freeze(); the session serves the new
  // weights after a re-freeze.
  Transformer model(tiny_config());
  model.set_training(false);
  const Tensor src = ids({{4, 5, 6, 2}});

  std::vector<std::vector<index_t>> before;
  {
    DecodeSession session(model, session_config(1, 8));
    session.prime(src, {});
    before = session.generate(1, 2);
  }

  // Perturb the output projection so the greedy path must change.
  model.output_projection().weight().value *= -1.0f;
  model.unfreeze();
  const auto ref = model.greedy_decode_reference(src, {}, 1, 2, 8);

  DecodeSession session(model, session_config(1, 8));
  session.prime(src, {});
  const auto after = session.generate(1, 2);
  EXPECT_EQ(after[0], ref[0]);
  EXPECT_NE(after[0], before[0]) << "flipped projection must change the "
                                    "greedy sequence";
}

TEST(DecodeSession, MonolithicForwardIntoMatchesFlattenedStages) {
  // DecoderLayer::forward_into is the monolithic twin of the flattened
  // stage plan the session drives; pin the two together bit-exactly so
  // they cannot drift.  The monolithic side runs through a hand-rolled
  // driver that binds the step adapters directly (no session) — also the
  // API demonstration for custom decode drivers.
  const TransformerConfig config = tiny_config();
  Transformer session_model(config), manual_model(config);  // same seed
  session_model.set_training(false);
  manual_model.set_training(false);
  const index_t n = 2, ts = 5, steps = 6;
  const Tensor src = random_src(n, ts, 20, 61);

  DecodeSession session(session_model, session_config(n, steps));
  session.prime(src, {});

  // Manual monolithic driver over manual_model (identical weights).
  const index_t P = config.proj_dim, D = config.d_model;
  const index_t layers = manual_model.num_decoder_layers();
  // The adapters take per-row ring positions; this lockstep driver keeps
  // all rows at one shared position.
  std::vector<index_t> cur_rows(static_cast<std::size_t>(n), 0);
  const std::vector<index_t> no_lengths;
  Workspace ws;
  const Tensor enc = manual_model.encode(src, {});
  // Hand-rolled paged KV (the PR 10 bind contract): one pool page per
  // (row, self/cross) pair — page_tokens a power of two covering both the
  // step budget and the source — with every layer's K and V slices at
  // their static offsets inside the page, exactly the session's layout.
  const index_t pt = 8;  // >= steps and >= ts, power of two
  const index_t slice = pt * P;
  const index_t page_floats = layers * 2 * slice;
  runtime::KvPagePool pool;
  pool.init(2 * n, page_floats);
  std::vector<index_t> self_table, cross_table;
  for (index_t r = 0; r < n; ++r) self_table.push_back(pool.acquire());
  for (index_t r = 0; r < n; ++r) cross_table.push_back(pool.acquire());
  const auto paged = [&](const std::vector<index_t>& table,
                         index_t slice_offset) {
    PagedKvView view;
    view.pool = pool.data();
    view.table = table.data();
    view.page_floats = page_floats;
    view.pages_per_row = 1;
    view.page_tokens = pt;
    view.slice_offset = slice_offset;
    return view;
  };
  std::vector<Tensor> k_cross, v_cross;  // dense project_kv staging
  for (index_t l = 0; l < layers; ++l) {
    k_cross.emplace_back(Shape{n, ts, P});
    v_cross.emplace_back(Shape{n, ts, P});
    DecoderLayer& layer = manual_model.decoder_layer(l);
    ws.reset();
    layer.cross_attention().project_kv(
        ConstTensorView(Shape{n * ts, D}, enc.data()), n, ts,
        TensorView(k_cross.back()), TensorView(v_cross.back()), ws);
    // Commit the staged dense K/V into the cross pages (the session's
    // commit_row copy, inlined for one page per row).
    for (index_t r = 0; r < n; ++r) {
      float* page = pool.page_data(cross_table[static_cast<std::size_t>(r)]);
      for (index_t j = 0; j < ts; ++j) {
        const float* ks = k_cross.back().data() + (r * ts + j) * P;
        const float* vs = v_cross.back().data() + (r * ts + j) * P;
        std::copy(ks, ks + P, page + (2 * l) * slice + j * P);
        std::copy(vs, vs + P, page + (2 * l + 1) * slice + j * P);
      }
    }
    layer.self_step().bind(paged(self_table, (2 * l) * slice),
                           paged(self_table, (2 * l + 1) * slice), steps,
                           &cur_rows);
    layer.cross_step().bind(paged(cross_table, (2 * l) * slice),
                            paged(cross_table, (2 * l + 1) * slice), ts,
                            &no_lengths);
  }

  std::vector<index_t> feed(static_cast<std::size_t>(n), 1);  // bos
  Tensor x{Shape{n, D}}, y{Shape{n, D}};
  const float scale = std::sqrt(static_cast<float>(D));
  for (index_t s = 0; s < steps; ++s) {
    const std::vector<index_t> next = session.step(feed);
    // Monolithic step: embed + scale + positional, then layer-by-layer
    // forward_into, then the output projection.
    for (index_t r = 0; r < n; ++r) {
      const float* e = manual_model.tgt_embedding().weight().value.data() +
                       feed[static_cast<std::size_t>(r)] * D;
      const float* pe = manual_model.positional().table().data() +
                        cur_rows[static_cast<std::size_t>(r)] * D;
      for (index_t d = 0; d < D; ++d)
        x.data()[r * D + d] = e[d] * scale + pe[d];
    }
    for (index_t l = 0; l < layers; ++l) {
      ws.reset();
      manual_model.decoder_layer(l).forward_into(ConstTensorView(x),
                                                 TensorView(y), ws);
      std::swap(x, y);
    }
    Tensor logits{Shape{n, config.tgt_vocab}};
    ws.reset();
    manual_model.output_projection().forward_into(ConstTensorView(x),
                                                  TensorView(logits), ws);
    for (index_t& c : cur_rows) ++c;
    ASSERT_EQ(session.logits().shape(), logits.shape());
    EXPECT_EQ(view_max_abs_diff(session.logits(), ConstTensorView(logits)),
              0.0f)
        << "step " << s;
    feed = next;  // both paths follow the session's greedy argmax
  }
}

TEST(DecodeSession, StagePlanAndFootprintIntrospection) {
  TransformerConfig config = tiny_config();
  Transformer model(config);
  model.set_training(false);
  DecodeSession session(model, session_config(2, 8));
  EXPECT_TRUE(session.fully_native());
  // Per layer: self_step, add, ln1, cross_step, add, ln2, fc1, relu, fc2,
  // add, ln3 = 11 stages; plus the output projection.
  EXPECT_EQ(session.num_stages(), 11 * config.n_layers + 1);
  // Paged KV floats (PR 10): (pool pages + the sentinel) × page_floats,
  // where page_floats = layers × 2 × page_tokens × proj_dim and the
  // default pool covers the dense worst case — max_batch rows at
  // ceil(max_steps/pt) self + ceil(max_src/pt) cross pages each, max_src
  // defaulting to the model's max_len.
  const index_t pt = 16;  // DecodeSessionConfig default page_tokens
  const index_t ppr =
      (8 + pt - 1) / pt + (config.max_len + pt - 1) / pt;
  const index_t page_floats = config.n_layers * 2 * pt * config.proj_dim;
  const index_t expected = (2 * ppr + 1) * page_floats;
  EXPECT_EQ(session.kv_cache_floats(), expected);
  EXPECT_GT(session.workspace_floats(), 0);
}

TEST(DecodeSession, PrimeRowAdmitsMidFlightBitIdentically) {
  // The continuous-batching primitive, exercised at session level: row 0
  // decodes alone for a few steps, then row 1 is primed mid-flight at a
  // different ring position.  Both rows' greedy streams must match solo
  // references exactly — per-row step counters, per-row source lengths
  // and the masked attention tails at work.
  Transformer model(tiny_config());
  model.set_training(false);
  const Tensor src_a = random_src(1, 5, 20, 41);
  const Tensor src_b = random_src(1, 3, 20, 42);
  const index_t steps_a = 9, steps_b = 5, stagger = 4;
  const auto ref_a =
      model.greedy_decode_reference(src_a, {}, 1, 2, steps_a)[0];
  const auto ref_b =
      model.greedy_decode_reference(src_b, {}, 1, 2, steps_b)[0];
  // Untrained tiny model: neither reference hits eos inside its budget,
  // so the streams below never need eos handling.
  ASSERT_EQ(static_cast<index_t>(ref_a.size()), steps_a);
  ASSERT_EQ(static_cast<index_t>(ref_b.size()), steps_b);

  DecodeSession session(model, session_config(2, 10));
  session.prime_row(0, src_a, 0);
  std::vector<index_t> feed{1, 1};  // bos; row 1 parked on bos
  std::vector<index_t> got_a, got_b;
  for (index_t s = 0; s < steps_a; ++s) {
    if (s < stagger) {
      session.reset_row(1);  // park: ring position pinned at 0
    } else if (s == stagger) {
      session.prime_row(1, src_b, 0);  // admit mid-flight
      feed[1] = 1;                     // bos for the new request
    }
    const std::vector<index_t>& next = session.step(feed);
    got_a.push_back(next[0]);
    feed[0] = next[0];
    if (s >= stagger &&
        static_cast<index_t>(got_b.size()) < steps_b) {
      got_b.push_back(next[1]);
      feed[1] = next[1];
    }
    EXPECT_EQ(session.row_steps(0), s + 1);
  }
  EXPECT_EQ(got_a, ref_a);
  EXPECT_EQ(got_b, ref_b);
}

TEST(DecodeSession, PrimeComputeCommitRowMatchesPrimeRowBitExactly) {
  // The prefill/decode split at session level: prime_compute into a
  // caller-owned staging buffer + commit_row into a batch row must serve
  // the exact bits of the fused prime_row (which IS compute + commit over
  // a private staging — but assert through the public halves so the
  // contract outlives the implementation).  The same staging commits into
  // two rows: both must decode identical streams.
  Transformer model(tiny_config());
  model.set_training(false);
  const Tensor src = random_src(1, 5, 20, 61);
  const auto ref = model.greedy_decode_reference(src, {}, 1, 2, 8)[0];
  // Untrained tiny model: the reference never hits eos inside the budget.
  ASSERT_EQ(ref.size(), 8u);

  DecodeSession session(model, session_config(2, 8));
  runtime::PrefillStaging staging;
  session.init_staging(staging);
  session.prime_compute(src, 0, staging);
  EXPECT_EQ(staging.ts, 5);
  EXPECT_EQ(staging.len, 5);
  session.commit_row(0, staging);
  session.commit_row(1, staging);  // staging is reusable until overwritten
  EXPECT_FALSE(session.row_parked(0));
  EXPECT_FALSE(session.row_parked(1));

  std::vector<index_t> feed{1, 1};
  std::vector<index_t> got0, got1;
  for (index_t s = 0; s < 8; ++s) {
    feed = session.step(feed);
    got0.push_back(feed[0]);
    got1.push_back(feed[1]);
  }
  EXPECT_EQ(got0, ref);
  EXPECT_EQ(got1, ref);

  // Misuse is rejected with field-named errors: unsized staging, a commit
  // before any compute, and an out-of-range row.
  runtime::PrefillStaging unsized;
  EXPECT_THROW(session.prime_compute(src, 0, unsized), std::runtime_error);
  runtime::PrefillStaging empty;
  session.init_staging(empty);
  EXPECT_THROW(session.commit_row(0, empty), std::runtime_error);
  EXPECT_THROW(session.commit_row(2, staging), std::runtime_error);
}

TEST(DecodeSession, ParkedRowsStayAtRingZeroWithoutPerTickResets) {
  // reset_row parks: the freed row rides every subsequent batch step with
  // its ring position pinned at 0 — no per-tick re-reset, and the ring
  // can never exhaust no matter how many ticks pass.
  Transformer model(tiny_config());
  model.set_training(false);
  DecodeSession session(model, session_config(2, 4));  // tiny ring
  // Unprimed rows start parked.
  EXPECT_TRUE(session.row_parked(0));
  EXPECT_TRUE(session.row_parked(1));

  session.prime_row(0, random_src(1, 4, 20, 62), 0);
  EXPECT_FALSE(session.row_parked(0));
  std::vector<index_t> feed{1, 1};
  // More ticks than the ring holds: row 1 (parked) must stay at 0 and
  // never trip the ring-exhaustion check; row 0 decodes normally.
  for (index_t s = 0; s < 3; ++s) {
    feed = session.step(feed);
    EXPECT_EQ(session.row_steps(0), s + 1);
    EXPECT_EQ(session.row_steps(1), 0) << "parked row advanced";
    EXPECT_TRUE(session.row_parked(1));
  }
  // Retire row 0 (park once) and keep ticking past the ring capacity:
  // both rows now pinned at 0, so step() would throw for a non-parked
  // row after 4 steps — it must not.
  session.reset_row(0);
  EXPECT_TRUE(session.row_parked(0));
  feed.assign(2, 1);
  for (index_t s = 0; s < 6; ++s) {
    session.step(feed);
    EXPECT_EQ(session.row_steps(0), 0);
    EXPECT_EQ(session.row_steps(1), 0);
  }
}

TEST(DecodeSession, ResetRowRewindsOneRowOnly) {
  Transformer model(tiny_config());
  model.set_training(false);
  DecodeSession session(model, session_config(2, 8));
  session.prime_row(0, random_src(1, 4, 20, 43), 0);
  session.prime_row(1, random_src(1, 4, 20, 44), 0);
  std::vector<index_t> feed{1, 1};
  feed = session.step(feed);
  feed = session.step(feed);
  EXPECT_EQ(session.row_steps(0), 2);
  EXPECT_EQ(session.row_steps(1), 2);
  session.reset_row(0);
  EXPECT_EQ(session.row_steps(0), 0);
  EXPECT_EQ(session.row_steps(1), 2) << "reset must not touch row 1";
  EXPECT_THROW(session.reset_row(2), std::runtime_error);
  EXPECT_THROW(session.prime_row(2, random_src(1, 4, 20, 45), 0),
               std::runtime_error);
}

TEST(DecodeSession, ConfigValidationNamesTheField) {
  Transformer model(tiny_config());
  model.set_training(false);
  auto message_of = [&](DecodeSessionConfig sc) -> std::string {
    try {
      DecodeSession session(model, sc);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "";
  };
  DecodeSessionConfig sc = session_config(0, 8);
  EXPECT_NE(message_of(sc).find("max_batch"), std::string::npos);
  sc = session_config(2, 0);
  EXPECT_NE(message_of(sc).find("max_steps"), std::string::npos);
  sc = session_config(2, 8);
  sc.max_src = -3;
  EXPECT_NE(message_of(sc).find("max_src"), std::string::npos);
  sc = session_config(2, 8);
  sc.max_src = model.config().max_len + 1;
  EXPECT_NE(message_of(sc).find("max_src"), std::string::npos);
}

TEST(DecodeSession, MaxSrcShrinksCrossCachesAndBoundsPrime) {
  Transformer model(tiny_config());
  model.set_training(false);
  DecodeSessionConfig sc = session_config(2, 8);
  sc.max_src = 5;
  DecodeSession session(model, sc);
  const TransformerConfig& mc = model.config();
  // Paged footprint: max_src=5 still needs one cross page per row (pages
  // are 16 tokens), so the shrink shows up as fewer PAGES only once
  // max_src crosses a page boundary — here both geometries fit one page
  // and the footprint is (pool pages + sentinel) × page_floats.
  EXPECT_EQ(session.kv_cache_floats(),
            (2 * (1 + 1) + 1) * (mc.n_layers * 2 * 16 * mc.proj_dim));

  // Sources up to max_src serve bit-identically; longer ones are
  // rejected instead of overrunning the shrunken caches.
  const Tensor src = random_src(2, 5, 20, 71);
  session.prime(src, {});
  const auto out = session.generate(1, 2);
  const auto ref = model.greedy_decode_reference(src, {}, 1, 2, 8);
  for (std::size_t r = 0; r < ref.size(); ++r) EXPECT_EQ(out[r], ref[r]);
  EXPECT_THROW(session.prime(random_src(2, 6, 20, 72), {}),
               std::runtime_error);

  // max_src beyond the model's positional table is rejected at bind.
  sc.max_src = mc.max_len + 1;
  EXPECT_THROW(DecodeSession(model, sc), std::runtime_error);
}

}  // namespace
}  // namespace qdnn::models
