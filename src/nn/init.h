// Weight initialization schemes.
//
// ResNets use Kaiming (He) initialization for conv/linear weights; the
// Transformer uses Xavier/Glorot.  The proposed quadratic neuron's Qᵏ is
// initialized like a linear weight of the same fan-in (each column of Qᵏ
// acts as an independent linear neuron, Sec. III-B) and Λᵏ starts small so
// training begins near the linear regime.
#pragma once

#include "core/rng.h"
#include "core/tensor.h"

namespace qdnn::nn {

// He-normal: stddev = sqrt(2 / fan_in).
void kaiming_normal(Tensor& w, index_t fan_in, Rng& rng);

// Glorot-uniform: bound = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(Tensor& w, index_t fan_in, index_t fan_out, Rng& rng);

// Uniform in [-bound, bound].
void uniform_bound(Tensor& w, float bound, Rng& rng);

// Λᵏ initializer: small uniform values so the quadratic term starts as a
// gentle perturbation of the linear neuron.
void lambda_init(Tensor& lambda, Rng& rng, float scale = 0.05f);

}  // namespace qdnn::nn
