// Model checkpointing: saves/restores every Parameter AND every named
// buffer (BatchNorm running statistics) of a module tree by name.  The
// format is a simple indexed container of the core tensor serialization,
// so checkpoints are portable across runs as long as the architecture
// (and therefore the parameter/buffer names and shapes) matches.
#pragma once

#include <string>

#include "nn/module.h"

namespace qdnn::nn {

// Writes all parameters and buffers of `module` to `path`.
void save_checkpoint(Module& module, const std::string& path);

// Loads a checkpoint saved by save_checkpoint into `module`.  Every
// parameter and buffer in the module must be present in the file with a
// matching shape; extra entries in the file are an error (they indicate
// an architecture mismatch).
void load_checkpoint(Module& module, const std::string& path);

// Copies all parameter values and buffers from `src` into `dst`.  The two
// modules must be architecturally identical (same parameter/buffer names
// and shapes in the same order) — the in-memory equivalent of
// save_checkpoint + load_checkpoint, used to clone trained models for
// quantization and ablation studies.
void copy_state(Module& src, Module& dst);

}  // namespace qdnn::nn
