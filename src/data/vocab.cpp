#include "data/vocab.h"

#include "core/check.h"

namespace qdnn::data {

Vocab::Vocab() {
  add("<pad>");
  add("<bos>");
  add("<eos>");
  add("<unk>");
}

index_t Vocab::add(const std::string& word) {
  const auto it = index_.find(word);
  if (it != index_.end()) return it->second;
  const index_t id = static_cast<index_t>(words_.size());
  words_.push_back(word);
  index_.emplace(word, id);
  return id;
}

index_t Vocab::id(const std::string& word) const {
  const auto it = index_.find(word);
  return it == index_.end() ? kUnk : it->second;
}

const std::string& Vocab::word(index_t id) const {
  QDNN_CHECK(id >= 0 && id < size(), "Vocab: id " << id << " out of range");
  return words_[static_cast<std::size_t>(id)];
}

std::vector<index_t> Vocab::encode(
    const std::vector<std::string>& tokens) const {
  std::vector<index_t> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) ids.push_back(id(t));
  return ids;
}

std::vector<std::string> Vocab::decode(
    const std::vector<index_t>& ids) const {
  std::vector<std::string> tokens;
  tokens.reserve(ids.size());
  for (index_t i : ids) tokens.push_back(word(i));
  return tokens;
}

}  // namespace qdnn::data
