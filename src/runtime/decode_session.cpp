#include "runtime/decode_session.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/trace.h"

namespace qdnn::runtime {

DecodeSession::DecodeSession(models::Transformer& model,
                             DecodeSessionConfig config)
    : model_(&model), config_(config), encoder_(model) {
  const models::TransformerConfig& mc = model_->config();
  // Validate the full ring geometry here, with messages naming the
  // config field — not via QDNN_DCHECKs deep inside the attention
  // kernels once a bad bound finally overruns a cache.
  QDNN_CHECK(config_.max_batch > 0,
             "DecodeSession: max_batch must be positive, got "
                 << config_.max_batch);
  // bos fills ring row 0 and step s embeds position s, so the deepest
  // step uses position max_steps − 1: max_steps == max_len is the exact
  // upper bound (the implicit-bos slot does not cost an extra position).
  QDNN_CHECK(config_.max_steps >= 1 && config_.max_steps <= mc.max_len,
             "DecodeSession: max_steps " << config_.max_steps
                                         << " outside [1, " << mc.max_len
                                         << "] (max_len)");
  QDNN_CHECK(config_.max_src >= 0,
             "DecodeSession: max_src must be non-negative (0 = the "
             "model's max_len), got "
                 << config_.max_src);
  d_model_ = mc.d_model;
  proj_dim_ = mc.proj_dim;
  vocab_ = mc.tgt_vocab;
  max_src_ = config_.max_src > 0 ? config_.max_src : mc.max_len;
  QDNN_CHECK(max_src_ <= mc.max_len,
             "DecodeSession: max_src " << max_src_ << " exceeds max_len "
                                       << mc.max_len);

  // Exclusivity first, before ANY model mutation: a rejected second
  // session must not flip the model to eval mode or freeze it.
  const index_t layers = model_->num_decoder_layers();
  QDNN_CHECK(layers > 0, "DecodeSession: model has no decoder layers");
  for (index_t l = 0; l < layers; ++l)
    QDNN_CHECK(!model_->decoder_layer(l).self_step().bound() &&
                   !model_->decoder_layer(l).cross_step().bound(),
               "DecodeSession: decoder already bound by another "
               "DecodeSession — destroy it before binding a new one");
  model_->set_training(false);

  // Flatten the decode-step pipeline: every decoder layer's stages, then
  // the output projection as the final stage.
  for (index_t l = 0; l < layers; ++l)
    model_->decoder_layer(l).flatten_into(stages_);
  model_->output_projection().flatten_into(stages_);
  nn::validate_pipeline(stages_, "DecodeSession");

  // Per-boundary row widths via the shape pipeline at batch 1 (widths are
  // batch-independent; every boundary keeps the batch leading).
  stage_width_.reserve(stages_.size());
  {
    auto width_of = [&](index_t b) {
      return b < 0 ? d_model_
                   : stage_width_[static_cast<std::size_t>(b)];
    };
    for (const nn::PipelineStage& st : stages_) {
      if (st.is_add()) {
        QDNN_CHECK(width_of(st.input) == width_of(st.addend),
                   "DecodeSession: residual-add operand widths "
                       << width_of(st.input) << " vs "
                       << width_of(st.addend));
        stage_width_.push_back(width_of(st.input));
      } else {
        const Shape out =
            st.module->output_shape(Shape{1, width_of(st.input)});
        QDNN_CHECK(out.rank() == 2 && out[0] == 1,
                   st.module->name() << ": step stage output " << out
                                     << " is not [N, W]");
        stage_width_.push_back(out[1]);
      }
    }
  }
  QDNN_CHECK(stage_width_.back() == vocab_,
             "DecodeSession: final stage width " << stage_width_.back()
                                                 << " != tgt_vocab "
                                                 << vocab_);

  // Bind step: prepack the decode-side weights and drop training caches
  // before warm-up, so the watermark never includes packing scratch.
  if (config_.freeze) {
    model_->tgt_embedding().freeze();
    for (index_t l = 0; l < layers; ++l) model_->decoder_layer(l).freeze();
    model_->output_projection().freeze();
  }

  // KV caches and activation buffers, sized once for (max_batch,
  // max_steps / max_src).  Zero-filled so the warm-up step at the deepest
  // ring position reads defined values.
  const index_t self_floats = config_.max_batch * config_.max_steps *
                              proj_dim_;
  const index_t cross_floats = config_.max_batch * max_src_ * proj_dim_;
  for (index_t l = 0; l < layers; ++l) {
    self_k_.emplace_back(Shape{self_floats});
    self_v_.emplace_back(Shape{self_floats});
    cross_k_.emplace_back(Shape{cross_floats});
    cross_v_.emplace_back(Shape{cross_floats});
  }
  embed_buf_ = Tensor{Shape{config_.max_batch * d_model_}};
  buffers_.reserve(stages_.size());
  for (index_t w : stage_width_)
    buffers_.emplace_back(Shape{config_.max_batch * w});
  next_tokens_.reserve(static_cast<std::size_t>(config_.max_batch));
  feed_tokens_.reserve(static_cast<std::size_t>(config_.max_batch));
  done_.reserve(static_cast<std::size_t>(config_.max_batch));
  // Per-row state at full width from the start: the step adapters hold
  // pointers into these across rebinds, and prime_row/reset_row must
  // never grow them.
  row_steps_.assign(static_cast<std::size_t>(config_.max_batch), 0);
  src_lengths_.assign(static_cast<std::size_t>(config_.max_batch), 0);
  // Every row starts parked (pinned at ring position 0) until its first
  // prime: unprimed rows ride the batch gemm without ever advancing.
  parked_.assign(static_cast<std::size_t>(config_.max_batch), 1);
  in_views_.resize(stages_.size());
  add_views_.resize(stages_.size());
  out_views_.resize(stages_.size());
  // Profiling slots: embed + every stage + argmax (see stage_profile()).
  stage_ns_.assign(stages_.size() + 2, 0);
  stage_calls_.assign(stages_.size() + 2, 0);

  // From the first bind on, an exception must not leave the model's
  // adapters pointing into this half-constructed (about-to-unwind)
  // session: unbind before rethrowing (the destructor will not run).
  try {
    bind_views(config_.max_batch);

    if (config_.warmup) {
      // Project dummy encoder K/V (covers prime's projection scratch)
      // and run one step at the deepest ring position (the widest score
      // buffers), then consolidate the workspace to the exact watermark.
      Tensor dummy_enc{Shape{config_.max_batch * max_src_, d_model_}};
      for (index_t r = 0; r < config_.max_batch; ++r)
        project_cross_row(r, dummy_enc.data() + r * max_src_ * d_model_,
                          max_src_);
      primed_ = true;
      row_steps_.assign(static_cast<std::size_t>(config_.max_batch),
                        config_.max_steps - 1);
      src_lengths_.assign(static_cast<std::size_t>(config_.max_batch),
                          max_src_);
      feed_tokens_.assign(static_cast<std::size_t>(config_.max_batch), 0);
      run_step(feed_tokens_);
      primed_ = false;
      row_steps_.assign(static_cast<std::size_t>(config_.max_batch), 0);
      src_lengths_.assign(static_cast<std::size_t>(config_.max_batch), 0);
      ws_.reset();
      ws_.consolidate();
    }
  } catch (...) {
    unbind_all();
    throw;
  }
}

DecodeSession::~DecodeSession() { unbind_all(); }

void DecodeSession::unbind_all() {
  for (index_t l = 0; l < model_->num_decoder_layers(); ++l) {
    model_->decoder_layer(l).self_step().unbind();
    model_->decoder_layer(l).cross_step().unbind();
  }
}

bool DecodeSession::fully_native() const {
  for (const nn::PipelineStage& st : stages_)
    if (!st.is_add() && !st.module->supports_forward_into()) return false;
  return true;
}

index_t DecodeSession::kv_cache_floats() const {
  index_t total = 0;
  for (const Tensor& t : self_k_) total += t.numel();
  for (const Tensor& t : self_v_) total += t.numel();
  for (const Tensor& t : cross_k_) total += t.numel();
  for (const Tensor& t : cross_v_) total += t.numel();
  return total;
}

index_t DecodeSession::row_steps(index_t row) const {
  QDNN_CHECK(row >= 0 && row < config_.max_batch,
             "DecodeSession: row " << row << " outside [0, "
                                   << config_.max_batch << ")");
  return row_steps_[static_cast<std::size_t>(row)];
}

bool DecodeSession::row_parked(index_t row) const {
  QDNN_CHECK(row >= 0 && row < config_.max_batch,
             "DecodeSession: row " << row << " outside [0, "
                                   << config_.max_batch << ")");
  return parked_[static_cast<std::size_t>(row)] != 0;
}

void DecodeSession::bind_views(index_t n) {
  // Rebuild the per-stage views and the adapter cache bindings for this
  // batch width.  The cross caches keep the full max_src row stride in
  // every binding (per-row source lengths mask the tail), so a row's
  // cache slice never moves and prime_row can fill it in place.  Shapes
  // are inline, so this never touches the heap; it runs at construction
  // and when prime() changes the batch width.
  for (index_t l = 0; l < model_->num_decoder_layers(); ++l) {
    models::DecoderLayer& layer = model_->decoder_layer(l);
    layer.self_step().bind(
        TensorView(Shape{n, config_.max_steps, proj_dim_},
                   self_k_[static_cast<std::size_t>(l)].data()),
        TensorView(Shape{n, config_.max_steps, proj_dim_},
                   self_v_[static_cast<std::size_t>(l)].data()),
        &row_steps_);
    layer.cross_step().bind(
        ConstTensorView(Shape{n, max_src_, proj_dim_},
                        cross_k_[static_cast<std::size_t>(l)].data()),
        ConstTensorView(Shape{n, max_src_, proj_dim_},
                        cross_v_[static_cast<std::size_t>(l)].data()),
        &src_lengths_);
  }

  auto boundary_data = [&](index_t b) -> float* {
    return b < 0 ? embed_buf_.data()
                 : buffers_[static_cast<std::size_t>(b)].data();
  };
  auto boundary_width = [&](index_t b) {
    return b < 0 ? d_model_ : stage_width_[static_cast<std::size_t>(b)];
  };
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const nn::PipelineStage& st = stages_[i];
    in_views_[i] = ConstTensorView(Shape{n, boundary_width(st.input)},
                                   boundary_data(st.input));
    add_views_[i] =
        st.is_add() ? ConstTensorView(Shape{n, boundary_width(st.addend)},
                                      boundary_data(st.addend))
                    : ConstTensorView{};
    out_views_[i] = TensorView(
        Shape{n, stage_width_[i]}, boundary_data(static_cast<index_t>(i)));
  }
  logits_view_ =
      ConstTensorView(Shape{n, vocab_}, buffers_.back().data());
  bound_n_ = n;
}

void DecodeSession::project_cross_row(index_t row, const float* enc_row,
                                      index_t ts) {
  // Project one request's encoder rows [ts, D] into row `row`'s slice of
  // every layer's cross caches.  The slice is contiguous ([ts, P] at
  // offset row · max_src · P), so this is the exact n = 1 projection a
  // solo session would run — per-row and batch priming are bit-identical.
  const ConstTensorView enc_view(Shape{ts, d_model_}, enc_row);
  const index_t offset = row * max_src_ * proj_dim_;
  for (index_t l = 0; l < model_->num_decoder_layers(); ++l) {
    ws_.reset();
    model_->decoder_layer(l).cross_attention().project_kv(
        enc_view, 1, ts,
        TensorView(Shape{1, ts, proj_dim_},
                   cross_k_[static_cast<std::size_t>(l)].data() + offset),
        TensorView(Shape{1, ts, proj_dim_},
                   cross_v_[static_cast<std::size_t>(l)].data() + offset),
        ws_);
  }
}

void DecodeSession::prime(const Tensor& src_ids,
                          const std::vector<index_t>& src_lengths) {
  QDNN_CHECK(src_ids.rank() == 2, "DecodeSession: src_ids must be [N, T]");
  const index_t n = src_ids.dim(0), ts = src_ids.dim(1);
  QDNN_CHECK(n >= 1 && n <= config_.max_batch,
             "DecodeSession: batch size " << n << " outside [1, "
                                          << config_.max_batch << "]");
  QDNN_CHECK(ts >= 1 && ts <= max_src_,
             "DecodeSession: source length " << ts << " outside [1, "
                                             << max_src_ << "]");
  QDNN_CHECK(src_lengths.empty() ||
                 static_cast<index_t>(src_lengths.size()) == n,
             "DecodeSession: src_lengths holds "
                 << src_lengths.size() << " entries for batch " << n);
  for (std::size_t i = 0; i < src_lengths.size(); ++i)
    QDNN_CHECK(src_lengths[i] >= 0 && src_lengths[i] <= ts,
               "DecodeSession: src_lengths[" << i << "] = "
                                             << src_lengths[i]
                                             << " outside [0, " << ts
                                             << "] (0 = all valid)");

  // Row by row through the masked native encoder — the same kernels and
  // per-row masking as prime_row/prime_compute, so all three admission
  // paths stay bit-identical (and bit-identical to the training-path
  // encoder, hence to greedy_decode_reference).
  init_staging(solo_staging_);
  if (n != bound_n_) bind_views(n);
  for (index_t r = 0; r < n; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    const index_t len =
        src_lengths.empty() || src_lengths[ri] == 0 ? ts : src_lengths[ri];
    const ConstTensorView enc =
        encode_source(src_ids.data() + r * ts, ts, len, solo_staging_);
    src_lengths_[ri] = len;
    row_steps_[ri] = 0;
    parked_[ri] = 0;
    // project_cross_row scratches from the session arena (ws_), not the
    // staging frame holding `enc`, so the view stays valid throughout.
    project_cross_row(r, enc.data(), ts);
  }
  primed_ = true;
}

void DecodeSession::prime_row(index_t row, const Tensor& src_ids,
                              index_t src_length) {
  QDNN_CHECK(row >= 0 && row < config_.max_batch,
             "DecodeSession: row " << row << " outside [0, "
                                   << config_.max_batch << ")");
  // prime_row IS prime_compute + commit_row over a private staging slot:
  // the synchronous and pool-fed admission paths share one code path, so
  // they cannot drift (bit-identical by construction).
  init_staging(solo_staging_);
  prime_compute(src_ids, src_length, solo_staging_);
  commit_row(row, solo_staging_);
}

void DecodeSession::init_staging(PrefillStaging& staging) const {
  const index_t floats =
      model_->num_decoder_layers() * max_src_ * proj_dim_;
  const bool fresh = staging.k.numel() != floats;
  if (fresh) {
    staging.k = Tensor{Shape{floats}};
    staging.v = Tensor{Shape{floats}};
  }
  if (fresh && config_.warmup) {
    // One dummy prefill at the deepest geometry discovers the slot's
    // workspace watermark (encoder activations + projection scratch), so
    // every later prime_compute through the slot is zero-alloc.  Rewind
    // the slot afterwards: committing it before a real prefill must still
    // be the "empty staging" error.
    Tensor ids{Shape{max_src_}};  // zero-filled: token id 0
    prime_compute(ids, /*src_length=*/0, staging);
    staging.ts = 0;
    staging.len = 0;
    staging.ws.reset();
    staging.ws.consolidate();
  }
}

ConstTensorView DecodeSession::encode_source(const float* ids, index_t ts,
                                             index_t len,
                                             PrefillStaging& staging) const {
  // One workspace frame for the whole prefill: the reset here is the
  // slot's only reset point, so the encoder activations and everything
  // the caller stacks after them (the cross projections) coexist.
  staging.ws.reset();
  const ConstTensorView ids_view(Shape{1, ts}, ids);
  const TensorView enc = staging.ws.take(Shape{1, ts, d_model_});
  encoder_.encode_into(ids_view, enc, &len, staging.ws);
  return ConstTensorView(Shape{ts, d_model_}, enc.data());
}

void DecodeSession::prime_compute(const Tensor& src_ids,
                                  index_t src_length,
                                  PrefillStaging& staging) const {
  QDNN_CHECK(src_ids.rank() == 1 ||
                 (src_ids.rank() == 2 && src_ids.dim(0) == 1),
             "DecodeSession: prime src_ids must be [Ts] or [1, Ts], got "
                 << src_ids.shape());
  const index_t ts = src_ids.dim(src_ids.rank() - 1);
  QDNN_CHECK(ts >= 1 && ts <= max_src_,
             "DecodeSession: source length " << ts << " outside [1, "
                                             << max_src_ << "]");
  QDNN_CHECK(src_length >= 0 && src_length <= ts,
             "DecodeSession: src_length " << src_length << " outside [0, "
                                          << ts << "] (0 = all valid)");
  const index_t layers = model_->num_decoder_layers();
  QDNN_CHECK(staging.k.numel() == layers * max_src_ * proj_dim_ &&
                 staging.v.numel() == staging.k.numel(),
             "DecodeSession: staging not sized for this session — call "
             "init_staging first");
  const index_t len = src_length > 0 ? src_length : ts;

  // Masked native encoder + cross projections, all from staging.ws —
  // stateless kernels over frozen weights, so concurrent calls (each
  // with a private staging) never touch shared mutable state.  The
  // projections stack in the same frame as the encoder activation:
  // encode_source owns the slot's single reset point.
  const ConstTensorView enc_view = encode_source(src_ids.data(), ts, len,
                                                 staging);
  for (index_t l = 0; l < layers; ++l) {
    const index_t offset = l * max_src_ * proj_dim_;
    model_->decoder_layer(l).cross_attention().project_kv(
        enc_view, 1, ts,
        TensorView(Shape{1, ts, proj_dim_}, staging.k.data() + offset),
        TensorView(Shape{1, ts, proj_dim_}, staging.v.data() + offset),
        staging.ws);
  }
  staging.ts = ts;
  staging.len = len;
}

void DecodeSession::commit_row(index_t row, const PrefillStaging& staging) {
  QDNN_CHECK(row >= 0 && row < config_.max_batch,
             "DecodeSession: row " << row << " outside [0, "
                                   << config_.max_batch << ")");
  const index_t layers = model_->num_decoder_layers();
  QDNN_CHECK(staging.ts >= 1 && staging.ts <= max_src_ &&
                 staging.len >= 1 && staging.len <= staging.ts,
             "DecodeSession: commit_row on empty staging — run "
             "prime_compute first");
  QDNN_CHECK(staging.k.numel() == layers * max_src_ * proj_dim_ &&
                 staging.v.numel() == staging.k.numel(),
             "DecodeSession: staging sized for a different session");

  // Continuous mode runs at the full max_batch width so every row slot
  // is addressable; rows never primed just ride the batch masked-out.
  // bind_views is heap-free (inline shapes), so the whole commit is too.
  if (bound_n_ != config_.max_batch) bind_views(config_.max_batch);

  const std::size_t bytes =
      static_cast<std::size_t>(staging.ts * proj_dim_) * sizeof(float);
  const index_t row_offset = row * max_src_ * proj_dim_;
  for (index_t l = 0; l < layers; ++l) {
    const auto li = static_cast<std::size_t>(l);
    const index_t src_offset = l * max_src_ * proj_dim_;
    std::memcpy(cross_k_[li].data() + row_offset,
                staging.k.data() + src_offset, bytes);
    std::memcpy(cross_v_[li].data() + row_offset,
                staging.v.data() + src_offset, bytes);
  }
  src_lengths_[static_cast<std::size_t>(row)] = staging.len;
  row_steps_[static_cast<std::size_t>(row)] = 0;
  parked_[static_cast<std::size_t>(row)] = 0;
  primed_ = true;
}

void DecodeSession::reset_row(index_t row) {
  QDNN_CHECK(row >= 0 && row < config_.max_batch,
             "DecodeSession: row " << row << " outside [0, "
                                   << config_.max_batch << ")");
  row_steps_[static_cast<std::size_t>(row)] = 0;
  parked_[static_cast<std::size_t>(row)] = 1;
}

void DecodeSession::run_step(const std::vector<index_t>& tokens) {
  const index_t n = bound_n_;
  // Stage profiling piggybacks on the trace gate: two clock reads per
  // stage while tracing, nothing at all (one relaxed load) when off.
  const bool profiling = obs::trace_enabled();
  long long t_prev = profiling ? obs::now_ns() : 0;
  const auto mark = [&](std::size_t slot) {
    const long long t_now = obs::now_ns();
    stage_ns_[slot] += t_now - t_prev;
    ++stage_calls_[slot];
    t_prev = t_now;
  };
  // Embed each row's new token at that row's ring position:
  // y = E[id]·sqrt(d) + PE[row_step], the exact operation order of the
  // training path.  Rows at different positions read different PE rows —
  // the continuous-batching case.
  const Tensor& table = model_->positional().table();
  const float* weights = model_->tgt_embedding().weight().value.data();
  const float scale = std::sqrt(static_cast<float>(d_model_));
  for (index_t r = 0; r < n; ++r) {
    const index_t id = tokens[static_cast<std::size_t>(r)];
    QDNN_CHECK(id >= 0 && id < vocab_,
               "DecodeSession: token id " << id << " out of vocab "
                                          << vocab_);
    const float* pe =
        table.data() + row_steps_[static_cast<std::size_t>(r)] * d_model_;
    const float* e = weights + id * d_model_;
    float* y = embed_buf_.data() + r * d_model_;
    for (index_t d = 0; d < d_model_; ++d) y[d] = e[d] * scale + pe[d];
  }
  if (profiling) mark(0);

  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const nn::PipelineStage& st = stages_[i];
    if (st.is_add()) {
      // Residual-add stage: out = in + addend, the exact operand order of
      // the training path's `main += residual`.
      const float* a = in_views_[i].data();
      const float* b = add_views_[i].data();
      float* o = out_views_[i].data();
      const index_t count = out_views_[i].numel();
      for (index_t j = 0; j < count; ++j) o[j] = a[j] + b[j];
      if (profiling) mark(i + 1);
      continue;
    }
    // Scratch lives only within a stage; rewinding here caps the
    // workspace at the per-stage maximum instead of the pipeline sum.
    ws_.reset();
    st.module->forward_into(in_views_[i], out_views_[i], ws_);
    if (profiling) mark(i + 1);
  }

  // Greedy head: first-maximum argmax, matching greedy_decode_reference.
  next_tokens_.resize(static_cast<std::size_t>(n));
  const float* logits = buffers_.back().data();
  for (index_t r = 0; r < n; ++r) {
    const float* row = logits + r * vocab_;
    index_t best = 0;
    for (index_t v = 1; v < vocab_; ++v)
      if (row[v] > row[best]) best = v;
    next_tokens_[static_cast<std::size_t>(r)] = best;
  }
  if (profiling) mark(stages_.size() + 1);
  // Parked rows stay pinned at ring position 0: they rode the gemm (their
  // output is ignored) but never advance, so an idle row's ring cannot
  // exhaust no matter how many ticks pass.
  for (index_t r = 0; r < n; ++r)
    if (!parked_[static_cast<std::size_t>(r)])
      ++row_steps_[static_cast<std::size_t>(r)];
}

std::vector<obs::StageTiming> DecodeSession::stage_profile() const {
  std::vector<obs::StageTiming> out;
  out.reserve(stage_ns_.size());
  for (std::size_t i = 0; i < stage_ns_.size(); ++i) {
    obs::StageTiming t;
    if (i == 0) {
      t.name = "embed";
    } else if (i == stage_ns_.size() - 1) {
      t.name = "argmax";
    } else {
      const nn::PipelineStage& st = stages_[i - 1];
      t.name = st.is_add() ? "residual_add" : st.module->name();
    }
    t.calls = stage_calls_[i];
    t.total_ns = stage_ns_[i];
    out.push_back(std::move(t));
  }
  return out;
}

const std::vector<index_t>& DecodeSession::step(
    const std::vector<index_t>& tokens) {
  QDNN_CHECK(primed_, "DecodeSession: step() before prime()");
  for (index_t r = 0; r < bound_n_; ++r)
    QDNN_CHECK(row_steps_[static_cast<std::size_t>(r)] < config_.max_steps,
               "DecodeSession: row " << r << " ring exhausted after "
                                     << config_.max_steps
                                     << " steps — prime or reset the row");
  QDNN_CHECK(static_cast<index_t>(tokens.size()) == bound_n_,
             "DecodeSession: " << tokens.size() << " tokens for batch "
                               << bound_n_);
  run_step(tokens);
  return next_tokens_;
}

index_t DecodeSession::steps_taken() const {
  index_t deepest = 0;
  for (index_t r = 0; r < bound_n_; ++r)
    deepest =
        std::max(deepest, row_steps_[static_cast<std::size_t>(r)]);
  return deepest;
}

std::vector<std::vector<index_t>> DecodeSession::generate(index_t bos,
                                                          index_t eos) {
  QDNN_CHECK(primed_, "DecodeSession: generate() before prime()");
  QDNN_CHECK(steps_taken() == 0,
             "DecodeSession: generate() needs a fresh prime()");
  const index_t n = bound_n_;
  std::vector<std::vector<index_t>> outputs(static_cast<std::size_t>(n));
  feed_tokens_.assign(static_cast<std::size_t>(n), bos);
  done_.assign(static_cast<std::size_t>(n), 0);

  for (index_t s = 0; s < config_.max_steps; ++s) {
    step(feed_tokens_);
    bool any_active = false;
    for (index_t r = 0; r < n; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      if (done_[ri]) {
        // Finished rows keep riding the batch (their cache rows are
        // computed but ignored), fed eos like the reference's pad slot.
        feed_tokens_[ri] = eos;
        continue;
      }
      const index_t best = next_tokens_[ri];
      feed_tokens_[ri] = best;
      if (best == eos) {
        done_[ri] = 1;
      } else {
        outputs[ri].push_back(best);
        any_active = true;
      }
    }
    if (!any_active) break;
  }
  return outputs;
}

}  // namespace qdnn::runtime
