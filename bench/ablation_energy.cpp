// Ablation: deployment energy — the paper's efficiency claim priced in
// the units a DATE reader cares about (µJ per inference).
//
// Pure architecture arithmetic, no training: for each CIFAR ResNet depth,
// take the library's exact MAC and parameter counts for the linear
// baseline and the proposed quadratic network (k = 9), and evaluate the
// first-order energy model (Horowitz ISSCC'14 per-op constants) at fp32
// and int8, for weights-on-chip and weights-in-DRAM regimes.
//
// Expected shape: the proposed network's % energy saving tracks its % MAC
// saving in the compute-dominated regime and its % parameter saving in
// the memory-dominated regime — and int8 multiplies both by the
// quantization ablation's ~4x.
#include <cstdio>

#include "analysis/energy_model.h"
#include "bench_util.h"
#include "models/resnet.h"

using namespace qdnn;
using namespace qdnn::models;
using analysis::EnergyEstimate;
using analysis::Precision;
using analysis::estimate_inference;
using qdnn::bench::fmt;
using qdnn::bench::fmt_pct;
using qdnn::bench::print_header;
using qdnn::bench::print_row;
using qdnn::bench::print_rule;

namespace {

struct NetCounts {
  index_t macs = 0;
  index_t params = 0;
};

NetCounts counts_for(index_t depth, const NeuronSpec& spec) {
  ResNetConfig config;
  config.depth = depth;
  config.num_classes = 10;
  config.image_size = 32;
  config.base_width = 16;
  config.spec = spec;
  auto net = make_cifar_resnet(config);
  return {net->macs_per_image(), net->num_parameters()};
}

}  // namespace

int main() {
  print_header("Ablation: inference energy (Horowitz ISSCC'14 constants)");
  std::printf(
      "CIFAR ResNets at paper geometry (32x32, width 16, ours k=9).\n"
      "on-chip = weights in SRAM; off-chip = weights fetched from DRAM.\n\n");

  CsvWriter csv(qdnn::bench::results_dir() + "/ablation_energy.csv",
                {"depth", "variant", "precision", "onchip_uj", "offchip_uj"});
  // Δ columns are (ours − linear)/linear at EQUAL depth: positive means
  // ours costs more there.  At width 16 the k+1 = 10 filter rounding
  // inflates stage-1 widths (16 → 20 channels), so equal-depth deltas are
  // slightly positive — the paper's energy win is the CROSS-DEPTH pair
  // printed below (same accuracy, shallower quadratic network).
  print_row({"network", "precision", "on-chip/uJ", "off-chip/uJ",
             "d(on) vs lin", "d(off) vs lin"});
  print_rule();

  for (index_t depth : {20, 32, 44, 56, 110}) {
    const NetCounts lin = counts_for(depth, NeuronSpec::linear());
    const NetCounts quad = counts_for(depth, NeuronSpec::proposed(9));
    for (Precision prec : {Precision::kFp32, Precision::kInt8}) {
      const char* prec_name = prec == Precision::kFp32 ? "fp32" : "int8";
      const EnergyEstimate e_lin =
          estimate_inference(lin.macs, lin.params, prec);
      const EnergyEstimate e_quad =
          estimate_inference(quad.macs, quad.params, prec);
      const double save_on = 100.0 *
          (e_quad.on_chip_total_pj() - e_lin.on_chip_total_pj()) /
          e_lin.on_chip_total_pj();
      const double save_off = 100.0 *
          (e_quad.off_chip_total_pj() - e_lin.off_chip_total_pj()) /
          e_lin.off_chip_total_pj();
      print_row({"ResNet-" + std::to_string(depth) + " ours", prec_name,
                 analysis::format_microjoules(e_quad.on_chip_total_pj()),
                 analysis::format_microjoules(e_quad.off_chip_total_pj()),
                 fmt_pct(save_on), fmt_pct(save_off)});
      csv.write_row(std::vector<std::string>{
          std::to_string(depth), "ours", prec_name,
          analysis::format_microjoules(e_quad.on_chip_total_pj(), 4),
          analysis::format_microjoules(e_quad.off_chip_total_pj(), 4)});
      csv.write_row(std::vector<std::string>{
          std::to_string(depth), "linear", prec_name,
          analysis::format_microjoules(e_lin.on_chip_total_pj(), 4),
          analysis::format_microjoules(e_lin.off_chip_total_pj(), 4)});
    }
  }
  print_rule();
  std::printf(
      "\nCross-depth reading (the paper's Fig. 4 argument in energy):\n");
  const NetCounts q56 = counts_for(56, NeuronSpec::proposed(9));
  const NetCounts l110 = counts_for(110, NeuronSpec::linear());
  const EnergyEstimate e_q56 =
      estimate_inference(q56.macs, q56.params, Precision::kFp32);
  const EnergyEstimate e_l110 =
      estimate_inference(l110.macs, l110.params, Precision::kFp32);
  std::printf(
      "  ours@56 vs linear@110 (the paper's similar-accuracy pair):\n"
      "  on-chip %.2f vs %.2f uJ (%+.1f%%), off-chip %.2f vs %.2f uJ "
      "(%+.1f%%)\n",
      e_q56.on_chip_total_pj() * 1e-6, e_l110.on_chip_total_pj() * 1e-6,
      100.0 * (e_q56.on_chip_total_pj() - e_l110.on_chip_total_pj()) /
          e_l110.on_chip_total_pj(),
      e_q56.off_chip_total_pj() * 1e-6, e_l110.off_chip_total_pj() * 1e-6,
      100.0 * (e_q56.off_chip_total_pj() - e_l110.off_chip_total_pj()) /
          e_l110.off_chip_total_pj());
  return 0;
}
