// Pluggable sampling heads over one row of decode-step logits.
//
// The serving layer picks each request's next token from the logits row
// the DecodeSession produced for that request's batch row.  Three heads:
//
//   * greedy      — first-maximum argmax, bit-identical to the session's
//                   built-in head and to Transformer::greedy_decode.
//   * temperature — softmax(logits / T) sampled by inverse CDF.
//   * top-k       — the k highest logits renormalized (with temperature)
//                   and sampled; k = 1 degenerates to greedy.
//
// Determinism: every stochastic head draws from a caller-owned core Rng
// seeded per request, so a request's token sequence depends only on its
// own seed and logits — never on admission order, batch composition, or
// what other requests sample (the scheduler-reproducibility contract,
// asserted in tests/serve/scheduler_test.cpp).  sample_token is
// allocation-free: selection and CDF scratch come from the caller.
//
// Degenerate distributions: when every softmax weight underflows to zero
// or non-finite logits poison the normalizer, the stochastic heads
// degrade to the first-max argmax (the greedy head's exact tie-breaking)
// instead of letting the inverse-CDF round-off tail emit the worst
// candidate.  No Rng draw is consumed on that path.
#pragma once

#include "core/rng.h"

namespace qdnn::serve {

struct SamplingConfig {
  enum class Kind { kGreedy, kTemperature, kTopK };
  Kind kind = Kind::kGreedy;
  // Softmax sharpening for kTemperature/kTopK; must be positive.
  float temperature = 1.0f;
  // Candidate-set size for kTopK; must be in [1, vocab].
  index_t top_k = 0;
  // Per-request Rng stream for the stochastic heads.
  std::uint64_t seed = 0;

  static SamplingConfig greedy() { return {}; }
  static SamplingConfig with_temperature(float t, std::uint64_t seed) {
    SamplingConfig c;
    c.kind = Kind::kTemperature;
    c.temperature = t;
    c.seed = seed;
    return c;
  }
  static SamplingConfig with_top_k(index_t k, float t, std::uint64_t seed) {
    SamplingConfig c;
    c.kind = Kind::kTopK;
    c.top_k = k;
    c.temperature = t;
    c.seed = seed;
    return c;
  }
};

// Rejects out-of-range parameters (non-positive temperature, top_k
// outside [1, vocab]) with a message naming the field — called at the
// serving edge (BatchScheduler::submit) so a bad request never reaches
// the step loop.
void validate(const SamplingConfig& config, index_t vocab);

// Samples one token id from logits [vocab].  `rng` is the request's
// stream (untouched by greedy).  prob_scratch: >= vocab floats;
// idx_scratch: >= vocab entries (only top-k uses it).  Never allocates.
index_t sample_token(const SamplingConfig& config, const float* logits,
                     index_t vocab, Rng& rng, float* prob_scratch,
                     index_t* idx_scratch);

}  // namespace qdnn::serve
