#include "nn/init.h"

#include <cmath>

namespace qdnn::nn {

void kaiming_normal(Tensor& w, index_t fan_in, Rng& rng) {
  QDNN_CHECK(fan_in > 0, "kaiming_normal: fan_in must be positive");
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  rng.fill_normal(w, 0.0f, stddev);
}

void xavier_uniform(Tensor& w, index_t fan_in, index_t fan_out, Rng& rng) {
  QDNN_CHECK(fan_in > 0 && fan_out > 0, "xavier_uniform: fans positive");
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  rng.fill_uniform(w, -bound, bound);
}

void uniform_bound(Tensor& w, float bound, Rng& rng) {
  rng.fill_uniform(w, -bound, bound);
}

void lambda_init(Tensor& lambda, Rng& rng, float scale) {
  rng.fill_uniform(lambda, -scale, scale);
}

}  // namespace qdnn::nn
