// Conversion of general quadratic neurons into the proposed form — the
// paper's Sec. III-A pipeline made executable:
//
//   M  --Lemma 1-->  (M+Mᵀ)/2  --eigh-->  QΛQᵀ  --top-k-->  QᵏΛᵏ(Qᵏ)ᵀ
//
// This lets a user train (or import) a full general-quadratic layer and
// distill it into the efficient neuron, with the Eckart–Young-optimal
// approximation error reported per unit.  examples/convert_general.cpp
// demonstrates the flow end to end.
#pragma once

#include "quadratic/quad_dense.h"

namespace qdnn::quadratic {

struct ConvertedNeuron {
  Tensor q;        // [n, k]
  Tensor lambda;   // [k]
  double error;    // ‖M_sym − Mᵏ‖_F
  double energy_kept;  // Σ_top-k λᵢ² / Σ λᵢ² (1.0 = lossless)
};

// Converts a single quadratic matrix.  M may be asymmetric — Lemma 1 is
// applied first (the quadratic form is unchanged).
ConvertedNeuron convert_matrix(const Tensor& m, index_t k);

// Converts every unit of a trained GeneralQuadraticDense layer into one
// ProposedQuadraticDense layer with the same linear weights/biases and
// spectrally-initialized Qᵏ, Λᵏ.  Per-unit errors are returned through
// `errors` when non-null.
std::unique_ptr<ProposedQuadraticDense> convert_layer(
    GeneralQuadraticDense& source, index_t k, Rng& rng,
    std::vector<double>* errors = nullptr);

// Smallest k whose truncation keeps at least `energy_fraction` of the
// squared spectral mass of M (useful for choosing the paper's
// hyper-parameter k from data).
index_t rank_for_energy(const Tensor& m, double energy_fraction);

}  // namespace qdnn::quadratic
