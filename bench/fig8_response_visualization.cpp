// Fig. 8 reproduction: response visualization of the linear vs quadratic
// parts of the proposed neuron.
//
// The paper feeds images to a trained quadratic CNN and shows that the
// linear response (wᵀx + b) highlights edges / high-frequency detail
// while the quadratic response (y₂ᵏ) follows the whole object shape /
// low-frequency structure.  This bench:
//   1. trains a small quadratic CNN on the synthetic shape dataset,
//   2. extracts both responses for one image per class,
//   3. writes them as PGM images under bench_results/fig8/,
//   4. quantifies the claim with a Haar low/high-frequency energy split:
//      the quadratic response should carry a larger low-frequency energy
//      fraction than the linear one.
#include <cstdio>

#include "analysis/response_map.h"
#include "bench_util.h"
#include "models/resnet.h"
#include "train/trainer.h"

using namespace qdnn;
using namespace qdnn::models;
using qdnn::bench::bench_scale;
using qdnn::bench::fmt;
using qdnn::bench::print_header;
using qdnn::bench::print_row;
using qdnn::bench::print_rule;

int main() {
  const int scale = bench_scale();
  print_header("Fig 8: linear vs quadratic response maps");

  data::SyntheticImageConfig data_config;
  data_config.num_classes = 4;
  data_config.image_size = 20;
  data_config.noise_std = 0.15f;
  const auto train_set =
      data::make_synthetic_images(data_config, 400 * scale, 61);
  const auto test_set =
      data::make_synthetic_images(data_config, 120 * scale, 62);

  // Small quadratic CNN whose first layer we inspect.
  ResNetConfig config;
  config.depth = 8;
  config.num_classes = 4;
  config.image_size = 20;
  config.base_width = 10;
  // The paper trains this experiment for 180-250 epochs at lambda lr
  // 1e-4 against base 0.1 (scale 1e-3).  Our scaled runs take ~25x
  // fewer steps, so lambda's lr scale is raised to keep the total
  // lambda learning (lr x steps) comparable -- without this the
  // quadratic parameters stay at their init and the analysis reads
  // initialization noise instead of trained structure.
  config.spec = NeuronSpec::proposed(9, /*lambda_lr=*/0.05f);
  config.seed = 23;
  auto net = make_cifar_resnet(config);

  train::TrainerConfig tc;
  tc.epochs = 5 * scale;
  tc.batch_size = 32;
  tc.lr = 0.05f;
  tc.clip_norm = 5.0f;
  tc.augment_pad = 2;
  train::Trainer trainer(*net, tc);
  const auto history = trainer.fit(train_set, test_set);
  std::printf("trained, final test acc %.2f%%\n\n",
              100 * history.back().test_accuracy);

  // The stem is the ProposedQuadConv2d we visualize, exactly as the paper
  // probes an early conv layer.
  auto* stem =
      dynamic_cast<quadratic::ProposedQuadConv2d*>(net->conv_layers()[0]);
  QDNN_CHECK(stem != nullptr, "stem is not a proposed quadratic conv");

  CsvWriter csv(qdnn::bench::results_dir() + "/fig8_energy_split.csv",
                {"image", "filter", "linear_low_fraction",
                 "quadratic_low_fraction"});
  print_row({"image", "filter", "lin low-freq", "quad low-freq"});
  print_rule();

  double lin_sum = 0.0, quad_sum = 0.0;
  int count = 0;
  for (index_t label = 0; label < 4; ++label) {
    const Tensor image =
        data::render_class_prototype(data_config, label, 70 + label);
    const analysis::ResponsePair pair =
        analysis::split_responses(*stem, image);
    const index_t oh = pair.linear.dim(1), ow = pair.linear.dim(2);
    for (index_t f = 0; f < pair.linear.dim(0); ++f) {
      Tensor lin{Shape{oh, ow}};
      Tensor quad{Shape{oh, ow}};
      for (index_t i = 0; i < oh * ow; ++i) {
        lin[i] = pair.linear[f * oh * ow + i];
        quad[i] = pair.quadratic[f * oh * ow + i];
      }
      const auto dir = qdnn::bench::results_dir() + "/fig8";
      write_pgm(dir + "/image" + std::to_string(label) + "_f" +
                    std::to_string(f) + "_linear.pgm",
                lin);
      write_pgm(dir + "/image" + std::to_string(label) + "_f" +
                    std::to_string(f) + "_quadratic.pgm",
                quad);
      const double lin_low =
          analysis::frequency_energy_split(lin).low_fraction();
      const double quad_low =
          analysis::frequency_energy_split(quad).low_fraction();
      lin_sum += lin_low;
      quad_sum += quad_low;
      ++count;
      print_row({"class" + std::to_string(label), std::to_string(f),
                 fmt(lin_low, 3), fmt(quad_low, 3)});
      csv.write_row(std::vector<std::string>{
          std::to_string(label), std::to_string(f), fmt(lin_low, 4),
          fmt(quad_low, 4)});
    }
  }
  const double lin_mean = lin_sum / count, quad_mean = quad_sum / count;
  std::printf(
      "\nMean low-frequency energy fraction: linear %.3f, quadratic "
      "%.3f\nExpected shape (paper): quadratic > linear — the quadratic\n"
      "response follows whole-object/low-frequency structure while the\n"
      "linear part reacts to edges/texture.  %s\n"
      "PGM maps written to bench_results/fig8/.\n",
      lin_mean, quad_mean,
      quad_mean > lin_mean ? "[shape HOLDS]" : "[shape DOES NOT HOLD]");
  return 0;
}
