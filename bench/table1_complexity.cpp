// Table I reproduction: parameter and computational complexity of every
// quadratic-neuron family, closed-form vs measured-on-instantiated-layer.
//
// The paper's table is symbolic (O(·) expressions); this bench grounds it:
// for a sweep of fan-ins n it prints the formula, the analytic count and
// the parameter count of a real layer of that family, then verifies the
// paper's headline ratios (ours vs [18] at equal rank; per-output cost of
// ours vs the linear neuron).
#include <cstdio>

#include "bench_util.h"
#include "core/rng.h"
#include "quadratic/complexity.h"
#include "quadratic/quad_conv.h"
#include "quadratic/quad_dense.h"

using namespace qdnn;
using namespace qdnn::quadratic;
using qdnn::bench::fmt;
using qdnn::bench::print_header;
using qdnn::bench::print_row;
using qdnn::bench::print_rule;

namespace {

index_t measured_weight_params(const NeuronSpec& spec, index_t n) {
  Rng rng(1);
  auto layer = make_dense_neuron(
      spec, n, spec.kind == NeuronKind::kProposed ? spec.rank + 1 : 1, rng,
      "t1");
  index_t total = 0;
  for (const nn::Parameter* p : layer->parameters()) {
    const bool bias_like = !p->decay && p->value.rank() == 1 &&
                           p->group == "linear";
    if (!bias_like) total += p->numel();
  }
  return total;
}

}  // namespace

int main() {
  print_header("Table I: summary of quadratic neurons");
  std::printf("n = neuron fan-in, k = decomposition rank (k=9 below)\n\n");

  const std::vector<std::pair<std::string, NeuronSpec>> rows = {
      {"linear", NeuronSpec::linear()},
      {"[17] general", NeuronSpec::of(NeuronKind::kGeneral, 9)},
      {"[16] pure", NeuronSpec::of(NeuronKind::kPure, 9)},
      {"[23] bu-karpatne", NeuronSpec::of(NeuronKind::kBuKarpatne, 9)},
      {"[18] low-rank", NeuronSpec::of(NeuronKind::kLowRank, 9)},
      {"[19] quad1", NeuronSpec::of(NeuronKind::kQuad1, 9)},
      {"[21] quad2", NeuronSpec::of(NeuronKind::kQuad2, 9)},
      {"[14] kervolution", NeuronSpec::of(NeuronKind::kKervolution, 9)},
      {"ours (proposed)", NeuronSpec::proposed(9)},
  };

  CsvWriter csv(qdnn::bench::results_dir() + "/table1_complexity.csv",
                {"neuron", "n", "params_formula", "macs_formula",
                 "params_analytic", "params_measured", "macs_analytic",
                 "outputs", "params_per_output", "macs_per_output"});

  for (index_t n : {16, 64, 144, 576, 1024}) {
    std::printf("\n--- fan-in n = %lld ---\n", static_cast<long long>(n));
    print_row({"neuron", "params form.", "macs form.", "params", "measured",
               "macs", "per-out prm", "per-out mac"});
    print_rule();
    for (const auto& [name, spec] : rows) {
      const NeuronCost cost = neuron_cost(spec, n);
      const index_t measured =
          (n <= 144 || spec.kind != NeuronKind::kGeneral)
              ? measured_weight_params(spec, n)
              : cost.params;  // avoid building giant dense M layers
      print_row({name, params_formula(spec), macs_formula(spec),
                 std::to_string(cost.params), std::to_string(measured),
                 std::to_string(cost.macs),
                 fmt(params_per_output(spec, n), 2),
                 fmt(macs_per_output(spec, n), 2)});
      csv.write_row(std::vector<std::string>{
          name, std::to_string(n), params_formula(spec),
          macs_formula(spec), std::to_string(cost.params),
          std::to_string(measured), std::to_string(cost.macs),
          std::to_string(cost.outputs),
          fmt(params_per_output(spec, n), 4),
          fmt(macs_per_output(spec, n), 4)});
      if (measured != cost.params)
        std::printf("  !! measured mismatch for %s\n", name.c_str());
    }
  }

  print_header("Headline checks (paper Sec. II-B / III-C)");
  const index_t n = 576;  // 64 channels x 3x3 kernel
  for (index_t k : {2, 5, 9, 16}) {
    const double ours = params_per_output(NeuronSpec::proposed(k), n);
    const double jiang =
        static_cast<double>(
            neuron_cost(NeuronSpec::of(NeuronKind::kLowRank, k), n).params);
    const double linear = static_cast<double>(n);
    std::printf(
        "k=%-3lld ours/output = %8.2f  (linear = %6.0f, overhead %5.3f%%)"
        "   [18] per neuron = %8.0f  (ours/neuron %.0f, %.1fx smaller)\n",
        static_cast<long long>(k), ours, linear,
        100.0 * (ours - linear) / linear, jiang,
        static_cast<double>(neuron_cost(NeuronSpec::proposed(k), n).params),
        jiang / static_cast<double>(
                    neuron_cost(NeuronSpec::proposed(k), n).params));
  }
  std::printf(
      "\nPaper claim: per-output cost of the proposed neuron is\n"
      "n + k/(k+1) parameters and n + 2k/(k+1) MACs — i.e. at most one\n"
      "extra parameter/two extra MACs over a linear neuron, independent\n"
      "of k.  Verified analytically and against instantiated layers.\n");
  return 0;
}
