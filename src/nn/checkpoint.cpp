#include "nn/checkpoint.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>

#include "core/io.h"

namespace qdnn::nn {

namespace {
constexpr std::uint32_t kMagic = 0x51434B50;  // "QCKP"

void write_string(std::ofstream& out, const std::string& s) {
  const std::uint32_t len = static_cast<std::uint32_t>(s.size());
  out.write(reinterpret_cast<const char*>(&len), sizeof len);
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::ifstream& in) {
  std::uint32_t len = 0;
  in.read(reinterpret_cast<char*>(&len), sizeof len);
  QDNN_CHECK(in.good() && len < (1u << 20), "checkpoint: bad string");
  std::string s(len, '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  return s;
}

void write_entry(std::ofstream& out, const std::string& name,
                 const Tensor& value) {
  write_string(out, name);
  const std::uint32_t rank = static_cast<std::uint32_t>(value.rank());
  out.write(reinterpret_cast<const char*>(&rank), sizeof rank);
  for (index_t i = 0; i < value.rank(); ++i) {
    const std::int64_t d = value.dim(i);
    out.write(reinterpret_cast<const char*>(&d), sizeof d);
  }
  out.write(reinterpret_cast<const char*>(value.data()),
            static_cast<std::streamsize>(value.numel() * sizeof(float)));
}

// Named views over the module's persistent state: every parameter value
// plus every buffer, in traversal order.
std::vector<std::pair<std::string, Tensor*>> state_entries(Module& module) {
  std::vector<std::pair<std::string, Tensor*>> entries;
  for (Parameter* p : module.parameters()) entries.emplace_back(p->name, &p->value);
  for (const NamedBuffer& b : module.buffers())
    entries.emplace_back(b.name, b.tensor);
  return entries;
}

}  // namespace

void save_checkpoint(Module& module, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) ensure_directory(p.parent_path().string());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  QDNN_CHECK(out.good(), "checkpoint: cannot open " << path);

  const auto entries = state_entries(module);
  const std::uint32_t magic = kMagic;
  const std::uint32_t count = static_cast<std::uint32_t>(entries.size());
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  for (const auto& [name, value] : entries) write_entry(out, name, *value);
  QDNN_CHECK(out.good(), "checkpoint: write failed for " << path);
}

void load_checkpoint(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  QDNN_CHECK(in.good(), "checkpoint: cannot open " << path);
  std::uint32_t magic = 0, count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  QDNN_CHECK_EQ(magic, kMagic, "checkpoint: bad magic in " << path);
  in.read(reinterpret_cast<char*>(&count), sizeof count);

  // Index file entries by name.
  std::map<std::string, Tensor> file_entries;
  for (std::uint32_t e = 0; e < count; ++e) {
    const std::string name = read_string(in);
    std::uint32_t rank = 0;
    in.read(reinterpret_cast<char*>(&rank), sizeof rank);
    QDNN_CHECK(rank <= 8, "checkpoint: implausible rank " << rank);
    std::vector<index_t> dims(rank);
    for (auto& d : dims) {
      std::int64_t v = 0;
      in.read(reinterpret_cast<char*>(&v), sizeof v);
      d = v;
    }
    Tensor t{Shape(dims)};
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    QDNN_CHECK(in.good(), "checkpoint: truncated at entry " << name);
    file_entries.emplace(name, std::move(t));
  }

  const auto entries = state_entries(module);
  QDNN_CHECK_EQ(entries.size(), file_entries.size(),
                "checkpoint: state entry count mismatch (architecture "
                "changed?)");
  for (const auto& [name, value] : entries) {
    const auto it = file_entries.find(name);
    QDNN_CHECK(it != file_entries.end(),
               "checkpoint: missing entry " << name);
    QDNN_CHECK(it->second.shape() == value->shape(),
               "checkpoint: shape mismatch for "
                   << name << " (" << it->second.shape() << " vs "
                   << value->shape() << ")");
    *value = it->second;
  }
}

void copy_state(Module& src, Module& dst) {
  const auto s = state_entries(src);
  const auto d = state_entries(dst);
  QDNN_CHECK_EQ(s.size(), d.size(), "copy_state: entry count mismatch");
  for (std::size_t i = 0; i < s.size(); ++i) {
    QDNN_CHECK_EQ(s[i].first, d[i].first,
                  "copy_state: name mismatch at index " << i);
    QDNN_CHECK(s[i].second->shape() == d[i].second->shape(),
               "copy_state: shape mismatch for " << s[i].first);
    *d[i].second = *s[i].second;
  }
}

}  // namespace qdnn::nn
