// MetricsRegistry — named counters, gauges and fixed-bucket histograms
// for the serving stack.
//
// The contract that makes this usable from the serving hot paths:
//
//   * **Registration allocates, recording never does.**  Instruments are
//     created (get-or-create by name) at bind/construction time under a
//     mutex; the returned handle is a stable pointer for the registry's
//     lifetime (instruments live in deques, never reallocated).  Every
//     record call — Counter::add, Gauge::set, Histogram::observe — is a
//     handful of relaxed atomic RMWs: zero heap allocations, wait-free,
//     safe from any number of threads concurrently with snapshot().
//   * **Snapshots are read-side only.**  snapshot() copies current values
//     under the registration mutex (so the instrument list is stable) but
//     never blocks writers — writers don't take the mutex.  Counter and
//     histogram totals are exact once writers quiesce; a snapshot taken
//     mid-write sees each instrument at some recent value.
//   * Histograms are integer-valued with fixed upper bounds chosen at
//     registration (cumulative export à la Prometheus: a value lands in
//     the first bucket whose bound it does not exceed, else +Inf).
//
// Exporters: MetricsSnapshot::to_prometheus() (text exposition format,
// '.' in names mapped to '_') and to_json().
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/shape.h"

namespace qdnn::obs {

class Counter {
 public:
  void add(long long delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  void inc() { add(1); }
  long long value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<long long> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

class Histogram {
 public:
  // `bounds` are the strictly-increasing inclusive upper bounds; one
  // overflow (+Inf) bucket is appended.  Set once at registration.
  explicit Histogram(std::vector<long long> bounds);

  void observe(long long v) {
    const std::size_t n = bounds_.size();
    std::size_t i = 0;
    while (i < n && v > bounds_[i]) ++i;  // few fixed buckets: linear scan
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  const std::vector<long long>& bounds() const { return bounds_; }
  long long bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  long long sum() const { return sum_.load(std::memory_order_relaxed); }
  long long count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::vector<long long> bounds_;
  std::vector<std::atomic<long long>> buckets_;  // bounds_.size() + 1
  std::atomic<long long> sum_{0};
  std::atomic<long long> count_{0};
};

// Point-in-time copy of every registered instrument, in registration
// order (deterministic export).
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    long long value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<long long> bounds;
    std::vector<long long> buckets;  // bounds.size() + 1, last is +Inf
    long long sum = 0;
    long long count = 0;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  // Prometheus text exposition format ('.' → '_', `# TYPE` comments,
  // cumulative `_bucket{le="..."}` series plus `_sum`/`_count`).
  std::string to_prometheus() const;
  // {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string to_json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create by name.  Names are dot-separated identifiers
  // ([A-Za-z_][A-Za-z0-9_]* segments); a name registered as one kind may
  // not be re-registered as another, and a histogram re-registered with
  // different bounds is an error — both throw via QDNN_CHECK.  The
  // returned references stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       const std::vector<long long>& bounds);

  MetricsSnapshot snapshot() const;

  // Process-wide registry for subsystems without an owner to thread one
  // through (the gemm dispatch counters live here).
  static MetricsRegistry& global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  void claim_name(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::unordered_map<std::string, Kind> kinds_;
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, Histogram>> histograms_;
  std::unordered_map<std::string, Counter*> counter_index_;
  std::unordered_map<std::string, Gauge*> gauge_index_;
  std::unordered_map<std::string, Histogram*> histogram_index_;
};

}  // namespace qdnn::obs
