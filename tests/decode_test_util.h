// Shared fixtures for the Transformer decode test suites: one tiny model
// configuration and one random-source generator, so the equivalence
// oracle tests (tests/models), the zero-alloc regressions (tests/runtime)
// and the model unit tests cannot drift apart.
#pragma once

#include "models/transformer/transformer.h"

namespace qdnn::testing {

inline models::TransformerConfig tiny_transformer_config(
    quadratic::NeuronSpec spec = quadratic::NeuronSpec::linear()) {
  models::TransformerConfig config;
  config.src_vocab = 20;
  config.tgt_vocab = 24;
  config.d_model = 16;
  config.n_heads = 2;
  config.n_layers = 2;
  config.d_ff = 32;
  config.proj_dim = 16;
  config.max_len = 16;
  config.dropout = 0.0f;  // determinism for the tests
  config.spec = spec;
  return config;
}

// Random non-special token ids (>= 3, below `vocab`), shaped [n, t].
inline Tensor random_src_ids(index_t n, index_t t, index_t vocab,
                             std::uint64_t seed) {
  Rng rng(seed);
  Tensor out{Shape{n, t}};
  for (index_t i = 0; i < out.numel(); ++i)
    out[i] = static_cast<float>(3 + rng.uniform_int(vocab - 3));
  return out;
}

}  // namespace qdnn::testing
