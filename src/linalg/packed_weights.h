// PackedWeights: a constant GEMM operand materialized once, at freeze
// time, in the exact row-major layout the gemm kernel streams.
//
// The serving hot path of every dense layer is C = A · op(B) where B is a
// constant weight matrix.  gemm() handles transposed operands by packing
// them into scratch *per call* — O(k·n) copy work and k·n floats of
// workspace on every request.  A PackedWeights performs that pack exactly
// once (Module::freeze), after which gemm_prepacked() consumes the cached
// block directly: zero per-request packing, bit-identical results, and a
// smaller workspace watermark (asserted by tests/runtime/session_test.cpp
// and tests/linalg/gemm_prepacked_test.cpp).
#pragma once

#include <vector>

#include "core/tensor.h"

namespace qdnn::linalg {

class PackedWeights {
 public:
  PackedWeights() = default;

  // Materializes op(src) as a contiguous row-major [k, n] block:
  //   trans == false: src is [k, n] with leading dimension `ld` (>= n);
  //   trans == true:  src is [n, k] with leading dimension `ld` (>= k),
  //                   and the pack holds its transpose.
  // Re-packing an already-packed object replaces the previous pack (the
  // freeze-after-weight-update path).
  void pack(bool trans, index_t k, index_t n, const float* src, index_t ld);

  // Drops the pack and returns the object to the empty state (unfreeze).
  void clear();

  bool packed() const { return packed_; }
  // op(B) dimensions: rows() = k (reduction), cols() = n (output).
  index_t rows() const { return k_; }
  index_t cols() const { return n_; }
  // The packed block, row-major [k, n] with leading dimension n.
  const float* data() const { return data_.data(); }
  index_t size_floats() const { return static_cast<index_t>(data_.size()); }

 private:
  index_t k_ = 0, n_ = 0;
  bool packed_ = false;
  std::vector<float> data_;
};

// C(m,n) = alpha * op(A) * B + beta * C, where `b` holds op(B) packed by
// PackedWeights::pack.  Bit-identical to the corresponding
// gemm(trans_a, trans_b, ...) call on the source operand: the inner kernel
// consumes the same row-major bytes, packed at freeze time instead of per
// call.  `scratch` is needed only when trans_a
// (gemm_scratch_floats(trans_a, false, m, n, k) floats); pass nullptr
// otherwise.
void gemm_prepacked(bool trans_a, index_t m, index_t n, index_t k,
                    float alpha, const float* a, index_t lda,
                    const PackedWeights& b, float beta, float* c,
                    index_t ldc, float* scratch = nullptr);

}  // namespace qdnn::linalg
