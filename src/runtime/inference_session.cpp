#include "runtime/inference_session.h"

#include <algorithm>

#include "nn/sequential.h"

namespace qdnn::runtime {

InferenceSession::InferenceSession(nn::ModulePtr model, SessionConfig config)
    : model_(std::move(model)), config_(std::move(config)) {
  QDNN_CHECK(model_ != nullptr, "InferenceSession: null model");
  QDNN_CHECK(config_.max_batch > 0,
             "InferenceSession: max_batch must be positive");
  model_->set_training(false);

  // Flatten a top-level Sequential so each layer becomes a stage with its
  // own prebuilt views; any other module runs as a single stage.
  if (auto* seq = dynamic_cast<nn::Sequential*>(model_.get());
      seq != nullptr && seq->size() > 0) {
    for (index_t i = 0; i < seq->size(); ++i)
      stages_.push_back(&seq->child(i));
  } else {
    stages_.push_back(model_.get());
  }
  sample_numel_ = config_.sample_shape.numel();
  QDNN_CHECK(sample_numel_ > 0, "InferenceSession: empty sample_shape");

  // Walk the shape pipeline once at max_batch: validates every stage's
  // output_shape and records per-sample boundary sizes.
  Shape cur = batch_shape(config_.max_batch);
  index_t max_inter_sample = 0;  // widest per-sample boundary before last
  for (nn::Module* stage : stages_) {
    cur = stage->output_shape(cur);
    QDNN_CHECK(cur.rank() >= 1 && cur[0] == config_.max_batch,
               stage->name()
                   << ": stage output " << cur
                   << " does not keep the batch as leading dimension");
    stage_sample_numel_.push_back(cur.numel() / config_.max_batch);
  }
  for (std::size_t i = 0; i + 1 < stage_sample_numel_.size(); ++i)
    max_inter_sample = std::max(max_inter_sample, stage_sample_numel_[i]);
  output_buffer_ =
      Tensor{Shape{config_.max_batch * stage_sample_numel_.back()}};

  index_t threads = std::max<index_t>(1, config_.num_threads);
  threads = std::min(threads, config_.max_batch);
  // Sharding runs stages concurrently on disjoint batch rows.  That is
  // only sound for native forward_into implementations; the legacy
  // adapter calls forward(), which mutates per-module caches shared by
  // all shards — a data race.  Reject rather than corrupt.
  QDNN_CHECK(threads == 1 || fully_native(),
             "InferenceSession: num_threads > 1 requires every stage to "
             "support forward_into (a legacy-adapted stage is not "
             "thread-safe); run this model with num_threads = 1");
  shards_.resize(static_cast<std::size_t>(threads));

  // Private ping-pong intermediates, sized for the largest row count a
  // shard can receive (even split of max_batch) times the widest
  // internal boundary.  Shards run stage pipelines without a barrier,
  // so intermediates must never be shared across shards.
  const index_t shard_rows_cap = (config_.max_batch + threads - 1) / threads;
  const index_t shard_floats = shard_rows_cap * max_inter_sample;
  if (stages_.size() > 1) {
    for (Shard& shard : shards_) {
      shard.buffers[0] = Tensor{Shape{shard_floats}};
      shard.buffers[1] = Tensor{Shape{shard_floats}};
    }
  }

  // Validate the view plan before spawning workers so constructor errors
  // cannot leave threads behind.
  bind(config_.max_batch);

  for (index_t r = 1; r < threads; ++r)
    workers_.emplace_back([this, r] { worker_loop(static_cast<int>(r)); });

  if (config_.warmup) {
    try {
      // One dummy pass grows each shard's workspace to its watermark;
      // consolidation then leaves a single contiguous block so real
      // requests never allocate.
      Tensor dummy{batch_shape(config_.max_batch)};
      run_impl(dummy.data(), config_.max_batch);
      for (Shard& shard : shards_) {
        shard.ws.reset();
        shard.ws.consolidate();
      }
    } catch (...) {
      shutdown_workers();
      throw;
    }
  }
}

InferenceSession::~InferenceSession() { shutdown_workers(); }

void InferenceSession::worker_loop(int shard_index) {
  std::uint64_t seen = 0;
  for (;;) {
    const float* input = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || job_id_ != seen; });
      if (stop_) return;
      seen = job_id_;
      input = job_input_;
    }
    try {
      run_shard(shards_[static_cast<std::size_t>(shard_index)], input);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!job_error_) job_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void InferenceSession::shutdown_workers() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

Shape InferenceSession::batch_shape(index_t n) const {
  std::vector<index_t> dims;
  dims.reserve(static_cast<std::size_t>(config_.sample_shape.rank()) + 1);
  dims.push_back(n);
  for (index_t d : config_.sample_shape.dims()) dims.push_back(d);
  return Shape(std::move(dims));
}

Shape InferenceSession::output_shape(index_t batch_size) const {
  Shape cur = batch_shape(batch_size);
  for (const nn::Module* stage : stages_) cur = stage->output_shape(cur);
  return cur;
}

bool InferenceSession::fully_native() const {
  for (const nn::Module* stage : stages_)
    if (!stage->supports_forward_into()) return false;
  return true;
}

index_t InferenceSession::activation_floats() const {
  index_t total = output_buffer_.numel();
  for (const Shard& shard : shards_)
    total += shard.buffers[0].numel() + shard.buffers[1].numel();
  return total;
}

index_t InferenceSession::workspace_floats() const {
  index_t total = 0;
  for (const Shard& shard : shards_) total += shard.ws.capacity();
  return total;
}

void InferenceSession::bind(index_t n) {
  // Full boundary shapes for this batch size.
  std::vector<Shape> stage_shapes;
  stage_shapes.reserve(stages_.size());
  Shape cur = batch_shape(n);
  for (nn::Module* stage : stages_) {
    cur = stage->output_shape(cur);
    QDNN_CHECK(cur.rank() >= 1 && cur[0] == n,
               stage->name() << ": stage output " << cur
                             << " does not keep the batch dimension");
    stage_shapes.push_back(cur);
  }

  // Rows are split as evenly as possible; shard r of T gets one of the
  // n % T remainder rows when r < n % T.
  const auto t = static_cast<index_t>(shards_.size());
  const index_t base = n / t, rem = n % t;
  index_t row = 0;
  for (index_t r = 0; r < t; ++r) {
    Shard& shard = shards_[static_cast<std::size_t>(r)];
    shard.row_begin = row;
    shard.rows = base + (r < rem ? 1 : 0);
    row += shard.rows;
    shard.in_views.clear();
    shard.out_views.clear();
    shard.in_views.reserve(stages_.size());
    shard.out_views.reserve(stages_.size());

    // Stage-0 input: shape [rows, sample...]; the data pointer is bound
    // to the caller's batch at every run (rebind — no Shape copies on the
    // hot path).
    std::vector<index_t> dims{shard.rows};
    for (index_t d : config_.sample_shape.dims()) dims.push_back(d);
    shard.in_views.emplace_back(Shape(std::move(dims)),
                                output_buffer_.data());

    for (std::size_t i = 0; i < stages_.size(); ++i) {
      std::vector<index_t> sdims = stage_shapes[i].dims();
      sdims[0] = shard.rows;
      // Intermediates alternate between the shard's private buffers;
      // only the final stage writes the shared output buffer, at this
      // shard's row slice (disjoint across shards for one stage).
      float* out_data =
          i + 1 == stages_.size()
              ? output_buffer_.data() +
                    shard.row_begin * stage_sample_numel_[i]
              : shard.buffers[i % 2].data();
      shard.out_views.emplace_back(Shape(std::move(sdims)), out_data);
      if (i + 1 < stages_.size())
        shard.in_views.emplace_back(shard.out_views.back());
    }
  }

  output_view_ = ConstTensorView(stage_shapes.back(),
                                 output_buffer_.data());
  bound_n_ = n;
}

void InferenceSession::check_input_shape(const Shape& shape) const {
  QDNN_CHECK(shape.rank() == config_.sample_shape.rank() + 1,
             "InferenceSession: batch rank " << shape.rank()
                                             << " != 1 + sample rank");
  for (index_t i = 0; i < config_.sample_shape.rank(); ++i)
    QDNN_CHECK(shape[i + 1] == config_.sample_shape[i],
               "InferenceSession: batch dim " << i + 1 << " is "
                                              << shape[i + 1] << ", expected "
                                              << config_.sample_shape[i]);
  QDNN_CHECK(shape[0] >= 1 && shape[0] <= config_.max_batch,
             "InferenceSession: batch size " << shape[0]
                                             << " outside [1, "
                                             << config_.max_batch << "]");
}

const ConstTensorView& InferenceSession::run(const Tensor& batch) {
  check_input_shape(batch.shape());
  return run_impl(batch.data(), batch.dim(0));
}

const ConstTensorView& InferenceSession::run(const ConstTensorView& batch) {
  check_input_shape(batch.shape());
  return run_impl(batch.data(), batch.dim(0));
}

const ConstTensorView& InferenceSession::run_impl(const float* data,
                                                  index_t n) {
  // The view run() returns aliases output_buffer_; feeding it straight
  // back in would make stage 0 read the bytes it is overwriting (and
  // race across shards).  Reject instead of silently corrupting.
  const float* out_begin = output_buffer_.data();
  const float* out_end = out_begin + output_buffer_.numel();
  QDNN_CHECK(data + n * sample_numel_ <= out_begin || data >= out_end,
             "InferenceSession: input batch aliases the session's output "
             "buffer — copy the previous result (to_tensor()) before "
             "feeding it back");
  if (n != bound_n_) bind(n);
  if (workers_.empty()) {
    run_shard(shards_[0], data);
  } else {
    {
      std::lock_guard<std::mutex> lk(mu_);
      job_input_ = data;
      pending_ = static_cast<int>(workers_.size());
      ++job_id_;
    }
    work_cv_.notify_all();
    // Whatever happens on the main shard, the workers must drain before
    // this frame unwinds: they hold the caller's batch pointer and the
    // shared pending_/job bookkeeping.
    std::exception_ptr main_error;
    try {
      run_shard(shards_[0], data);
    } catch (...) {
      main_error = std::current_exception();
    }
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return pending_ == 0; });
    std::exception_ptr worker_error = job_error_;
    job_error_ = nullptr;
    lk.unlock();
    if (main_error) std::rethrow_exception(main_error);
    if (worker_error) std::rethrow_exception(worker_error);
  }
  return output_view_;
}

void InferenceSession::run_shard(Shard& shard, const float* input) const {
  if (shard.rows == 0) return;
  shard.in_views[0].rebind(input + shard.row_begin * sample_numel_);
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    // Scratch lives only within a stage; rewinding here caps the
    // workspace at the per-stage maximum instead of the pipeline sum.
    shard.ws.reset();
    stages_[i]->forward_into(shard.in_views[i], shard.out_views[i],
                             shard.ws);
  }
}

}  // namespace qdnn::runtime
