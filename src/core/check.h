// Lightweight runtime assertion macros used across qdnn.
//
// QDNN_CHECK is always on (it guards API contracts: shape mismatches,
// invalid hyper-parameters, file errors).  It throws std::runtime_error so
// failures are testable and never abort the process of an embedding
// application.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace qdnn {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "qdnn check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::runtime_error(os.str());
}

}  // namespace qdnn

#define QDNN_CHECK(cond, msg)                                         \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream qdnn_check_os_;                              \
      qdnn_check_os_ << msg;                                          \
      ::qdnn::check_failed(#cond, __FILE__, __LINE__,                 \
                           qdnn_check_os_.str());                     \
    }                                                                 \
  } while (0)

#define QDNN_CHECK_EQ(a, b, msg) \
  QDNN_CHECK((a) == (b), msg << " (" << (a) << " vs " << (b) << ")")

// QDNN_DCHECK guards per-element hot paths (tensor accessors, view
// indexing) where an always-on check would dominate reference loops.  It
// is active in debug builds; optimized builds keep it when
// QDNN_FORCE_DCHECKS is defined (the default CMake configuration does, so
// the test suite always exercises these checks) and drop it otherwise.
#if !defined(NDEBUG) || defined(QDNN_FORCE_DCHECKS)
#define QDNN_DCHECK_ENABLED 1
#define QDNN_DCHECK(cond, msg) QDNN_CHECK(cond, msg)
#else
#define QDNN_DCHECK_ENABLED 0
// sizeof keeps the condition's operands "used" without evaluating them.
#define QDNN_DCHECK(cond, msg) \
  do {                         \
    (void)sizeof(cond);        \
  } while (0)
#endif
