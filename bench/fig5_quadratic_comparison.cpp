// Fig. 5 reproduction: the proposed neuron vs prior quadratic neurons —
// Quad1 = Fan et al. [19] and Quad2 = Xu et al. (QuadraLib) [21] — on the
// ResNet family.
//
//  (A) Paper-scale parameter/MAC arithmetic: ResNet-20/32/56/110 equipped
//      with each quadratic family (k = 9 for ours; Quad1/Quad2 are
//      rank-1-by-construction).  The paper reports ours at ≥24.4% fewer
//      parameters and ≥24.1% fewer MACs than [19] at equal accuracy; the
//      delta here is pure architecture arithmetic.
//  (B) Scaled training on the synthetic CIFAR-10 substitute showing the
//      accuracy ordering, including Quad2's depth instability (the paper
//      observes its accuracy collapsing below 90% at depth).
#include <cstdio>

#include "bench_util.h"
#include "models/resnet.h"
#include "train/trainer.h"

using namespace qdnn;
using namespace qdnn::models;
using quadratic::NeuronKind;
using qdnn::bench::bench_scale;
using qdnn::bench::fmt;
using qdnn::bench::fmt_pct;
using qdnn::bench::print_header;
using qdnn::bench::print_row;
using qdnn::bench::print_rule;

namespace {

struct Variant {
  std::string label;
  NeuronSpec spec;
};

std::vector<Variant> variants() {
  return {
      {"Quad1[19]", NeuronSpec::of(NeuronKind::kQuad1)},
      {"Quad2[21]", NeuronSpec::of(NeuronKind::kQuad2)},
      {"ours(k=9)", NeuronSpec::proposed(9)},
  };
}

}  // namespace

int main() {
  print_header("Fig 5 (A): quadratic families at paper scale (32x32/w16)");
  print_row({"network", "neurons", "params/M", "MACs/MMac"});
  print_rule();

  CsvWriter csv(qdnn::bench::results_dir() + "/fig5_architectures.csv",
                {"depth", "neuron", "params", "macs"});
  struct Point {
    index_t depth;
    std::string label;
    index_t params, macs;
  };
  std::vector<Point> points;
  for (index_t depth : {20, 32, 56, 110}) {
    for (const Variant& v : variants()) {
      ResNetConfig config;
      config.depth = depth;
      config.num_classes = 10;
      config.image_size = 32;
      config.base_width = 16;
      config.spec = v.spec;
      auto net = make_cifar_resnet(config);
      points.push_back(
          {depth, v.label, net->num_parameters(), net->macs_per_image()});
      print_row({"ResNet-" + std::to_string(depth), v.label,
                 fmt(net->num_parameters() / 1e6, 3),
                 fmt(net->macs_per_image() / 1e6, 1)});
      csv.write_row(std::vector<std::string>{
          std::to_string(depth), v.label,
          std::to_string(net->num_parameters()),
          std::to_string(net->macs_per_image())});
    }
  }

  std::printf("\nOurs vs Quad1[19] at equal depth (paper: at least "
              "-24.4%% params / -24.1%% MACs):\n");
  for (index_t depth : {20, 32, 56, 110}) {
    const Point* quad1 = nullptr;
    const Point* mine = nullptr;
    for (const Point& p : points) {
      if (p.depth != depth) continue;
      if (p.label == "Quad1[19]") quad1 = &p;
      if (p.label == "ours(k=9)") mine = &p;
    }
    const double dp = 100.0 *
                      (static_cast<double>(mine->params) - quad1->params) /
                      quad1->params;
    const double dm =
        100.0 * (static_cast<double>(mine->macs) - quad1->macs) /
        quad1->macs;
    std::printf("  ResNet-%-4lld params %s   MACs %s\n",
                static_cast<long long>(depth), fmt_pct(dp).c_str(),
                fmt_pct(dm).c_str());
  }

  // ---------------- Part B: scaled training ------------------------------
  const int scale = bench_scale();
  print_header("Fig 5 (B): scaled training on synthetic CIFAR-10");
  data::SyntheticImageConfig data_config;
  data_config.num_classes = 10;
  data_config.image_size = 16;
  data_config.noise_std = 0.7f;   // hard enough that depth matters
  data_config.shape_amp = 0.25f;  // weak first-order cue
  const auto train_set =
      data::make_synthetic_images(data_config, 600 * scale, 21);
  const auto test_set =
      data::make_synthetic_images(data_config, 300 * scale, 22);

  CsvWriter curve(qdnn::bench::results_dir() + "/fig5_accuracy.csv",
                  {"depth", "neuron", "params", "test_accuracy"});
  print_row({"network", "neurons", "params/k", "test acc"});
  print_rule();
  for (index_t depth : {8, 20}) {
    for (const Variant& v : variants()) {
      ResNetConfig config;
      config.depth = depth;
      config.num_classes = 10;
      config.image_size = 16;
      config.base_width = 8;
      config.spec = v.spec;
      config.seed = 7 + depth;
      auto net = make_cifar_resnet(config);
      train::TrainerConfig tc;
      tc.epochs = 8 * scale;
      tc.batch_size = 32;
      tc.lr = 0.05f;
      tc.clip_norm = 5.0f;
      tc.lr_milestones = {index_t(5 * scale), index_t(7 * scale)};
      tc.augment_pad = 2;
      tc.seed = 200 + depth;
      train::Trainer trainer(*net, tc);
      const auto history = trainer.fit(train_set, test_set);
      const bool diverged = !history.empty() && history.back().diverged;
      const double acc =
          history.empty() ? 0.0 : history.back().test_accuracy;
      print_row({"ResNet-" + std::to_string(depth), v.label,
                 fmt(net->num_parameters() / 1e3, 1),
                 diverged ? "diverged" : fmt(100 * acc, 2)});
      curve.write_row(std::vector<std::string>{
          std::to_string(depth), v.label,
          std::to_string(net->num_parameters()), fmt(acc, 4)});
    }
  }
  std::printf(
      "\nExpected shape (paper): ours >= Quad1 >= Quad2 in accuracy at\n"
      "equal depth, with ours cheapest in params/MACs; Quad2 degrades as\n"
      "depth grows.\n");
  return 0;
}
