// Synthetic German→English-like parallel corpus — the offline substitute
// for WMT14 newstest2014 (see DESIGN.md substitution table).
//
// The "language" is a token-mapped grammar with enough structure that a
// Transformer must actually learn systematic behaviour:
//   * every source content word s_i has a target translation t_i;
//   * a "verb" word class is clause-final in the source and moves to
//     second position in the target (caricature of German→English order);
//   * sentences end in . ! or ?, attached to the last word in the surface
//     string (so the 13a/international tokenizers have work to do);
//   * proper nouns are capitalized, the sentence-initial word is
//     capitalized in the surface form, and some words exist in both a
//     capitalized proper-noun and lowercase common reading (so cased and
//     uncased BLEU differ);
//   * a fraction of target words are hyphenated compounds (so 13a and
//     international tokenization differ).
#pragma once

#include <string>
#include <vector>

#include "core/rng.h"
#include "core/tensor.h"
#include "data/vocab.h"

namespace qdnn::data {

struct TranslationConfig {
  index_t content_words = 120;   // translatable word pairs
  index_t proper_nouns = 12;     // capitalized names (case-sensitive pairs)
  index_t verbs = 12;            // reordered word class
  index_t compounds = 10;        // hyphenated target compounds
  index_t min_len = 3;           // content tokens per sentence
  index_t max_len = 8;
  index_t train_sentences = 2000;
  index_t test_sentences = 128;
  std::uint64_t seed = 7;
};

struct TranslationExample {
  std::vector<index_t> src_ids;   // without bos/eos
  std::vector<index_t> tgt_ids;   // without bos/eos
  std::string tgt_surface;        // detokenized reference string
};

struct TranslationCorpus {
  Vocab src_vocab;
  Vocab tgt_vocab;
  std::vector<TranslationExample> train;
  std::vector<TranslationExample> test;
};

TranslationCorpus make_translation_corpus(const TranslationConfig& config);

// Renders a decoded id sequence to a surface string with the corpus's
// casing/punctuation conventions (inverse of the reference rendering), so
// hypotheses and references are compared on equal footing.
std::string surface_from_ids(const Vocab& tgt_vocab,
                             const std::vector<index_t>& ids);

// Batch assembly for Transformer training.
struct Seq2SeqBatch {
  Tensor src;                      // [N, Ts] ids, padded with kPad
  Tensor tgt_in;                   // [N, Tt] <bos> + target (shifted right)
  std::vector<index_t> tgt_out;    // N·Tt flattened next-token targets
  std::vector<index_t> src_lengths;
};

Seq2SeqBatch make_batch(const std::vector<TranslationExample>& examples,
                        index_t first, index_t count);

}  // namespace qdnn::data
