#include "models/resnet.h"

#include <gtest/gtest.h>

#include "analysis/counters.h"
#include "gradcheck_util.h"

namespace qdnn::models {
namespace {

using qdnn::testing::random_tensor;
using quadratic::NeuronKind;

ResNetConfig tiny_config(NeuronSpec spec, index_t depth = 8) {
  ResNetConfig config;
  config.depth = depth;
  config.num_classes = 4;
  config.image_size = 8;
  config.base_width = 4;
  config.spec = spec;
  return config;
}

TEST(ResNet, DepthMustBe6nPlus2) {
  ResNetConfig config = tiny_config(NeuronSpec::linear());
  config.depth = 21;
  EXPECT_THROW(make_cifar_resnet(config), std::runtime_error);
}

TEST(ResNet, ForwardShapeLinear) {
  auto net = make_cifar_resnet(tiny_config(NeuronSpec::linear()));
  const Tensor logits =
      net->forward(random_tensor(Shape{2, 3, 8, 8}, 1));
  EXPECT_EQ(logits.shape(), Shape({2, 4}));
  EXPECT_TRUE(logits.all_finite());
}

TEST(ResNet, ForwardShapeProposed) {
  auto net = make_cifar_resnet(tiny_config(NeuronSpec::proposed(3)));
  const Tensor logits =
      net->forward(random_tensor(Shape{2, 3, 8, 8}, 2));
  EXPECT_EQ(logits.shape(), Shape({2, 4}));
  EXPECT_TRUE(logits.all_finite());
}

TEST(ResNet, ForwardEveryNeuronFamily) {
  for (NeuronKind kind :
       {NeuronKind::kQuad1, NeuronKind::kQuad2, NeuronKind::kBuKarpatne,
        NeuronKind::kLowRank, NeuronKind::kKervolution}) {
    auto net = make_cifar_resnet(tiny_config(NeuronSpec::of(kind, 3)));
    const Tensor logits =
        net->forward(random_tensor(Shape{1, 3, 8, 8}, 3));
    EXPECT_EQ(logits.shape(), Shape({1, 4}))
        << NeuronSpec::of(kind).kind_name();
  }
}

TEST(ResNet, BackwardProducesFiniteGradients) {
  auto net = make_cifar_resnet(tiny_config(NeuronSpec::proposed(3)));
  const Tensor x = random_tensor(Shape{2, 3, 8, 8}, 4);
  const Tensor logits = net->forward(x);
  const Tensor g = random_tensor(logits.shape(), 5);
  const Tensor gx = net->backward(g);
  EXPECT_EQ(gx.shape(), x.shape());
  EXPECT_TRUE(gx.all_finite());
  for (nn::Parameter* p : net->parameters())
    EXPECT_TRUE(p->grad.all_finite()) << p->name;
}

TEST(ResNet, DeterministicForSameSeed) {
  auto a = make_cifar_resnet(tiny_config(NeuronSpec::linear()));
  auto b = make_cifar_resnet(tiny_config(NeuronSpec::linear()));
  const Tensor x = random_tensor(Shape{1, 3, 8, 8}, 6);
  EXPECT_EQ(max_abs_diff(a->forward(x), b->forward(x)), 0.0f);
}

TEST(ResNet, DepthIncreasesParameters) {
  const auto p8 =
      make_cifar_resnet(tiny_config(NeuronSpec::linear(), 8))
          ->num_parameters();
  const auto p14 =
      make_cifar_resnet(tiny_config(NeuronSpec::linear(), 14))
          ->num_parameters();
  const auto p20 =
      make_cifar_resnet(tiny_config(NeuronSpec::linear(), 20))
          ->num_parameters();
  EXPECT_LT(p8, p14);
  EXPECT_LT(p14, p20);
}

TEST(ResNet, MacCounterPositiveAndScalesWithDepth) {
  const auto m8 =
      make_cifar_resnet(tiny_config(NeuronSpec::linear(), 8))
          ->macs_per_image();
  const auto m20 =
      make_cifar_resnet(tiny_config(NeuronSpec::linear(), 20))
          ->macs_per_image();
  EXPECT_GT(m8, 0);
  EXPECT_GT(m20, 2 * m8);
}

// The Sec. III-C claim realised at the network level: the proposed
// network's parameter count stays close to the linear baseline (same
// depth) while each conv layer gains quadratic expressivity.
TEST(ResNet, ProposedParamsCloseToLinearSameDepth) {
  ResNetConfig config = tiny_config(NeuronSpec::linear(), 14);
  config.base_width = 8;
  config.image_size = 16;
  const auto linear_params =
      make_cifar_resnet(config)->num_parameters();
  config.spec = NeuronSpec::proposed(3);
  const auto quad_params = make_cifar_resnet(config)->num_parameters();
  const double ratio = static_cast<double>(quad_params) /
                       static_cast<double>(linear_params);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

TEST(ResNet, QuadLayerLimitRestrictsDeployment) {
  // With limit 1 only the stem is kervolution; deeper convs are linear,
  // so the network has exactly the same parameter count as all-linear
  // (kervolution adds no parameters) but different response.
  ResNetConfig config = tiny_config(NeuronSpec::of(NeuronKind::kKervolution));
  config.quad_layer_limit = 1;
  auto limited = make_cifar_resnet(config);
  config.spec = NeuronSpec::linear();
  config.quad_layer_limit = -1;
  auto linear = make_cifar_resnet(config);
  EXPECT_EQ(limited->num_parameters(), linear->num_parameters());
}

TEST(ResNet, ParameterGroupsTagged) {
  auto net = make_cifar_resnet(tiny_config(NeuronSpec::proposed(3)));
  const auto breakdown = analysis::count_parameters(*net);
  EXPECT_GT(breakdown.by_group.at("linear"), 0);
  EXPECT_GT(breakdown.by_group.at("quadratic_q"), 0);
  EXPECT_GT(breakdown.by_group.at("quadratic_lambda"), 0);
  EXPECT_EQ(breakdown.total, net->num_parameters());
}

TEST(ResNet, ConvLayerListExposed) {
  auto net = make_cifar_resnet(tiny_config(NeuronSpec::linear(), 8));
  // stem + 3 blocks (depth 8 -> n=1 per stage).
  EXPECT_EQ(net->conv_layers().size(), 4u);
}

TEST(ResNet18, BuildsAndRuns) {
  ResNetConfig config;
  config.num_classes = 5;
  config.image_size = 16;
  config.base_width = 4;
  config.spec = NeuronSpec::proposed(3);
  auto net = make_resnet18(config);
  const Tensor logits =
      net->forward(random_tensor(Shape{1, 3, 16, 16}, 7));
  EXPECT_EQ(logits.shape(), Shape({1, 5}));
  // 4 stages × 2 blocks + stem.
  EXPECT_EQ(net->conv_layers().size(), 9u);
}

TEST(ResNet, TinyNetworkGradcheck) {
  // End-to-end finite-difference check on a minimal quadratic ResNet —
  // expensive but the strongest integration guarantee we have.
  ResNetConfig config = tiny_config(NeuronSpec::proposed(2), 8);
  config.image_size = 6;
  config.base_width = 3;
  auto net = make_cifar_resnet(config);
  // Warm the running statistics, then check gradients in eval mode where
  // BatchNorm is a fixed affine map (training-mode BN couples every pixel
  // of a channel through the batch statistics, drowning the finite
  // difference in noise).
  net->set_training(true);
  (void)net->forward(random_tensor(Shape{4, 3, 6, 6}, 80, -1.0f, 1.0f));
  net->set_training(false);
  // eps must be small here: at eps=1e-2 the perturbation crosses ReLU
  // kinks somewhere in the network and the central difference is off by
  // ~0.08 even though the analytic gradient is exact (verified by an eps
  // sweep).  At 1e-3 the FD agrees to ~4 decimal places.
  qdnn::testing::GradcheckOptions opt;
  opt.max_checks_per_tensor = 8;
  opt.eps = 1e-3;
  opt.rel_tol = 0.1;
  opt.abs_tol = 1e-2;
  EXPECT_TRUE(qdnn::testing::gradcheck_module(
      *net, random_tensor(Shape{2, 3, 6, 6}, 8), opt));
}

}  // namespace
}  // namespace qdnn::models
