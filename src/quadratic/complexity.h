// Closed-form parameter / MAC cost models — the paper's Table I.
//
// `neuron_cost` returns the cost of ONE neuron of a family with fan-in n
// and decomposition rank k (where applicable); `per_output_*` divide by
// the number of outputs the neuron produces (the paper's "averaged
// complexity", Sec. III-C: the proposed neuron emits k+1 values, so its
// per-output cost is n + k/(k+1) parameters and n + 2k/(k+1) MACs).
//
// tests/quadratic/complexity_test.cpp verifies these formulas against
// parameter counts of the instantiated layers, and bench/table1_complexity
// prints the table the paper reports.
#pragma once

#include "quadratic/neuron_spec.h"

namespace qdnn::quadratic {

struct NeuronCost {
  index_t params = 0;   // trainable parameters (bias excluded, as in Table I)
  index_t macs = 0;     // multiply-accumulate operations per application
  index_t outputs = 1;  // values emitted per neuron
};

// Cost of a single neuron with fan-in n.  `k` is the decomposition rank
// (ignored by families without one).
NeuronCost neuron_cost(const NeuronSpec& spec, index_t n);

double params_per_output(const NeuronSpec& spec, index_t n);
double macs_per_output(const NeuronSpec& spec, index_t n);

// Cost of a conv layer of this family: `filters` neurons, each swept over
// `spatial_positions` output pixels with fan-in n = C_in · K².
struct LayerCost {
  index_t params = 0;
  index_t macs = 0;         // for one forward pass over the feature map
  index_t out_channels = 0;
};
LayerCost conv_layer_cost(const NeuronSpec& spec, index_t in_channels,
                          index_t kernel, index_t filters,
                          index_t spatial_positions);

// The Table I formula rendered as a human-readable string, for the bench
// output (e.g. "O(n + k/(k+1))").
std::string params_formula(const NeuronSpec& spec);
std::string macs_formula(const NeuronSpec& spec);

}  // namespace qdnn::quadratic
