#include "nn/sequential.h"

namespace qdnn::nn {

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& child : children_) x = child->forward(x);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& child : children_)
    for (Parameter* p : child->parameters()) params.push_back(p);
  return params;
}

std::vector<NamedBuffer> Sequential::buffers() {
  std::vector<NamedBuffer> bufs;
  for (auto& child : children_)
    for (const NamedBuffer& b : child->buffers()) bufs.push_back(b);
  return bufs;
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& child : children_) child->set_training(training);
}

}  // namespace qdnn::nn
