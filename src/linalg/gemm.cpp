#include "linalg/gemm.h"

#include <vector>

#include "linalg/gemm_backend.h"
#include "linalg/gemm_kernels.h"
#include "linalg/packed_weights.h"

namespace qdnn::linalg {

namespace {

// Shared prologue of every gemm entry point: scale/clear C by beta.
void scale_c(index_t m, index_t n, float beta, float* c, index_t ldc) {
  if (beta == 0.0f) {
    for (index_t i = 0; i < m; ++i)
      for (index_t j = 0; j < n; ++j) c[i * ldc + j] = 0.0f;
  } else if (beta != 1.0f) {
    for (index_t i = 0; i < m; ++i)
      for (index_t j = 0; j < n; ++j) c[i * ldc + j] *= beta;
  }
}

}  // namespace

index_t gemm_scratch_floats(bool trans_a, bool trans_b, index_t m,
                            index_t n, index_t k) {
  index_t floats = 0;
  if (trans_a) floats += m * k;
  if (trans_b) floats += k * n;
  return floats;
}

void gemm(bool trans_a, bool trans_b, index_t m, index_t n, index_t k,
          float alpha, const float* a, index_t lda, const float* b,
          index_t ldb, float beta, float* c, index_t ldc, float* scratch) {
  scale_c(m, n, beta, c, ldc);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;

  // For transposed operands, materialize the effective row-major matrix
  // once into `scratch` and reuse the selected backend's row-major
  // kernel.  The packs are small relative to the O(mnk) work and keep a
  // single well-optimized inner kernel per backend.
  const float* aa = a;
  index_t alda = lda;
  if (trans_a) {
    float* pack = scratch;
    scratch += m * k;
    for (index_t p = 0; p < k; ++p)
      for (index_t i = 0; i < m; ++i) pack[i * k + p] = a[p * lda + i];
    aa = pack;
    alda = k;
  }
  const float* bb = b;
  index_t bldb = ldb;
  if (trans_b) {
    float* pack = scratch;
    for (index_t j = 0; j < n; ++j)
      for (index_t p = 0; p < k; ++p) pack[p * n + j] = b[j * ldb + p];
    bb = pack;
    bldb = n;
  }
  detail::run_gemm(active_gemm_backend(), m, n, k, alpha, aa, alda,
                   detail::BDesc{bb, bldb, /*panel=*/false}, c, ldc);
}

void gemm(bool trans_a, bool trans_b, index_t m, index_t n, index_t k,
          float alpha, const float* a, index_t lda, const float* b,
          index_t ldb, float beta, float* c, index_t ldc) {
  detail::note_heap_pack_call();
  std::vector<float> scratch(static_cast<std::size_t>(
      (m == 0 || n == 0 || k == 0 || alpha == 0.0f)
          ? 0
          : gemm_scratch_floats(trans_a, trans_b, m, n, k)));
  gemm(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
       scratch.data());
}

void gemm_prepacked(bool trans_a, index_t m, index_t n, index_t k,
                    float alpha, const float* a, index_t lda,
                    const PackedWeights& b, float beta, float* c,
                    index_t ldc, float* scratch) {
  QDNN_CHECK(b.packed(), "gemm_prepacked: operand B is not packed");
  QDNN_CHECK(b.rows() == k && b.cols() == n,
             "gemm_prepacked: pack is [" << b.rows() << ", " << b.cols()
                                         << "], call wants [" << k << ", "
                                         << n << "]");
  scale_c(m, n, beta, c, ldc);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;
  QDNN_CHECK(!trans_a || scratch != nullptr,
             "gemm_prepacked: trans_a needs caller-provided scratch "
             "(gemm_scratch_floats(true, false, m, n, k) floats)");

  const float* aa = a;
  index_t alda = lda;
  if (trans_a) {
    // Same per-call A pack as gemm(); only the constant B side moved to
    // freeze time.
    float* pack = scratch;
    for (index_t p = 0; p < k; ++p)
      for (index_t i = 0; i < m; ++i) pack[i * k + p] = a[p * lda + i];
    aa = pack;
    alda = k;
  }
  // Dispatch on the backend that laid the pack out, not the globally
  // active one: the pack bytes and the kernel that streams them are one
  // unit (a backend switched after freeze still consumes old packs
  // correctly; re-freeze migrates them).
  detail::run_gemm(
      b.backend(), m, n, k, alpha, aa, alda,
      detail::BDesc{b.data(), n,
                    /*panel=*/b.layout() == PackLayout::kTilePanel},
      c, ldc);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  QDNN_CHECK_EQ(a.rank(), 2, "matmul: a must be rank 2");
  QDNN_CHECK_EQ(b.rank(), 2, "matmul: b must be rank 2");
  QDNN_CHECK_EQ(a.dim(1), b.dim(0), "matmul: inner dims");
  Tensor c{Shape{a.dim(0), b.dim(1)}};
  gemm(false, false, a.dim(0), b.dim(1), a.dim(1), 1.0f, a.data(), a.dim(1),
       b.data(), b.dim(1), 0.0f, c.data(), c.dim(1));
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  QDNN_CHECK_EQ(a.rank(), 2, "matmul_tn: a must be rank 2");
  QDNN_CHECK_EQ(b.rank(), 2, "matmul_tn: b must be rank 2");
  QDNN_CHECK_EQ(a.dim(0), b.dim(0), "matmul_tn: inner dims");
  Tensor c{Shape{a.dim(1), b.dim(1)}};
  gemm(true, false, a.dim(1), b.dim(1), a.dim(0), 1.0f, a.data(), a.dim(1),
       b.data(), b.dim(1), 0.0f, c.data(), c.dim(1));
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  QDNN_CHECK_EQ(a.rank(), 2, "matmul_nt: a must be rank 2");
  QDNN_CHECK_EQ(b.rank(), 2, "matmul_nt: b must be rank 2");
  QDNN_CHECK_EQ(a.dim(1), b.dim(1), "matmul_nt: inner dims");
  Tensor c{Shape{a.dim(0), b.dim(0)}};
  gemm(false, true, a.dim(0), b.dim(0), a.dim(1), 1.0f, a.data(), a.dim(1),
       b.data(), b.dim(1), 0.0f, c.data(), c.dim(1));
  return c;
}

void gemv(bool trans_a, index_t m, index_t n, float alpha, const float* a,
          index_t lda, const float* x, float beta, float* y) {
  const index_t out_dim = trans_a ? n : m;
  if (beta == 0.0f) {
    for (index_t i = 0; i < out_dim; ++i) y[i] = 0.0f;
  } else if (beta != 1.0f) {
    for (index_t i = 0; i < out_dim; ++i) y[i] *= beta;
  }
  if (!trans_a) {
    for (index_t i = 0; i < m; ++i)
      y[i] += alpha * dot(a + i * lda, x, n);
  } else {
    for (index_t i = 0; i < m; ++i) {
      const float xv = alpha * x[i];
      if (xv == 0.0f) continue;
      axpy(n, xv, a + i * lda, y);
    }
  }
}

float dot(const float* a, const float* b, index_t n) {
  switch (active_gemm_backend()) {
#if defined(QDNN_SIMD_AVX2)
    case GemmBackend::kAvx2:
      return detail::dot_avx2(a, b, n);
#endif
#if defined(QDNN_SIMD_NEON)
    case GemmBackend::kNeon:
      return detail::dot_neon(a, b, n);
#endif
    default:
      return detail::dot_generic(a, b, n);
  }
}

void axpy(index_t n, float alpha, const float* x, float* y) {
  switch (active_gemm_backend()) {
#if defined(QDNN_SIMD_AVX2)
    case GemmBackend::kAvx2:
      detail::axpy_avx2(n, alpha, x, y);
      return;
#endif
#if defined(QDNN_SIMD_NEON)
    case GemmBackend::kNeon:
      detail::axpy_neon(n, alpha, x, y);
      return;
#endif
    default:
      detail::axpy_generic(n, alpha, x, y);
      return;
  }
}

}  // namespace qdnn::linalg
