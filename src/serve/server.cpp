#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>

namespace qdnn::serve {

namespace {

// Cheap divergence guard: FNV-1a 64 over every parameter's float bits,
// folded to 52 bits so a double-valued Gauge holds it exactly (doubles
// represent integers up to 2^53 losslessly).  Order-sensitive — the
// replicas' parameters() traversals are structural, so identically-built
// replicas hash identically and any drifted weight changes the value.
double weight_checksum_of(models::Transformer& model) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const nn::Parameter* p : model.parameters()) {
    const float* data = p->value.data();
    const index_t n = p->value.numel();
    for (index_t i = 0; i < n; ++i) {
      std::uint32_t bits;
      std::memcpy(&bits, &data[i], sizeof(bits));
      for (int b = 0; b < 4; ++b) {
        h ^= (bits >> (8 * b)) & 0xffu;
        h *= 1099511628211ULL;  // FNV prime
      }
    }
  }
  return static_cast<double>(h & ((1ULL << 52) - 1));
}

}  // namespace

Server::Server(const std::vector<models::Transformer*>& models,
               ServerConfig config) {
  const auto n = static_cast<index_t>(models.size());
  QDNN_CHECK(n >= 1, "Server: models must be non-empty (one replica per "
                     "shard)");
  QDNN_CHECK(config.shards == 0 || config.shards == n,
             "Server: config.shards " << config.shards
                                      << " must equal models.size() " << n
                                      << " (or 0 to derive)");
  for (index_t i = 0; i < n; ++i) {
    QDNN_CHECK(models[static_cast<std::size_t>(i)] != nullptr,
               "Server: models[" << i << "] is null");
    for (index_t j = 0; j < i; ++j)
      QDNN_CHECK(models[static_cast<std::size_t>(i)] !=
                     models[static_cast<std::size_t>(j)],
                 "Server: models[" << i << "] and models[" << j
                                   << "] are the same object — each shard "
                                      "binds its own replica exclusively");
  }
  // Shard-invariance rests on the replicas being identical; catch the
  // cheap-to-catch divergence (architecture or init seed) at the edge
  // with a field-named error.  Weight drift after construction (training
  // one replica and not the others) is on the caller.
  const models::TransformerConfig& base = models[0]->config();
  for (index_t i = 1; i < n; ++i) {
    const models::TransformerConfig& c =
        models[static_cast<std::size_t>(i)]->config();
#define QDNN_SERVE_SAME(field)                                         \
  QDNN_CHECK(c.field == base.field,                                    \
             "Server: models[" << i << "]." #field " (" << c.field     \
                               << ") differs from models[0] ("         \
                               << base.field                           \
                               << ") — shards must serve identical "   \
                                  "replicas")
    QDNN_SERVE_SAME(src_vocab);
    QDNN_SERVE_SAME(tgt_vocab);
    QDNN_SERVE_SAME(d_model);
    QDNN_SERVE_SAME(n_heads);
    QDNN_SERVE_SAME(n_layers);
    QDNN_SERVE_SAME(d_ff);
    QDNN_SERVE_SAME(proj_dim);
    QDNN_SERVE_SAME(max_len);
    QDNN_SERVE_SAME(seed);
#undef QDNN_SERVE_SAME
  }

  // The config check above cannot see post-construction weight drift
  // (training one replica and not the others): checksum every replica's
  // weights, reject divergence at the edge, and export the values as
  // gauges so drift stays visible in snapshots.
  weight_checksums_.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    const double sum =
        weight_checksum_of(*models[static_cast<std::size_t>(i)]);
    QDNN_CHECK(weight_checksums_.empty() || sum == weight_checksums_[0],
               "Server: models[" << i << "] weight checksum (" << sum
                                 << ") differs from models[0] ("
                                 << weight_checksums_[0]
                                 << ") — shards must serve identical "
                                    "replica weights");
    weight_checksums_.push_back(sum);
    registry_
        .gauge("server.shard" + std::to_string(i) + ".weight_checksum")
        .set(sum);
  }

  // Bind every shard's scheduler before starting any worker, so a
  // construction failure (bind exclusivity, ring geometry) never leaves
  // threads running over half-built state.  Every shard records into the
  // server's registry under its own prefix, so one snapshot sees the
  // whole fleet.
  shards_.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    BatchSchedulerConfig shard_config = config.shard;
    shard_config.registry = &registry_;
    shard_config.metrics_prefix = "shard" + std::to_string(i);
    shard->scheduler = std::make_unique<BatchScheduler>(
        *models[static_cast<std::size_t>(i)], shard_config);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_)
    shard->worker = std::thread([this, s = shard.get()] { shard_loop(*s); });
}

Server::~Server() {
  stop_.store(true);
  for (auto& shard : shards_) {
    // Taking the lock before notifying closes the race with a worker
    // that checked stop_ and is about to wait.
    { std::lock_guard<std::mutex> lk(shard->mu); }
    shard->cv.notify_all();
  }
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
}

void Server::drain_locked(Shard& shard) {
  if (shard.scheduler->results_ready() == 0) return;
  std::vector<RequestResult> results = shard.scheduler->take_results();
  for (RequestResult& r : results) shard.mailbox.push_back(std::move(r));
  const auto drained = static_cast<index_t>(results.size());
  shard.outstanding.fetch_sub(drained);
  {
    // Decrement under idle_mu_ so wait_idle's predicate check cannot
    // miss the matching notify.
    std::lock_guard<std::mutex> lk(idle_mu_);
    unresolved_.fetch_sub(drained);
  }
  idle_cv_.notify_all();
}

std::unique_lock<std::mutex> Server::lock_front(const Shard& shard) {
  shard.waiters.fetch_add(1);
  std::unique_lock<std::mutex> lk(shard.mu);
  shard.waiters.fetch_sub(1);
  return lk;
}

void Server::shard_loop(Shard& shard) {
  // The lock is scoped to ONE tick: acquired at the top of each
  // iteration, released at the bottom.  A busy shard therefore yields
  // shard.mu between steps, so submit / cancel / take_results / stats
  // interleave at tick granularity — an arrival joins the running batch
  // on the next tick (continuous batching survives the front end) and a
  // mid-decode cancel takes effect at the next tick boundary instead of
  // blocking until the shard drains.
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(shard.mu);
      shard.cv.wait(lk, [&] {
        return stop_.load() || !shard.scheduler->idle();
      });
      if (stop_.load()) return;
      const index_t stepped = shard.scheduler->step();
      drain_locked(shard);
      if (stepped == 0 && !shard.scheduler->idle()) {
        // Only prefill compute is outstanding: back off briefly — the
        // wait releases the lock, so submits/cancels proceed and the
        // tick clock does not free-run while the pool works.
        shard.cv.wait_for(lk, std::chrono::microseconds(200));
      }
    }
    // Releasing the mutex does not hand it over: this loop would win the
    // re-lock against a woken waiter essentially every time (barging),
    // which is the busy-period lockout again in practice.  So between
    // ticks the worker yields until every registered front-end caller
    // (lock_front) has gotten through.
    while (shard.waiters.load() > 0 && !stop_.load())
      std::this_thread::yield();
  }
}

index_t Server::submit(Request request) {
  QDNN_CHECK(request.id == -1,
             "Server: request.id must be left at -1 — the Server assigns "
             "globally unique ids (got "
                 << request.id << ")");
  // Join-shortest-queue: fewest unresolved requests wins, ties to the
  // lowest shard.  Reads are atomic — no shard lock is touched until the
  // destination is chosen, so a busy shard never blocks routing.
  index_t best = 0;
  index_t best_load = shards_[0]->outstanding.load();
  for (index_t i = 1; i < shards(); ++i) {
    const index_t load =
        shards_[static_cast<std::size_t>(i)]->outstanding.load();
    if (load < best_load) {
      best = i;
      best_load = load;
    }
  }
  Shard& shard = *shards_[static_cast<std::size_t>(best)];
  const index_t id = next_seq_.fetch_add(1) * shards() + best;
  request.id = id;
  {
    const auto lk = lock_front(shard);
    shard.scheduler->submit(std::move(request));  // throws = nothing taken
    shard.outstanding.fetch_add(1);
    {
      std::lock_guard<std::mutex> ilk(idle_mu_);
      unresolved_.fetch_add(1);
    }
    // A load-shed resolves at submit; surface it to the mailbox now so
    // pending()/wait_idle() never count a request the worker would only
    // notice on its next wake-up.
    drain_locked(shard);
  }
  shard.cv.notify_one();
  return id;
}

bool Server::cancel(index_t id) {
  if (id < 0) return false;
  Shard& shard = *shards_[static_cast<std::size_t>(id % shards())];
  bool hit;
  {
    const auto lk = lock_front(shard);
    hit = shard.scheduler->cancel(id);
    // A queued or mid-decode cancel resolves immediately — mailbox it
    // under the same lock hold.  (A cancel caught mid-prefill resolves
    // on the worker's next drain.)
    drain_locked(shard);
  }
  if (hit) shard.cv.notify_one();
  return hit;
}

std::vector<RequestResult> Server::take_results() {
  std::vector<RequestResult> out;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    const auto lk = lock_front(shard);
    drain_locked(shard);
    for (RequestResult& r : shard.mailbox) out.push_back(std::move(r));
    shard.mailbox.clear();
  }
  return out;
}

void Server::wait_idle() {
  std::unique_lock<std::mutex> lk(idle_mu_);
  idle_cv_.wait(lk, [&] { return unresolved_.load() == 0; });
}

SchedulerStats Server::shard_stats(index_t shard) const {
  QDNN_CHECK(shard >= 0 && shard < shards(),
             "Server: shard " << shard << " outside [0, " << shards()
                              << ")");
  const Shard& s = *shards_[static_cast<std::size_t>(shard)];
  const auto lk = lock_front(s);
  return s.scheduler->stats();
}

double Server::weight_checksum(index_t shard) const {
  QDNN_CHECK(shard >= 0 && shard < shards(),
             "Server: shard " << shard << " outside [0, " << shards()
                              << ")");
  return weight_checksums_[static_cast<std::size_t>(shard)];
}

ServerStats Server::stats() const {
  ServerStats s;
  s.per_shard.reserve(shards_.size());
  double occupancy_weighted = 0.0;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    const auto lk = lock_front(shard);
    s.per_shard.push_back(shard.scheduler->stats());
  }
  double tick_ms_weighted = 0.0;
  for (const SchedulerStats& ps : s.per_shard) {
    s.totals.ticks += ps.ticks;
    s.totals.stepped_ticks += ps.stepped_ticks;
    s.totals.total_tokens += ps.total_tokens;
    // KV-paging counters sum across shards (each shard owns its own pool).
    s.totals.prefix_hits += ps.prefix_hits;
    s.totals.prefix_misses += ps.prefix_misses;
    s.totals.prefix_insertions += ps.prefix_insertions;
    s.totals.prefix_evictions += ps.prefix_evictions;
    s.totals.preemptions += ps.preemptions;
    s.totals.free_pages += ps.free_pages;
    s.totals.total_pages += ps.total_pages;
    occupancy_weighted +=
        ps.mean_occupancy * static_cast<double>(ps.stepped_ticks);
    // Latency/tick percentiles roll up as worst-shard (the conservative
    // tail — per-shard tick clocks advance independently); the tick-time
    // mean is stepped-tick weighted like occupancy.
    s.totals.latency_samples += ps.latency_samples;
    s.totals.latency_p50 = std::max(s.totals.latency_p50, ps.latency_p50);
    s.totals.latency_p99 = std::max(s.totals.latency_p99, ps.latency_p99);
    s.totals.tick_samples += ps.tick_samples;
    tick_ms_weighted +=
        ps.tick_mean_ms * static_cast<double>(ps.stepped_ticks);
    s.totals.tick_p99_ms = std::max(s.totals.tick_p99_ms, ps.tick_p99_ms);
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(kPriorityClasses); ++c) {
      SchedulerClassStats& tot = s.totals.per_class[c];
      const SchedulerClassStats& cls = ps.per_class[c];
      tot.submitted += cls.submitted;
      tot.completed += cls.completed;
      tot.cancelled += cls.cancelled;
      tot.expired += cls.expired;
      tot.shed += cls.shed;
      tot.errored += cls.errored;
      tot.queue_wait_samples += cls.queue_wait_samples;
      tot.ttft_samples += cls.ttft_samples;
      tot.queue_wait_p50 = std::max(tot.queue_wait_p50, cls.queue_wait_p50);
      tot.queue_wait_p99 = std::max(tot.queue_wait_p99, cls.queue_wait_p99);
      tot.ttft_p50 = std::max(tot.ttft_p50, cls.ttft_p50);
      tot.ttft_p99 = std::max(tot.ttft_p99, cls.ttft_p99);
    }
  }
  s.totals.mean_occupancy =
      s.totals.stepped_ticks > 0
          ? occupancy_weighted /
                static_cast<double>(s.totals.stepped_ticks)
          : 0.0;
  s.totals.tick_mean_ms =
      s.totals.stepped_ticks > 0
          ? tick_ms_weighted / static_cast<double>(s.totals.stepped_ticks)
          : 0.0;
  return s;
}

}  // namespace qdnn::serve
