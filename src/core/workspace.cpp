#include "core/workspace.h"

#include <algorithm>

namespace qdnn {

float* Workspace::alloc(index_t numel) {
  QDNN_CHECK(numel >= 0, "Workspace::alloc: negative size " << numel);
  in_use_ += numel;
  watermark_ = std::max(watermark_, in_use_);
  if (numel == 0) return nullptr;
  const auto need = static_cast<std::size_t>(numel);

  // Advance through existing blocks until one fits.
  while (block_ < blocks_.size()) {
    std::vector<float>& b = blocks_[block_];
    if (b.size() - offset_ >= need) {
      float* p = b.data() + offset_;
      offset_ += need;
      return p;
    }
    ++block_;
    offset_ = 0;
  }

  // Chain a new block: at least double the current capacity so repeated
  // growth is logarithmic, and large enough for this request.
  const std::size_t cap = static_cast<std::size_t>(capacity());
  blocks_.emplace_back(std::max({need, cap, std::size_t{1024}}));
  ++grow_count_;
  block_ = blocks_.size() - 1;
  offset_ = need;
  return blocks_[block_].data();
}

void Workspace::reset() {
  block_ = 0;
  offset_ = 0;
  in_use_ = 0;
}

void Workspace::consolidate() {
  QDNN_CHECK(in_use_ == 0, "Workspace::consolidate: reset() first");
  if (capacity() == watermark_ && blocks_.size() <= 1) return;
  // Any bump pattern that fit before fits in one contiguous block of the
  // high-watermark; chained blocks (and the minimum first-block size) may
  // hold more — skipped tails, growth doubling — so consolidating shrinks
  // the arena to exactly the watermark, making capacity() an honest
  // footprint report (the freeze/prepack watermark regressions rely on
  // this).
  blocks_.clear();
  block_ = 0;
  offset_ = 0;
  if (watermark_ == 0) return;
  blocks_.emplace_back(static_cast<std::size_t>(watermark_));
  ++grow_count_;
}

index_t Workspace::capacity() const {
  index_t total = 0;
  for (const auto& b : blocks_) total += static_cast<index_t>(b.size());
  return total;
}

}  // namespace qdnn
