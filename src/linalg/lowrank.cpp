#include "linalg/lowrank.h"

#include <cmath>

#include "core/rng.h"

namespace qdnn::linalg {

LowRankFactors truncate_top_k(const Tensor& symmetric_m, index_t k) {
  const index_t n = symmetric_m.dim(0);
  QDNN_CHECK(k >= 1 && k <= n, "truncate_top_k: need 1 <= k <= n, got k="
                                   << k << " n=" << n);
  const EigResult eig = eigh(symmetric_m);
  LowRankFactors f{Tensor{Shape{n, k}}, Tensor{Shape{k}}};
  for (index_t c = 0; c < k; ++c) {
    f.lambda[c] = eig.eigenvalues[c];
    for (index_t i = 0; i < n; ++i) f.q.at(i, c) = eig.eigenvectors.at(i, c);
  }
  return f;
}

double truncation_error(const Tensor& symmetric_m, const LowRankFactors& f) {
  const Tensor approx = reconstruct(f.q, f.lambda);
  Tensor diff = symmetric_m;
  diff -= approx;
  return frobenius_norm(diff);
}

LowRankFactors random_rank_k(index_t n, index_t k, std::uint64_t seed) {
  QDNN_CHECK(k >= 1 && k <= n, "random_rank_k: need 1 <= k <= n");
  Rng rng(seed);
  LowRankFactors f{Tensor{Shape{n, k}}, Tensor{Shape{k}}};
  rng.fill_normal(f.q, 0.0f, 1.0f / std::sqrt(static_cast<float>(n)));
  rng.fill_normal(f.lambda, 0.0f, 1.0f);
  return f;
}

}  // namespace qdnn::linalg
