// Paged-KV contracts for the serving layer (PR 10): prefix-cache
// semantics (hit skips prime_compute, bit-identity to a cold prime,
// LRU eviction under capacity, refcount safety, hash-collision safety)
// and page-budget oversubscription (preemption resolves every request
// exactly once with bit-identical tokens).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "decode_test_util.h"
#include "runtime/kv_pages.h"
#include "serve/scheduler.h"

namespace qdnn::serve {
namespace {

using models::Transformer;
using qdnn::testing::random_src_ids;
using qdnn::testing::tiny_transformer_config;

constexpr index_t kBos = 1, kEos = 2;

BatchSchedulerConfig scheduler_config(index_t max_batch,
                                      index_t max_steps) {
  BatchSchedulerConfig config;
  config.session.max_batch = max_batch;
  config.session.max_steps = max_steps;
  config.bos = kBos;
  config.eos = kEos;
  return config;
}

// Runs one request through `scheduler` to completion and returns its
// tokens.
std::vector<index_t> run_one(BatchScheduler& scheduler, const Tensor& src,
                             index_t src_length, index_t budget) {
  Request req;
  req.src_ids = src;
  req.src_length = src_length;
  req.max_new_tokens = budget;
  const index_t id = scheduler.submit(std::move(req));
  std::vector<index_t> tokens;
  bool resolved = false;
  while (!resolved) {
    scheduler.step();
    for (RequestResult& r : scheduler.take_results()) {
      EXPECT_EQ(r.id, id) << "unexpected foreign result";
      tokens = std::move(r.tokens);
      resolved = true;
    }
    EXPECT_LT(scheduler.ticks(), 10000) << "scheduler stuck";
    if (scheduler.ticks() >= 10000) break;
  }
  return tokens;
}

TEST(PagedKv, PrefixHitSkipsPrimeAndMatchesColdPrimeBitExactly) {
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  const index_t max_steps = 10;
  BatchScheduler scheduler(model, scheduler_config(2, max_steps));

  const Tensor src = random_src_ids(1, 6, 20, 77);
  const index_t len = 5;
  const auto reference =
      model.greedy_decode_reference(src, {len}, kBos, kEos, max_steps)[0];

  const auto cold = run_one(scheduler, src, len, max_steps);
  EXPECT_EQ(cold, reference);
  const auto& cache = scheduler.session().prefix_cache();
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_GE(cache.misses(), 1);
  EXPECT_EQ(cache.insertions(), 1);

  // The cache's pin keeps the committed cross pages out of the free
  // list even though no row is live.
  const index_t cross_pages =
      scheduler.session().cross_pages_for(src.dim(1));
  EXPECT_EQ(scheduler.session().free_pages(),
            scheduler.session().total_pages() - cross_pages);
  EXPECT_EQ(scheduler.session().reclaimable_pages(), cross_pages);

  // Same source again: the admission path takes the cached pages —
  // a hit, no second insertion — and the tokens are bit-identical to
  // the cold prime.
  const auto warm = run_one(scheduler, src, len, max_steps);
  EXPECT_EQ(warm, cold);
  EXPECT_GE(cache.hits(), 1);
  EXPECT_EQ(cache.insertions(), 1) << "hit must not re-publish";

  const SchedulerStats stats = scheduler.stats();
  EXPECT_GE(stats.prefix_hits, 1);
  EXPECT_EQ(stats.prefix_insertions, 1);
}

TEST(PagedKv, DistinctSourcesMissAndLruEvictsUnderCapacity) {
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  const index_t max_steps = 8;
  BatchSchedulerConfig config = scheduler_config(1, max_steps);
  config.session.prefix_cache_entries = 2;
  BatchScheduler scheduler(model, config);
  const auto& cache = scheduler.session().prefix_cache();

  for (index_t i = 0; i < 4; ++i) {
    const Tensor src = random_src_ids(1, 4 + (i % 3), 20, 500 + i);
    run_one(scheduler, src, 0, max_steps);
  }
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.insertions(), 4);
  EXPECT_GE(cache.evictions(), 2) << "capacity 2 must have evicted";
  EXPECT_LE(cache.live_entries(), 2);

  // The two survivors are the most recently used; the first source was
  // evicted, so resubmitting it misses (and re-inserts).
  const long long misses_before = cache.misses();
  const Tensor first = random_src_ids(1, 4, 20, 500);
  run_one(scheduler, first, 0, max_steps);
  EXPECT_GT(cache.misses(), misses_before);
  EXPECT_EQ(cache.insertions(), 5);
}

TEST(PagedKv, CachedPagesStayPinnedWhileALiveRowMapsThem) {
  // Direct pool/cache unit test: eviction drops only the CACHE's pin;
  // pages a live row still maps survive (and their bits survive) until
  // the row itself releases them.
  runtime::KvPagePool pool;
  pool.init(/*pages=*/4, /*page_floats=*/8);
  runtime::PrefixCache cache;
  cache.init(/*entries=*/1, /*max_tokens=*/8, /*max_pages=*/4);

  const index_t pages[2] = {pool.acquire(), pool.acquire()};
  ASSERT_GT(pages[0], 0);
  ASSERT_GT(pages[1], 0);
  for (int p = 0; p < 2; ++p)
    for (index_t f = 0; f < 8; ++f)
      pool.page_data(pages[p])[f] = static_cast<float>(100 * p + f);

  const index_t tokens[3] = {5, 6, 7};
  const std::uint64_t h = runtime::prefix_hash(tokens, 3, 3);
  cache.publish(h, tokens, 3, 3, pages, 2, pool);
  EXPECT_EQ(pool.refcount(pages[0]), 2);  // producer + cache

  // Producer row retires: only the cache pin remains.
  pool.release(pages[0]);
  pool.release(pages[1]);
  EXPECT_EQ(pool.refcount(pages[0]), 1);
  EXPECT_EQ(pool.free_pages(), 2);

  // A consumer row takes the prefix (pin under the cache lock)...
  std::vector<index_t> row_pages;
  ASSERT_TRUE(cache.lookup_acquire(h, tokens, 3, 3, pool, row_pages));
  ASSERT_EQ(row_pages.size(), 2u);
  EXPECT_EQ(pool.refcount(pages[0]), 2);

  // ... then the cache entry is evicted under pressure.  The pages must
  // NOT return to the free list — the row still maps them — and their
  // contents must be intact.
  ASSERT_TRUE(cache.evict_one(pool));
  EXPECT_EQ(cache.live_entries(), 0);
  EXPECT_EQ(pool.refcount(pages[0]), 1);
  EXPECT_EQ(pool.free_pages(), 2);
  for (int p = 0; p < 2; ++p)
    for (index_t f = 0; f < 8; ++f)
      EXPECT_EQ(pool.page_data(pages[p])[f],
                static_cast<float>(100 * p + f));

  // Only when the row releases do the pages become free again.
  for (index_t page : row_pages) pool.release(page);
  EXPECT_EQ(pool.free_pages(), 4);
}

TEST(PagedKv, HashCollisionNeverAliasesDifferentTokens) {
  runtime::KvPagePool pool;
  pool.init(/*pages=*/2, /*page_floats=*/4);
  runtime::PrefixCache cache;
  cache.init(/*entries=*/2, /*max_tokens=*/8, /*max_pages=*/2);

  const index_t tokens_a[3] = {1, 2, 3};
  const index_t page = pool.acquire();
  const std::uint64_t h = runtime::prefix_hash(tokens_a, 3, 3);
  cache.publish(h, tokens_a, 3, 3, &page, 1, pool);

  // Forced collision: the SAME 64-bit hash with different tokens must
  // miss — the full-token compare is the safety net.
  const index_t tokens_b[3] = {9, 9, 9};
  std::vector<index_t> out;
  EXPECT_FALSE(cache.lookup_acquire(h, tokens_b, 3, 3, pool, out));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(cache.misses(), 1);

  // Same hash + same tokens + same length: hit.
  EXPECT_TRUE(cache.lookup_acquire(h, tokens_a, 3, 3, pool, out));
  ASSERT_EQ(out.size(), 1u);
  pool.release(out[0]);

  // Same tokens, different valid length: a distinct key (the mask
  // shapes the committed K/V), so it must miss too.
  out.clear();
  EXPECT_FALSE(cache.lookup_acquire(h, tokens_a, 3, 2, pool, out));
}

TEST(PagedKv, OversubscriptionFuzzPreemptsAndStaysBitIdentical) {
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  const index_t max_steps = 12;

  struct Job {
    Tensor src;
    index_t len;
    index_t budget;
    Priority priority;
    std::vector<index_t> reference;
  };
  std::vector<Job> jobs;
  Rng rng(4242);
  for (index_t i = 0; i < 8; ++i) {
    Job j;
    const index_t ts = 3 + rng.uniform_int(4);  // 3..6
    j.src = random_src_ids(1, ts, 20, 9000 + i);
    j.len = 1 + rng.uniform_int(ts);
    j.budget = max_steps - rng.uniform_int(3);  // deep rows: 10..12
    j.priority = static_cast<Priority>(i % kPriorityClasses);
    j.reference = model.greedy_decode_reference(j.src, {j.len}, kBos,
                                                kEos, j.budget)[0];
    jobs.push_back(std::move(j));
  }

  index_t total_preemptions = 0;
  for (const std::uint64_t fuzz_seed : {11u, 22u, 33u}) {
    BatchSchedulerConfig config = scheduler_config(4, max_steps);
    config.session.max_src = 8;
    config.session.page_tokens = 4;
    // Worst-case row: ceil(12/4) self + ceil(8/4) cross = 5 pages.
    // 8 pages for a width-4 batch (dense bound 20) oversubscribes hard:
    // rows MUST deepen into a dry pool and trigger preemption.
    config.session.pool_pages = 8;
    BatchScheduler scheduler(model, config);

    Rng order_rng(fuzz_seed);
    const std::vector<index_t> order =
        order_rng.permutation(static_cast<index_t>(jobs.size()));
    std::map<index_t, index_t> id_to_job;
    std::map<index_t, std::vector<index_t>> results;
    for (const index_t idx : order) {
      const Job& j = jobs[static_cast<std::size_t>(idx)];
      Request req;
      req.src_ids = j.src;
      req.src_length = j.len;
      req.max_new_tokens = j.budget;
      req.priority = j.priority;
      id_to_job[scheduler.submit(std::move(req))] = idx;
    }
    while (!scheduler.idle()) {
      scheduler.step();
      for (RequestResult& r : scheduler.take_results()) {
        const bool inserted =
            results.emplace(r.id, std::move(r.tokens)).second;
        EXPECT_TRUE(inserted) << "id " << r.id << " resolved twice";
      }
      ASSERT_LT(scheduler.ticks(), 20000) << "scheduler stuck";
    }
    ASSERT_EQ(results.size(), jobs.size())
        << "every id must resolve exactly once";
    for (const auto& [id, tokens] : results) {
      const Job& j = jobs[static_cast<std::size_t>(id_to_job.at(id))];
      EXPECT_EQ(tokens, j.reference)
          << "preempted/replayed request diverged from solo decode";
    }
    const SchedulerStats stats = scheduler.stats();
    total_preemptions += stats.preemptions;
    EXPECT_EQ(stats.total_pages, 8);
    // Drained: every non-free page is held only by the prefix cache.
    EXPECT_EQ(scheduler.session().free_pages() +
                  scheduler.session().reclaimable_pages(),
              scheduler.session().total_pages());
  }
  EXPECT_GT(total_preemptions, 0)
      << "pool of 8 pages under 8 deep requests never preempted — the "
         "oversubscription path went untested";
}

}  // namespace
}  // namespace qdnn::serve
