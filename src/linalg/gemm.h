// Dense matrix kernels.  These are the hot paths of the library: conv
// layers (via im2col), attention, and every quadratic-neuron variant reduce
// to calls here.  Implementation is a cache-blocked ikj kernel with
// optional transposes — no BLAS dependency, deterministic results.
#pragma once

#include "core/tensor.h"

namespace qdnn::linalg {

// C(m,n) = alpha * op(A) * op(B) + beta * C
// op(A) is A (m,k) when !trans_a, or Aᵀ of A (k,m) when trans_a.
void gemm(bool trans_a, bool trans_b, index_t m, index_t n, index_t k,
          float alpha, const float* a, index_t lda, const float* b,
          index_t ldb, float beta, float* c, index_t ldc);

// Scratch floats gemm needs to pack transposed operands for these flags
// and sizes (0 when neither operand is transposed).
index_t gemm_scratch_floats(bool trans_a, bool trans_b, index_t m,
                            index_t n, index_t k);

// As gemm, but packing uses the caller-provided `scratch` buffer (at
// least gemm_scratch_floats(...) floats) instead of allocating — the
// allocation-free path used by Module::forward_into implementations,
// which draw scratch from a Workspace.  Bit-identical to gemm().
void gemm(bool trans_a, bool trans_b, index_t m, index_t n, index_t k,
          float alpha, const float* a, index_t lda, const float* b,
          index_t ldb, float beta, float* c, index_t ldc, float* scratch);

// Convenience wrappers on Tensor ([m,k] x [k,n] -> [m,n]).
Tensor matmul(const Tensor& a, const Tensor& b);
Tensor matmul_tn(const Tensor& a, const Tensor& b);  // aᵀ b, a is [k,m]
Tensor matmul_nt(const Tensor& a, const Tensor& b);  // a bᵀ, b is [n,k]

// y(m) = op(A) x + beta*y
void gemv(bool trans_a, index_t m, index_t n, float alpha, const float* a,
          index_t lda, const float* x, float beta, float* y);

// Dot product over n elements.
float dot(const float* a, const float* b, index_t n);

// y += alpha * x  (n elements).
void axpy(index_t n, float alpha, const float* x, float* y);

}  // namespace qdnn::linalg
