#include "core/tensor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace qdnn {
namespace {

TEST(Shape, NumelAndRank) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[2], 4);
}

TEST(Shape, EmptyShapeIsScalar) {
  const Shape s{};
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, ZeroDimensionGivesZeroNumel) {
  const Shape s{3, 0, 2};
  EXPECT_EQ(s.numel(), 0);
}

TEST(Shape, Strides) {
  const Shape s{2, 3, 4};
  const auto strides = s.strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(Shape, EqualityAndPrinting) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_EQ(Shape({2, 3}).to_string(), "[2, 3]");
}

TEST(Shape, NegativeDimensionThrows) {
  EXPECT_THROW(Shape({2, -1}), std::runtime_error);
}

TEST(Tensor, ConstructionAndFill) {
  Tensor t{Shape{2, 3}};
  EXPECT_EQ(t.numel(), 6);
  for (index_t i = 0; i < 6; ++i) EXPECT_EQ(t[i], 0.0f);
  t.fill(2.5f);
  EXPECT_EQ(t.at(1, 2), 2.5f);
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_THROW(Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3}),
               std::runtime_error);
}

TEST(Tensor, MultiIndexAccessors) {
  Tensor t{Shape{2, 3, 4, 5}};
  t.at(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.0f);
  Tensor t3{Shape{2, 3, 4}};
  t3.at(1, 0, 2) = 3.0f;
  EXPECT_EQ(t3[(1 * 3 + 0) * 4 + 2], 3.0f);
}

TEST(Tensor, Reshape) {
  Tensor t{Shape{2, 6}};
  t.at(1, 0) = 5.0f;
  const Tensor r = t.reshaped(Shape{3, 4});
  EXPECT_EQ(r.shape(), Shape({3, 4}));
  EXPECT_EQ(r[6], 5.0f);
  EXPECT_THROW(t.reshaped(Shape{5, 5}), std::runtime_error);
}

TEST(Tensor, ArithmeticInPlace) {
  Tensor a{Shape{3}, std::vector<float>{1, 2, 3}};
  const Tensor b{Shape{3}, std::vector<float>{10, 20, 30}};
  a += b;
  EXPECT_EQ(a[2], 33.0f);
  a -= b;
  EXPECT_EQ(a[1], 2.0f);
  a *= 2.0f;
  EXPECT_EQ(a[0], 2.0f);
  a.add_scaled(b, 0.1f);
  EXPECT_FLOAT_EQ(a[0], 3.0f);
}

TEST(Tensor, ArithmeticShapeMismatchThrows) {
  Tensor a{Shape{3}};
  const Tensor b{Shape{4}};
  EXPECT_THROW(a += b, std::runtime_error);
  EXPECT_THROW(a -= b, std::runtime_error);
  EXPECT_THROW(hadamard(a, b), std::runtime_error);
  EXPECT_THROW(max_abs_diff(a, b), std::runtime_error);
}

TEST(Tensor, Reductions) {
  const Tensor t{Shape{4}, std::vector<float>{-1, 2, -3, 4}};
  EXPECT_FLOAT_EQ(t.sum(), 2.0f);
  EXPECT_FLOAT_EQ(t.mean(), 0.5f);
  EXPECT_FLOAT_EQ(t.min(), -3.0f);
  EXPECT_FLOAT_EQ(t.max(), 4.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 4.0f);
  EXPECT_FLOAT_EQ(t.squared_norm(), 1 + 4 + 9 + 16);
}

TEST(Tensor, MapAndHadamard) {
  const Tensor t{Shape{3}, std::vector<float>{1, -2, 3}};
  const Tensor sq = t.map([](float v) { return v * v; });
  EXPECT_FLOAT_EQ(sq[1], 4.0f);
  const Tensor h = hadamard(t, t);
  EXPECT_FLOAT_EQ(h[2], 9.0f);
}

TEST(Tensor, AllFinite) {
  Tensor t{Shape{3}, std::vector<float>{1, 2, 3}};
  EXPECT_TRUE(t.all_finite());
  t[1] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(t.all_finite());
  t[1] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(t.all_finite());
}

TEST(Tensor, MaxAbsDiff) {
  const Tensor a{Shape{3}, std::vector<float>{1, 2, 3}};
  const Tensor b{Shape{3}, std::vector<float>{1, 2.5f, 2}};
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 1.0f);
}

TEST(Tensor, OutOfPlaceOperators) {
  const Tensor a{Shape{2}, std::vector<float>{1, 2}};
  const Tensor b{Shape{2}, std::vector<float>{3, 4}};
  EXPECT_FLOAT_EQ((a + b)[1], 6.0f);
  EXPECT_FLOAT_EQ((a - b)[0], -2.0f);
  EXPECT_FLOAT_EQ((a * 3.0f)[1], 6.0f);
}

#if QDNN_DCHECK_ENABLED
TEST(Tensor, AccessorRankChecks) {
  Tensor t2{Shape{2, 3}};
  EXPECT_THROW(t2.at(0, 0, 0), std::runtime_error);     // rank 3 on rank 2
  EXPECT_THROW(t2.at(0, 0, 0, 0), std::runtime_error);  // rank 4 on rank 2
  Tensor t3{Shape{2, 3, 4}};
  EXPECT_THROW(t3.at(0, 0), std::runtime_error);        // rank 2 on rank 3
}

TEST(Tensor, AccessorBoundsChecks) {
  Tensor t{Shape{2, 3}};
  EXPECT_THROW(t.at(2, 0), std::runtime_error);
  EXPECT_THROW(t.at(0, 3), std::runtime_error);
  EXPECT_THROW(t.at(-1, 0), std::runtime_error);
  Tensor t4{Shape{2, 2, 2, 2}};
  EXPECT_THROW(t4.at(0, 0, 0, 2), std::runtime_error);
  EXPECT_NO_THROW(t4.at(1, 1, 1, 1));
}
#endif

TEST(Tensor, ScalarFactory) {
  const Tensor s = Tensor::scalar(42.0f);
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_FLOAT_EQ(s[0], 42.0f);
}

}  // namespace
}  // namespace qdnn
