#include "models/transformer/attention.h"

#include <cmath>

#include "linalg/gemm.h"
#include "nn/softmax.h"

namespace qdnn::models {

MultiHeadAttention::MultiHeadAttention(index_t d_model, index_t n_heads,
                                       index_t proj_dim,
                                       const quadratic::NeuronSpec& spec,
                                       Rng& rng, std::string name)
    : d_model_(d_model),
      n_heads_(n_heads),
      proj_dim_(proj_dim),
      head_dim_(proj_dim / n_heads),
      name_(std::move(name)) {
  QDNN_CHECK(proj_dim % n_heads == 0,
             name_ << ": proj_dim " << proj_dim << " not divisible by "
                   << n_heads << " heads");
  wq_ = quadratic::make_dense_neuron(spec, d_model, proj_dim, rng,
                                     name_ + ".wq");
  wk_ = quadratic::make_dense_neuron(spec, d_model, proj_dim, rng,
                                     name_ + ".wk");
  wv_ = quadratic::make_dense_neuron(spec, d_model, proj_dim, rng,
                                     name_ + ".wv");
  wo_ = quadratic::make_dense_neuron(spec, proj_dim, d_model, rng,
                                     name_ + ".wo");
}

Tensor MultiHeadAttention::forward(const Tensor& q_input,
                                   const Tensor& kv_input, index_t n,
                                   index_t tq, index_t tk, bool causal,
                                   const std::vector<index_t>& kv_lengths) {
  QDNN_CHECK_EQ(q_input.dim(0), n * tq, name_ << ": q rows");
  QDNN_CHECK_EQ(kv_input.dim(0), n * tk, name_ << ": kv rows");
  QDNN_CHECK(kv_lengths.empty() ||
                 static_cast<index_t>(kv_lengths.size()) == n,
             name_ << ": kv_lengths size");
  n_ = n;
  tq_ = tq;
  tk_ = tk;

  q_ = wq_->forward(q_input);
  k_ = wk_->forward(kv_input);
  v_ = wv_->forward(kv_input);

  attn_ = Tensor{Shape{n, n_heads_, tq, tk}};
  Tensor context{Shape{n * tq, proj_dim_}};
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  for (index_t s = 0; s < n; ++s) {
    const index_t valid_k =
        kv_lengths.empty() ? tk : kv_lengths[static_cast<std::size_t>(s)];
    for (index_t h = 0; h < n_heads_; ++h) {
      float* scores = attn_.data() + ((s * n_heads_ + h) * tq) * tk;
      // scores[i, j] = (q_i · k_j) * scale over this head's slice.
      for (index_t i = 0; i < tq; ++i) {
        const float* q_row =
            q_.data() + (s * tq + i) * proj_dim_ + h * head_dim_;
        float* score_row = scores + i * tk;
        const index_t limit = causal ? std::min(i + 1, valid_k) : valid_k;
        for (index_t j = 0; j < tk; ++j) {
          if (j < limit) {
            const float* k_row =
                k_.data() + (s * tk + j) * proj_dim_ + h * head_dim_;
            score_row[j] = scale * linalg::dot(q_row, k_row, head_dim_);
          } else {
            score_row[j] = -1e30f;  // masked: pad or future position
          }
        }
      }
      nn::softmax_rows(scores, tq, tk);
      // context = attn · V
      for (index_t i = 0; i < tq; ++i) {
        float* ctx_row =
            context.data() + (s * tq + i) * proj_dim_ + h * head_dim_;
        const float* score_row = scores + i * tk;
        for (index_t j = 0; j < tk; ++j) {
          const float a = score_row[j];
          if (a == 0.0f) continue;
          const float* v_row =
              v_.data() + (s * tk + j) * proj_dim_ + h * head_dim_;
          linalg::axpy(head_dim_, a, v_row, ctx_row);
        }
      }
    }
  }
  // Keep the context for wo_'s backward via its own cache.
  return wo_->forward(context);
}

std::pair<Tensor, Tensor> MultiHeadAttention::backward(
    const Tensor& grad_output) {
  QDNN_CHECK(n_ > 0, name_ << ": backward before forward");
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  Tensor g_context = wo_->backward(grad_output);  // [N·Tq, P]
  Tensor g_q{Shape{n_ * tq_, proj_dim_}};
  Tensor g_k{Shape{n_ * tk_, proj_dim_}};
  Tensor g_v{Shape{n_ * tk_, proj_dim_}};

  std::vector<float> g_scores(static_cast<std::size_t>(tq_ * tk_));
  for (index_t s = 0; s < n_; ++s) {
    for (index_t h = 0; h < n_heads_; ++h) {
      const float* attn = attn_.data() + ((s * n_heads_ + h) * tq_) * tk_;
      // dL/d(attn[i,j]) = g_ctx_i · v_j ; dL/dv_j += attn[i,j] g_ctx_i
      for (index_t i = 0; i < tq_; ++i) {
        const float* gc_row =
            g_context.data() + (s * tq_ + i) * proj_dim_ + h * head_dim_;
        const float* attn_row = attn + i * tk_;
        float* gs_row = g_scores.data() + i * tk_;
        for (index_t j = 0; j < tk_; ++j) {
          const float* v_row =
              v_.data() + (s * tk_ + j) * proj_dim_ + h * head_dim_;
          gs_row[j] = linalg::dot(gc_row, v_row, head_dim_);
          if (attn_row[j] != 0.0f) {
            float* gv_row =
                g_v.data() + (s * tk_ + j) * proj_dim_ + h * head_dim_;
            linalg::axpy(head_dim_, attn_row[j], gc_row, gv_row);
          }
        }
      }
      // Back through softmax (masked entries have attn = 0, so they
      // receive zero gradient automatically).
      nn::softmax_backward_rows(attn, g_scores.data(), tq_, tk_);
      // dq_i += scale * Σ_j gs[i,j] k_j ; dk_j += scale * Σ_i gs[i,j] q_i
      for (index_t i = 0; i < tq_; ++i) {
        float* gq_row =
            g_q.data() + (s * tq_ + i) * proj_dim_ + h * head_dim_;
        const float* q_row =
            q_.data() + (s * tq_ + i) * proj_dim_ + h * head_dim_;
        const float* gs_row = g_scores.data() + i * tk_;
        for (index_t j = 0; j < tk_; ++j) {
          const float g = gs_row[j] * scale;
          if (g == 0.0f) continue;
          const float* k_row =
              k_.data() + (s * tk_ + j) * proj_dim_ + h * head_dim_;
          linalg::axpy(head_dim_, g, k_row, gq_row);
          float* gk_row =
              g_k.data() + (s * tk_ + j) * proj_dim_ + h * head_dim_;
          linalg::axpy(head_dim_, g, q_row, gk_row);
        }
      }
    }
  }

  Tensor grad_q_input = wq_->backward(g_q);
  Tensor grad_kv_input = wk_->backward(g_k);
  grad_kv_input += wv_->backward(g_v);
  return {std::move(grad_q_input), std::move(grad_kv_input)};
}

std::vector<nn::Parameter*> MultiHeadAttention::parameters() {
  std::vector<nn::Parameter*> params;
  for (nn::Module* m : {wq_.get(), wk_.get(), wv_.get(), wo_.get()})
    for (nn::Parameter* p : m->parameters()) params.push_back(p);
  return params;
}

void MultiHeadAttention::set_training(bool training) {
  wq_->set_training(training);
  wk_->set_training(training);
  wv_->set_training(training);
  wo_->set_training(training);
}

}  // namespace qdnn::models
