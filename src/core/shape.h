// Shape: an immutable-ish small vector of dimension extents for Tensor.
//
// Row-major semantics throughout the library.  Kept deliberately simple:
// qdnn tensors are always dense and contiguous, so a Shape fully determines
// the memory layout.
//
// Storage is a fixed inline array (qdnn ranks top out at 4 — [N,C,H,W]),
// so constructing, copying and comparing Shapes never touches the heap.
// This is what lets serving code build TensorViews on the hot path — the
// flattened stage pipelines of runtime::InferenceSession and the native
// attention/Sequential forward_into implementations — while keeping the
// zero-steady-state-allocation guarantee.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <ostream>
#include <vector>

#include "core/check.h"

namespace qdnn {

using index_t = std::int64_t;

class Shape {
 public:
  // Deep enough for every layout in the library plus headroom; a rank
  // above this is a hard error, not a silent heap fallback.
  static constexpr index_t kMaxRank = 6;

  Shape() = default;
  Shape(std::initializer_list<index_t> dims) { assign(dims.begin(), dims.end()); }
  explicit Shape(const std::vector<index_t>& dims) {
    assign(dims.begin(), dims.end());
  }

  index_t rank() const { return rank_; }

  index_t operator[](index_t i) const {
    QDNN_CHECK(i >= 0 && i < rank(), "shape index " << i << " out of rank "
                                                    << rank());
    return dims_[static_cast<std::size_t>(i)];
  }

  // Total number of elements; 1 for a rank-0 (scalar) shape.
  index_t numel() const {
    index_t n = 1;
    for (index_t i = 0; i < rank_; ++i)
      n *= dims_[static_cast<std::size_t>(i)];
    return n;
  }

  // Iteration over the extents (rank() elements).
  const index_t* begin() const { return dims_; }
  const index_t* end() const { return dims_ + rank_; }

  bool operator==(const Shape& other) const {
    if (rank_ != other.rank_) return false;
    for (index_t i = 0; i < rank_; ++i)
      if (dims_[static_cast<std::size_t>(i)] !=
          other.dims_[static_cast<std::size_t>(i)])
        return false;
    return true;
  }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  // Row-major strides (in elements, not bytes).
  std::vector<index_t> strides() const {
    std::vector<index_t> s(static_cast<std::size_t>(rank_), 1);
    for (index_t i = rank() - 2; i >= 0; --i) {
      s[static_cast<std::size_t>(i)] =
          s[static_cast<std::size_t>(i + 1)] * dims_[static_cast<std::size_t>(i + 1)];
    }
    return s;
  }

  std::string to_string() const {
    std::string out = "[";
    for (index_t i = 0; i < rank_; ++i) {
      if (i) out += ", ";
      out += std::to_string(dims_[static_cast<std::size_t>(i)]);
    }
    return out + "]";
  }

 private:
  template <typename It>
  void assign(It first, It last) {
    for (It it = first; it != last; ++it) {
      QDNN_CHECK(rank_ < kMaxRank, "shape rank exceeds " << kMaxRank);
      QDNN_CHECK(*it >= 0, "negative dimension in shape");
      dims_[static_cast<std::size_t>(rank_++)] = *it;
    }
  }

  index_t dims_[static_cast<std::size_t>(kMaxRank)] = {};
  index_t rank_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, const Shape& s) {
  return os << s.to_string();
}

namespace detail {

// Shared QDNN_DCHECK rank/bounds guards for the multi-index at()
// accessors of Tensor, TensorView and ConstTensorView.  No-ops (and
// fully inlined away) when QDNN_DCHECK is disabled.
inline void dcheck_at(const Shape& s, index_t i, index_t j) {
  QDNN_DCHECK(s.rank() == 2, "at(i,j) on rank-" << s.rank());
  QDNN_DCHECK(i >= 0 && i < s[0] && j >= 0 && j < s[1],
              "index (" << i << ", " << j << ") out of bounds for " << s);
}
inline void dcheck_at(const Shape& s, index_t i, index_t j, index_t k) {
  QDNN_DCHECK(s.rank() == 3, "at(i,j,k) on rank-" << s.rank());
  QDNN_DCHECK(i >= 0 && i < s[0] && j >= 0 && j < s[1] && k >= 0 &&
                  k < s[2],
              "index (" << i << ", " << j << ", " << k
                        << ") out of bounds for " << s);
}
inline void dcheck_at(const Shape& s, index_t i, index_t j, index_t k,
                      index_t l) {
  QDNN_DCHECK(s.rank() == 4, "at(i,j,k,l) on rank-" << s.rank());
  QDNN_DCHECK(i >= 0 && i < s[0] && j >= 0 && j < s[1] && k >= 0 &&
                  k < s[2] && l >= 0 && l < s[3],
              "index (" << i << ", " << j << ", " << k << ", " << l
                        << ") out of bounds for " << s);
}

}  // namespace detail

}  // namespace qdnn
