#include "nn/conv2d.h"

#include <vector>

#include "linalg/gemm.h"

namespace qdnn::nn {

namespace {

// Per-sample im2col + GEMM + bias body shared by forward() and
// forward_into() — one definition so training and serving cannot drift.
// `cols` is caller-provided scratch of patch_size() * n_cols floats.
void conv_sample_forward(const float* image, index_t h, index_t w,
                         const ConvGeometry& g, const float* weight,
                         const float* bias, index_t out_channels,
                         index_t n_cols, float* cols, float* out_s) {
  const index_t patch = g.patch_size();
  im2col(image, h, w, g, cols);
  linalg::gemm(false, false, out_channels, n_cols, patch, 1.0f, weight,
               patch, cols, n_cols, 0.0f, out_s, n_cols, nullptr);
  if (bias) {
    for (index_t oc = 0; oc < out_channels; ++oc) {
      const float b = bias[oc];
      float* row = out_s + oc * n_cols;
      for (index_t j = 0; j < n_cols; ++j) row[j] += b;
    }
  }
}

}  // namespace

Conv2d::Conv2d(index_t in_channels, index_t out_channels, index_t kernel,
               index_t stride, index_t padding, Rng& rng, bool bias,
               std::string name)
    : geometry_{in_channels, kernel, stride, padding},
      out_channels_(out_channels),
      has_bias_(bias),
      name_(std::move(name)),
      weight_(name_ + ".weight",
              Tensor{Shape{out_channels, geometry_.patch_size()}}),
      bias_(name_ + ".bias", bias ? Tensor{Shape{out_channels}} : Tensor{}) {
  QDNN_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0,
             "Conv2d: dims must be positive");
  kaiming_normal(weight_.value, geometry_.patch_size(), rng);
  bias_.decay = false;
}

Tensor Conv2d::forward(const Tensor& input) {
  QDNN_CHECK_EQ(input.rank(), 4, name_ << ": expected [N,C,H,W]");
  QDNN_CHECK_EQ(input.dim(1), geometry_.in_channels, name_ << ": channels");
  cached_input_ = input;
  const index_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const index_t oh = geometry_.out_extent(h), ow = geometry_.out_extent(w);
  const index_t patch = geometry_.patch_size();
  const index_t n_cols = oh * ow;

  Tensor out{Shape{n, out_channels_, oh, ow}};
  std::vector<float> cols(static_cast<std::size_t>(patch * n_cols));
  for (index_t s = 0; s < n; ++s)
    conv_sample_forward(input.data() + s * geometry_.in_channels * h * w, h,
                        w, geometry_, weight_.value.data(),
                        has_bias_ ? bias_.value.data() : nullptr,
                        out_channels_, n_cols, cols.data(),
                        out.data() + s * out_channels_ * n_cols);
  return out;
}

Shape Conv2d::output_shape(const Shape& input_shape) const {
  QDNN_CHECK_EQ(input_shape.rank(), 4, name_ << ": expected [N,C,H,W]");
  QDNN_CHECK_EQ(input_shape[1], geometry_.in_channels, name_ << ": channels");
  return Shape{input_shape[0], out_channels_,
               geometry_.out_extent(input_shape[2]),
               geometry_.out_extent(input_shape[3])};
}

void Conv2d::forward_into(const ConstTensorView& input, const TensorView& output,
                          Workspace& ws) {
  QDNN_CHECK_EQ(input.rank(), 4, name_ << ": expected [N,C,H,W]");
  QDNN_CHECK_EQ(input.dim(1), geometry_.in_channels, name_ << ": channels");
  const index_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const index_t oh = geometry_.out_extent(h), ow = geometry_.out_extent(w);
  const index_t patch = geometry_.patch_size();
  const index_t n_cols = oh * ow;
  QDNN_CHECK(output.rank() == 4 && output.dim(0) == n &&
                 output.dim(1) == out_channels_ && output.dim(2) == oh &&
                 output.dim(3) == ow,
             name_ << ": bad output view " << output.shape());

  float* cols = ws.alloc(patch * n_cols);
  for (index_t s = 0; s < n; ++s)
    conv_sample_forward(input.data() + s * geometry_.in_channels * h * w, h,
                        w, geometry_, weight_.value.data(),
                        has_bias_ ? bias_.value.data() : nullptr,
                        out_channels_, n_cols, cols,
                        output.data() + s * out_channels_ * n_cols);
}

void Conv2d::freeze() {
  cached_input_ = Tensor{};
  Module::freeze();
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  QDNN_CHECK(!cached_input_.empty(), name_ << ": backward before forward");
  const Tensor& input = cached_input_;
  const index_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const index_t oh = geometry_.out_extent(h), ow = geometry_.out_extent(w);
  const index_t patch = geometry_.patch_size();
  const index_t n_cols = oh * ow;
  QDNN_CHECK(grad_output.shape() == Shape({n, out_channels_, oh, ow}),
             name_ << ": grad_output shape " << grad_output.shape());

  Tensor grad_input{input.shape()};
  std::vector<float> cols(static_cast<std::size_t>(patch * n_cols));
  std::vector<float> grad_cols(static_cast<std::size_t>(patch * n_cols));
  for (index_t s = 0; s < n; ++s) {
    const float* g_s = grad_output.data() + s * out_channels_ * n_cols;
    im2col(input.data() + s * geometry_.in_channels * h * w, h, w, geometry_,
           cols.data());
    // dW += g · colsᵀ  — [oc, patch]
    linalg::gemm(false, true, out_channels_, patch, n_cols, 1.0f, g_s,
                 n_cols, cols.data(), n_cols, 1.0f, weight_.grad.data(),
                 patch);
    if (has_bias_) {
      for (index_t oc = 0; oc < out_channels_; ++oc) {
        const float* row = g_s + oc * n_cols;
        float acc = 0.0f;
        for (index_t j = 0; j < n_cols; ++j) acc += row[j];
        bias_.grad[oc] += acc;
      }
    }
    // d(cols) = Wᵀ · g — [patch, n_cols]; scatter back via col2im.
    linalg::gemm(true, false, patch, n_cols, out_channels_, 1.0f,
                 weight_.value.data(), patch, g_s, n_cols, 0.0f,
                 grad_cols.data(), n_cols);
    col2im(grad_cols.data(), h, w, geometry_,
           grad_input.data() + s * geometry_.in_channels * h * w);
  }
  return grad_input;
}

std::vector<Parameter*> Conv2d::parameters() {
  std::vector<Parameter*> params{&weight_};
  if (has_bias_) params.push_back(&bias_);
  return params;
}

}  // namespace qdnn::nn
