#include "quadratic/quad_dense.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck_util.h"
#include "linalg/eig.h"

namespace qdnn::quadratic {
namespace {

using qdnn::testing::gradcheck_module;
using qdnn::testing::random_tensor;

// --------------------------- proposed neuron ------------------------------

TEST(ProposedDense, OutputLayoutAndShape) {
  Rng rng(1);
  ProposedQuadraticDense layer(6, 2, 3, rng);
  EXPECT_EQ(layer.out_features(), 8);  // 2 units × (3+1)
  const Tensor y = layer.forward(random_tensor(Shape{5, 6}, 2));
  EXPECT_EQ(y.shape(), Shape({5, 8}));
}

TEST(ProposedDense, MatchesManualFormula) {
  // y = wᵀx + b + Σ λᵢ fᵢ², f = Qᵀx — checked element-wise against a
  // brute-force evaluation.
  Rng rng(3);
  const index_t n = 5, k = 3;
  ProposedQuadraticDense layer(n, 1, k, rng);
  const Tensor x = random_tensor(Shape{2, n}, 4);
  const Tensor y = layer.forward(x);

  for (index_t s = 0; s < 2; ++s) {
    // f_i = q_i · x
    float quad = 0.0f;
    for (index_t i = 0; i < k; ++i) {
      float f = 0.0f;
      for (index_t j = 0; j < n; ++j)
        f += layer.q().value[i * n + j] * x.at(s, j);
      EXPECT_NEAR(y.at(s, 1 + i), f, 1e-5f) << "f channel " << i;
      quad += layer.lambda().value[i] * f * f;
    }
    float lin = layer.bias().value[0];
    for (index_t j = 0; j < n; ++j)
      lin += layer.w().value[j] * x.at(s, j);
    EXPECT_NEAR(y.at(s, 0), lin + quad, 1e-4f);
  }
}

// Equivalence with the general quadratic neuron: when Q has orthonormal
// columns, y = xᵀQΛQᵀx + wᵀx + b must equal the general form with
// M = QΛQᵀ (the paper's Eq. (7)).
TEST(ProposedDense, EquivalentToGeneralWithReconstructedM) {
  Rng rng(5);
  const index_t n = 6, k = 6;  // full rank for exact equality
  ProposedQuadraticDense proposed(n, 1, k, rng);
  // Orthonormalize Q via eigendecomposition of a random symmetric matrix.
  Tensor sym{Shape{n, n}};
  rng.fill_normal(sym, 0.0f, 1.0f);
  sym = linalg::symmetrize(sym);
  const linalg::EigResult eig = linalg::eigh(sym);
  for (index_t i = 0; i < k; ++i)
    for (index_t j = 0; j < n; ++j)
      proposed.q().value[i * n + j] = eig.eigenvectors.at(j, i);

  // M = Q Λ Qᵀ with the layer's λ.
  Tensor q_cols{Shape{n, k}};
  for (index_t i = 0; i < k; ++i)
    for (index_t j = 0; j < n; ++j)
      q_cols.at(j, i) = proposed.q().value[i * n + j];
  Tensor lam{Shape{k}};
  for (index_t i = 0; i < k; ++i) lam[i] = proposed.lambda().value[i];
  const Tensor m = linalg::reconstruct(q_cols, lam);

  const Tensor x = random_tensor(Shape{3, n}, 6);
  const Tensor y = proposed.forward(x);
  for (index_t s = 0; s < 3; ++s) {
    Tensor xs{Shape{n}};
    for (index_t j = 0; j < n; ++j) xs[j] = x.at(s, j);
    double expected = linalg::quadratic_form(m, xs) +
                      proposed.bias().value[0];
    for (index_t j = 0; j < n; ++j)
      expected += proposed.w().value[j] * xs[j];
    EXPECT_NEAR(y.at(s, 0), expected, 1e-3f) << "sample " << s;
  }
}

TEST(ProposedDense, Gradcheck) {
  Rng rng(7);
  ProposedQuadraticDense layer(5, 2, 3, rng);
  EXPECT_TRUE(gradcheck_module(layer, random_tensor(Shape{3, 5}, 8)));
}

TEST(ProposedDense, LambdaHasLrScaleAndGroup) {
  Rng rng(9);
  ProposedQuadraticDense layer(4, 1, 2, rng, /*lambda_lr_scale=*/1e-4f);
  EXPECT_FLOAT_EQ(layer.lambda().lr_scale, 1e-4f);
  EXPECT_EQ(layer.lambda().group, "quadratic_lambda");
  EXPECT_EQ(layer.q().group, "quadratic_q");
  EXPECT_EQ(layer.w().group, "linear");
}

TEST(ProposedDense, ZeroLambdaReducesToLinearPlusFeatures) {
  Rng rng(10);
  ProposedQuadraticDense layer(4, 1, 2, rng);
  layer.lambda().value.zero();
  const Tensor x = random_tensor(Shape{2, 4}, 11);
  const Tensor y = layer.forward(x);
  // With Λ = 0 the y channel is exactly the linear neuron.
  for (index_t s = 0; s < 2; ++s) {
    float lin = layer.bias().value[0];
    for (index_t j = 0; j < 4; ++j) lin += layer.w().value[j] * x.at(s, j);
    EXPECT_NEAR(y.at(s, 0), lin, 1e-5f);
  }
}

// ---------------------------- general neuron ------------------------------

TEST(GeneralDense, MatchesQuadraticForm) {
  Rng rng(12);
  const index_t n = 4;
  GeneralQuadraticDense layer(n, 2, rng, /*include_linear=*/true);
  const Tensor x = random_tensor(Shape{3, n}, 13);
  const Tensor y = layer.forward(x);
  for (index_t s = 0; s < 3; ++s)
    for (index_t u = 0; u < 2; ++u) {
      Tensor m{Shape{n, n}};
      for (index_t i = 0; i < n * n; ++i)
        m[i] = layer.m().value[u * n * n + i];
      Tensor xs{Shape{n}};
      for (index_t j = 0; j < n; ++j) xs[j] = x.at(s, j);
      double expected = linalg::quadratic_form(m, xs) +
                        layer.bias().value[u];
      for (index_t j = 0; j < n; ++j)
        expected += layer.w().value[u * n + j] * xs[j];
      EXPECT_NEAR(y.at(s, u), expected, 1e-4f);
    }
}

TEST(GeneralDense, PureVariantHasNoLinearTerm) {
  Rng rng(14);
  GeneralQuadraticDense layer(3, 1, rng, /*include_linear=*/false);
  EXPECT_EQ(layer.parameters().size(), 1u);
  // Quadratic form of -x equals that of x (even function).
  Tensor x = random_tensor(Shape{1, 3}, 15);
  const Tensor y1 = layer.forward(x);
  x *= -1.0f;
  const Tensor y2 = layer.forward(x);
  EXPECT_NEAR(y1[0], y2[0], 1e-5f);
}

TEST(GeneralDense, Gradcheck) {
  Rng rng(16);
  GeneralQuadraticDense layer(4, 2, rng, true);
  EXPECT_TRUE(gradcheck_module(layer, random_tensor(Shape{2, 4}, 17)));
}

TEST(GeneralDense, GradcheckPure) {
  Rng rng(18);
  GeneralQuadraticDense layer(3, 2, rng, false);
  EXPECT_TRUE(gradcheck_module(layer, random_tensor(Shape{2, 3}, 19)));
}

// ---------------------------- low-rank neuron -----------------------------

TEST(LowRankDense, MatchesManualFormula) {
  Rng rng(20);
  const index_t n = 4, k = 2;
  LowRankQuadraticDense layer(n, 1, k, rng);
  const Tensor x = random_tensor(Shape{2, n}, 21);
  const Tensor y = layer.forward(x);
  auto param = [&](const char* name) -> nn::Parameter* {
    for (nn::Parameter* p : layer.parameters())
      if (p->name.find(name) != std::string::npos) return p;
    return nullptr;
  };
  const nn::Parameter* q1 = param(".q1");
  const nn::Parameter* q2 = param(".q2");
  const nn::Parameter* w = param(".w");
  const nn::Parameter* b = param(".b");
  for (index_t s = 0; s < 2; ++s) {
    double expected = b->value[0];
    for (index_t i = 0; i < k; ++i) {
      double a = 0.0, c = 0.0;
      for (index_t j = 0; j < n; ++j) {
        a += q1->value[i * n + j] * x.at(s, j);
        c += q2->value[i * n + j] * x.at(s, j);
      }
      expected += a * c;
    }
    for (index_t j = 0; j < n; ++j)
      expected += w->value[j] * x.at(s, j);
    EXPECT_NEAR(y.at(s, 0), expected, 1e-4f);
  }
}

TEST(LowRankDense, Gradcheck) {
  Rng rng(22);
  LowRankQuadraticDense layer(5, 2, 3, rng);
  EXPECT_TRUE(gradcheck_module(layer, random_tensor(Shape{2, 5}, 23)));
}

// ---------------------------- factored neurons ----------------------------

TEST(FactoredDense, Quad2MatchesManual) {
  Rng rng(24);
  const index_t n = 4;
  FactoredQuadraticDense layer(n, 1, NeuronKind::kQuad2, rng);
  const Tensor x = random_tensor(Shape{1, n}, 25);
  auto param = [&](const char* name) -> nn::Parameter* {
    for (nn::Parameter* p : layer.parameters())
      if (p->name.find(name) != std::string::npos) return p;
    return nullptr;
  };
  double a = 0.0, b = 0.0, w3x = 0.0;
  for (index_t j = 0; j < n; ++j) {
    a += param(".w1")->value[j] * x[j];
    b += param(".w2")->value[j] * x[j];
    w3x += param(".w3")->value[j] * x[j];
  }
  const double expected = a * b + w3x + param(".c")->value[0];
  EXPECT_NEAR(layer.forward(x)[0], expected, 1e-4f);
}

TEST(FactoredDense, Quad1SquaresInput) {
  Rng rng(26);
  const index_t n = 3;
  FactoredQuadraticDense layer(n, 1, NeuronKind::kQuad1, rng);
  auto param = [&](const char* name) -> nn::Parameter* {
    for (nn::Parameter* p : layer.parameters())
      if (p->name.find(name) != std::string::npos) return p;
    return nullptr;
  };
  const Tensor x = random_tensor(Shape{1, n}, 27);
  double a = param(".b1")->value[0], b = param(".b2")->value[0],
         w3x2 = 0.0;
  for (index_t j = 0; j < n; ++j) {
    a += param(".w1")->value[j] * x[j];
    b += param(".w2")->value[j] * x[j];
    w3x2 += param(".w3")->value[j] * x[j] * x[j];
  }
  const double expected = a * b + w3x2 + param(".c")->value[0];
  EXPECT_NEAR(layer.forward(x)[0], expected, 1e-4f);
}

TEST(FactoredDense, BuKarpatneReusesW1) {
  Rng rng(28);
  const index_t n = 3;
  FactoredQuadraticDense layer(n, 1, NeuronKind::kBuKarpatne, rng);
  // Only w1, w2 and output bias: 2 weight vectors.
  EXPECT_EQ(layer.parameters().size(), 3u);
  auto param = [&](const char* name) -> nn::Parameter* {
    for (nn::Parameter* p : layer.parameters())
      if (p->name.find(name) != std::string::npos) return p;
    return nullptr;
  };
  const Tensor x = random_tensor(Shape{1, n}, 29);
  double a = 0.0, b = 0.0;
  for (index_t j = 0; j < n; ++j) {
    a += param(".w1")->value[j] * x[j];
    b += param(".w2")->value[j] * x[j];
  }
  const double expected = a * b + a + param(".c")->value[0];
  EXPECT_NEAR(layer.forward(x)[0], expected, 1e-4f);
}

TEST(FactoredDense, GradcheckAllModes) {
  for (NeuronKind mode : {NeuronKind::kQuad1, NeuronKind::kQuad2,
                          NeuronKind::kBuKarpatne}) {
    Rng rng(30);
    FactoredQuadraticDense layer(4, 2, mode, rng);
    EXPECT_TRUE(gradcheck_module(layer, random_tensor(Shape{2, 4}, 31)))
        << "mode " << static_cast<int>(mode);
  }
}

TEST(FactoredDense, RejectsNonFactoredMode) {
  Rng rng(32);
  EXPECT_THROW(FactoredQuadraticDense(4, 1, NeuronKind::kGeneral, rng),
               std::runtime_error);
}

// ------------------------------ factory -----------------------------------

TEST(Factory, BuildsEveryFamily) {
  for (NeuronKind kind :
       {NeuronKind::kLinear, NeuronKind::kGeneral, NeuronKind::kPure,
        NeuronKind::kBuKarpatne, NeuronKind::kLowRank, NeuronKind::kQuad1,
        NeuronKind::kQuad2, NeuronKind::kKervolution,
        NeuronKind::kProposed}) {
    Rng rng(33);
    NeuronSpec spec = NeuronSpec::of(kind, 3);
    const index_t out = (kind == NeuronKind::kProposed) ? 8 : 5;
    auto layer = make_dense_neuron(spec, 6, out, rng, "factory_test");
    const Tensor y = layer->forward(random_tensor(Shape{2, 6}, 34));
    EXPECT_EQ(y.shape(), Shape({2, out})) << spec.kind_name();
  }
}

TEST(Factory, ProposedRequiresDivisibleWidth) {
  Rng rng(35);
  const NeuronSpec spec = NeuronSpec::proposed(3);
  EXPECT_THROW(make_dense_neuron(spec, 4, 7, rng, "bad"),
               std::runtime_error);
}

}  // namespace
}  // namespace qdnn::quadratic
