// Position-wise feed-forward block of the Transformer:
// Linear(d→d_ff) → ReLU → Linear(d_ff→d), applied to flattened [N·T, D].
#pragma once

#include "nn/activations.h"
#include "nn/linear.h"

namespace qdnn::models {

class FeedForward : public nn::Module {
 public:
  FeedForward(index_t d_model, index_t d_ff, Rng& rng, std::string name);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  nn::Linear fc1_;
  nn::ReLU relu_;
  nn::Linear fc2_;
};

}  // namespace qdnn::models
