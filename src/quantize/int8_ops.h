// Integer reference kernels for quantized inference.
//
// gemm_i8 computes C = A·Bᵀ with int8 inputs and int32 accumulation —
// the layout matches the library's dense layers (activations [M, K]
// row-major against weights [N, K] row-major), so a quantized layer is
// the float layer's GEMM with the fp32 multiply replaced by an int8 MAC
// and a per-output-channel dequantization scale.  This is the arithmetic
// an int8 edge accelerator performs, which is the deployment target the
// paper's storage/computation argument (Sec. I) is about.
#pragma once

#include <cstdint>

#include "core/tensor.h"
#include "quantize/qtensor.h"

namespace qdnn::quantize {

// C[m, n] = Σ_k A[m, k] · B[n, k], int32 accumulation (A·Bᵀ layout — the
// dense-layer orientation: activations [M, K] against weights [N, K]).
void gemm_i8(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
             index_t m, index_t n, index_t k);

// C[m, n] = Σ_k A[m, k] · B[k, n], int32 accumulation (A·B layout — the
// conv orientation: weights [F, patch] against im2col columns
// [patch, n_cols]).
void gemm_i8_nn(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
                index_t m, index_t n, index_t k);

// Quantizes a float activation batch with a fixed (calibrated) grid.
QTensor quantize_activations(const Tensor& t, const QuantParams& params);

// Converts values already on the grid (fake-quantized floats, or im2col
// of such) to their integer codes: q = round(x / scale).  Exact when the
// inputs are grid multiples; zero padding maps to code 0.
void to_codes(const float* x, index_t n, const QuantParams& params,
              std::int8_t* codes);

}  // namespace qdnn::quantize
