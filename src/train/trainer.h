// Classification trainer: drives a Module (ResNet or any [N,C,H,W] →
// logits network) over an ImageDataset with the paper's augmentation and
// schedule, recording per-epoch statistics.  Divergence (non-finite loss)
// is detected and recorded rather than fatal — the Fig. 6 stability bench
// depends on observing it.
#pragma once

#include <functional>

#include "data/augment.h"
#include "data/synthetic_images.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "train/metrics.h"
#include "train/scheduler.h"

namespace qdnn::train {

struct TrainerConfig {
  index_t epochs = 10;
  index_t batch_size = 32;
  float lr = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
  float clip_norm = 0.0f;
  std::vector<index_t> lr_milestones;  // epochs where lr ×= 0.1
  index_t augment_pad = 2;             // 0 disables augmentation
  std::uint64_t seed = 99;
  // Stop early once test accuracy reaches this (0 disables) — lets the
  // benches bound wall-clock without changing the comparison.
  double target_accuracy = 0.0;
};

class Trainer {
 public:
  Trainer(nn::Module& model, TrainerConfig config);

  // Runs the full schedule; returns per-epoch stats (ends early on
  // divergence or target accuracy).
  std::vector<EpochStats> fit(const data::ImageDataset& train,
                              const data::ImageDataset& test);

  // Single evaluation pass (model left in eval mode).
  EpochStats evaluate(const data::ImageDataset& test);

  // Optional per-epoch observer (progress printing in benches).
  std::function<void(const EpochStats&)> on_epoch;

 private:
  nn::Module* model_;
  TrainerConfig config_;
  Sgd optimizer_;
  MultiStepLr scheduler_;
  Rng rng_;
  nn::CrossEntropyLoss loss_;
};

}  // namespace qdnn::train
