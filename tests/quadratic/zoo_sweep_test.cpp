// Zoo-wide invariants, swept over every neuron family (and over ranks for
// the ranked families) through the public factories.  Per-family math is
// pinned down in quad_dense_test / quad_conv_test; this file asserts the
// properties EVERY family must share, so adding a neuron kind without
// satisfying them fails here first.
#include <gtest/gtest.h>

#include <tuple>

#include "gradcheck_util.h"
#include "quadratic/quad_conv.h"
#include "quadratic/quad_dense.h"

namespace qdnn::quadratic {
namespace {

using qdnn::testing::gradcheck_module;
using qdnn::testing::random_tensor;

using SweepParam = std::tuple<NeuronKind, index_t>;  // (family, rank)

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  NeuronSpec spec = NeuronSpec::of(std::get<0>(info.param),
                                   std::get<1>(info.param));
  std::string name = spec.kind_name() + "_k" +
                     std::to_string(std::get<1>(info.param));
  for (char& c : name)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return name;
}

// Every family once; ranked families (low-rank, proposed, sum-only) at two
// ranks to cover the k-dependent code paths.
const SweepParam kSweep[] = {
    {NeuronKind::kLinear, 1},
    {NeuronKind::kGeneral, 1},
    {NeuronKind::kPure, 1},
    {NeuronKind::kBuKarpatne, 1},
    {NeuronKind::kQuad1, 1},
    {NeuronKind::kQuad2, 1},
    {NeuronKind::kKervolution, 1},
    {NeuronKind::kLowRank, 1},
    {NeuronKind::kLowRank, 9},
    {NeuronKind::kProposed, 1},
    {NeuronKind::kProposed, 9},
    {NeuronKind::kProposedSumOnly, 1},
    {NeuronKind::kProposedSumOnly, 9},
};

class ZooSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  NeuronSpec spec() const {
    return NeuronSpec::of(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
  // Smallest layer width ≥ `target` the family can actually produce — the
  // proposed neuron emits rank+1 channels per unit, so its widths must be
  // multiples of that.
  index_t compatible_width(index_t target) const {
    if (std::get<0>(GetParam()) != NeuronKind::kProposed) return target;
    const index_t per = std::get<1>(GetParam()) + 1;
    return ((target + per - 1) / per) * per;
  }
};

// ---------------------------------------------------------------------------
// Dense invariants
// ---------------------------------------------------------------------------

TEST_P(ZooSweep, DenseForwardShapeAndFiniteness) {
  Rng rng(101);
  auto layer = make_dense_neuron(spec(), 12, 20, rng, "fc");
  const Tensor x = random_tensor(Shape{6, 12}, 1);
  const Tensor y = layer->forward(x);
  EXPECT_EQ(y.shape(), Shape({6, 20}));
  EXPECT_TRUE(y.all_finite());
}

TEST_P(ZooSweep, DenseGradcheck) {
  Rng rng(102);
  auto layer = make_dense_neuron(spec(), 6, compatible_width(4), rng, "fc");
  layer->set_training(false);
  EXPECT_TRUE(gradcheck_module(*layer, random_tensor(Shape{3, 6}, 2)));
}

TEST_P(ZooSweep, DenseBatchInvariance) {
  // Neuron layers are per-sample maps: evaluating a stacked batch must
  // equal evaluating the samples separately.
  Rng rng(103);
  auto layer = make_dense_neuron(spec(), 8, 10, rng, "fc");
  const Tensor x = random_tensor(Shape{4, 8}, 3);
  const Tensor y_all = layer->forward(x);
  for (index_t s = 0; s < 4; ++s) {
    Tensor one{Shape{1, 8}};
    for (index_t j = 0; j < 8; ++j) one.at(0, j) = x.at(s, j);
    const Tensor y_one = layer->forward(one);
    for (index_t j = 0; j < 10; ++j)
      EXPECT_FLOAT_EQ(y_one.at(0, j), y_all.at(s, j))
          << "sample " << s << " col " << j;
  }
}

TEST_P(ZooSweep, DenseDeterministicForward) {
  Rng rng(104);
  auto layer = make_dense_neuron(spec(), 8, 10, rng, "fc");
  const Tensor x = random_tensor(Shape{2, 8}, 4);
  const Tensor y1 = layer->forward(x);
  const Tensor y2 = layer->forward(x);
  EXPECT_EQ(max_abs_diff(y1, y2), 0.0f);
}

TEST_P(ZooSweep, DenseGradAccumulatesAcrossBackwards) {
  // Two identical backward passes must exactly double every parameter
  // gradient (the optimizers rely on pure accumulation).
  Rng rng(105);
  const index_t width = compatible_width(4);
  auto layer = make_dense_neuron(spec(), 6, width, rng, "fc");
  const Tensor x = random_tensor(Shape{3, 6}, 5);
  const Tensor g = random_tensor(Shape{3, width}, 6);

  layer->zero_grad();
  layer->forward(x);
  layer->backward(g);
  std::vector<Tensor> once;
  for (auto* p : layer->parameters()) once.push_back(p->grad);

  layer->forward(x);
  layer->backward(g);
  auto params = layer->parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Tensor& twice = params[i]->grad;
    for (index_t j = 0; j < twice.numel(); ++j)
      EXPECT_NEAR(twice[j], 2.0f * once[i][j],
                  1e-4f * (1.0f + std::fabs(twice[j])))
          << params[i]->name << "[" << j << "]";
  }
}

// ---------------------------------------------------------------------------
// Conv invariants
// ---------------------------------------------------------------------------

TEST_P(ZooSweep, ConvForwardShape) {
  Rng rng(106);
  auto conv = make_conv_neuron(spec(), 3, 10, 3, 1, 1, rng, "conv");
  const Tensor x = random_tensor(Shape{2, 3, 7, 7}, 7);
  const Tensor y = conv->forward(x);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), conv_out_channels(spec(), 10));
  EXPECT_EQ(y.dim(2), 7);
  EXPECT_EQ(y.dim(3), 7);
  EXPECT_TRUE(y.all_finite());
}

TEST_P(ZooSweep, ConvGradcheck) {
  Rng rng(107);
  auto conv = make_conv_neuron(spec(), 2, 4, 3, 1, 1, rng, "conv");
  conv->set_training(false);
  EXPECT_TRUE(gradcheck_module(*conv, random_tensor(Shape{2, 2, 4, 4}, 8)));
}

TEST_P(ZooSweep, ConvTranslationEquivariance) {
  // All families are sliding-window neurons: shifting the input by one
  // pixel (away from borders) shifts the interior of the output by one.
  Rng rng(108);
  auto conv = make_conv_neuron(spec(), 1, 4, 3, 1, 0, rng, "conv");
  const index_t h = 9;
  Tensor x{Shape{1, 1, h, h}};
  Rng data_rng(9);
  data_rng.fill_uniform(x, -1.0f, 1.0f);
  // Shifted copy: x2[i][j] = x[i][j+1] (content moves left by one).
  Tensor x2{Shape{1, 1, h, h}};
  for (index_t i = 0; i < h; ++i)
    for (index_t j = 0; j + 1 < h; ++j) x2.at(0, 0, i, j) = x.at(0, 0, i, j + 1);

  const Tensor y = conv->forward(x);
  const Tensor y2 = conv->forward(x2);
  const index_t oh = y.dim(2);
  for (index_t c = 0; c < y.dim(1); ++c)
    for (index_t i = 0; i < oh; ++i)
      for (index_t j = 0; j + 2 < oh; ++j)
        EXPECT_NEAR(y2.at(0, c, i, j), y.at(0, c, i, j + 1), 1e-4f)
            << "channel " << c << " (" << i << ", " << j << ")";
}

TEST_P(ZooSweep, ConvStride2HalvesExtent) {
  Rng rng(109);
  auto conv = make_conv_neuron(spec(), 2, 4, 3, 2, 1, rng, "conv");
  const Tensor x = random_tensor(Shape{1, 2, 8, 8}, 10);
  const Tensor y = conv->forward(x);
  EXPECT_EQ(y.dim(2), 4);
  EXPECT_EQ(y.dim(3), 4);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ZooSweep, ::testing::ValuesIn(kSweep),
                         sweep_name);

}  // namespace
}  // namespace qdnn::quadratic
