#include "quadratic/quad_dense.h"

#include <cmath>

#include "linalg/gemm.h"
#include "nn/linear.h"
#include "quadratic/kervolution.h"

namespace qdnn::quadratic {

namespace {

// Output assembly shared by ProposedQuadraticDense::forward and
// ::forward_into — one definition so the training and serving paths can
// never drift.  Writes the per-unit interleave [y_u, f_u1..f_uk] (or just
// y_u in sum-only mode) from the linear responses `lin` [n, units] and
// intermediate features `f` [n, units*rank].
void assemble_proposed_dense(const float* lin, const float* f,
                             const float* lambda, const float* bias,
                             index_t n, index_t units, index_t rank,
                             bool emit_features, float* out) {
  const index_t uk = units * rank;
  const index_t per = emit_features ? rank + 1 : 1;
  const index_t out_w = units * per;
  for (index_t s = 0; s < n; ++s) {
    const float* f_row = f + s * uk;
    float* o_row = out + s * out_w;
    for (index_t u = 0; u < units; ++u) {
      const float* f_u = f_row + u * rank;
      const float* lam = lambda + u * rank;
      float y2 = 0.0f;
      for (index_t i = 0; i < rank; ++i) y2 += lam[i] * f_u[i] * f_u[i];
      float* o_u = o_row + u * per;
      o_u[0] = lin[s * units + u] + bias[u] + y2;
      if (emit_features)
        for (index_t i = 0; i < rank; ++i) o_u[1 + i] = f_u[i];
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ProposedQuadraticDense
// ---------------------------------------------------------------------------

ProposedQuadraticDense::ProposedQuadraticDense(index_t in_features,
                                               index_t units, index_t rank,
                                               Rng& rng,
                                               float lambda_lr_scale,
                                               std::string name,
                                               bool emit_features)
    : in_(in_features),
      units_(units),
      rank_(rank),
      emit_features_(emit_features),
      name_(std::move(name)),
      w_(name_ + ".w", Tensor{Shape{units, in_features}}),
      q_(name_ + ".q", Tensor{Shape{units * rank, in_features}}),
      lambda_(name_ + ".lambda", Tensor{Shape{units, rank}}),
      b_(name_ + ".b", Tensor{Shape{units}}) {
  QDNN_CHECK(in_features > 0 && units > 0 && rank > 0,
             name_ << ": dims must be positive");
  // w and each row of Qᵏ act as independent linear neurons of fan-in n
  // (Sec. III-B), so both get He initialization.
  nn::kaiming_normal(w_.value, in_, rng);
  nn::kaiming_normal(q_.value, in_, rng);
  nn::lambda_init(lambda_.value, rng);
  q_.group = "quadratic_q";
  lambda_.group = "quadratic_lambda";
  lambda_.lr_scale = lambda_lr_scale;
  lambda_.decay = false;
  b_.decay = false;
}

Tensor ProposedQuadraticDense::forward(const Tensor& input) {
  QDNN_CHECK_EQ(input.rank(), 2, name_ << ": expected [N, in]");
  QDNN_CHECK_EQ(input.dim(1), in_, name_ << ": in_features");
  cached_input_ = input;
  const index_t n = input.dim(0);
  const index_t uk = units_ * rank_;

  // Linear part y₁ = w x + b : [N, units]
  Tensor lin{Shape{n, units_}};
  linalg::gemm(false, true, n, units_, in_, 1.0f, input.data(), in_,
               w_.value.data(), in_, 0.0f, lin.data(), units_);
  // Intermediate features fᵏ = (Qᵏ)ᵀ x : [N, units*rank]
  cached_f_ = Tensor{Shape{n, uk}};
  linalg::gemm(false, true, n, uk, in_, 1.0f, input.data(), in_,
               q_.value.data(), in_, 0.0f, cached_f_.data(), uk);

  Tensor out{Shape{n, out_features()}};
  assemble_proposed_dense(lin.data(), cached_f_.data(),
                          lambda_.value.data(), b_.value.data(), n, units_,
                          rank_, emit_features_, out.data());
  return out;
}

Shape ProposedQuadraticDense::output_shape(const Shape& input_shape) const {
  QDNN_CHECK_EQ(input_shape.rank(), 2, name_ << ": expected [N, in]");
  QDNN_CHECK_EQ(input_shape[1], in_, name_ << ": in_features");
  return Shape{input_shape[0], out_features()};
}

void ProposedQuadraticDense::forward_into(const ConstTensorView& input,
                                          const TensorView& output, Workspace& ws) {
  QDNN_CHECK_EQ(input.rank(), 2, name_ << ": expected [N, in]");
  QDNN_CHECK_EQ(input.dim(1), in_, name_ << ": in_features");
  const index_t n = input.dim(0);
  const index_t uk = units_ * rank_;
  const index_t out_w = out_features();
  QDNN_CHECK(output.rank() == 2 && output.dim(0) == n &&
                 output.dim(1) == out_w,
             name_ << ": bad output view " << output.shape());

  // Same two GEMMs as forward(), with scratch (intermediates, plus weight
  // packs unless frozen) drawn from the workspace instead of fresh
  // tensors.
  float* lin = ws.alloc(n * units_);
  float* f = ws.alloc(n * uk);
  if (packed_w_.packed()) {
    linalg::gemm_prepacked(false, n, units_, in_, 1.0f, input.data(), in_,
                           packed_w_, 0.0f, lin, units_);
    linalg::gemm_prepacked(false, n, uk, in_, 1.0f, input.data(), in_,
                           packed_q_, 0.0f, f, uk);
  } else {
    linalg::gemm(false, true, n, units_, in_, 1.0f, input.data(), in_,
                 w_.value.data(), in_, 0.0f, lin, units_,
                 ws.alloc(linalg::gemm_scratch_floats(false, true, n,
                                                      units_, in_)));
    linalg::gemm(false, true, n, uk, in_, 1.0f, input.data(), in_,
                 q_.value.data(), in_, 0.0f, f, uk,
                 ws.alloc(linalg::gemm_scratch_floats(false, true, n, uk,
                                                      in_)));
  }

  assemble_proposed_dense(lin, f, lambda_.value.data(), b_.value.data(), n,
                          units_, rank_, emit_features_, output.data());
}

void ProposedQuadraticDense::freeze() {
  packed_w_.pack(/*trans=*/true, in_, units_, w_.value.data(), in_);
  packed_q_.pack(/*trans=*/true, in_, units_ * rank_, q_.value.data(), in_);
  cached_input_ = Tensor{};
  cached_f_ = Tensor{};
  Module::freeze();
}

void ProposedQuadraticDense::unfreeze() {
  packed_w_.clear();
  packed_q_.clear();
  Module::unfreeze();
}

Tensor ProposedQuadraticDense::backward(const Tensor& grad_output) {
  QDNN_CHECK(!cached_input_.empty(), name_ << ": backward before forward");
  const index_t n = cached_input_.dim(0);
  const index_t uk = units_ * rank_;
  QDNN_CHECK(grad_output.shape() == Shape({n, out_features()}),
             name_ << ": grad shape " << grad_output.shape());

  // Split the incoming gradient into the y-channel part g_y [N, units] and
  // the f-channel part; fold the quadratic chain rule into g_f:
  //   dL/df_i = g_f_i + 2 λ_i f_i g_y      (y = … + Σ λ_i f_i²)
  Tensor g_y{Shape{n, units_}};
  Tensor g_f{Shape{n, uk}};
  const index_t per = emit_features_ ? rank_ + 1 : 1;
  for (index_t s = 0; s < n; ++s) {
    const float* g_row = grad_output.data() + s * out_features();
    const float* f_row = cached_f_.data() + s * uk;
    for (index_t u = 0; u < units_; ++u) {
      const float* g_u = g_row + u * per;
      const float gy = g_u[0];
      g_y.at(s, u) = gy;
      b_.grad[u] += gy;
      const float* f_u = f_row + u * rank_;
      const float* lam = lambda_.value.data() + u * rank_;
      float* lam_g = lambda_.grad.data() + u * rank_;
      float* gf_u = g_f.data() + s * uk + u * rank_;
      for (index_t i = 0; i < rank_; ++i) {
        lam_g[i] += gy * f_u[i] * f_u[i];
        // In sum-only mode fᵏ has no emitted channel of its own.
        const float g_direct = emit_features_ ? g_u[1 + i] : 0.0f;
        gf_u[i] = g_direct + 2.0f * lam[i] * f_u[i] * gy;
      }
    }
  }

  // Parameter gradients via GEMM: dW += g_yᵀ x, dQ += g_fᵀ x.
  linalg::gemm(true, false, units_, in_, n, 1.0f, g_y.data(), units_,
               cached_input_.data(), in_, 1.0f, w_.grad.data(), in_);
  linalg::gemm(true, false, uk, in_, n, 1.0f, g_f.data(), uk,
               cached_input_.data(), in_, 1.0f, q_.grad.data(), in_);

  // Input gradient: dx = g_y W + g_f Q.
  Tensor grad_input{Shape{n, in_}};
  linalg::gemm(false, false, n, in_, units_, 1.0f, g_y.data(), units_,
               w_.value.data(), in_, 0.0f, grad_input.data(), in_);
  linalg::gemm(false, false, n, in_, uk, 1.0f, g_f.data(), uk,
               q_.value.data(), in_, 1.0f, grad_input.data(), in_);
  return grad_input;
}

std::vector<nn::Parameter*> ProposedQuadraticDense::parameters() {
  return {&w_, &q_, &lambda_, &b_};
}

// ---------------------------------------------------------------------------
// GeneralQuadraticDense
// ---------------------------------------------------------------------------

GeneralQuadraticDense::GeneralQuadraticDense(index_t in_features,
                                             index_t units, Rng& rng,
                                             bool include_linear,
                                             std::string name)
    : in_(in_features),
      units_(units),
      include_linear_(include_linear),
      name_(std::move(name)),
      m_(name_ + ".m", Tensor{Shape{units, in_features, in_features}}),
      w_(name_ + ".w",
         include_linear ? Tensor{Shape{units, in_features}} : Tensor{}),
      b_(name_ + ".b", include_linear ? Tensor{Shape{units}} : Tensor{}) {
  QDNN_CHECK(in_features > 0 && units > 0, name_ << ": dims positive");
  // The quadratic form scales like ‖x‖²·‖M‖, so M starts at 1/n scale.
  rng.fill_normal(m_.value, 0.0f, 1.0f / static_cast<float>(in_));
  m_.group = "quadratic_q";
  if (include_linear_) {
    nn::kaiming_normal(w_.value, in_, rng);
    b_.decay = false;
  }
}

Tensor GeneralQuadraticDense::forward(const Tensor& input) {
  QDNN_CHECK_EQ(input.rank(), 2, name_ << ": expected [N, in]");
  QDNN_CHECK_EQ(input.dim(1), in_, name_ << ": in_features");
  cached_input_ = input;
  const index_t n = input.dim(0);
  Tensor out{Shape{n, units_}};
  std::vector<float> mx(static_cast<std::size_t>(in_));
  for (index_t s = 0; s < n; ++s) {
    const float* x = input.data() + s * in_;
    for (index_t u = 0; u < units_; ++u) {
      const float* m_u = m_.value.data() + u * in_ * in_;
      linalg::gemv(false, in_, in_, 1.0f, m_u, in_, x, 0.0f, mx.data());
      float y = linalg::dot(x, mx.data(), in_);
      if (include_linear_)
        y += linalg::dot(w_.value.data() + u * in_, x, in_) + b_.value[u];
      out.at(s, u) = y;
    }
  }
  return out;
}

Shape GeneralQuadraticDense::output_shape(const Shape& input_shape) const {
  QDNN_CHECK_EQ(input_shape.rank(), 2, name_ << ": expected [N, in]");
  QDNN_CHECK_EQ(input_shape[1], in_, name_ << ": in_features");
  return Shape{input_shape[0], units_};
}

void GeneralQuadraticDense::forward_into(const ConstTensorView& input,
                                         const TensorView& output, Workspace& ws) {
  QDNN_CHECK_EQ(input.rank(), 2, name_ << ": expected [N, in]");
  QDNN_CHECK_EQ(input.dim(1), in_, name_ << ": in_features");
  const index_t n = input.dim(0);
  QDNN_CHECK(output.rank() == 2 && output.dim(0) == n &&
                 output.dim(1) == units_,
             name_ << ": bad output view " << output.shape());
  float* mx = ws.alloc(in_);
  for (index_t s = 0; s < n; ++s) {
    const float* x = input.data() + s * in_;
    for (index_t u = 0; u < units_; ++u) {
      const float* m_u = m_.value.data() + u * in_ * in_;
      linalg::gemv(false, in_, in_, 1.0f, m_u, in_, x, 0.0f, mx);
      float y = linalg::dot(x, mx, in_);
      if (include_linear_)
        y += linalg::dot(w_.value.data() + u * in_, x, in_) + b_.value[u];
      output.at(s, u) = y;
    }
  }
}

void GeneralQuadraticDense::freeze() {
  cached_input_ = Tensor{};
  Module::freeze();
}

Tensor GeneralQuadraticDense::backward(const Tensor& grad_output) {
  QDNN_CHECK(!cached_input_.empty(), name_ << ": backward before forward");
  const index_t n = cached_input_.dim(0);
  QDNN_CHECK(grad_output.shape() == Shape({n, units_}),
             name_ << ": grad shape");
  Tensor grad_input{Shape{n, in_}};
  std::vector<float> mx(static_cast<std::size_t>(in_));
  std::vector<float> mtx(static_cast<std::size_t>(in_));
  for (index_t s = 0; s < n; ++s) {
    const float* x = cached_input_.data() + s * in_;
    float* gx = grad_input.data() + s * in_;
    for (index_t u = 0; u < units_; ++u) {
      const float gy = grad_output.at(s, u);
      if (gy == 0.0f) continue;
      const float* m_u = m_.value.data() + u * in_ * in_;
      float* gm_u = m_.grad.data() + u * in_ * in_;
      // dM += g · x xᵀ ; dx += g (M + Mᵀ) x
      linalg::gemv(false, in_, in_, 1.0f, m_u, in_, x, 0.0f, mx.data());
      linalg::gemv(true, in_, in_, 1.0f, m_u, in_, x, 0.0f, mtx.data());
      for (index_t i = 0; i < in_; ++i) {
        const float gxi = gy * x[i];
        linalg::axpy(in_, gxi, x, gm_u + i * in_);
        gx[i] += gy * (mx[static_cast<std::size_t>(i)] +
                       mtx[static_cast<std::size_t>(i)]);
      }
      if (include_linear_) {
        linalg::axpy(in_, gy, x, w_.grad.data() + u * in_);
        linalg::axpy(in_, gy, w_.value.data() + u * in_, gx);
        b_.grad[u] += gy;
      }
    }
  }
  return grad_input;
}

std::vector<nn::Parameter*> GeneralQuadraticDense::parameters() {
  if (include_linear_) return {&m_, &w_, &b_};
  return {&m_};
}

// ---------------------------------------------------------------------------
// LowRankQuadraticDense
// ---------------------------------------------------------------------------

LowRankQuadraticDense::LowRankQuadraticDense(index_t in_features,
                                             index_t units, index_t rank,
                                             Rng& rng, std::string name)
    : in_(in_features),
      units_(units),
      rank_(rank),
      name_(std::move(name)),
      q1_(name_ + ".q1", Tensor{Shape{units * rank, in_features}}),
      q2_(name_ + ".q2", Tensor{Shape{units * rank, in_features}}),
      w_(name_ + ".w", Tensor{Shape{units, in_features}}),
      b_(name_ + ".b", Tensor{Shape{units}}) {
  QDNN_CHECK(in_features > 0 && units > 0 && rank > 0,
             name_ << ": dims positive");
  // Product of two factors: init each at 1/sqrt scale so xᵀQ₁Q₂ᵀx starts
  // small relative to the linear term.
  const float scale = 1.0f / static_cast<float>(in_);
  rng.fill_normal(q1_.value, 0.0f, std::sqrt(scale));
  rng.fill_normal(q2_.value, 0.0f, std::sqrt(scale));
  nn::kaiming_normal(w_.value, in_, rng);
  q1_.group = "quadratic_q";
  q2_.group = "quadratic_q";
  b_.decay = false;
}

Tensor LowRankQuadraticDense::forward(const Tensor& input) {
  QDNN_CHECK_EQ(input.rank(), 2, name_ << ": expected [N, in]");
  QDNN_CHECK_EQ(input.dim(1), in_, name_ << ": in_features");
  cached_input_ = input;
  const index_t n = input.dim(0);
  const index_t uk = units_ * rank_;

  cached_a_ = Tensor{Shape{n, uk}};
  cached_c_ = Tensor{Shape{n, uk}};
  linalg::gemm(false, true, n, uk, in_, 1.0f, input.data(), in_,
               q1_.value.data(), in_, 0.0f, cached_a_.data(), uk);
  linalg::gemm(false, true, n, uk, in_, 1.0f, input.data(), in_,
               q2_.value.data(), in_, 0.0f, cached_c_.data(), uk);

  Tensor out{Shape{n, units_}};
  linalg::gemm(false, true, n, units_, in_, 1.0f, input.data(), in_,
               w_.value.data(), in_, 0.0f, out.data(), units_);
  for (index_t s = 0; s < n; ++s)
    for (index_t u = 0; u < units_; ++u) {
      const float* a = cached_a_.data() + s * uk + u * rank_;
      const float* c = cached_c_.data() + s * uk + u * rank_;
      out.at(s, u) += linalg::dot(a, c, rank_) + b_.value[u];
    }
  return out;
}

Shape LowRankQuadraticDense::output_shape(const Shape& input_shape) const {
  QDNN_CHECK_EQ(input_shape.rank(), 2, name_ << ": expected [N, in]");
  QDNN_CHECK_EQ(input_shape[1], in_, name_ << ": in_features");
  return Shape{input_shape[0], units_};
}

void LowRankQuadraticDense::forward_into(const ConstTensorView& input,
                                         const TensorView& output, Workspace& ws) {
  QDNN_CHECK_EQ(input.rank(), 2, name_ << ": expected [N, in]");
  QDNN_CHECK_EQ(input.dim(1), in_, name_ << ": in_features");
  const index_t n = input.dim(0);
  const index_t uk = units_ * rank_;
  QDNN_CHECK(output.rank() == 2 && output.dim(0) == n &&
                 output.dim(1) == units_,
             name_ << ": bad output view " << output.shape());

  float* a = ws.alloc(n * uk);
  float* c = ws.alloc(n * uk);
  if (packed_w_.packed()) {
    linalg::gemm_prepacked(false, n, uk, in_, 1.0f, input.data(), in_,
                           packed_q1_, 0.0f, a, uk);
    linalg::gemm_prepacked(false, n, uk, in_, 1.0f, input.data(), in_,
                           packed_q2_, 0.0f, c, uk);
    linalg::gemm_prepacked(false, n, units_, in_, 1.0f, input.data(), in_,
                           packed_w_, 0.0f, output.data(), units_);
  } else {
    linalg::gemm(false, true, n, uk, in_, 1.0f, input.data(), in_,
                 q1_.value.data(), in_, 0.0f, a, uk,
                 ws.alloc(linalg::gemm_scratch_floats(false, true, n, uk,
                                                      in_)));
    linalg::gemm(false, true, n, uk, in_, 1.0f, input.data(), in_,
                 q2_.value.data(), in_, 0.0f, c, uk,
                 ws.alloc(linalg::gemm_scratch_floats(false, true, n, uk,
                                                      in_)));
    linalg::gemm(false, true, n, units_, in_, 1.0f, input.data(), in_,
                 w_.value.data(), in_, 0.0f, output.data(), units_,
                 ws.alloc(linalg::gemm_scratch_floats(false, true, n,
                                                      units_, in_)));
  }
  for (index_t s = 0; s < n; ++s)
    for (index_t u = 0; u < units_; ++u) {
      const float* a_u = a + s * uk + u * rank_;
      const float* c_u = c + s * uk + u * rank_;
      output.at(s, u) += linalg::dot(a_u, c_u, rank_) + b_.value[u];
    }
}

void LowRankQuadraticDense::freeze() {
  const index_t uk = units_ * rank_;
  packed_q1_.pack(/*trans=*/true, in_, uk, q1_.value.data(), in_);
  packed_q2_.pack(/*trans=*/true, in_, uk, q2_.value.data(), in_);
  packed_w_.pack(/*trans=*/true, in_, units_, w_.value.data(), in_);
  cached_input_ = Tensor{};
  cached_a_ = Tensor{};
  cached_c_ = Tensor{};
  Module::freeze();
}

void LowRankQuadraticDense::unfreeze() {
  packed_q1_.clear();
  packed_q2_.clear();
  packed_w_.clear();
  Module::unfreeze();
}

Tensor LowRankQuadraticDense::backward(const Tensor& grad_output) {
  QDNN_CHECK(!cached_input_.empty(), name_ << ": backward before forward");
  const index_t n = cached_input_.dim(0);
  const index_t uk = units_ * rank_;
  QDNN_CHECK(grad_output.shape() == Shape({n, units_}),
             name_ << ": grad shape");

  // y = a·c + wᵀx + b with a = Q₁ᵀx, c = Q₂ᵀx:
  //   dL/da = g·c, dL/dc = g·a, then dQ₁ += (dL/da)ᵀ x etc.
  Tensor g_a{Shape{n, uk}};
  Tensor g_c{Shape{n, uk}};
  for (index_t s = 0; s < n; ++s)
    for (index_t u = 0; u < units_; ++u) {
      const float gy = grad_output.at(s, u);
      b_.grad[u] += gy;
      const float* a = cached_a_.data() + s * uk + u * rank_;
      const float* c = cached_c_.data() + s * uk + u * rank_;
      float* ga = g_a.data() + s * uk + u * rank_;
      float* gc = g_c.data() + s * uk + u * rank_;
      for (index_t i = 0; i < rank_; ++i) {
        ga[i] = gy * c[i];
        gc[i] = gy * a[i];
      }
    }

  linalg::gemm(true, false, uk, in_, n, 1.0f, g_a.data(), uk,
               cached_input_.data(), in_, 1.0f, q1_.grad.data(), in_);
  linalg::gemm(true, false, uk, in_, n, 1.0f, g_c.data(), uk,
               cached_input_.data(), in_, 1.0f, q2_.grad.data(), in_);
  linalg::gemm(true, false, units_, in_, n, 1.0f, grad_output.data(),
               units_, cached_input_.data(), in_, 1.0f, w_.grad.data(), in_);

  Tensor grad_input{Shape{n, in_}};
  linalg::gemm(false, false, n, in_, uk, 1.0f, g_a.data(), uk,
               q1_.value.data(), in_, 0.0f, grad_input.data(), in_);
  linalg::gemm(false, false, n, in_, uk, 1.0f, g_c.data(), uk,
               q2_.value.data(), in_, 1.0f, grad_input.data(), in_);
  linalg::gemm(false, false, n, in_, units_, 1.0f, grad_output.data(),
               units_, w_.value.data(), in_, 1.0f, grad_input.data(), in_);
  return grad_input;
}

std::vector<nn::Parameter*> LowRankQuadraticDense::parameters() {
  return {&q1_, &q2_, &w_, &b_};
}

// ---------------------------------------------------------------------------
// FactoredQuadraticDense
// ---------------------------------------------------------------------------

FactoredQuadraticDense::FactoredQuadraticDense(index_t in_features,
                                               index_t units,
                                               NeuronKind mode, Rng& rng,
                                               std::string name)
    : in_(in_features), units_(units), mode_(mode), name_(std::move(name)) {
  QDNN_CHECK(mode == NeuronKind::kQuad1 || mode == NeuronKind::kQuad2 ||
                 mode == NeuronKind::kBuKarpatne,
             name_ << ": mode must be a rank-1 factored family");
  QDNN_CHECK(in_features > 0 && units > 0, name_ << ": dims positive");
  w1_ = nn::Parameter(name_ + ".w1", Tensor{Shape{units, in_features}});
  w2_ = nn::Parameter(name_ + ".w2", Tensor{Shape{units, in_features}});
  // The product (w₁ᵀx)(w₂ᵀx) needs each factor at 1/sqrt scale of the
  // usual He stddev so the product has unit-appropriate variance.
  const float f_std = std::sqrt(1.0f / static_cast<float>(in_));
  rng.fill_normal(w1_.value, 0.0f, f_std);
  rng.fill_normal(w2_.value, 0.0f, f_std);
  w1_.group = "quadratic_q";
  w2_.group = "quadratic_q";
  if (has_w3()) {
    w3_ = nn::Parameter(name_ + ".w3", Tensor{Shape{units, in_features}});
    nn::kaiming_normal(w3_.value, in_, rng);
  }
  if (has_inner_bias()) {
    b1_ = nn::Parameter(name_ + ".b1", Tensor{Shape{units}});
    b2_ = nn::Parameter(name_ + ".b2", Tensor{Shape{units}});
    b1_.decay = false;
    b2_.decay = false;
  }
  c_ = nn::Parameter(name_ + ".c", Tensor{Shape{units}});
  c_.decay = false;
}

Tensor FactoredQuadraticDense::forward(const Tensor& input) {
  QDNN_CHECK_EQ(input.rank(), 2, name_ << ": expected [N, in]");
  QDNN_CHECK_EQ(input.dim(1), in_, name_ << ": in_features");
  cached_input_ = input;
  const index_t n = input.dim(0);

  cached_a_ = Tensor{Shape{n, units_}};
  cached_b_ = Tensor{Shape{n, units_}};
  linalg::gemm(false, true, n, units_, in_, 1.0f, input.data(), in_,
               w1_.value.data(), in_, 0.0f, cached_a_.data(), units_);
  linalg::gemm(false, true, n, units_, in_, 1.0f, input.data(), in_,
               w2_.value.data(), in_, 0.0f, cached_b_.data(), units_);
  if (has_inner_bias()) {
    for (index_t s = 0; s < n; ++s)
      for (index_t u = 0; u < units_; ++u) {
        cached_a_.at(s, u) += b1_.value[u];
        cached_b_.at(s, u) += b2_.value[u];
      }
  }

  Tensor out{Shape{n, units_}};
  if (has_w3()) {
    if (squares_input()) {
      // w₃ᵀ(x ⊙ x)
      Tensor x2 = hadamard(input, input);
      linalg::gemm(false, true, n, units_, in_, 1.0f, x2.data(), in_,
                   w3_.value.data(), in_, 0.0f, out.data(), units_);
    } else {
      linalg::gemm(false, true, n, units_, in_, 1.0f, input.data(), in_,
                   w3_.value.data(), in_, 0.0f, out.data(), units_);
    }
  }
  for (index_t s = 0; s < n; ++s)
    for (index_t u = 0; u < units_; ++u) {
      float y = out.at(s, u) + cached_a_.at(s, u) * cached_b_.at(s, u) +
                c_.value[u];
      if (mode_ == NeuronKind::kBuKarpatne) y += cached_a_.at(s, u);
      out.at(s, u) = y;
    }
  return out;
}

Shape FactoredQuadraticDense::output_shape(const Shape& input_shape) const {
  QDNN_CHECK_EQ(input_shape.rank(), 2, name_ << ": expected [N, in]");
  QDNN_CHECK_EQ(input_shape[1], in_, name_ << ": in_features");
  return Shape{input_shape[0], units_};
}

void FactoredQuadraticDense::forward_into(const ConstTensorView& input,
                                          const TensorView& output, Workspace& ws) {
  QDNN_CHECK_EQ(input.rank(), 2, name_ << ": expected [N, in]");
  QDNN_CHECK_EQ(input.dim(1), in_, name_ << ": in_features");
  const index_t n = input.dim(0);
  QDNN_CHECK(output.rank() == 2 && output.dim(0) == n &&
                 output.dim(1) == units_,
             name_ << ": bad output view " << output.shape());

  const bool pre = packed_w1_.packed();
  float* a = ws.alloc(n * units_);
  if (pre) {
    linalg::gemm_prepacked(false, n, units_, in_, 1.0f, input.data(), in_,
                           packed_w1_, 0.0f, a, units_);
  } else {
    linalg::gemm(false, true, n, units_, in_, 1.0f, input.data(), in_,
                 w1_.value.data(), in_, 0.0f, a, units_,
                 ws.alloc(linalg::gemm_scratch_floats(false, true, n,
                                                      units_, in_)));
  }
  float* b = ws.alloc(n * units_);
  if (pre) {
    linalg::gemm_prepacked(false, n, units_, in_, 1.0f, input.data(), in_,
                           packed_w2_, 0.0f, b, units_);
  } else {
    linalg::gemm(false, true, n, units_, in_, 1.0f, input.data(), in_,
                 w2_.value.data(), in_, 0.0f, b, units_,
                 ws.alloc(linalg::gemm_scratch_floats(false, true, n,
                                                      units_, in_)));
  }
  if (has_inner_bias()) {
    for (index_t s = 0; s < n; ++s)
      for (index_t u = 0; u < units_; ++u) {
        a[s * units_ + u] += b1_.value[u];
        b[s * units_ + u] += b2_.value[u];
      }
  }

  if (has_w3()) {
    const float* w3_in = input.data();
    if (squares_input()) {
      // w₃ᵀ(x ⊙ x)
      float* x2 = ws.alloc(n * in_);
      for (index_t i = 0; i < n * in_; ++i)
        x2[i] = input.data()[i] * input.data()[i];
      w3_in = x2;
    }
    if (pre) {
      linalg::gemm_prepacked(false, n, units_, in_, 1.0f, w3_in, in_,
                             packed_w3_, 0.0f, output.data(), units_);
    } else {
      linalg::gemm(false, true, n, units_, in_, 1.0f, w3_in, in_,
                   w3_.value.data(), in_, 0.0f, output.data(), units_,
                   ws.alloc(linalg::gemm_scratch_floats(false, true, n,
                                                        units_, in_)));
    }
  } else {
    output.zero();
  }
  for (index_t s = 0; s < n; ++s)
    for (index_t u = 0; u < units_; ++u) {
      const float av = a[s * units_ + u], bv = b[s * units_ + u];
      float y = output.at(s, u) + av * bv + c_.value[u];
      if (mode_ == NeuronKind::kBuKarpatne) y += av;
      output.at(s, u) = y;
    }
}

void FactoredQuadraticDense::freeze() {
  packed_w1_.pack(/*trans=*/true, in_, units_, w1_.value.data(), in_);
  packed_w2_.pack(/*trans=*/true, in_, units_, w2_.value.data(), in_);
  if (has_w3())
    packed_w3_.pack(/*trans=*/true, in_, units_, w3_.value.data(), in_);
  cached_input_ = Tensor{};
  cached_a_ = Tensor{};
  cached_b_ = Tensor{};
  Module::freeze();
}

void FactoredQuadraticDense::unfreeze() {
  packed_w1_.clear();
  packed_w2_.clear();
  packed_w3_.clear();
  Module::unfreeze();
}

Tensor FactoredQuadraticDense::backward(const Tensor& grad_output) {
  QDNN_CHECK(!cached_input_.empty(), name_ << ": backward before forward");
  const index_t n = cached_input_.dim(0);
  QDNN_CHECK(grad_output.shape() == Shape({n, units_}),
             name_ << ": grad shape");

  Tensor g_a{Shape{n, units_}};
  Tensor g_b{Shape{n, units_}};
  for (index_t s = 0; s < n; ++s)
    for (index_t u = 0; u < units_; ++u) {
      const float gy = grad_output.at(s, u);
      c_.grad[u] += gy;
      float ga = gy * cached_b_.at(s, u);
      const float gb = gy * cached_a_.at(s, u);
      if (mode_ == NeuronKind::kBuKarpatne) ga += gy;  // + w₁ᵀx term
      g_a.at(s, u) = ga;
      g_b.at(s, u) = gb;
      if (has_inner_bias()) {
        b1_.grad[u] += ga;
        b2_.grad[u] += gb;
      }
    }

  linalg::gemm(true, false, units_, in_, n, 1.0f, g_a.data(), units_,
               cached_input_.data(), in_, 1.0f, w1_.grad.data(), in_);
  linalg::gemm(true, false, units_, in_, n, 1.0f, g_b.data(), units_,
               cached_input_.data(), in_, 1.0f, w2_.grad.data(), in_);

  Tensor grad_input{Shape{n, in_}};
  linalg::gemm(false, false, n, in_, units_, 1.0f, g_a.data(), units_,
               w1_.value.data(), in_, 0.0f, grad_input.data(), in_);
  linalg::gemm(false, false, n, in_, units_, 1.0f, g_b.data(), units_,
               w2_.value.data(), in_, 1.0f, grad_input.data(), in_);

  if (has_w3()) {
    if (squares_input()) {
      const Tensor x2 = hadamard(cached_input_, cached_input_);
      linalg::gemm(true, false, units_, in_, n, 1.0f, grad_output.data(),
                   units_, x2.data(), in_, 1.0f, w3_.grad.data(), in_);
      // d/dx of w₃ᵀ(x⊙x) = 2 x ⊙ (g W₃)
      Tensor gw3{Shape{n, in_}};
      linalg::gemm(false, false, n, in_, units_, 1.0f, grad_output.data(),
                   units_, w3_.value.data(), in_, 0.0f, gw3.data(), in_);
      for (index_t i = 0; i < grad_input.numel(); ++i)
        grad_input[i] += 2.0f * gw3[i] * cached_input_[i];
    } else {
      linalg::gemm(true, false, units_, in_, n, 1.0f, grad_output.data(),
                   units_, cached_input_.data(), in_, 1.0f,
                   w3_.grad.data(), in_);
      linalg::gemm(false, false, n, in_, units_, 1.0f, grad_output.data(),
                   units_, w3_.value.data(), in_, 1.0f, grad_input.data(),
                   in_);
    }
  }
  return grad_input;
}

std::vector<nn::Parameter*> FactoredQuadraticDense::parameters() {
  std::vector<nn::Parameter*> params{&w1_, &w2_};
  if (has_w3()) params.push_back(&w3_);
  if (has_inner_bias()) {
    params.push_back(&b1_);
    params.push_back(&b2_);
  }
  params.push_back(&c_);
  return params;
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

nn::ModulePtr make_dense_neuron(const NeuronSpec& spec, index_t in_features,
                                index_t out_features, Rng& rng,
                                std::string name) {
  switch (spec.kind) {
    case NeuronKind::kLinear:
      return std::make_unique<nn::Linear>(in_features, out_features, rng,
                                          true, std::move(name));
    case NeuronKind::kGeneral:
      return std::make_unique<GeneralQuadraticDense>(
          in_features, out_features, rng, true, std::move(name));
    case NeuronKind::kPure:
      return std::make_unique<GeneralQuadraticDense>(
          in_features, out_features, rng, false, std::move(name));
    case NeuronKind::kLowRank:
      return std::make_unique<LowRankQuadraticDense>(
          in_features, out_features, spec.rank, rng, std::move(name));
    case NeuronKind::kQuad1:
    case NeuronKind::kQuad2:
    case NeuronKind::kBuKarpatne:
      return std::make_unique<FactoredQuadraticDense>(
          in_features, out_features, spec.kind, rng, std::move(name));
    case NeuronKind::kKervolution:
      return std::make_unique<KervolutionDense>(
          in_features, out_features, spec.kerv_degree, spec.kerv_c, rng,
          std::move(name));
    case NeuronKind::kProposed: {
      const index_t per = spec.rank + 1;
      QDNN_CHECK(out_features % per == 0,
                 name << ": out_features " << out_features
                      << " not a multiple of rank+1 = " << per);
      return std::make_unique<ProposedQuadraticDense>(
          in_features, out_features / per, spec.rank, rng,
          spec.lambda_lr_scale, std::move(name));
    }
    case NeuronKind::kProposedSumOnly:
      return std::make_unique<ProposedQuadraticDense>(
          in_features, out_features, spec.rank, rng, spec.lambda_lr_scale,
          std::move(name), /*emit_features=*/false);
  }
  QDNN_CHECK(false, "make_dense_neuron: unknown kind");
  return nullptr;
}

}  // namespace qdnn::quadratic
