#include "quantize/qtensor.h"

#include <algorithm>
#include <cmath>

namespace qdnn::quantize {

namespace {

// Clamp-and-round one value onto the grid.
std::int8_t to_grid(float x, const QuantParams& p) {
  const float qmax = static_cast<float>(p.qmax());
  float q = std::nearbyint(x / p.scale);
  q = std::clamp(q, -qmax, qmax);
  return static_cast<std::int8_t>(q);
}

void check_bits(int bits) {
  QDNN_CHECK(bits >= 2 && bits <= 8,
             "quantization bits must be in [2, 8], got " << bits);
}

}  // namespace

QuantParams choose_params_absmax(const float* data, index_t n, int bits) {
  check_bits(bits);
  float absmax = 0.0f;
  for (index_t i = 0; i < n; ++i)
    absmax = std::max(absmax, std::fabs(data[i]));
  QuantParams p;
  p.bits = bits;
  p.scale = absmax > 0.0f ? absmax / static_cast<float>(p.qmax()) : 1.0f;
  return p;
}

QuantParams choose_params_percentile(const float* data, index_t n, int bits,
                                     double percentile) {
  check_bits(bits);
  QDNN_CHECK(percentile > 0.0 && percentile <= 1.0,
             "percentile must be in (0, 1], got " << percentile);
  if (n == 0) return QuantParams{1.0f, bits};
  std::vector<float> mags(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) mags[static_cast<std::size_t>(i)] = std::fabs(data[i]);
  const auto idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(n) - 1.0,
                       percentile * static_cast<double>(n - 1)));
  std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(idx),
                   mags.end());
  const float clip = mags[idx];
  QuantParams p;
  p.bits = bits;
  p.scale = clip > 0.0f ? clip / static_cast<float>(p.qmax()) : 1.0f;
  return p;
}

index_t QTensor::storage_bytes() const {
  // ceil(numel·bits/8) payload + one fp32 scale.
  const index_t payload = (numel() * params.bits + 7) / 8;
  return payload + static_cast<index_t>(sizeof(float));
}

index_t QTensorPerChannel::storage_bytes() const {
  if (params.empty()) return 0;
  const index_t bits = params.front().bits;
  const index_t payload = (static_cast<index_t>(data.size()) * bits + 7) / 8;
  return payload + rows() * static_cast<index_t>(sizeof(float));
}

QTensor quantize(const Tensor& t, int bits) {
  return quantize(t, choose_params_absmax(t.data(), t.numel(), bits));
}

QTensor quantize(const Tensor& t, const QuantParams& params) {
  check_bits(params.bits);
  QTensor q;
  q.shape = t.shape();
  q.params = params;
  q.data.resize(static_cast<std::size_t>(t.numel()));
  for (index_t i = 0; i < t.numel(); ++i)
    q.data[static_cast<std::size_t>(i)] = to_grid(t[i], params);
  return q;
}

QTensorPerChannel quantize_per_channel(const Tensor& t, int bits) {
  check_bits(bits);
  QDNN_CHECK(t.rank() >= 2, "per-channel quantization needs rank >= 2, got "
                                << t.shape());
  const index_t rows = t.dim(0);
  const index_t row_size = t.numel() / rows;
  QTensorPerChannel q;
  q.shape = t.shape();
  q.data.resize(static_cast<std::size_t>(t.numel()));
  q.params.reserve(static_cast<std::size_t>(rows));
  for (index_t r = 0; r < rows; ++r) {
    const float* row = t.data() + r * row_size;
    const QuantParams p = choose_params_absmax(row, row_size, bits);
    for (index_t j = 0; j < row_size; ++j)
      q.data[static_cast<std::size_t>(r * row_size + j)] = to_grid(row[j], p);
    q.params.push_back(p);
  }
  return q;
}

Tensor dequantize(const QTensor& q) {
  Tensor out(q.shape);
  for (index_t i = 0; i < out.numel(); ++i)
    out[i] = static_cast<float>(q.data[static_cast<std::size_t>(i)]) *
             q.params.scale;
  return out;
}

Tensor dequantize(const QTensorPerChannel& q) {
  Tensor out(q.shape);
  const index_t row_size = q.row_size();
  for (index_t r = 0; r < q.rows(); ++r) {
    const float s = q.params[static_cast<std::size_t>(r)].scale;
    for (index_t j = 0; j < row_size; ++j) {
      const index_t i = r * row_size + j;
      out[i] = static_cast<float>(q.data[static_cast<std::size_t>(i)]) * s;
    }
  }
  return out;
}

Tensor fake_quantize(const Tensor& t, int bits) {
  return dequantize(quantize(t, bits));
}

Tensor fake_quantize_per_channel(const Tensor& t, int bits) {
  return dequantize(quantize_per_channel(t, bits));
}

QuantError quantization_error(const Tensor& t, int bits) {
  const QTensor q = quantize(t, bits);
  const Tensor back = dequantize(q);
  QuantError e;
  e.scale = q.params.scale;
  double sq = 0.0;
  for (index_t i = 0; i < t.numel(); ++i) {
    const float d = std::fabs(t[i] - back[i]);
    e.max_abs = std::max(e.max_abs, d);
    sq += static_cast<double>(d) * d;
  }
  e.rmse = t.numel() > 0
               ? static_cast<float>(std::sqrt(sq / static_cast<double>(t.numel())))
               : 0.0f;
  return e;
}

}  // namespace qdnn::quantize
