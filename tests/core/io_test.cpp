#include "core/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/rng.h"

namespace qdnn {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("qdnn_io_" + name))
      .string();
}

TEST(Io, CsvWritesHeaderAndRows) {
  const std::string path = temp_path("table.csv");
  {
    CsvWriter csv(path, {"a", "b"});
    csv.write_row(std::vector<std::string>{"1", "x"});
    csv.write_row(std::vector<double>{2.5, 3.5});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,x");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 4), "2.50");
  std::remove(path.c_str());
}

TEST(Io, CsvCreatesParentDirectories) {
  const std::string dir = temp_path("nested_dir");
  const std::string path = dir + "/deep/file.csv";
  {
    CsvWriter csv(path, {"h"});
  }
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir);
}

TEST(Io, PgmRoundTripHeader) {
  const std::string path = temp_path("img.pgm");
  Tensor img{Shape{4, 6}};
  for (index_t i = 0; i < img.numel(); ++i)
    img[i] = static_cast<float>(i);
  write_pgm(path, img);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 6);
  EXPECT_EQ(h, 4);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::vector<unsigned char> pixels(24);
  in.read(reinterpret_cast<char*>(pixels.data()), 24);
  EXPECT_EQ(pixels[0], 0);      // min maps to 0
  EXPECT_EQ(pixels[23], 255);   // max maps to 255
  std::remove(path.c_str());
}

TEST(Io, PgmRejectsWrongRank) {
  Tensor t{Shape{2, 2, 2}};
  EXPECT_THROW(write_pgm(temp_path("bad.pgm"), t), std::runtime_error);
}

TEST(Io, TensorSaveLoadRoundTrip) {
  const std::string path = temp_path("tensor.bin");
  Rng rng(3);
  Tensor t{Shape{3, 5, 2}};
  rng.fill_normal(t, 0.0f, 1.0f);
  save_tensor(path, t);
  const Tensor loaded = load_tensor(path);
  EXPECT_EQ(loaded.shape(), t.shape());
  EXPECT_EQ(max_abs_diff(loaded, t), 0.0f);
  std::remove(path.c_str());
}

TEST(Io, LoadRejectsBadMagic) {
  const std::string path = temp_path("junk.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a tensor";
  }
  EXPECT_THROW(load_tensor(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Io, LoadMissingFileThrows) {
  EXPECT_THROW(load_tensor(temp_path("does_not_exist.bin")),
               std::runtime_error);
}

}  // namespace
}  // namespace qdnn
