// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// The paper's construction (Sec. III-A) rests on the spectral theorem:
// a real symmetric quadratic matrix M factorizes as M = Q Λ Qᵀ with
// orthonormal Q.  Jacobi iteration is the right tool at neuron sizes
// (n = C_in·K² is at most a few thousand): it is simple, numerically
// robust, and delivers orthonormal eigenvectors to machine precision.
#pragma once

#include "core/tensor.h"

namespace qdnn::linalg {

struct EigResult {
  // Eigenvalues sorted in descending order of magnitude — the order the
  // paper's top-k selection uses (PCA-style, Sec. III-A).
  Tensor eigenvalues;   // [n]
  // Column i of eigenvectors is the unit eigenvector for eigenvalues[i].
  Tensor eigenvectors;  // [n, n]
};

// Decomposes a symmetric matrix.  The input is validated for symmetry up
// to `symmetry_tol` (pass a large value to skip, e.g. after symmetrize()).
EigResult eigh(const Tensor& m, double symmetry_tol = 1e-4);

// Lemma 1: returns (M + Mᵀ)/2, the unique symmetric matrix with the same
// quadratic form xᵀMx.
Tensor symmetrize(const Tensor& m);

// Reconstructs Q diag(λ) Qᵀ from a (possibly truncated) eigensystem:
// q is [n, k], lambda is [k].
Tensor reconstruct(const Tensor& q, const Tensor& lambda);

// Frobenius norm of a matrix.
double frobenius_norm(const Tensor& m);

// Evaluates the quadratic form xᵀ M x (reference implementation).
double quadratic_form(const Tensor& m, const Tensor& x);

}  // namespace qdnn::linalg
