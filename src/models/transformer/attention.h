// Multi-head scaled-dot-product attention with pluggable projections.
//
// The paper's Table II experiment deploys the proposed quadratic neuron in
// "all linear projection operators in the multi-head attention blocks", so
// the four projections (Q, K, V, output) are built through
// quadratic::make_dense_neuron and can be linear or proposed-quadratic.
// The quadratic configuration uses a reduced projection width — the
// quadratic neurons' higher expressivity per output is what lets the model
// shed >20% of its parameters at equal/better BLEU.
//
// Shapes: training activations flow flattened as [N·T, D] with batch/time
// dims passed explicitly; padding is handled with per-sample key lengths
// and `causal` masks future positions (decoder self-attention).
//
// MultiHeadAttention is also a Module: the single-input overrides treat
// [N, T, D] input as full-length non-causal *self*-attention — the
// encoder serving stage.  forward_into is native (projections, scores and
// context all live in the workspace) so a flattened encoder pipeline runs
// allocation-free; the score/softmax/context kernel is shared with the
// training forward so the two paths cannot drift.
//
// The incremental (KV-cached) decoding API serves autoregressive steps:
// self_attend_step projects one new token per sample, appends its K/V
// into a caller-owned cache and attends over the cached prefix (causal
// masking is implicit in the cache length); project_kv materializes the
// encoder-side K/V once so cross_attend_step reuses them every step.
// Both step kernels take PER-ROW cache lengths — each sample carries its
// own ring position (self) / source length (cross), so rows admitted at
// different times coexist in one gemm-backed batch step (continuous
// batching).  Rows behind the batch maximum mask the tail with -1e30
// scores, which softmax turns into exact zeros — so every row is
// bit-identical to a solo pass of just that row.  Both step kernels run
// through the same score/softmax/context code as the training forward
// and are bit-identical to the matching row of a full-prefix pass.
#pragma once

#include <memory>

#include "nn/module.h"
#include "quadratic/quad_dense.h"

namespace qdnn::models {

// Paged KV addressing for the step kernels (PR 10): token position j of
// sample s lives at
//   pool + table[s·pages_per_row + j/page_tokens]·page_floats
//        + slice_offset + (j mod page_tokens)·proj_dim
// where `table` is the session's per-row page table over a
// runtime::KvPagePool and `slice_offset` selects this tensor's K-or-V
// slice of one layer inside the page.  page_tokens must be a power of
// two (the kernels resolve j with shift/mask, never a divide).  Unmapped
// table entries point at the pool's sentinel page; the masked-score /
// zero-weight contract guarantees live rows never read past what they
// mapped, so the indirection changes ADDRESSES only — the reduction
// order (and therefore every bit) is identical to the dense layout.
struct PagedKvView {
  float* pool = nullptr;           // pool storage base (page 0 = sentinel)
  const index_t* table = nullptr;  // [N, pages_per_row] page ids
  index_t page_floats = 0;         // floats per page
  index_t pages_per_row = 0;       // table entries per sample
  index_t page_tokens = 0;         // token rows per page (power of two)
  index_t slice_offset = 0;        // this K-or-V slice within a page
  bool valid() const { return pool != nullptr && table != nullptr; }
};

class MultiHeadAttention : public nn::Module {
 public:
  // proj_dim: total width of the Q/K/V projections (split across heads).
  // Must be divisible by n_heads (and by rank+1 for the proposed neuron).
  MultiHeadAttention(index_t d_model, index_t n_heads, index_t proj_dim,
                     const quadratic::NeuronSpec& spec, Rng& rng,
                     std::string name);

  // --- training API ------------------------------------------------------

  // q_input: [N·Tq, D]; kv_input: [N·Tk, D].  kv_lengths[i] = number of
  // valid (non-pad) key positions for sample i (Tk for all if empty).
  Tensor forward(const Tensor& q_input, const Tensor& kv_input, index_t n,
                 index_t tq, index_t tk, bool causal,
                 const std::vector<index_t>& kv_lengths);

  // Returns {grad_q_input, grad_kv_input}.  (Named distinctly from the
  // Module backward override, which differs only in return type.)
  std::pair<Tensor, Tensor> backward_qkv(const Tensor& grad_output);

  // --- Module API (self-attention on [N, T, D]) --------------------------

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override;
  bool supports_forward_into() const override;
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;

  // Key-padding-masked native self-attention on [N, T, D].
  // kv_lengths[s] = number of valid (non-pad) key positions for sample s,
  // each in [1, T] (null: all T valid).  Masked tails score -1e30 →
  // exact-zero softmax weights, so each row is bit-identical to the
  // training forward() on the same ragged batch.  Runs entirely from `ws`
  // (never touches the training caches), so concurrent calls against one
  // module are safe.  forward_into delegates here with kv_lengths = null.
  void self_forward_into(const ConstTensorView& input,
                         const TensorView& output,
                         const index_t* kv_lengths, Workspace& ws);

  void freeze() override;
  void unfreeze() override;

  // --- incremental (KV-cached) decoding API ------------------------------
  //
  // All three entry points are allocation-free (scratch from `ws` only),
  // never touch the training caches, and are bit-identical to the
  // corresponding rows of the teacher-forced forward().

  // Decoder self-attention for one new token per sample.  x: [N, D], the
  // step's activation.  k_cache/v_cache: paged views over the session's
  // KV page pool (capacity = ring step bound); row s's new K/V are
  // written at paged position row_steps[s] and its attention runs over
  // positions [0, row_steps[s]] — the causal mask is implicit in the
  // per-row cache length, and rows at different ring positions share one
  // batch step.  row_steps: N entries.  out: [N, D].
  void self_attend_step(const ConstTensorView& x, const TensorView& out,
                        const PagedKvView& k_cache,
                        const PagedKvView& v_cache, index_t capacity,
                        const index_t* row_steps, Workspace& ws);

  // Cross-attention bind: projects encoder output rows [N·Tk, D] into
  // k_cache/v_cache [N, Tk, P] once; every subsequent step reuses them.
  void project_kv(const ConstTensorView& enc_flat, index_t n, index_t tk,
                  const TensorView& k_cache, const TensorView& v_cache,
                  Workspace& ws);

  // Cross-attention for one new token per sample against K/V staged by
  // project_kv and committed into pool pages.  tk is the batch-wide
  // source capacity (max_src); kv_lengths masks padded source positions
  // per sample (empty = all tk valid; may hold more than N entries when
  // the session keeps full-width per-row state), exactly as the training
  // forward.
  void cross_attend_step(const ConstTensorView& x, const TensorView& out,
                         const PagedKvView& k_cache,
                         const PagedKvView& v_cache, index_t tk,
                         const std::vector<index_t>& kv_lengths,
                         Workspace& ws);

  std::vector<nn::Parameter*> parameters() override;
  void set_training(bool training) override;
  std::string name() const override { return name_; }

  index_t proj_dim() const { return proj_dim_; }

 private:
  index_t d_model_, n_heads_, proj_dim_, head_dim_;
  std::string name_;
  nn::ModulePtr wq_, wk_, wv_, wo_;
  // Forward caches (training only; forward_into never touches them).
  index_t n_ = 0, tq_ = 0, tk_ = 0;
  Tensor q_, k_, v_;     // [N·T, P]
  Tensor attn_;          // [N, H, Tq, Tk] softmax weights
};

// ---------------------------------------------------------------------------
// Decode-step pipeline stages.
//
// A decoder layer flattens into per-sublayer stages (attention, residual
// add, LayerNorm, FFN) just like an encoder layer, but its attention
// sublayers carry per-session state — KV cache rings, the per-row step
// counters, the encoder K/V and source lengths.  These adapters make the attention
// steps expressible as ordinary [N, D] -> [N, D] PipelineStage modules: a
// non-owning view over the MultiHeadAttention plus cache bindings that a
// runtime::DecodeSession installs at bind/prime time.  One session may
// bind a decoder at a time (bind() rejects double-binding); the adapters
// own no parameters — freeze/parameters flow through the wrapped
// attention via DecoderLayer.
// ---------------------------------------------------------------------------

class SelfAttentionStep : public nn::Module {
 public:
  SelfAttentionStep(MultiHeadAttention& attn, std::string name);

  // k/v: paged views over the session's page pool (capacity = ring step
  // bound); `row_steps` points at the session's per-row step counters
  // (entry s = paged position written and attended for sample s this
  // call; the vector must hold at least N entries).
  void bind(const PagedKvView& k_cache, const PagedKvView& v_cache,
            index_t capacity, const std::vector<index_t>* row_steps);
  void unbind();
  bool bound() const { return row_steps_ != nullptr; }

  Tensor forward(const Tensor&) override;   // checked error (serving-only)
  Tensor backward(const Tensor&) override;  // checked error
  Shape output_shape(const Shape& input_shape) const override;
  bool supports_forward_into() const override;
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;
  std::string name() const override { return name_; }

 private:
  MultiHeadAttention* attn_;
  std::string name_;
  PagedKvView k_, v_;
  index_t capacity_ = 0;
  const std::vector<index_t>* row_steps_ = nullptr;
};

class CrossAttentionStep : public nn::Module {
 public:
  CrossAttentionStep(MultiHeadAttention& attn, std::string name);

  // k/v: paged views over the encoder-side K/V pages committed by the
  // session (tk = batch-wide source capacity); `kv_lengths` points at
  // the session's source-length vector (empty = all tk positions valid).
  void bind(const PagedKvView& k_cache, const PagedKvView& v_cache,
            index_t tk, const std::vector<index_t>* kv_lengths);
  void unbind();
  bool bound() const { return kv_lengths_ != nullptr; }

  Tensor forward(const Tensor&) override;   // checked error (serving-only)
  Tensor backward(const Tensor&) override;  // checked error
  Shape output_shape(const Shape& input_shape) const override;
  bool supports_forward_into() const override;
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;
  std::string name() const override { return name_; }

 private:
  MultiHeadAttention* attn_;
  std::string name_;
  PagedKvView k_, v_;
  index_t tk_ = 0;
  const std::vector<index_t>* kv_lengths_ = nullptr;
};

}  // namespace qdnn::models
