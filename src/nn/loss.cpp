#include "nn/loss.h"

#include <cmath>

namespace qdnn::nn {

LossResult CrossEntropyLoss::operator()(
    const Tensor& logits, const std::vector<index_t>& targets) const {
  QDNN_CHECK_EQ(logits.rank(), 2, "CrossEntropyLoss: logits must be [N, C]");
  const index_t n = logits.dim(0), c = logits.dim(1);
  QDNN_CHECK_EQ(static_cast<index_t>(targets.size()), n,
                "CrossEntropyLoss: target count");

  LossResult result;
  result.grad_logits = Tensor{logits.shape()};
  double total = 0.0;

  // First pass: count contributing rows so grads are scaled by 1/count.
  index_t count = 0;
  for (index_t i = 0; i < n; ++i)
    if (targets[static_cast<std::size_t>(i)] != ignore_index_) ++count;
  result.count = count;
  if (count == 0) return result;
  const float inv_count = 1.0f / static_cast<float>(count);

  const float eps = label_smoothing_;
  const float on_value = 1.0f - eps;
  const float off_value = eps / static_cast<float>(c);

  for (index_t i = 0; i < n; ++i) {
    const index_t target = targets[static_cast<std::size_t>(i)];
    if (target == ignore_index_) continue;
    QDNN_CHECK(target >= 0 && target < c,
               "CrossEntropyLoss: target " << target << " out of " << c);
    const float* row = logits.data() + i * c;
    float* grow = result.grad_logits.data() + i * c;

    float mx = row[0];
    for (index_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (index_t j = 0; j < c; ++j) sum += std::exp(row[j] - mx);
    const double log_sum = std::log(sum) + mx;

    // loss_i = −Σ_j q_j log p_j with q = smoothed one-hot.
    double loss_i = 0.0;
    index_t argmax = 0;
    for (index_t j = 0; j < c; ++j) {
      const double log_p = row[j] - log_sum;
      const double q = (j == target) ? on_value + off_value : off_value;
      loss_i -= q * log_p;
      const float p = static_cast<float>(std::exp(log_p));
      grow[j] = (p - static_cast<float>(q)) * inv_count;
      if (row[j] > row[argmax]) argmax = j;
    }
    total += loss_i;
    if (argmax == target) ++result.correct;
  }
  result.loss = static_cast<float>(total / count);
  return result;
}

LossResult mse_loss(const Tensor& pred, const Tensor& target) {
  QDNN_CHECK(pred.shape() == target.shape(), "mse_loss: shape mismatch");
  LossResult result;
  result.grad_logits = Tensor{pred.shape()};
  const index_t n = pred.numel();
  QDNN_CHECK(n > 0, "mse_loss: empty tensors");
  double total = 0.0;
  const float inv = 1.0f / static_cast<float>(n);
  for (index_t i = 0; i < n; ++i) {
    const float d = pred[i] - target[i];
    total += 0.5 * static_cast<double>(d) * d;
    result.grad_logits[i] = d * inv;
  }
  result.loss = static_cast<float>(total * inv);
  result.count = n;
  return result;
}

}  // namespace qdnn::nn
