// Generic (portable scalar) backend: the seed blocked ikj kernel,
// extracted behind the backend seam.  One deliberate change from the
// seed: the `av == 0.0f` early-continue is gone — it was a
// data-dependent branch in the hottest loop that blocked vectorization
// of the j loop; the alpha == 0 short-circuit lives at the gemm()
// entry points instead.
#include "linalg/gemm_kernels.h"

namespace qdnn::linalg::detail {

namespace {

// Blocked C += alpha * A * B over a row-major B with leading dim ldb.
// ikj ordering keeps B rows streaming and lets the compiler vectorize
// the inner j loop.
void generic_row_major(index_t m, index_t n, index_t k, float alpha,
                       const float* a, index_t lda, const float* b,
                       index_t ldb, float* c, index_t ldc) {
  constexpr index_t kBlockI = 64;
  constexpr index_t kBlockK = 256;
  for (index_t i0 = 0; i0 < m; i0 += kBlockI) {
    const index_t i1 = std::min(i0 + kBlockI, m);
    for (index_t p0 = 0; p0 < k; p0 += kBlockK) {
      const index_t p1 = std::min(p0 + kBlockK, k);
      for (index_t i = i0; i < i1; ++i) {
        float* ci = c + i * ldc;
        const float* ai = a + i * lda;
        for (index_t p = p0; p < p1; ++p) {
          const float av = alpha * ai[p];
          const float* bp = b + p * ldb;
          for (index_t j = 0; j < n; ++j) ci[j] += av * bp[j];
        }
      }
    }
  }
}

// Tile-panel B: same per-element reduction order (p ascends for every
// (i, j)), addressing panels of kPanelWidth contiguous columns.  Only
// reached when a tile-panel pack is consumed through the generic
// kernel; the normal dispatch routes such packs to the SIMD backend
// that laid them out.
void generic_panel(index_t m, index_t n, index_t k, float alpha,
                   const float* a, index_t lda, const float* b, float* c,
                   index_t ldc) {
  for (index_t j0 = 0; j0 < n; j0 += kPanelWidth) {
    const index_t nr = std::min(kPanelWidth, n - j0);
    const float* panel = b + (j0 / kPanelWidth) * k * kPanelWidth;
    for (index_t i = 0; i < m; ++i) {
      float* ci = c + i * ldc + j0;
      const float* ai = a + i * lda;
      for (index_t p = 0; p < k; ++p) {
        const float av = alpha * ai[p];
        const float* bp = panel + p * kPanelWidth;
        for (index_t j = 0; j < nr; ++j) ci[j] += av * bp[j];
      }
    }
  }
}

}  // namespace

void gemm_kernel_generic(index_t m, index_t n, index_t k, float alpha,
                         const float* a, index_t lda, const BDesc& b,
                         float* c, index_t ldc) {
  if (b.panel)
    generic_panel(m, n, k, alpha, a, lda, b.data, c, ldc);
  else
    generic_row_major(m, n, k, alpha, a, lda, b.data, b.ld, c, ldc);
}

float dot_generic(const float* a, const float* b, index_t n) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  index_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

void axpy_generic(index_t n, float alpha, const float* x, float* y) {
  for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

}  // namespace qdnn::linalg::detail
