#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "analysis/counters.h"
#include "analysis/param_stats.h"
#include "analysis/response_map.h"
#include "gradcheck_util.h"
#include "nn/linear.h"
#include "quadratic/quad_dense.h"

namespace qdnn::analysis {
namespace {

using qdnn::testing::random_tensor;

TEST(Counters, BreakdownByGroup) {
  Rng rng(1);
  quadratic::ProposedQuadraticDense layer(4, 2, 3, rng);
  const ParamBreakdown b = count_parameters(layer);
  // w: 2×4, q: 2·3×4, λ: 2×3, bias: 2.
  EXPECT_EQ(b.by_group.at("linear"), 8 + 2);
  EXPECT_EQ(b.by_group.at("quadratic_q"), 24);
  EXPECT_EQ(b.by_group.at("quadratic_lambda"), 6);
  EXPECT_EQ(b.total, 40);
}

TEST(Counters, FormatMillions) {
  EXPECT_EQ(format_millions(15'700'000), "15.70");
  EXPECT_EQ(format_millions(271'000, 3), "0.271");
}

TEST(ParamStats, OrderStatistics) {
  const std::vector<float> values{5, 1, 3, 2, 4};
  const LayerParamStats s = stats_of("layer", "linear", values);
  EXPECT_EQ(s.count, 5);
  EXPECT_FLOAT_EQ(s.min, 1.0f);
  EXPECT_FLOAT_EQ(s.max, 5.0f);
  EXPECT_FLOAT_EQ(s.mean, 3.0f);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0f), 1e-5f);
  EXPECT_LE(s.q05, s.q95);
}

TEST(ParamStats, EmptyBufferSafe) {
  const LayerParamStats s = stats_of("l", "g", {});
  EXPECT_EQ(s.count, 0);
}

TEST(ParamStats, PerLayerGroupsSeparated) {
  Rng rng(2);
  quadratic::ProposedQuadraticDense a(4, 1, 2, rng, 1e-3f, "layer_a");
  nn::Linear b(4, 2, rng, true, "layer_b");
  const auto stats = per_layer_stats({&a, &b});
  // layer_a: linear + quadratic_q + quadratic_lambda; layer_b: linear.
  EXPECT_EQ(stats.size(), 4u);
  int lambda_rows = 0;
  for (const auto& s : stats)
    if (s.group == "quadratic_lambda") ++lambda_rows;
  EXPECT_EQ(lambda_rows, 1);
}

TEST(ResponseMap, LinearPlusQuadraticEqualsYChannel) {
  Rng rng(3);
  quadratic::ProposedQuadConv2d conv(3, 2, 3, 1, 1, 4, rng);
  const Tensor image = random_tensor(Shape{3, 8, 8}, 4);
  const ResponsePair pair = split_responses(conv, image);
  EXPECT_EQ(pair.linear.shape(), Shape({2, 8, 8}));
  // Re-run the layer and confirm linear+quadratic reassembles channel y.
  const Tensor out = conv.forward(
      image.reshaped(Shape{1, 3, 8, 8}));
  for (index_t f = 0; f < 2; ++f)
    for (index_t j = 0; j < 64; ++j) {
      const float y = out.data()[(f * 5) * 64 + j];
      EXPECT_NEAR(pair.linear.data()[f * 64 + j] +
                      pair.quadratic.data()[f * 64 + j],
                  y, 1e-4f);
    }
}

TEST(FrequencySplit, ConstantMapIsAllLow) {
  // A smooth gradient map has most energy in block means.
  Tensor map{Shape{8, 8}};
  for (index_t y = 0; y < 8; ++y)
    for (index_t x = 0; x < 8; ++x)
      map.at(y, x) = static_cast<float>(y) * 0.5f;
  const EnergySplit split = frequency_energy_split(map);
  EXPECT_GT(split.low_fraction(), 0.8);
}

TEST(FrequencySplit, CheckerboardIsAllHigh) {
  Tensor map{Shape{8, 8}};
  for (index_t y = 0; y < 8; ++y)
    for (index_t x = 0; x < 8; ++x)
      map.at(y, x) = ((x + y) % 2 == 0) ? 1.0f : -1.0f;
  const EnergySplit split = frequency_energy_split(map);
  EXPECT_LT(split.low_fraction(), 0.2);
}

TEST(FrequencySplit, MixedSignalOrdering) {
  // Low-frequency sinusoid vs high-frequency sinusoid.
  auto make_wave = [](double cycles) {
    Tensor map{Shape{16, 16}};
    for (index_t y = 0; y < 16; ++y)
      for (index_t x = 0; x < 16; ++x)
        map.at(y, x) = static_cast<float>(
            std::sin(2.0 * std::numbers::pi * cycles * x / 16.0));
    return map;
  };
  const double low = frequency_energy_split(make_wave(1)).low_fraction();
  const double high = frequency_energy_split(make_wave(7)).low_fraction();
  EXPECT_GT(low, high);
}

TEST(FrequencySplit, RejectsTinyMaps) {
  Tensor map{Shape{1, 4}};
  EXPECT_THROW(frequency_energy_split(map), std::runtime_error);
}

}  // namespace
}  // namespace qdnn::analysis
