#include "analysis/response_map.h"

namespace qdnn::analysis {

ResponsePair split_responses(quadratic::ProposedQuadConv2d& layer,
                             const Tensor& image) {
  QDNN_CHECK_EQ(image.rank(), 3, "split_responses: expected [C, H, W]");
  Tensor batch = image.reshaped(
      Shape{1, image.dim(0), image.dim(1), image.dim(2)});
  const Tensor out = layer.forward(batch);  // [1, F*(k+1), OH, OW]
  const index_t filters = layer.filters();
  const index_t k = layer.rank();
  const index_t oh = out.dim(2), ow = out.dim(3);
  const index_t plane = oh * ow;

  ResponsePair pair{Tensor{Shape{filters, oh, ow}},
                    Tensor{Shape{filters, oh, ow}}};
  for (index_t f = 0; f < filters; ++f) {
    const float* y = out.data() + (f * (k + 1)) * plane;
    const float* lam = layer.lambda().value.data() + f * k;
    float* lin = pair.linear.data() + f * plane;
    float* quad = pair.quadratic.data() + f * plane;
    // The emitted y channel is linear + quadratic; recover the quadratic
    // part from the emitted fᵏ channels, then the linear part as the
    // difference.
    for (index_t j = 0; j < plane; ++j) {
      float y2 = 0.0f;
      for (index_t i = 0; i < k; ++i) {
        const float fi = out.data()[(f * (k + 1) + 1 + i) * plane + j];
        y2 += lam[i] * fi * fi;
      }
      quad[j] = y2;
      lin[j] = y[j] - y2;
    }
  }
  return pair;
}

EnergySplit frequency_energy_split(const Tensor& map2d) {
  QDNN_CHECK_EQ(map2d.rank(), 2, "frequency_energy_split: [H, W]");
  const index_t h = map2d.dim(0) & ~index_t{1};
  const index_t w = map2d.dim(1) & ~index_t{1};
  QDNN_CHECK(h >= 2 && w >= 2, "frequency_energy_split: map too small");

  // Remove the global mean so DC offset doesn't dominate "low".
  double mean = 0.0;
  for (index_t y = 0; y < h; ++y)
    for (index_t x = 0; x < w; ++x) mean += map2d.at(y, x);
  mean /= static_cast<double>(h * w);

  EnergySplit split;
  for (index_t y = 0; y < h; y += 2)
    for (index_t x = 0; x < w; x += 2) {
      const double a = map2d.at(y, x) - mean;
      const double b = map2d.at(y, x + 1) - mean;
      const double c = map2d.at(y + 1, x) - mean;
      const double d = map2d.at(y + 1, x + 1) - mean;
      const double block_mean = 0.25 * (a + b + c + d);
      split.low += 4.0 * block_mean * block_mean;
      const double ra = a - block_mean, rb = b - block_mean,
                   rc = c - block_mean, rd = d - block_mean;
      split.high += ra * ra + rb * rb + rc * rc + rd * rd;
    }
  return split;
}

}  // namespace qdnn::analysis
