// Request/result types for the continuous-batching serving layer.
//
// A Request is one decode job: a source row plus decode policy (step
// budget, sampling head).  The scheduler assigns ids at submit() and
// returns RequestResults after retirement; tick counters let callers
// derive queueing delay (admit − submit), decode time (finish − admit)
// and end-to-end latency (finish − submit) in batch-step units.
//
// Lifecycle: submit → prefill (encoder pass + cross-K/V projection; on
// the serving thread in synchronous mode, on a PrefillPool worker in
// async mode) → commit into a free batch row → step until eos/budget →
// retire.  The result's token buffer is reserved at submit and travels
// with the request through admission, so the scheduler's admit/retire
// ticks never heap-allocate (see serve/prefill.h and serve/scheduler.h).
#pragma once

#include <string>
#include <vector>

#include "core/tensor.h"
#include "serve/sampling.h"

namespace qdnn::serve {

struct Request {
  // Source token ids, [Ts] or [1, Ts]; Ts must fit the session's
  // configured max_src.
  Tensor src_ids;
  // Valid (non-pad) source positions; 0 = all Ts valid.
  index_t src_length = 0;
  // Most tokens to emit; 0 = the scheduler's max_steps.  Must not exceed
  // max_steps (the self-attention ring capacity).
  index_t max_new_tokens = 0;
  // Per-request sampling head; greedy by default.
  SamplingConfig sampling;
};

enum class FinishReason {
  kEos,     // the model emitted eos
  kLength,  // the step budget ran out
  kError,   // async prefill failed — tokens empty, error holds the cause
};

struct RequestResult {
  index_t id = -1;
  // Emitted token ids, bos/eos excluded — for a greedy request, exactly
  // Transformer::greedy_decode of that source alone.
  std::vector<index_t> tokens;
  FinishReason reason = FinishReason::kLength;
  // Failure description for kError (empty otherwise): a submitted id is
  // ALWAYS resolved by exactly one result, even when its prefill failed
  // on a pool worker.
  std::string error;
  // Batch ticks this request spent decoding (== steps consumed).
  index_t decode_steps = 0;
  index_t submit_tick = 0;  // scheduler tick count at submit()
  index_t admit_tick = 0;   // tick at admission into a batch row
  index_t finish_tick = 0;  // tick at retirement
};

}  // namespace qdnn::serve
