// Kervolution [14] — polynomial-kernel neurons, K(x, w) = (xᵀw + c)^d.
//
// The interesting property for the paper's Fig. 6 is that kervolution adds
// NO parameters over a linear neuron (the kernel is applied to the same
// dot product), but composing the polynomial over many layers makes
// training unstable: activations and gradients grow as powers of the
// depth, which is exactly the divergence the figure shows for KNN-11/15.
// qdnn therefore supports deploying kervolution only in the first
// `n_layers` of a model (the "KNN-n" configurations).
#pragma once

#include "nn/conv2d.h"
#include "nn/init.h"
#include "nn/module.h"

namespace qdnn::quadratic {

class KervolutionDense : public nn::Module {
 public:
  KervolutionDense(index_t in_features, index_t out_features, int degree,
                   float c, Rng& rng, std::string name = "kerv_fc");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override {
    QDNN_CHECK_EQ(input_shape.rank(), 2, name_ << ": expected [N, in]");
    QDNN_CHECK_EQ(input_shape[1], in_, name_ << ": in_features");
    return Shape{input_shape[0], out_};
  }
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return name_; }

 private:
  index_t in_, out_;
  int degree_;
  float c_;
  std::string name_;
  nn::Parameter w_;       // [out, in]
  Tensor cached_input_;
  Tensor cached_pre_;     // xᵀw + c before the power
};

// Convolutional kervolution: linear conv followed by the element-wise
// polynomial kernel (w·patch + c)^d.  Same weight count as Conv2d.
class KervolutionConv2d : public nn::Module {
 public:
  KervolutionConv2d(index_t in_channels, index_t out_channels,
                    index_t kernel, index_t stride, index_t padding,
                    int degree, float c, Rng& rng,
                    std::string name = "kerv_conv");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override {
    return conv_.output_shape(input_shape);
  }
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override { return name_; }

 private:
  nn::Conv2d conv_;
  int degree_;
  float c_;
  std::string name_;
  Tensor cached_pre_;  // conv output + c, before the power
};

}  // namespace qdnn::quadratic
