// Sampling-head contracts: greedy is the session's first-maximum argmax,
// stochastic heads are deterministic per seed and independent across
// streams, top-k restricts support (k = 1 degenerates to greedy), and
// malformed configs are rejected at validate() with clear errors.
#include "serve/sampling.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <vector>

namespace qdnn::serve {
namespace {

constexpr index_t kVocab = 8;

struct Scratch {
  std::vector<float> probs = std::vector<float>(kVocab);
  std::vector<index_t> idx = std::vector<index_t>(kVocab);
};

index_t draw(const SamplingConfig& config, const float* logits, Rng& rng,
             Scratch& s) {
  return sample_token(config, logits, kVocab, rng, s.probs.data(),
                      s.idx.data());
}

TEST(Sampling, GreedyIsFirstMaximumArgmax) {
  Scratch s;
  Rng rng(1);
  const float logits[kVocab] = {0.f, 3.f, 1.f, 3.f, -2.f, 0.5f, 2.f, 3.f};
  // Ties at ids 1, 3, 7 — the first maximum wins, exactly like
  // DecodeSession's greedy head.
  EXPECT_EQ(draw(SamplingConfig::greedy(), logits, rng, s), 1);
}

TEST(Sampling, TemperatureIsDeterministicPerSeed) {
  Scratch s;
  const float logits[kVocab] = {0.1f, 1.f, 0.3f, 2.f, 0.f, 1.5f, 0.2f,
                                0.9f};
  const SamplingConfig config = SamplingConfig::with_temperature(1.0f, 7);
  std::vector<index_t> first, second;
  for (int run = 0; run < 2; ++run) {
    Rng rng(config.seed);
    auto& out = run == 0 ? first : second;
    for (int i = 0; i < 32; ++i)
      out.push_back(draw(config, logits, rng, s));
  }
  EXPECT_EQ(first, second) << "same seed must reproduce the stream";

  // A different seed diverges somewhere in 32 draws over spread logits.
  Rng other(config.seed + 1);
  std::vector<index_t> diverged;
  for (int i = 0; i < 32; ++i)
    diverged.push_back(draw(config, logits, other, s));
  EXPECT_NE(first, diverged);
}

TEST(Sampling, TemperatureCoversSupportAndSharpens) {
  Scratch s;
  const float logits[kVocab] = {0.f, 4.f, 0.f, 3.5f, 0.f, 0.f, 0.f, 0.f};
  // Hot: multiple ids appear across draws.
  Rng hot_rng(11);
  std::set<index_t> hot_ids;
  for (int i = 0; i < 200; ++i)
    hot_ids.insert(
        draw(SamplingConfig::with_temperature(2.0f, 11), logits, hot_rng,
             s));
  EXPECT_GT(hot_ids.size(), 1u);
  // Near-zero temperature concentrates all mass on the argmax.
  Rng cold_rng(13);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(draw(SamplingConfig::with_temperature(1e-3f, 13), logits,
                   cold_rng, s),
              1);
}

TEST(Sampling, TopKRestrictsSupportToKLargest) {
  Scratch s;
  const float logits[kVocab] = {0.f, 5.f, 1.f, 4.f, 2.f, -1.f, 3.f, 0.5f};
  Rng rng(17);
  const SamplingConfig config = SamplingConfig::with_top_k(3, 1.5f, 17);
  std::set<index_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(draw(config, logits, rng, s));
  // k = 3 → only ids 1, 3, 6 (the three largest logits) are reachable.
  for (const index_t id : seen)
    EXPECT_TRUE(id == 1 || id == 3 || id == 6) << "id " << id;
  EXPECT_EQ(seen.size(), 3u) << "hot temperature should reach all three";
}

TEST(Sampling, TopKOneIsGreedyRegardlessOfSeed) {
  Scratch s;
  const float logits[kVocab] = {0.f, 1.f, 5.f, 4.f, 2.f, 3.f, 1.f, 0.f};
  for (std::uint64_t seed : {1u, 2u, 99u}) {
    Rng rng(seed);
    EXPECT_EQ(draw(SamplingConfig::with_top_k(1, 0.7f, seed), logits, rng,
                   s),
              2);
  }
}

TEST(Sampling, DegenerateDistributionsFallBackToFirstMaxArgmax) {
  // Regression: when the softmax normalizer degenerates (total == 0 or
  // non-finite — all-(-inf)/NaN logits, inf spreads), pick()'s round-off
  // tail used to return the LAST candidate: the temperature head emitted
  // the last vocab id and top-k the WORST of its k candidates.  Both
  // heads must degrade to the first-max argmax instead, for any seed.
  Scratch s;
  constexpr float kInf = std::numeric_limits<float>::infinity();
  const float all_neg_inf[kVocab] = {-kInf, -kInf, -kInf, -kInf,
                                     -kInf, -kInf, -kInf, -kInf};
  const float all_nan[kVocab] = {NAN, NAN, NAN, NAN, NAN, NAN, NAN, NAN};
  // mx = +inf poisons every weight ((x − inf) → −inf or NaN): the sum is
  // not a distribution, but the argmax is still well-defined at id 5.
  const float inf_spike[kVocab] = {0.f, 1.f, 0.f, 2.f, 0.f, kInf, 0.f,
                                   1.f};

  for (const std::uint64_t seed : {1u, 9u, 777u}) {
    Rng rng(seed);
    const auto temp = SamplingConfig::with_temperature(0.5f, seed);
    const auto topk = SamplingConfig::with_top_k(3, 0.5f, seed);
    EXPECT_EQ(draw(temp, all_neg_inf, rng, s), 0) << "seed " << seed;
    EXPECT_EQ(draw(topk, all_neg_inf, rng, s), 0) << "seed " << seed;
    EXPECT_EQ(draw(temp, all_nan, rng, s), 0) << "seed " << seed;
    EXPECT_EQ(draw(topk, all_nan, rng, s), 0) << "seed " << seed;
    EXPECT_EQ(draw(temp, inf_spike, rng, s), 5) << "seed " << seed;
    EXPECT_EQ(draw(topk, inf_spike, rng, s), 5) << "seed " << seed;
  }

  // A healthy extreme spread (finite logits) is NOT degenerate: the
  // max-shifted weight of the argmax is exp(0) = 1, so the guard must
  // not fire and sharp temperatures still concentrate on the mode.
  const float spread[kVocab] = {-1e30f, 400.f, -1e30f, -1e30f,
                                -1e30f, -1e30f, -1e30f, -1e30f};
  Rng rng(3);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(draw(SamplingConfig::with_temperature(1e-4f, 3), spread, rng,
                   s),
              1);
}

TEST(Sampling, ValidateRejectsMalformedConfigs) {
  EXPECT_NO_THROW(validate(SamplingConfig::greedy(), kVocab));
  EXPECT_NO_THROW(validate(SamplingConfig::with_temperature(0.5f, 1),
                           kVocab));
  EXPECT_NO_THROW(validate(SamplingConfig::with_top_k(kVocab, 1.0f, 1),
                           kVocab));
  EXPECT_THROW(validate(SamplingConfig::with_temperature(0.0f, 1), kVocab),
               std::runtime_error);
  EXPECT_THROW(validate(SamplingConfig::with_temperature(-1.0f, 1),
                        kVocab),
               std::runtime_error);
  EXPECT_THROW(validate(SamplingConfig::with_top_k(0, 1.0f, 1), kVocab),
               std::runtime_error);
  EXPECT_THROW(validate(SamplingConfig::with_top_k(kVocab + 1, 1.0f, 1),
                        kVocab),
               std::runtime_error);
  EXPECT_THROW(validate(SamplingConfig::with_top_k(2, 0.0f, 1), kVocab),
               std::runtime_error);
}

}  // namespace
}  // namespace qdnn::serve
