// Inverted dropout (scale-at-train).  The Transformer experiments use
// p = 0.1 as in "Attention Is All You Need"; disabled automatically in
// eval mode.
#pragma once

#include "core/rng.h"
#include "nn/module.h"

namespace qdnn::nn {

class Dropout : public Module {
 public:
  Dropout(float p, Rng& rng, std::string name = "dropout");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  // v2 (eval mode only): inverted dropout is the identity at inference.
  bool supports_forward_into() const override { return true; }
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;
  void freeze() override {
    cached_mask_ = Tensor{};
    Module::freeze();
  }

  std::string name() const override { return name_; }

 private:
  float p_;
  Rng* rng_;
  std::string name_;
  Tensor cached_mask_;
  bool identity_ = false;
};

}  // namespace qdnn::nn
