// Module: the layer abstraction of qdnn.
//
// qdnn uses explicit forward/backward (not taped autograd): forward()
// caches whatever the layer needs, backward(grad_out) returns the gradient
// w.r.t. the layer input and accumulates parameter gradients.  All
// backward implementations are validated against central finite
// differences in tests/nn/gradcheck_test.cpp.
//
// Two execution APIs
// ------------------
//  * v1 (training): `Tensor forward(const Tensor&)` — value semantics,
//    allocates its output, caches activations for backward().
//  * v2 (inference): `forward_into(const ConstTensorView& in, const TensorView& out,
//    Workspace& ws)` — writes the result into caller-owned memory and
//    draws all scratch from `ws`.  Implementations must not allocate, must
//    not cache (backward() after forward_into() is undefined), and must
//    not reset `ws` (the pass driver owns the reset points).  `in` and
//    `out` never alias.  `output_shape(in_shape)` reports the result shape
//    so drivers (runtime::InferenceSession) can preallocate buffers before
//    any data flows.
//
// Every module inherits a default forward_into() adapter that routes
// through the legacy copying forward(), so v1-only modules work inside v2
// drivers unchanged (at v1 cost).  Migrated modules override both
// forward_into() and supports_forward_into(); shape-changing modules must
// also override output_shape() (the default is shape-preserving).
//
// Data layout conventions:
//   dense activations   [N, D]
//   images              [N, C, H, W]
//   token sequences     [N, T] (ids) / [N, T, D] (embedded, flattened to
//                       [N*T, D] for dense sublayers)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/tensor_view.h"
#include "core/workspace.h"
#include "nn/parameter.h"

namespace qdnn::nn {

// A named non-trainable tensor owned by a module — persistent state that
// is not updated by the optimizer but must survive checkpointing (the
// canonical example: BatchNorm running statistics).
struct NamedBuffer {
  std::string name;
  Tensor* tensor = nullptr;
};

class Module;

// One stage of a flattened serving pipeline (Module::flatten_into).
//
// A pipeline is a list of stages over numbered activation boundaries:
// boundary -1 is the pipeline input and boundary i is the output of stage
// i.  A stage either runs a module (`module != nullptr`) on boundary
// `input`, or — when `module` is null — is a residual-add stage writing
// boundary[input] + boundary[addend] element-wise.  Referencing arbitrary
// earlier boundaries is what lets residual blocks (ResNet BasicBlock,
// Transformer encoder layers) flatten into primitive per-layer stages
// instead of serving as one monolithic adapter; the pipeline driver
// (runtime::InferenceSession) plans boundary buffers by liveness.
struct PipelineStage {
  Module* module = nullptr;
  index_t input = -1;   // boundary consumed (stage position - 1 by default)
  index_t addend = -1;  // second operand of a residual-add stage

  bool is_add() const { return module == nullptr; }
};

// Checks the boundary wiring of a flattened stage plan: every stage may
// only read boundaries already produced, and only residual-add stages
// carry an addend.  Shared by the pipeline drivers
// (runtime::InferenceSession, runtime::DecodeSession) so a flatten_into
// regression fails identically under either.  `driver` names the caller
// in error messages.
void validate_pipeline(const std::vector<PipelineStage>& stages,
                       const char* driver);

class Module {
 public:
  virtual ~Module() = default;

  // Computes the layer output and caches activations needed by backward.
  virtual Tensor forward(const Tensor& input) = 0;

  // Given dL/d(output), accumulates dL/d(params) into Parameter::grad and
  // returns dL/d(input).  Must be called after a matching forward().
  virtual Tensor backward(const Tensor& grad_output) = 0;

  // --- v2 inference API --------------------------------------------------

  // Shape of the output produced for an input of `input_shape`.  Default:
  // shape-preserving (element-wise layers, norms, dropout).
  virtual Shape output_shape(const Shape& input_shape) const {
    return input_shape;
  }

  // True when forward_into() is a native implementation that performs no
  // heap allocation and touches no shared module state (so concurrent
  // calls on disjoint batches are safe).  False for the legacy-forward()
  // adapter and for overrides that are native but still allocate
  // (nested Sequential).
  virtual bool supports_forward_into() const { return false; }

  // Writes the result of the layer into `output` (whose shape must equal
  // output_shape(input.shape())), drawing scratch from `ws`.  The default
  // adapter materializes Tensors and calls forward() — correct for every
  // module, allocation-free for none.
  virtual void forward_into(const ConstTensorView& input, const TensorView& output,
                            Workspace& ws);

  // --- freeze: one-time serving preparation ------------------------------
  //
  // freeze() is the bind step of the serving lifecycle
  // (build → bind/freeze → run): modules whose forward_into re-packs a
  // constant weight matrix per call (the gemm trans_b pack of Linear and
  // the quadratic dense families) materialize the pack now — a
  // linalg::PackedWeights — so steady-state requests perform no packing
  // and need no packing scratch.  freeze() also drops training-only caches
  // (saved activations) that would otherwise sit stale under a serving
  // process.  Composite modules must propagate both calls recursively.
  //
  // Frozen forward_into results are bit-identical to unfrozen ones.
  // Mutating parameters after freeze() leaves the packs stale: call
  // unfreeze() (or freeze() again) after any weight update.  forward()
  // itself never reads the packs, so training correctness is unaffected
  // either way.
  //
  // Overrides must invoke the base implementation so frozen() stays
  // truthful (modules with nothing to pack report frozen after freeze()
  // too — composites AND their lifecycle over all children).
  virtual void freeze() { frozen_ = true; }
  virtual void unfreeze() { frozen_ = false; }
  virtual bool frozen() const { return frozen_; }

  // --- flatten: serving stage pipelines ----------------------------------
  //
  // Appends this module's serving stages to `stages` in execution order.
  // The default is one stage (this module) consuming the previous
  // boundary.  Composite modules (Sequential, ResNet, the Transformer
  // encoder) override this so pipeline drivers serve them layer-by-layer
  // with per-stage buffers and native kernels — including residual-add
  // stages referencing earlier boundaries.  Overrides must compute
  // boundary ids from the current stages.size() so flattening composes.
  virtual void flatten_into(std::vector<PipelineStage>& stages) {
    stages.push_back(
        PipelineStage{this, static_cast<index_t>(stages.size()) - 1, -1});
  }

  // Convenience: the flattened pipeline of this module alone.
  std::vector<PipelineStage> stages() {
    std::vector<PipelineStage> out;
    flatten_into(out);
    return out;
  }

  // All trainable parameters owned by this module (recursively).
  virtual std::vector<Parameter*> parameters() { return {}; }

  // All persistent non-trainable state (recursively) — saved and restored
  // by nn::save_checkpoint/load_checkpoint alongside the parameters.
  virtual std::vector<NamedBuffer> buffers() { return {}; }

  // Human-readable identifier used in analysis outputs (Fig 7).
  virtual std::string name() const = 0;

  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  void zero_grad() {
    for (Parameter* p : parameters()) p->zero_grad();
  }

  index_t num_parameters() {
    index_t n = 0;
    for (Parameter* p : parameters()) n += p->numel();
    return n;
  }

 protected:
  bool training_ = true;
  bool frozen_ = false;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace qdnn::nn
