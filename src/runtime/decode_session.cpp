#include "runtime/decode_session.h"

#include <cmath>

namespace qdnn::runtime {

DecodeSession::DecodeSession(models::Transformer& model,
                             DecodeSessionConfig config)
    : model_(&model), config_(config) {
  const models::TransformerConfig& mc = model_->config();
  QDNN_CHECK(config_.max_batch > 0,
             "DecodeSession: max_batch must be positive");
  // bos fills ring row 0 and step s embeds position s, so the deepest
  // step uses position max_steps − 1: max_steps == max_len is the exact
  // upper bound (the implicit-bos slot does not cost an extra position).
  QDNN_CHECK(config_.max_steps >= 1 && config_.max_steps <= mc.max_len,
             "DecodeSession: max_steps " << config_.max_steps
                                         << " outside [1, " << mc.max_len
                                         << "] (max_len)");
  d_model_ = mc.d_model;
  proj_dim_ = mc.proj_dim;
  vocab_ = mc.tgt_vocab;
  max_src_ = config_.max_src > 0 ? config_.max_src : mc.max_len;
  QDNN_CHECK(max_src_ <= mc.max_len,
             "DecodeSession: max_src " << max_src_ << " exceeds max_len "
                                       << mc.max_len);

  // Exclusivity first, before ANY model mutation: a rejected second
  // session must not flip the model to eval mode or freeze it.
  const index_t layers = model_->num_decoder_layers();
  QDNN_CHECK(layers > 0, "DecodeSession: model has no decoder layers");
  for (index_t l = 0; l < layers; ++l)
    QDNN_CHECK(!model_->decoder_layer(l).self_step().bound() &&
                   !model_->decoder_layer(l).cross_step().bound(),
               "DecodeSession: decoder already bound by another "
               "DecodeSession — destroy it before binding a new one");
  model_->set_training(false);

  // Flatten the decode-step pipeline: every decoder layer's stages, then
  // the output projection as the final stage.
  for (index_t l = 0; l < layers; ++l)
    model_->decoder_layer(l).flatten_into(stages_);
  model_->output_projection().flatten_into(stages_);
  nn::validate_pipeline(stages_, "DecodeSession");

  // Per-boundary row widths via the shape pipeline at batch 1 (widths are
  // batch-independent; every boundary keeps the batch leading).
  stage_width_.reserve(stages_.size());
  {
    auto width_of = [&](index_t b) {
      return b < 0 ? d_model_
                   : stage_width_[static_cast<std::size_t>(b)];
    };
    for (const nn::PipelineStage& st : stages_) {
      if (st.is_add()) {
        QDNN_CHECK(width_of(st.input) == width_of(st.addend),
                   "DecodeSession: residual-add operand widths "
                       << width_of(st.input) << " vs "
                       << width_of(st.addend));
        stage_width_.push_back(width_of(st.input));
      } else {
        const Shape out =
            st.module->output_shape(Shape{1, width_of(st.input)});
        QDNN_CHECK(out.rank() == 2 && out[0] == 1,
                   st.module->name() << ": step stage output " << out
                                     << " is not [N, W]");
        stage_width_.push_back(out[1]);
      }
    }
  }
  QDNN_CHECK(stage_width_.back() == vocab_,
             "DecodeSession: final stage width " << stage_width_.back()
                                                 << " != tgt_vocab "
                                                 << vocab_);

  // Bind step: prepack the decode-side weights and drop training caches
  // before warm-up, so the watermark never includes packing scratch.
  if (config_.freeze) {
    model_->tgt_embedding().freeze();
    for (index_t l = 0; l < layers; ++l) model_->decoder_layer(l).freeze();
    model_->output_projection().freeze();
  }

  // KV caches and activation buffers, sized once for (max_batch,
  // max_steps / max_len).  Zero-filled so the warm-up step at the deepest
  // ring position reads defined values.
  const index_t self_floats = config_.max_batch * config_.max_steps *
                              proj_dim_;
  const index_t cross_floats = config_.max_batch * max_src_ * proj_dim_;
  for (index_t l = 0; l < layers; ++l) {
    self_k_.emplace_back(Shape{self_floats});
    self_v_.emplace_back(Shape{self_floats});
    cross_k_.emplace_back(Shape{cross_floats});
    cross_v_.emplace_back(Shape{cross_floats});
  }
  embed_buf_ = Tensor{Shape{config_.max_batch * d_model_}};
  buffers_.reserve(stages_.size());
  for (index_t w : stage_width_)
    buffers_.emplace_back(Shape{config_.max_batch * w});
  next_tokens_.reserve(static_cast<std::size_t>(config_.max_batch));
  feed_tokens_.reserve(static_cast<std::size_t>(config_.max_batch));
  done_.reserve(static_cast<std::size_t>(config_.max_batch));
  in_views_.resize(stages_.size());
  add_views_.resize(stages_.size());
  out_views_.resize(stages_.size());

  // From the first bind on, an exception must not leave the model's
  // adapters pointing into this half-constructed (about-to-unwind)
  // session: unbind before rethrowing (the destructor will not run).
  try {
    bind_views(config_.max_batch, max_src_);

    if (config_.warmup) {
      // Project dummy encoder K/V (covers prime's projection scratch)
      // and run one step at the deepest ring position (the widest score
      // buffers), then consolidate the workspace to the exact watermark.
      Tensor dummy_enc{Shape{config_.max_batch * max_src_, d_model_}};
      const ConstTensorView enc_view(dummy_enc.shape(), dummy_enc.data());
      for (index_t l = 0; l < layers; ++l) {
        ws_.reset();
        model_->decoder_layer(l).cross_attention().project_kv(
            enc_view, config_.max_batch, max_src_,
            TensorView(Shape{config_.max_batch, max_src_, proj_dim_},
                       cross_k_[static_cast<std::size_t>(l)].data()),
            TensorView(Shape{config_.max_batch, max_src_, proj_dim_},
                       cross_v_[static_cast<std::size_t>(l)].data()),
            ws_);
      }
      primed_ = true;
      cur_step_ = config_.max_steps - 1;
      feed_tokens_.assign(static_cast<std::size_t>(config_.max_batch), 0);
      run_step(feed_tokens_);
      primed_ = false;
      cur_step_ = 0;
      ws_.reset();
      ws_.consolidate();
    }
  } catch (...) {
    unbind_all();
    throw;
  }
}

DecodeSession::~DecodeSession() { unbind_all(); }

void DecodeSession::unbind_all() {
  for (index_t l = 0; l < model_->num_decoder_layers(); ++l) {
    model_->decoder_layer(l).self_step().unbind();
    model_->decoder_layer(l).cross_step().unbind();
  }
}

bool DecodeSession::fully_native() const {
  for (const nn::PipelineStage& st : stages_)
    if (!st.is_add() && !st.module->supports_forward_into()) return false;
  return true;
}

index_t DecodeSession::kv_cache_floats() const {
  index_t total = 0;
  for (const Tensor& t : self_k_) total += t.numel();
  for (const Tensor& t : self_v_) total += t.numel();
  for (const Tensor& t : cross_k_) total += t.numel();
  for (const Tensor& t : cross_v_) total += t.numel();
  return total;
}

void DecodeSession::bind_views(index_t n, index_t ts) {
  // Rebuild the per-stage views and the adapter cache bindings for this
  // (batch, source-length) pair.  Shapes are inline, so this never
  // touches the heap; it runs at construction and when prime() changes
  // the binding.
  for (index_t l = 0; l < model_->num_decoder_layers(); ++l) {
    models::DecoderLayer& layer = model_->decoder_layer(l);
    layer.self_step().bind(
        TensorView(Shape{n, config_.max_steps, proj_dim_},
                   self_k_[static_cast<std::size_t>(l)].data()),
        TensorView(Shape{n, config_.max_steps, proj_dim_},
                   self_v_[static_cast<std::size_t>(l)].data()),
        &cur_step_);
    layer.cross_step().bind(
        ConstTensorView(Shape{n, ts, proj_dim_},
                        cross_k_[static_cast<std::size_t>(l)].data()),
        ConstTensorView(Shape{n, ts, proj_dim_},
                        cross_v_[static_cast<std::size_t>(l)].data()),
        &src_lengths_);
  }

  auto boundary_data = [&](index_t b) -> float* {
    return b < 0 ? embed_buf_.data()
                 : buffers_[static_cast<std::size_t>(b)].data();
  };
  auto boundary_width = [&](index_t b) {
    return b < 0 ? d_model_ : stage_width_[static_cast<std::size_t>(b)];
  };
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const nn::PipelineStage& st = stages_[i];
    in_views_[i] = ConstTensorView(Shape{n, boundary_width(st.input)},
                                   boundary_data(st.input));
    add_views_[i] =
        st.is_add() ? ConstTensorView(Shape{n, boundary_width(st.addend)},
                                      boundary_data(st.addend))
                    : ConstTensorView{};
    out_views_[i] = TensorView(
        Shape{n, stage_width_[i]}, boundary_data(static_cast<index_t>(i)));
  }
  logits_view_ =
      ConstTensorView(Shape{n, vocab_}, buffers_.back().data());
  bound_n_ = n;
  bound_ts_ = ts;
}

void DecodeSession::prime(const Tensor& src_ids,
                          const std::vector<index_t>& src_lengths) {
  QDNN_CHECK(src_ids.rank() == 2, "DecodeSession: src_ids must be [N, T]");
  const index_t n = src_ids.dim(0), ts = src_ids.dim(1);
  QDNN_CHECK(n >= 1 && n <= config_.max_batch,
             "DecodeSession: batch size " << n << " outside [1, "
                                          << config_.max_batch << "]");
  QDNN_CHECK(ts >= 1 && ts <= max_src_,
             "DecodeSession: source length " << ts << " outside [1, "
                                             << max_src_ << "]");
  QDNN_CHECK(src_lengths.empty() ||
                 static_cast<index_t>(src_lengths.size()) == n,
             "DecodeSession: src_lengths size");

  // The exact training-path encoder, so ragged sources mask identically
  // to greedy_decode_reference.
  const Tensor enc_out = model_->encode(src_ids, src_lengths);
  src_lengths_ = src_lengths;
  if (n != bound_n_ || ts != bound_ts_) bind_views(n, ts);

  const ConstTensorView enc_view(Shape{n * ts, d_model_}, enc_out.data());
  for (index_t l = 0; l < model_->num_decoder_layers(); ++l) {
    ws_.reset();
    model_->decoder_layer(l).cross_attention().project_kv(
        enc_view, n, ts,
        TensorView(Shape{n, ts, proj_dim_},
                   cross_k_[static_cast<std::size_t>(l)].data()),
        TensorView(Shape{n, ts, proj_dim_},
                   cross_v_[static_cast<std::size_t>(l)].data()),
        ws_);
  }
  cur_step_ = 0;
  primed_ = true;
}

void DecodeSession::run_step(const std::vector<index_t>& tokens) {
  const index_t n = bound_n_;
  // Embed the new token at position cur_step_: y = E[id]·sqrt(d) + PE[p],
  // the exact operation order of the training path.
  const Tensor& table = model_->positional().table();
  const float* weights = model_->tgt_embedding().weight().value.data();
  const float scale = std::sqrt(static_cast<float>(d_model_));
  const float* pe = table.data() + cur_step_ * d_model_;
  for (index_t r = 0; r < n; ++r) {
    const index_t id = tokens[static_cast<std::size_t>(r)];
    QDNN_CHECK(id >= 0 && id < vocab_,
               "DecodeSession: token id " << id << " out of vocab "
                                          << vocab_);
    const float* e = weights + id * d_model_;
    float* y = embed_buf_.data() + r * d_model_;
    for (index_t d = 0; d < d_model_; ++d) y[d] = e[d] * scale + pe[d];
  }

  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const nn::PipelineStage& st = stages_[i];
    if (st.is_add()) {
      // Residual-add stage: out = in + addend, the exact operand order of
      // the training path's `main += residual`.
      const float* a = in_views_[i].data();
      const float* b = add_views_[i].data();
      float* o = out_views_[i].data();
      const index_t count = out_views_[i].numel();
      for (index_t j = 0; j < count; ++j) o[j] = a[j] + b[j];
      continue;
    }
    // Scratch lives only within a stage; rewinding here caps the
    // workspace at the per-stage maximum instead of the pipeline sum.
    ws_.reset();
    st.module->forward_into(in_views_[i], out_views_[i], ws_);
  }

  // Greedy head: first-maximum argmax, matching greedy_decode_reference.
  next_tokens_.resize(static_cast<std::size_t>(n));
  const float* logits = buffers_.back().data();
  for (index_t r = 0; r < n; ++r) {
    const float* row = logits + r * vocab_;
    index_t best = 0;
    for (index_t v = 1; v < vocab_; ++v)
      if (row[v] > row[best]) best = v;
    next_tokens_[static_cast<std::size_t>(r)] = best;
  }
  ++cur_step_;
}

const std::vector<index_t>& DecodeSession::step(
    const std::vector<index_t>& tokens) {
  QDNN_CHECK(primed_, "DecodeSession: step() before prime()");
  QDNN_CHECK(cur_step_ < config_.max_steps,
             "DecodeSession: ring exhausted after " << config_.max_steps
                                                    << " steps — prime() "
                                                       "again");
  QDNN_CHECK(static_cast<index_t>(tokens.size()) == bound_n_,
             "DecodeSession: " << tokens.size() << " tokens for batch "
                               << bound_n_);
  run_step(tokens);
  return next_tokens_;
}

std::vector<std::vector<index_t>> DecodeSession::generate(index_t bos,
                                                          index_t eos) {
  QDNN_CHECK(primed_, "DecodeSession: generate() before prime()");
  QDNN_CHECK(cur_step_ == 0,
             "DecodeSession: generate() needs a fresh prime()");
  const index_t n = bound_n_;
  std::vector<std::vector<index_t>> outputs(static_cast<std::size_t>(n));
  feed_tokens_.assign(static_cast<std::size_t>(n), bos);
  done_.assign(static_cast<std::size_t>(n), 0);

  for (index_t s = 0; s < config_.max_steps; ++s) {
    step(feed_tokens_);
    bool any_active = false;
    for (index_t r = 0; r < n; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      if (done_[ri]) {
        // Finished rows keep riding the batch (their cache rows are
        // computed but ignored), fed eos like the reference's pad slot.
        feed_tokens_[ri] = eos;
        continue;
      }
      const index_t best = next_tokens_[ri];
      feed_tokens_[ri] = best;
      if (best == eos) {
        done_[ri] = 1;
      } else {
        outputs[ri].push_back(best);
        any_active = true;
      }
    }
    if (!any_active) break;
  }
  return outputs;
}

}  // namespace qdnn::runtime
