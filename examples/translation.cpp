// Example: machine translation with a quadratic Transformer — the
// paper's Sec. IV-B workload on the synthetic German→English-like corpus.
//
// Trains a baseline Transformer and a quadratic one (proposed neurons in
// all multi-head-attention projections, reduced projection width), then
// decodes a few test sentences and reports BLEU under all four Table II
// evaluation settings.
//
// Run: ./build/examples/translation [epochs]
#include <cstdio>
#include <cstdlib>

#include "train/seq2seq_trainer.h"

using namespace qdnn;

int main(int argc, char** argv) {
  const index_t epochs = argc > 1 ? std::atoi(argv[1]) : 12;

  data::TranslationConfig corpus_config;
  corpus_config.train_sentences = 1200;
  corpus_config.test_sentences = 64;
  const data::TranslationCorpus corpus =
      make_translation_corpus(corpus_config);

  for (bool quadratic : {false, true}) {
    models::TransformerConfig config;
    config.src_vocab = 256;
    config.tgt_vocab = 256;
    config.d_model = 48;
    config.n_heads = 4;
    config.n_layers = 2;
    config.d_ff = 96;
    config.max_len = 32;
    config.dropout = 0.1f;
    config.seed = 3;
    if (quadratic) {
      config.proj_dim = 24;  // reduced width: the Table II −20% mechanism
      config.spec = quadratic::NeuronSpec::proposed(3, 1e-2f);
    } else {
      config.proj_dim = 48;
      config.spec = quadratic::NeuronSpec::linear();
    }
    models::Transformer model(config);
    std::printf("=== %s Transformer: %lld parameters ===\n",
                quadratic ? "quadratic" : "baseline",
                static_cast<long long>(model.num_parameters()));

    train::Seq2SeqConfig tc;
    tc.epochs = epochs;
    tc.batch_size = 32;
    tc.peak_lr = 5e-3f;  // Adam + warmup/inv-sqrt (Vaswani recipe)
    tc.warmup_steps = 100;
    train::Seq2SeqTrainer trainer(model, tc);
    trainer.on_epoch = [](const train::Seq2SeqEpoch& e) {
      std::printf("  epoch %2lld  loss %.4f  token acc %5.1f%%\n",
                  static_cast<long long>(e.epoch), e.train_loss,
                  100 * e.token_accuracy);
    };
    trainer.fit(corpus);

    // Decode a few test sentences.
    const data::Seq2SeqBatch sample = data::make_batch(corpus.test, 0, 3);
    const auto decoded = model.greedy_decode(
        sample.src, sample.src_lengths, data::Vocab::kBos,
        data::Vocab::kEos, 16);
    for (index_t i = 0; i < 3; ++i) {
      const auto& ex = corpus.test[static_cast<std::size_t>(i)];
      std::printf("  ref: %s\n  hyp: %s\n", ex.tgt_surface.c_str(),
                  data::surface_from_ids(
                      corpus.tgt_vocab,
                      decoded[static_cast<std::size_t>(i)])
                      .c_str());
    }

    for (const auto& [name, setting] :
         std::vector<std::pair<std::string, train::BleuSettings>>{
             {"13a/cased", {data::TokenizerKind::k13a, true}},
             {"13a/uncased", {data::TokenizerKind::k13a, false}},
             {"intl/cased", {data::TokenizerKind::kInternational, true}},
             {"intl/uncased",
              {data::TokenizerKind::kInternational, false}}}) {
      const data::BleuResult bleu = trainer.evaluate_bleu(corpus, setting);
      std::printf("  BLEU %-13s %.2f\n", name.c_str(), bleu.bleu);
    }
    std::printf("\n");
  }
  return 0;
}
