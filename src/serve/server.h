// Server: the multi-tenant serving front end — N BatchScheduler shards,
// each pumped by its own worker thread, behind one thread-safe
// submit/cancel/drain surface.
//
// A single BatchScheduler is single-threaded by contract: one thread
// pumps step() and drains take_results().  That caps the whole serving
// layer at one core.  The Server turns it into a scale-out front end a
// multi-tenant service can sit behind:
//
//   * sharding — each shard owns one BatchScheduler bound to its OWN
//     model replica (DecodeSession binds a Transformer exclusively, and
//     replicas share no mutable state), pumped by a dedicated worker
//     thread.  Shards never touch each other, so aggregate tokens/sec
//     scales near-linearly with shards on a multi-core machine
//     (bench/serve_bench.cpp measures 1-shard vs 4-shard throughput).
//   * routing — submit() join-shortest-queues: the request goes to the
//     shard with the fewest unresolved requests (atomic counters, no
//     locks on the read).  Ids are globally unique and encode the shard
//     (id mod shards), so cancel() routes without a lookup table.
//   * per-request behaviors — streaming callbacks, cancellation,
//     deadlines, priority classes with aging, and bounded-queue load
//     shedding all ride the per-shard scheduler (serve/scheduler.h);
//     the Server only adds routing and thread safety on top.
//
// Determinism: a request's tokens depend only on its own source,
// sampling seed and the model weights — never on the shard it lands on,
// the batch around it, or cancellation activity elsewhere (the per-row
// masked-attention contract).  Handing the Server N replicas built
// identically (same config, same init seed, same training history)
// therefore makes every non-cancelled request bit-identical to a
// 1-shard — or solo — decode; the constructor validates the replica
// configs field-by-field.
//
// Thread-safety contract: submit / cancel / take_results / stats /
// wait_idle are safe from any thread, concurrently with each other and
// with the shard workers.  A worker holds its shard's lock only for the
// duration of ONE scheduler tick and releases it between ticks, so
// front-end calls on a busy shard wait at most one batch step — an
// arrival admits into the running batch and a cancel lands at the next
// tick boundary, never after the whole busy period drains.  Retired
// results land in a per-shard mailbox
// drained under that shard's lock (never racing worker-thread
// retirement); every submitted id resolves into exactly one result
// (fuzzed multi-threaded in tests/serve/server_test.cpp).  Request
// on_token callbacks run on shard worker threads with the shard lock
// held — they must be fast and must not call back into the Server.
// Destroying the Server stops the workers promptly; drain results (and
// wait_idle()) first if you need every outstanding request resolved.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/scheduler.h"

namespace qdnn::serve {

struct ServerConfig {
  // Per-shard scheduler configuration (ring geometry, admission mode,
  // priorities, max_queue backpressure — all applied per shard).
  BatchSchedulerConfig shard;
  // Number of shards; 0 (default) = one per model replica handed to the
  // constructor.  When nonzero it must equal models.size().
  index_t shards = 0;
};

// Per-shard scheduler snapshots plus a cross-shard roll-up: counters and
// sample counts are summed, mean_occupancy and tick_mean_ms are
// stepped-tick weighted, and every percentile field (queue wait, TTFT,
// latency, tick p99) reports the WORST shard — a conservative tail;
// per-shard tick clocks advance independently, so mixing their samples
// would be meaningless.
struct ServerStats {
  std::vector<SchedulerStats> per_shard;
  SchedulerStats totals;
};

class Server {
 public:
  // Takes one Transformer replica per shard (identically constructed —
  // validated field-by-field against models[0]) and starts one worker
  // thread per shard.  The models must outlive the Server.
  Server(const std::vector<models::Transformer*>& models,
         ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Routes the request to the shard with the fewest unresolved requests
  // and submits it there.  Returns a globally unique id (the shard index
  // is id mod shards()).  Thread-safe; throws on validation failure
  // (nothing submitted).  Request::id must be left at -1 — the Server
  // owns id assignment.  A load-shed (shard max_queue full) resolves the
  // id with a kShed result like any other resolution.
  index_t submit(Request request);

  // Cancels the in-flight request `id` on its shard (see
  // BatchScheduler::cancel).  Returns false when the id is unknown or
  // already resolved.  Thread-safe.
  bool cancel(index_t id);

  // Moves out every result resolved since the last call, across all
  // shards (per-shard mailboxes drained under the shard lock — safe
  // concurrently with worker-thread retirement and with other callers).
  std::vector<RequestResult> take_results();

  // Blocks until every submitted request has resolved into a mailbox (or
  // been taken).  Pair with take_results() to collect them.
  void wait_idle();

  // Submitted and not yet resolved into a mailbox.
  index_t pending() const { return unresolved_.load(); }
  index_t shards() const { return static_cast<index_t>(shards_.size()); }
  ServerStats stats() const;

  // One shard's scheduler snapshot (not the worst-shard roll-up) —
  // instruments registered under "shard<i>." in metrics().  Thread-safe;
  // waits at most one tick on the shard's worker.
  SchedulerStats shard_stats(index_t shard) const;

  // The server-owned registry every shard records into: per-shard
  // scheduler instruments ("shard<i>.*") plus the per-replica weight
  // checksums ("server.shard<i>.weight_checksum").  snapshot() and the
  // exporters are safe from any thread, concurrently with the workers.
  const obs::MetricsRegistry& metrics() const { return registry_; }

  // The replica weight checksum computed for `shard` at construction
  // (FNV-1a over every parameter's float bits, folded to 52 bits so the
  // gauge holds it exactly).  Equal across shards by construction — the
  // constructor rejects diverged replicas; re-exported as a gauge so
  // post-construction drift is visible in snapshots after a hot-swap.
  double weight_checksum(index_t shard) const;

 private:
  struct Shard {
    std::unique_ptr<BatchScheduler> scheduler;
    mutable std::mutex mu;            // guards scheduler + mailbox
    std::condition_variable cv;       // work signal for the worker
    std::vector<RequestResult> mailbox;
    std::atomic<index_t> outstanding{0};  // JSQ load, lock-free reads
    // Front-end calls currently blocked on mu.  The worker re-locks
    // every tick and would otherwise barge past them indefinitely; it
    // yields between ticks while this is nonzero (see shard_loop).
    mutable std::atomic<index_t> waiters{0};
    std::thread worker;
  };

  // Acquires shard.mu for a front-end call, registering the caller in
  // shard.waiters first so a busy worker hands the lock over at the
  // next tick boundary instead of barging.
  static std::unique_lock<std::mutex> lock_front(const Shard& shard);

  void shard_loop(Shard& shard);
  // Moves freshly retired results from the shard's scheduler into its
  // mailbox and updates the idle accounting.  Caller holds shard.mu.
  void drain_locked(Shard& shard);

  // Declared before shards_ so it outlives every scheduler recording
  // into it (members destroy in reverse declaration order).
  obs::MetricsRegistry registry_;
  std::vector<double> weight_checksums_;  // one per shard, at construction
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<index_t> next_seq_{0};    // id = seq * shards + shard
  std::atomic<index_t> unresolved_{0};  // submitted − mailboxed
  std::atomic<bool> stop_{false};
  mutable std::mutex idle_mu_;
  std::condition_variable idle_cv_;
};

}  // namespace qdnn::serve
