// Continuous vs static batching under Poisson load, and synchronous vs
// asynchronous (prefill/decode-split) admission under prefill-heavy load.
//
// Workload 1 — a trace of decode requests (Poisson arrivals, mixed source
// lengths, mixed step budgets) served two ways over the same model:
//
//   * static     — the PR 3 pattern: gangs of up to max_batch requests
//                  prime together and the whole batch occupies its KV
//                  rings until the SLOWEST row finishes; a freed slot
//                  only refills when the next gang starts.
//   * continuous — serve::BatchScheduler: requests are admitted into
//                  free rows mid-flight (per-row prime), every tick steps
//                  the whole batch at per-row ring positions, retired
//                  rows refill immediately.
//
// Workload 2 — a prefill-heavy trace (LONG sources, SHORT decode budgets:
// admission cost dominates) served by the continuous scheduler with
//
//   * sync admission  — the encoder runs on the serving thread inside the
//                       tick (prefill_workers = 0), so every admission
//                       stretches that tick for all live rows, and
//   * async admission — a PrefillPool worker computes the encoder off-
//                       thread and the tick only commits finished K/V
//                       (prefill_workers = 1),
//
// measuring per-tick wall time: p99 tick latency is the jitter a long
// prefill inflicts on every in-flight decode.
//
// Workload 3 — multi-shard scaling: the same trace through serve::Server
// at 1 shard and at 4 shards (one identically-seeded replica per shard,
// join-shortest-queue routing).  Aggregate tokens/sec should scale
// near-linearly with shards ON A MULTI-CORE RUNNER; the JSON reports the
// measured speedup next to hardware_threads so a single-core container
// is not mistaken for a scaling regression.  Per-request streams are
// asserted bit-identical across 1-shard, 4-shard and the single
// scheduler — the shard-invariance contract.
//
// Workload 4 — adversarial burst: giant sources amid small ones slam two
// tightly bounded shards (max_queue load-shedding) and a cancel storm
// follows.  Asserted: every submitted id resolves exactly once (no
// leaked rows, no deadlock — the run would hang), the burst sheds,
// every accepted cancel resolves kCancelled, completed streams match the
// solo reference and cancelled/expired streams are prefixes of it.
//
// All mode pairs emit bit-identical greedy tokens per request (asserted),
// so both comparisons are pure scheduling.  `--smoke` runs small traces
// end-to-end — the CI serve-regression gate; `--json` additionally writes
// a machine-readable summary to BENCH_serve.json (tokens/sec, p99 tick
// latency, mean occupancy, queue-wait/TTFT percentiles per mode, the
// sharding speedup and the adversarial counts) for cross-PR tracking.
#include <cstdio>
#include <cstring>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "linalg/gemm.h"
#include "linalg/gemm_backend.h"
#include "linalg/packed_weights.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/server.h"

using namespace qdnn;
using qdnn::bench::fmt;
using qdnn::bench::print_header;
using qdnn::bench::print_row;
using qdnn::bench::print_rule;

namespace {

struct TraceRequest {
  Tensor src;
  index_t src_length;
  index_t budget;
  index_t arrival_tick;
};

struct Measured {
  double tokens_per_sec = 0.0;
  double p50_ticks = 0.0, p99_ticks = 0.0;
  double p50_ms = 0.0, p99_ms = 0.0;
  // Per-tick wall time over stepped ticks (admissions included): the
  // jitter metric of the prefill/decode split.
  double tick_mean_ms = 0.0, tick_p99_ms = 0.0;
  double occupancy = 0.0;
  // Scheduler-side queue-wait and time-to-first-token percentiles
  // (tick-denominated, normal class — the SchedulerStats snapshot).
  // Zero for the static gang driver, which has no scheduler.
  double queue_wait_p50 = 0.0, queue_wait_p99 = 0.0;
  double ttft_p50 = 0.0, ttft_p99 = 0.0;
  index_t total_tokens = 0;
  std::map<index_t, std::vector<index_t>> outputs;  // trace idx → tokens
  // Per-shard mean occupancy (run_sharded only) — the load-balance view
  // join-shortest-queue routing is supposed to keep flat.
  std::vector<double> shard_occupancy;
  // Paged-KV counters (PR 10): prefix-cache traffic and page-pressure
  // preemptions over the run.
  long long prefix_hits = 0;
  long long prefix_misses = 0;
  index_t preemptions = 0;
};

void fill_class_stats(Measured& m, const serve::SchedulerClassStats& cls) {
  m.queue_wait_p50 = cls.queue_wait_p50;
  m.queue_wait_p99 = cls.queue_wait_p99;
  m.ttft_p50 = cls.ttft_p50;
  m.ttft_p99 = cls.ttft_p99;
}

models::TransformerConfig model_config() {
  models::TransformerConfig config;
  config.src_vocab = 256;
  config.tgt_vocab = 256;
  config.d_model = 48;
  config.n_heads = 4;
  config.n_layers = 2;
  config.d_ff = 96;
  config.proj_dim = 48;
  config.max_len = 32;
  config.dropout = 0.0f;
  config.seed = 17;
  return config;
}

// Poisson arrivals (exponential inter-arrival at `rate` requests per
// tick) with sources in [ts_lo, ts_hi] and budgets in [b_lo, b_hi].
// Mixed-length traffic (wide ranges) is where gang scheduling leaves
// rows idle; long-source/short-budget traffic (prefill-heavy) is where
// synchronous admission jitters every tick.
std::vector<TraceRequest> make_trace(index_t count, double rate,
                                     index_t ts_lo, index_t ts_hi,
                                     index_t b_lo, index_t b_hi,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TraceRequest> trace;
  double arrival = 0.0;
  for (index_t i = 0; i < count; ++i) {
    arrival += -std::log(1.0 - rng.uniform()) / rate;
    TraceRequest r;
    const index_t ts = ts_lo + rng.uniform_int(ts_hi - ts_lo + 1);
    r.src = Tensor{Shape{1, ts}};
    for (index_t j = 0; j < ts; ++j)
      r.src[j] = static_cast<float>(3 + rng.uniform_int(253));
    r.src_length = ts;
    r.budget = b_lo + rng.uniform_int(b_hi - b_lo + 1);
    r.arrival_tick = static_cast<index_t>(arrival);
    trace.push_back(std::move(r));
  }
  return trace;
}

// Prefix-reuse traffic: every request opens with one of `n_prompts`
// shared "system prompts" (full-length sources drawn once), Poisson
// arrivals, mixed short budgets — the workload the content-hashed
// prefix cache exists for.
std::vector<TraceRequest> make_prefix_trace(index_t count, double rate,
                                            index_t n_prompts, index_t ts,
                                            index_t b_lo, index_t b_hi,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> prompts;
  for (index_t p = 0; p < n_prompts; ++p) {
    Tensor src{Shape{1, ts}};
    for (index_t j = 0; j < ts; ++j)
      src[j] = static_cast<float>(3 + rng.uniform_int(253));
    prompts.push_back(std::move(src));
  }
  std::vector<TraceRequest> trace;
  double arrival = 0.0;
  for (index_t i = 0; i < count; ++i) {
    arrival += -std::log(1.0 - rng.uniform()) / rate;
    TraceRequest r;
    r.src = prompts[static_cast<std::size_t>(i % n_prompts)];
    r.src_length = ts;
    r.budget = b_lo + rng.uniform_int(b_hi - b_lo + 1);
    r.arrival_tick = static_cast<index_t>(arrival);
    trace.push_back(std::move(r));
  }
  return trace;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[idx];
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

// Folds the measured per-tick durations into Measured and converts the
// tick-denominated request latencies to ms with the SAME mean, so
// tick_mean_ms and p50_ms/p50_ticks stay consistent in the JSON.
void finish_tick_stats(Measured& m, const std::vector<double>& tick_ms) {
  double sum = 0.0;
  for (const double t : tick_ms) sum += t;
  m.tick_mean_ms =
      tick_ms.empty() ? 0.0 : sum / static_cast<double>(tick_ms.size());
  m.tick_p99_ms = percentile(tick_ms, 0.99);
  m.p50_ms = m.p50_ticks * m.tick_mean_ms;
  m.p99_ms = m.p99_ticks * m.tick_mean_ms;
}

constexpr index_t kBos = 1, kEos = 2;

Measured run_continuous(models::Transformer& model,
                        const std::vector<TraceRequest>& trace,
                        index_t max_batch, index_t max_steps,
                        index_t prefill_workers = 0,
                        index_t pool_pages = 0,
                        index_t prefix_entries = -1) {
  serve::BatchSchedulerConfig config;
  config.session.max_batch = max_batch;
  config.session.max_steps = max_steps;
  config.session.pool_pages = pool_pages;
  if (prefix_entries >= 0)
    config.session.prefix_cache_entries = prefix_entries;
  config.bos = kBos;
  config.eos = kEos;
  config.prefill_workers = prefill_workers;
  serve::BatchScheduler scheduler(model, config);

  std::map<index_t, index_t> id_to_index;
  std::vector<double> latency_ticks, tick_ms;
  Measured m;
  std::size_t next = 0, done = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (done < trace.size()) {
    while (next < trace.size() &&
           trace[next].arrival_tick <= scheduler.ticks()) {
      serve::Request req;
      req.src_ids = trace[next].src;
      req.src_length = trace[next].src_length;
      req.max_new_tokens = trace[next].budget;
      id_to_index[scheduler.submit(std::move(req))] =
          static_cast<index_t>(next);
      ++next;
    }
    // Async: block for an in-flight prefill instead of free-running
    // idle ticks (sync mode never waits: the prefill elapses inside the
    // admission tick).
    if (scheduler.wait_for_prefill()) continue;
    // Time each stepped tick (admissions included): with sync admission
    // a long prefill lands inside the tick; with async it does not.
    const auto tick0 = std::chrono::steady_clock::now();
    const index_t stepped = scheduler.step();
    if (stepped > 0) tick_ms.push_back(1e3 * seconds_since(tick0));
    for (serve::RequestResult& r : scheduler.take_results()) {
      latency_ticks.push_back(
          static_cast<double>(r.finish_tick - r.submit_tick));
      m.outputs[id_to_index.at(r.id)] = std::move(r.tokens);
      ++done;
    }
  }
  const double elapsed = seconds_since(t0);
  m.total_tokens = scheduler.total_tokens();
  m.tokens_per_sec = m.total_tokens / elapsed;
  m.p50_ticks = percentile(latency_ticks, 0.50);
  m.p99_ticks = percentile(latency_ticks, 0.99);
  finish_tick_stats(m, tick_ms);
  m.occupancy = scheduler.mean_occupancy();
  const serve::SchedulerStats stats = scheduler.stats();
  fill_class_stats(m, stats.per_class[static_cast<std::size_t>(
                       serve::Priority::kNormal)]);
  m.prefix_hits = stats.prefix_hits;
  m.prefix_misses = stats.prefix_misses;
  m.preemptions = stats.preemptions;
  return m;
}

Measured run_static(models::Transformer& model,
                    const std::vector<TraceRequest>& trace,
                    index_t max_batch, index_t max_steps) {
  runtime::DecodeSessionConfig sc;
  sc.max_batch = max_batch;
  sc.max_steps = max_steps;
  runtime::DecodeSession session(model, sc);

  std::vector<double> latency_ticks, tick_ms;
  Measured m;
  index_t tick = 0, stepped_ticks = 0, occupancy_sum = 0;
  std::size_t next = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (next < trace.size()) {
    if (trace[next].arrival_tick > tick) {
      ++tick;  // idle: the gang driver waits for the next arrival
      continue;
    }
    // Gang admission: up to max_batch requests that have arrived, padded
    // to one [n, Ts] batch.  No mid-gang refill — the static pattern.
    std::vector<std::size_t> gang;
    while (next < trace.size() && trace[next].arrival_tick <= tick &&
           static_cast<index_t>(gang.size()) < max_batch)
      gang.push_back(next++);
    const index_t n = static_cast<index_t>(gang.size());
    index_t ts = 0;
    for (const std::size_t g : gang)
      ts = std::max(ts, trace[g].src.dim(1));
    Tensor src{Shape{n, ts}};
    std::vector<index_t> lengths;
    for (index_t r = 0; r < n; ++r) {
      const TraceRequest& req = trace[gang[static_cast<std::size_t>(r)]];
      const index_t len = req.src.dim(1);
      for (index_t j = 0; j < len; ++j) src.at(r, j) = req.src[j];
      lengths.push_back(req.src_length);
    }
    // The gang prime lands inside the first tick's wall time — the exact
    // accounting of the continuous scheduler's synchronous admission, so
    // tick_p99_ms is comparable across all modes.
    auto tick0 = std::chrono::steady_clock::now();
    session.prime(src, lengths);

    std::vector<index_t> feed(static_cast<std::size_t>(n), kBos);
    std::vector<char> row_done(static_cast<std::size_t>(n), 0);
    index_t live = n;
    while (live > 0) {
      const std::vector<index_t>& out = session.step(feed);
      tick_ms.push_back(1e3 * seconds_since(tick0));
      tick0 = std::chrono::steady_clock::now();
      ++tick;
      ++stepped_ticks;
      occupancy_sum += live;
      for (index_t r = 0; r < n; ++r) {
        const auto ri = static_cast<std::size_t>(r);
        if (row_done[ri]) {
          feed[ri] = kEos;  // finished rows ride the gang, uncounted
          continue;
        }
        const TraceRequest& req =
            trace[gang[static_cast<std::size_t>(r)]];
        auto& tokens = m.outputs[static_cast<index_t>(gang[ri])];
        bool finished = false;
        if (out[ri] == kEos) {
          finished = true;
        } else {
          tokens.push_back(out[ri]);
          ++m.total_tokens;
          feed[ri] = out[ri];
          finished = static_cast<index_t>(tokens.size()) >= req.budget;
        }
        if (finished) {
          row_done[ri] = 1;
          --live;
          latency_ticks.push_back(
              static_cast<double>(tick - req.arrival_tick));
        }
      }
    }
  }
  const double elapsed = seconds_since(t0);
  m.tokens_per_sec = m.total_tokens / elapsed;
  m.p50_ticks = percentile(latency_ticks, 0.50);
  m.p99_ticks = percentile(latency_ticks, 0.99);
  finish_tick_stats(m, tick_ms);
  m.occupancy = stepped_ticks > 0
                    ? static_cast<double>(occupancy_sum) / stepped_ticks
                    : 0.0;
  return m;
}

// Workload 3: the trace through serve::Server at `shards` shards, one
// identically-seeded replica per shard, everything submitted up front (a
// saturating burst — the scaling measurement, not an arrival study).
Measured run_sharded(const std::vector<TraceRequest>& trace,
                     index_t shards, index_t max_batch,
                     index_t max_steps) {
  std::vector<std::unique_ptr<models::Transformer>> replicas;
  std::vector<models::Transformer*> raw;
  for (index_t i = 0; i < shards; ++i) {
    replicas.push_back(
        std::make_unique<models::Transformer>(model_config()));
    replicas.back()->set_training(false);
    raw.push_back(replicas.back().get());
  }
  serve::ServerConfig config;
  config.shard.session.max_batch = max_batch;
  config.shard.session.max_steps = max_steps;
  config.shard.bos = kBos;
  config.shard.eos = kEos;
  serve::Server server(raw, config);

  std::map<index_t, index_t> id_to_index;
  Measured m;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    serve::Request req;
    req.src_ids = trace[i].src;
    req.src_length = trace[i].src_length;
    req.max_new_tokens = trace[i].budget;
    id_to_index[server.submit(std::move(req))] = static_cast<index_t>(i);
  }
  server.wait_idle();
  const double elapsed = seconds_since(t0);
  for (serve::RequestResult& r : server.take_results())
    m.outputs[id_to_index.at(r.id)] = std::move(r.tokens);
  const serve::ServerStats stats = server.stats();
  m.total_tokens = stats.totals.total_tokens;
  m.tokens_per_sec = m.total_tokens / elapsed;
  m.occupancy = stats.totals.mean_occupancy;
  // Latency and tick timing come from the per-shard scheduler samples
  // rolled up by Server::stats (worst shard for percentiles, stepped-tick
  // weighted mean) — the bench thread cannot time ticks that happen on
  // shard workers.
  m.p50_ticks = stats.totals.latency_p50;
  m.p99_ticks = stats.totals.latency_p99;
  m.tick_mean_ms = stats.totals.tick_mean_ms;
  m.tick_p99_ms = stats.totals.tick_p99_ms;
  m.p50_ms = m.p50_ticks * m.tick_mean_ms;
  m.p99_ms = m.p99_ticks * m.tick_mean_ms;
  fill_class_stats(m, stats.totals.per_class[static_cast<std::size_t>(
                       serve::Priority::kNormal)]);
  for (index_t s = 0; s < server.shards(); ++s)
    m.shard_occupancy.push_back(
        stats.per_shard[static_cast<std::size_t>(s)].mean_occupancy);
  return m;
}

// Workload 4: the adversarial burst.  Returns the per-reason resolution
// counts for the JSON; every lifecycle invariant is QDNN_CHECKed right
// here so the CI smoke fails loudly, not quietly.
struct AdversarialCounts {
  index_t requests = 0, sheds = 0, cancel_hits = 0, cancelled = 0,
          expired = 0, completed = 0, errored = 0;
};

AdversarialCounts run_adversarial(bool smoke, index_t max_steps,
                                  index_t max_src) {
  const index_t count = smoke ? 24 : 64;
  const index_t max_batch = 2, shards = 2, max_queue = 3;
  Rng rng(211);

  struct Entry {
    Tensor src;
    index_t budget = 0;
    serve::Priority priority = serve::Priority::kNormal;
    index_t deadline_tick = 0;
    std::vector<index_t> reference;
  };
  std::vector<std::unique_ptr<models::Transformer>> replicas;
  std::vector<models::Transformer*> raw;
  for (index_t i = 0; i < shards; ++i) {
    replicas.push_back(
        std::make_unique<models::Transformer>(model_config()));
    replicas.back()->set_training(false);
    raw.push_back(replicas.back().get());
  }

  std::vector<Entry> entries;
  for (index_t i = 0; i < count; ++i) {
    Entry e;
    // Every 4th source is GIANT (a full-max_src prefill amid 4-token
    // ones) — the head-of-line blocker the bounded queue must shed
    // around, in both shards' prefill pools.
    const index_t ts = i % 4 == 0 ? max_src : 4;
    e.src = Tensor{Shape{1, ts}};
    for (index_t j = 0; j < ts; ++j)
      e.src[j] = static_cast<float>(3 + rng.uniform_int(253));
    e.budget = 4 + rng.uniform_int(std::min<index_t>(5, max_steps - 4));
    e.priority = static_cast<serve::Priority>(rng.uniform_int(3));
    if (i % 7 == 3) e.deadline_tick = 2 + rng.uniform_int(4);
    // The solo-decode oracle (never binds the decoder, so it works
    // alongside the Server below).
    e.reference = replicas[0]->greedy_decode_reference(
        e.src, {}, kBos, kEos, e.budget)[0];
    entries.push_back(std::move(e));
  }

  serve::ServerConfig config;
  config.shard.session.max_batch = max_batch;
  config.shard.session.max_steps = max_steps;
  config.shard.bos = kBos;
  config.shard.eos = kEos;
  config.shard.max_queue = max_queue;
  config.shard.prefill_workers = 1;  // giants compute on the pool
  serve::Server server(raw, config);

  std::map<index_t, index_t> id_to_index;
  std::vector<index_t> ids;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    serve::Request req;
    req.src_ids = entries[i].src;
    req.max_new_tokens = entries[i].budget;
    req.priority = entries[i].priority;
    req.deadline_tick = entries[i].deadline_tick;
    const index_t id = server.submit(std::move(req));
    id_to_index[id] = static_cast<index_t>(i);
    ids.push_back(id);
  }
  // The cancel storm: every third id, plus an immediate double-cancel
  // that must always be a no-op.
  AdversarialCounts counts;
  counts.requests = count;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    if (server.cancel(ids[i])) {
      ++counts.cancel_hits;
      QDNN_CHECK(!server.cancel(ids[i]),
                 "serve bench: double-cancel of id " << ids[i]
                                                     << " reported a hit");
    }
  }
  server.wait_idle();  // a deadlock or leaked row hangs right here

  auto results = server.take_results();
  QDNN_CHECK(results.size() == ids.size(),
             "serve bench: adversarial run resolved "
                 << results.size() << " results for " << ids.size()
                 << " submits — leaked or duplicated requests");
  std::set<index_t> seen;
  for (const serve::RequestResult& r : results) {
    QDNN_CHECK(seen.insert(r.id).second,
               "serve bench: id " << r.id << " resolved twice");
    const Entry& e =
        entries[static_cast<std::size_t>(id_to_index.at(r.id))];
    switch (r.reason) {
      case serve::FinishReason::kShed:
        ++counts.sheds;
        QDNN_CHECK(r.tokens.empty(),
                   "serve bench: shed id " << r.id << " carries tokens");
        break;
      case serve::FinishReason::kCancelled:
      case serve::FinishReason::kDeadline: {
        r.reason == serve::FinishReason::kCancelled ? ++counts.cancelled
                                                    : ++counts.expired;
        QDNN_CHECK(r.tokens.size() <= e.reference.size() &&
                       std::equal(r.tokens.begin(), r.tokens.end(),
                                  e.reference.begin()),
                   "serve bench: id "
                       << r.id
                       << " cut short but NOT a prefix of its solo "
                          "decode");
        break;
      }
      case serve::FinishReason::kEos:
      case serve::FinishReason::kLength:
        ++counts.completed;
        QDNN_CHECK(r.tokens == e.reference,
                   "serve bench: completed id "
                       << r.id << " diverged from its solo decode");
        break;
      case serve::FinishReason::kError:
        ++counts.errored;
        break;
    }
  }
  QDNN_CHECK(counts.sheds > 0,
             "serve bench: a " << count << "-request burst into "
                               << shards << "x max_queue=" << max_queue
                               << " shards did not shed");
  QDNN_CHECK(counts.cancelled == counts.cancel_hits,
             "serve bench: " << counts.cancel_hits
                             << " accepted cancels but "
                             << counts.cancelled
                             << " kCancelled results");
  QDNN_CHECK(counts.errored == 0,
             "serve bench: unexpected kError results in the adversarial "
             "run");
  return counts;
}

// -------------------------------------------------------------------
// Observability workload: the Poisson trace through one continuous
// scheduler twice — tracing off, then tracing on — so the JSON carries
// the phase breakdown (from RequestResult::phases), the per-stage
// decode timings (DecodeSession::stage_profile), the trace-ring event
// count, the gemm introspection counters and the measured tracing
// overhead (on/off tokens-per-sec ratio, contract: within ~2%).  The
// traced run's registry snapshot is also exported as Prometheus text
// (BENCH_serve.prom, a CI artifact).
// -------------------------------------------------------------------
struct ObservabilityResult {
  double tokens_per_sec_off = 0.0;
  double tokens_per_sec_on = 0.0;
  // Phase means in ms over the traced run's completed requests.
  double queue_ms = 0.0, prefill_ms = 0.0, first_token_ms = 0.0,
         decode_ms = 0.0, total_ms = 0.0;
  long long trace_events = 0;
  std::vector<obs::StageTiming> stages;
  std::string prom;  // registry snapshot of the traced run
  long long heap_pack_calls = 0, threaded_dispatches = 0;
};

ObservabilityResult run_observability(models::Transformer& model,
                                      const std::vector<TraceRequest>& trace,
                                      index_t max_batch,
                                      index_t max_steps) {
  ObservabilityResult out;
  const bool was_tracing = obs::trace_enabled();

  auto run_once = [&](bool tracing, bool capture) {
    obs::set_trace_enabled(tracing);
    serve::BatchSchedulerConfig config;
    config.session.max_batch = max_batch;
    config.session.max_steps = max_steps;
    config.bos = kBos;
    config.eos = kEos;
    serve::BatchScheduler scheduler(model, config);
    std::size_t next = 0, done = 0;
    std::vector<serve::RequestResult> results;
    const auto t0 = std::chrono::steady_clock::now();
    while (done < trace.size()) {
      while (next < trace.size() &&
             trace[next].arrival_tick <= scheduler.ticks()) {
        serve::Request req;
        req.src_ids = trace[next].src;
        req.src_length = trace[next].src_length;
        req.max_new_tokens = trace[next].budget;
        scheduler.submit(std::move(req));
        ++next;
      }
      scheduler.step();
      for (serve::RequestResult& r : scheduler.take_results()) {
        results.push_back(std::move(r));
        ++done;
      }
    }
    const double elapsed = seconds_since(t0);
    const double tps = scheduler.total_tokens() / elapsed;
    if (capture) {
      long long n_total = 0, n_admit = 0, n_first = 0;
      double queue = 0.0, prefill = 0.0, first = 0.0, decode = 0.0,
             total = 0.0;
      for (const serve::RequestResult& r : results) {
        if (r.phases.total_ns <= 0) continue;
        total += static_cast<double>(r.phases.total_ns);
        ++n_total;
        if (r.phases.decode_ns > 0) {
          queue += static_cast<double>(r.phases.queue_ns);
          prefill += static_cast<double>(r.phases.prefill_ns);
          decode += static_cast<double>(r.phases.decode_ns);
          ++n_admit;
        }
        if (r.phases.first_token_ns > 0) {
          first += static_cast<double>(r.phases.first_token_ns);
          ++n_first;
        }
      }
      QDNN_CHECK(n_total > 0 && n_admit > 0,
                 "serve bench: traced run produced no phase timelines");
      const double to_ms = 1e-6;
      out.total_ms = total / static_cast<double>(n_total) * to_ms;
      out.queue_ms = queue / static_cast<double>(n_admit) * to_ms;
      out.prefill_ms = prefill / static_cast<double>(n_admit) * to_ms;
      out.decode_ms = decode / static_cast<double>(n_admit) * to_ms;
      out.first_token_ms =
          n_first > 0 ? first / static_cast<double>(n_first) * to_ms : 0.0;
      out.trace_events = scheduler.trace().recorded();
      QDNN_CHECK(out.trace_events > 0,
                 "serve bench: traced run recorded no trace events");
      out.stages = scheduler.session().stage_profile();
      out.prom = scheduler.metrics().snapshot().to_prometheus();
    }
    return tps;
  };

  out.tokens_per_sec_off = run_once(false, false);
  out.tokens_per_sec_on = run_once(true, true);
  obs::set_trace_enabled(was_tracing);
  out.heap_pack_calls = linalg::gemm_heap_pack_calls();
  out.threaded_dispatches = linalg::gemm_threaded_dispatches();
  return out;
}

void report(const char* label, index_t batch, const Measured& m,
            CsvWriter& csv, index_t requests) {
  print_row({label, fmt(m.tokens_per_sec, 0), fmt(m.occupancy, 2),
             fmt(m.p50_ticks, 0) + " / " + fmt(m.p99_ticks, 0),
             fmt(m.p50_ms, 1) + " / " + fmt(m.p99_ms, 1)});
  csv.write_row(std::vector<std::string>{
      label, std::to_string(requests), std::to_string(batch),
      fmt(m.tokens_per_sec, 0), fmt(m.occupancy, 2), fmt(m.p50_ticks, 0),
      fmt(m.p99_ticks, 0), fmt(m.p50_ms, 2), fmt(m.p99_ms, 2)});
}

// Per-request greedy output must never depend on scheduling; every mode
// pair is asserted bit-identical, request by request.
void check_identical(const Measured& a, const Measured& b,
                     std::size_t expected, const char* what) {
  QDNN_CHECK(a.outputs.size() == expected && b.outputs.size() == expected,
             "serve bench: dropped requests in " << what << " (got "
                 << a.outputs.size() << " / " << b.outputs.size()
                 << " of " << expected << ")");
  for (const auto& [idx, tokens] : b.outputs)
    QDNN_CHECK(a.outputs.at(idx) == tokens,
               "serve bench: request " << idx << " diverged between "
                                       << what << " modes");
  QDNN_CHECK(a.total_tokens == b.total_tokens,
             "serve bench: token counts diverged between " << what
                                                           << " modes");
}

// -------------------------------------------------------------------
// Gemm backend section: single-core throughput of the three gemm shapes
// every serving tick is made of — decode step [batch x P] x [P x P],
// prefill [N*T x D] x [D x D], logit projection [batch x vocab] — for
// the active SIMD backend vs the generic reference (prepacked weights,
// the frozen-session path).
// -------------------------------------------------------------------
struct GemmShapeResult {
  const char* name;
  index_t m, n, k;
  double gflops;          // active backend
  double gflops_generic;  // forced-generic reference
};

struct GemmBackendBench {
  const char* backend;  // active backend's name
  std::vector<GemmShapeResult> shapes;
};

double time_gemm_gflops(index_t m, index_t n, index_t k, bool smoke) {
  Rng rng(517);
  Tensor a{Shape{m, k}}, b{Shape{k, n}}, c{Shape{m, n}};
  rng.fill_uniform(a, -1.0f, 1.0f);
  rng.fill_uniform(b, -1.0f, 1.0f);
  linalg::PackedWeights pw;
  pw.pack(false, k, n, b.data(), n);
  const double flops = 2.0 * static_cast<double>(m) * n * k;
  const long long iters =
      std::max<long long>(1, static_cast<long long>(
                                 (smoke ? 2e7 : 4e8) / flops));
  auto run = [&] {
    linalg::gemm_prepacked(false, m, n, k, 1.0f, a.data(), k, pw, 0.0f,
                           c.data(), n);
  };
  for (long long i = 0; i < iters / 10 + 1; ++i) run();  // warm
  const auto t0 = std::chrono::steady_clock::now();
  for (long long i = 0; i < iters; ++i) run();
  const double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return flops * static_cast<double>(iters) / sec / 1e9;
}

GemmBackendBench run_gemm_backend_bench(bool smoke, index_t batch,
                                        index_t prefill_rows) {
  const models::TransformerConfig mc = model_config();
  GemmBackendBench out;
  const linalg::GemmBackend active = linalg::active_gemm_backend();
  out.backend = linalg::gemm_backend_name(active);
  out.shapes = {
      {"decode", batch, mc.d_model, mc.d_model, 0.0, 0.0},
      {"prefill", prefill_rows, mc.d_model, mc.d_model, 0.0, 0.0},
      {"logits", batch, mc.tgt_vocab, mc.d_model, 0.0, 0.0},
  };
  for (GemmShapeResult& s : out.shapes) {
    s.gflops = time_gemm_gflops(s.m, s.n, s.k, smoke);
    if (active == linalg::GemmBackend::kGeneric) {
      s.gflops_generic = s.gflops;
    } else {
      linalg::set_gemm_backend(linalg::GemmBackend::kGeneric);
      s.gflops_generic = time_gemm_gflops(s.m, s.n, s.k, smoke);
      linalg::set_gemm_backend(active);
    }
  }
  return out;
}

void write_json_mode(std::FILE* f, const char* name, const Measured& m,
                     bool last) {
  std::fprintf(
      f,
      "    \"%s\": {\"tokens_per_sec\": %.2f, \"mean_occupancy\": %.4f, "
      "\"p50_latency_ticks\": %.1f, \"p99_latency_ticks\": %.1f, "
      "\"tick_mean_ms\": %.4f, \"tick_p99_ms\": %.4f, "
      "\"queue_wait_p50_ticks\": %.1f, \"queue_wait_p99_ticks\": %.1f, "
      "\"ttft_p50_ticks\": %.1f, \"ttft_p99_ticks\": %.1f}%s\n",
      name, m.tokens_per_sec, m.occupancy, m.p50_ticks, m.p99_ticks,
      m.tick_mean_ms, m.tick_p99_ms, m.queue_wait_p50, m.queue_wait_p99,
      m.ttft_p50, m.ttft_p99, last ? "" : ",");
}

// Machine-readable summary for cross-PR perf tracking (uploaded as a CI
// artifact): tokens/sec, p99 tick latency, mean occupancy and the
// scheduler's queue-wait/TTFT percentiles per mode, the
// concurrent-prefill scaling block (sync vs 1 vs 2 prefill workers —
// the workers prime without an encode mutex, so >=2 cores should show
// >1x; a 1-core runner reads ~1x) and the multi-shard speedup (also
// next to hardware_threads) plus the adversarial-burst resolution
// counts.
void write_json(const char* path, bool smoke, index_t requests,
                index_t prefill_requests, index_t batch,
                const Measured& st, const Measured& ct,
                const Measured& sync_m, const Measured& async_m,
                const Measured& async2_m, const Measured& shard1,
                const Measured& shard4, index_t scaled_shards,
                const AdversarialCounts& adv,
                const GemmBackendBench& gb,
                const ObservabilityResult& ob, index_t px_requests,
                const Measured& px_dense, const Measured& px_tight,
                const Measured& px_reuse, double px_hit_rate) {
  std::FILE* f = std::fopen(path, "w");
  QDNN_CHECK(f != nullptr, "serve bench: cannot open " << path);
  std::fprintf(f, "{\n  \"bench\": \"serve_bench\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n  \"batch\": %lld,\n",
               smoke ? "true" : "false", static_cast<long long>(batch));
  std::fprintf(f, "  \"poisson\": {\n    \"requests\": %lld,\n",
               static_cast<long long>(requests));
  write_json_mode(f, "static", st, false);
  write_json_mode(f, "continuous", ct, true);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"prefill_heavy\": {\n    \"requests\": %lld,\n",
               static_cast<long long>(prefill_requests));
  write_json_mode(f, "sync", sync_m, false);
  write_json_mode(f, "async", async_m, true);
  std::fprintf(f, "  },\n");
  std::fprintf(
      f,
      "  \"concurrent_prefill\": {\"requests\": %lld, "
      "\"hardware_threads\": %u,\n",
      static_cast<long long>(prefill_requests),
      std::thread::hardware_concurrency());
  write_json_mode(f, "sync", sync_m, false);
  write_json_mode(f, "async_1_worker", async_m, false);
  write_json_mode(f, "async_2_workers", async2_m, false);
  std::fprintf(
      f,
      "    \"speedup_2_workers_vs_sync\": %.3f, "
      "\"speedup_2_workers_vs_1\": %.3f, \"bit_identical\": true\n  },\n",
      sync_m.tokens_per_sec > 0.0
          ? async2_m.tokens_per_sec / sync_m.tokens_per_sec
          : 0.0,
      async_m.tokens_per_sec > 0.0
          ? async2_m.tokens_per_sec / async_m.tokens_per_sec
          : 0.0);
  std::fprintf(
      f,
      "  \"sharding\": {\"requests\": %lld, \"hardware_threads\": %u,\n",
      static_cast<long long>(requests),
      std::thread::hardware_concurrency());
  write_json_mode(f, "1_shard", shard1, false);
  char shard_name[32];
  std::snprintf(shard_name, sizeof(shard_name), "%lld_shards",
                static_cast<long long>(scaled_shards));
  write_json_mode(f, shard_name, shard4, false);
  std::fprintf(f, "    \"per_shard_occupancy\": [");
  for (std::size_t i = 0; i < shard4.shard_occupancy.size(); ++i)
    std::fprintf(f, "%s%.4f", i ? ", " : "", shard4.shard_occupancy[i]);
  std::fprintf(f, "],\n");
  std::fprintf(
      f,
      "    \"speedup\": %.3f, \"bit_identical\": true\n  },\n",
      shard1.tokens_per_sec > 0.0
          ? shard4.tokens_per_sec / shard1.tokens_per_sec
          : 0.0);
  std::fprintf(f, "  \"gemm_backend\": {\"backend\": \"%s\",\n",
               gb.backend);
  for (std::size_t i = 0; i < gb.shapes.size(); ++i) {
    const GemmShapeResult& s = gb.shapes[i];
    std::fprintf(
        f,
        "    \"%s\": {\"m\": %lld, \"n\": %lld, \"k\": %lld, "
        "\"gflops\": %.2f, \"gflops_generic\": %.2f, "
        "\"speedup_vs_generic\": %.2f}%s\n",
        s.name, static_cast<long long>(s.m), static_cast<long long>(s.n),
        static_cast<long long>(s.k), s.gflops, s.gflops_generic,
        s.gflops_generic > 0.0 ? s.gflops / s.gflops_generic : 0.0,
        i + 1 < gb.shapes.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(
      f,
      "  \"observability\": {\n"
      "    \"tokens_per_sec_traced\": %.2f, "
      "\"tokens_per_sec_untraced\": %.2f, "
      "\"tracing_overhead_ratio\": %.4f,\n",
      ob.tokens_per_sec_on, ob.tokens_per_sec_off,
      ob.tokens_per_sec_off > 0.0
          ? ob.tokens_per_sec_on / ob.tokens_per_sec_off
          : 0.0);
  std::fprintf(
      f,
      "    \"phase_ms\": {\"queue\": %.4f, \"prefill\": %.4f, "
      "\"first_token\": %.4f, \"decode\": %.4f, \"total\": %.4f},\n",
      ob.queue_ms, ob.prefill_ms, ob.first_token_ms, ob.decode_ms,
      ob.total_ms);
  std::fprintf(f, "    \"trace_events\": %lld,\n", ob.trace_events);
  std::fprintf(
      f,
      "    \"gemm\": {\"heap_pack_calls\": %lld, "
      "\"threaded_dispatches\": %lld},\n",
      ob.heap_pack_calls, ob.threaded_dispatches);
  std::fprintf(f, "    \"stages\": [\n");
  for (std::size_t i = 0; i < ob.stages.size(); ++i) {
    const obs::StageTiming& s = ob.stages[i];
    std::fprintf(
        f,
        "      {\"name\": \"%s\", \"calls\": %lld, \"total_ns\": %lld}%s\n",
        s.name.c_str(), s.calls, s.total_ns,
        i + 1 < ob.stages.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  std::fprintf(
      f,
      "  \"adversarial\": {\"requests\": %lld, \"sheds\": %lld, "
      "\"cancel_hits\": %lld, \"cancelled\": %lld, "
      "\"deadline_expired\": %lld, \"completed\": %lld, "
      "\"errored\": %lld},\n",
      static_cast<long long>(adv.requests),
      static_cast<long long>(adv.sheds),
      static_cast<long long>(adv.cancel_hits),
      static_cast<long long>(adv.cancelled),
      static_cast<long long>(adv.expired),
      static_cast<long long>(adv.completed),
      static_cast<long long>(adv.errored));
  std::fprintf(f, "  \"prefix_reuse\": {\"requests\": %lld,\n",
               static_cast<long long>(px_requests));
  write_json_mode(f, "dense_pool", px_dense, false);
  write_json_mode(f, "tight_pool", px_tight, false);
  write_json_mode(f, "tight_pool_prefix_cache", px_reuse, false);
  std::fprintf(
      f,
      "    \"hit_rate\": %.4f, \"prefix_hits\": %lld, "
      "\"prefix_misses\": %lld, \"preemptions\": %lld, "
      "\"bit_identical\": true\n  }\n}\n",
      px_hit_rate, px_reuse.prefix_hits, px_reuse.prefix_misses,
      static_cast<long long>(px_reuse.preemptions));
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, json = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[a], "--json") == 0) json = true;
  }
  const int scale = smoke ? 1 : qdnn::bench::bench_scale();
  const index_t requests = smoke ? 10 : 48 * scale;
  const index_t max_batch = smoke ? 2 : 8;
  const index_t max_steps = smoke ? 10 : 32;
  const double rate = smoke ? 1.0 : 0.6;  // arrivals per batch step
  const index_t max_src = model_config().max_len - 4;

  models::Transformer model(model_config());
  model.set_training(false);

  print_header("Continuous vs static batching (Poisson arrivals, mixed "
               "budgets)");
  std::printf("requests %lld, batch %lld, max_steps %lld, arrival rate "
              "%.2f/step\n\n",
              static_cast<long long>(requests),
              static_cast<long long>(max_batch),
              static_cast<long long>(max_steps), rate);

  const auto trace = make_trace(requests, rate, 4, max_src, 4, max_steps,
                                /*seed=*/97);

  CsvWriter csv(qdnn::bench::results_dir() + "/serve_bench.csv",
                {"mode", "requests", "batch", "tokens_s", "occupancy",
                 "p50_ticks", "p99_ticks", "p50_ms", "p99_ms"});
  print_row({"mode", "tokens/s", "occupancy", "p50/p99 ticks",
             "p50/p99 ms"});
  print_rule();

  const Measured st = run_static(model, trace, max_batch, max_steps);
  const Measured ct = run_continuous(model, trace, max_batch, max_steps);
  report("static", max_batch, st, csv, requests);
  report("continuous", max_batch, ct, csv, requests);
  print_rule();
  check_identical(st, ct, trace.size(), "static/continuous");

  std::printf(
      "Identical per-request tokens in both modes (%lld total).\n"
      "Expected shape: the continuous scheduler refills retired rows\n"
      "mid-flight, so occupancy (and tokens/sec) stays near the batch\n"
      "width while static gangs decay to the slowest row; request\n"
      "latency drops because nothing waits for a whole gang to finish.\n",
      static_cast<long long>(ct.total_tokens));

  // -------------------------------------------------------------------
  // Prefill-heavy workload: long sources, short decodes — admission
  // dominates, so sync admission stretches ticks (jitter) and the
  // prefill/decode split should flatten them.
  // -------------------------------------------------------------------
  const index_t pf_requests = smoke ? 8 : 40 * scale;
  const double pf_rate = smoke ? 0.8 : 0.5;
  print_header("Sync vs async admission (prefill-heavy: long sources, "
               "short decodes)");
  std::printf("requests %lld, batch %lld, sources %lld..%lld, budgets "
              "2..5, arrival rate %.2f/step\n\n",
              static_cast<long long>(pf_requests),
              static_cast<long long>(max_batch),
              static_cast<long long>(max_src - 6),
              static_cast<long long>(max_src), pf_rate);

  const auto pf_trace = make_trace(pf_requests, pf_rate, max_src - 6,
                                   max_src, 2, 5, /*seed=*/131);
  const Measured sync_m =
      run_continuous(model, pf_trace, max_batch, max_steps,
                     /*prefill_workers=*/0);
  const Measured async_m =
      run_continuous(model, pf_trace, max_batch, max_steps,
                     /*prefill_workers=*/1);
  // Concurrent prefill: two workers priming simultaneously, each from
  // its own staging slot — the masked native encoder holds no session
  // state, so this path is mutex-free.  On >=2 cores the two encodes
  // overlap; on one core the contract is no regression vs one worker.
  const Measured async2_m =
      run_continuous(model, pf_trace, max_batch, max_steps,
                     /*prefill_workers=*/2);

  print_row({"admission", "tokens/s", "occupancy", "tick mean ms",
             "tick p99 ms"});
  print_rule();
  print_row({"sync", fmt(sync_m.tokens_per_sec, 0),
             fmt(sync_m.occupancy, 2), fmt(sync_m.tick_mean_ms, 3),
             fmt(sync_m.tick_p99_ms, 3)});
  print_row({"async 1w", fmt(async_m.tokens_per_sec, 0),
             fmt(async_m.occupancy, 2), fmt(async_m.tick_mean_ms, 3),
             fmt(async_m.tick_p99_ms, 3)});
  print_row({"async 2w", fmt(async2_m.tokens_per_sec, 0),
             fmt(async2_m.occupancy, 2), fmt(async2_m.tick_mean_ms, 3),
             fmt(async2_m.tick_p99_ms, 3)});
  print_rule();
  check_identical(sync_m, async_m, pf_trace.size(), "sync/async");
  check_identical(sync_m, async2_m, pf_trace.size(), "sync/async-2w");

  std::printf(
      "Identical per-request tokens in all admission modes (%lld "
      "total).\nExpected shape: synchronous admission runs the encoder "
      "inside the\ntick, so p99 tick latency tracks source length; the "
      "prefill pool\nmoves that off-thread and admission becomes one K/V "
      "copy — p99\ntick jitter drops toward the pure decode-step cost.\n"
      "Workers prime concurrently (no encode mutex): on %u hardware\n"
      "threads the 2-worker run measures %.2fx the sync throughput.\n",
      static_cast<long long>(async_m.total_tokens),
      std::thread::hardware_concurrency(),
      sync_m.tokens_per_sec > 0.0
          ? async2_m.tokens_per_sec / sync_m.tokens_per_sec
          : 0.0);

  // -------------------------------------------------------------------
  // Multi-shard scaling: the Poisson trace as a saturating burst through
  // serve::Server at 1 shard vs 4 shards (4 identically-seeded
  // replicas).  Streams must be bit-identical to the single scheduler.
  // -------------------------------------------------------------------
  const index_t scaled_shards = 4;
  print_header("Multi-shard Server scaling (join-shortest-queue, one "
               "replica per shard)");
  std::printf("requests %lld, per-shard batch %lld, hardware threads "
              "%u\n\n",
              static_cast<long long>(requests),
              static_cast<long long>(max_batch),
              std::thread::hardware_concurrency());

  const Measured shard1 = run_sharded(trace, 1, max_batch, max_steps);
  const Measured shard4 =
      run_sharded(trace, scaled_shards, max_batch, max_steps);
  print_row({"shards", "tokens/s", "occupancy"});
  print_rule();
  print_row({"1", fmt(shard1.tokens_per_sec, 0), fmt(shard1.occupancy, 2)});
  print_row({"4", fmt(shard4.tokens_per_sec, 0), fmt(shard4.occupancy, 2)});
  print_rule();
  check_identical(ct, shard1, trace.size(), "scheduler/1-shard");
  check_identical(shard1, shard4, trace.size(), "1-shard/4-shard");
  const double speedup = shard1.tokens_per_sec > 0.0
                             ? shard4.tokens_per_sec / shard1.tokens_per_sec
                             : 0.0;
  std::printf(
      "Identical per-request tokens at 1 and 4 shards (shard-invariance).\n"
      "Measured 4-shard speedup: %.2fx on %u hardware threads — expect\n"
      "near-linear on >=4 cores, ~1x on a single-core runner (the workers\n"
      "time-slice one core; the contract there is correctness, not "
      "speed).\n",
      speedup, std::thread::hardware_concurrency());

  // -------------------------------------------------------------------
  // Adversarial burst: giant sources amid small ones into two tightly
  // bounded shards, then a cancel storm.  All lifecycle invariants are
  // QDNN_CHECKed inside run_adversarial.
  // -------------------------------------------------------------------
  print_header("Adversarial burst (bounded queues, giant sources, cancel "
               "storm)");
  const AdversarialCounts adv =
      run_adversarial(smoke, max_steps, max_src);
  print_row({"requests", "sheds", "cancel hits", "cancelled", "deadline",
             "completed"});
  print_rule();
  print_row({fmt(static_cast<double>(adv.requests), 0),
             fmt(static_cast<double>(adv.sheds), 0),
             fmt(static_cast<double>(adv.cancel_hits), 0),
             fmt(static_cast<double>(adv.cancelled), 0),
             fmt(static_cast<double>(adv.expired), 0),
             fmt(static_cast<double>(adv.completed), 0)});
  print_rule();
  std::printf(
      "Every submitted id resolved exactly once: %lld shed at the "
      "admission\nbound, %lld cancelled mid-storm, %lld expired on "
      "deadline, %lld\ncompleted bit-identical to their solo decodes.\n",
      static_cast<long long>(adv.sheds),
      static_cast<long long>(adv.cancelled),
      static_cast<long long>(adv.expired),
      static_cast<long long>(adv.completed));

  // -------------------------------------------------------------------
  // Gemm backend throughput: the dense kernels behind every tick above,
  // active SIMD backend vs forced-generic on the serving shapes.
  // -------------------------------------------------------------------
  print_header("Gemm backend (prepacked serving shapes, single core)");
  const index_t prefill_rows = max_batch * (max_src + 4);
  const GemmBackendBench gb =
      run_gemm_backend_bench(smoke, max_batch, prefill_rows);
  std::printf("active backend: %s\n\n", gb.backend);
  print_row({"shape", "m x n x k", gb.backend, "generic", "speedup"});
  print_rule();
  for (const GemmShapeResult& s : gb.shapes) {
    char dims[48];
    std::snprintf(dims, sizeof(dims), "%lldx%lldx%lld",
                  static_cast<long long>(s.m), static_cast<long long>(s.n),
                  static_cast<long long>(s.k));
    print_row({s.name, dims, fmt(s.gflops, 1) + " GF",
               fmt(s.gflops_generic, 1) + " GF",
               fmt(s.gflops_generic > 0.0 ? s.gflops / s.gflops_generic
                                          : 0.0,
                   2) +
                   "x"});
  }
  print_rule();
  std::printf(
      "GF = 1e9 fused multiply-adds x2 per second.  Expect ~4-5x from\n"
      "the AVX2/NEON tile kernels on their native hosts and 1.00x when\n"
      "the binary or CPU only has generic.\n");

  // -------------------------------------------------------------------
  // Observability: the same trace with tracing off vs on — phase
  // breakdown, per-stage decode timings, trace-ring volume, and the
  // measured overhead of leaving tracing enabled.
  // -------------------------------------------------------------------
  print_header("Observability (tracing off vs on, phase breakdown)");
  const ObservabilityResult ob =
      run_observability(model, trace, max_batch, max_steps);
  print_row({"tracing", "tokens/s", "trace events"});
  print_rule();
  print_row({"off", fmt(ob.tokens_per_sec_off, 0), "0"});
  print_row({"on", fmt(ob.tokens_per_sec_on, 0),
             std::to_string(ob.trace_events)});
  print_rule();
  std::printf(
      "Traced-run phase means (ms): queue %.3f, prefill %.3f, first "
      "token\n%.3f, decode %.3f, total %.3f.  Tracing throughput ratio "
      "%.3fx\n(contract: within ~2%% of untraced; wall-clock noisy on "
      "shared\nrunners, so the JSON reports the measured ratio rather "
      "than\nasserting it).  Hottest decode stages:\n",
      ob.queue_ms, ob.prefill_ms, ob.first_token_ms, ob.decode_ms,
      ob.total_ms,
      ob.tokens_per_sec_off > 0.0
          ? ob.tokens_per_sec_on / ob.tokens_per_sec_off
          : 0.0);
  {
    std::vector<obs::StageTiming> top = ob.stages;
    std::sort(top.begin(), top.end(),
              [](const obs::StageTiming& a, const obs::StageTiming& b) {
                return a.total_ns > b.total_ns;
              });
    for (std::size_t i = 0; i < top.size() && i < 3; ++i)
      std::printf("  %-24s %8.3f ms over %lld calls\n",
                  top[i].name.c_str(), top[i].total_ns * 1e-6,
                  top[i].calls);
  }

  // -------------------------------------------------------------------
  // Prefix reuse: repeated system-prompt traffic through the paged KV
  // pool at three operating points — the dense baseline (cache off,
  // worst-case pool), the same tight pool without the cache, and the
  // tight pool with the content-hashed prefix cache.  The cache shares
  // committed cross-K/V pages between requests, so under a tight page
  // budget it restores the admitted concurrency (and tokens/sec) the
  // tight pool took away.  All three emit bit-identical tokens.
  // -------------------------------------------------------------------
  const index_t px_requests = smoke ? 12 : 48 * scale;
  const index_t n_prompts = smoke ? 2 : 3;
  const index_t prompt_ts = max_src;  // full-length shared prompts
  const index_t pt = runtime::DecodeSessionConfig{}.page_tokens;
  const index_t self_pp = (max_steps + pt - 1) / pt;
  const index_t cross_pp = (prompt_ts + pt - 1) / pt;
  const index_t row_pages = self_pp + cross_pp;
  const index_t dense_pages = max_batch * row_pages;
  // The shared-prefix working set: every prompt's cross pages ONCE
  // (pinned by the cache) plus every row's self pages, with one spare.
  // With the cache on this pool holds max_batch fully-deep rows; with
  // it off every row pays its own cross pages, so concurrency drops —
  // and the pool must never be so tight that a prompt's cache entry is
  // evicted before the prompt recurs (a thrashing cache never hits).
  const index_t tight_pages =
      n_prompts * cross_pp + max_batch * self_pp + 1;
  print_header("Prefix reuse (shared system prompts, paged KV pool)");
  std::printf("requests %lld over %lld shared prompts (%lld tokens "
              "each), batch %lld\npool: dense %lld pages, tight %lld "
              "pages (%lld floats/page)\n\n",
              static_cast<long long>(px_requests),
              static_cast<long long>(n_prompts),
              static_cast<long long>(prompt_ts),
              static_cast<long long>(max_batch),
              static_cast<long long>(dense_pages),
              static_cast<long long>(tight_pages),
              static_cast<long long>(
                  model_config().n_layers * 2 * pt *
                  model_config().proj_dim));

  const auto px_trace = make_prefix_trace(px_requests, smoke ? 1.0 : 1.5,
                                          n_prompts, prompt_ts, 3,
                                          smoke ? 8 : 12, /*seed=*/173);
  const Measured px_dense =
      run_continuous(model, px_trace, max_batch, max_steps,
                     /*prefill_workers=*/0, /*pool_pages=*/0,
                     /*prefix_entries=*/0);
  const Measured px_tight =
      run_continuous(model, px_trace, max_batch, max_steps,
                     /*prefill_workers=*/0, tight_pages,
                     /*prefix_entries=*/0);
  const Measured px_reuse =
      run_continuous(model, px_trace, max_batch, max_steps,
                     /*prefill_workers=*/0, tight_pages,
                     /*prefix_entries=*/8);
  print_row({"pool", "tokens/s", "rows (mean)", "hit rate",
             "preemptions"});
  print_rule();
  const double px_hit_rate =
      px_reuse.prefix_hits + px_reuse.prefix_misses > 0
          ? static_cast<double>(px_reuse.prefix_hits) /
                static_cast<double>(px_reuse.prefix_hits +
                                    px_reuse.prefix_misses)
          : 0.0;
  print_row({"dense", fmt(px_dense.tokens_per_sec, 0),
             fmt(px_dense.occupancy, 2), "off",
             fmt(static_cast<double>(px_dense.preemptions), 0)});
  print_row({"tight", fmt(px_tight.tokens_per_sec, 0),
             fmt(px_tight.occupancy, 2), "off",
             fmt(static_cast<double>(px_tight.preemptions), 0)});
  print_row({"tight+prefix", fmt(px_reuse.tokens_per_sec, 0),
             fmt(px_reuse.occupancy, 2), fmt(px_hit_rate, 2),
             fmt(static_cast<double>(px_reuse.preemptions), 0)});
  print_rule();
  check_identical(px_dense, px_tight, px_trace.size(), "dense/tight");
  check_identical(px_dense, px_reuse, px_trace.size(), "dense/reuse");
  QDNN_CHECK(px_reuse.prefix_hits > 0,
             "serve bench: repeated prompts produced no prefix hits");
  std::printf(
      "Identical per-request tokens at all three operating points "
      "(%lld\ntotal).  Expected shape: the tight pool caps admitted "
      "concurrency\n(mean rows drop vs dense); the prefix cache shares "
      "each prompt's\ncross-K/V pages across its requests, so admissions "
      "stop paying\nthe prompt's page cost and concurrency recovers.\n",
      static_cast<long long>(px_reuse.total_tokens));

  if (json) {
    write_json("BENCH_serve.json", smoke, requests, pf_requests,
               max_batch, st, ct, sync_m, async_m, async2_m, shard1,
               shard4, scaled_shards, adv, gb, ob, px_requests,
               px_dense, px_tight, px_reuse, px_hit_rate);
    // The traced run's registry as Prometheus text — the scrape-format
    // artifact CI uploads next to the JSON.
    std::FILE* pf = std::fopen("BENCH_serve.prom", "w");
    QDNN_CHECK(pf != nullptr, "serve bench: cannot open BENCH_serve.prom");
    std::fputs(ob.prom.c_str(), pf);
    std::fputs(
        obs::MetricsRegistry::global().snapshot().to_prometheus().c_str(),
        pf);
    std::fclose(pf);
  }
  return 0;
}
