// Λ-magnitude pruning: turning the Fig. 7 observation into a tool.
//
// After training, the paper's parameter-distribution analysis (Sec.
// IV-C.1) shows Λᵏ is concentrated near zero in many layers — those
// layers are effectively linear and their quadratic machinery is dead
// weight.  This module measures that directly and can remove it:
//
//  * effective_rank(layer, τ): how many of a unit's k eigenvalues exceed
//    τ·max|λ| on average — the rank the layer actually uses.
//  * prune_lambdas(model, τ): zeroes every λ below the threshold and
//    freezes it (lr_scale = 0), reporting per-layer statistics.  Zeroed
//    entries make the corresponding fᵏ rows removable at export time: a
//    pruned unit's quadratic cost drops from (k+1)n+k to (k'+1)n+k'.
//
// This is the natural train-time companion of rank_for_energy (which
// selects k *before* training from a converted layer's spectrum).
#pragma once

#include <string>
#include <vector>

#include "nn/module.h"

namespace qdnn::train {

struct LambdaPruneStats {
  std::string layer;        // parameter name of the Λ tensor
  index_t units = 0;        // rows of the Λ tensor
  index_t rank = 0;         // k (columns)
  index_t zeroed = 0;       // entries pruned by this call
  double mean_effective_rank = 0.0;  // after pruning
  // Parameters removable at export: zeroed λ entries plus their fᵏ rows
  // (n weights each) when the row is dead across the unit.
  index_t removable_params = 0;
};

// Mean per-unit count of |λ| > threshold·max_unit|λ| in one Λ tensor
// [units, k].  A layer whose effective rank ≈ 0 is effectively linear.
double effective_rank(const Tensor& lambda, double relative_threshold);

// Zeroes and freezes (lr_scale = 0) every λ with |λ| <= threshold·max|λ|
// of its unit, across all parameters in group "quadratic_lambda".
// `fan_in_of` maps a Λ parameter name to the layer fan-in n, used for the
// removable-parameter accounting; pass 0 to skip that column.
std::vector<LambdaPruneStats> prune_lambdas(nn::Module& model,
                                            double relative_threshold,
                                            index_t fan_in = 0);

}  // namespace qdnn::train
