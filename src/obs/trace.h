// Per-request trace timelines: a preallocated ring of timestamped
// lifecycle events, recorded wait-free from any thread.
//
// The gate.  Tracing is off by default; `QDNN_TRACE=1` (or any value
// other than "0"/"") turns it on at process start, and
// set_trace_enabled() flips it at runtime.  The disabled path of
// TraceRing::record() is one relaxed atomic load and a predicted branch —
// no timestamp, no ring write — and compiles away entirely when
// QDNN_OBS_NO_TRACE is defined.  Every recording site in the stack also
// keys its clock reads off trace_enabled(), so the tracing-off serving
// paths stay byte-for-byte on the PR-1..8 hot loops.
//
// The ring.  TraceRing is a fixed-capacity seqlock ring: a writer claims
// a global ticket (one relaxed fetch_add), marks the slot in-progress
// (negative seq), stores the fields (all atomics — concurrent recording
// is race-free by construction, TSan-clean), then publishes the ticket
// with a release store.  snapshot() walks the slots, re-checking each
// slot's seq around the field reads and skipping torn slots — readers
// never block writers.  Once the ring wraps, the oldest records are
// overwritten: the timeline is best-effort history, sized by the owner
// (BatchScheduler) at bind time.  Recording is zero-heap-alloc and
// wait-free; snapshot() allocates and is for test/export paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/shape.h"

namespace qdnn::obs {

enum class TraceEvent : std::int32_t {
  kSubmit = 0,    // request validated and queued (arg: priority class)
  kQueueAdmit,    // picked from the admission queue (arg: effective class)
  kPrefillStart,  // prime compute begins (sync path or pool worker)
  kPrefillEnd,    // prime compute done
  kCommit,        // staged K/V committed into a batch row (arg: row)
  kFirstToken,    // first sampled token (arg: token id)
  kStep,          // one sampled token (arg: token index in the output)
  kRetire,        // resolved: eos / budget / deadline / error
  kCancel,        // resolved: cancelled
  kShed,          // resolved at submit: queue full
  kPrefixHit,     // admission served from the prefix cache (arg: row)
  kPreempt,       // row evicted to free KV pages, requeued (arg: row)
};

const char* trace_event_name(TraceEvent e);

namespace detail {
extern std::atomic<bool> g_trace_enabled;  // initialized from QDNN_TRACE
extern std::atomic<index_t> g_trace_sample;  // from QDNN_TRACE_SAMPLE
}

inline bool trace_enabled() {
#if defined(QDNN_OBS_NO_TRACE)
  return false;
#else
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
#endif
}

void set_trace_enabled(bool on);

// Trace SAMPLING: with tracing enabled, every Nth submitted request gets
// a full lifecycle timeline (and phase timestamps); the rest keep the
// one-relaxed-load disabled fast path at every per-request record site.
// N = 1 (the default, or QDNN_TRACE_SAMPLE=N at process start) records
// everything — the pre-sampling behavior.  The sampling decision is made
// ONCE at submit by the request's owner (BatchScheduler), so a sampled
// request's timeline is always complete; aggregate instrumentation that
// is not per-request (stage profiling, tick histograms) stays keyed on
// trace_enabled() alone and is unaffected by the sampling rate.
inline index_t trace_sample() {
#if defined(QDNN_OBS_NO_TRACE)
  return 1;
#else
  return detail::g_trace_sample.load(std::memory_order_relaxed);
#endif
}

// n < 1 is clamped to 1 (sample everything).
void set_trace_sample(index_t n);

// Monotonic (steady_clock) nanoseconds; allocation-free.
long long now_ns();

struct TraceRecord {
  long long seq = 0;  // global claim order across all recording threads
  long long t_ns = 0;
  index_t id = -1;
  TraceEvent event = TraceEvent::kSubmit;
  index_t arg = 0;
};

class TraceRing {
 public:
  explicit TraceRing(index_t capacity);

  // Hot path: no-op unless tracing is enabled.
  void record(index_t id, TraceEvent event, index_t arg = 0) {
#if !defined(QDNN_OBS_NO_TRACE)
    if (trace_enabled()) record_always(id, event, arg);
#else
    (void)id;
    (void)event;
    (void)arg;
#endif
  }

  // Unconditional write, for sites that hoist the enabled check.
  void record_always(index_t id, TraceEvent event, index_t arg = 0);

  // Valid (untorn) records, oldest first.  Allocates — export path only.
  std::vector<TraceRecord> snapshot() const;

  index_t capacity() const { return capacity_; }
  // Total records ever claimed (≥ what the ring still holds).
  long long recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    // 0 = never written; -(ticket+1) = write in progress; ticket+1 = done.
    std::atomic<long long> seq{0};
    std::atomic<long long> t_ns{0};
    std::atomic<long long> id{0};
    std::atomic<std::int32_t> event{0};
    std::atomic<long long> arg{0};
  };

  index_t capacity_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<long long> head_{0};
};

}  // namespace qdnn::obs
