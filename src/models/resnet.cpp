#include "models/resnet.h"

#include "quadratic/complexity.h"

namespace qdnn::models {

using quadratic::conv_layer_cost;
using quadratic::conv_out_channels;
using quadratic::make_conv_neuron;
using quadratic::NeuronKind;

// ---------------------------------------------------------------------------
// BasicBlock
// ---------------------------------------------------------------------------

BasicBlock::BasicBlock(index_t in_channels, index_t target_width,
                       index_t stride, const NeuronSpec& spec1,
                       const NeuronSpec& spec2, Rng& rng, std::string name)
    : name_(std::move(name)), stride_(stride) {
  const index_t width1 = conv_out_channels(spec1, target_width);
  const index_t width2 = conv_out_channels(spec2, target_width);
  out_channels_ = width2;

  conv1_ = make_conv_neuron(spec1, in_channels, target_width, 3, stride, 1,
                            rng, name_ + ".conv1");
  bn1_ = std::make_unique<nn::BatchNorm2d>(width1, 0.1f, 1e-5f,
                                           name_ + ".bn1");
  conv2_ = make_conv_neuron(spec2, width1, target_width, 3, 1, 1, rng,
                            name_ + ".conv2");
  bn2_ = std::make_unique<nn::BatchNorm2d>(width2, 0.1f, 1e-5f,
                                           name_ + ".bn2");

  identity_shortcut_ = (stride == 1 && in_channels == width2);
  if (!identity_shortcut_) {
    short_conv_ = std::make_unique<nn::Conv2d>(in_channels, width2, 1,
                                               stride, 0, rng,
                                               /*bias=*/false,
                                               name_ + ".short");
    short_bn_ = std::make_unique<nn::BatchNorm2d>(width2, 0.1f, 1e-5f,
                                                  name_ + ".short_bn");
  }
}

Shape BasicBlock::output_shape(const Shape& input_shape) const {
  QDNN_CHECK_EQ(input_shape.rank(), 4, name_ << ": expected [N,C,H,W]");
  // Both 3×3 convs use padding 1; only the first strides.
  return Shape{input_shape[0], out_channels_,
               (input_shape[2] - 1) / stride_ + 1,
               (input_shape[3] - 1) / stride_ + 1};
}

Tensor BasicBlock::forward(const Tensor& input) {
  Tensor main = conv1_->forward(input);
  main = bn1_->forward(main);
  main = relu1_.forward(main);
  main = conv2_->forward(main);
  main = bn2_->forward(main);

  Tensor shortcut;
  if (identity_shortcut_) {
    shortcut = input;
  } else {
    shortcut = short_conv_->forward(input);
    shortcut = short_bn_->forward(shortcut);
  }
  main += shortcut;
  return relu2_.forward(main);
}

Tensor BasicBlock::backward(const Tensor& grad_output) {
  Tensor g = relu2_.backward(grad_output);
  // Both branches receive g (the sum node fans the gradient out).
  Tensor g_main = bn2_->backward(g);
  g_main = conv2_->backward(g_main);
  g_main = relu1_.backward(g_main);
  g_main = bn1_->backward(g_main);
  g_main = conv1_->backward(g_main);

  if (identity_shortcut_) {
    g_main += g;
    return g_main;
  }
  Tensor g_short = short_bn_->backward(g);
  g_short = short_conv_->backward(g_short);
  g_main += g_short;
  return g_main;
}

void BasicBlock::flatten_into(std::vector<nn::PipelineStage>& stages) {
  // conv1 → bn1 → relu → conv2 → bn2, then the shortcut branch (identity
  // or conv+bn read from the block-input boundary), an explicit
  // residual-add stage (main + shortcut — the same operand order as
  // forward()'s `main += shortcut`), and the output ReLU.
  const auto in = static_cast<index_t>(stages.size()) - 1;
  conv1_->flatten_into(stages);
  bn1_->flatten_into(stages);
  relu1_.flatten_into(stages);
  conv2_->flatten_into(stages);
  bn2_->flatten_into(stages);
  const auto main_out = static_cast<index_t>(stages.size()) - 1;
  index_t shortcut = in;
  if (!identity_shortcut_) {
    stages.push_back(nn::PipelineStage{short_conv_.get(), in, -1});
    short_bn_->flatten_into(stages);
    shortcut = static_cast<index_t>(stages.size()) - 1;
  }
  stages.push_back(nn::PipelineStage{nullptr, main_out, shortcut});
  relu2_.flatten_into(stages);
}

void BasicBlock::freeze() {
  conv1_->freeze();
  bn1_->freeze();
  relu1_.freeze();
  conv2_->freeze();
  bn2_->freeze();
  relu2_.freeze();
  if (!identity_shortcut_) {
    short_conv_->freeze();
    short_bn_->freeze();
  }
  Module::freeze();
}

void BasicBlock::unfreeze() {
  conv1_->unfreeze();
  bn1_->unfreeze();
  relu1_.unfreeze();
  conv2_->unfreeze();
  bn2_->unfreeze();
  relu2_.unfreeze();
  if (!identity_shortcut_) {
    short_conv_->unfreeze();
    short_bn_->unfreeze();
  }
  Module::unfreeze();
}

std::vector<nn::Parameter*> BasicBlock::parameters() {
  std::vector<nn::Parameter*> params;
  auto absorb = [&params](nn::Module& m) {
    for (nn::Parameter* p : m.parameters()) params.push_back(p);
  };
  absorb(*conv1_);
  absorb(*bn1_);
  absorb(*conv2_);
  absorb(*bn2_);
  if (!identity_shortcut_) {
    absorb(*short_conv_);
    absorb(*short_bn_);
  }
  return params;
}

std::vector<nn::NamedBuffer> BasicBlock::buffers() {
  std::vector<nn::NamedBuffer> bufs;
  auto absorb = [&bufs](nn::Module& m) {
    for (const nn::NamedBuffer& b : m.buffers()) bufs.push_back(b);
  };
  absorb(*conv1_);
  absorb(*bn1_);
  absorb(*conv2_);
  absorb(*bn2_);
  if (!identity_shortcut_) {
    absorb(*short_conv_);
    absorb(*short_bn_);
  }
  return bufs;
}

void BasicBlock::set_training(bool training) {
  nn::Module::set_training(training);
  conv1_->set_training(training);
  bn1_->set_training(training);
  relu1_.set_training(training);
  conv2_->set_training(training);
  bn2_->set_training(training);
  relu2_.set_training(training);
  if (!identity_shortcut_) {
    short_conv_->set_training(training);
    short_bn_->set_training(training);
  }
}

// ---------------------------------------------------------------------------
// ResNet
// ---------------------------------------------------------------------------

namespace {

// Hands out the neuron spec per conv layer, honoring quad_layer_limit
// (Fig. 6's "KNN-n" = non-linear family in the first n conv layers only).
class SpecDispenser {
 public:
  SpecDispenser(const NeuronSpec& spec, index_t limit)
      : spec_(spec), limit_(limit) {}

  NeuronSpec next() {
    const index_t idx = count_++;
    if (limit_ >= 0 && idx >= limit_) return NeuronSpec::linear();
    return spec_;
  }

 private:
  NeuronSpec spec_;
  index_t limit_;
  index_t count_ = 0;
};

}  // namespace

ResNet::ResNet(const ResNetConfig& config,
               const std::vector<StageSpec>& stages, std::string name)
    : config_(config), name_(std::move(name)) {
  Rng rng(config.seed);
  SpecDispenser dispenser(config.spec, config.quad_layer_limit);

  index_t hw = config.image_size;
  index_t channels = config.in_channels;

  // Stem: 3×3 conv to base width.
  const NeuronSpec stem_spec = dispenser.next();
  const index_t stem_width = conv_out_channels(stem_spec, config.base_width);
  stem_ = make_conv_neuron(stem_spec, channels, config.base_width, 3, 1, 1,
                           rng, name_ + ".stem");
  conv_layers_.push_back(stem_.get());
  macs_per_image_ +=
      conv_layer_cost(stem_spec, channels, 3,
                      stem_spec.kind == NeuronKind::kProposed
                          ? quadratic::proposed_filters(stem_spec,
                                                        config.base_width)
                          : config.base_width,
                      hw * hw)
          .macs;
  stem_bn_ = std::make_unique<nn::BatchNorm2d>(stem_width, 0.1f, 1e-5f,
                                               name_ + ".stem_bn");
  channels = stem_width;

  index_t block_idx = 0;
  for (const StageSpec& stage : stages) {
    const index_t width = config.base_width * stage.width_mult;
    for (index_t b = 0; b < stage.blocks; ++b) {
      const index_t stride = (b == 0) ? stage.stride : 1;
      const NeuronSpec spec1 = dispenser.next();
      const NeuronSpec spec2 = dispenser.next();
      const index_t out_hw = hw / stride;

      // MAC accounting for the two convs (+ projection shortcut if any).
      auto conv_macs = [&](const NeuronSpec& s, index_t in_ch,
                           index_t positions) {
        const index_t filters =
            s.kind == NeuronKind::kProposed
                ? quadratic::proposed_filters(s, width)
                : width;
        return conv_layer_cost(s, in_ch, 3, filters, positions).macs;
      };
      macs_per_image_ += conv_macs(spec1, channels, out_hw * out_hw);
      const index_t width1 = conv_out_channels(spec1, width);
      macs_per_image_ += conv_macs(spec2, width1, out_hw * out_hw);
      const index_t width2 = conv_out_channels(spec2, width);
      if (stride != 1 || channels != width2)
        macs_per_image_ += channels * width2 * out_hw * out_hw;

      auto block = std::make_unique<BasicBlock>(
          channels, width, stride, spec1, spec2, rng,
          name_ + ".block" + std::to_string(block_idx++));
      conv_layers_.push_back(block.get());
      channels = block->out_channels();
      hw = out_hw;
      blocks_.push_back(std::move(block));
    }
  }

  fc_ = std::make_unique<nn::Linear>(channels, config.num_classes, rng,
                                     true, name_ + ".fc");
  macs_per_image_ += channels * config.num_classes;
}

Shape ResNet::output_shape(const Shape& input_shape) const {
  QDNN_CHECK_EQ(input_shape.rank(), 4, name_ << ": expected [N,C,H,W]");
  return Shape{input_shape[0], config_.num_classes};
}

Tensor ResNet::forward(const Tensor& input) {
  Tensor x = stem_->forward(input);
  x = stem_bn_->forward(x);
  x = stem_relu_.forward(x);
  for (auto& block : blocks_) x = block->forward(x);
  x = gap_.forward(x);
  return fc_->forward(x);
}

Tensor ResNet::backward(const Tensor& grad_output) {
  Tensor g = fc_->backward(grad_output);
  g = gap_.backward(g);
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it)
    g = (*it)->backward(g);
  g = stem_relu_.backward(g);
  g = stem_bn_->backward(g);
  return stem_->backward(g);
}

void ResNet::flatten_into(std::vector<nn::PipelineStage>& stages) {
  stem_->flatten_into(stages);
  stem_bn_->flatten_into(stages);
  stem_relu_.flatten_into(stages);
  for (auto& block : blocks_) block->flatten_into(stages);
  gap_.flatten_into(stages);
  fc_->flatten_into(stages);
}

void ResNet::freeze() {
  stem_->freeze();
  stem_bn_->freeze();
  stem_relu_.freeze();
  for (auto& block : blocks_) block->freeze();
  gap_.freeze();
  fc_->freeze();
  Module::freeze();
}

void ResNet::unfreeze() {
  stem_->unfreeze();
  stem_bn_->unfreeze();
  stem_relu_.unfreeze();
  for (auto& block : blocks_) block->unfreeze();
  gap_.unfreeze();
  fc_->unfreeze();
  Module::unfreeze();
}

std::vector<nn::Parameter*> ResNet::parameters() {
  std::vector<nn::Parameter*> params;
  auto absorb = [&params](nn::Module& m) {
    for (nn::Parameter* p : m.parameters()) params.push_back(p);
  };
  absorb(*stem_);
  absorb(*stem_bn_);
  for (auto& block : blocks_) absorb(*block);
  absorb(*fc_);
  return params;
}

std::vector<nn::NamedBuffer> ResNet::buffers() {
  std::vector<nn::NamedBuffer> bufs;
  auto absorb = [&bufs](nn::Module& m) {
    for (const nn::NamedBuffer& b : m.buffers()) bufs.push_back(b);
  };
  absorb(*stem_);
  absorb(*stem_bn_);
  for (auto& block : blocks_) absorb(*block);
  absorb(*fc_);
  return bufs;
}

void ResNet::set_training(bool training) {
  nn::Module::set_training(training);
  stem_->set_training(training);
  stem_bn_->set_training(training);
  stem_relu_.set_training(training);
  for (auto& block : blocks_) block->set_training(training);
  gap_.set_training(training);
  fc_->set_training(training);
}

std::unique_ptr<ResNet> make_cifar_resnet(const ResNetConfig& config) {
  QDNN_CHECK((config.depth - 2) % 6 == 0,
             "CIFAR ResNet depth must be 6n+2, got " << config.depth);
  const index_t n = (config.depth - 2) / 6;
  const std::vector<StageSpec> stages{
      {n, 1, 1}, {n, 2, 2}, {n, 4, 2}};
  return std::make_unique<ResNet>(
      config, stages, "resnet" + std::to_string(config.depth));
}

std::unique_ptr<ResNet> make_resnet18(const ResNetConfig& config) {
  const std::vector<StageSpec> stages{
      {2, 1, 1}, {2, 2, 2}, {2, 4, 2}, {2, 8, 2}};
  return std::make_unique<ResNet>(config, stages, "resnet18");
}

}  // namespace qdnn::models
