#include "nn/pooling.h"

#include <cmath>
#include <limits>

namespace qdnn::nn {

Tensor GlobalAvgPool2d::forward(const Tensor& input) {
  QDNN_CHECK_EQ(input.rank(), 4, name_ << ": expected [N,C,H,W]");
  cached_shape_ = input.shape();
  const index_t n = input.dim(0), c = input.dim(1),
                plane = input.dim(2) * input.dim(3);
  Tensor out{Shape{n, c}};
  const float inv = 1.0f / static_cast<float>(plane);
  for (index_t s = 0; s < n; ++s)
    for (index_t ch = 0; ch < c; ++ch) {
      const float* p = input.data() + (s * c + ch) * plane;
      float acc = 0.0f;
      for (index_t j = 0; j < plane; ++j) acc += p[j];
      out.at(s, ch) = acc * inv;
    }
  return out;
}

Shape GlobalAvgPool2d::output_shape(const Shape& input_shape) const {
  QDNN_CHECK_EQ(input_shape.rank(), 4, name_ << ": expected [N,C,H,W]");
  return Shape{input_shape[0], input_shape[1]};
}

void GlobalAvgPool2d::forward_into(const ConstTensorView& input, const TensorView& output,
                                   Workspace&) {
  QDNN_CHECK_EQ(input.rank(), 4, name_ << ": expected [N,C,H,W]");
  const index_t n = input.dim(0), c = input.dim(1),
                plane = input.dim(2) * input.dim(3);
  QDNN_CHECK(output.rank() == 2 && output.dim(0) == n && output.dim(1) == c,
             name_ << ": bad output view " << output.shape());
  const float inv = 1.0f / static_cast<float>(plane);
  for (index_t s = 0; s < n; ++s)
    for (index_t ch = 0; ch < c; ++ch) {
      const float* p = input.data() + (s * c + ch) * plane;
      float acc = 0.0f;
      for (index_t j = 0; j < plane; ++j) acc += p[j];
      output.at(s, ch) = acc * inv;
    }
}

Tensor GlobalAvgPool2d::backward(const Tensor& grad_output) {
  QDNN_CHECK(cached_shape_.rank() == 4, name_ << ": backward before forward");
  const index_t n = cached_shape_[0], c = cached_shape_[1],
                plane = cached_shape_[2] * cached_shape_[3];
  Tensor grad_input{cached_shape_};
  const float inv = 1.0f / static_cast<float>(plane);
  for (index_t s = 0; s < n; ++s)
    for (index_t ch = 0; ch < c; ++ch) {
      const float g = grad_output.at(s, ch) * inv;
      float* p = grad_input.data() + (s * c + ch) * plane;
      for (index_t j = 0; j < plane; ++j) p[j] = g;
    }
  return grad_input;
}

MaxPool2d::MaxPool2d(index_t kernel, index_t stride, index_t padding,
                     std::string name)
    : kernel_(kernel), stride_(stride), padding_(padding),
      name_(std::move(name)) {
  QDNN_CHECK(kernel > 0 && stride > 0, "MaxPool2d: bad geometry");
}

Shape MaxPool2d::output_shape(const Shape& input_shape) const {
  QDNN_CHECK_EQ(input_shape.rank(), 4, name_ << ": expected [N,C,H,W]");
  return Shape{input_shape[0], input_shape[1],
               (input_shape[2] + 2 * padding_ - kernel_) / stride_ + 1,
               (input_shape[3] + 2 * padding_ - kernel_) / stride_ + 1};
}

Tensor MaxPool2d::forward(const Tensor& input) {
  QDNN_CHECK_EQ(input.rank(), 4, name_ << ": expected [N,C,H,W]");
  cached_in_shape_ = input.shape();
  const index_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                w = input.dim(3);
  const index_t oh = (h + 2 * padding_ - kernel_) / stride_ + 1;
  const index_t ow = (w + 2 * padding_ - kernel_) / stride_ + 1;
  Tensor out{Shape{n, c, oh, ow}};
  argmax_.assign(static_cast<std::size_t>(out.numel()), 0);
  index_t oi = 0;
  for (index_t s = 0; s < n; ++s)
    for (index_t ch = 0; ch < c; ++ch) {
      const float* plane = input.data() + (s * c + ch) * h * w;
      for (index_t oy = 0; oy < oh; ++oy)
        for (index_t ox = 0; ox < ow; ++ox, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          index_t best_idx = 0;
          for (index_t ky = 0; ky < kernel_; ++ky) {
            const index_t iy = oy * stride_ + ky - padding_;
            if (iy < 0 || iy >= h) continue;
            for (index_t kx = 0; kx < kernel_; ++kx) {
              const index_t ix = ox * stride_ + kx - padding_;
              if (ix < 0 || ix >= w) continue;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = (s * c + ch) * h * w + iy * w + ix;
              }
            }
          }
          // A window fully inside padding sees only -inf; map to 0 and point
          // at an arbitrary (zero-grad) cell — cannot happen with the
          // geometries used in the models, but keeps the layer total.
          if (!std::isfinite(best)) best = 0.0f;
          out[oi] = best;
          argmax_[static_cast<std::size_t>(oi)] = best_idx;
        }
    }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  QDNN_CHECK(cached_in_shape_.rank() == 4,
             name_ << ": backward before forward");
  QDNN_CHECK_EQ(grad_output.numel(),
                static_cast<index_t>(argmax_.size()),
                name_ << ": grad size");
  Tensor grad_input{cached_in_shape_};
  for (index_t i = 0; i < grad_output.numel(); ++i)
    grad_input[argmax_[static_cast<std::size_t>(i)]] += grad_output[i];
  return grad_input;
}

AvgPool2d::AvgPool2d(index_t kernel, index_t stride, std::string name)
    : kernel_(kernel), stride_(stride), name_(std::move(name)) {
  QDNN_CHECK(kernel > 0 && stride > 0, "AvgPool2d: bad geometry");
}

Shape AvgPool2d::output_shape(const Shape& input_shape) const {
  QDNN_CHECK_EQ(input_shape.rank(), 4, name_ << ": expected [N,C,H,W]");
  return Shape{input_shape[0], input_shape[1],
               (input_shape[2] - kernel_) / stride_ + 1,
               (input_shape[3] - kernel_) / stride_ + 1};
}

Tensor AvgPool2d::forward(const Tensor& input) {
  QDNN_CHECK_EQ(input.rank(), 4, name_ << ": expected [N,C,H,W]");
  cached_in_shape_ = input.shape();
  const index_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                w = input.dim(3);
  const index_t oh = (h - kernel_) / stride_ + 1;
  const index_t ow = (w - kernel_) / stride_ + 1;
  Tensor out{Shape{n, c, oh, ow}};
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (index_t s = 0; s < n; ++s)
    for (index_t ch = 0; ch < c; ++ch) {
      const float* plane = input.data() + (s * c + ch) * h * w;
      for (index_t oy = 0; oy < oh; ++oy)
        for (index_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (index_t ky = 0; ky < kernel_; ++ky)
            for (index_t kx = 0; kx < kernel_; ++kx)
              acc += plane[(oy * stride_ + ky) * w + ox * stride_ + kx];
          out.at(s, ch, oy, ox) = acc * inv;
        }
    }
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  QDNN_CHECK(cached_in_shape_.rank() == 4,
             name_ << ": backward before forward");
  const index_t n = cached_in_shape_[0], c = cached_in_shape_[1],
                h = cached_in_shape_[2], w = cached_in_shape_[3];
  const index_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  Tensor grad_input{cached_in_shape_};
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (index_t s = 0; s < n; ++s)
    for (index_t ch = 0; ch < c; ++ch) {
      float* plane = grad_input.data() + (s * c + ch) * h * w;
      for (index_t oy = 0; oy < oh; ++oy)
        for (index_t ox = 0; ox < ow; ++ox) {
          const float g = grad_output.at(s, ch, oy, ox) * inv;
          for (index_t ky = 0; ky < kernel_; ++ky)
            for (index_t kx = 0; kx < kernel_; ++kx)
              plane[(oy * stride_ + ky) * w + ox * stride_ + kx] += g;
        }
    }
  return grad_input;
}

}  // namespace qdnn::nn
