#include "runtime/kv_pages.h"

#include "core/check.h"

namespace qdnn::runtime {

void KvPagePool::init(index_t pages, index_t page_floats) {
  QDNN_CHECK(pages_ == 0, "KvPagePool: init called twice");
  QDNN_CHECK(pages >= 1,
             "KvPagePool: pages must be >= 1, got " << pages);
  QDNN_CHECK(page_floats >= 1,
             "KvPagePool: page_floats must be >= 1, got " << page_floats);
  pages_ = pages;
  page_floats_ = page_floats;
  // +1 for the sentinel page at id 0; zero-filled so sentinel reads (and
  // the warm-up pass) see defined values.
  storage_ = Tensor{Shape{(pages + 1) * page_floats}};
  refs_.assign(static_cast<std::size_t>(pages + 1), 0);
  free_.reserve(static_cast<std::size_t>(pages));
  // Stack of free ids, highest first, so acquire hands out page 1 first.
  for (index_t p = pages; p >= 1; --p) free_.push_back(p);
  free_count_.store(pages, std::memory_order_relaxed);
}

index_t KvPagePool::acquire() {
  std::lock_guard<std::mutex> lk(mu_);
  if (free_.empty()) return -1;
  const index_t page = free_.back();
  free_.pop_back();
  refs_[static_cast<std::size_t>(page)] = 1;
  free_count_.store(static_cast<index_t>(free_.size()),
                    std::memory_order_relaxed);
  return page;
}

void KvPagePool::add_ref(index_t page) {
  std::lock_guard<std::mutex> lk(mu_);
  QDNN_CHECK(page >= 1 && page <= pages_,
             "KvPagePool: add_ref on page " << page << " outside [1, "
                                            << pages_ << "]");
  QDNN_CHECK(refs_[static_cast<std::size_t>(page)] > 0,
             "KvPagePool: add_ref on free page " << page);
  ++refs_[static_cast<std::size_t>(page)];
}

void KvPagePool::release(index_t page) {
  std::lock_guard<std::mutex> lk(mu_);
  QDNN_CHECK(page >= 1 && page <= pages_,
             "KvPagePool: release of page " << page << " outside [1, "
                                            << pages_ << "]");
  index_t& rc = refs_[static_cast<std::size_t>(page)];
  QDNN_CHECK(rc > 0, "KvPagePool: release of free page " << page);
  if (--rc == 0) {
    free_.push_back(page);
    free_count_.store(static_cast<index_t>(free_.size()),
                      std::memory_order_relaxed);
  }
}

index_t KvPagePool::refcount(index_t page) const {
  std::lock_guard<std::mutex> lk(mu_);
  QDNN_CHECK(page >= 1 && page <= pages_,
             "KvPagePool: refcount of page " << page << " outside [1, "
                                             << pages_ << "]");
  return refs_[static_cast<std::size_t>(page)];
}

std::uint64_t prefix_hash(const index_t* tokens, index_t ts, index_t len) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (b * 8)) & 0xffull;
      h *= 1099511628211ull;  // FNV prime
    }
  };
  mix(static_cast<std::uint64_t>(len));
  for (index_t i = 0; i < ts; ++i)
    mix(static_cast<std::uint64_t>(tokens[i]));
  return h;
}

void PrefixCache::init(index_t entries, index_t max_tokens,
                       index_t max_pages) {
  QDNN_CHECK(entries_.empty(), "PrefixCache: init called twice");
  QDNN_CHECK(entries >= 0,
             "PrefixCache: entries must be non-negative (0 = disabled), "
             "got "
                 << entries);
  if (entries == 0) return;
  QDNN_CHECK(max_tokens >= 1 && max_pages >= 1,
             "PrefixCache: max_tokens/max_pages must be >= 1, got "
                 << max_tokens << "/" << max_pages);
  entries_.resize(static_cast<std::size_t>(entries));
  for (Entry& e : entries_) {
    e.tokens.reserve(static_cast<std::size_t>(max_tokens));
    e.pages.reserve(static_cast<std::size_t>(max_pages));
  }
}

PrefixCache::Entry* PrefixCache::find_locked(std::uint64_t hash,
                                             const index_t* tokens,
                                             index_t ts, index_t len) {
  for (Entry& e : entries_) {
    if (!e.valid || e.hash != hash || e.ts != ts || e.len != len) continue;
    // Full-token compare: a 64-bit hash collision must never alias two
    // different sources into one K/V prefix.
    bool same = true;
    for (index_t i = 0; i < ts; ++i) {
      if (e.tokens[static_cast<std::size_t>(i)] != tokens[i]) {
        same = false;
        break;
      }
    }
    if (same) return &e;
  }
  return nullptr;
}

void PrefixCache::drop_locked(Entry& e, KvPagePool& pool) {
  for (index_t page : e.pages) pool.release(page);
  e.pages.clear();
  e.tokens.clear();
  e.valid = false;
}

bool PrefixCache::lookup_acquire(std::uint64_t hash, const index_t* tokens,
                                 index_t ts, index_t len, KvPagePool& pool,
                                 std::vector<index_t>& out_pages) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lk(mu_);
  Entry* e = find_locked(hash, tokens, ts, len);
  if (e == nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // The references are taken UNDER the cache lock, so a concurrent
  // evict_one cannot release the entry's pages between match and pin.
  for (index_t page : e->pages) {
    pool.add_ref(page);
    out_pages.push_back(page);
  }
  e->stamp = ++clock_;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void PrefixCache::publish(std::uint64_t hash, const index_t* tokens,
                          index_t ts, index_t len, const index_t* pages,
                          index_t n_pages, KvPagePool& pool) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (Entry* existing = find_locked(hash, tokens, ts, len)) {
    // Same source already cached (its pages necessarily hold the same
    // bits): refresh the stamp, keep the existing pin.
    existing->stamp = ++clock_;
    return;
  }
  QDNN_CHECK(n_pages >= 1 &&
                 n_pages <= static_cast<index_t>(entries_[0].pages.capacity()),
             "PrefixCache: publish of " << n_pages
                                        << " pages exceeds the per-entry "
                                           "bound");
  QDNN_CHECK(ts >= 1 &&
                 ts <= static_cast<index_t>(entries_[0].tokens.capacity()),
             "PrefixCache: publish of " << ts
                                        << " tokens exceeds the per-entry "
                                           "bound");
  // Pick a free entry, or evict the LRU valid one.
  Entry* target = nullptr;
  for (Entry& e : entries_) {
    if (!e.valid) {
      target = &e;
      break;
    }
    if (target == nullptr || e.stamp < target->stamp) target = &e;
  }
  if (target->valid) {
    drop_locked(*target, pool);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  target->valid = true;
  target->hash = hash;
  target->ts = ts;
  target->len = len;
  target->stamp = ++clock_;
  target->tokens.assign(tokens, tokens + ts);
  target->pages.assign(pages, pages + n_pages);
  // The cache's own pin: one reference per page, dropped at eviction.
  for (index_t page : target->pages) pool.add_ref(page);
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

bool PrefixCache::evict_one(KvPagePool& pool) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lk(mu_);
  Entry* lru = nullptr;
  for (Entry& e : entries_) {
    if (!e.valid) continue;
    if (lru == nullptr || e.stamp < lru->stamp) lru = &e;
  }
  if (lru == nullptr) return false;
  drop_locked(*lru, pool);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

index_t PrefixCache::reclaimable_pages(const KvPagePool& pool) const {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lk(mu_);
  index_t n = 0;
  for (const Entry& e : entries_) {
    if (!e.valid) continue;
    for (index_t page : e.pages)
      if (pool.refcount(page) == 1) ++n;
  }
  return n;
}

index_t PrefixCache::live_entries() const {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lk(mu_);
  index_t n = 0;
  for (const Entry& e : entries_)
    if (e.valid) ++n;
  return n;
}

}  // namespace qdnn::runtime
