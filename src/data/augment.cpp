#include "data/augment.h"

namespace qdnn::data {

Tensor pad_crop(const Tensor& image3, index_t pad, index_t off_y,
                index_t off_x) {
  QDNN_CHECK_EQ(image3.rank(), 3, "pad_crop: expected [C,H,W]");
  QDNN_CHECK(off_y >= 0 && off_y <= 2 * pad && off_x >= 0 &&
                 off_x <= 2 * pad,
             "pad_crop: offsets out of padded range");
  const index_t c = image3.dim(0), h = image3.dim(1), w = image3.dim(2);
  Tensor out{image3.shape()};
  for (index_t ch = 0; ch < c; ++ch)
    for (index_t y = 0; y < h; ++y) {
      // Source coordinates in the virtual padded image.
      const index_t sy = y + off_y - pad;
      for (index_t x = 0; x < w; ++x) {
        const index_t sx = x + off_x - pad;
        out.at(ch, y, x) = (sy >= 0 && sy < h && sx >= 0 && sx < w)
                               ? image3.at(ch, sy, sx)
                               : 0.0f;
      }
    }
  return out;
}

Tensor hflip(const Tensor& image3) {
  QDNN_CHECK_EQ(image3.rank(), 3, "hflip: expected [C,H,W]");
  const index_t c = image3.dim(0), h = image3.dim(1), w = image3.dim(2);
  Tensor out{image3.shape()};
  for (index_t ch = 0; ch < c; ++ch)
    for (index_t y = 0; y < h; ++y)
      for (index_t x = 0; x < w; ++x)
        out.at(ch, y, x) = image3.at(ch, y, w - 1 - x);
  return out;
}

Tensor augment_batch(const Tensor& images, index_t pad, Rng& rng) {
  QDNN_CHECK_EQ(images.rank(), 4, "augment_batch: expected [N,C,H,W]");
  const index_t n = images.dim(0), c = images.dim(1), h = images.dim(2),
                w = images.dim(3);
  const index_t plane = c * h * w;
  Tensor out{images.shape()};
  for (index_t s = 0; s < n; ++s) {
    Tensor img{Shape{c, h, w}};
    for (index_t i = 0; i < plane; ++i) img[i] = images[s * plane + i];
    const index_t off_y = rng.uniform_int(2 * pad + 1);
    const index_t off_x = rng.uniform_int(2 * pad + 1);
    img = pad_crop(img, pad, off_y, off_x);
    if (rng.bernoulli(0.5)) img = hflip(img);
    for (index_t i = 0; i < plane; ++i) out[s * plane + i] = img[i];
  }
  return out;
}

}  // namespace qdnn::data
