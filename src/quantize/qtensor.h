// Symmetric integer quantization of tensors.
//
// The paper's storage analysis (Table I, Eq. 9) counts fp32 parameters.
// This module extends that analysis to deployed bytes: weights are mapped
// onto a symmetric signed integer grid
//
//   q = clamp(round(x / scale), -qmax, qmax),   qmax = 2^(bits-1) - 1,
//
// with one scale per tensor or one scale per output channel (per row of a
// [out, in] weight matrix).  Symmetric quantization keeps zero exactly
// representable, which matters for the proposed neuron: the quadratic
// response (fᵏ)ᵀΛᵏfᵏ squares activations, so any zero-point offset in Qᵏ
// would be amplified quadratically in y₂ᵏ.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tensor.h"

namespace qdnn::quantize {

// Quantization grid description for one scale group.
struct QuantParams {
  float scale = 1.0f;  // step between adjacent grid points
  int bits = 8;        // total bits incl. sign, 2..8

  index_t qmax() const { return (index_t{1} << (bits - 1)) - 1; }
};

// Chooses the scale so the grid spans [-absmax, absmax].  A zero tensor
// gets scale 1 (all values quantize to 0 exactly).
QuantParams choose_params_absmax(const float* data, index_t n, int bits);

// Chooses the scale from the `percentile`-quantile of |x| (e.g. 0.999),
// clipping outliers: robust activation calibration.
QuantParams choose_params_percentile(const float* data, index_t n, int bits,
                                     double percentile);

// A tensor stored on an integer grid with a single scale.
struct QTensor {
  Shape shape;
  std::vector<std::int8_t> data;  // values in [-qmax, qmax]
  QuantParams params;

  index_t numel() const { return static_cast<index_t>(data.size()); }
  // Storage for the integer payload plus its one fp32 scale.
  index_t storage_bytes() const;
};

// A rank>=2 tensor quantized with one scale per leading-dimension slice
// (per output channel for [out, in] / [out, patch] weight matrices).
struct QTensorPerChannel {
  Shape shape;
  std::vector<std::int8_t> data;
  std::vector<QuantParams> params;  // one per row (shape[0])

  index_t rows() const { return static_cast<index_t>(params.size()); }
  index_t row_size() const {
    return rows() == 0 ? 0 : static_cast<index_t>(data.size()) / rows();
  }
  index_t storage_bytes() const;
};

QTensor quantize(const Tensor& t, int bits);
QTensor quantize(const Tensor& t, const QuantParams& params);
QTensorPerChannel quantize_per_channel(const Tensor& t, int bits);

Tensor dequantize(const QTensor& q);
Tensor dequantize(const QTensorPerChannel& q);

// Round-trips x through the integer grid in fp32 ("fake quantization"),
// so float modules can emulate quantized inference without an integer
// kernel.  Returns a tensor of the same shape.
Tensor fake_quantize(const Tensor& t, int bits);
Tensor fake_quantize_per_channel(const Tensor& t, int bits);

// Error metrics of quantizing `t` at `bits` (per-tensor absmax grid).
struct QuantError {
  float max_abs = 0.0f;   // worst-case |x - deq(q(x))|
  float rmse = 0.0f;      // root-mean-square error
  float scale = 0.0f;     // grid step used
};
QuantError quantization_error(const Tensor& t, int bits);

}  // namespace qdnn::quantize
