// Element-wise activation modules (shape-preserving, any rank).
//
// ReLU follows the conv/quadratic layers in the ResNets; GELU is the
// Transformer FFN activation.  Note the proposed quadratic neuron's
// non-linearity lives *before* the activation (in the neuron itself), so
// these compose with every neuron family unchanged.
#pragma once

#include "nn/module.h"

namespace qdnn::nn {

class ReLU : public Module {
 public:
  explicit ReLU(std::string name = "relu") : name_(std::move(name)) {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  bool supports_forward_into() const override { return true; }
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;
  void freeze() override {
    cached_mask_ = Tensor{};
    Module::freeze();
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Tensor cached_mask_;
};

class GELU : public Module {
 public:
  explicit GELU(std::string name = "gelu") : name_(std::move(name)) {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  bool supports_forward_into() const override { return true; }
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;
  void freeze() override {
    cached_input_ = Tensor{};
    Module::freeze();
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Tensor cached_input_;
};

class Tanh : public Module {
 public:
  explicit Tanh(std::string name = "tanh") : name_(std::move(name)) {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  bool supports_forward_into() const override { return true; }
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;
  void freeze() override {
    cached_output_ = Tensor{};
    Module::freeze();
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Tensor cached_output_;
};

class Sigmoid : public Module {
 public:
  explicit Sigmoid(std::string name = "sigmoid") : name_(std::move(name)) {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  bool supports_forward_into() const override { return true; }
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;
  void freeze() override {
    cached_output_ = Tensor{};
    Module::freeze();
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Tensor cached_output_;
};

}  // namespace qdnn::nn
