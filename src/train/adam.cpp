#include "train/adam.h"

#include <cmath>

namespace qdnn::train {

Adam::Adam(std::vector<nn::Parameter*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const nn::Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

double Adam::grad_norm() const {
  double acc = 0.0;
  for (const nn::Parameter* p : params_)
    acc += static_cast<double>(p->grad.squared_norm());
  return std::sqrt(acc);
}

void Adam::step() {
  float clip_scale = 1.0f;
  if (config_.clip_norm > 0.0f) {
    const double norm = grad_norm();
    if (!std::isfinite(norm)) return;  // skip poisoned batches (see Sgd)
    if (norm > config_.clip_norm)
      clip_scale = static_cast<float>(config_.clip_norm / norm);
  }
  ++step_count_;
  const float bias1 =
      1.0f - std::pow(config_.beta1, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(config_.beta2, static_cast<float>(step_count_));

  for (std::size_t i = 0; i < params_.size(); ++i) {
    nn::Parameter& p = *params_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    const float lr = config_.lr * p.lr_scale;
    const float wd = p.decay ? config_.weight_decay : 0.0f;
    for (index_t j = 0; j < p.value.numel(); ++j) {
      const float g = p.grad[j] * clip_scale;
      m[j] = config_.beta1 * m[j] + (1.0f - config_.beta1) * g;
      v[j] = config_.beta2 * v[j] + (1.0f - config_.beta2) * g * g;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      p.value[j] -= lr * (m_hat / (std::sqrt(v_hat) + config_.eps) +
                          wd * p.value[j]);
    }
  }
}

void Adam::zero_grad() {
  for (nn::Parameter* p : params_) p->zero_grad();
}

}  // namespace qdnn::train
