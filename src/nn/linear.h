// Fully-connected layer: y = x Wᵀ + b over a batch [N, in] -> [N, out].
//
// This is the "linear neuron" of the paper's Fig. 1a — the baseline every
// quadratic variant is compared against — and the building block of the
// Transformer projections that bench/table2_transformer swaps for
// quadratic ones.
#pragma once

#include "linalg/packed_weights.h"
#include "nn/init.h"
#include "nn/module.h"

namespace qdnn::nn {

class Linear : public Module {
 public:
  Linear(index_t in_features, index_t out_features, Rng& rng,
         bool bias = true, std::string name = "linear");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  // v2: y = x Wᵀ + b on borrowed memory; scratch only for GEMM packing
  // (none once frozen).  Accepts [N, in] or [N, T, in] (the Transformer
  // stage-pipeline layout; leading dims are flattened into rows).
  Shape output_shape(const Shape& input_shape) const override;
  bool supports_forward_into() const override { return true; }
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;

  // Freeze caches Wᵀ as a PackedWeights, removing the per-call gemm
  // trans_b pack (O(in·out) copies + scratch) from the serving path.
  void freeze() override;
  void unfreeze() override;

  std::vector<Parameter*> parameters() override;
  std::string name() const override { return name_; }

  index_t in_features() const { return in_features_; }
  index_t out_features() const { return out_features_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  index_t in_features_;
  index_t out_features_;
  bool has_bias_;
  std::string name_;
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [out]
  Tensor cached_input_;
  linalg::PackedWeights packed_w_;  // Wᵀ, cached by freeze()
};

}  // namespace qdnn::nn
