// Example: choosing the decomposition rank k from data.
//
// The paper fixes k = 9 for its CNN experiments, but k is a free
// hyper-parameter — and because the proposed neuron's per-output cost is
// nearly flat in k (Table I), the real constraint is expressivity, not
// budget.  This example shows a principled way to pick k:
//
//  1. Train a general quadratic layer (full n×n matrix) on a task with
//     known second-order structure of rank 3.
//  2. Look at the eigenvalue spectrum of the learned matrices: the
//     trained quadratic form concentrates its energy in as many
//     directions as the task actually needs.
//  3. Use quadratic::rank_for_energy to select the smallest k that keeps
//     a target fraction of spectral energy, and convert.
//
// Run: ./build/examples/rank_selection
#include <cmath>
#include <cstdio>

#include "linalg/eig.h"
#include "nn/loss.h"
#include "quadratic/complexity.h"
#include "quadratic/convert.h"
#include "train/sgd.h"

using namespace qdnn;
using quadratic::GeneralQuadraticDense;

namespace {

// Regression task with planted rank-3 quadratic structure:
//   t(x) = (v₁ᵀx)² + (v₂ᵀx)² − (v₃ᵀx)²  for fixed random directions vᵢ.
// A trained quadratic form must (approximately) recover span{v₁,v₂,v₃}.
constexpr index_t kDim = 10;
constexpr index_t kPlantedRank = 3;

void make_data(index_t count, std::uint64_t seed, const Tensor& directions,
               Tensor* x, Tensor* t) {
  Rng rng(seed);
  *x = Tensor{Shape{count, kDim}};
  *t = Tensor{Shape{count, 1}};
  for (index_t i = 0; i < count; ++i) {
    for (index_t j = 0; j < kDim; ++j)
      x->at(i, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
    float target = 0.0f;
    for (index_t r = 0; r < kPlantedRank; ++r) {
      float dot = 0.0f;
      for (index_t j = 0; j < kDim; ++j)
        dot += directions.at(r, j) * x->at(i, j);
      target += (r == kPlantedRank - 1 ? -1.0f : 1.0f) * dot * dot;
    }
    t->at(i, 0) = target;
  }
}

}  // namespace

int main() {
  Rng dir_rng(3);
  Tensor directions{Shape{kPlantedRank, kDim}};
  dir_rng.fill_normal(directions, 0.0f, 0.6f);

  Tensor train_x, train_t, test_x, test_t;
  make_data(800, 1, directions, &train_x, &train_t);
  make_data(400, 2, directions, &test_x, &test_t);

  // --- 1. Train a single general quadratic unit as a regressor ----------
  Rng rng(7);
  GeneralQuadraticDense layer(kDim, 1, rng, /*include_linear=*/true, "gq");
  train::SgdConfig sgd;
  sgd.lr = 0.02f;
  sgd.weight_decay = 0.0f;
  train::Sgd opt(layer.parameters(), sgd);
  for (int epoch = 0; epoch < 400; ++epoch) {
    opt.zero_grad();
    const Tensor pred = layer.forward(train_x);
    const nn::LossResult res = nn::mse_loss(pred, train_t);
    layer.backward(res.grad_logits);
    opt.step();
  }
  {
    const nn::LossResult res = nn::mse_loss(layer.forward(test_x), test_t);
    std::printf("trained general quadratic unit: %lld params, test mse %.4f\n",
                static_cast<long long>(layer.num_parameters()), res.loss);
  }

  // --- 2. Inspect the learned spectrum -----------------------------------
  Tensor m{Shape{kDim, kDim}};
  for (index_t i = 0; i < kDim * kDim; ++i) m[i] = layer.m().value[i];
  const Tensor m_sym = linalg::symmetrize(m);
  const linalg::EigResult eig = linalg::eigh(m_sym);
  std::printf("\neigenvalue magnitudes of the learned quadratic matrix:\n  ");
  for (index_t i = 0; i < kDim; ++i)
    std::printf("%.3f ", std::fabs(eig.eigenvalues[i]));
  std::printf("\n(planted structure has rank %lld — the spectrum should "
              "show ~%lld dominant values)\n",
              static_cast<long long>(kPlantedRank),
              static_cast<long long>(kPlantedRank));

  // --- 3. rank_for_energy at several thresholds --------------------------
  std::printf("\n%-12s %-6s %-16s %-10s\n", "energy kept", "k", "params (conv n=576)",
              "test mse");
  for (double fraction : {0.80, 0.90, 0.95, 0.99}) {
    const index_t k = quadratic::rank_for_energy(m, fraction);
    Rng conv_rng(11);
    auto converted = quadratic::convert_layer(layer, k, conv_rng);
    // Evaluate the converted unit's y channel (column 0) against targets.
    const Tensor all = converted->forward(test_x);
    Tensor y_only{Shape{test_x.dim(0), 1}};
    for (index_t s = 0; s < test_x.dim(0); ++s)
      y_only.at(s, 0) = all.at(s, 0);
    const nn::LossResult res = nn::mse_loss(y_only, test_t);
    // Parameter budget this k implies at convolutional scale (the paper's
    // ResNet layers have fan-in n = 64·3·3 = 576).
    const auto conv_cost =
        quadratic::neuron_cost(quadratic::NeuronSpec::proposed(k), 576);
    std::printf("%-12.2f %-6lld %-16lld %-10.4f\n", fraction,
                static_cast<long long>(k),
                static_cast<long long>(conv_cost.params), res.loss);
  }

  std::printf(
      "\nThe 90-95%% thresholds land on k = 3 — the planted rank — and\n"
      "the converted neuron matches the general unit's mse with a\n"
      "fraction of the parameters.  On real tasks, train one general\n"
      "layer offline, read k off the spectrum, then deploy the proposed\n"
      "neuron at that rank everywhere.\n");
  return 0;
}
