// Conv2d: standard (linear-neuron) 2-D convolution, [N,C,H,W] layout.
//
// Implemented as im2col + GEMM.  Each output channel is one linear neuron
// with fan-in n = C·K² sweeping the image — the baseline whose parameter
// and MAC cost the paper's Table I compares against.
#pragma once

#include "nn/im2col.h"
#include "nn/init.h"
#include "nn/module.h"

namespace qdnn::nn {

class Conv2d : public Module {
 public:
  Conv2d(index_t in_channels, index_t out_channels, index_t kernel,
         index_t stride, index_t padding, Rng& rng, bool bias = true,
         std::string name = "conv");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  // v2: im2col patches live in the workspace instead of a per-call vector.
  Shape output_shape(const Shape& input_shape) const override;
  bool supports_forward_into() const override { return true; }
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;

  // The weight side of the im2col GEMM is consumed untransposed — the
  // [out, patch] parameter already IS the packed operand layout — so
  // freeze has no pack to materialize (and deliberately does not copy the
  // weights); it only drops the training cache.
  void freeze() override;

  std::vector<Parameter*> parameters() override;
  std::string name() const override { return name_; }

  index_t in_channels() const { return geometry_.in_channels; }
  index_t out_channels() const { return out_channels_; }
  const ConvGeometry& geometry() const { return geometry_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  ConvGeometry geometry_;
  index_t out_channels_;
  bool has_bias_;
  std::string name_;
  Parameter weight_;  // [out_channels, C·K·K]
  Parameter bias_;    // [out_channels]
  Tensor cached_input_;
};

}  // namespace qdnn::nn
