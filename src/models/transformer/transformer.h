// Encoder–decoder Transformer ("Attention Is All You Need" topology) with
// pluggable attention projections — the Table II experiment vehicle.
//
// The baseline uses linear projections of width d_model.  The quadratic
// configuration replaces all MHA projections with the proposed neuron and
// narrows the projection width (`proj_dim`), which is how the paper's
// quadratic Transformer reaches −20.3% parameters at equal/better BLEU:
// each quadratic neuron emits k+1 values, so fewer (and more expressive)
// neurons produce the attention features.
#pragma once

#include <memory>

#include "models/transformer/attention.h"
#include "models/transformer/feedforward.h"
#include "models/transformer/positional.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/layernorm.h"

namespace qdnn::models {

struct TransformerConfig {
  index_t src_vocab = 512;
  index_t tgt_vocab = 512;
  index_t d_model = 64;
  index_t n_heads = 4;
  index_t n_layers = 2;
  index_t d_ff = 128;
  // Width of the Q/K/V projections; d_model for the standard model,
  // reduced for the quadratic configuration.  Must divide by n_heads (and
  // by rank+1 when spec is the proposed neuron).
  index_t proj_dim = 64;
  index_t max_len = 64;
  float dropout = 0.1f;
  quadratic::NeuronSpec spec;  // family for the MHA projections
  std::uint64_t seed = 1;
};

// One pre-norm-free encoder block: self-attn (+res, LN), FFN (+res, LN).
//
// Also a Module: the single-Tensor overrides run the block on [N, T, D]
// with full-length (unpadded) attention — the serving layout — and
// flatten_into exposes the block as primitive stages (attention,
// residual-add, LayerNorm, FFN sublayers) so runtime::InferenceSession
// serves the encoder layer-by-layer with native kernels.  Dropout is
// skipped in the flattened pipeline: it is exactly identity in eval mode.
class EncoderLayer : public nn::Module {
 public:
  EncoderLayer(const TransformerConfig& config, Rng& rng, std::string name);

  // Training entry: flattened [N·T, D] activations with padding lengths.
  Tensor forward(const Tensor& x, index_t n, index_t t,
                 const std::vector<index_t>& lengths);

  // Module API.  forward accepts [N, T, D] (serving) or the gradient
  // layout matching the last forward for backward.
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad) override;
  Shape output_shape(const Shape& input_shape) const override;
  void flatten_into(std::vector<nn::PipelineStage>& stages) override;
  void freeze() override;
  void unfreeze() override;
  std::vector<nn::Parameter*> parameters() override;
  void set_training(bool training) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  index_t d_model_;
  MultiHeadAttention self_attn_;
  nn::Dropout drop1_;
  nn::LayerNorm ln1_;
  FeedForward ffn_;
  nn::Dropout drop2_;
  nn::LayerNorm ln2_;
};

class DecoderLayer {
 public:
  DecoderLayer(const TransformerConfig& config, Rng& rng, std::string name);

  Tensor forward(const Tensor& y, const Tensor& enc_out, index_t n,
                 index_t tt, index_t ts,
                 const std::vector<index_t>& src_lengths);
  // Returns {grad_y, grad_enc_out}.
  std::pair<Tensor, Tensor> backward(const Tensor& grad);
  std::vector<nn::Parameter*> parameters();
  void set_training(bool training);

 private:
  MultiHeadAttention self_attn_;
  nn::Dropout drop1_;
  nn::LayerNorm ln1_;
  MultiHeadAttention cross_attn_;
  nn::Dropout drop2_;
  nn::LayerNorm ln2_;
  FeedForward ffn_;
  nn::Dropout drop3_;
  nn::LayerNorm ln3_;
};

class Transformer {
 public:
  explicit Transformer(const TransformerConfig& config);

  // Teacher-forced training pass.
  // src_ids: [N, Ts]; tgt_in_ids: [N, Tt] (shifted-right target).
  // Returns logits [N·Tt, tgt_vocab].
  Tensor forward_train(const Tensor& src_ids, const Tensor& tgt_in_ids,
                       const std::vector<index_t>& src_lengths);

  // Backward from dL/d(logits); accumulates all parameter gradients.
  void backward(const Tensor& grad_logits);

  // Greedy autoregressive decoding (inference).  Returns one id sequence
  // per sample, each ending at eos or max_steps.
  std::vector<std::vector<index_t>> greedy_decode(
      const Tensor& src_ids, const std::vector<index_t>& src_lengths,
      index_t bos, index_t eos, index_t max_steps);

  std::vector<nn::Parameter*> parameters();
  void set_training(bool training);
  index_t num_parameters();

  const TransformerConfig& config() const { return config_; }

  // Encoder forward on token ids — public so the serving facade
  // (TransformerEncoder) and equivalence tests share the training path.
  // Returns flattened [N·Ts, D].
  Tensor encode(const Tensor& src_ids,
                const std::vector<index_t>& src_lengths);

  // Serving access for TransformerEncoder.
  nn::Embedding& src_embedding() { return *src_embed_; }
  const PositionalEncoding& positional() const { return pos_; }
  index_t num_encoder_layers() const {
    return static_cast<index_t>(encoder_.size());
  }
  EncoderLayer& encoder_layer(index_t i) {
    return *encoder_[static_cast<std::size_t>(i)];
  }

 private:
  Tensor decode(const Tensor& tgt_in_ids, const Tensor& enc_out, index_t ts,
                const std::vector<index_t>& src_lengths);

  TransformerConfig config_;
  Rng rng_;
  std::unique_ptr<nn::Embedding> src_embed_;
  std::unique_ptr<nn::Embedding> tgt_embed_;
  PositionalEncoding pos_;
  std::vector<std::unique_ptr<EncoderLayer>> encoder_;
  std::vector<std::unique_ptr<DecoderLayer>> decoder_;
  std::unique_ptr<nn::Linear> out_proj_;
  // Forward caches for backward.
  index_t n_ = 0, ts_ = 0, tt_ = 0;
  std::vector<index_t> src_lengths_;
};

// Serving facade over the encoder stack of a Transformer: one Module
// mapping src ids [N, T] → encoder output [N, T, D], whose flatten_into
// yields the native stage pipeline
//   embed → scale+positional → (attention, +res, LN, FFN, +res, LN)ᴸ
// so an InferenceSession serves the encoder layer-by-layer,
// allocation-free, bit-identical to Transformer::encode with full-length
// (unpadded) sequences.  Non-owning: the Transformer must outlive the
// facade and any session holding it.
class TransformerEncoder : public nn::Module {
 public:
  explicit TransformerEncoder(Transformer& model);

  Tensor forward(const Tensor& src_ids) override;  // [N, T] → [N, T, D]
  Tensor backward(const Tensor& grad_output) override;  // checked error
  Shape output_shape(const Shape& input_shape) const override;
  void flatten_into(std::vector<nn::PipelineStage>& stages) override;
  void freeze() override;
  void unfreeze() override;
  std::vector<nn::Parameter*> parameters() override;
  void set_training(bool training) override;
  std::string name() const override { return "transformer_encoder"; }

 private:
  Transformer* model_;
  PositionalScale scale_pos_;
};

}  // namespace qdnn::models
