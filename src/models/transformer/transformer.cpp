#include "models/transformer/transformer.h"

#include <cmath>
#include <cstring>

#include "runtime/decode_session.h"

namespace qdnn::models {

// ---------------------------------------------------------------------------
// EncoderLayer
// ---------------------------------------------------------------------------

EncoderLayer::EncoderLayer(const TransformerConfig& config, Rng& rng,
                           std::string name)
    : name_(std::move(name)),
      d_model_(config.d_model),
      self_attn_(config.d_model, config.n_heads, config.proj_dim,
                 config.spec, rng, name_ + ".self"),
      drop1_(config.dropout, rng, name_ + ".drop1"),
      ln1_(config.d_model, 1e-5f, name_ + ".ln1"),
      ffn_(config.d_model, config.d_ff, rng, name_ + ".ffn"),
      drop2_(config.dropout, rng, name_ + ".drop2"),
      ln2_(config.d_model, 1e-5f, name_ + ".ln2") {}

Tensor EncoderLayer::forward(const Tensor& x, index_t n, index_t t,
                             const std::vector<index_t>& lengths) {
  Tensor a = self_attn_.forward(x, x, n, t, t, /*causal=*/false, lengths);
  a = drop1_.forward(a);
  a += x;
  Tensor x1 = ln1_.forward(a);
  Tensor f = ffn_.forward(x1);
  f = drop2_.forward(f);
  f += x1;
  return ln2_.forward(f);
}

Tensor EncoderLayer::forward(const Tensor& x) {
  QDNN_CHECK(x.rank() == 3 && x.dim(2) == d_model_,
             name_ << ": expected [N, T, " << d_model_ << "]");
  const index_t n = x.dim(0), t = x.dim(1);
  return forward(x.reshaped(Shape{n * t, d_model_}), n, t, {})
      .reshaped(Shape{n, t, d_model_});
}

Tensor EncoderLayer::backward(const Tensor& grad) {
  if (grad.rank() == 3) {
    const index_t n = grad.dim(0), t = grad.dim(1);
    return backward(grad.reshaped(Shape{n * t, d_model_}))
        .reshaped(Shape{n, t, d_model_});
  }
  Tensor g2 = ln2_.backward(grad);
  Tensor g_f = drop2_.backward(g2);
  Tensor g_x1 = ffn_.backward(g_f);
  g_x1 += g2;  // residual branch
  Tensor g1 = ln1_.backward(g_x1);
  Tensor g_a = drop1_.backward(g1);
  auto [gq, gkv] = self_attn_.backward_qkv(g_a);
  gq += gkv;
  gq += g1;  // residual branch
  return gq;
}

Shape EncoderLayer::output_shape(const Shape& input_shape) const {
  QDNN_CHECK(input_shape.rank() == 3 && input_shape[2] == d_model_,
             name_ << ": expected [N, T, " << d_model_ << "]");
  return input_shape;
}

bool EncoderLayer::supports_forward_into() const {
  return self_attn_.supports_forward_into() && ffn_.supports_forward_into();
}

void EncoderLayer::forward_into(const ConstTensorView& input,
                                const TensorView& output, Workspace& ws) {
  forward_masked_into(input, output, /*lengths=*/nullptr, ws);
}

void EncoderLayer::forward_masked_into(const ConstTensorView& input,
                                       const TensorView& output,
                                       const index_t* lengths,
                                       Workspace& ws) {
  // The monolithic twin of the flatten_into stage plan plus per-sample
  // key-padding masks — same kernels, same operation order as the
  // training forward (dropout is identity in eval mode).
  QDNN_CHECK(input.rank() == 3 && input.dim(2) == d_model_,
             name_ << ": expected [N, T, " << d_model_ << "]");
  QDNN_CHECK(output.shape() == input.shape(),
             name_ << ": bad output view " << output.shape());
  const index_t count = input.numel();

  const TensorView a = ws.take(input.shape());
  self_attn_.self_forward_into(input, a, lengths, ws);
  const TensorView r1 = ws.take(input.shape());
  for (index_t i = 0; i < count; ++i) r1[i] = a[i] + input[i];
  const TensorView x1 = ws.take(input.shape());
  ln1_.forward_into(r1, x1, ws);

  const TensorView f = ws.take(input.shape());
  ffn_.forward_into(x1, f, ws);
  const TensorView r2 = ws.take(input.shape());
  for (index_t i = 0; i < count; ++i) r2[i] = f[i] + x1[i];
  ln2_.forward_into(r2, output, ws);
}

void EncoderLayer::flatten_into(std::vector<nn::PipelineStage>& stages) {
  // Stage plan over [N, T, D] boundaries, mirroring forward() exactly
  // (dropout stages are omitted: identity in eval mode):
  //   attn(in) → (+in) → ln1 → fc1 → relu → fc2 → (+ln1-out) → ln2
  const auto in = static_cast<index_t>(stages.size()) - 1;
  self_attn_.flatten_into(stages);
  stages.push_back(nn::PipelineStage{
      nullptr, static_cast<index_t>(stages.size()) - 1, in});  // a + x
  ln1_.flatten_into(stages);
  const auto x1 = static_cast<index_t>(stages.size()) - 1;
  ffn_.flatten_into(stages);
  stages.push_back(nn::PipelineStage{
      nullptr, static_cast<index_t>(stages.size()) - 1, x1});  // f + x1
  ln2_.flatten_into(stages);
}

void EncoderLayer::freeze() {
  self_attn_.freeze();
  drop1_.freeze();
  ln1_.freeze();
  ffn_.freeze();
  drop2_.freeze();
  ln2_.freeze();
  Module::freeze();
}

void EncoderLayer::unfreeze() {
  self_attn_.unfreeze();
  drop1_.unfreeze();
  ln1_.unfreeze();
  ffn_.unfreeze();
  drop2_.unfreeze();
  ln2_.unfreeze();
  Module::unfreeze();
}

std::vector<nn::Parameter*> EncoderLayer::parameters() {
  std::vector<nn::Parameter*> params = self_attn_.parameters();
  for (nn::Parameter* p : ln1_.parameters()) params.push_back(p);
  for (nn::Parameter* p : ffn_.parameters()) params.push_back(p);
  for (nn::Parameter* p : ln2_.parameters()) params.push_back(p);
  return params;
}

void EncoderLayer::set_training(bool training) {
  nn::Module::set_training(training);
  self_attn_.set_training(training);
  drop1_.set_training(training);
  ln1_.set_training(training);
  ffn_.set_training(training);
  drop2_.set_training(training);
  ln2_.set_training(training);
}

// ---------------------------------------------------------------------------
// DecoderLayer
// ---------------------------------------------------------------------------

DecoderLayer::DecoderLayer(const TransformerConfig& config, Rng& rng,
                           std::string name)
    : name_(std::move(name)),
      d_model_(config.d_model),
      self_attn_(config.d_model, config.n_heads, config.proj_dim,
                 config.spec, rng, name_ + ".self"),
      drop1_(config.dropout, rng, name_ + ".drop1"),
      ln1_(config.d_model, 1e-5f, name_ + ".ln1"),
      cross_attn_(config.d_model, config.n_heads, config.proj_dim,
                  config.spec, rng, name_ + ".cross"),
      drop2_(config.dropout, rng, name_ + ".drop2"),
      ln2_(config.d_model, 1e-5f, name_ + ".ln2"),
      ffn_(config.d_model, config.d_ff, rng, name_ + ".ffn"),
      drop3_(config.dropout, rng, name_ + ".drop3"),
      ln3_(config.d_model, 1e-5f, name_ + ".ln3"),
      self_step_(self_attn_, name_ + ".self_step"),
      cross_step_(cross_attn_, name_ + ".cross_step") {}

Tensor DecoderLayer::forward(const Tensor& y, const Tensor& enc_out,
                             index_t n, index_t tt, index_t ts,
                             const std::vector<index_t>& src_lengths) {
  Tensor a = self_attn_.forward(y, y, n, tt, tt, /*causal=*/true, {});
  a = drop1_.forward(a);
  a += y;
  Tensor y1 = ln1_.forward(a);
  Tensor c = cross_attn_.forward(y1, enc_out, n, tt, ts, /*causal=*/false,
                                 src_lengths);
  c = drop2_.forward(c);
  c += y1;
  Tensor y2 = ln2_.forward(c);
  Tensor f = ffn_.forward(y2);
  f = drop3_.forward(f);
  f += y2;
  return ln3_.forward(f);
}

std::pair<Tensor, Tensor> DecoderLayer::backward_dual(const Tensor& grad) {
  Tensor g3 = ln3_.backward(grad);
  Tensor g_f = drop3_.backward(g3);
  Tensor g_y2 = ffn_.backward(g_f);
  g_y2 += g3;
  Tensor g2 = ln2_.backward(g_y2);
  Tensor g_c = drop2_.backward(g2);
  auto [gq_c, g_enc] = cross_attn_.backward_qkv(g_c);
  gq_c += g2;
  Tensor g1 = ln1_.backward(gq_c);
  Tensor g_a = drop1_.backward(g1);
  auto [gq_s, gkv_s] = self_attn_.backward_qkv(g_a);
  gq_s += gkv_s;
  gq_s += g1;
  return {std::move(gq_s), std::move(g_enc)};
}

Tensor DecoderLayer::forward(const Tensor&) {
  QDNN_CHECK(false, name_ << ": a decoder layer needs the encoder context "
                             "— use forward(y, enc_out, ...) for training "
                             "or a runtime::DecodeSession for serving");
  return {};
}

Tensor DecoderLayer::backward(const Tensor&) {
  QDNN_CHECK(false, name_ << ": use backward_dual (returns {grad_y, "
                             "grad_enc_out})");
  return {};
}

Shape DecoderLayer::output_shape(const Shape& input_shape) const {
  QDNN_CHECK(input_shape.rank() == 2 && input_shape[1] == d_model_,
             name_ << ": expected [N, " << d_model_ << "] step input");
  return input_shape;
}

bool DecoderLayer::supports_forward_into() const {
  return self_attn_.supports_forward_into() &&
         cross_attn_.supports_forward_into() &&
         ffn_.supports_forward_into();
}

void DecoderLayer::forward_into(const ConstTensorView& input,
                                const TensorView& output, Workspace& ws) {
  // One KV-cached decode step on [N, D] — the monolithic twin of the
  // flatten_into stage plan (same kernels, same operation order as the
  // teacher-forced forward; dropout is identity in eval mode).
  QDNN_CHECK(input.rank() == 2 && input.dim(1) == d_model_,
             name_ << ": expected [N, " << d_model_ << "] step input");
  QDNN_CHECK(output.shape() == input.shape(),
             name_ << ": bad output view " << output.shape());
  const index_t n = input.dim(0);
  const Shape row_shape{n, d_model_};
  const index_t count = n * d_model_;

  const TensorView a = ws.take(row_shape);
  self_step_.forward_into(input, a, ws);
  const TensorView r1 = ws.take(row_shape);
  for (index_t i = 0; i < count; ++i) r1[i] = a[i] + input[i];
  const TensorView y1 = ws.take(row_shape);
  ln1_.forward_into(r1, y1, ws);

  const TensorView c = ws.take(row_shape);
  cross_step_.forward_into(y1, c, ws);
  const TensorView r2 = ws.take(row_shape);
  for (index_t i = 0; i < count; ++i) r2[i] = c[i] + y1[i];
  const TensorView y2 = ws.take(row_shape);
  ln2_.forward_into(r2, y2, ws);

  const TensorView f = ws.take(row_shape);
  ffn_.forward_into(y2, f, ws);
  const TensorView r3 = ws.take(row_shape);
  for (index_t i = 0; i < count; ++i) r3[i] = f[i] + y2[i];
  ln3_.forward_into(r3, output, ws);
}

void DecoderLayer::flatten_into(std::vector<nn::PipelineStage>& stages) {
  // Step-stage plan over [N, D] boundaries, mirroring forward() exactly
  // (dropout stages are omitted: identity in eval mode):
  //   self_step(in) → (+in) → ln1 → cross_step → (+y1) → ln2
  //   → fc1 → relu → fc2 → (+y2) → ln3
  const auto in = static_cast<index_t>(stages.size()) - 1;
  self_step_.flatten_into(stages);
  stages.push_back(nn::PipelineStage{
      nullptr, static_cast<index_t>(stages.size()) - 1, in});  // a + y
  ln1_.flatten_into(stages);
  const auto y1 = static_cast<index_t>(stages.size()) - 1;
  cross_step_.flatten_into(stages);
  stages.push_back(nn::PipelineStage{
      nullptr, static_cast<index_t>(stages.size()) - 1, y1});  // c + y1
  ln2_.flatten_into(stages);
  const auto y2 = static_cast<index_t>(stages.size()) - 1;
  ffn_.flatten_into(stages);
  stages.push_back(nn::PipelineStage{
      nullptr, static_cast<index_t>(stages.size()) - 1, y2});  // f + y2
  ln3_.flatten_into(stages);
}

void DecoderLayer::freeze() {
  // Mirrors the encoder-layer audit: every child packs its constant GEMM
  // operands and releases training caches, so no stale scratch survives
  // under a serving process.
  self_attn_.freeze();
  drop1_.freeze();
  ln1_.freeze();
  cross_attn_.freeze();
  drop2_.freeze();
  ln2_.freeze();
  ffn_.freeze();
  drop3_.freeze();
  ln3_.freeze();
  Module::freeze();
}

void DecoderLayer::unfreeze() {
  self_attn_.unfreeze();
  drop1_.unfreeze();
  ln1_.unfreeze();
  cross_attn_.unfreeze();
  drop2_.unfreeze();
  ln2_.unfreeze();
  ffn_.unfreeze();
  drop3_.unfreeze();
  ln3_.unfreeze();
  Module::unfreeze();
}

std::vector<nn::Parameter*> DecoderLayer::parameters() {
  std::vector<nn::Parameter*> params = self_attn_.parameters();
  for (nn::Parameter* p : ln1_.parameters()) params.push_back(p);
  for (nn::Parameter* p : cross_attn_.parameters()) params.push_back(p);
  for (nn::Parameter* p : ln2_.parameters()) params.push_back(p);
  for (nn::Parameter* p : ffn_.parameters()) params.push_back(p);
  for (nn::Parameter* p : ln3_.parameters()) params.push_back(p);
  return params;
}

void DecoderLayer::set_training(bool training) {
  nn::Module::set_training(training);
  self_attn_.set_training(training);
  drop1_.set_training(training);
  ln1_.set_training(training);
  cross_attn_.set_training(training);
  drop2_.set_training(training);
  ln2_.set_training(training);
  ffn_.set_training(training);
  drop3_.set_training(training);
  ln3_.set_training(training);
}

// ---------------------------------------------------------------------------
// Transformer
// ---------------------------------------------------------------------------

Transformer::Transformer(const TransformerConfig& config)
    : config_(config),
      rng_(config.seed),
      pos_(config.max_len, config.d_model) {
  src_embed_ = std::make_unique<nn::Embedding>(config.src_vocab,
                                               config.d_model, rng_,
                                               "src_embed");
  tgt_embed_ = std::make_unique<nn::Embedding>(config.tgt_vocab,
                                               config.d_model, rng_,
                                               "tgt_embed");
  for (index_t l = 0; l < config.n_layers; ++l) {
    encoder_.push_back(std::make_unique<EncoderLayer>(
        config, rng_, "enc" + std::to_string(l)));
    decoder_.push_back(std::make_unique<DecoderLayer>(
        config, rng_, "dec" + std::to_string(l)));
  }
  out_proj_ = std::make_unique<nn::Linear>(config.d_model, config.tgt_vocab,
                                           rng_, true, "out_proj");
}

Tensor Transformer::encode(const Tensor& src_ids,
                           const std::vector<index_t>& src_lengths) {
  const index_t n = src_ids.dim(0), ts = src_ids.dim(1);
  Tensor x = src_embed_->forward(src_ids);
  x = x.reshaped(Shape{n * ts, config_.d_model});
  x *= std::sqrt(static_cast<float>(config_.d_model));
  pos_.add_to(x, n, ts);
  for (auto& layer : encoder_) x = layer->forward(x, n, ts, src_lengths);
  return x;
}

Tensor Transformer::decode(const Tensor& tgt_in_ids, const Tensor& enc_out,
                           index_t ts,
                           const std::vector<index_t>& src_lengths) {
  const index_t n = tgt_in_ids.dim(0), tt = tgt_in_ids.dim(1);
  Tensor y = tgt_embed_->forward(tgt_in_ids);
  y = y.reshaped(Shape{n * tt, config_.d_model});
  y *= std::sqrt(static_cast<float>(config_.d_model));
  pos_.add_to(y, n, tt);
  for (auto& layer : decoder_)
    y = layer->forward(y, enc_out, n, tt, ts, src_lengths);
  return out_proj_->forward(y);
}

Tensor Transformer::forward_train(const Tensor& src_ids,
                                  const Tensor& tgt_in_ids,
                                  const std::vector<index_t>& src_lengths) {
  QDNN_CHECK_EQ(src_ids.dim(0), tgt_in_ids.dim(0),
                "transformer: batch mismatch");
  n_ = src_ids.dim(0);
  ts_ = src_ids.dim(1);
  tt_ = tgt_in_ids.dim(1);
  src_lengths_ = src_lengths;
  const Tensor enc_out = encode(src_ids, src_lengths);
  return decode(tgt_in_ids, enc_out, ts_, src_lengths);
}

void Transformer::backward(const Tensor& grad_logits) {
  QDNN_CHECK(n_ > 0, "transformer: backward before forward_train");
  Tensor g_y = out_proj_->backward(grad_logits);

  // Decoder stack (reverse); accumulate encoder-output gradient across all
  // decoder layers' cross-attention.
  Tensor g_enc{Shape{n_ * ts_, config_.d_model}};
  for (auto it = decoder_.rbegin(); it != decoder_.rend(); ++it) {
    auto [g_y_next, g_enc_layer] = (*it)->backward_dual(g_y);
    g_y = std::move(g_y_next);
    g_enc += g_enc_layer;
  }
  // Back through the target embedding (+ scale; positional table is
  // constant).
  g_y *= std::sqrt(static_cast<float>(config_.d_model));
  tgt_embed_->backward(g_y.reshaped(Shape{n_, tt_, config_.d_model}));

  // Encoder stack (reverse).
  for (auto it = encoder_.rbegin(); it != encoder_.rend(); ++it)
    g_enc = (*it)->backward(g_enc);
  g_enc *= std::sqrt(static_cast<float>(config_.d_model));
  src_embed_->backward(g_enc.reshaped(Shape{n_, ts_, config_.d_model}));
}

std::vector<std::vector<index_t>> Transformer::greedy_decode(
    const Tensor& src_ids, const std::vector<index_t>& src_lengths,
    index_t bos, index_t eos, index_t max_steps) {
  // Serve through a KV-cached session: O(T) decoder work per emitted
  // token instead of re-running the whole prefix.  freeze is off so this
  // convenience wrapper never mutates the model's packing state (results
  // are bit-identical either way); warm-up is skipped because the session
  // lives for exactly one batch.
  if (max_steps == 0)  // degenerate budget: n empty sequences, no work
    return std::vector<std::vector<index_t>>(
        static_cast<std::size_t>(src_ids.dim(0)));
  set_training(false);
  runtime::DecodeSessionConfig sc;
  sc.max_batch = src_ids.dim(0);
  sc.max_steps = max_steps;
  sc.max_src = src_ids.dim(1);  // caches sized for exactly this batch
  sc.freeze = false;
  sc.warmup = false;
  runtime::DecodeSession session(*this, sc);
  session.prime(src_ids, src_lengths);
  return session.generate(bos, eos);
}

std::vector<std::vector<index_t>> Transformer::greedy_decode_reference(
    const Tensor& src_ids, const std::vector<index_t>& src_lengths,
    index_t bos, index_t eos, index_t max_steps) {
  const index_t n = src_ids.dim(0);
  const index_t ts = src_ids.dim(1);
  // bos fills position 0, so step s embeds target position s: the deepest
  // step embeds position max_steps − 1 and max_steps may equal max_len
  // exactly (the implicit-bos slot does not cost a position).
  QDNN_CHECK(max_steps >= 0 && max_steps <= config_.max_len,
             "greedy_decode: max_steps " << max_steps << " outside [0, "
                                         << config_.max_len
                                         << "] (max_len)");
  if (max_steps == 0)  // degenerate budget: n empty sequences, no work
    return std::vector<std::vector<index_t>>(static_cast<std::size_t>(n));
  set_training(false);
  const Tensor enc_out = encode(src_ids, src_lengths);

  std::vector<std::vector<index_t>> outputs(static_cast<std::size_t>(n));
  // Growing teacher prefixes, re-decoded each step (O(T²) per sequence).
  // Rows that emitted eos are compacted out of the batch — finished rows
  // pay nothing, and the step cost tracks the *active* rows only.  The
  // gathered encoder rows / lengths are rebuilt only when the active set
  // actually shrinks (and not at all while every row is live).
  std::vector<std::vector<index_t>> prefix(static_cast<std::size_t>(n),
                                           {bos});
  std::vector<index_t> active(static_cast<std::size_t>(n));
  for (index_t s = 0; s < n; ++s) active[static_cast<std::size_t>(s)] = s;
  Tensor enc_act;
  std::vector<index_t> lens_act;
  bool gather_stale = true;

  for (index_t step = 0; step < max_steps && !active.empty(); ++step) {
    const index_t tt = step + 1;
    const auto na = static_cast<index_t>(active.size());
    Tensor tgt{Shape{na, tt}};
    for (index_t i = 0; i < na; ++i) {
      const index_t s = active[static_cast<std::size_t>(i)];
      for (index_t j = 0; j < tt; ++j)
        tgt.at(i, j) =
            static_cast<float>(prefix[static_cast<std::size_t>(s)]
                               [static_cast<std::size_t>(j)]);
    }
    const bool all_live = na == n;
    if (!all_live && gather_stale) {
      enc_act = Tensor{Shape{na * ts, config_.d_model}};
      lens_act.clear();
      for (index_t i = 0; i < na; ++i) {
        const index_t s = active[static_cast<std::size_t>(i)];
        std::memcpy(enc_act.data() + i * ts * config_.d_model,
                    enc_out.data() + s * ts * config_.d_model,
                    static_cast<std::size_t>(ts * config_.d_model) *
                        sizeof(float));
        if (!src_lengths.empty())
          lens_act.push_back(src_lengths[static_cast<std::size_t>(s)]);
      }
      gather_stale = false;
    }
    const Tensor logits = decode(tgt, all_live ? enc_out : enc_act, ts,
                                 all_live ? src_lengths : lens_act);
    std::vector<index_t> still_active;
    still_active.reserve(active.size());
    for (index_t i = 0; i < na; ++i) {
      const index_t s = active[static_cast<std::size_t>(i)];
      const float* row =
          logits.data() + ((i * tt) + (tt - 1)) * config_.tgt_vocab;
      index_t best = 0;
      for (index_t v = 1; v < config_.tgt_vocab; ++v)
        if (row[v] > row[best]) best = v;
      if (best == eos) continue;  // finished: drops out of the batch
      outputs[static_cast<std::size_t>(s)].push_back(best);
      prefix[static_cast<std::size_t>(s)].push_back(best);
      still_active.push_back(s);
    }
    if (still_active.size() != active.size()) gather_stale = true;
    active.swap(still_active);
  }
  return outputs;
}

std::vector<nn::Parameter*> Transformer::parameters() {
  std::vector<nn::Parameter*> params = src_embed_->parameters();
  for (nn::Parameter* p : tgt_embed_->parameters()) params.push_back(p);
  for (auto& layer : encoder_)
    for (nn::Parameter* p : layer->parameters()) params.push_back(p);
  for (auto& layer : decoder_)
    for (nn::Parameter* p : layer->parameters()) params.push_back(p);
  for (nn::Parameter* p : out_proj_->parameters()) params.push_back(p);
  return params;
}

void Transformer::set_training(bool training) {
  src_embed_->set_training(training);
  tgt_embed_->set_training(training);
  for (auto& layer : encoder_) layer->set_training(training);
  for (auto& layer : decoder_) layer->set_training(training);
  out_proj_->set_training(training);
}

void Transformer::freeze() {
  src_embed_->freeze();
  tgt_embed_->freeze();
  for (auto& layer : encoder_) layer->freeze();
  for (auto& layer : decoder_) layer->freeze();
  out_proj_->freeze();
}

void Transformer::unfreeze() {
  src_embed_->unfreeze();
  tgt_embed_->unfreeze();
  for (auto& layer : encoder_) layer->unfreeze();
  for (auto& layer : decoder_) layer->unfreeze();
  out_proj_->unfreeze();
}

index_t Transformer::num_parameters() {
  index_t n = 0;
  for (nn::Parameter* p : parameters()) n += p->numel();
  return n;
}

// ---------------------------------------------------------------------------
// TransformerEncoder
// ---------------------------------------------------------------------------

TransformerEncoder::TransformerEncoder(Transformer& model)
    : model_(&model), scale_pos_(model.positional(), "enc_pos_scale") {}

Tensor TransformerEncoder::forward(const Tensor& src_ids) {
  QDNN_CHECK_EQ(src_ids.rank(), 2, name() << ": expected [N, T] ids");
  const index_t n = src_ids.dim(0), t = src_ids.dim(1);
  // The exact training path with full-length (unpadded) sequences.
  return model_->encode(src_ids, {})
      .reshaped(Shape{n, t, model_->config().d_model});
}

Tensor TransformerEncoder::backward(const Tensor&) {
  QDNN_CHECK(false, name() << ": serving facade — train through "
                              "Transformer::forward_train/backward");
  return {};
}

Shape TransformerEncoder::output_shape(const Shape& input_shape) const {
  QDNN_CHECK_EQ(input_shape.rank(), 2, name() << ": expected [N, T] ids");
  QDNN_CHECK(input_shape[1] <= model_->config().max_len,
             name() << ": sequence length " << input_shape[1]
                    << " exceeds max_len " << model_->config().max_len);
  return Shape{input_shape[0], input_shape[1], model_->config().d_model};
}

bool TransformerEncoder::supports_forward_into() const {
  for (index_t l = 0; l < model_->num_encoder_layers(); ++l)
    if (!model_->encoder_layer(l).supports_forward_into()) return false;
  return true;
}

void TransformerEncoder::forward_into(const ConstTensorView& input,
                                      const TensorView& output,
                                      Workspace& ws) {
  encode_into(input, output, /*src_lengths=*/nullptr, ws);
}

void TransformerEncoder::encode_into(const ConstTensorView& src_ids,
                                     const TensorView& output,
                                     const index_t* src_lengths,
                                     Workspace& ws) {
  QDNN_CHECK_EQ(src_ids.rank(), 2, name() << ": expected [N, T] ids");
  const index_t n = src_ids.dim(0), t = src_ids.dim(1);
  QDNN_CHECK(t <= model_->config().max_len,
             name() << ": sequence length " << t << " exceeds max_len "
                    << model_->config().max_len);
  const Shape act_shape{n, t, model_->config().d_model};
  QDNN_CHECK(output.shape() == act_shape,
             name() << ": bad output view " << output.shape());

  // embed → scale+positional → masked block per layer, every activation
  // in the caller's workspace.  The last layer writes `output` directly.
  const index_t layers = model_->num_encoder_layers();
  const TensorView embedded =
      layers == 0 ? output : ws.take(act_shape);
  {
    const TensorView raw = ws.take(act_shape);
    model_->src_embedding().forward_into(src_ids, raw, ws);
    scale_pos_.forward_into(raw, embedded, ws);
  }
  ConstTensorView cur(embedded.shape(), embedded.data());
  for (index_t l = 0; l < layers; ++l) {
    const TensorView dst = l + 1 == layers ? output : ws.take(act_shape);
    model_->encoder_layer(l).forward_masked_into(cur, dst, src_lengths, ws);
    cur = ConstTensorView(dst.shape(), dst.data());
  }
}

void TransformerEncoder::flatten_into(std::vector<nn::PipelineStage>& stages) {
  model_->src_embedding().flatten_into(stages);
  scale_pos_.flatten_into(stages);
  for (index_t l = 0; l < model_->num_encoder_layers(); ++l)
    model_->encoder_layer(l).flatten_into(stages);
}

void TransformerEncoder::freeze() {
  model_->src_embedding().freeze();
  scale_pos_.freeze();
  for (index_t l = 0; l < model_->num_encoder_layers(); ++l)
    model_->encoder_layer(l).freeze();
  Module::freeze();
}

void TransformerEncoder::unfreeze() {
  model_->src_embedding().unfreeze();
  scale_pos_.unfreeze();
  for (index_t l = 0; l < model_->num_encoder_layers(); ++l)
    model_->encoder_layer(l).unfreeze();
  Module::unfreeze();
}

std::vector<nn::Parameter*> TransformerEncoder::parameters() {
  std::vector<nn::Parameter*> params =
      model_->src_embedding().parameters();
  for (index_t l = 0; l < model_->num_encoder_layers(); ++l)
    for (nn::Parameter* p : model_->encoder_layer(l).parameters())
      params.push_back(p);
  return params;
}

void TransformerEncoder::set_training(bool training) {
  nn::Module::set_training(training);
  model_->src_embedding().set_training(training);
  for (index_t l = 0; l < model_->num_encoder_layers(); ++l)
    model_->encoder_layer(l).set_training(training);
}

}  // namespace qdnn::models
