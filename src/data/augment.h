// Training-time data augmentation matching the paper's CIFAR recipe
// (Sec. IV-A): zero-pad then random-crop back to the original size, and
// random horizontal flip.
#pragma once

#include "core/rng.h"
#include "core/tensor.h"

namespace qdnn::data {

// Pads each image by `pad` zeros on all sides, then crops a random
// image_size window and flips horizontally with probability 1/2.
// images: [N, C, H, W]; returns a tensor of the same shape.
Tensor augment_batch(const Tensor& images, index_t pad, Rng& rng);

// Deterministic variants, exposed for unit testing.
Tensor pad_crop(const Tensor& image3, index_t pad, index_t off_y,
                index_t off_x);                      // [C,H,W] -> [C,H,W]
Tensor hflip(const Tensor& image3);                  // [C,H,W] -> [C,H,W]

}  // namespace qdnn::data
