#include "nn/linear.h"

#include "linalg/gemm.h"

namespace qdnn::nn {

Linear::Linear(index_t in_features, index_t out_features, Rng& rng,
               bool bias, std::string name)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias),
      name_(std::move(name)),
      weight_(name_ + ".weight", Tensor{Shape{out_features, in_features}}),
      bias_(name_ + ".bias",
            bias ? Tensor{Shape{out_features}} : Tensor{}) {
  QDNN_CHECK(in_features > 0 && out_features > 0,
             "Linear: feature dims must be positive");
  kaiming_normal(weight_.value, in_features_, rng);
  bias_.decay = false;
}

Tensor Linear::forward(const Tensor& input) {
  QDNN_CHECK_EQ(input.rank(), 2, name_ << ": expected [N, in]");
  QDNN_CHECK_EQ(input.dim(1), in_features_, name_ << ": in_features");
  cached_input_ = input;
  const index_t n = input.dim(0);
  Tensor out{Shape{n, out_features_}};
  // out = input * Wᵀ
  linalg::gemm(false, true, n, out_features_, in_features_, 1.0f,
               input.data(), in_features_, weight_.value.data(),
               in_features_, 0.0f, out.data(), out_features_);
  if (has_bias_) {
    for (index_t i = 0; i < n; ++i)
      linalg::axpy(out_features_, 1.0f, bias_.value.data(),
                   out.data() + i * out_features_);
  }
  return out;
}

Shape Linear::output_shape(const Shape& input_shape) const {
  const index_t rank = input_shape.rank();
  QDNN_CHECK(rank == 2 || rank == 3,
             name_ << ": expected [N, in] or [N, T, in]");
  QDNN_CHECK_EQ(input_shape[rank - 1], in_features_,
                name_ << ": in_features");
  if (rank == 2) return Shape{input_shape[0], out_features_};
  return Shape{input_shape[0], input_shape[1], out_features_};
}

void Linear::forward_into(const ConstTensorView& input, const TensorView& output,
                          Workspace& ws) {
  const index_t rank = input.rank();
  QDNN_CHECK(rank == 2 || rank == 3,
             name_ << ": expected [N, in] or [N, T, in]");
  QDNN_CHECK_EQ(input.dim(rank - 1), in_features_, name_ << ": in_features");
  // Leading dims flatten into rows: [N, T, in] runs as [N·T, in].
  const index_t n = input.numel() / in_features_;
  QDNN_CHECK(output.shape() == output_shape(input.shape()),
             name_ << ": bad output view " << output.shape());
  if (packed_w_.packed()) {
    linalg::gemm_prepacked(false, n, out_features_, in_features_, 1.0f,
                           input.data(), in_features_, packed_w_, 0.0f,
                           output.data(), out_features_);
  } else {
    float* scratch = ws.alloc(linalg::gemm_scratch_floats(
        false, true, n, out_features_, in_features_));
    linalg::gemm(false, true, n, out_features_, in_features_, 1.0f,
                 input.data(), in_features_, weight_.value.data(),
                 in_features_, 0.0f, output.data(), out_features_, scratch);
  }
  if (has_bias_) {
    for (index_t i = 0; i < n; ++i)
      linalg::axpy(out_features_, 1.0f, bias_.value.data(),
                   output.data() + i * out_features_);
  }
}

void Linear::freeze() {
  packed_w_.pack(/*trans=*/true, in_features_, out_features_,
                 weight_.value.data(), in_features_);
  cached_input_ = Tensor{};
  Module::freeze();
}

void Linear::unfreeze() {
  packed_w_.clear();
  Module::unfreeze();
}

Tensor Linear::backward(const Tensor& grad_output) {
  QDNN_CHECK(!cached_input_.empty(), name_ << ": backward before forward");
  QDNN_CHECK_EQ(grad_output.dim(1), out_features_, name_ << ": grad dims");
  const index_t n = grad_output.dim(0);

  // dW += gᵀ x  — [out, in]
  linalg::gemm(true, false, out_features_, in_features_, n, 1.0f,
               grad_output.data(), out_features_, cached_input_.data(),
               in_features_, 1.0f, weight_.grad.data(), in_features_);
  if (has_bias_) {
    for (index_t i = 0; i < n; ++i)
      linalg::axpy(out_features_, 1.0f, grad_output.data() + i * out_features_,
                   bias_.grad.data());
  }
  // dx = g W — [n, in]
  Tensor grad_input{Shape{n, in_features_}};
  linalg::gemm(false, false, n, in_features_, out_features_, 1.0f,
               grad_output.data(), out_features_, weight_.value.data(),
               in_features_, 0.0f, grad_input.data(), in_features_);
  return grad_input;
}

std::vector<Parameter*> Linear::parameters() {
  std::vector<Parameter*> params{&weight_};
  if (has_bias_) params.push_back(&bias_);
  return params;
}

}  // namespace qdnn::nn
