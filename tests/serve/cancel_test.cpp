// Cancellation and deadline lifecycle edges for serve::BatchScheduler.
//
// The contract under test: cancel(id) and deadline_tick resolve a
// request with EXACTLY one RequestResult wherever it is — waiting in the
// admission queue, mid-prefill on the PrefillPool, or live in a batch
// row — and a second cancel of the same id is always a no-op returning
// false.  The edge cases are the interesting ones: cancel on the very
// tick a row would have retired on eos, cancel racing a prefill worker,
// a deadline already due when the pool hands the job back.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "decode_test_util.h"
#include "serve/scheduler.h"

namespace qdnn::serve {
namespace {

using models::Transformer;
using qdnn::testing::random_src_ids;
using qdnn::testing::tiny_transformer_config;

constexpr index_t kBos = 1, kEos = 2;

BatchSchedulerConfig scheduler_config(index_t max_batch,
                                      index_t max_steps) {
  BatchSchedulerConfig config;
  config.session.max_batch = max_batch;
  config.session.max_steps = max_steps;
  config.bos = kBos;
  config.eos = kEos;
  return config;
}

Request make_request(std::uint64_t seed, index_t budget) {
  Request req;
  req.src_ids = random_src_ids(1, 4, 20, seed);
  req.max_new_tokens = budget;
  return req;
}

TEST(Cancel, WhileQueuedResolvesImmediatelyWithEmptyTokens) {
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchScheduler scheduler(model, scheduler_config(1, 8));

  const index_t filler_id =
      scheduler.submit(make_request(401, 6));
  scheduler.step();  // filler occupies the only row
  const index_t victim_id = scheduler.submit(make_request(402, 4));

  EXPECT_TRUE(scheduler.cancel(victim_id));
  ASSERT_EQ(scheduler.results_ready(), 1);
  auto cancelled = scheduler.take_results();
  ASSERT_EQ(cancelled.size(), 1u);
  EXPECT_EQ(cancelled[0].id, victim_id);
  EXPECT_EQ(cancelled[0].reason, FinishReason::kCancelled);
  EXPECT_TRUE(cancelled[0].tokens.empty());
  EXPECT_EQ(cancelled[0].admit_tick, -1)
      << "never-admitted results keep the admit_tick sentinel";

  EXPECT_FALSE(scheduler.cancel(victim_id)) << "double-cancel is a no-op";
  scheduler.run();
  auto rest = scheduler.take_results();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].id, filler_id);
  EXPECT_EQ(rest[0].reason, FinishReason::kLength);
  EXPECT_FALSE(scheduler.cancel(filler_id)) << "already resolved";
  EXPECT_FALSE(scheduler.cancel(999)) << "never submitted";
}

TEST(Cancel, MidFlightReturnsDecodedPrefixAndFreesTheRow) {
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  const Tensor src = random_src_ids(1, 5, 20, 411);
  const auto reference =
      model.greedy_decode_reference(src, {}, kBos, kEos, 8)[0];
  ASSERT_GE(reference.size(), 4u) << "pick a longer-running seed";

  BatchScheduler scheduler(model, scheduler_config(1, 8));
  Request req;
  req.src_ids = src;
  req.max_new_tokens = 8;
  const index_t id = scheduler.submit(std::move(req));
  for (int i = 0; i < 3; ++i) scheduler.step();

  EXPECT_TRUE(scheduler.cancel(id));
  EXPECT_EQ(scheduler.live_rows(), 0) << "the KV row is freed on cancel";
  auto results = scheduler.take_results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].reason, FinishReason::kCancelled);
  ASSERT_EQ(results[0].tokens.size(), 3u);
  EXPECT_TRUE(std::equal(results[0].tokens.begin(),
                         results[0].tokens.end(), reference.begin()))
      << "a cancelled stream is a bit-exact prefix of the solo decode";
  EXPECT_EQ(results[0].decode_steps, 3);
  EXPECT_GE(results[0].admit_tick, 0) << "it held a row, so it admitted";
  EXPECT_FALSE(scheduler.cancel(id));

  // The freed row serves the next request normally.
  const index_t next_id = scheduler.submit(make_request(412, 2));
  scheduler.run();
  auto next = scheduler.take_results();
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].id, next_id);
  EXPECT_EQ(next[0].tokens.size(), 2u);
}

TEST(Cancel, OnTheTickARowWouldRetireOnEos) {
  // eos is redefined to the SECOND greedy token of the probe source, so
  // after one step the next step would retire the row on eos.  A cancel
  // issued between those ticks wins: kCancelled with the one decoded
  // token, and the eos retirement never happens.
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  Tensor src;
  std::vector<index_t> ref;
  for (std::uint64_t seed = 421;; ++seed) {
    src = random_src_ids(1, 5, 20, seed);
    ref = model.greedy_decode_reference(src, {}, kBos, kEos, 12)[0];
    if (ref.size() >= 2 && ref[1] != ref[0]) break;
  }
  BatchSchedulerConfig config = scheduler_config(1, 12);
  config.eos = ref[1];

  {
    BatchScheduler scheduler(model, config);
    Request req;
    req.src_ids = src;
    const index_t id = scheduler.submit(std::move(req));
    scheduler.step();  // decodes ref[0]; next step would sample eos
    EXPECT_TRUE(scheduler.cancel(id));
    scheduler.run();
    auto results = scheduler.take_results();
    ASSERT_EQ(results.size(), 1u) << "exactly one result, not two";
    EXPECT_EQ(results[0].reason, FinishReason::kCancelled);
    ASSERT_EQ(results[0].tokens.size(), 1u);
    EXPECT_EQ(results[0].tokens[0], ref[0]);
  }

  // Without the cancel the row retires on eos at the second step — and a
  // cancel AFTER retirement finds nothing.
  BatchScheduler scheduler(model, config);
  Request req;
  req.src_ids = src;
  const index_t id = scheduler.submit(std::move(req));
  scheduler.step();
  scheduler.step();
  EXPECT_FALSE(scheduler.cancel(id)) << "already retired on eos";
  auto results = scheduler.take_results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].reason, FinishReason::kEos);
}

TEST(Cancel, WhilePrefillInFlightOnThePool) {
  // Async mode feeds the pool at submit, so by the time cancel() runs
  // the job is inside the PrefillPool (computing or finished) — the
  // cancel flags it and the next drain resolves it without ever
  // committing a batch row.
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchSchedulerConfig config = scheduler_config(2, 8);
  config.prefill_workers = 1;
  BatchScheduler scheduler(model, config);

  const index_t id = scheduler.submit(make_request(431, 4));
  EXPECT_EQ(scheduler.queued(), 1) << "the job is in the prefill pipeline";
  EXPECT_TRUE(scheduler.cancel(id));
  EXPECT_FALSE(scheduler.cancel(id)) << "double-cancel while pooled";
  scheduler.run();

  auto results = scheduler.take_results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, id);
  EXPECT_EQ(results[0].reason, FinishReason::kCancelled);
  EXPECT_TRUE(results[0].tokens.empty());
  EXPECT_EQ(scheduler.live_rows(), 0) << "no row was ever committed";
  EXPECT_TRUE(scheduler.idle());
  EXPECT_FALSE(scheduler.cancel(id)) << "resolved";

  // The pool (and its staging slot) is healthy afterwards.
  const index_t next_id = scheduler.submit(make_request(432, 3));
  scheduler.run();
  auto next = scheduler.take_results();
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].id, next_id);
  EXPECT_EQ(next[0].tokens.size(), 3u);
}

TEST(Deadline, ShedsAQueuedRequestAtItsTick) {
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchScheduler scheduler(model, scheduler_config(1, 8));

  scheduler.submit(make_request(441, 6));  // holds the row past tick 3
  scheduler.step();
  Request victim = make_request(442, 4);
  victim.deadline_tick = 3;
  const index_t victim_id = scheduler.submit(std::move(victim));
  scheduler.run();

  std::map<index_t, RequestResult> by_id;
  for (RequestResult& r : scheduler.take_results())
    by_id[r.id] = std::move(r);
  ASSERT_EQ(by_id.size(), 2u);
  const RequestResult& expired = by_id.at(victim_id);
  EXPECT_EQ(expired.reason, FinishReason::kDeadline);
  EXPECT_TRUE(expired.tokens.empty());
  EXPECT_EQ(expired.finish_tick, 3) << "expired at the deadline tick";
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.per_class[static_cast<std::size_t>(Priority::kNormal)]
                .expired,
            1);
}

TEST(Deadline, RetiresALiveRowMidFlightWithThePrefix) {
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  Tensor src;
  std::vector<index_t> reference;
  for (std::uint64_t seed = 451;; ++seed) {
    src = random_src_ids(1, 5, 20, seed);
    reference = model.greedy_decode_reference(src, {}, kBos, kEos, 10)[0];
    if (reference.size() >= 5) break;
  }

  BatchScheduler scheduler(model, scheduler_config(1, 10));
  Request req;
  req.src_ids = src;
  req.max_new_tokens = 10;
  req.deadline_tick = 4;
  scheduler.submit(std::move(req));
  scheduler.run();

  auto results = scheduler.take_results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].reason, FinishReason::kDeadline);
  ASSERT_EQ(results[0].tokens.size(), 4u)
      << "admitted at tick 0, expired at the start of tick 4";
  EXPECT_TRUE(std::equal(results[0].tokens.begin(),
                         results[0].tokens.end(), reference.begin()));
  EXPECT_TRUE(scheduler.idle());
}

TEST(Deadline, DueInsideThePoolResolvesAtDrainWithoutARow) {
  // Idle ticks advance the clock past the deadline BEFORE the submit, so
  // the job enters the prefill pool already doomed: the drain must
  // resolve it kDeadline without committing a row (and without the
  // free-row gate holding its staging slot hostage).
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchSchedulerConfig config = scheduler_config(1, 8);
  config.prefill_workers = 1;
  BatchScheduler scheduler(model, config);
  for (int i = 0; i < 3; ++i) scheduler.step();  // ticks -> 3

  Request late = make_request(461, 4);
  late.deadline_tick = 2;  // already past
  const index_t id = scheduler.submit(std::move(late));
  scheduler.run();

  auto results = scheduler.take_results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, id);
  EXPECT_EQ(results[0].reason, FinishReason::kDeadline);
  EXPECT_TRUE(results[0].tokens.empty());
  EXPECT_EQ(scheduler.live_rows(), 0);

  // Slot sanity: the pool still admits the next request.
  const index_t next_id = scheduler.submit(make_request(462, 2));
  scheduler.run();
  auto next = scheduler.take_results();
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].id, next_id);
  EXPECT_EQ(next[0].reason, FinishReason::kLength);
}

TEST(Cancel, StormFuzzEveryIdResolvesExactlyOnce) {
  // Mixed priorities, a few deadlines, async admission, and a cancel
  // storm at random ticks: every id resolves exactly once, completed
  // greedy streams are bit-exact, cancelled/expired streams are
  // bit-exact PREFIXES of their solo decode.
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  const index_t max_steps = 10;
  constexpr index_t kCount = 12;

  struct Case {
    Tensor src;
    std::vector<index_t> reference;
  };
  std::vector<Case> cases;
  for (index_t i = 0; i < kCount; ++i) {
    Case c;
    c.src = random_src_ids(1, 4, 20, 470 + static_cast<std::uint64_t>(i));
    c.reference =
        model.greedy_decode_reference(c.src, {}, kBos, kEos, max_steps)[0];
    cases.push_back(std::move(c));
  }

  for (const std::uint64_t fuzz_seed : {11u, 22u, 33u}) {
    Rng rng(fuzz_seed);
    BatchSchedulerConfig config = scheduler_config(2, max_steps);
    config.prefill_workers = 1;
    config.age_ticks = 2;
    BatchScheduler scheduler(model, config);

    std::map<index_t, index_t> id_to_case;
    std::vector<index_t> ids;
    std::map<index_t, RequestResult> results;
    std::set<index_t> cancelled_true;
    index_t next = 0;
    while (next < kCount || !scheduler.idle()) {
      while (next < kCount && rng.uniform_int(3) != 0) {
        Request req;
        req.src_ids = cases[static_cast<std::size_t>(next)].src;
        req.max_new_tokens = max_steps;
        req.priority = static_cast<Priority>(rng.uniform_int(3));
        if (rng.uniform_int(4) == 0)
          req.deadline_tick = scheduler.ticks() + 2 + rng.uniform_int(6);
        const index_t id = scheduler.submit(std::move(req));
        id_to_case[id] = next;
        ids.push_back(id);
        ++next;
      }
      // Cancel a random earlier id — possibly already resolved, possibly
      // already cancelled; both must be safe no-ops returning false.
      if (!ids.empty() && rng.uniform_int(2) == 0) {
        const index_t id = ids[static_cast<std::size_t>(
            rng.uniform_int(static_cast<index_t>(ids.size())))];
        const bool first_hit = cancelled_true.count(id) == 0 &&
                               results.count(id) == 0;
        const bool hit = scheduler.cancel(id);
        if (hit) {
          EXPECT_TRUE(first_hit) << "cancel must hit at most once";
          cancelled_true.insert(id);
        }
      }
      if (scheduler.wait_for_prefill()) continue;
      scheduler.step();
      for (RequestResult& r : scheduler.take_results()) {
        EXPECT_EQ(results.count(r.id), 0u)
            << "id " << r.id << " resolved twice (fuzz " << fuzz_seed
            << ")";
        results[r.id] = std::move(r);
      }
    }

    ASSERT_EQ(results.size(), static_cast<std::size_t>(kCount))
        << "fuzz " << fuzz_seed;
    for (const auto& [id, r] : results) {
      const auto& reference =
          cases[static_cast<std::size_t>(id_to_case.at(id))].reference;
      if (r.reason == FinishReason::kEos ||
          r.reason == FinishReason::kLength) {
        EXPECT_EQ(r.tokens, reference) << "id " << id;
      } else {
        ASSERT_TRUE(r.reason == FinishReason::kCancelled ||
                    r.reason == FinishReason::kDeadline)
            << "id " << id;
        ASSERT_LE(r.tokens.size(), reference.size()) << "id " << id;
        EXPECT_TRUE(std::equal(r.tokens.begin(), r.tokens.end(),
                               reference.begin()))
            << "id " << id << ": not a prefix of the solo decode";
      }
    }
  }
}

}  // namespace
}  // namespace qdnn::serve
