// Corpus-level BLEU (Papineni et al. 2002): modified n-gram precision up
// to 4-grams, geometric mean, brevity penalty.  Operates on pre-tokenized
// sentences; combine with data/tokenizer.h to realise Table II's four
// evaluation settings.
#pragma once

#include <string>
#include <vector>

namespace qdnn::data {

struct BleuResult {
  double bleu = 0.0;                 // 0..100 scale, as reported in papers
  double precisions[4] = {0, 0, 0, 0};
  double brevity_penalty = 1.0;
  long long hyp_length = 0;
  long long ref_length = 0;
};

// One reference per hypothesis (the synthetic task is deterministic, so a
// single reference is exact).
BleuResult corpus_bleu(
    const std::vector<std::vector<std::string>>& hypotheses,
    const std::vector<std::vector<std::string>>& references);

}  // namespace qdnn::data
