// Continuous-batching equivalence and lifecycle contracts for
// serve::BatchScheduler.
//
// The headline property: for ANY admission/retirement interleaving —
// fuzzed over batch widths, submission orders and arrival delays — every
// greedy request's token sequence is bit-identical to a solo decode of
// that request alone (greedy_decode_reference, the O(T²) oracle that
// never binds the decoder).  Stochastic requests must be reproducible
// across admission orders from their per-request seeds.
#include "serve/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "decode_test_util.h"

namespace qdnn::serve {
namespace {

using models::Transformer;
using qdnn::testing::random_src_ids;
using qdnn::testing::tiny_transformer_config;

constexpr index_t kBos = 1, kEos = 2;

BatchSchedulerConfig scheduler_config(index_t max_batch,
                                      index_t max_steps) {
  BatchSchedulerConfig config;
  config.session.max_batch = max_batch;
  config.session.max_steps = max_steps;
  config.bos = kBos;
  config.eos = kEos;
  return config;
}

struct TestRequest {
  Tensor src;
  index_t src_length;
  index_t budget;
  SamplingConfig sampling = SamplingConfig::greedy();
  std::vector<index_t> reference;  // solo greedy tokens (greedy requests)
};

// A mixed-shape request set: ragged sources, mixed budgets.
std::vector<TestRequest> make_requests(Transformer& model, index_t count,
                                       index_t max_steps,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TestRequest> requests;
  for (index_t i = 0; i < count; ++i) {
    TestRequest r;
    const index_t ts = 3 + rng.uniform_int(4);       // 3..6
    const index_t len = 1 + rng.uniform_int(ts);     // 1..ts (ragged)
    r.src = random_src_ids(1, ts, 20, seed * 100 + i);
    r.src_length = len;
    r.budget = 2 + rng.uniform_int(max_steps - 2);   // 2..max_steps-1
    r.reference = model.greedy_decode_reference(r.src, {len}, kBos, kEos,
                                                r.budget)[0];
    requests.push_back(std::move(r));
  }
  return requests;
}

// Drives a scheduler over `requests` with per-request arrival ticks and a
// submission order; returns results keyed by request index.
std::map<index_t, RequestResult> drive(
    Transformer& model, const std::vector<TestRequest>& requests,
    const std::vector<index_t>& order,
    const std::vector<index_t>& arrival_ticks, index_t max_batch,
    index_t max_steps) {
  BatchScheduler scheduler(model, scheduler_config(max_batch, max_steps));
  std::map<index_t, index_t> id_to_index;  // scheduler id -> request idx
  std::map<index_t, RequestResult> results;
  std::size_t next = 0;
  while (next < order.size() || !scheduler.idle()) {
    while (next < order.size() &&
           arrival_ticks[next] <= scheduler.ticks()) {
      const index_t idx = order[next];
      const TestRequest& r = requests[static_cast<std::size_t>(idx)];
      Request req;
      req.src_ids = r.src;
      req.src_length = r.src_length;
      req.max_new_tokens = r.budget;
      req.sampling = r.sampling;
      id_to_index[scheduler.submit(std::move(req))] = idx;
      ++next;
    }
    scheduler.step();
    for (RequestResult& result : scheduler.take_results())
      results[id_to_index.at(result.id)] = std::move(result);
  }
  return results;
}

TEST(BatchScheduler, FuzzedAdmissionOrdersMatchSoloGreedyBitExactly) {
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  const index_t max_steps = 12;
  const auto requests = make_requests(model, 10, max_steps, 5);

  for (const std::uint64_t fuzz_seed : {101u, 202u, 303u}) {
    Rng rng(fuzz_seed);
    const index_t max_batch = 1 + rng.uniform_int(3);  // 1..3
    // Random submission order; arrivals drip in so admissions interleave
    // with mid-flight rows at many different ring positions.
    std::vector<index_t> order = rng.permutation(
        static_cast<index_t>(requests.size()));
    std::vector<index_t> arrivals;
    index_t tick = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
      arrivals.push_back(tick);
      tick += rng.uniform_int(5);  // 0..4 ticks between arrivals
    }

    const auto results = drive(model, requests, order, arrivals,
                               max_batch, max_steps);
    ASSERT_EQ(results.size(), requests.size())
        << "fuzz seed " << fuzz_seed;
    for (const auto& [idx, result] : results) {
      const TestRequest& r = requests[static_cast<std::size_t>(idx)];
      EXPECT_EQ(result.tokens, r.reference)
          << "request " << idx << " fuzz seed " << fuzz_seed
          << " max_batch " << max_batch;
      // eos iff the solo reference stopped short of its budget.
      const bool ref_hit_eos =
          static_cast<index_t>(r.reference.size()) < r.budget;
      EXPECT_EQ(result.reason == FinishReason::kEos, ref_hit_eos)
          << "request " << idx;
    }
  }
}

TEST(BatchScheduler, StochasticRequestsReproducibleAcrossAdmissionOrders) {
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  const index_t max_steps = 10;
  auto requests = make_requests(model, 6, max_steps, 9);
  // Half temperature, half top-k, each with its own seed; sampled tokens
  // must depend only on the request's own stream, never on neighbors.
  for (std::size_t i = 0; i < requests.size(); ++i)
    requests[i].sampling =
        i % 2 == 0 ? SamplingConfig::with_temperature(
                         1.2f, 1000 + static_cast<std::uint64_t>(i))
                   : SamplingConfig::with_top_k(
                         4, 0.9f, 2000 + static_cast<std::uint64_t>(i));

  const auto n = static_cast<index_t>(requests.size());
  std::vector<index_t> forward(static_cast<std::size_t>(n)),
      reverse(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    forward[static_cast<std::size_t>(i)] = i;
    reverse[static_cast<std::size_t>(i)] = n - 1 - i;
  }
  const std::vector<index_t> no_delay(static_cast<std::size_t>(n), 0);
  std::vector<index_t> dripped;
  for (index_t i = 0; i < n; ++i) dripped.push_back(i * 3);

  const auto a = drive(model, requests, forward, no_delay, 3, max_steps);
  const auto b = drive(model, requests, reverse, no_delay, 2, max_steps);
  const auto c = drive(model, requests, forward, dripped, 1, max_steps);
  ASSERT_EQ(a.size(), requests.size());
  for (const auto& [idx, result] : a) {
    EXPECT_EQ(result.tokens, b.at(idx).tokens)
        << "request " << idx << ": admission order changed the sample";
    EXPECT_EQ(result.tokens, c.at(idx).tokens)
        << "request " << idx << ": batch width changed the sample";
  }
}

TEST(BatchScheduler, GreedyRowUnaffectedByStochasticNeighbors) {
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  const index_t max_steps = 10;
  auto requests = make_requests(model, 4, max_steps, 13);
  // Requests 1..3 sample; request 0 stays greedy and must still match
  // its solo reference exactly.
  for (std::size_t i = 1; i < requests.size(); ++i)
    requests[i].sampling = SamplingConfig::with_temperature(
        1.5f, 50 + static_cast<std::uint64_t>(i));

  std::vector<index_t> order{0, 1, 2, 3};
  const std::vector<index_t> no_delay(4, 0);
  const auto results = drive(model, requests, order, no_delay, 4,
                             max_steps);
  EXPECT_EQ(results.at(0).tokens, requests[0].reference);
}

TEST(BatchScheduler, BudgetRetiresOnLengthAndEosRetiresEarly) {
  Transformer model(tiny_transformer_config());
  model.set_training(false);

  // eos = the probe source's first greedy token, so the eos request
  // retires immediately; computed before any scheduler binds the model.
  const Tensor probe_src = random_src_ids(1, 5, 20, 78);
  const auto probe =
      model.greedy_decode_reference(probe_src, {}, kBos, kEos, 12);
  ASSERT_FALSE(probe[0].empty());
  BatchSchedulerConfig eos_config = scheduler_config(2, 12);
  eos_config.eos = probe[0][0];

  {
    // Budget 3 on an untrained model: eos (id 2) is effectively never
    // the greedy pick, so the request must retire on length, 3 tokens.
    BatchScheduler scheduler(model, scheduler_config(2, 12));
    Request capped;
    capped.src_ids = random_src_ids(1, 5, 20, 77);
    capped.max_new_tokens = 3;
    const index_t capped_id = scheduler.submit(std::move(capped));
    scheduler.run();
    auto results = scheduler.take_results();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].id, capped_id);
    EXPECT_EQ(results[0].tokens.size(), 3u);
    EXPECT_EQ(results[0].reason, FinishReason::kLength);
    EXPECT_EQ(results[0].decode_steps, 3);
  }

  // Fresh scheduler (the first unbound at destruction).
  BatchScheduler eos_scheduler(model, eos_config);
  Request eos_req;
  eos_req.src_ids = probe_src;
  eos_scheduler.submit(std::move(eos_req));
  eos_scheduler.run();
  auto eos_results = eos_scheduler.take_results();
  ASSERT_EQ(eos_results.size(), 1u);
  EXPECT_TRUE(eos_results[0].tokens.empty());
  EXPECT_EQ(eos_results[0].reason, FinishReason::kEos);
}

TEST(BatchScheduler, EosOnFirstStepAndSingleTokenBudgets) {
  // Boundary coverage in both admission modes: a request whose very
  // first greedy pick is eos retires with EMPTY tokens after exactly one
  // decode step, and max_new_tokens == 1 emits exactly one token.
  Transformer model(tiny_transformer_config());
  model.set_training(false);

  // eos = the probe source's first greedy token, computed before any
  // scheduler binds the model.
  const Tensor probe_src = random_src_ids(1, 5, 20, 178);
  const auto probe =
      model.greedy_decode_reference(probe_src, {}, kBos, kEos, 12);
  ASSERT_FALSE(probe[0].empty());
  // A second source whose first greedy token differs from the probe's,
  // so only the probe request sees the redefined eos on step one.
  Tensor other_src;
  for (std::uint64_t seed = 179;; ++seed) {
    other_src = random_src_ids(1, 4, 20, seed);
    const auto first =
        model.greedy_decode_reference(other_src, {}, kBos, kEos, 1);
    if (!first[0].empty() && first[0][0] != probe[0][0]) break;
  }

  for (const index_t workers : {0, 1}) {
    BatchSchedulerConfig config = scheduler_config(2, 12);
    config.eos = probe[0][0];
    config.prefill_workers = workers;
    BatchScheduler scheduler(model, config);

    Request eos_first;
    eos_first.src_ids = probe_src;
    const index_t eos_id = scheduler.submit(std::move(eos_first));
    Request one_token;
    one_token.src_ids = other_src;
    one_token.max_new_tokens = 1;
    const index_t one_id = scheduler.submit(std::move(one_token));
    scheduler.run();

    auto results = scheduler.take_results();
    ASSERT_EQ(results.size(), 2u) << "workers " << workers;
    for (const RequestResult& r : results) {
      if (r.id == eos_id) {
        EXPECT_TRUE(r.tokens.empty()) << "workers " << workers;
        EXPECT_EQ(r.reason, FinishReason::kEos);
        EXPECT_EQ(r.decode_steps, 1) << "eos costs exactly one step";
      } else {
        EXPECT_EQ(r.id, one_id);
        EXPECT_EQ(r.tokens.size(), 1u) << "workers " << workers;
        EXPECT_EQ(r.reason, FinishReason::kLength);
        EXPECT_EQ(r.decode_steps, 1);
      }
    }
  }
}

TEST(BatchScheduler, FreedRowsParkOnceAndStayAtRingZero) {
  // The redundant-parking fix: a freed (or never-admitted) row is parked
  // exactly once and its ring position stays pinned at 0 across idle
  // ticks — no per-tick reset_row calls behind the scenes.
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchScheduler scheduler(model, scheduler_config(2, 10));

  Request req;
  req.src_ids = random_src_ids(1, 4, 20, 181);
  req.max_new_tokens = 3;
  scheduler.submit(std::move(req));
  // Row 1 is never admitted: parked from bind, pinned at 0 while row 0
  // decodes.
  for (int i = 0; i < 3; ++i) {
    scheduler.step();
    EXPECT_TRUE(scheduler.session().row_parked(1));
    EXPECT_EQ(scheduler.session().row_steps(1), 0);
  }
  // Row 0 retired on its budget: parked once.
  EXPECT_EQ(scheduler.take_results().size(), 1u);
  EXPECT_TRUE(scheduler.session().row_parked(0));
  EXPECT_EQ(scheduler.session().row_steps(0), 0);

  // A second request re-occupies row 0 for MORE live ticks than the ring
  // holds: row 1 must ride every one of those batch steps pinned at ring
  // position 0 without exhausting (the old per-tick reset masked this;
  // park-once must not rely on it).
  Request longer;
  longer.src_ids = random_src_ids(1, 4, 20, 182);
  longer.max_new_tokens = 10;  // == max_steps > remaining ring headroom
  scheduler.submit(std::move(longer));
  while (!scheduler.idle()) {
    scheduler.step();
    EXPECT_TRUE(scheduler.session().row_parked(1));
    EXPECT_EQ(scheduler.session().row_steps(1), 0);
  }
  EXPECT_EQ(scheduler.take_results().size(), 1u);
}

TEST(BatchScheduler, ResultsStreamOutWhileOthersKeepDecoding) {
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchScheduler scheduler(model, scheduler_config(2, 14));

  Request quick;
  quick.src_ids = random_src_ids(1, 4, 20, 81);
  quick.max_new_tokens = 2;
  const index_t quick_id = scheduler.submit(std::move(quick));
  Request slow;
  slow.src_ids = random_src_ids(1, 4, 20, 82);
  slow.max_new_tokens = 14;
  const index_t slow_id = scheduler.submit(std::move(slow));

  // After 3 ticks the quick request has retired and its slot is free
  // again, while the slow one is still mid-decode.
  for (int i = 0; i < 3; ++i) scheduler.step();
  auto early = scheduler.take_results();
  ASSERT_EQ(early.size(), 1u);
  EXPECT_EQ(early[0].id, quick_id);
  EXPECT_EQ(scheduler.live_rows(), 1);
  EXPECT_FALSE(scheduler.idle());

  // A third request admitted into the freed slot mid-flight.
  Request refill;
  refill.src_ids = random_src_ids(1, 4, 20, 83);
  refill.max_new_tokens = 3;
  const index_t refill_id = scheduler.submit(std::move(refill));
  scheduler.run();
  auto rest = scheduler.take_results();
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_TRUE((rest[0].id == slow_id && rest[1].id == refill_id) ||
              (rest[0].id == refill_id && rest[1].id == slow_id));
  EXPECT_TRUE(scheduler.idle());
  std::size_t emitted = early[0].tokens.size();
  for (const RequestResult& r : rest) emitted += r.tokens.size();
  EXPECT_EQ(scheduler.total_tokens(),
            static_cast<index_t>(emitted));
  EXPECT_GT(scheduler.mean_occupancy(), 1.0);
}

TEST(BatchScheduler, LatencyTicksAreConsistent) {
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchScheduler scheduler(model, scheduler_config(1, 8));
  // With one row, the second request queues until the first retires.
  for (int i = 0; i < 2; ++i) {
    Request req;
    req.src_ids = random_src_ids(1, 4, 20, 90 + i);
    req.max_new_tokens = 4;
    scheduler.submit(std::move(req));
  }
  scheduler.run();
  const auto results = scheduler.take_results();
  ASSERT_EQ(results.size(), 2u);
  for (const RequestResult& r : results) {
    EXPECT_EQ(r.submit_tick, 0);
    EXPECT_LE(r.admit_tick, r.finish_tick);
    EXPECT_EQ(r.finish_tick - r.admit_tick, r.decode_steps);
  }
  EXPECT_EQ(results[0].admit_tick, 0);
  EXPECT_GT(results[1].admit_tick, 0) << "row 0 was occupied at submit";
}

TEST(BatchScheduler, SubmitValidatesAtTheEdge) {
  models::TransformerConfig mc = tiny_transformer_config();
  Transformer model(mc);
  model.set_training(false);
  BatchSchedulerConfig config = scheduler_config(2, 8);
  config.session.max_src = 6;
  {
    BatchScheduler scheduler(model, config);

    Request too_long;
    too_long.src_ids = random_src_ids(1, 7, 20, 91);  // > max_src
    EXPECT_THROW(scheduler.submit(std::move(too_long)),
                 std::runtime_error);

    Request bad_budget;
    bad_budget.src_ids = random_src_ids(1, 4, 20, 92);
    bad_budget.max_new_tokens = 9;  // > max_steps
    EXPECT_THROW(scheduler.submit(std::move(bad_budget)),
                 std::runtime_error);

    Request bad_length;
    bad_length.src_ids = random_src_ids(1, 4, 20, 93);
    bad_length.src_length = 5;  // > Ts
    EXPECT_THROW(scheduler.submit(std::move(bad_length)),
                 std::runtime_error);

    Request bad_sampling;
    bad_sampling.src_ids = random_src_ids(1, 4, 20, 94);
    bad_sampling.sampling = SamplingConfig::with_temperature(0.0f, 1);
    EXPECT_THROW(scheduler.submit(std::move(bad_sampling)),
                 std::runtime_error);

    Request bad_shape;
    bad_shape.src_ids = random_src_ids(2, 4, 20, 95);  // [2, Ts]
    EXPECT_THROW(scheduler.submit(std::move(bad_shape)),
                 std::runtime_error);
  }

  // Constructor-level validation (the model is unbound again): bos/eos
  // must be inside the target vocabulary, and the ring-geometry errors
  // carry the config field names.
  {
    BatchSchedulerConfig bad = scheduler_config(2, 8);
    bad.eos = mc.tgt_vocab;
    EXPECT_THROW(BatchScheduler(model, bad), std::runtime_error);
  }
  {
    BatchSchedulerConfig bad = scheduler_config(0, 8);
    EXPECT_THROW(BatchScheduler(model, bad), std::runtime_error);
  }
  {
    BatchSchedulerConfig bad = scheduler_config(2, 8);
    bad.session.max_src = -1;
    EXPECT_THROW(BatchScheduler(model, bad), std::runtime_error);
  }
  // And after all the rejections the model still serves normally.
  BatchScheduler ok(model, scheduler_config(2, 8));
  Request fine;
  fine.src_ids = random_src_ids(1, 4, 20, 97);
  fine.max_new_tokens = 2;
  ok.submit(std::move(fine));
  ok.run();
  EXPECT_EQ(ok.take_results().size(), 1u);
}

TEST(BatchScheduler, PriorityClassesControlAdmissionOrder) {
  // With one batch row occupied, three queued requests must admit
  // high → normal → low regardless of submission order (aging off so the
  // classes stay fixed).
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchSchedulerConfig config = scheduler_config(1, 8);
  config.age_ticks = 0;
  BatchScheduler scheduler(model, config);

  Request filler;
  filler.src_ids = random_src_ids(1, 4, 20, 301);
  filler.max_new_tokens = 4;
  scheduler.submit(std::move(filler));
  scheduler.step();  // filler occupies the only row

  std::map<index_t, Priority> expected;
  for (const Priority p : {Priority::kLow, Priority::kNormal,
                           Priority::kHigh}) {
    Request req;
    req.src_ids = random_src_ids(
        1, 4, 20, 310 + static_cast<std::uint64_t>(p));
    req.max_new_tokens = 2;
    req.priority = p;
    expected[scheduler.submit(std::move(req))] = p;
  }
  scheduler.run();

  std::map<Priority, index_t> admit_tick;
  for (const RequestResult& r : scheduler.take_results()) {
    if (expected.count(r.id) == 0) continue;  // the filler
    EXPECT_EQ(r.priority, expected.at(r.id));
    admit_tick[r.priority] = r.admit_tick;
  }
  ASSERT_EQ(admit_tick.size(), 3u);
  EXPECT_LT(admit_tick.at(Priority::kHigh),
            admit_tick.at(Priority::kNormal));
  EXPECT_LT(admit_tick.at(Priority::kNormal),
            admit_tick.at(Priority::kLow));
}

TEST(BatchScheduler, AgingPromotesLowPriorityOverLaterHigh) {
  // A low-priority request that has waited age_ticks * 2 ticks reaches
  // effective class 0; FIFO within a class then puts it AHEAD of a
  // high-priority request submitted later.  With aging disabled the same
  // schedule admits the high request first — starvation.
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  for (const index_t age_ticks : {1, 0}) {
    BatchSchedulerConfig config = scheduler_config(1, 8);
    config.age_ticks = age_ticks;
    BatchScheduler scheduler(model, config);

    Request filler;
    filler.src_ids = random_src_ids(1, 4, 20, 321);
    filler.max_new_tokens = 6;
    scheduler.submit(std::move(filler));
    scheduler.step();  // tick 1: filler live

    Request low;
    low.src_ids = random_src_ids(1, 4, 20, 322);
    low.max_new_tokens = 2;
    low.priority = Priority::kLow;
    const index_t low_id = scheduler.submit(std::move(low));
    scheduler.step();
    scheduler.step();  // low has now waited 2 ticks

    Request high;
    high.src_ids = random_src_ids(1, 4, 20, 323);
    high.max_new_tokens = 2;
    high.priority = Priority::kHigh;
    const index_t high_id = scheduler.submit(std::move(high));
    scheduler.run();

    std::map<index_t, index_t> admit;
    for (const RequestResult& r : scheduler.take_results())
      admit[r.id] = r.admit_tick;
    if (age_ticks > 0) {
      EXPECT_LT(admit.at(low_id), admit.at(high_id))
          << "aged low priority must not starve behind a later high";
    } else {
      EXPECT_LT(admit.at(high_id), admit.at(low_id))
          << "with aging off, class order is absolute";
    }
  }
}

TEST(BatchScheduler, BoundedQueueLoadShedsAtSubmit) {
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchSchedulerConfig config = scheduler_config(1, 8);
  config.max_queue = 1;
  BatchScheduler scheduler(model, config);

  Request first;
  first.src_ids = random_src_ids(1, 4, 20, 331);
  first.max_new_tokens = 3;
  const index_t first_id = scheduler.submit(std::move(first));
  scheduler.step();  // admit it, emptying the queue

  Request second;
  second.src_ids = random_src_ids(1, 4, 20, 332);
  second.max_new_tokens = 3;
  const index_t second_id = scheduler.submit(std::move(second));

  Request third;  // queue is at max_queue: shed, resolved immediately
  third.src_ids = random_src_ids(1, 4, 20, 333);
  third.max_new_tokens = 3;
  const index_t third_id = scheduler.submit(std::move(third));
  EXPECT_EQ(scheduler.results_ready(), 1);
  auto shed = scheduler.take_results();
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0].id, third_id);
  EXPECT_EQ(shed[0].reason, FinishReason::kShed);
  EXPECT_TRUE(shed[0].tokens.empty());
  EXPECT_NE(shed[0].error.find("max_queue"), std::string::npos);
  EXPECT_EQ(shed[0].admit_tick, -1)
      << "a shed request never admitted — admit_tick keeps the sentinel";

  // Shedding never throws: while the queue is still full (a tick has not
  // admitted `second` yet), another submit sheds the same way.
  Request overflow;
  overflow.src_ids = random_src_ids(1, 4, 20, 334);
  overflow.max_new_tokens = 3;
  const index_t overflow_id = scheduler.submit(std::move(overflow));
  auto shed_again = scheduler.take_results();
  ASSERT_EQ(shed_again.size(), 1u);
  EXPECT_EQ(shed_again[0].id, overflow_id);
  EXPECT_EQ(shed_again[0].reason, FinishReason::kShed);
  scheduler.run();
  auto rest = scheduler.take_results();
  std::vector<index_t> ids;
  for (const RequestResult& r : rest) ids.push_back(r.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::count(ids.begin(), ids.end(), first_id) == 1);
  EXPECT_TRUE(std::count(ids.begin(), ids.end(), second_id) == 1);

  const SchedulerStats stats = scheduler.stats();
  const auto& normal =
      stats.per_class[static_cast<std::size_t>(Priority::kNormal)];
  EXPECT_EQ(normal.shed, 2);
  EXPECT_EQ(normal.completed, 2);
}

TEST(BatchScheduler, ExplicitIdsMustBeUniqueAmongInFlight) {
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchScheduler scheduler(model, scheduler_config(2, 8));

  Request a;
  a.src_ids = random_src_ids(1, 4, 20, 341);
  a.max_new_tokens = 2;
  a.id = 7;
  EXPECT_EQ(scheduler.submit(std::move(a)), 7);

  Request dup;  // same id while 7 is unresolved: rejected at the edge
  dup.src_ids = random_src_ids(1, 4, 20, 342);
  dup.max_new_tokens = 2;
  dup.id = 7;
  EXPECT_THROW(scheduler.submit(std::move(dup)), std::runtime_error);

  Request negative;
  negative.src_ids = random_src_ids(1, 4, 20, 343);
  negative.id = -5;
  EXPECT_THROW(scheduler.submit(std::move(negative)), std::runtime_error);

  // Auto-assignment skips ids claimed explicitly.
  Request zero;
  zero.src_ids = random_src_ids(1, 4, 20, 344);
  zero.max_new_tokens = 2;
  zero.id = 0;
  EXPECT_EQ(scheduler.submit(std::move(zero)), 0);

  // While 0 is still in flight, auto-assignment must skip it.
  Request barely;
  barely.src_ids = random_src_ids(1, 4, 20, 345);
  barely.max_new_tokens = 2;
  EXPECT_NE(scheduler.submit(std::move(barely)), 0)
      << "auto ids must skip explicitly claimed in-flight ones";
  scheduler.run();
  EXPECT_EQ(scheduler.take_results().size(), 3u);

  // A RESOLVED id may be reused.
  Request again;
  again.src_ids = random_src_ids(1, 4, 20, 346);
  again.max_new_tokens = 2;
  again.id = 7;
  EXPECT_EQ(scheduler.submit(std::move(again)), 7);
  scheduler.run();
  EXPECT_EQ(scheduler.take_results().size(), 1u);
}

TEST(BatchScheduler, StreamingCallbacksMatchTheResultExactly) {
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchScheduler scheduler(model, scheduler_config(2, 10));

  std::vector<StreamEvent> events;
  Request streamed;
  streamed.src_ids = random_src_ids(1, 4, 20, 351);
  streamed.max_new_tokens = 5;
  streamed.on_token = [&](const StreamEvent& e) { events.push_back(e); };
  const index_t id = scheduler.submit(std::move(streamed));
  scheduler.run();

  auto results = scheduler.take_results();
  ASSERT_EQ(results.size(), 1u);
  const RequestResult& r = results[0];
  ASSERT_EQ(events.size(), r.tokens.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, id);
    EXPECT_EQ(events[i].token, r.tokens[i]) << "stream diverged at " << i;
    EXPECT_EQ(events[i].index, static_cast<index_t>(i));
    if (i > 0) EXPECT_GT(events[i].tick, events[i - 1].tick);
  }
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().tick, r.first_token_tick)
      << "TTFT must be the first streamed tick";
  EXPECT_GT(r.first_token_tick, r.submit_tick);
}

TEST(BatchScheduler, EosIsNeverStreamedAndEmptyResultHasNoTtft) {
  // A request whose very first greedy pick is eos produces zero stream
  // events and first_token_tick == -1 (no token ever existed).
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  const Tensor probe_src = random_src_ids(1, 5, 20, 352);
  const auto probe =
      model.greedy_decode_reference(probe_src, {}, kBos, kEos, 12);
  ASSERT_FALSE(probe[0].empty());
  BatchSchedulerConfig config = scheduler_config(1, 12);
  config.eos = probe[0][0];
  BatchScheduler scheduler(model, config);

  index_t calls = 0;
  Request req;
  req.src_ids = probe_src;
  req.on_token = [&](const StreamEvent&) { ++calls; };
  scheduler.submit(std::move(req));
  scheduler.run();
  auto results = scheduler.take_results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].reason, FinishReason::kEos);
  EXPECT_TRUE(results[0].tokens.empty());
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(results[0].first_token_tick, -1);

  const SchedulerStats stats = scheduler.stats();
  const auto& normal =
      stats.per_class[static_cast<std::size_t>(Priority::kNormal)];
  EXPECT_EQ(normal.ttft_samples, 0) << "no first token, no TTFT sample";
  EXPECT_EQ(normal.queue_wait_samples, 1) << "it WAS admitted";
}

TEST(BatchScheduler, StatsSnapshotTracksClassesAndPercentiles) {
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  {
    BatchScheduler scheduler(model, scheduler_config(1, 8));
    // One row: the second request queues behind the first's 3 decode
    // ticks, so its queue wait is strictly positive.
    for (int i = 0; i < 2; ++i) {
      Request req;
      req.src_ids = random_src_ids(1, 4, 20, 361 + i);
      req.max_new_tokens = 3;
      scheduler.submit(std::move(req));
    }
    scheduler.run();
    scheduler.take_results();

    const SchedulerStats stats = scheduler.stats();
    EXPECT_EQ(stats.ticks, scheduler.ticks());
    EXPECT_GT(stats.stepped_ticks, 0);
    EXPECT_EQ(stats.total_tokens, scheduler.total_tokens());
    EXPECT_DOUBLE_EQ(stats.mean_occupancy, scheduler.mean_occupancy());
    const auto& normal =
        stats.per_class[static_cast<std::size_t>(Priority::kNormal)];
    EXPECT_EQ(normal.submitted, 2);
    EXPECT_EQ(normal.completed, 2);
    EXPECT_EQ(normal.cancelled + normal.expired + normal.shed +
                  normal.errored,
              0);
    EXPECT_EQ(normal.queue_wait_samples, 2);
    EXPECT_EQ(normal.ttft_samples, 2);
    EXPECT_GE(normal.queue_wait_p99, 3.0)
        << "the queued request waited out the first's full budget";
    EXPECT_LE(normal.queue_wait_p50, normal.queue_wait_p99);
    EXPECT_GE(normal.ttft_p50, 1.0);
    EXPECT_LE(normal.ttft_p50, normal.ttft_p99);
    for (const Priority other : {Priority::kHigh, Priority::kLow}) {
      const auto& cls = stats.per_class[static_cast<std::size_t>(other)];
      EXPECT_EQ(cls.submitted, 0);
      EXPECT_EQ(cls.queue_wait_samples, 0);
    }
  }  // unbind before the next scheduler takes the model

  // stats_window == 0 keeps the counters but disables sampling.
  {
    BatchSchedulerConfig no_window = scheduler_config(1, 8);
    no_window.stats_window = 0;
    BatchScheduler bare(model, no_window);
    Request req;
    req.src_ids = random_src_ids(1, 4, 20, 363);
    req.max_new_tokens = 2;
    bare.submit(std::move(req));
    bare.run();
    const SchedulerStats bare_stats = bare.stats();
    const auto& bare_normal = bare_stats.per_class[static_cast<
        std::size_t>(Priority::kNormal)];
    EXPECT_EQ(bare_normal.completed, 1);
    EXPECT_EQ(bare_normal.queue_wait_samples, 0);
    EXPECT_EQ(bare_normal.ttft_samples, 0);
  }

  // The sample window is EXACTLY stats_window, not whatever
  // vector::reserve rounded the ring's capacity up to.
  BatchSchedulerConfig tight = scheduler_config(1, 8);
  tight.stats_window = 1;
  BatchScheduler windowed(model, tight);
  for (int i = 0; i < 3; ++i) {
    Request req;
    req.src_ids = random_src_ids(1, 4, 20, 365 + i);
    req.max_new_tokens = 2;
    windowed.submit(std::move(req));
    windowed.run();
  }
  const SchedulerStats tight_stats = windowed.stats();
  const auto& tight_normal = tight_stats.per_class[static_cast<
      std::size_t>(Priority::kNormal)];
  EXPECT_EQ(tight_normal.completed, 3);
  EXPECT_EQ(tight_normal.queue_wait_samples, 1)
      << "the ring must hold stats_window samples, no more";
  EXPECT_EQ(tight_normal.ttft_samples, 1);
}

TEST(BatchScheduler, BindsTheDecoderExclusively) {
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchScheduler scheduler(model, scheduler_config(2, 8));
  // The scheduler's session holds the decoder: a second session (and
  // greedy_decode, which binds one internally) must be rejected while
  // the reference path keeps working.
  runtime::DecodeSessionConfig sc;
  sc.max_batch = 1;
  sc.max_steps = 4;
  EXPECT_THROW(runtime::DecodeSession(model, sc), std::runtime_error);
  const Tensor src = random_src_ids(1, 4, 20, 96);
  EXPECT_THROW(model.greedy_decode(src, {}, kBos, kEos, 4),
               std::runtime_error);
  EXPECT_NO_THROW(model.greedy_decode_reference(src, {}, kBos, kEos, 4));
}

}  // namespace
}  // namespace qdnn::serve
