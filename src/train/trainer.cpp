#include "train/trainer.h"

#include <cmath>

namespace qdnn::train {

Trainer::Trainer(nn::Module& model, TrainerConfig config)
    : model_(&model),
      config_(config),
      optimizer_(model.parameters(),
                 SgdConfig{config.lr, config.momentum, config.weight_decay,
                           config.clip_norm}),
      scheduler_(optimizer_, config.lr, config.lr_milestones),
      rng_(config.seed) {}

EpochStats Trainer::evaluate(const data::ImageDataset& test) {
  model_->set_training(false);
  EpochStats stats;
  Mean loss_mean, acc_mean;
  const index_t n = test.size();
  const index_t bs = config_.batch_size;
  const index_t c = test.images.dim(1), h = test.images.dim(2),
                w = test.images.dim(3);
  const index_t plane = c * h * w;
  for (index_t first = 0; first < n; first += bs) {
    const index_t count = std::min(bs, n - first);
    Tensor batch{Shape{count, c, h, w}};
    std::vector<index_t> labels(static_cast<std::size_t>(count));
    for (index_t i = 0; i < count; ++i) {
      for (index_t j = 0; j < plane; ++j)
        batch[i * plane + j] = test.images[(first + i) * plane + j];
      labels[static_cast<std::size_t>(i)] =
          test.labels[static_cast<std::size_t>(first + i)];
    }
    const Tensor logits = model_->forward(batch);
    if (!logits.all_finite()) {
      stats.eval_diverged = true;
      stats.diverged = true;
      break;
    }
    const nn::LossResult res = loss_(logits, labels);
    loss_mean.add(res.loss, static_cast<double>(count));
    acc_mean.add(accuracy(logits, labels), static_cast<double>(count));
  }
  stats.test_loss = loss_mean.value();
  stats.test_accuracy = acc_mean.value();
  return stats;
}

std::vector<EpochStats> Trainer::fit(const data::ImageDataset& train,
                                     const data::ImageDataset& test) {
  std::vector<EpochStats> history;
  const index_t n = train.size();
  const index_t bs = config_.batch_size;
  const index_t c = train.images.dim(1), h = train.images.dim(2),
                w = train.images.dim(3);
  const index_t plane = c * h * w;

  for (index_t epoch = 0; epoch < config_.epochs; ++epoch) {
    scheduler_.set_epoch(epoch);
    model_->set_training(true);
    Mean loss_mean, acc_mean;
    bool diverged = false;

    const std::vector<index_t> order = rng_.permutation(n);
    for (index_t first = 0; first < n && !diverged; first += bs) {
      const index_t count = std::min(bs, n - first);
      Tensor batch{Shape{count, c, h, w}};
      std::vector<index_t> labels(static_cast<std::size_t>(count));
      for (index_t i = 0; i < count; ++i) {
        const index_t src = order[static_cast<std::size_t>(first + i)];
        for (index_t j = 0; j < plane; ++j)
          batch[i * plane + j] = train.images[src * plane + j];
        labels[static_cast<std::size_t>(i)] =
            train.labels[static_cast<std::size_t>(src)];
      }
      if (config_.augment_pad > 0)
        batch = data::augment_batch(batch, config_.augment_pad, rng_);

      optimizer_.zero_grad();
      const Tensor logits = model_->forward(batch);
      if (!logits.all_finite()) {
        diverged = true;
        break;
      }
      const nn::LossResult res = loss_(logits, labels);
      if (!std::isfinite(res.loss)) {
        diverged = true;
        break;
      }
      loss_mean.add(res.loss, static_cast<double>(count));
      acc_mean.add(accuracy(logits, labels), static_cast<double>(count));
      model_->backward(res.grad_logits);
      optimizer_.step();
    }

    EpochStats stats = diverged ? EpochStats{} : evaluate(test);
    stats.epoch = epoch;
    stats.train_loss = loss_mean.value();
    stats.train_accuracy = acc_mean.value();
    stats.train_diverged = diverged;
    stats.diverged = stats.diverged || diverged;
    if (on_epoch) on_epoch(stats);
    history.push_back(stats);
    // Abort only on *training* divergence.  Eval-mode divergence early in
    // training is transient for quadratic networks: BatchNorm running
    // statistics lag the batch statistics, and each quadratic layer
    // squares the residual scale mismatch, so eval activations can
    // overflow until the running stats settle — training itself is
    // healthy and recovers the eval pass within a few epochs.
    if (diverged) break;
    if (config_.target_accuracy > 0.0 &&
        stats.test_accuracy >= config_.target_accuracy)
      break;
  }
  return history;
}

}  // namespace qdnn::train
