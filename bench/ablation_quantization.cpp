// Ablation: post-training quantization of quadratic vs linear networks.
//
// The paper's storage argument (Table I, Eq. 9) counts fp32 parameters;
// deployed models ship integer weights.  Two questions matter for the
// proposed neuron:
//   1. Does the quadratic response — which *squares* the quantized
//      features — amplify weight-quantization error enough to lose the
//      paper's efficiency edge at int8?  (Expected: no; the integer work
//      is the same GEMM a linear layer does and Λ stays fp32-scale.)
//   2. How low can the bit width go before accuracy collapses, and does
//      the quadratic network degrade earlier than the linear baseline?
//
// Method: train one linear-neuron CNN and one proposed-neuron CNN to
// convergence on the synthetic task, fake-quantize the weights per channel
// at b ∈ {8, 6, 4, 3, 2} bits, and evaluate without retraining.  Storage
// uses quantize::storage_report (int payload + per-channel scales).
#include <cstdio>

#include "bench_util.h"
#include "models/resnet.h"
#include "nn/checkpoint.h"
#include "quantize/quantize_model.h"
#include "train/trainer.h"

using namespace qdnn;
using namespace qdnn::models;
using quadratic::NeuronSpec;
using qdnn::bench::bench_scale;
using qdnn::bench::fmt;
using qdnn::bench::print_header;
using qdnn::bench::print_row;
using qdnn::bench::print_rule;

int main() {
  const int scale = bench_scale();
  print_header("Ablation: post-training quantization (linear vs proposed)");

  // 10 classes at noise 0.7 (the layer-placement configuration) keeps the
  // float networks off the 100% ceiling so per-bit degradation shows.
  data::SyntheticImageConfig data_config;
  data_config.num_classes = 10;
  data_config.image_size = 16;
  data_config.noise_std = 0.7f;
  const auto train_set =
      data::make_synthetic_images(data_config, 500 * scale, 411);
  const auto test_set =
      data::make_synthetic_images(data_config, 250 * scale, 412);

  struct Variant {
    const char* label;
    NeuronSpec spec;
  };
  const Variant variants[] = {
      {"linear", NeuronSpec::linear()},
      {"proposed(k=9)", NeuronSpec::proposed(9)},
  };

  CsvWriter csv(qdnn::bench::results_dir() + "/ablation_quantization.csv",
                {"variant", "bits", "test_accuracy", "weight_kib",
                 "compression"});
  print_row({"variant", "bits", "test acc", "weights/KiB", "compress"});
  print_rule();

  for (const Variant& variant : variants) {
    ResNetConfig config;
    config.depth = 14;
    config.num_classes = 10;
    config.image_size = 16;
    config.base_width = 10;
    config.spec = variant.spec;
    config.seed = 35;
    auto net = make_cifar_resnet(config);

    train::TrainerConfig tc;
    tc.epochs = 8 * scale;
    tc.batch_size = 32;
    tc.lr = 0.05f;
    tc.clip_norm = 5.0f;
    tc.augment_pad = 1;
    train::Trainer trainer(*net, tc);
    trainer.fit(train_set, test_set);
    const double acc_float = trainer.evaluate(test_set).test_accuracy;
    {
      quantize::QuantizeConfig qc;  // fp32 row: report float storage
      auto report = quantize::storage_report(*net, qc);
      print_row({variant.label, "32", fmt(100 * acc_float, 2),
                 fmt(report.total_fp32_bytes / 1024.0, 1), "1.00x"});
      csv.write_row(std::vector<std::string>{
          variant.label, "32", fmt(acc_float, 4),
          fmt(report.total_fp32_bytes / 1024.0, 2), "1.0"});
    }

    for (int bits : {8, 6, 4, 3, 2}) {
      auto clone = make_cifar_resnet(config);
      // copy_state carries BatchNorm running statistics along with the
      // weights — without them the clone's eval-mode accuracy is garbage.
      nn::copy_state(*net, *clone);
      quantize::QuantizeConfig qc;
      qc.weight_bits = bits;
      quantize::quantize_parameters(*clone, qc);
      const auto report = quantize::storage_report(*clone, qc);
      train::TrainerConfig eval_tc = tc;
      train::Trainer eval_trainer(*clone, eval_tc);
      const double acc = eval_trainer.evaluate(test_set).test_accuracy;
      print_row({variant.label, std::to_string(bits), fmt(100 * acc, 2),
                 fmt(report.total_quant_bytes / 1024.0, 1),
                 fmt(report.compression(), 2) + "x"});
      csv.write_row(std::vector<std::string>{
          variant.label, std::to_string(bits), fmt(acc, 4),
          fmt(report.total_quant_bytes / 1024.0, 2),
          fmt(report.compression(), 2)});
    }
    print_rule();
  }

  std::printf(
      "\nExpected shape: both networks hold their float accuracy at 8 and\n"
      "6 bits and collapse by 2 bits; the proposed network tracks the\n"
      "linear baseline's degradation curve (its integer arithmetic is the\n"
      "same GEMM), so the paper's parameter savings survive deployment\n"
      "quantization — int8 'ours' is ~4x smaller again than fp32 'ours'.\n");
  return 0;
}
