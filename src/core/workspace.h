// Workspace: a bump-allocated float arena for layer scratch memory.
//
// Layers' forward_into() implementations draw im2col buffers, GEMM packing
// space and intermediate features from a Workspace instead of allocating.
// The arena grows by chaining blocks (existing pointers stay valid while a
// pass is in flight), so the first pass through a model discovers the
// watermark; after reset() + consolidate() the arena is one contiguous
// block and steady-state passes perform zero heap allocations.
//
// Contract for forward_into() implementations: call alloc()/take() freely,
// never reset() — the pass driver (InferenceSession, Sequential) owns the
// reset points.  Pointers handed out stay valid until the next reset().
#pragma once

#include <vector>

#include "core/tensor_view.h"

namespace qdnn {

class Workspace {
 public:
  Workspace() = default;
  explicit Workspace(index_t initial_floats) {
    if (initial_floats > 0)
      blocks_.emplace_back(static_cast<std::size_t>(initial_floats));
  }

  // Hands out `numel` floats (uninitialized).  Never invalidates earlier
  // allocations; grows by chaining a new block when the current one is
  // exhausted.
  float* alloc(index_t numel);

  // alloc() wrapped in a TensorView of the given shape.
  TensorView take(const Shape& shape) {
    return TensorView(shape, alloc(shape.numel()));
  }

  // Rewinds the arena: all previously handed-out pointers become reusable
  // (and must no longer be dereferenced).  Keeps the memory.
  void reset();

  // Merges chained blocks into a single contiguous block sized for the
  // high-watermark.  Only valid directly after reset() (no outstanding
  // allocations).  Idempotent; after this, passes that stay under the
  // watermark never allocate.
  void consolidate();

  // Floats handed out since the last reset().
  index_t in_use() const { return in_use_; }
  // Largest in_use() ever observed — the arena's required capacity.
  index_t watermark() const { return watermark_; }
  // Total floats owned across all blocks.
  index_t capacity() const;
  // Number of block allocations performed over the arena's lifetime —
  // stays flat once warmed up (asserted by the zero-allocation tests).
  int grow_count() const { return grow_count_; }

 private:
  std::vector<std::vector<float>> blocks_;
  std::size_t block_ = 0;   // current block index
  std::size_t offset_ = 0;  // next free float in the current block
  index_t in_use_ = 0;
  index_t watermark_ = 0;
  int grow_count_ = 0;
};

}  // namespace qdnn
