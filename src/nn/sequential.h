// Sequential: ordered composition of modules with chained forward and
// reverse-order backward.  Owns its children.
#pragma once

#include <memory>
#include <utility>

#include "nn/module.h"

namespace qdnn::nn {

class Sequential : public Module {
 public:
  explicit Sequential(std::string name = "sequential")
      : name_(std::move(name)) {}

  // Appends a module; returns a raw observer pointer for wiring (the
  // Sequential keeps ownership).
  template <typename M, typename... Args>
  M* emplace(Args&&... args) {
    auto mod = std::make_unique<M>(std::forward<Args>(args)...);
    M* raw = mod.get();
    children_.push_back(std::move(mod));
    return raw;
  }

  void append(ModulePtr m) { children_.push_back(std::move(m)); }

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  // v2: chains the children over two workspace-backed ping-pong buffers.
  // Children with native forward_into run allocation-free (Shape's inline
  // storage makes the per-boundary views heap-free); v1-only children go
  // through their legacy adapter transparently.  (The steady-state serving
  // path — runtime::InferenceSession — flattens a Sequential via
  // flatten_into and drives the children itself with prebuilt views; this
  // implementation covers ad-hoc nested composition.)
  Shape output_shape(const Shape& input_shape) const override;
  bool supports_forward_into() const override;
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;

  // Serving hooks propagate through the chain: the pipeline is the
  // concatenation of the children's pipelines, and freeze/unfreeze reach
  // every descendant.
  void flatten_into(std::vector<PipelineStage>& stages) override;
  void freeze() override;
  void unfreeze() override;
  bool frozen() const override;

  std::vector<Parameter*> parameters() override;
  std::vector<NamedBuffer> buffers() override;
  std::string name() const override { return name_; }
  void set_training(bool training) override;

  index_t size() const { return static_cast<index_t>(children_.size()); }
  Module& child(index_t i) { return *children_[static_cast<std::size_t>(i)]; }

 private:
  std::string name_;
  std::vector<ModulePtr> children_;
};

}  // namespace qdnn::nn
