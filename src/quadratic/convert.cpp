#include "quadratic/convert.h"

#include <cmath>

#include "linalg/lowrank.h"

namespace qdnn::quadratic {

ConvertedNeuron convert_matrix(const Tensor& m, index_t k) {
  const Tensor sym = linalg::symmetrize(m);
  const linalg::LowRankFactors f = linalg::truncate_top_k(sym, k);
  ConvertedNeuron out;
  out.q = f.q;
  out.lambda = f.lambda;
  out.error = linalg::truncation_error(sym, f);
  // Energy bookkeeping from the full spectrum.
  const linalg::EigResult full = linalg::eigh(sym);
  double total = 0.0, kept = 0.0;
  for (index_t i = 0; i < full.eigenvalues.numel(); ++i) {
    const double l2 = static_cast<double>(full.eigenvalues[i]) *
                      full.eigenvalues[i];
    total += l2;
    if (i < k) kept += l2;
  }
  out.energy_kept = (total > 0.0) ? kept / total : 1.0;
  return out;
}

std::unique_ptr<ProposedQuadraticDense> convert_layer(
    GeneralQuadraticDense& source, index_t k, Rng& rng,
    std::vector<double>* errors) {
  QDNN_CHECK(source.include_linear(),
             "convert_layer: source must include a linear term");
  const index_t n = source.in_features();
  const index_t units = source.units();
  auto dst = std::make_unique<ProposedQuadraticDense>(
      n, units, k, rng, /*lambda_lr_scale=*/1e-3f,
      source.name() + ".converted");

  if (errors) errors->clear();
  for (index_t u = 0; u < units; ++u) {
    // View of this unit's M.
    Tensor m{Shape{n, n}};
    const float* src_m = source.m().value.data() + u * n * n;
    for (index_t i = 0; i < n * n; ++i) m[i] = src_m[i];
    const ConvertedNeuron conv = convert_matrix(m, k);
    if (errors) errors->push_back(conv.error);
    // Qᵏ rows are stored unit-major, transposed ([units*k, n]).
    for (index_t i = 0; i < k; ++i)
      for (index_t j = 0; j < n; ++j)
        dst->q().value[(u * k + i) * n + j] = conv.q.at(j, i);
    for (index_t i = 0; i < k; ++i)
      dst->lambda().value[u * k + i] = conv.lambda[i];
    // Linear part transfers unchanged.
    for (index_t j = 0; j < n; ++j)
      dst->w().value[u * n + j] = source.w().value[u * n + j];
    dst->bias().value[u] = source.bias().value[u];
  }
  return dst;
}

index_t rank_for_energy(const Tensor& m, double energy_fraction) {
  QDNN_CHECK(energy_fraction > 0.0 && energy_fraction <= 1.0,
             "rank_for_energy: fraction in (0, 1]");
  const Tensor sym = linalg::symmetrize(m);
  const linalg::EigResult eig = linalg::eigh(sym);
  const index_t n = eig.eigenvalues.numel();
  double total = 0.0;
  for (index_t i = 0; i < n; ++i)
    total += static_cast<double>(eig.eigenvalues[i]) * eig.eigenvalues[i];
  if (total == 0.0) return 1;
  double kept = 0.0;
  for (index_t i = 0; i < n; ++i) {
    kept += static_cast<double>(eig.eigenvalues[i]) * eig.eigenvalues[i];
    if (kept / total >= energy_fraction) return i + 1;
  }
  return n;
}

}  // namespace qdnn::quadratic
