// Fig. 6 reproduction: training stability of kervolution (KNN-n, [14])
// vs the proposed neuron on ResNet-18.
//
// The paper trains ResNet-18 on ImageNet with kervolution deployed in the
// first n ∈ {3, 7, 11, 15} conv layers and shows that deep deployment
// destabilizes training (loss divergence / wild fluctuation), while the
// proposed neuron trains stably in ALL layers.  Here the substrate is the
// synthetic ImageNet substitute at reduced scale; the mechanism under
// test — polynomial-kernel amplification compounding with depth — is
// identical (see tests/quadratic/kervolution_test.cpp for the unit-level
// demonstration).
#include <cstdio>

#include "bench_util.h"
#include "models/resnet.h"
#include "train/trainer.h"

using namespace qdnn;
using namespace qdnn::models;
using quadratic::NeuronKind;
using qdnn::bench::bench_scale;
using qdnn::bench::fmt;
using qdnn::bench::print_header;
using qdnn::bench::print_row;
using qdnn::bench::print_rule;

int main() {
  const int scale = bench_scale();
  print_header("Fig 6: training stability — ResNet-18, KNN-n vs ours");

  data::SyntheticImageConfig data_config;
  data_config.num_classes = 8;
  data_config.image_size = 16;
  data_config.noise_std = 0.2f;
  const auto train_set =
      data::make_synthetic_images(data_config, 400 * scale, 31);
  const auto test_set =
      data::make_synthetic_images(data_config, 160 * scale, 32);

  struct Config {
    std::string label;
    NeuronSpec spec;
    index_t layer_limit;
  };
  NeuronSpec kerv = NeuronSpec::of(NeuronKind::kKervolution);
  kerv.kerv_degree = 2;
  kerv.kerv_c = 1.0f;
  const std::vector<Config> configs = {
      {"Ours(all layers)", NeuronSpec::proposed(9), -1},
      {"KNN-3", kerv, 3},
      {"KNN-7", kerv, 7},
      {"KNN-11", kerv, 11},
      {"KNN-15", kerv, 15},
  };

  CsvWriter csv(qdnn::bench::results_dir() + "/fig6_stability.csv",
                {"config", "epoch", "train_loss", "train_accuracy",
                 "diverged"});

  print_row({"config", "epochs run", "final loss", "final acc",
             "stable?"});
  print_rule();
  for (const Config& c : configs) {
    ResNetConfig net_config;
    net_config.num_classes = 8;
    net_config.image_size = 16;
    net_config.base_width = 8;
    net_config.spec = c.spec;
    net_config.quad_layer_limit = c.layer_limit;
    net_config.seed = 42;
    auto net = make_resnet18(net_config);

    train::TrainerConfig tc;
    tc.epochs = 5 * scale;
    tc.batch_size = 32;
    // The paper's ImageNet recipe: lr 0.1, no gradient clipping — which is
    // exactly what exposes kervolution's instability.
    tc.lr = 0.1f;
    tc.clip_norm = 0.0f;
    tc.augment_pad = 2;
    tc.seed = 300;
    train::Trainer trainer(*net, tc);
    const auto history = trainer.fit(train_set, test_set);

    // Stability verdict: training divergence (aborts the run) or a
    // non-finite eval on the FINAL epoch counts as unstable; transient
    // eval overflows while BN running stats settle do not.
    bool train_diverged = false;
    for (const auto& e : history) {
      train_diverged = train_diverged || e.train_diverged;
      csv.write_row(std::vector<std::string>{
          c.label, std::to_string(e.epoch), fmt(e.train_loss, 4),
          fmt(e.train_accuracy, 4), e.diverged ? "1" : "0"});
    }
    const auto& last = history.back();
    const bool unstable = train_diverged || last.eval_diverged;
    print_row({c.label, std::to_string(history.size()),
               unstable ? "NaN/Inf" : fmt(last.train_loss, 3),
               unstable ? "-" : fmt(100 * last.test_accuracy, 2),
               unstable ? "DIVERGED" : "stable"});
  }

  std::printf(
      "\nExpected shape (paper Fig. 6): ours and KNN-3 train stably;\n"
      "KNN-11/KNN-15 (deep kervolution deployment) diverge or fluctuate\n"
      "badly.  Divergence here = non-finite loss/activations detected.\n");
  return 0;
}
