// Module: the layer abstraction of qdnn.
//
// qdnn uses explicit forward/backward (not taped autograd): forward()
// caches whatever the layer needs, backward(grad_out) returns the gradient
// w.r.t. the layer input and accumulates parameter gradients.  All
// backward implementations are validated against central finite
// differences in tests/nn/gradcheck_test.cpp.
//
// Data layout conventions:
//   dense activations   [N, D]
//   images              [N, C, H, W]
//   token sequences     [N, T] (ids) / [N, T, D] (embedded, flattened to
//                       [N*T, D] for dense sublayers)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/parameter.h"

namespace qdnn::nn {

// A named non-trainable tensor owned by a module — persistent state that
// is not updated by the optimizer but must survive checkpointing (the
// canonical example: BatchNorm running statistics).
struct NamedBuffer {
  std::string name;
  Tensor* tensor = nullptr;
};

class Module {
 public:
  virtual ~Module() = default;

  // Computes the layer output and caches activations needed by backward.
  virtual Tensor forward(const Tensor& input) = 0;

  // Given dL/d(output), accumulates dL/d(params) into Parameter::grad and
  // returns dL/d(input).  Must be called after a matching forward().
  virtual Tensor backward(const Tensor& grad_output) = 0;

  // All trainable parameters owned by this module (recursively).
  virtual std::vector<Parameter*> parameters() { return {}; }

  // All persistent non-trainable state (recursively) — saved and restored
  // by nn::save_checkpoint/load_checkpoint alongside the parameters.
  virtual std::vector<NamedBuffer> buffers() { return {}; }

  // Human-readable identifier used in analysis outputs (Fig 7).
  virtual std::string name() const = 0;

  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  void zero_grad() {
    for (Parameter* p : parameters()) p->zero_grad();
  }

  index_t num_parameters() {
    index_t n = 0;
    for (Parameter* p : parameters()) n += p->numel();
    return n;
  }

 protected:
  bool training_ = true;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace qdnn::nn
