#include "train/seq2seq_trainer.h"

#include <algorithm>

#include "runtime/decode_session.h"

namespace qdnn::train {

Seq2SeqTrainer::Seq2SeqTrainer(models::Transformer& model,
                               Seq2SeqConfig config)
    : model_(&model),
      config_(config),
      optimizer_(model.parameters(),
                 AdamConfig{/*lr=*/0.0f, /*beta1=*/0.9f, /*beta2=*/0.98f,
                            /*eps=*/1e-9f, /*weight_decay=*/0.0f,
                            config.clip_norm}),
      scheduler_(optimizer_, config.peak_lr, config.warmup_steps),
      rng_(config.seed),
      loss_(config.label_smoothing, data::Vocab::kPad) {}

std::vector<Seq2SeqEpoch> Seq2SeqTrainer::fit(
    const data::TranslationCorpus& corpus) {
  std::vector<Seq2SeqEpoch> history;
  const index_t n = static_cast<index_t>(corpus.train.size());
  const index_t bs = config_.batch_size;

  for (index_t epoch = 0; epoch < config_.epochs; ++epoch) {
    model_->set_training(true);
    Mean loss_mean, acc_mean;
    // Shuffle example order by materializing a permuted copy view.
    const std::vector<index_t> order = rng_.permutation(n);
    std::vector<data::TranslationExample> shuffled;
    shuffled.reserve(static_cast<std::size_t>(n));
    for (index_t i : order)
      shuffled.push_back(corpus.train[static_cast<std::size_t>(i)]);

    for (index_t first = 0; first < n; first += bs) {
      const index_t count = std::min(bs, n - first);
      const data::Seq2SeqBatch batch =
          data::make_batch(shuffled, first, count);
      scheduler_.step();
      optimizer_.zero_grad();
      const Tensor logits =
          model_->forward_train(batch.src, batch.tgt_in, batch.src_lengths);
      const nn::LossResult res = loss_(logits, batch.tgt_out);
      loss_mean.add(res.loss, static_cast<double>(res.count));
      if (res.count > 0)
        acc_mean.add(static_cast<double>(res.correct) / res.count,
                     static_cast<double>(res.count));
      model_->backward(res.grad_logits);
      optimizer_.step();
    }

    Seq2SeqEpoch stats;
    stats.epoch = epoch;
    stats.train_loss = loss_mean.value();
    stats.token_accuracy = acc_mean.value();
    if (on_epoch) on_epoch(stats);
    history.push_back(stats);
  }
  return history;
}

data::BleuResult Seq2SeqTrainer::evaluate_bleu(
    const data::TranslationCorpus& corpus, const BleuSettings& settings,
    index_t max_sentences) {
  model_->set_training(false);
  index_t count = static_cast<index_t>(corpus.test.size());
  if (max_sentences > 0) count = std::min(count, max_sentences);

  std::vector<std::vector<std::string>> hyps, refs;
  const index_t bs = 16;
  const index_t max_steps =
      std::min<index_t>(model_->config().max_len - 1, 24);
  // One KV-cached session for the whole evaluation: bind (stage plan, KV
  // rings, warm-up) is paid once, each batch only primes and generates.
  // freeze is off so a mid-training evaluation never leaves stale packs
  // behind — results are bit-identical either way.
  runtime::DecodeSessionConfig sc;
  sc.max_batch = bs;
  sc.max_steps = max_steps;
  sc.freeze = false;
  runtime::DecodeSession session(*model_, sc);
  for (index_t first = 0; first < count; first += bs) {
    const index_t batch_count = std::min(bs, count - first);
    const data::Seq2SeqBatch batch =
        data::make_batch(corpus.test, first, batch_count);
    session.prime(batch.src, batch.src_lengths);
    const auto decoded = session.generate(data::Vocab::kBos,
                                          data::Vocab::kEos);
    for (index_t i = 0; i < batch_count; ++i) {
      const auto& ex = corpus.test[static_cast<std::size_t>(first + i)];
      const std::string hyp_surface = data::surface_from_ids(
          corpus.tgt_vocab, decoded[static_cast<std::size_t>(i)]);
      hyps.push_back(data::tokenize(hyp_surface, settings.tokenizer,
                                    settings.cased));
      refs.push_back(data::tokenize(ex.tgt_surface, settings.tokenizer,
                                    settings.cased));
    }
  }
  return data::corpus_bleu(hyps, refs);
}

}  // namespace qdnn::train
